// The service-level view of sensor replacement: a field of sensors owes a
// sink one sample per minute. Two identical missions run side by side —
// one with a robot fleet that carries spares, one whose fleet has none —
// and the per-window data yield shows what maintenance buys.
//
//   ./build/examples/data_yield [duration_s] [csv_prefix]
//
// Writes <prefix>_repaired.csv and <prefix>_unrepaired.csv (t,yield rows).

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "core/data_collection.hpp"
#include "trace/format.hpp"
#include "trace/log.hpp"

namespace {

using namespace sensrep;

core::SimulationConfig make_config(bool with_spares) {
  core::SimulationConfig cfg;
  cfg.algorithm = core::Algorithm::kDynamicDistributed;
  cfg.robots = 4;
  cfg.seed = 11;
  cfg.sim_duration = 32000.0;  // two mean lifetimes
  if (!with_spares) cfg.robot_spares = 0;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  // The unrepaired mission drops every task by design; keep its per-task
  // warnings out of the report.
  sensrep::trace::Logger::global().set_threshold(sensrep::trace::Level::kError);
  double duration = 32000.0;
  std::string prefix = "data_yield";
  if (argc > 1) duration = std::strtod(argv[1], nullptr);
  if (argc > 2) prefix = argv[2];

  struct Run {
    const char* label;
    bool spares;
    double final_yield = 0.0;
  } runs[] = {{"repaired", true}, {"unrepaired", false}};

  std::cout << "data_yield: 200 sensors, Exp(16000 s) lifetimes, one sample/min to a sink\n\n";
  std::cout << trace::strfmt("%10s  %-12s  %-12s\n", "time(s)", "repaired", "unrepaired");

  // Run both missions and interleave their timelines for display.
  metrics::TimeSeries series[2];
  for (int i = 0; i < 2; ++i) {
    auto cfg = make_config(runs[i].spares);
    cfg.sim_duration = duration;
    core::Simulation sim(cfg);
    core::DataCollection data(sim, {});
    data.sample_yield_every(2000.0);
    sim.run();
    series[i] = data.yield_timeline();
    runs[i].final_yield = data.yield();

    std::ofstream csv(prefix + "_" + runs[i].label + ".csv");
    series[i].write_csv(csv, "yield");
  }

  const std::size_t rows = std::min(series[0].size(), series[1].size());
  for (std::size_t r = 0; r < rows; ++r) {
    std::cout << trace::strfmt("%10.0f  %-12.4f  %-12.4f\n", series[0].points()[r].first,
                               series[0].points()[r].second, series[1].points()[r].second);
  }
  std::cout << trace::strfmt(
      "\nmission yield: %.4f with repair vs %.4f without (wrote %s_*.csv)\n",
      runs[0].final_yield, runs[1].final_yield, prefix.c_str());
  return runs[0].final_yield > 0.9 && runs[1].final_yield < 0.8 ? 0 : 1;
}
