// Deployment health report: before trusting robots to keep a field alive,
// a planner wants to know whether the network can actually carry failure
// reports — connectivity, articulation sensors whose single death partitions
// the field, and how much localization error the deployment's anchor budget
// implies.
//
//   ./build/examples/network_health [sensors] [side_m] [seed]
//
// Exercises the geometry substrates (unit-disk graph analysis, anchor
// multilateration) on a field drawn exactly like the simulator's.

#include <cstdlib>
#include <iostream>

#include "geometry/coverage.hpp"
#include "geometry/graph_analysis.hpp"
#include "geometry/localization.hpp"
#include "geometry/rect.hpp"
#include "sim/rng.hpp"
#include "trace/format.hpp"
#include "wsn/deployment.hpp"

int main(int argc, char** argv) {
  using namespace sensrep;

  std::size_t sensors = 200;
  double side = 400.0;
  std::uint64_t seed = 1;
  if (argc > 1) sensors = static_cast<std::size_t>(std::strtoull(argv[1], nullptr, 10));
  if (argc > 2) side = std::strtod(argv[2], nullptr);
  if (argc > 3) seed = std::strtoull(argv[3], nullptr, 10);

  const double range = 63.0;  // paper's sensor TX range
  sim::Rng rng(seed);
  auto deploy_rng = rng.fork("sensor-deploy");
  const auto field = geometry::Rect::sized(side, side);
  const auto positions = wsn::uniform_deployment(deploy_rng, field, sensors);

  std::cout << trace::strfmt("network_health: %zu sensors on %.0fx%.0f m, range %.0f m\n\n",
                             sensors, side, side, range);

  // --- connectivity -----------------------------------------------------------
  const geometry::UnitDiskGraph graph(positions, range);
  const auto comps = graph.connected_components();
  std::cout << trace::strfmt("connectivity : %zu component(s), mean degree %.1f\n",
                             comps.count, graph.mean_degree());
  if (comps.count > 1) {
    std::cout << "  WARNING: field is partitioned; reports from minor components\n"
                 "  can never reach a manager in another component\n";
  }

  // --- single points of failure --------------------------------------------------
  const auto cuts = graph.articulation_points();
  std::cout << trace::strfmt("fragility    : %zu articulation sensor(s)\n", cuts.size());
  std::size_t shown = 0;
  for (const std::size_t v : cuts) {
    const std::size_t remain = graph.largest_component_without(v);
    const std::size_t stranded = graph.size() - 1 - remain;
    if (stranded >= 3 && shown < 5) {
      std::cout << trace::strfmt(
          "  sensor %3zu at (%.0f, %.0f): its failure strands %zu sensors\n", v,
          positions[v].x, positions[v].y, stranded);
      ++shown;
    }
  }
  if (cuts.empty()) std::cout << "  (none: every single failure leaves the rest connected)\n";

  // --- sensing coverage --------------------------------------------------------------
  const double sensing_radius = range * 0.6;  // sensing reach < radio reach
  const auto cov = geometry::analyze_coverage(positions, field, sensing_radius, 2);
  std::cout << trace::strfmt(
      "coverage     : %.1f%% covered, %.1f%% 2-covered, %zu hole(s), largest %.0f m^2\n",
      cov.covered_fraction * 100.0, cov.k_covered_fraction * 100.0, cov.hole_count,
      cov.largest_hole_area);

  // --- localization budget ---------------------------------------------------------
  std::cout << "\nlocalization (10% anchors, multilateration):\n";
  std::cout << trace::strfmt("%18s %14s %13s %8s\n", "ranging noise(m)", "mean err(m)",
                             "max err(m)", "failed");
  for (const double noise : {0.5, 2.0, 5.0, 10.0}) {
    geometry::LocalizationConfig lcfg;
    lcfg.range_noise_stddev = noise;
    auto loc_rng = rng.fork("localization");
    const auto loc = geometry::localize_field(positions, lcfg, loc_rng);
    std::cout << trace::strfmt("%18.1f %14.2f %13.2f %8zu\n", noise, loc.mean_error,
                               loc.max_error, loc.failed);
  }
  std::cout << "\nrule of thumb: geographic routing tolerates position error well below\n"
               "the radio range; see bench/ablation_localization for the sweep\n";
  return comps.count == 1 ? 0 : 1;
}
