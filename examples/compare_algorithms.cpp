// Side-by-side comparison of the paper's three coordination algorithms over
// a sweep of robot counts and seeds, with CSV export for plotting.
//
//   ./build/examples/compare_algorithms [duration_s] [csv_path]
//
// Defaults: 16000 s (quarter horizon), CSV to ./compare_algorithms.csv.
// The full-length paper sweep lives in the bench/ binaries; this example is
// the programmatic-API version a downstream user would start from.

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "core/simulation.hpp"
#include "metrics/csv.hpp"
#include "trace/format.hpp"

int main(int argc, char** argv) {
  using namespace sensrep;

  double duration = 16000.0;
  std::string csv_path = "compare_algorithms.csv";
  if (argc > 1) duration = std::strtod(argv[1], nullptr);
  if (argc > 2) csv_path = argv[2];

  std::ofstream csv_file(csv_path);
  metrics::CsvWriter csv(csv_file);
  csv.row({"algorithm", "robots", "seed", "failures", "repaired", "travel_m_per_failure",
           "report_hops", "request_hops", "update_tx_per_failure", "repair_latency_s",
           "delivery_ratio"});

  std::cout << trace::strfmt("%-12s %7s %5s %9s %9s %11s %12s %11s\n", "algorithm",
                             "robots", "seed", "failures", "repaired", "travel(m)",
                             "update-tx/f", "latency(s)");

  for (const auto algorithm :
       {core::Algorithm::kCentralized, core::Algorithm::kFixedDistributed,
        core::Algorithm::kDynamicDistributed}) {
    for (const std::size_t robots : {4u, 9u}) {
      for (const std::uint64_t seed : {1u, 2u}) {
        core::SimulationConfig cfg;
        cfg.algorithm = algorithm;
        cfg.robots = robots;
        cfg.seed = seed;
        cfg.sim_duration = duration;

        core::Simulation simulation(cfg);
        simulation.run();
        const auto r = simulation.result();

        csv.row(std::string(to_string(algorithm)), robots, seed, r.failures, r.repaired,
                r.avg_travel_per_repair, r.avg_report_hops, r.avg_request_hops,
                r.location_update_tx_per_repair, r.avg_repair_latency, r.delivery_ratio);
        std::cout << trace::strfmt("%-12s %7zu %5llu %9zu %9zu %11.2f %12.2f %11.1f\n",
                                   std::string(to_string(algorithm)).c_str(), robots,
                                   static_cast<unsigned long long>(seed), r.failures,
                                   r.repaired, r.avg_travel_per_repair,
                                   r.location_update_tx_per_repair, r.avg_repair_latency);
      }
    }
  }
  std::cout << "\nwrote " << csv_path << "\n";
  return 0;
}
