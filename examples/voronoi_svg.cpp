// Visualization: renders the paper's Figure 1 for a live simulation — the
// field, sensors (with guardian links), robots, their Voronoi cells under
// the dynamic algorithm, and the path a robot drove to replace a failure.
//
//   ./build/examples/voronoi_svg [out.svg] [seed]
//
// Writes an SVG you can open in any browser.

#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/simulation.hpp"
#include "geometry/voronoi.hpp"
#include "trace/svg.hpp"

int main(int argc, char** argv) {
  using namespace sensrep;

  std::string out_path = "voronoi_field.svg";
  std::uint64_t seed = 3;
  if (argc > 1) out_path = argv[1];
  if (argc > 2) seed = std::strtoull(argv[2], nullptr, 10);

  core::SimulationConfig cfg;
  cfg.algorithm = core::Algorithm::kDynamicDistributed;
  cfg.robots = 5;  // the paper's Fig. 1 shows five robots
  cfg.seed = seed;
  cfg.sim_duration = 4000.0;
  cfg.field.spontaneous_failures = false;

  core::Simulation simulation(cfg);
  simulation.run_until(10.0);

  // Remember where the robots start, then inject one failure and let the
  // closest robot drive to it.
  std::vector<geometry::Vec2> start_positions;
  for (const auto& r : simulation.robots()) start_positions.push_back(r->position());

  const net::NodeId victim = 17;
  const geometry::Vec2 victim_pos = simulation.field().node(victim).position();
  simulation.field().fail_slot(victim);
  simulation.run();

  // Which robot repaired it?
  const auto& rec = simulation.failure_log().at(0);
  const std::size_t maintainer =
      rec.robot_id ? *rec.robot_id - cfg.robot_base_id() : 0;

  const auto area = cfg.field_area();
  trace::SvgWriter svg(area, 900.0);

  // Voronoi cells of the robots' *initial* positions (the implicit partition
  // the dynamic algorithm maintains).
  geometry::VoronoiDiagram voronoi(start_positions, area);
  const char* fills[] = {"#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#b07aa1"};
  for (std::size_t i = 0; i < voronoi.site_count(); ++i) {
    svg.add_polygon(voronoi.cell(i), fills[i % 5], "#666", 0.15);
  }

  // Sensors with guardian links.
  for (net::NodeId id = 0; id < simulation.field().size(); ++id) {
    const auto& node = simulation.field().node(id);
    if (node.guardian() != net::kNoNode) {
      svg.add_line(node.position(), simulation.field().node(node.guardian()).position(),
                   "#bbb", 0.6);
    }
  }
  for (net::NodeId id = 0; id < simulation.field().size(); ++id) {
    const auto& node = simulation.field().node(id);
    svg.add_circle(node.position(), 3.0, node.alive() ? "#333" : "#e15759");
  }

  // Robots: start positions (hollow) and the repair path.
  for (std::size_t i = 0; i < start_positions.size(); ++i) {
    svg.add_circle(start_positions[i], 8.0, "white", fills[i % 5]);
    svg.add_text(start_positions[i] + geometry::Vec2{10, 10}, "R" + std::to_string(i + 1),
                 14.0, "#333");
  }
  svg.add_polyline({start_positions[maintainer], victim_pos}, fills[maintainer % 5], 2.0);
  svg.add_circle(victim_pos, 7.0, "#e15759", "#900");
  svg.add_text(victim_pos + geometry::Vec2{10, -10}, "S (replaced)", 14.0, "#900");

  if (!svg.save(out_path)) {
    std::cerr << "failed to write " << out_path << "\n";
    return 1;
  }
  std::cout << "wrote " << out_path << "\n"
            << "failure at sensor " << victim << ", repaired by robot R"
            << (maintainer + 1) << " after driving "
            << rec.travel_distance << " m\n";
  return 0;
}
