// Disaster-response scenario: the workload the paper's introduction
// motivates — a sensor network in a hazard field where an event knocks out
// a cluster of sensors at once, on top of background wear-out failures.
//
// A burst of correlated failures hits a hotspot at t=2000 s. Robots carry
// finite spares and restock at a depot at the field edge. The example
// tracks sensing coverage over time, showing the dip and the robots healing
// it back.
//
//   ./build/examples/disaster_response [robots] [seed]

#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/simulation.hpp"
#include "trace/format.hpp"

int main(int argc, char** argv) {
  using namespace sensrep;

  std::size_t robots = 4;
  std::uint64_t seed = 7;
  if (argc > 1) robots = static_cast<std::size_t>(std::strtoull(argv[1], nullptr, 10));
  if (argc > 2) seed = std::strtoull(argv[2], nullptr, 10);

  core::SimulationConfig cfg;
  cfg.algorithm = core::Algorithm::kDynamicDistributed;
  cfg.robots = robots;
  cfg.seed = seed;
  cfg.sim_duration = 12000.0;
  cfg.field.lifetime.mean = 48000.0;  // background wear-out, slower than default
  // The paper's guardian-guardee detection assumes a guardian and guardee
  // rarely die together — false in a disaster, where the blast kills whole
  // neighborhoods (watchers included) and interior failures stay silent.
  // The neighborhood-watch extension heals the hole inward from its rim.
  cfg.field.neighborhood_watch = true;

  core::Simulation simulation(cfg);
  const auto area = cfg.field_area();
  const double sensing_radius = 40.0;

  // The disaster: at t=2000 s every sensor within 120 m of the hotspot dies.
  const geometry::Vec2 hotspot = geometry::lerp(area.min, area.max, 0.3);
  simulation.simulator().at(2000.0, [&] {
    std::size_t killed = 0;
    for (net::NodeId id = 0; id < simulation.field().size(); ++id) {
      auto& node = simulation.field().node(id);
      if (node.alive() && geometry::distance(node.position(), hotspot) <= 120.0) {
        simulation.field().fail_slot(id);
        ++killed;
      }
    }
    std::cout << trace::strfmt("[%7.0fs] *** disaster at (%.0f, %.0f): %zu sensors down\n",
                               simulation.simulator().now(), hotspot.x, hotspot.y, killed);
  });

  std::cout << trace::strfmt(
      "disaster_response: %zu robots, %zu sensors, dynamic algorithm, hotspot burst at "
      "t=2000s\n\n",
      robots, cfg.sensor_count());
  std::cout << trace::strfmt("%9s %9s %10s %9s %8s\n", "time(s)", "alive", "coverage",
                             "repaired", "queued");

  for (double t = 1000.0; t <= cfg.sim_duration; t += 1000.0) {
    simulation.run_until(t);
    std::size_t queued = 0;
    std::size_t repairs = 0;
    for (const auto& r : simulation.robots()) {
      queued += r->queue().size() + (r->busy() ? 1 : 0);
      repairs += r->repairs_done();
    }
    std::cout << trace::strfmt(
        "%9.0f %9zu %9.1f%% %9zu %8zu\n", t, simulation.field().alive_count(),
        simulation.field().coverage_fraction(area, sensing_radius) * 100.0, repairs,
        queued);
  }

  const auto result = simulation.result();
  std::cout << "\n" << result.summary();

  // The headline: did the robots heal the disaster dip?
  const double final_coverage = simulation.field().coverage_fraction(area, sensing_radius);
  std::cout << trace::strfmt("\nfinal coverage %.1f%%, %zu of %zu failures repaired\n",
                             final_coverage * 100.0, result.repaired, result.failures);
  return result.repaired * 10 >= result.failures * 9 ? 0 : 1;
}
