// Quickstart: run a small sensor-replacement simulation with each of the
// paper's three coordination algorithms and print the headline metrics.
//
//   ./build/examples/quickstart [robots] [duration_s] [seed]
//
// Defaults: 4 robots, 16000 s, seed 42 — a quarter-length version of the
// paper's §4.1 setup that finishes in a couple of seconds.

#include <cstdlib>
#include <iostream>

#include "core/simulation.hpp"

int main(int argc, char** argv) {
  using namespace sensrep;

  std::size_t robots = 4;
  double duration = 16000.0;
  std::uint64_t seed = 42;
  if (argc > 1) robots = static_cast<std::size_t>(std::strtoull(argv[1], nullptr, 10));
  if (argc > 2) duration = std::strtod(argv[2], nullptr);
  if (argc > 3) seed = std::strtoull(argv[3], nullptr, 10);

  std::cout << "sensrep quickstart: " << robots << " robots, "
            << 50 * robots << " sensors, " << duration << " s simulated\n\n";

  for (const auto algorithm :
       {core::Algorithm::kCentralized, core::Algorithm::kFixedDistributed,
        core::Algorithm::kDynamicDistributed}) {
    core::SimulationConfig cfg;
    cfg.algorithm = algorithm;
    cfg.robots = robots;
    cfg.sim_duration = duration;
    cfg.seed = seed;

    core::Simulation simulation(cfg);
    simulation.run();
    std::cout << simulation.result().summary() << '\n';
  }
  return 0;
}
