// Fleet sizing: the operator question the paper's algorithms set up but
// never answer — how many robots does a deployment need to keep repair
// latency (coverage downtime) under a target?
//
//   ./build/examples/fleet_sizing [sensors] [target_p95_s] [seed] [jobs]
//
// Holds the field fixed (sensors and area) and sweeps the fleet size,
// replicating each point over seeds (mean +- 95% CI), then recommends the
// smallest fleet meeting the target. All fleet-size x seed runs are
// independent, so the whole sweep executes in parallel on the runner
// subsystem; aggregation order (and therefore the printed table) is fixed
// by the job grid, not by which run finishes first.

#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/replication.hpp"
#include "metrics/summary.hpp"
#include "runner/executor.hpp"
#include "trace/format.hpp"

int main(int argc, char** argv) {
  using namespace sensrep;

  std::size_t sensors = 200;
  double target_p95 = 400.0;
  std::uint64_t seed = 1;
  std::size_t jobs = 0;  // 0 = hardware concurrency
  if (argc > 1) sensors = static_cast<std::size_t>(std::strtoull(argv[1], nullptr, 10));
  if (argc > 2) target_p95 = std::strtod(argv[2], nullptr);
  if (argc > 3) seed = std::strtoull(argv[3], nullptr, 10);
  if (argc > 4) jobs = static_cast<std::size_t>(std::strtoull(argv[4], nullptr, 10));

  constexpr std::size_t kSeedsPerPoint = 3;

  // Field fixed at the paper's density regardless of fleet size.
  const double field_area = static_cast<double>(sensors) / 50.0 * 40000.0;

  std::cout << trace::strfmt(
      "fleet_sizing: %zu sensors, %.0f m^2, Exp(16000 s) lifetimes\n"
      "target: p95 repair latency <= %.0f s\n\n",
      sensors, field_area, target_p95);
  std::cout << trace::strfmt("%7s %16s %18s %16s %10s\n", "robots", "latency_avg(s)",
                             "latency_p95(s)*", "travel_m/fail", "delivery");

  // Materialize the sweep: kSeedsPerPoint jobs per admissible fleet size.
  std::vector<std::size_t> fleet_sizes;
  std::vector<runner::Job> sweep;
  for (const std::size_t robots : {1u, 2u, 4u, 6u, 9u, 12u, 16u}) {
    core::SimulationConfig cfg;
    cfg.algorithm = core::Algorithm::kDynamicDistributed;
    cfg.robots = robots;
    cfg.sensors_per_robot = sensors / robots;        // keep the field constant
    cfg.area_per_robot = field_area / static_cast<double>(robots);
    cfg.seed = seed;
    cfg.sim_duration = 16000.0;
    if (cfg.sensor_count() < sensors * 9 / 10) continue;  // indivisible combos

    fleet_sizes.push_back(robots);
    for (std::size_t i = 0; i < kSeedsPerPoint; ++i) {
      runner::Job job;
      job.index = sweep.size();
      job.config = cfg;
      job.config.seed = seed + i;
      job.label = trace::strfmt("r=%zu seed=%llu", robots,
                                static_cast<unsigned long long>(job.config.seed));
      sweep.push_back(std::move(job));
    }
  }

  runner::ExecutorOptions options;
  options.jobs = jobs;
  runner::Executor executor(options);  // one single-threaded simulation per worker
  const auto batch = executor.run(sweep, &runner::Executor::run_simulation);
  if (!batch.ok()) {
    const auto& f = batch.failures.front();
    std::cerr << "fleet_sizing: [" << f.label << "] failed: " << f.error << "\n";
    return 2;
  }

  // Aggregate each point's consecutive seed block; p95 aggregated as the
  // mean of per-seed p95s — conservative enough for a sizing decision
  // (marked * in the header).
  std::size_t recommended = 0;
  for (std::size_t p = 0; p < fleet_sizes.size(); ++p) {
    metrics::Summary latency, p95s, travel, delivery;
    for (std::size_t i = 0; i < kSeedsPerPoint; ++i) {
      const auto& r = *batch.results[p * kSeedsPerPoint + i];
      latency.add(r.avg_repair_latency);
      p95s.add(r.p95_repair_latency);
      travel.add(r.avg_travel_per_repair);
      delivery.add(r.delivery_ratio);
    }
    const auto est = core::estimate_from(latency);
    const std::size_t robots = fleet_sizes[p];
    std::cout << trace::strfmt("%7zu %9.1f+-%-6.1f %18.1f %16.2f %10.3f\n", robots,
                               est.mean, est.ci95_half_width, p95s.mean(), travel.mean(),
                               delivery.mean());
    if (recommended == 0 && p95s.mean() <= target_p95) recommended = robots;
  }

  if (recommended != 0) {
    std::cout << trace::strfmt("\nrecommendation: %zu robot(s) meet p95 <= %.0f s\n",
                               recommended, target_p95);
  } else {
    std::cout << "\nno swept fleet size met the target; add robots or relax it\n";
  }
  return recommended != 0 ? 0 : 1;
}
