#pragma once

#include <cstdint>
#include <vector>

#include "geometry/vec2.hpp"
#include "shard/topology.hpp"

namespace sensrep::shard {

/// Robot → tile ownership ledger. Every robot is owned by exactly one tile
/// at all times; a position update that crosses a tile boundary is a
/// *migration* (hand-off through the barrier, since robot movement events
/// only execute there). The conservation invariant — no robot owned by zero
/// or two tiles — is structural here and fuzz-checked in tests/shard_test.
class RobotLedger {
 public:
  explicit RobotLedger(const Topology& topo) : topo_(&topo) {}

  /// (Re)seeds ownership from the fleet's deployment positions.
  void reset(const std::vector<geometry::Vec2>& positions) {
    owner_.resize(positions.size());
    count_.assign(topo_->tiles(), 0);
    for (std::size_t i = 0; i < positions.size(); ++i) {
      owner_[i] = topo_->tile_of(positions[i]);
      ++count_[owner_[i]];
    }
    migrations_ = 0;
  }

  /// Position update from CoordinationAlgorithm::on_robot_moved. Runs at
  /// barriers only (robot movement is a global event), so plain bookkeeping
  /// suffices.
  void on_robot_moved(std::size_t robot, geometry::Vec2 pos) {
    if (robot >= owner_.size()) return;  // fleet grew behind our back: ignore
    const std::size_t tile = topo_->tile_of(pos);
    if (tile == owner_[robot]) return;
    --count_[owner_[robot]];
    ++count_[tile];
    owner_[robot] = tile;
    ++migrations_;
  }

  [[nodiscard]] std::size_t robots() const noexcept { return owner_.size(); }
  [[nodiscard]] std::size_t owner(std::size_t robot) const { return owner_.at(robot); }
  [[nodiscard]] const std::vector<std::size_t>& tile_counts() const noexcept {
    return count_;
  }
  [[nodiscard]] std::uint64_t migrations() const noexcept { return migrations_; }

  /// Conservation check: per-tile counts sum to the fleet size and agree
  /// with the owner map (each robot counted exactly once).
  [[nodiscard]] bool conserved() const {
    std::vector<std::size_t> recount(count_.size(), 0);
    for (const std::size_t t : owner_) {
      if (t >= recount.size()) return false;
      ++recount[t];
    }
    return recount == count_;
  }

 private:
  const Topology* topo_;
  std::vector<std::size_t> owner_;
  std::vector<std::size_t> count_;
  std::uint64_t migrations_ = 0;
};

}  // namespace sensrep::shard
