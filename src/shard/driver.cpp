#include "shard/driver.hpp"

#include <algorithm>

#include "metrics/counters.hpp"

namespace sensrep::shard {

namespace {
/// Expected ticks per window below which classification runs inline: a
/// window this quiet costs less to classify than to fan out (the inline and
/// pooled paths execute identical code over identical state, so the choice
/// is invisible to results).
constexpr double kParallelThreshold = 256.0;
}  // namespace

ShardedDriver::ShardedDriver(sim::Simulator& sim, net::Medium& medium,
                             wsn::SensorField& field, const geometry::Rect& bounds,
                             std::size_t shards)
    : sim_(&sim),
      medium_(&medium),
      field_(&field),
      topo_(bounds, field.config().sensor_tx_range, shards),
      ledger_(topo_),
      period_(field.config().beacon_period),
      tiles_(topo_.tiles()),
      pool_(topo_.tiles() > 1
                ? std::make_unique<runner::ThreadPool>(topo_.tiles())
                : nullptr) {}

void ShardedDriver::arm_tick(net::NodeId slot, sim::SimTime first, double period) {
  if (slot >= arms_.size()) arms_.resize(slot + 1);
  SlotArm& a = arms_[slot];
  ++a.gen;  // retires any heap entries of a previous incarnation
  if (a.bridge) {
    sim_->cancel(*a.bridge);
    a.bridge.reset();
    --bridged_;
  }
  if (!a.armed) {
    a.armed = true;
    ++armed_;
  }
  a.period = period;
  a.tile = static_cast<std::uint32_t>(topo_.tile_of(field_->node(slot).position()));
  if (in_window_ && first <= window_end_) {
    // Mid-window revival (replace_slot executing inside a barrier replay):
    // the first occurrence must interleave with the window's remaining
    // events in exact time order, so it goes through the global queue — the
    // same one-shot-then-series shape the sequential activate_clocks uses.
    // From the second occurrence on the series lives in the tile ticker
    // (first + period always lands beyond the current window).
    const std::uint32_t gen = a.gen;
    a.bridge = sim_->at(first, [this, slot, first, gen] {
      SlotArm& arm = arms_[slot];
      if (!arm.armed || arm.gen != gen) return;  // defensive; disarm cancels us
      arm.bridge.reset();
      --bridged_;
      field_->node(slot).tick();
      tiles_[arm.tile].ticker.arm(slot, first + arm.period, gen);
    });
    ++bridged_;
    ++stats_.bridged_ticks;
  } else {
    tiles_[a.tile].ticker.arm(slot, first, a.gen);
  }
}

void ShardedDriver::disarm_tick(net::NodeId slot) {
  if (slot >= arms_.size()) return;
  SlotArm& a = arms_[slot];
  if (!a.armed) return;
  ++a.gen;  // heap entries die lazily on their next pop
  a.armed = false;
  --armed_;
  if (a.bridge) {
    sim_->cancel(*a.bridge);
    a.bridge.reset();
    --bridged_;
  }
}

void ShardedDriver::run_until(sim::SimTime horizon) {
  while (sim_->now() < horizon) {
    const sim::SimTime now = sim_->now();
    // Window cap: one beacon period keeps every slot to (at most) one tick
    // per window, and the earliest queued event keeps global events pinned
    // to window edges — the two pillars of the equivalence argument.
    sim::SimTime w_end = std::min(horizon, now + period_);
    if (sim_->pending() > 0) w_end = std::min(w_end, sim_->next_event_time());
    if (w_end < now) w_end = now;
    bool interrupted = false;
    if (w_end > now) interrupted = process_window(w_end);
    // Land exactly on the window edge even if the probe fires mid-advance:
    // only window boundaries are states the sequential schedule shares, so
    // interrupts are honored with window granularity (docs/SHARDING.md §4).
    do {
      sim_->run_until(w_end);
      interrupted = interrupted || sim_->interrupted();
    } while (sim_->interrupted());
    if (interrupted) return;
  }
}

void ShardedDriver::classify_tile(std::size_t t, sim::SimTime w_end) {
  Tile& tile = tiles_[t];
  tile.halo.clear();
  tile.escalated = 0;
  tile.stale = 0;
  std::uint64_t seq = 0;
  tile.ticker.drain(w_end, [&](sim::SimTime time, net::NodeId slot, std::uint32_t gen) {
    const SlotArm& a = arms_[slot];
    if (!a.armed || a.gen != gen) {
      ++tile.stale;
      return;
    }
    TickRecord r;
    r.time = time;
    r.seq = seq++;
    r.origin_tile = static_cast<std::uint32_t>(t);
    r.slot = slot;
    r.gen = gen;
    r.quiet = field_->node(slot).quiet_tick_viable(time);
    if (r.quiet) {
      // Quiet rearm stays tile-local; it lands beyond w_end (window cap), so
      // the drain terminates. Escalations rearm at the barrier after replay.
      tile.ticker.arm(slot, time + a.period, gen);
    } else {
      ++tile.escalated;
    }
    tile.halo.push(r);
  });
}

bool ShardedDriver::process_window(sim::SimTime w_end) {
  ++stats_.windows;
  in_window_ = true;
  window_end_ = w_end;

  // Phase A: parallel classification against the frozen window state. Pure
  // reads only — every simulation-state write waits for the barrier, which
  // is what makes the fan-out race-free without a single atomic.
  const sim::SimTime now = sim_->now();
  const double expected =
      armed_ == 0 ? 0.0
                  : (w_end - now) / period_ * static_cast<double>(armed_);
  if (pool_ && expected >= kParallelThreshold) {
    ++stats_.parallel_windows;
    for (std::size_t t = 0; t < tiles_.size(); ++t) {
      pool_->submit([this, t, w_end] { classify_tile(t, w_end); });
    }
    pool_->wait_idle();  // the tick barrier: all halo queues sealed
  } else {
    for (std::size_t t = 0; t < tiles_.size(); ++t) classify_tile(t, w_end);
  }

  bool any_escalated = false;
  for (const Tile& tile : tiles_) {
    stats_.stale_skips += tile.stale;
    if (tile.escalated > 0) any_escalated = true;
  }

  // Barrier: commit in canonical order on this thread.
  std::size_t quiet_total = 0;
  bool interrupted = false;
  if (!any_escalated) {
    // Pure-quiet fast path: commits are self-local (beacon stamp, aging,
    // rereport bookkeeping with nothing due) and no event runs between
    // them, so cross-tile order is immaterial — skip the merge sort.
    for (Tile& tile : tiles_) {
      for (const TickRecord& r : tile.halo.records()) {
        field_->node(r.slot).commit_quiet_tick(r.time);
      }
      quiet_total += tile.halo.size();
      tile.halo.clear();
    }
  } else {
    ++stats_.escalation_windows;
    scratch_.clear();
    for (Tile& tile : tiles_) {
      scratch_.insert(scratch_.end(), tile.halo.records().begin(),
                      tile.halo.records().end());
      tile.halo.clear();
    }
    std::sort(scratch_.begin(), scratch_.end(), canonical_less);
    for (const TickRecord& r : scratch_) {
      // Interleave the events an escalated tick spawned (deliveries, robot
      // reactions) with the remaining ticks in exact time order.
      const sim::SimTime t = std::max(r.time, sim_->now());
      do {
        sim_->run_until(t);
        interrupted = interrupted || sim_->interrupted();
      } while (sim_->interrupted());
      SlotArm& a = arms_[r.slot];
      if (!a.armed || a.gen != r.gen) {
        // A replayed event (lifetime failure, chaos kill) disarmed the slot
        // before this tick's time — the sequential schedule would have
        // cancelled the occurrence too.
        ++stats_.stale_skips;
        continue;
      }
      if (r.quiet) {
        field_->node(r.slot).commit_quiet_tick(r.time);
        ++quiet_total;
      } else {
        field_->node(r.slot).tick();
        tiles_[a.tile].ticker.arm(r.slot, r.time + a.period, a.gen);
        ++stats_.escalated_ticks;
        sim_->note_external_executed(1);
      }
    }
  }
  stats_.quiet_ticks += quiet_total;
  if (quiet_total > 0) {
    // The sequential tick() books one analytic beacon per quiet tick; merge
    // the window's worth in one call. Observers are queue events, which only
    // run at window edges, so the totals agree at every observation point.
    medium_->account(metrics::MessageCategory::kBeacon, quiet_total);
    sim_->note_external_executed(static_cast<std::uint64_t>(quiet_total));
  }
  in_window_ = false;
  return interrupted;
}

}  // namespace sensrep::shard
