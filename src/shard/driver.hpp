#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "geometry/rect.hpp"
#include "net/medium.hpp"
#include "runner/thread_pool.hpp"
#include "shard/halo.hpp"
#include "shard/robot_ledger.hpp"
#include "shard/ticker.hpp"
#include "shard/topology.hpp"
#include "sim/simulator.hpp"
#include "wsn/sensor_field.hpp"

namespace sensrep::shard {

/// Tile-per-worker beacon tick scheduler (FieldConfig::shards > 1).
///
/// The field is partitioned into grid-aligned column tiles (Topology); each
/// sensor's beacon tick series lives in its tile's TileTicker instead of the
/// global event queue. Simulation time advances in lock-step *windows*
/// bounded by (a) the horizon, (b) one beacon period and (c) the earliest
/// queued global event, so no queue event ever executes mid-window. Inside a
/// window, tile workers classify their due ticks in parallel with pure reads
/// (SensorNode::quiet_tick_viable against the frozen window state); at the
/// tick barrier the per-tile halo queues are merged in canonical
/// (time, seq, origin-tile) order and committed on the driver thread —
/// self-local quiet commits directly, escalations as full tick() replays
/// interleaved with the queue in exact time order. The schedule is bitwise
/// equivalent to shards=1 (tests/shard_test.cpp holds it to that); the
/// argument is written out in docs/SHARDING.md §3.
class ShardedDriver final : public wsn::TickDriver {
 public:
  /// Window/tick accounting (diagnostics + tests).
  struct Stats {
    std::uint64_t windows = 0;            // lock-step windows processed
    std::uint64_t parallel_windows = 0;   // classified on the worker pool
    std::uint64_t escalation_windows = 0; // took the sorted-replay path
    std::uint64_t quiet_ticks = 0;        // committed via commit_quiet_tick()
    std::uint64_t escalated_ticks = 0;    // replayed as full tick()
    std::uint64_t bridged_ticks = 0;      // mid-window revivals routed in-queue
    std::uint64_t stale_skips = 0;        // lazily discarded disarmed entries
  };

  /// `bounds` is the deployment area the tiles partition; tile boundaries
  /// align to sensor-TX-range grid columns (the UniformGrid2D cell size).
  ShardedDriver(sim::Simulator& sim, net::Medium& medium, wsn::SensorField& field,
                const geometry::Rect& bounds, std::size_t shards);

  // --- wsn::TickDriver -----------------------------------------------------

  void arm_tick(net::NodeId slot, sim::SimTime first, double period) override;
  void disarm_tick(net::NodeId slot) override;

  // --- schedule ------------------------------------------------------------

  /// Advances the simulation to `horizon` through lock-step windows.
  /// Replaces sim::Simulator::run_until as the top-level advance; the clock
  /// always comes to rest on a window boundary (the only states the sharded
  /// schedule shares bit-for-bit with the sequential one), so a cooperative
  /// interrupt is honored with window granularity.
  void run_until(sim::SimTime horizon);

  /// Armed tick series currently resident in tile tickers. The sequential
  /// schedule keeps exactly one pending queue event per armed series, so
  /// StateDigest::pending_events = Simulator::pending() + armed_count().
  [[nodiscard]] std::size_t armed_count() const noexcept { return armed_ - bridged_; }

  [[nodiscard]] const Topology& topology() const noexcept { return topo_; }
  [[nodiscard]] RobotLedger& ledger() noexcept { return ledger_; }
  [[nodiscard]] const RobotLedger& ledger() const noexcept { return ledger_; }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  /// Per-slot series state. `gen` is bumped on every arm/disarm so heap
  /// entries from dead incarnations are discarded lazily on pop, exactly like
  /// the pooled EventQueue treats cancelled events.
  struct SlotArm {
    std::uint32_t gen = 0;
    std::uint32_t tile = 0;
    double period = 0.0;
    bool armed = false;
    std::optional<sim::EventId> bridge;  // mid-window first fire, in-queue
  };

  struct Tile {
    TileTicker ticker;
    HaloQueue halo;
    std::size_t escalated = 0;
    std::size_t stale = 0;
  };

  /// Returns true when an interrupt fired during the window's replays.
  bool process_window(sim::SimTime w_end);

  /// Phase A, per tile: drain due ticks, classify quiet/escalated with pure
  /// reads, requeue quiet rearms tile-locally. Runs on a pool worker when the
  /// window is busy enough; the identical code runs inline otherwise.
  void classify_tile(std::size_t t, sim::SimTime w_end);

  sim::Simulator* sim_;
  net::Medium* medium_;
  wsn::SensorField* field_;
  Topology topo_;
  RobotLedger ledger_;
  double period_;
  std::vector<Tile> tiles_;
  std::vector<SlotArm> arms_;
  std::unique_ptr<runner::ThreadPool> pool_;
  std::vector<TickRecord> scratch_;  // barrier merge buffer, reused
  std::size_t armed_ = 0;
  std::size_t bridged_ = 0;
  bool in_window_ = false;
  sim::SimTime window_end_ = 0.0;
  Stats stats_;
};

}  // namespace sensrep::shard
