#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "geometry/rect.hpp"
#include "geometry/vec2.hpp"

namespace sensrep::shard {

/// Partition of the field into vertical column tiles whose x-boundaries lie
/// on spatial::UniformGrid2D cell edges (cell size = sensor TX range, the
/// same granularity SensorField buckets at). Aligning tiles to grid columns
/// means a tile boundary never splits a grid cell, so per-tile sensor sets
/// are unions of whole cell columns and the assignment is a pure function of
/// position — the property the robot hand-off ledger and the halo merge both
/// lean on.
///
/// Columns are distributed as evenly as whole columns allow (tile t owns
/// columns [t*C/K, (t+1)*C/K)); a request for more tiles than columns leaves
/// the surplus tiles empty rather than splitting cells.
class Topology {
 public:
  Topology(const geometry::Rect& bounds, double cell_size, std::size_t tiles)
      : bounds_(bounds), cell_(cell_size), tiles_(tiles) {
    if (tiles == 0) throw std::invalid_argument("shard::Topology: tiles must be >= 1");
    if (cell_size <= 0.0) {
      throw std::invalid_argument("shard::Topology: cell_size must be > 0");
    }
    const double width = bounds.max.x - bounds.min.x;
    cols_ = width <= 0.0 ? 1
                         : static_cast<std::size_t>(std::ceil(width / cell_size));
    if (cols_ == 0) cols_ = 1;
    // The [first_col(t), first_col(t+1)) ranges partition [0, cols_), so
    // every column gets exactly one owner.
    col_tile_.assign(cols_, 0);
    for (std::size_t t = 0; t < tiles; ++t) {
      const std::size_t lo = first_col(t);
      const std::size_t hi = t + 1 == tiles ? cols_ : first_col(t + 1);
      for (std::size_t c = lo; c < hi; ++c) col_tile_[c] = static_cast<std::uint32_t>(t);
    }
  }

  [[nodiscard]] std::size_t tiles() const noexcept { return tiles_; }
  [[nodiscard]] std::size_t columns() const noexcept { return cols_; }
  [[nodiscard]] double cell_size() const noexcept { return cell_; }

  /// First grid column owned by tile t (== columns() when t owns none).
  [[nodiscard]] std::size_t first_col(std::size_t t) const noexcept {
    return t * cols_ / tiles_;
  }

  /// X coordinate of tile t's left boundary — always a grid-cell edge.
  [[nodiscard]] double boundary_x(std::size_t t) const noexcept {
    return bounds_.min.x + static_cast<double>(first_col(t)) * cell_;
  }

  /// Owning tile of a position. Total: positions outside the bounds clamp to
  /// the nearest column, so every point in the plane has exactly one owner.
  [[nodiscard]] std::size_t tile_of(geometry::Vec2 pos) const noexcept {
    double c = std::floor((pos.x - bounds_.min.x) / cell_);
    if (!(c > 0.0)) c = 0.0;  // also catches NaN
    std::size_t col = static_cast<std::size_t>(c);
    if (col >= cols_) col = cols_ - 1;
    return col_tile_[col];
  }

 private:
  geometry::Rect bounds_;
  double cell_;
  std::size_t tiles_;
  std::size_t cols_ = 1;
  std::vector<std::uint32_t> col_tile_;
};

}  // namespace sensrep::shard
