#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "net/node_id.hpp"
#include "sim/time.hpp"

namespace sensrep::shard {

/// One tick record crossing a tile's halo into the barrier: either a quiet
/// tick awaiting its self-local commit or an escalation awaiting a full
/// tick() replay. `seq` is the record's pop position within its tile's
/// window (tile tickers pop in (time, slot) order, so seq is time-ascending
/// per tile); together with `origin_tile` it gives every record a unique
/// canonical rank even under exact time ties.
struct TickRecord {
  sim::SimTime time = 0.0;
  std::uint64_t seq = 0;
  std::uint32_t origin_tile = 0;
  net::NodeId slot = net::kNoNode;
  std::uint32_t gen = 0;  // arm generation at classification (stale-entry guard)
  bool quiet = false;
};

/// The deterministic barrier order: (time, seq, origin-tile). Worker
/// scheduling never influences it — each field is fixed by the tile's heap
/// content, which is fixed by the simulation state at the window start.
[[nodiscard]] inline bool canonical_less(const TickRecord& a, const TickRecord& b) noexcept {
  if (a.time != b.time) return a.time < b.time;
  if (a.seq != b.seq) return a.seq < b.seq;
  return a.origin_tile < b.origin_tile;
}

/// Per-tile halo queue: records appended in pop order during the parallel
/// classification phase (single-writer — the tile's worker), drained by the
/// driver at the barrier.
class HaloQueue {
 public:
  void push(const TickRecord& r) { records_.push_back(r); }
  void clear() noexcept { records_.clear(); }
  [[nodiscard]] const std::vector<TickRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

 private:
  std::vector<TickRecord> records_;
};

/// K-way merge of all tiles' halo queues into canonical (time, seq,
/// origin-tile) order. The result is a pure function of the queues' contents
/// — independent of which worker filled which queue first.
inline void merge_halo(const std::vector<HaloQueue>& queues,
                       std::vector<TickRecord>& out) {
  out.clear();
  for (const HaloQueue& q : queues) {
    out.insert(out.end(), q.records().begin(), q.records().end());
  }
  std::sort(out.begin(), out.end(), canonical_less);
}

}  // namespace sensrep::shard
