#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "net/node_id.hpp"
#include "sim/time.hpp"

namespace sensrep::shard {

/// Per-tile beacon tick schedule: a (time, slot) min-heap owned by exactly
/// one tile. Under sharding these heaps replace the per-sensor every()
/// series in the global event queue — the dominant event class at scale —
/// which both parallelizes the tick work and shrinks the serial queue to
/// genuinely global events.
///
/// Disarms are lazy: the driver bumps the slot's arm generation and stale
/// heap entries are discarded on pop (the same strategy the pooled
/// EventQueue uses for cancelled events).
class TileTicker {
 public:
  struct Entry {
    sim::SimTime time;
    net::NodeId slot;
    std::uint32_t gen;
  };

  void arm(net::NodeId slot, sim::SimTime at, std::uint32_t gen) {
    heap_.push(Entry{at, slot, gen});
  }

  /// Pops every entry with time <= horizon in (time, slot) order and hands
  /// it to `fn(time, slot, gen)`. `fn` may arm() re-scheduled entries; the
  /// driver's window cap (one beacon period) guarantees they land beyond
  /// `horizon`, so the drain terminates.
  template <typename F>
  void drain(sim::SimTime horizon, F&& fn) {
    while (!heap_.empty() && heap_.top().time <= horizon) {
      const Entry e = heap_.top();
      heap_.pop();
      fn(e.time, e.slot, e.gen);
    }
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

 private:
  struct Later {
    [[nodiscard]] bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.slot > b.slot;  // deterministic pop order under exact ties
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
};

}  // namespace sensrep::shard
