#include "chaos/invariant_checker.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <stdexcept>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics_registry.hpp"

namespace sensrep::chaos {

namespace {

std::string format_time(sim::SimTime t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", t);
  return buf;
}

}  // namespace

std::string InvariantViolation::to_string() const {
  return "[t=" + format_time(time) + "] " + invariant + ": " + detail;
}

InvariantChecker::InvariantChecker(core::Simulation& sim, InvariantCheckerOptions opts,
                                   const obs::Tracer* tracer)
    : sim_(&sim), opts_(opts), tracer_(tracer) {
  double period = opts_.period_s;
  if (period <= 0.0) {
    const auto& cfg = sim_->config();
    period = cfg.robot_faults.enabled() ? cfg.robot_faults.heartbeat_period
                                        : cfg.sim_duration / 20.0;
  }
  if (period > 0.0) {
    sim_->simulator().every(period, [this] { check_now(); });
  }
}

void InvariantChecker::check_now() {
  ++checks_;
  verify_failure_conservation();
  verify_no_double_repair();
  verify_robot_bookkeeping();
  verify_span_balance(/*final_check=*/false);
}

void InvariantChecker::check_final() {
  ++checks_;
  verify_failure_conservation();
  verify_no_double_repair();
  verify_robot_bookkeeping();
  verify_span_balance(/*final_check=*/true);
}

void InvariantChecker::verify_failure_conservation() {
  const auto& records = sim_->failure_log().records();
  auto& field = sim_->field();
  for (std::size_t fid = 0; fid < records.size(); ++fid) {
    const auto& r = records[fid];
    const std::string who = "failure #" + std::to_string(fid) + " (slot " +
                            std::to_string(r.node_id) + ")";
    if (!sim::is_valid_time(r.failed_at)) {
      record("failure-conservation", who + " has no failure timestamp");
      continue;
    }
    if (r.detected() && r.detected_at < r.failed_at) {
      record("failure-conservation",
             who + " detected at " + format_time(r.detected_at) + " before it failed at " +
                 format_time(r.failed_at));
    }
    if (r.repaired()) {
      if (!r.robot_id) {
        record("failure-conservation", who + " is repaired but names no robot");
      }
      if (r.repaired_at < r.failed_at) {
        record("failure-conservation",
               who + " repaired at " + format_time(r.repaired_at) +
                   " before it failed at " + format_time(r.failed_at));
      }
      continue;
    }
    // Pending: the slot must currently be dead, and the field's open-failure
    // entry must point back at this exact record — a mismatch means a repair
    // event got lost or a record leaked (the "conservation" part).
    if (!field.is_sensor(r.node_id)) {
      record("failure-conservation", who + " names a non-sensor slot");
      continue;
    }
    if (field.node(r.node_id).alive()) {
      record("failure-conservation", who + " is unrepaired but its slot is alive");
      continue;
    }
    const auto open = field.open_failure(r.node_id);
    if (!open || *open != fid) {
      record("failure-conservation",
             who + " is unrepaired but the slot's open failure is " +
                 (open ? ("#" + std::to_string(*open)) : std::string("absent")));
    }
  }
}

void InvariantChecker::verify_no_double_repair() {
  const auto& records = sim_->failure_log().records();
  // Per-slot failure ids, in log order (== failed_at order per slot, verified).
  std::map<std::uint32_t, std::vector<std::size_t>> by_slot;
  for (std::size_t fid = 0; fid < records.size(); ++fid) {
    by_slot[records[fid].node_id].push_back(fid);
  }
  for (const auto& [slot, fids] : by_slot) {
    for (std::size_t i = 0; i + 1 < fids.size(); ++i) {
      const auto& prev = records[fids[i]];
      const auto& next = records[fids[i + 1]];
      if (!prev.repaired()) {
        record("no-double-repair",
               "slot " + std::to_string(slot) + " failed again (failure #" +
                   std::to_string(fids[i + 1]) + ") while failure #" +
                   std::to_string(fids[i]) + " is still unrepaired");
        continue;
      }
      if (prev.repaired_at > next.failed_at) {
        record("no-double-repair",
               "slot " + std::to_string(slot) + " repair of failure #" +
                   std::to_string(fids[i]) + " at " + format_time(prev.repaired_at) +
                   " overlaps failure #" + std::to_string(fids[i + 1]) + " at " +
                   format_time(next.failed_at) + " (slot repaired twice)");
      }
    }
  }
}

void InvariantChecker::verify_robot_bookkeeping() {
  auto& medium = sim_->medium();
  std::size_t dead = 0;
  for (const auto& robot : sim_->robots()) {
    const std::string who = "robot " + std::to_string(robot->id());
    if (robot->failed()) {
      ++dead;
      if (robot->busy() || !robot->queue().empty()) {
        record("robot-bookkeeping",
               who + " is failed but still holds work (busy=" +
                   (robot->busy() ? "yes" : "no") + ", queued=" +
                   std::to_string(robot->queue().size()) + ")");
      }
      if (medium.alive(robot->id())) {
        record("robot-bookkeeping", who + " is failed but still radio-reachable");
      }
    } else if (!medium.alive(robot->id())) {
      record("robot-bookkeeping", who + " is alive but radio-dark");
    }
  }
  const auto& stats = sim_->algorithm().fault_stats();
  if (stats.robot_failures < stats.robot_repairs ||
      dead != stats.robot_failures - stats.robot_repairs) {
    record("robot-bookkeeping",
           std::to_string(dead) + " robot(s) currently dead but injection ledger says " +
               std::to_string(stats.robot_failures) + " failures - " +
               std::to_string(stats.robot_repairs) + " repairs");
  }
}

void InvariantChecker::verify_span_balance(bool final_check) {
  if (tracer_ == nullptr) return;
  // Compaction would hide per-trace state; skip rather than false-positive.
  if (tracer_->retired() != 0) return;
  if (tracer_->stray_closes() != 0) {
    record("span-balance",
           std::to_string(tracer_->stray_closes()) +
               " stray span close(s): a lifecycle stage closed with no open span");
  }
  if (!final_check) return;
  // End-of-run only: in-flight repairs legitimately have partial chains while
  // the clock is still running. Chain completeness is asserted only for slots
  // with a single failure record: on a slot that failed repeatedly, a robot
  // holding a stale duplicate task for an EARLIER failure of that slot can
  // arrive and repair the newer one — its queue/travel spans then live on the
  // old failure's trace, so the new trace is legitimately partial.
  const auto& records = sim_->failure_log().records();
  std::map<std::uint32_t, std::size_t> failures_per_slot;
  for (const auto& r : records) ++failures_per_slot[r.node_id];
  for (std::size_t fid = 0; fid < records.size(); ++fid) {
    if (!records[fid].repaired()) continue;
    if (failures_per_slot[records[fid].node_id] != 1) continue;
    if (!tracer_->has_complete_chain(fid + 1)) {
      record("span-balance", "failure #" + std::to_string(fid) +
                                 " is repaired but its trace chain is incomplete");
    }
  }
}

void InvariantChecker::record(const char* invariant, std::string detail) {
  InvariantViolation v{sim_->simulator().now(), invariant, std::move(detail)};
  obs::Metrics::inc(obs::Counter::kInvariantViolations);
  // Stamp the breach into the ring before dumping so the dump's final
  // record carries the violation tick, then persist the history (even on
  // the fail_fast path — the artifact must survive the throw).
  obs::FlightRecorder::note(v.time, obs::FlightKind::kViolation);
  if (!opts_.flightrec_dump.empty() && obs::FlightRecorder::enabled()) {
    (void)obs::FlightRecorder::dump_to_file(opts_.flightrec_dump);
  }
  if (opts_.fail_fast) {
    throw std::runtime_error("invariant violated " + v.to_string());
  }
  violations_.push_back(std::move(v));
}

std::string InvariantChecker::report() const {
  std::string out = "invariant checks: " + std::to_string(checks_) + ", violations: " +
                    std::to_string(violations_.size()) + "\n";
  for (const auto& v : violations_) out += v.to_string() + "\n";
  return out;
}

bool InvariantChecker::write_report(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << report();
  return static_cast<bool>(out);
}

}  // namespace sensrep::chaos
