#pragma once

#include <string>
#include <vector>

#include "geometry/vec2.hpp"
#include "net/node_id.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace sensrep::chaos {

/// Gilbert–Elliott two-state bursty loss. One global good/bad Markov chain is
/// advanced once per reception decision; the reception is then dropped with
/// the current state's loss probability. Applied *in addition to* (independent
/// of) `RadioConfig::loss_probability`, so burst-vs-uniform ablations can hold
/// the Bernoulli knob at zero and match average rates analytically: the
/// stationary bad-state share is p_enter_bad / (p_enter_bad + p_exit_bad).
struct BurstLossConfig {
  bool enabled = false;
  double p_enter_bad = 0.0;  // good -> bad transition probability per decision
  double p_exit_bad = 0.0;   // bad -> good transition probability per decision
  double loss_bad = 0.0;     // drop probability while in the bad state
  double loss_good = 0.0;    // drop probability while in the good state
};

/// Per-reception duplication: each *delivered* reception spawns a second copy
/// of the same frame with probability `probability`, arriving after an extra
/// uniform(0, extra_delay_s) delay. Duplicates are reception artifacts, not
/// retransmissions: they are not counted as transmissions.
struct DuplicationConfig {
  bool enabled = false;
  double probability = 0.0;
  double extra_delay_s = 2e-3;  // max extra delay of the duplicate copy
};

/// Reorder-inducing jitter: with probability `probability` a delivery gains an
/// extra uniform(0, max_extra_s) delay, letting later frames overtake it.
struct JitterConfig {
  bool enabled = false;
  double probability = 0.0;
  double max_extra_s = 0.0;
};

/// A scheduled partition: during [start_s, end_s) the selected nodes are
/// jammed — they can neither send nor receive. Transmissions they attempt are
/// still counted (jamming behaves like loss = 1, not like a powered-off
/// radio). Selection is a rect zone, an explicit node set, or — when neither
/// is given — every node (a global blackout window).
struct PartitionWindow {
  double start_s = 0.0;
  double end_s = 0.0;  // exclusive

  bool has_zone = false;
  geometry::Vec2 zone_min{0.0, 0.0};
  geometry::Vec2 zone_max{0.0, 0.0};
  std::vector<net::NodeId> nodes;  // explicit victims (may combine with zone)

  /// True when `id` at `pos` falls under this window's selector at time `now`.
  [[nodiscard]] bool covers(sim::SimTime now, net::NodeId id,
                            geometry::Vec2 pos) const noexcept;
};

/// All adversarial link behaviors, strictly opt-in: a default ChaosConfig is
/// inert and the medium never instantiates a LinkModel for it, so default and
/// `--loss`-only runs stay byte-identical.
struct ChaosConfig {
  BurstLossConfig burst;
  DuplicationConfig duplication;
  JitterConfig jitter;
  std::vector<PartitionWindow> partitions;

  [[nodiscard]] bool any_enabled() const noexcept;

  /// Throws std::invalid_argument on NaN / out-of-range probabilities,
  /// negative delays, or empty partition windows (end <= start).
  void validate() const;
};

/// Deterministic chaos decision engine owned by the medium.
///
/// Each sub-model draws from its own stream forked from the medium's RNG
/// (fork is a pure function of (seed, name) and does not advance the parent),
/// and only draws when its sub-model is enabled — adding chaos never perturbs
/// the existing backoff/loss draw sequences, and enabling one sub-model never
/// perturbs another.
class LinkModel {
 public:
  LinkModel(const ChaosConfig& config, const sim::Rng& parent);

  /// Advances the Gilbert–Elliott chain one step and decides whether this
  /// reception is dropped by burst loss. False (no draw) when disabled.
  [[nodiscard]] bool burst_drop();

  /// Whether a delivered reception should spawn a duplicate copy.
  [[nodiscard]] bool duplicate();

  /// Extra delay of the duplicate copy, in (0, extra_delay_s].
  [[nodiscard]] sim::Duration duplicate_delay();

  /// Extra reorder jitter for one delivery; 0 when disabled or not drawn.
  [[nodiscard]] sim::Duration jitter();

  /// True when `id` at `pos` is inside an active partition window at `now`.
  [[nodiscard]] bool jammed(sim::SimTime now, net::NodeId id,
                            geometry::Vec2 pos) const noexcept;

  /// True while the Gilbert–Elliott chain sits in the bad state.
  [[nodiscard]] bool in_bad_state() const noexcept { return bad_state_; }

 private:
  ChaosConfig config_;
  sim::Rng burst_rng_;
  sim::Rng dup_rng_;
  sim::Rng jitter_rng_;
  bool bad_state_ = false;  // GE chains start in the good state
};

}  // namespace sensrep::chaos
