#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "obs/tracer.hpp"
#include "sim/time.hpp"

namespace sensrep::chaos {

/// One invariant breach, with the event context needed to diagnose it
/// without a rerun (violations ship as CI artifacts).
struct InvariantViolation {
  sim::SimTime time = 0.0;
  std::string invariant;  // catalog key, e.g. "failure-conservation"
  std::string detail;     // slot / failure id / robot context

  [[nodiscard]] std::string to_string() const;
};

struct InvariantCheckerOptions {
  /// Throw std::runtime_error at the first violation (tests/CI). When false,
  /// violations accumulate and are queryable / writable as a report.
  bool fail_fast = true;

  /// Validation cadence in sim seconds. 0 derives it: the fault model's
  /// heartbeat period when faults are on (the supervise cadence), else
  /// sim_duration / 20.
  double period_s = 0.0;

  /// When non-empty and the flight recorder is enabled, every violation
  /// dumps the ring to this JSONL path (last violation wins), so the tail
  /// of the dump is the history leading straight into the breach. The dump
  /// happens before fail_fast throws.
  std::string flightrec_dump;
};

/// Runtime oracle validating the repair protocols' safety bookkeeping while
/// a simulation runs under (possibly adversarial) link conditions.
///
/// Construct it AFTER the Simulation and BEFORE run(); it self-arms a
/// periodic validation event at the supervise cadence, and check_final()
/// runs the stricter end-of-run pass. The checker (and any tracer handed to
/// it) must outlive the run. Strictly opt-in: a simulation without a checker
/// behaves identically.
///
/// Invariant catalog (also documented in docs/PROTOCOL.md):
///  - failure-conservation: every FailureLog record is exactly one of
///    repaired (robot id set, repaired_at >= failed_at, timestamps causally
///    ordered) or pending (its slot is currently dead and the field's
///    open-failure entry points back at this record). Nothing is lost, even
///    when redispatch accounting moved the task between robots.
///  - no-double-repair: per slot, failure records never overlap in time —
///    a record is repaired before the slot's next failure opens, and at most
///    the newest record per slot is unrepaired.
///  - robot-bookkeeping: ground-truth robot state is consistent — a failed
///    robot holds no work (not busy, queue empty) and is radio-dark; a live
///    robot is radio-reachable; currently-dead robots equal failure minus
///    repair injections. (The supervision *belief* may legitimately diverge
///    under partitions and is deliberately not asserted.)
///  - span-balance (tracer attached from t=0 only): no stray closes, and at
///    end-of-run every repaired failure on a once-failed slot carries a
///    complete detect->report->dispatch->queue->travel span chain. (Slots
///    that failed repeatedly are exempt: a stale duplicate task for an
///    earlier failure can repair a later one, splitting the chain across
///    the two traces.)
class InvariantChecker {
 public:
  explicit InvariantChecker(core::Simulation& sim, InvariantCheckerOptions opts = {},
                            const obs::Tracer* tracer = nullptr);

  InvariantChecker(const InvariantChecker&) = delete;
  InvariantChecker& operator=(const InvariantChecker&) = delete;

  /// Runs the periodic invariant set at the current sim time.
  void check_now();

  /// End-of-run pass: the periodic set plus span-chain completeness.
  void check_final();

  [[nodiscard]] bool ok() const noexcept { return violations_.empty(); }
  [[nodiscard]] const std::vector<InvariantViolation>& violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] std::uint64_t checks_run() const noexcept { return checks_; }

  /// Human-readable summary (one line per violation).
  [[nodiscard]] std::string report() const;

  /// Writes report() to `path` (CI artifact on failure). False on I/O error.
  bool write_report(const std::string& path) const;

 private:
  void verify_failure_conservation();
  void verify_no_double_repair();
  void verify_robot_bookkeeping();
  void verify_span_balance(bool final_check);
  void record(const char* invariant, std::string detail);

  core::Simulation* sim_;
  InvariantCheckerOptions opts_;
  const obs::Tracer* tracer_;
  std::vector<InvariantViolation> violations_;
  std::uint64_t checks_ = 0;
};

}  // namespace sensrep::chaos
