#include "chaos/link_model.hpp"

#include <cmath>
#include <stdexcept>

namespace sensrep::chaos {

namespace {

/// Probability in [0, 1] and not NaN. Negated form so NaN fails the test.
void require_probability(double v, const char* what) {
  if (!(v >= 0.0 && v <= 1.0)) {
    throw std::invalid_argument(std::string("ChaosConfig: ") + what +
                                " must be a probability in [0, 1]");
  }
}

/// Finite and >= 0.
void require_nonnegative(double v, const char* what) {
  if (!(v >= 0.0) || !std::isfinite(v)) {
    throw std::invalid_argument(std::string("ChaosConfig: ") + what +
                                " must be finite and non-negative");
  }
}

}  // namespace

bool PartitionWindow::covers(sim::SimTime now, net::NodeId id,
                             geometry::Vec2 pos) const noexcept {
  if (now < start_s || now >= end_s) return false;
  if (!has_zone && nodes.empty()) return true;  // global blackout
  if (has_zone && pos.x >= zone_min.x && pos.x <= zone_max.x &&
      pos.y >= zone_min.y && pos.y <= zone_max.y) {
    return true;
  }
  for (const net::NodeId n : nodes) {
    if (n == id) return true;
  }
  return false;
}

bool ChaosConfig::any_enabled() const noexcept {
  return burst.enabled || duplication.enabled || jitter.enabled || !partitions.empty();
}

void ChaosConfig::validate() const {
  require_probability(burst.p_enter_bad, "burst p_enter_bad");
  require_probability(burst.p_exit_bad, "burst p_exit_bad");
  require_probability(burst.loss_bad, "burst loss_bad");
  require_probability(burst.loss_good, "burst loss_good");
  require_probability(duplication.probability, "duplication probability");
  require_nonnegative(duplication.extra_delay_s, "duplication extra_delay_s");
  require_probability(jitter.probability, "jitter probability");
  require_nonnegative(jitter.max_extra_s, "jitter max_extra_s");
  for (const PartitionWindow& w : partitions) {
    require_nonnegative(w.start_s, "partition start");
    if (!(w.end_s > w.start_s) || !std::isfinite(w.end_s)) {
      throw std::invalid_argument("ChaosConfig: partition window must have end > start");
    }
    if (w.has_zone && (!(w.zone_max.x >= w.zone_min.x) || !(w.zone_max.y >= w.zone_min.y))) {
      throw std::invalid_argument("ChaosConfig: partition zone must have max >= min");
    }
  }
}

LinkModel::LinkModel(const ChaosConfig& config, const sim::Rng& parent)
    : config_(config),
      burst_rng_(parent.fork("chaos-burst")),
      dup_rng_(parent.fork("chaos-dup")),
      jitter_rng_(parent.fork("chaos-jitter")) {
  config_.validate();
}

bool LinkModel::burst_drop() {
  if (!config_.burst.enabled) return false;
  if (bad_state_) {
    if (burst_rng_.chance(config_.burst.p_exit_bad)) bad_state_ = false;
  } else {
    if (burst_rng_.chance(config_.burst.p_enter_bad)) bad_state_ = true;
  }
  const double p = bad_state_ ? config_.burst.loss_bad : config_.burst.loss_good;
  return p > 0.0 && burst_rng_.chance(p);
}

bool LinkModel::duplicate() {
  if (!config_.duplication.enabled) return false;
  return dup_rng_.chance(config_.duplication.probability);
}

sim::Duration LinkModel::duplicate_delay() {
  return dup_rng_.uniform(0.0, config_.duplication.extra_delay_s);
}

sim::Duration LinkModel::jitter() {
  if (!config_.jitter.enabled) return 0.0;
  if (!jitter_rng_.chance(config_.jitter.probability)) return 0.0;
  return jitter_rng_.uniform(0.0, config_.jitter.max_extra_s);
}

bool LinkModel::jammed(sim::SimTime now, net::NodeId id,
                       geometry::Vec2 pos) const noexcept {
  for (const PartitionWindow& w : config_.partitions) {
    if (w.covers(now, id, pos)) return true;
  }
  return false;
}

}  // namespace sensrep::chaos
