#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "geometry/vec2.hpp"
#include "net/node_id.hpp"
#include "sim/time.hpp"

namespace sensrep::robot {

/// One replacement job: drive to `location` and unload a functional unit
/// into sensor slot `slot`.
struct RepairTask {
  net::NodeId slot = net::kNoNode;
  geometry::Vec2 location;
  std::uint64_t failure_id = 0;  // metrics tag (0 = untagged)
  sim::SimTime enqueued_at = 0.0;
};

/// First-come-first-serve task queue (paper §3.1: "A robot queues such
/// requests and handles the failures in a first-come-first-serve fashion").
class TaskQueue {
 public:
  void push(RepairTask task) { tasks_.push_back(task); }

  /// Pops the oldest task; nullopt when empty.
  std::optional<RepairTask> pop();

  [[nodiscard]] bool empty() const noexcept { return tasks_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return tasks_.size(); }

  /// Oldest pending task without removing it; nullopt when empty.
  [[nodiscard]] std::optional<RepairTask> front() const;

  /// True if a task for this slot is already queued (duplicate suppression).
  [[nodiscard]] bool contains_slot(net::NodeId slot) const noexcept;

 private:
  std::deque<RepairTask> tasks_;
};

}  // namespace sensrep::robot
