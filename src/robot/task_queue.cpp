#include "robot/task_queue.hpp"

#include <algorithm>

namespace sensrep::robot {

std::optional<RepairTask> TaskQueue::pop() {
  if (tasks_.empty()) return std::nullopt;
  RepairTask t = tasks_.front();
  tasks_.pop_front();
  return t;
}

std::optional<RepairTask> TaskQueue::front() const {
  if (tasks_.empty()) return std::nullopt;
  return tasks_.front();
}

bool TaskQueue::contains_slot(net::NodeId slot) const noexcept {
  return std::any_of(tasks_.begin(), tasks_.end(),
                     [slot](const RepairTask& t) { return t.slot == slot; });
}

}  // namespace sensrep::robot
