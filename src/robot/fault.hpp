#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string_view>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace sensrep::robot {

/// Maintainer-robot time-to-failure distributions.
///
/// The paper assumes robots never fail; the fault-tolerance subsystem drops
/// that assumption. Exponential MTBF models independent electronics faults
/// (memoryless, the usual reliability baseline); Weibull with shape > 1
/// models mechanical wear-out, where a fleet deployed together fails in a
/// burst — the stress case for recovery.
enum class FaultDistribution {
  kExponential,
  kWeibull,
};

[[nodiscard]] std::string_view to_string(FaultDistribution d) noexcept;

/// One deterministic crash for tests and benches: robot `robot` (dense fleet
/// index) dies at absolute simulation time `at`.
struct ScheduledCrash {
  std::size_t robot = 0;
  sim::SimTime at = 0.0;
};

/// One deterministic resurrection for tests and benches: robot `robot` comes
/// back into service at absolute simulation time `at` (no-op if it is alive).
struct ScheduledRepair {
  std::size_t robot = 0;
  sim::SimTime at = 0.0;
};

/// Robot fault model plus the detection-side knobs (heartbeats and leases).
///
/// Strictly opt-in: with the default configuration (`mtbf = ∞`, no scheduled
/// crashes) enabled() is false and the simulation schedules no extra events,
/// draws no extra randomness, and sends no extra messages — existing golden
/// traces are byte-identical.
struct FaultConfig {
  FaultDistribution distribution = FaultDistribution::kExponential;

  /// Mean time between failures per robot, seconds. Infinity (the default)
  /// disables spontaneous robot failures.
  double mtbf = std::numeric_limits<double>::infinity();
  double weibull_shape = 3.0;  // only for kWeibull

  /// Deterministic crash times (fault injection for tests/benches); applied
  /// in addition to any spontaneous draws.
  std::vector<ScheduledCrash> crashes;

  /// Centralized only: kills the dedicated manager at this time, exercising
  /// the lowest-id-robot failover path. Ignored by the distributed
  /// algorithms, which have no manager node.
  std::optional<sim::SimTime> manager_crash_at;

  // --- repair / return (MTTR) ----------------------------------------------

  /// Mean time to repair, seconds: how long a failed robot stays out of
  /// service before it resurrects at its depot (if configured) or park
  /// position and rejoins. Infinity (the default) keeps the pre-MTTR pure
  /// decay model: a dead robot never comes back. With a finite MTTR the
  /// fleet reaches steady-state availability MTBF / (MTBF + MTTR).
  double mttr = std::numeric_limits<double>::infinity();
  FaultDistribution repair_distribution = FaultDistribution::kExponential;
  double repair_weibull_shape = 3.0;  // only for kWeibull repairs

  /// Deterministic resurrections (for tests/benches); applied in addition to
  /// any spontaneous MTTR draws.
  std::vector<ScheduledRepair> repairs;

  /// Centralized only: resurrects the dedicated manager at this time. The
  /// acting manager hands the role back at the next supervision sweep.
  std::optional<sim::SimTime> manager_repair_at;

  /// Liveness heartbeat period, seconds. While the fault model is enabled
  /// every robot re-announces its location on this period even when parked
  /// (a parked robot emits no movement-leg updates, so without heartbeats a
  /// live idle robot would be indistinguishable from a dead one). The
  /// centralized manager floods its own heartbeat on the same period.
  double heartbeat_period = 60.0;

  /// A lease expires after `lease_multiplier * heartbeat_period` seconds
  /// without a refreshing update — the configurable multiple of the expected
  /// update interval. >= 2 tolerates one lost/late heartbeat.
  double lease_multiplier = 3.0;

  /// Service mode (src/service): arm the whole fault-tolerance machinery —
  /// heartbeats, leases, supervision sweeps, sensor-side knowledge aging and
  /// failure re-reports — even when no fault source is pre-scheduled, so
  /// crash/repair events injected at runtime (the daemon's `crash-robot` /
  /// `repair-robot` commands) are detected and recovered exactly like
  /// scheduled ones. Off by default: batch runs pay nothing for it.
  bool external = false;

  /// Auto-tune each robot's lease window from its *observed* update cadence
  /// (EWMA of inter-refresh intervals): a robot that updates every movement
  /// leg (~20 s at 1 m/s) is presumed dead much sooner than a parked one
  /// that only heartbeats. The tuned window is
  /// `lease_multiplier * EWMA_cadence`, clamped to
  /// [2 * heartbeat_period, lease_window()] so it never drops below one
  /// tolerated-lost-heartbeat and never exceeds the configured window.
  bool lease_auto_tune = false;

  [[nodiscard]] bool spontaneous() const noexcept;

  /// True when failed robots can come back: a finite MTTR, scheduled repair
  /// entries, or a scheduled manager repair.
  [[nodiscard]] bool repairs_enabled() const noexcept;

  /// True when any fault source is configured; everything the subsystem adds
  /// (heartbeats, leases, supervision, re-reports) is gated on this.
  [[nodiscard]] bool enabled() const noexcept;

  /// Seconds of silence after which a robot (or the manager) is presumed dead.
  [[nodiscard]] double lease_window() const noexcept {
    return lease_multiplier * heartbeat_period;
  }

  /// Draws one time-to-failure. Requires spontaneous().
  [[nodiscard]] double draw(sim::Rng& rng) const;

  /// Draws one time-to-repair. Requires a finite mttr.
  [[nodiscard]] double draw_repair(sim::Rng& rng) const;

  /// Throws std::invalid_argument on out-of-range parameters.
  void validate() const;
};

}  // namespace sensrep::robot
