#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>

#include "geometry/vec2.hpp"
#include "net/medium.hpp"
#include "net/packet.hpp"
#include "obs/tracer.hpp"
#include "robot/task_queue.hpp"
#include "routing/geo_router.hpp"
#include "routing/neighbor_table.hpp"
#include "sim/simulator.hpp"
#include "wsn/sensor_field.hpp"

namespace sensrep::robot {

class RobotNode;

/// Algorithm-specific half of a robot's behavior (mirrors wsn::SensorPolicy).
///
/// The three coordination algorithms differ, on the robot side, in what a
/// location update is (unicast to the central manager / subarea flood /
/// Voronoi-scoped flood) and in who handles a delivered packet (forward to a
/// maintainer vs. enqueue locally as the subarea manager).
class RobotPolicy {
 public:
  virtual ~RobotPolicy() = default;

  /// The robot moved one update-threshold leg (or arrived): emit the
  /// algorithm's location updates now.
  virtual void on_robot_location_update(RobotNode& robot) = 0;

  /// A geo-routed packet was delivered to this robot.
  virtual void on_robot_packet(RobotNode& robot, const net::Packet& pkt) = 0;

  /// The robot finished a replacement (paper §2(c): "After replacing a
  /// failed node, the maintainer robot may need to update the manager or
  /// some sensors"). Default: nothing beyond the movement-leg updates.
  virtual void on_robot_task_complete(RobotNode& /*robot*/) {}

  /// The robot's queue drained (it is now idle). Policies may reposition it
  /// (drive_to) — the anticipatory-repositioning extension. Default: park.
  virtual void on_robot_idle(RobotNode& /*robot*/) {}

  /// The robot just died (fault injection): it has already stopped moving and
  /// dropped its queue. Ground-truth hook for bookkeeping only — recovery
  /// must wait for lease expiry, which is how the system *detects* the death.
  virtual void on_robot_failed(RobotNode& /*robot*/, std::size_t /*tasks_lost*/) {}

  /// The robot was repaired and rejoined service (MTTR model): its radio is
  /// back on and it is idle at its resurrection position. Policies restart
  /// the heartbeat and run the algorithm's rejoin path (re-admission,
  /// ownership return, reflood). Default: nothing.
  virtual void on_robot_repaired(RobotNode& /*robot*/) {}

  /// The robot's position just changed (movement leg, teleport, or a depot
  /// resurrection). Fires before any other hook for the same event, so
  /// policies keeping a spatial index of the fleet can apply the incremental
  /// move first and answer queries from consistent state. Default: nothing.
  virtual void on_robot_moved(RobotNode& /*robot*/) {}
};

/// A mobile maintainer: picks, carries, and unloads sensor units
/// (paper §1). Kinematic point robot at constant speed (Pioneer 3DX's 1 m/s),
/// with the paper's on-demand mobility model: it moves only when tasked.
///
/// While driving, it emits location updates every `update_threshold` meters
/// (20 m — under one third of the sensors' 63 m range, paper §4.2) through
/// its RobotPolicy. Tasks are served FCFS.
class RobotNode {
 public:
  struct Config {
    double speed = 1.0;             // m/s
    double tx_range = 250.0;        // robot/manager radio range, m
    double update_threshold = 20.0; // location-update distance, m
    /// Carried spare units; infinite by default (the paper does not model
    /// restocking). With finite spares set `depot`: the robot drives there
    /// to reload when empty.
    std::size_t spares = std::numeric_limits<std::size_t>::max();
    std::optional<geometry::Vec2> depot;
  };

  RobotNode(net::NodeId id, geometry::Vec2 pos, const Config& config,
            sim::Simulator& simulator, net::Medium& medium, wsn::SensorField& field,
            RobotPolicy& policy);

  RobotNode(const RobotNode&) = delete;
  RobotNode& operator=(const RobotNode&) = delete;

  // --- state ---------------------------------------------------------------

  [[nodiscard]] net::NodeId id() const noexcept { return id_; }
  [[nodiscard]] geometry::Vec2 position() const noexcept { return pos_; }
  [[nodiscard]] bool busy() const noexcept { return current_.has_value(); }
  [[nodiscard]] bool failed() const noexcept { return failed_; }
  [[nodiscard]] const TaskQueue& queue() const noexcept { return queue_; }
  [[nodiscard]] double odometer() const noexcept { return odometer_; }
  [[nodiscard]] std::size_t repairs_done() const noexcept { return repairs_done_; }
  [[nodiscard]] std::size_t spares_left() const noexcept { return spares_; }

  /// Tasks this robot dropped because it had no spare and no depot (the
  /// formerly-silent drop in start_next_task; surfaced as `orphaned_tasks`).
  [[nodiscard]] std::size_t orphaned_tasks() const noexcept { return orphaned_tasks_; }

  /// Most recently completed repair (nullptr before the first). Set just
  /// before the on_robot_task_complete hook, so policies can learn which
  /// task finished (kTaskComplete needs the failure id).
  [[nodiscard]] const RepairTask* last_completed() const noexcept {
    return last_completed_ ? &*last_completed_ : nullptr;
  }
  [[nodiscard]] routing::GeoRouter& router() noexcept { return *router_; }
  [[nodiscard]] routing::NeighborTable& table() noexcept { return table_; }

  /// Monotone sequence for this robot's location updates (flood dedup).
  [[nodiscard]] std::uint32_t next_update_seq() noexcept { return ++update_seq_; }
  [[nodiscard]] std::uint32_t current_update_seq() const noexcept { return update_seq_; }

  // --- control ---------------------------------------------------------------

  /// Accepts a replacement job (from a manager — possibly this robot itself
  /// in the distributed algorithms). Records dispatch metrics; duplicate
  /// slots already queued or being served are ignored.
  void enqueue(const RepairTask& task);

  /// Instantly relocates an idle robot (initialization: the fixed algorithm
  /// sends robots to their subarea centers before time starts; also tests).
  /// Throws if the robot is busy.
  void teleport(geometry::Vec2 pos);

  /// Drives an idle robot to `pos` (counted movement, emits location
  /// updates); used by the fixed algorithm's initialization when measuring
  /// init motion. No replacement happens on arrival.
  void drive_to(geometry::Vec2 pos);

  /// Refreshes the neighbor table from the medium (alive nodes within this
  /// robot's own TX range). See DESIGN.md: robot-side neighbor discovery is
  /// abstracted as an oracle over the robot's 250 m range.
  void refresh_neighbor_table();

  /// Medium receive entry.
  void on_packet(const net::Packet& pkt, net::NodeId from);

  /// Opens/closes queue/travel/orphan spans on `tracer` (nullptr detaches).
  /// The tracer must outlive the robot.
  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }

  /// Starts the periodic liveness heartbeat (robot fault tolerance): every
  /// `period` seconds the policy's on_robot_location_update fires as if the
  /// robot had crossed a movement threshold, so a parked robot keeps
  /// refreshing its lease. Stops permanently when the robot fails.
  void start_heartbeat(double period);

  /// Kills the robot (fault injection): cancels movement and heartbeats,
  /// detaches from the radio medium, and drops the current task plus the
  /// whole queue. Returns the number of tasks lost (served FCFS no more).
  /// Idempotent; a failed robot ignores enqueue/drive_to/packets.
  std::size_t fail();

  /// Resurrects a failed robot (MTTR model): the repaired unit comes back
  /// into service at its depot (if configured — the repair happened there,
  /// so spares are also restocked) or in place at its park position. The
  /// radio comes back up and the neighbor table is rebuilt; the policy's
  /// on_robot_repaired hook restarts heartbeats and runs the algorithm's
  /// rejoin path. Idempotent: a live robot ignores repair().
  void repair();

 private:
  void start_next_task();
  void step_movement();
  void arrive();
  void begin_leg_to(geometry::Vec2 target);

  net::NodeId id_;
  geometry::Vec2 pos_;
  Config config_;
  sim::Simulator* sim_;
  net::Medium* medium_;
  wsn::SensorField* field_;
  RobotPolicy* policy_;

  routing::NeighborTable table_;
  std::unique_ptr<routing::GeoRouter> router_;

  TaskQueue queue_;
  std::optional<RepairTask> current_;
  std::optional<RepairTask> last_completed_;
  geometry::Vec2 target_;
  bool reloading_ = false;   // current drive is a depot run
  bool init_drive_ = false;  // current drive is an init reposition
  double task_travel_ = 0.0;
  double odometer_ = 0.0;
  std::size_t spares_;
  std::size_t repairs_done_ = 0;
  std::size_t orphaned_tasks_ = 0;
  std::uint32_t update_seq_ = 0;
  bool failed_ = false;
  sim::EventId move_event_{};
  sim::EventId heartbeat_event_{};
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace sensrep::robot
