#pragma once

namespace sensrep::robot {

/// Robot energy model, after Mei, Lu, Hu & Lee, "A Case Study of Mobile
/// Robot's Energy Consumption and Conservation Techniques" (ICAR 2005) —
/// the paper's own reference [9], from which it takes the Pioneer 3DX's
/// 1 m/s speed. Measured there: total power while cruising at ~1 m/s is
/// roughly 21 W (motors + embedded computer + sonar), and an idle-but-on
/// robot draws roughly 6 W.
///
/// The paper's motion-overhead metric (Fig. 2) is distance, which is
/// proportional to the *marginal* motion energy at constant speed; this
/// model also accounts for the idle floor so deployments can budget
/// batteries for a whole mission.
struct EnergyModel {
  double drive_power_w = 21.0;  // while moving at `speed`
  double idle_power_w = 6.0;    // parked, radio on, waiting for requests
  double speed_m_per_s = 1.0;

  /// Marginal energy attributable to driving `distance_m` meters.
  [[nodiscard]] double motion_energy_j(double distance_m) const noexcept {
    return (drive_power_w - idle_power_w) * distance_m / speed_m_per_s;
  }

  /// Total energy for one robot over a mission: `distance_m` driven during
  /// `mission_s` seconds of uptime.
  [[nodiscard]] double mission_energy_j(double distance_m, double mission_s) const noexcept {
    const double drive_time = distance_m / speed_m_per_s;
    return drive_power_w * drive_time + idle_power_w * (mission_s - drive_time);
  }
};

}  // namespace sensrep::robot
