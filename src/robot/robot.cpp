#include "robot/robot.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "trace/log.hpp"

namespace sensrep::robot {

using geometry::Vec2;
using net::NodeId;
using net::Packet;

RobotNode::RobotNode(NodeId id, Vec2 pos, const Config& config, sim::Simulator& simulator,
                     net::Medium& medium, wsn::SensorField& field, RobotPolicy& policy)
    : id_(id),
      pos_(pos),
      config_(config),
      sim_(&simulator),
      medium_(&medium),
      field_(&field),
      policy_(&policy),
      spares_(config.spares) {
  if (config.speed <= 0.0) throw std::invalid_argument("RobotNode: speed must be positive");
  if (config.update_threshold <= 0.0) {
    throw std::invalid_argument("RobotNode: update_threshold must be positive");
  }
  routing::GeoRouter::Callbacks cb;
  cb.deliver = [this](const Packet& pkt) { policy_->on_robot_packet(*this, pkt); };
  cb.drop = [this](const Packet& pkt, routing::DropReason reason) {
    trace::Logger::global().logf(trace::Level::kDebug, sim_->now(), "robot",
                                 "robot %u dropped %s: %s", id_,
                                 std::string(net::to_string(pkt.type)).c_str(),
                                 std::string(to_string(reason)).c_str());
  };
  router_ = std::make_unique<routing::GeoRouter>(
      id_, medium, table_, [this] { return pos_; }, std::move(cb));
  medium_->attach(id_, pos_, config_.tx_range,
                  [this](const Packet& pkt, NodeId from) { on_packet(pkt, from); });
}

void RobotNode::refresh_neighbor_table() {
  table_.clear();
  for (const NodeId n : medium_->nodes_near(pos_, config_.tx_range)) {
    if (n == id_) continue;
    table_.upsert(n, medium_->position_of(n));
  }
}

void RobotNode::on_packet(const Packet& pkt, NodeId from) {
  if (failed_) return;  // dead radio (the medium already drops RX; belt & braces)
  // Floods and one-hop announces (broadcast dst) are sensor-side traffic;
  // only geo-routed unicasts concern the robot's router.
  if (pkt.dst == net::kBroadcastId) return;
  refresh_neighbor_table();
  router_->on_receive(pkt, from);
}

void RobotNode::start_heartbeat(double period) {
  if (heartbeat_event_.valid() || failed_) return;
  heartbeat_event_ = sim_->every(period, [this] {
    policy_->on_robot_location_update(*this);
  });
}

std::size_t RobotNode::fail() {
  if (failed_) return 0;
  failed_ = true;
  std::size_t lost = current_ && !init_drive_ ? 1 : 0;
  if (tracer_ && current_ && !init_drive_ && current_->failure_id != 0) {
    // The in-flight task is stranded until redispatch (or never).
    tracer_->close_if_open(current_->failure_id, obs::Stage::kTravel, sim_->now(),
                           task_travel_, id_);
    tracer_->open(current_->failure_id, obs::Stage::kOrphan, sim_->now(),
                  current_->slot, id_);
  }
  while (const auto dropped = queue_.pop()) {
    ++lost;
    if (tracer_ && dropped->failure_id != 0) {
      tracer_->close_if_open(dropped->failure_id, obs::Stage::kQueue, sim_->now(),
                             std::nullopt, id_);
      tracer_->open(dropped->failure_id, obs::Stage::kOrphan, sim_->now(),
                    dropped->slot, id_);
    }
  }
  current_.reset();
  reloading_ = false;
  init_drive_ = false;
  if (move_event_.valid()) {
    sim_->cancel(move_event_);
    move_event_ = {};
  }
  if (heartbeat_event_.valid()) {
    sim_->cancel(heartbeat_event_);
    heartbeat_event_ = {};
  }
  medium_->set_alive(id_, false);
  trace::Logger::global().logf(trace::Level::kInfo, sim_->now(), "robot",
                               "robot %u failed; %zu queued task(s) lost", id_, lost);
  return lost;
}

void RobotNode::repair() {
  if (!failed_) return;
  failed_ = false;
  if (config_.depot) {
    pos_ = *config_.depot;
    spares_ = config_.spares;  // the repair happened at the depot: restocked
    medium_->set_position(id_, pos_);
    policy_->on_robot_moved(*this);
  }
  medium_->set_alive(id_, true);
  refresh_neighbor_table();
  trace::Logger::global().logf(trace::Level::kInfo, sim_->now(), "robot",
                               "robot %u repaired; back in service at (%.0f, %.0f)", id_,
                               pos_.x, pos_.y);
  policy_->on_robot_repaired(*this);
}

void RobotNode::enqueue(const RepairTask& task) {
  if (failed_) return;  // dead robots accept no work
  if ((current_ && current_->slot == task.slot) || queue_.contains_slot(task.slot)) {
    return;  // already being handled
  }
  if (task.failure_id != 0) {
    auto& rec = field_->failure_log().at(task.failure_id - 1);
    if (!sim::is_valid_time(rec.dispatched_at)) rec.dispatched_at = sim_->now();
    if (tracer_) {
      // close_if_open on both: a re-report re-dispatches an already-accepted
      // failure (dispatch long closed), and only fault recovery has an
      // orphan span to resolve here.
      tracer_->close_if_open(task.failure_id, obs::Stage::kDispatch, sim_->now(),
                             std::nullopt, id_);
      tracer_->close_if_open(task.failure_id, obs::Stage::kOrphan, sim_->now(),
                             std::nullopt, id_);
      tracer_->open(task.failure_id, obs::Stage::kQueue, sim_->now(), task.slot, id_);
    }
  }
  queue_.push(task);
  if (!current_) start_next_task();
}

void RobotNode::teleport(Vec2 pos) {
  if (busy()) throw std::logic_error("RobotNode::teleport: robot is busy");
  pos_ = pos;
  medium_->set_position(id_, pos_);
  policy_->on_robot_moved(*this);
  refresh_neighbor_table();
}

void RobotNode::drive_to(Vec2 pos) {
  if (failed_) return;
  if (busy()) throw std::logic_error("RobotNode::drive_to: robot is busy");
  current_ = RepairTask{net::kNoNode, pos, 0, sim_->now()};
  init_drive_ = true;
  task_travel_ = 0.0;
  begin_leg_to(pos);
}

void RobotNode::start_next_task() {
  assert(!current_);
  const auto next = queue_.pop();
  if (!next) {
    policy_->on_robot_idle(*this);
    return;
  }
  current_ = *next;
  task_travel_ = 0.0;
  if (tracer_ && current_->failure_id != 0) {
    tracer_->close_if_open(current_->failure_id, obs::Stage::kQueue, sim_->now(),
                           std::nullopt, id_);
  }
  // Out of spares: detour to the depot first (reload happens on arrival).
  if (spares_ == 0 && config_.depot) {
    reloading_ = true;
    if (tracer_ && current_->failure_id != 0) {
      tracer_->open(current_->failure_id, obs::Stage::kTravel, sim_->now(),
                    current_->slot, id_);
    }
    begin_leg_to(*config_.depot);
    return;
  }
  if (spares_ == 0) {
    ++orphaned_tasks_;  // surfaced as the orphaned_tasks result metric
    trace::Logger::global().logf(trace::Level::kWarn, sim_->now(), "robot",
                                 "robot %u has no spares and no depot; dropping task for %u",
                                 id_, current_->slot);
    if (tracer_ && current_->failure_id != 0) {
      tracer_->open(current_->failure_id, obs::Stage::kOrphan, sim_->now(),
                    current_->slot, id_);
    }
    current_.reset();
    start_next_task();
    return;
  }
  if (tracer_ && current_->failure_id != 0) {
    tracer_->open(current_->failure_id, obs::Stage::kTravel, sim_->now(),
                  current_->slot, id_);
  }
  begin_leg_to(current_->location);
}

void RobotNode::begin_leg_to(Vec2 target) {
  target_ = target;
  step_movement();
}

void RobotNode::step_movement() {
  const double remaining = geometry::distance(pos_, target_);
  if (remaining <= 1e-9) {
    arrive();
    return;
  }
  const double step = std::min(config_.update_threshold, remaining);
  const Vec2 next = pos_ + geometry::normalized(target_ - pos_) * step;
  move_event_ = sim_->in(step / config_.speed, [this, next, step] {
    pos_ = next;
    medium_->set_position(id_, pos_);
    policy_->on_robot_moved(*this);
    odometer_ += step;
    task_travel_ += step;
    refresh_neighbor_table();
    // Every threshold crossing emits the algorithm's location updates
    // (paper §3.1/§4.2); arrival emits too, via the same path.
    policy_->on_robot_location_update(*this);
    step_movement();
  });
}

void RobotNode::arrive() {
  assert(current_);
  if (reloading_) {
    reloading_ = false;
    spares_ = config_.spares;  // full restock at the depot
    begin_leg_to(current_->location);
    return;
  }
  const RepairTask task = *current_;
  if (init_drive_) {
    init_drive_ = false;
    current_.reset();
    start_next_task();
    return;
  }
  // The travel span closes on any arrival, including the duplicate-dispatch
  // one below: the robot drove either way, and leaving the span open would
  // misreport finished work as orphaned.
  if (tracer_ && task.failure_id != 0) {
    tracer_->close_if_open(task.failure_id, obs::Stage::kTravel, sim_->now(),
                           task_travel_, id_);
  }
  // Duplicate dispatch (two watchers reported to two robots): whoever
  // arrives second finds the slot already alive and keeps its spare.
  if (field_->node(task.slot).alive()) {
    current_.reset();
    start_next_task();
    return;
  }
  // Unload a functional unit into the failed slot.
  if (spares_ != std::numeric_limits<std::size_t>::max()) {
    assert(spares_ > 0);
    --spares_;
  }
  if (task.failure_id != 0) {
    field_->failure_log().at(task.failure_id - 1).travel_distance = task_travel_;
  }
  field_->replace_slot(task.slot, id_);
  ++repairs_done_;
  current_.reset();
  last_completed_ = task;
  policy_->on_robot_task_complete(*this);
  start_next_task();
}

}  // namespace sensrep::robot
