#include "robot/fault.hpp"

#include <cmath>
#include <stdexcept>

namespace sensrep::robot {

std::string_view to_string(FaultDistribution d) noexcept {
  switch (d) {
    case FaultDistribution::kExponential: return "exponential";
    case FaultDistribution::kWeibull: return "weibull";
  }
  return "?";
}

bool FaultConfig::spontaneous() const noexcept { return std::isfinite(mtbf); }

bool FaultConfig::enabled() const noexcept {
  return spontaneous() || !crashes.empty() || manager_crash_at.has_value();
}

void FaultConfig::validate() const {
  if (!(mtbf > 0.0)) {  // rejects NaN, zero, and negatives; +inf passes
    throw std::invalid_argument("FaultConfig: mtbf must be positive (inf = disabled)");
  }
  if (distribution == FaultDistribution::kWeibull && weibull_shape <= 0.0) {
    throw std::invalid_argument("FaultConfig: weibull_shape must be positive");
  }
  for (const auto& c : crashes) {
    if (c.at < 0.0) throw std::invalid_argument("FaultConfig: crash time must be >= 0");
  }
  if (manager_crash_at && *manager_crash_at < 0.0) {
    throw std::invalid_argument("FaultConfig: manager_crash_at must be >= 0");
  }
  if (enabled()) {
    if (heartbeat_period <= 0.0) {
      throw std::invalid_argument("FaultConfig: heartbeat_period must be positive");
    }
    if (lease_multiplier < 1.0) {
      throw std::invalid_argument("FaultConfig: lease_multiplier must be >= 1");
    }
  }
}

double FaultConfig::draw(sim::Rng& rng) const {
  switch (distribution) {
    case FaultDistribution::kExponential:
      return rng.exponential(mtbf);
    case FaultDistribution::kWeibull: {
      // Scale chosen so E[X] = lambda * Gamma(1 + 1/k) == mtbf.
      const double k = weibull_shape;
      const double lambda = mtbf / std::tgamma(1.0 + 1.0 / k);
      const double u = rng.uniform01();
      return lambda * std::pow(-std::log(1.0 - u), 1.0 / k);
    }
  }
  return mtbf;
}

}  // namespace sensrep::robot
