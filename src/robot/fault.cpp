#include "robot/fault.hpp"

#include <cmath>
#include <stdexcept>

namespace sensrep::robot {

namespace {

/// Draws from Exp(mean) or Weibull with E[X] = mean and the given shape.
double draw_with_mean(sim::Rng& rng, FaultDistribution d, double mean, double shape) {
  switch (d) {
    case FaultDistribution::kExponential:
      return rng.exponential(mean);
    case FaultDistribution::kWeibull: {
      // Scale chosen so E[X] = lambda * Gamma(1 + 1/k) == mean.
      const double lambda = mean / std::tgamma(1.0 + 1.0 / shape);
      const double u = rng.uniform01();
      return lambda * std::pow(-std::log(1.0 - u), 1.0 / shape);
    }
  }
  return mean;
}

}  // namespace

std::string_view to_string(FaultDistribution d) noexcept {
  switch (d) {
    case FaultDistribution::kExponential: return "exponential";
    case FaultDistribution::kWeibull: return "weibull";
  }
  return "?";
}

bool FaultConfig::spontaneous() const noexcept { return std::isfinite(mtbf); }

bool FaultConfig::repairs_enabled() const noexcept {
  return std::isfinite(mttr) || !repairs.empty() || manager_repair_at.has_value();
}

bool FaultConfig::enabled() const noexcept {
  return spontaneous() || !crashes.empty() || manager_crash_at.has_value() ||
         repairs_enabled() || external;
}

void FaultConfig::validate() const {
  if (!(mtbf > 0.0)) {  // rejects NaN, zero, and negatives; +inf passes
    throw std::invalid_argument("FaultConfig: mtbf must be positive (inf = disabled)");
  }
  if (distribution == FaultDistribution::kWeibull && weibull_shape <= 0.0) {
    throw std::invalid_argument("FaultConfig: weibull_shape must be positive");
  }
  if (!(mttr > 0.0)) {  // rejects NaN, zero, and negatives; +inf passes
    throw std::invalid_argument("FaultConfig: mttr must be positive (inf = disabled)");
  }
  if (repair_distribution == FaultDistribution::kWeibull && repair_weibull_shape <= 0.0) {
    throw std::invalid_argument("FaultConfig: repair_weibull_shape must be positive");
  }
  for (const auto& c : crashes) {
    if (c.at < 0.0) throw std::invalid_argument("FaultConfig: crash time must be >= 0");
  }
  for (const auto& r : repairs) {
    if (r.at < 0.0) throw std::invalid_argument("FaultConfig: repair time must be >= 0");
  }
  if (manager_crash_at && *manager_crash_at < 0.0) {
    throw std::invalid_argument("FaultConfig: manager_crash_at must be >= 0");
  }
  if (manager_repair_at && *manager_repair_at < 0.0) {
    throw std::invalid_argument("FaultConfig: manager_repair_at must be >= 0");
  }
  if (manager_repair_at && !manager_crash_at) {
    throw std::invalid_argument(
        "FaultConfig: manager_repair_at requires manager_crash_at (nothing to repair)");
  }
  if (manager_repair_at && *manager_repair_at <= *manager_crash_at) {
    throw std::invalid_argument(
        "FaultConfig: manager_repair_at must come after manager_crash_at");
  }
  if (enabled()) {
    if (heartbeat_period <= 0.0) {
      throw std::invalid_argument("FaultConfig: heartbeat_period must be positive");
    }
    if (lease_multiplier < 1.0) {
      throw std::invalid_argument("FaultConfig: lease_multiplier must be >= 1");
    }
  }
}

double FaultConfig::draw(sim::Rng& rng) const {
  return draw_with_mean(rng, distribution, mtbf, weibull_shape);
}

double FaultConfig::draw_repair(sim::Rng& rng) const {
  return draw_with_mean(rng, repair_distribution, mttr, repair_weibull_shape);
}

}  // namespace sensrep::robot
