#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "geometry/polygon.hpp"
#include "geometry/rect.hpp"
#include "geometry/vec2.hpp"

namespace sensrep::geometry {

/// Voronoi diagram of a small set of sites clipped to a bounding rectangle.
///
/// The dynamic distributed manager algorithm implicitly partitions the field
/// into robot Voronoi cells (paper Fig. 1); this class computes those cells
/// explicitly for analysis, tests, visualization and the flood-scope oracle.
///
/// Each cell is built by clipping the bounding rectangle with the dominance
/// half-plane against every other site — O(n^2) cells overall, which is ideal
/// for the paper's site counts (robots <= 16) and robust (no sweep-line
/// degeneracies).
class VoronoiDiagram {
 public:
  /// Builds the diagram. Sites outside `bounds` are allowed; their cells are
  /// still clipped to `bounds` (and may be empty).
  VoronoiDiagram(std::vector<Vec2> sites, const Rect& bounds);

  [[nodiscard]] std::size_t site_count() const noexcept { return sites_.size(); }
  [[nodiscard]] const std::vector<Vec2>& sites() const noexcept { return sites_; }
  [[nodiscard]] const Rect& bounds() const noexcept { return bounds_; }

  /// Cell of site i (clipped to bounds; empty if dominated everywhere).
  [[nodiscard]] const ConvexPolygon& cell(std::size_t i) const { return cells_.at(i); }

  /// Index of the site nearest to p (ties broken toward the lowest index).
  /// Requires site_count() > 0.
  [[nodiscard]] std::size_t nearest_site(Vec2 p) const noexcept;

  /// True if p lies in cell i (boundary inclusive).
  [[nodiscard]] bool in_cell(std::size_t i, Vec2 p) const { return cells_.at(i).contains(p); }

  /// Area of the region a sensor-side flood must cover when site i moves to
  /// `new_pos`: the new cell of i, dilated by `fringe` (the shaded region in
  /// the paper's Fig. 1b is this cell-plus-fringe). Estimated by Monte-Carlo
  /// sampling over the bounds with `samples` points from a fixed grid, which
  /// keeps the function deterministic.
  [[nodiscard]] double flood_region_area(std::size_t i, Vec2 new_pos, double fringe,
                                         std::size_t samples = 4096) const;

 private:
  std::vector<Vec2> sites_;
  Rect bounds_;
  std::vector<ConvexPolygon> cells_;
};

}  // namespace sensrep::geometry
