#include "geometry/graph_analysis.hpp"

#include <algorithm>
#include <stack>
#include <stdexcept>

#include "geometry/spatial_hash.hpp"

namespace sensrep::geometry {

UnitDiskGraph::UnitDiskGraph(const std::vector<Vec2>& points, double radius) {
  if (radius <= 0.0) throw std::invalid_argument("UnitDiskGraph: radius must be positive");
  adjacency_.resize(points.size());
  SpatialHash index(radius);
  for (std::uint32_t i = 0; i < points.size(); ++i) index.upsert(i, points[i]);
  for (std::uint32_t i = 0; i < points.size(); ++i) {
    for (const std::uint32_t j : index.query_ball(points[i], radius)) {
      if (j == i) continue;
      adjacency_[i].push_back(j);
      if (j > i) ++edges_;
    }
  }
}

UnitDiskGraph::Components UnitDiskGraph::connected_components() const {
  Components out;
  out.id.assign(size(), SIZE_MAX);
  for (std::size_t start = 0; start < size(); ++start) {
    if (out.id[start] != SIZE_MAX) continue;
    // Iterative DFS flood fill.
    std::stack<std::size_t> stack;
    stack.push(start);
    out.id[start] = out.count;
    while (!stack.empty()) {
      const std::size_t v = stack.top();
      stack.pop();
      for (const std::size_t w : adjacency_[v]) {
        if (out.id[w] == SIZE_MAX) {
          out.id[w] = out.count;
          stack.push(w);
        }
      }
    }
    ++out.count;
  }
  return out;
}

std::vector<std::size_t> UnitDiskGraph::articulation_points() const {
  // Tarjan's low-link algorithm, made iterative so large fields do not
  // overflow the stack.
  const std::size_t n = size();
  std::vector<std::size_t> disc(n, SIZE_MAX), low(n, 0), parent(n, SIZE_MAX);
  std::vector<std::size_t> child_count(n, 0);
  std::vector<bool> is_articulation(n, false);
  std::size_t timer = 0;

  struct Frame {
    std::size_t v;
    std::size_t edge_index;
  };

  for (std::size_t root = 0; root < n; ++root) {
    if (disc[root] != SIZE_MAX) continue;
    std::vector<Frame> stack{{root, 0}};
    disc[root] = low[root] = timer++;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const std::size_t v = frame.v;
      if (frame.edge_index < adjacency_[v].size()) {
        const std::size_t w = adjacency_[v][frame.edge_index++];
        if (disc[w] == SIZE_MAX) {
          parent[w] = v;
          ++child_count[v];
          disc[w] = low[w] = timer++;
          stack.push_back({w, 0});
        } else if (w != parent[v]) {
          low[v] = std::min(low[v], disc[w]);
        }
      } else {
        stack.pop_back();
        const std::size_t p = parent[v];
        if (p != SIZE_MAX) {
          low[p] = std::min(low[p], low[v]);
          if (p != root && low[v] >= disc[p]) is_articulation[p] = true;
        }
      }
    }
    if (child_count[root] >= 2) is_articulation[root] = true;
  }

  std::vector<std::size_t> out;
  for (std::size_t v = 0; v < n; ++v) {
    if (is_articulation[v]) out.push_back(v);
  }
  return out;
}

std::size_t UnitDiskGraph::largest_component_without(std::size_t v) const {
  if (v >= size()) throw std::out_of_range("UnitDiskGraph::largest_component_without");
  std::vector<std::size_t> comp_size;
  std::vector<bool> seen(size(), false);
  seen[v] = true;  // removed
  for (std::size_t start = 0; start < size(); ++start) {
    if (seen[start]) continue;
    std::size_t count = 0;
    std::stack<std::size_t> stack;
    stack.push(start);
    seen[start] = true;
    while (!stack.empty()) {
      const std::size_t u = stack.top();
      stack.pop();
      ++count;
      for (const std::size_t w : adjacency_[u]) {
        if (!seen[w]) {
          seen[w] = true;
          stack.push(w);
        }
      }
    }
    comp_size.push_back(count);
  }
  return comp_size.empty() ? 0 : *std::max_element(comp_size.begin(), comp_size.end());
}

double UnitDiskGraph::mean_degree() const noexcept {
  if (adjacency_.empty()) return 0.0;
  return 2.0 * static_cast<double>(edges_) / static_cast<double>(adjacency_.size());
}

}  // namespace sensrep::geometry
