#pragma once

#include <optional>

#include "geometry/vec2.hpp"

namespace sensrep::geometry {

/// Line segment from a to b.
struct Segment {
  Vec2 a;
  Vec2 b;

  [[nodiscard]] double length() const noexcept { return distance(a, b); }
  [[nodiscard]] constexpr Vec2 direction() const noexcept { return b - a; }
};

/// True if segments pq and rs properly intersect or touch.
[[nodiscard]] bool segments_intersect(const Segment& s1, const Segment& s2) noexcept;

/// Intersection point of the two segments, if any. For collinear overlap
/// returns one representative point (an endpoint inside the overlap).
[[nodiscard]] std::optional<Vec2> segment_intersection(const Segment& s1,
                                                       const Segment& s2) noexcept;

/// Distance from point p to the segment.
[[nodiscard]] double point_segment_distance(Vec2 p, const Segment& s) noexcept;

/// Closest point on the segment to p.
[[nodiscard]] Vec2 closest_point_on_segment(Vec2 p, const Segment& s) noexcept;

}  // namespace sensrep::geometry
