#include "geometry/partition.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace sensrep::geometry {

SquarePartition::SquarePartition(const Rect& bounds, std::size_t rows, std::size_t cols)
    : bounds_(bounds), rows_(rows), cols_(cols) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("SquarePartition: rows and cols must be positive");
  }
}

SquarePartition SquarePartition::squares(const Rect& bounds, std::size_t n) {
  if (n == 0) throw std::invalid_argument("SquarePartition::squares: n must be positive");
  // Most-square factorization rows*cols == n.
  auto rows = static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
  while (rows > 1 && n % rows != 0) --rows;
  return SquarePartition{bounds, rows, n / rows};
}

std::size_t SquarePartition::cell_of(Vec2 p) const noexcept {
  const Vec2 q = bounds_.clamp(p);
  const double fx = (q.x - bounds_.min.x) / bounds_.width();
  const double fy = (q.y - bounds_.min.y) / bounds_.height();
  const auto cx = std::min(cols_ - 1, static_cast<std::size_t>(fx * static_cast<double>(cols_)));
  const auto cy = std::min(rows_ - 1, static_cast<std::size_t>(fy * static_cast<double>(rows_)));
  return cy * cols_ + cx;
}

Rect SquarePartition::cell_rect(std::size_t i) const {
  if (i >= size()) throw std::out_of_range("SquarePartition::cell_rect");
  const std::size_t cy = i / cols_;
  const std::size_t cx = i % cols_;
  const double w = bounds_.width() / static_cast<double>(cols_);
  const double h = bounds_.height() / static_cast<double>(rows_);
  const Vec2 lo{bounds_.min.x + static_cast<double>(cx) * w,
                bounds_.min.y + static_cast<double>(cy) * h};
  return Rect{lo, lo + Vec2{w, h}};
}

Vec2 SquarePartition::center(std::size_t i) const { return cell_rect(i).center(); }

HexPartition::HexPartition(const Rect& bounds, std::size_t n) : bounds_(bounds) {
  if (n == 0) throw std::invalid_argument("HexPartition: n must be positive");
  // Lay seeds on a staggered lattice sized so that about n seeds cover the
  // field: cell area ~ field area / n; hexagon area = (3*sqrt(3)/2) r^2 with
  // lattice pitch dx = sqrt(3) r, dy = 1.5 r.
  const double cell_area = bounds.area() / static_cast<double>(n);
  const double r = std::sqrt(cell_area / (1.5 * std::sqrt(3.0)));
  const double dx = std::sqrt(3.0) * r;
  const double dy = 1.5 * r;

  for (std::size_t row = 0;; ++row) {
    const double y = bounds.min.y + dy * (0.5 + static_cast<double>(row));
    if (y > bounds.max.y) break;
    const double x0 = bounds.min.x + ((row % 2 == 0) ? 0.5 : 1.0) * dx * 0.5;
    for (std::size_t col = 0;; ++col) {
      const double x = x0 + dx * static_cast<double>(col);
      if (x > bounds.max.x) break;
      centers_.push_back({x, y});
    }
  }
  if (centers_.empty()) centers_.push_back(bounds.center());

  // Trim to exactly n seeds when the lattice overshoots, dropping the seeds
  // closest to the boundary first so interior coverage stays even; pad with
  // the field center when it undershoots (degenerate tiny-n cases).
  if (centers_.size() > n) {
    std::stable_sort(centers_.begin(), centers_.end(), [&](Vec2 a, Vec2 b) {
      const auto edge_dist = [&](Vec2 p) {
        return std::min({p.x - bounds.min.x, bounds.max.x - p.x,
                         p.y - bounds.min.y, bounds.max.y - p.y});
      };
      return edge_dist(a) > edge_dist(b);
    });
    centers_.resize(n);
  }
  while (centers_.size() < n) centers_.push_back(bounds.center());
}

std::size_t HexPartition::cell_of(Vec2 p) const noexcept {
  std::size_t best = 0;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < centers_.size(); ++i) {
    const double d2 = distance2(p, centers_[i]);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = i;
    }
  }
  return best;
}

}  // namespace sensrep::geometry
