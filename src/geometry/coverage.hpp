#pragma once

#include <cstddef>
#include <vector>

#include "geometry/rect.hpp"
#include "geometry/vec2.hpp"

namespace sensrep::geometry {

/// Grid-sampled coverage analysis of a disc-sensing field.
///
/// Sensor replacement exists to keep the field *covered* (paper §1, citing
/// Meguerdichian et al. for the coverage problem). This report quantifies
/// the coverage state a maintainer fleet preserves: plain and k-fold covered
/// fractions, plus the holes — connected uncovered regions — whose size
/// tells an operator whether anything slips through.
struct CoverageReport {
  double covered_fraction = 0.0;    // area within >= 1 sensing disc
  double k_covered_fraction = 0.0;  // area within >= k sensing discs
  std::size_t hole_count = 0;       // connected uncovered regions
  double largest_hole_area = 0.0;   // m^2, grid-quantized
  double total_hole_area = 0.0;     // m^2 == (1 - covered_fraction) * area
};

/// Analyzes disc coverage of `area` by `sensors` with the given sensing
/// radius, sampled on a grid_side x grid_side lattice (4-connected hole
/// flood fill). Requires sensing_radius > 0, k >= 1, grid_side >= 2.
[[nodiscard]] CoverageReport analyze_coverage(const std::vector<Vec2>& sensors,
                                              const Rect& area, double sensing_radius,
                                              std::size_t k = 2,
                                              std::size_t grid_side = 128);

}  // namespace sensrep::geometry
