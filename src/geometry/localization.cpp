#include "geometry/localization.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace sensrep::geometry {

std::optional<Vec2> multilaterate(const std::vector<RangeMeasurement>& measurements,
                                  Vec2 initial_guess, int max_iterations,
                                  double tolerance) {
  if (measurements.size() < 3) return std::nullopt;

  Vec2 x = initial_guess;
  for (int iter = 0; iter < max_iterations; ++iter) {
    // Normal equations J^T J delta = -J^T r for residuals
    // r_i = |x - a_i| - d_i with Jacobian rows (x - a_i)/|x - a_i|.
    double jtj00 = 0.0, jtj01 = 0.0, jtj11 = 0.0;
    double jtr0 = 0.0, jtr1 = 0.0;
    for (const auto& m : measurements) {
      const Vec2 diff = x - m.anchor;
      const double dist = norm(diff);
      if (dist < 1e-9) continue;  // sitting on an anchor: skip its gradient
      const Vec2 j = diff / dist;
      const double r = dist - m.range;
      jtj00 += j.x * j.x;
      jtj01 += j.x * j.y;
      jtj11 += j.y * j.y;
      jtr0 += j.x * r;
      jtr1 += j.y * r;
    }
    const double det = jtj00 * jtj11 - jtj01 * jtj01;
    if (std::abs(det) < 1e-12) return std::nullopt;  // collinear anchors
    Vec2 delta{(-jtr0 * jtj11 + jtr1 * jtj01) / det,
               (jtr0 * jtj01 - jtr1 * jtj00) / det};
    // Trust region: full Gauss-Newton steps can overshoot into the mirror
    // basin when the anchor geometry is thin; clamp the step length.
    constexpr double kMaxStep = 40.0;
    const double step = norm(delta);
    if (step > kMaxStep) delta = delta * (kMaxStep / step);
    x += delta;
    if (norm2(delta) < tolerance * tolerance) break;
  }
  if (!std::isfinite(x.x) || !std::isfinite(x.y)) return std::nullopt;
  return x;
}

LocalizationResult localize_field(const std::vector<Vec2>& true_positions,
                                  const LocalizationConfig& config, sim::Rng& rng) {
  if (config.anchor_fraction <= 0.0 || config.anchor_fraction > 1.0) {
    throw std::invalid_argument("localize_field: anchor_fraction must be in (0, 1]");
  }
  if (config.min_anchors < 3) {
    throw std::invalid_argument("localize_field: min_anchors must be >= 3");
  }
  const std::size_t n = true_positions.size();
  LocalizationResult out;
  out.estimated = true_positions;  // anchors keep truth; others overwritten
  out.is_anchor.assign(n, false);

  // Draw anchors: at least min_anchors (multilateration needs 3 independent
  // references), at most n.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  rng.shuffle(order);
  const std::size_t anchor_count = std::min(
      n, std::max(static_cast<std::size_t>(config.min_anchors),
                  static_cast<std::size_t>(std::ceil(
                      config.anchor_fraction * static_cast<double>(n)))));
  std::vector<std::size_t> anchors(order.begin(),
                                   order.begin() + static_cast<std::ptrdiff_t>(anchor_count));
  for (const std::size_t a : anchors) out.is_anchor[a] = true;

  double error_sum = 0.0;
  std::size_t located = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (out.is_anchor[i]) continue;

    // Anchors within ranging distance; fall back to the nearest min_anchors
    // anywhere (multi-hop ranging such as DV-distance) when too few.
    std::vector<std::size_t> usable;
    for (const std::size_t a : anchors) {
      if (distance(true_positions[i], true_positions[a]) <= config.max_ranging_distance) {
        usable.push_back(a);
      }
    }
    if (usable.size() < static_cast<std::size_t>(config.min_anchors)) {
      usable = anchors;
      std::sort(usable.begin(), usable.end(), [&](std::size_t lhs, std::size_t rhs) {
        return distance2(true_positions[i], true_positions[lhs]) <
               distance2(true_positions[i], true_positions[rhs]);
      });
      usable.resize(std::min<std::size_t>(usable.size(),
                                          static_cast<std::size_t>(config.min_anchors)));
    }

    std::vector<RangeMeasurement> ranges;
    Vec2 centroid{};
    for (const std::size_t a : usable) {
      const double true_range = distance(true_positions[i], true_positions[a]);
      const double measured =
          std::max(0.0, true_range + rng.normal(0.0, config.range_noise_stddev));
      ranges.push_back({true_positions[a], measured});
      centroid += true_positions[a];
    }
    centroid = centroid / static_cast<double>(usable.size());

    // Multi-start: the nonlinear fit has a mirror ambiguity when the anchor
    // set is thin; start from the centroid and three offsets and keep the
    // solution with the smallest residual norm.
    const auto residual2 = [&](Vec2 x) {
      double sum = 0.0;
      for (const auto& m : ranges) {
        const double r = distance(x, m.anchor) - m.range;
        sum += r * r;
      }
      return sum;
    };
    std::optional<Vec2> best;
    double best_res = std::numeric_limits<double>::infinity();
    for (const Vec2 start : {centroid, centroid + Vec2{60.0, 0.0},
                             centroid + Vec2{-30.0, 52.0}, centroid + Vec2{-30.0, -52.0}}) {
      const auto fix = multilaterate(ranges, start);
      if (!fix) continue;
      const double res = residual2(*fix);
      if (res < best_res) {
        best_res = res;
        best = fix;
      }
    }
    if (best) {
      out.estimated[i] = *best;
    } else {
      out.estimated[i] = centroid;  // degenerate geometry: best local guess
      ++out.failed;
    }
    const double err = distance(out.estimated[i], true_positions[i]);
    error_sum += err;
    out.max_error = std::max(out.max_error, err);
    ++located;
  }
  out.mean_error = located == 0 ? 0.0 : error_sum / static_cast<double>(located);
  return out;
}

}  // namespace sensrep::geometry
