#pragma once

#include <vector>

#include "geometry/rect.hpp"
#include "geometry/vec2.hpp"

namespace sensrep::geometry {

/// Convex polygon with counterclockwise vertex order.
///
/// Used for Voronoi cells (intersections of half-planes are convex) and for
/// partition ablations. An empty vertex list represents the empty polygon.
class ConvexPolygon {
 public:
  ConvexPolygon() = default;

  /// Builds from vertices assumed convex; normalizes to CCW order.
  explicit ConvexPolygon(std::vector<Vec2> vertices);

  /// The full rectangle as a polygon.
  [[nodiscard]] static ConvexPolygon from_rect(const Rect& r);

  [[nodiscard]] const std::vector<Vec2>& vertices() const noexcept { return vertices_; }
  [[nodiscard]] bool empty() const noexcept { return vertices_.size() < 3; }

  /// Signed area is kept positive by the CCW invariant.
  [[nodiscard]] double area() const noexcept;

  /// Centroid of the polygon. Requires !empty().
  [[nodiscard]] Vec2 centroid() const noexcept;

  /// Closed containment test (boundary counts as inside) with tolerance.
  [[nodiscard]] bool contains(Vec2 p, double eps = 1e-9) const noexcept;

  /// Clips the polygon to the half-plane of points q with
  /// dot(q, normal) <= offset (i.e. the side the normal points away from).
  /// Returns the (possibly empty) clipped polygon.
  [[nodiscard]] ConvexPolygon clip_half_plane(Vec2 normal, double offset) const;

  /// Clips to the set of points at least as close to `site` as to `other`
  /// (the dominance half-plane used to build Voronoi cells).
  [[nodiscard]] ConvexPolygon clip_closer_to(Vec2 site, Vec2 other) const;

 private:
  std::vector<Vec2> vertices_;
};

}  // namespace sensrep::geometry
