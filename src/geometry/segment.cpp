#include "geometry/segment.hpp"

#include <algorithm>
#include <cmath>

namespace sensrep::geometry {

namespace {

// Is q on segment pr, assuming p, q, r are collinear?
bool on_segment(Vec2 p, Vec2 q, Vec2 r) noexcept {
  return q.x <= std::max(p.x, r.x) && q.x >= std::min(p.x, r.x) &&
         q.y <= std::max(p.y, r.y) && q.y >= std::min(p.y, r.y);
}

int sign(double v) noexcept { return (v > 0.0) - (v < 0.0); }

}  // namespace

bool segments_intersect(const Segment& s1, const Segment& s2) noexcept {
  const Vec2 p1 = s1.a, q1 = s1.b, p2 = s2.a, q2 = s2.b;
  const int o1 = sign(orient(p1, q1, p2));
  const int o2 = sign(orient(p1, q1, q2));
  const int o3 = sign(orient(p2, q2, p1));
  const int o4 = sign(orient(p2, q2, q1));

  if (o1 != o2 && o3 != o4) return true;
  if (o1 == 0 && on_segment(p1, p2, q1)) return true;
  if (o2 == 0 && on_segment(p1, q2, q1)) return true;
  if (o3 == 0 && on_segment(p2, p1, q2)) return true;
  if (o4 == 0 && on_segment(p2, q1, q2)) return true;
  return false;
}

std::optional<Vec2> segment_intersection(const Segment& s1, const Segment& s2) noexcept {
  const Vec2 r = s1.direction();
  const Vec2 s = s2.direction();
  const double denom = cross(r, s);
  const Vec2 qp = s2.a - s1.a;

  if (denom == 0.0) {
    // Parallel. Collinear overlap handling: return an endpoint of one segment
    // that lies on the other, if any.
    if (cross(qp, r) != 0.0) return std::nullopt;  // parallel, disjoint lines
    for (const Vec2 cand : {s2.a, s2.b}) {
      if (on_segment(s1.a, cand, s1.b)) return cand;
    }
    for (const Vec2 cand : {s1.a, s1.b}) {
      if (on_segment(s2.a, cand, s2.b)) return cand;
    }
    return std::nullopt;
  }

  const double t = cross(qp, s) / denom;
  const double u = cross(qp, r) / denom;
  if (t < 0.0 || t > 1.0 || u < 0.0 || u > 1.0) return std::nullopt;
  return s1.a + r * t;
}

Vec2 closest_point_on_segment(Vec2 p, const Segment& s) noexcept {
  const Vec2 d = s.direction();
  const double len2 = norm2(d);
  if (len2 == 0.0) return s.a;  // degenerate segment
  const double t = std::clamp(dot(p - s.a, d) / len2, 0.0, 1.0);
  return s.a + d * t;
}

double point_segment_distance(Vec2 p, const Segment& s) noexcept {
  return distance(p, closest_point_on_segment(p, s));
}

}  // namespace sensrep::geometry
