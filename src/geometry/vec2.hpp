#pragma once

#include <cmath>
#include <ostream>

namespace sensrep::geometry {

/// 2-D point / vector with double components (meters in this project).
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) noexcept { return {a.x + b.x, a.y + b.y}; }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) noexcept { return {a.x - b.x, a.y - b.y}; }
  friend constexpr Vec2 operator*(Vec2 a, double s) noexcept { return {a.x * s, a.y * s}; }
  friend constexpr Vec2 operator*(double s, Vec2 a) noexcept { return a * s; }
  friend constexpr Vec2 operator/(Vec2 a, double s) noexcept { return {a.x / s, a.y / s}; }
  constexpr Vec2 operator-() const noexcept { return {-x, -y}; }
  constexpr Vec2& operator+=(Vec2 o) noexcept { x += o.x; y += o.y; return *this; }
  constexpr Vec2& operator-=(Vec2 o) noexcept { x -= o.x; y -= o.y; return *this; }

  friend constexpr bool operator==(Vec2, Vec2) = default;

  friend std::ostream& operator<<(std::ostream& os, Vec2 v) {
    return os << '(' << v.x << ", " << v.y << ')';
  }
};

/// Dot product.
[[nodiscard]] constexpr double dot(Vec2 a, Vec2 b) noexcept { return a.x * b.x + a.y * b.y; }

/// 2-D cross product (z component of the 3-D cross).
[[nodiscard]] constexpr double cross(Vec2 a, Vec2 b) noexcept { return a.x * b.y - a.y * b.x; }

/// Squared Euclidean norm.
[[nodiscard]] constexpr double norm2(Vec2 a) noexcept { return dot(a, a); }

/// Euclidean norm.
[[nodiscard]] inline double norm(Vec2 a) noexcept { return std::sqrt(norm2(a)); }

/// Squared distance between points.
[[nodiscard]] constexpr double distance2(Vec2 a, Vec2 b) noexcept { return norm2(a - b); }

/// Distance between points.
[[nodiscard]] inline double distance(Vec2 a, Vec2 b) noexcept { return norm(a - b); }

/// Unit vector in the direction of `a`; returns {0,0} for the zero vector.
[[nodiscard]] inline Vec2 normalized(Vec2 a) noexcept {
  const double n = norm(a);
  return n > 0.0 ? a / n : Vec2{};
}

/// Perpendicular (rotated +90 degrees counterclockwise).
[[nodiscard]] constexpr Vec2 perp(Vec2 a) noexcept { return {-a.y, a.x}; }

/// Midpoint of the segment ab.
[[nodiscard]] constexpr Vec2 midpoint(Vec2 a, Vec2 b) noexcept { return (a + b) * 0.5; }

/// Linear interpolation a + t*(b-a).
[[nodiscard]] constexpr Vec2 lerp(Vec2 a, Vec2 b, double t) noexcept { return a + (b - a) * t; }

/// Angle of vector in radians, in (-pi, pi], measured from +x axis.
[[nodiscard]] inline double angle_of(Vec2 a) noexcept { return std::atan2(a.y, a.x); }

/// Orientation predicate: >0 if a->b->c turns counterclockwise, <0 clockwise,
/// 0 collinear.
[[nodiscard]] constexpr double orient(Vec2 a, Vec2 b, Vec2 c) noexcept {
  return cross(b - a, c - a);
}

/// True when the two points are within `eps` of each other.
[[nodiscard]] inline bool almost_equal(Vec2 a, Vec2 b, double eps = 1e-9) noexcept {
  return distance2(a, b) <= eps * eps;
}

}  // namespace sensrep::geometry
