#include "geometry/coverage.hpp"

#include <algorithm>
#include <stack>
#include <stdexcept>

#include "geometry/spatial_hash.hpp"

namespace sensrep::geometry {

CoverageReport analyze_coverage(const std::vector<Vec2>& sensors, const Rect& area,
                                double sensing_radius, std::size_t k,
                                std::size_t grid_side) {
  if (sensing_radius <= 0.0) {
    throw std::invalid_argument("analyze_coverage: sensing_radius must be positive");
  }
  if (k < 1) throw std::invalid_argument("analyze_coverage: k must be >= 1");
  if (grid_side < 2) throw std::invalid_argument("analyze_coverage: grid_side must be >= 2");

  SpatialHash index(sensing_radius);
  for (std::uint32_t i = 0; i < sensors.size(); ++i) index.upsert(i, sensors[i]);

  const double dx = area.width() / static_cast<double>(grid_side);
  const double dy = area.height() / static_cast<double>(grid_side);
  const double cell_area = dx * dy;

  // Degree of coverage per grid sample.
  std::vector<std::size_t> degree(grid_side * grid_side, 0);
  std::size_t covered = 0;
  std::size_t k_covered = 0;
  for (std::size_t gy = 0; gy < grid_side; ++gy) {
    for (std::size_t gx = 0; gx < grid_side; ++gx) {
      const Vec2 p{area.min.x + (static_cast<double>(gx) + 0.5) * dx,
                   area.min.y + (static_cast<double>(gy) + 0.5) * dy};
      const std::size_t deg = index.query_ball(p, sensing_radius).size();
      degree[gy * grid_side + gx] = deg;
      if (deg >= 1) ++covered;
      if (deg >= k) ++k_covered;
    }
  }

  CoverageReport report;
  const auto total = static_cast<double>(grid_side * grid_side);
  report.covered_fraction = static_cast<double>(covered) / total;
  report.k_covered_fraction = static_cast<double>(k_covered) / total;
  report.total_hole_area =
      static_cast<double>(grid_side * grid_side - covered) * cell_area;

  // Holes: 4-connected components of uncovered samples.
  std::vector<bool> seen(grid_side * grid_side, false);
  for (std::size_t start = 0; start < degree.size(); ++start) {
    if (degree[start] > 0 || seen[start]) continue;
    ++report.hole_count;
    std::size_t cells = 0;
    std::stack<std::size_t> stack;
    stack.push(start);
    seen[start] = true;
    while (!stack.empty()) {
      const std::size_t cur = stack.top();
      stack.pop();
      ++cells;
      const std::size_t gx = cur % grid_side;
      const std::size_t gy = cur / grid_side;
      const auto visit = [&](std::size_t nx, std::size_t ny) {
        const std::size_t idx = ny * grid_side + nx;
        if (!seen[idx] && degree[idx] == 0) {
          seen[idx] = true;
          stack.push(idx);
        }
      };
      if (gx > 0) visit(gx - 1, gy);
      if (gx + 1 < grid_side) visit(gx + 1, gy);
      if (gy > 0) visit(gx, gy - 1);
      if (gy + 1 < grid_side) visit(gx, gy + 1);
    }
    report.largest_hole_area =
        std::max(report.largest_hole_area, static_cast<double>(cells) * cell_area);
  }
  return report;
}

}  // namespace sensrep::geometry
