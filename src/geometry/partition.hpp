#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "geometry/rect.hpp"
#include "geometry/vec2.hpp"

namespace sensrep::geometry {

/// Partition of a rectangular field into equal-ish subareas, one per robot.
///
/// The fixed distributed manager algorithm assigns each robot a subarea; the
/// paper evaluates square partitions and reports hexagon partitions make a
/// "negligible difference" — both shapes implement this interface so the
/// ablation bench (E4) can swap them.
class Partition {
 public:
  virtual ~Partition() = default;

  /// Number of subareas.
  [[nodiscard]] virtual std::size_t size() const noexcept = 0;

  /// Index of the subarea containing p (points outside the field map to the
  /// nearest subarea).
  [[nodiscard]] virtual std::size_t cell_of(Vec2 p) const noexcept = 0;

  /// Representative center of subarea i — where its robot parks initially.
  [[nodiscard]] virtual Vec2 center(std::size_t i) const = 0;

  /// The partitioned field.
  [[nodiscard]] virtual const Rect& bounds() const noexcept = 0;
};

/// Square grid partition into rows x cols congruent rectangles.
class SquarePartition final : public Partition {
 public:
  SquarePartition(const Rect& bounds, std::size_t rows, std::size_t cols);

  /// Partition into `n` cells arranged as the most-square rows x cols grid
  /// with rows*cols == n. Requires n >= 1.
  [[nodiscard]] static SquarePartition squares(const Rect& bounds, std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept override { return rows_ * cols_; }
  [[nodiscard]] std::size_t cell_of(Vec2 p) const noexcept override;
  [[nodiscard]] Vec2 center(std::size_t i) const override;
  [[nodiscard]] const Rect& bounds() const noexcept override { return bounds_; }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] Rect cell_rect(std::size_t i) const;

 private:
  Rect bounds_;
  std::size_t rows_;
  std::size_t cols_;
};

/// Hexagon-like partition: `n` seed centers arranged on a staggered
/// (triangular) lattice; each point belongs to its nearest seed, which yields
/// hexagonal Voronoi subareas in the field interior.
class HexPartition final : public Partition {
 public:
  /// Requires n >= 1.
  HexPartition(const Rect& bounds, std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept override { return centers_.size(); }
  [[nodiscard]] std::size_t cell_of(Vec2 p) const noexcept override;
  [[nodiscard]] Vec2 center(std::size_t i) const override { return centers_.at(i); }
  [[nodiscard]] const Rect& bounds() const noexcept override { return bounds_; }

 private:
  Rect bounds_;
  std::vector<Vec2> centers_;
};

}  // namespace sensrep::geometry
