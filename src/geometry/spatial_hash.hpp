#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geometry/rect.hpp"
#include "geometry/vec2.hpp"

namespace sensrep::geometry {

/// Uniform-grid spatial index over point objects identified by integer keys.
///
/// The wireless medium uses this to answer "who is within transmission range
/// of this position?" without scanning every node. Bucket size should be on
/// the order of the dominant query radius; range queries then touch O(1)
/// buckets on average at WSN densities.
class SpatialHash {
 public:
  /// `cell_size` must be positive.
  explicit SpatialHash(double cell_size);

  /// Inserts or moves an object. Keys are caller-defined (node ids).
  void upsert(std::uint32_t key, Vec2 pos);

  /// Removes an object; no-op if absent.
  void erase(std::uint32_t key);

  /// True if the key is present.
  [[nodiscard]] bool contains(std::uint32_t key) const noexcept;

  /// Current position of an object. Requires contains(key).
  [[nodiscard]] Vec2 position(std::uint32_t key) const;

  /// All keys with position within `radius` of `center` (closed ball),
  /// in ascending key order for determinism.
  [[nodiscard]] std::vector<std::uint32_t> query_ball(Vec2 center, double radius) const;

  /// Key of the nearest object to `center`, excluding `exclude` (pass a key
  /// not in the index, e.g. the querying node itself, or UINT32_MAX for
  /// none). Returns false when the index has no eligible object.
  bool nearest(Vec2 center, std::uint32_t exclude, std::uint32_t& out_key) const;

  [[nodiscard]] std::size_t size() const noexcept { return positions_.size(); }

 private:
  struct CellCoord {
    std::int64_t cx;
    std::int64_t cy;
  };
  [[nodiscard]] CellCoord cell_of(Vec2 p) const noexcept;
  [[nodiscard]] static std::uint64_t pack(CellCoord c) noexcept;

  /// Bucket entries carry the position inline so range queries never chase
  /// a per-key hash lookup; positions_ stays authoritative for point
  /// lookups and relocation.
  struct BucketEntry {
    std::uint32_t key;
    Vec2 pos;
  };

  double cell_size_;
  std::unordered_map<std::uint64_t, std::vector<BucketEntry>> buckets_;
  std::unordered_map<std::uint32_t, Vec2> positions_;
};

}  // namespace sensrep::geometry
