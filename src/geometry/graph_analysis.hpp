#pragma once

#include <cstddef>
#include <vector>

#include "geometry/vec2.hpp"

namespace sensrep::geometry {

/// Structural analysis of the unit-disk communication graph.
///
/// The coordination algorithms assume the sensor network stays connected so
/// failure reports can reach a manager. These utilities quantify how close a
/// field is to violating that: connected components, and the articulation
/// nodes whose single failure would split the network (the nodes a
/// deployment planner — or the disaster example — should worry about).
class UnitDiskGraph {
 public:
  /// Builds the graph over `points` with communication radius `radius`.
  UnitDiskGraph(const std::vector<Vec2>& points, double radius);

  [[nodiscard]] std::size_t size() const noexcept { return adjacency_.size(); }
  [[nodiscard]] const std::vector<std::size_t>& neighbors(std::size_t v) const {
    return adjacency_.at(v);
  }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_; }

  /// Component id per vertex (dense, 0-based) and the component count.
  struct Components {
    std::vector<std::size_t> id;
    std::size_t count = 0;
  };
  [[nodiscard]] Components connected_components() const;

  [[nodiscard]] bool connected() const { return connected_components().count <= 1; }

  /// Vertices whose removal increases the component count (Tarjan's
  /// algorithm, iterative). Sorted ascending.
  [[nodiscard]] std::vector<std::size_t> articulation_points() const;

  /// Size of the largest component after removing vertex `v` (what a single
  /// failure at v would leave operational).
  [[nodiscard]] std::size_t largest_component_without(std::size_t v) const;

  /// Average vertex degree.
  [[nodiscard]] double mean_degree() const noexcept;

 private:
  std::vector<std::vector<std::size_t>> adjacency_;
  std::size_t edges_ = 0;
};

}  // namespace sensrep::geometry
