#pragma once

#include <algorithm>
#include <cassert>

#include "geometry/vec2.hpp"

namespace sensrep::geometry {

/// Axis-aligned rectangle [min.x, max.x] x [min.y, max.y].
/// Invariant: min.x <= max.x and min.y <= max.y.
struct Rect {
  Vec2 min;
  Vec2 max;

  /// Rectangle with a corner at the origin.
  [[nodiscard]] static constexpr Rect sized(double width, double height) noexcept {
    return Rect{{0.0, 0.0}, {width, height}};
  }

  [[nodiscard]] constexpr double width() const noexcept { return max.x - min.x; }
  [[nodiscard]] constexpr double height() const noexcept { return max.y - min.y; }
  [[nodiscard]] constexpr double area() const noexcept { return width() * height(); }
  [[nodiscard]] constexpr Vec2 center() const noexcept { return midpoint(min, max); }

  /// Closed containment test.
  [[nodiscard]] constexpr bool contains(Vec2 p) const noexcept {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }

  /// Nearest point inside the rectangle to `p`.
  [[nodiscard]] constexpr Vec2 clamp(Vec2 p) const noexcept {
    return {std::clamp(p.x, min.x, max.x), std::clamp(p.y, min.y, max.y)};
  }

  /// Rectangle grown by `margin` on all sides (negative shrinks; caller must
  /// keep the invariant).
  [[nodiscard]] constexpr Rect inflated(double margin) const noexcept {
    return {{min.x - margin, min.y - margin}, {max.x + margin, max.y + margin}};
  }

  friend constexpr bool operator==(const Rect&, const Rect&) = default;
};

}  // namespace sensrep::geometry
