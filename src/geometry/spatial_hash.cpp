#include "geometry/spatial_hash.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace sensrep::geometry {

SpatialHash::SpatialHash(double cell_size) : cell_size_(cell_size) {
  if (cell_size <= 0.0) throw std::invalid_argument("SpatialHash: cell_size must be positive");
}

SpatialHash::CellCoord SpatialHash::cell_of(Vec2 p) const noexcept {
  return {static_cast<std::int64_t>(std::floor(p.x / cell_size_)),
          static_cast<std::int64_t>(std::floor(p.y / cell_size_))};
}

std::uint64_t SpatialHash::pack(CellCoord c) noexcept {
  // Interleave-free packing: 32 bits per axis, offset to keep negatives.
  const auto ux = static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.cx));
  const auto uy = static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.cy));
  return (ux << 32) | uy;
}

void SpatialHash::upsert(std::uint32_t key, Vec2 pos) {
  if (auto it = positions_.find(key); it != positions_.end()) {
    const std::uint64_t old_bucket = pack(cell_of(it->second));
    const std::uint64_t new_bucket = pack(cell_of(pos));
    it->second = pos;
    if (old_bucket == new_bucket) {
      auto& vec = buckets_[old_bucket];
      for (BucketEntry& e : vec) {
        if (e.key == key) {
          e.pos = pos;
          break;
        }
      }
      return;
    }
    auto& vec = buckets_[old_bucket];
    vec.erase(std::remove_if(vec.begin(), vec.end(),
                             [key](const BucketEntry& e) { return e.key == key; }),
              vec.end());
    if (vec.empty()) buckets_.erase(old_bucket);
    buckets_[new_bucket].push_back({key, pos});
    return;
  }
  positions_.emplace(key, pos);
  buckets_[pack(cell_of(pos))].push_back({key, pos});
}

void SpatialHash::erase(std::uint32_t key) {
  auto it = positions_.find(key);
  if (it == positions_.end()) return;
  const std::uint64_t bucket = pack(cell_of(it->second));
  auto& vec = buckets_[bucket];
  vec.erase(std::remove_if(vec.begin(), vec.end(),
                           [key](const BucketEntry& e) { return e.key == key; }),
            vec.end());
  if (vec.empty()) buckets_.erase(bucket);
  positions_.erase(it);
}

bool SpatialHash::contains(std::uint32_t key) const noexcept {
  return positions_.contains(key);
}

Vec2 SpatialHash::position(std::uint32_t key) const {
  auto it = positions_.find(key);
  if (it == positions_.end()) throw std::out_of_range("SpatialHash::position: unknown key");
  return it->second;
}

std::vector<std::uint32_t> SpatialHash::query_ball(Vec2 center, double radius) const {
  assert(radius >= 0.0);
  std::vector<std::uint32_t> out;
  const CellCoord lo = cell_of(center - Vec2{radius, radius});
  const CellCoord hi = cell_of(center + Vec2{radius, radius});
  const double r2 = radius * radius;
  for (std::int64_t cy = lo.cy; cy <= hi.cy; ++cy) {
    for (std::int64_t cx = lo.cx; cx <= hi.cx; ++cx) {
      auto it = buckets_.find(pack({cx, cy}));
      if (it == buckets_.end()) continue;
      for (const BucketEntry& e : it->second) {
        if (distance2(e.pos, center) <= r2) out.push_back(e.key);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool SpatialHash::nearest(Vec2 center, std::uint32_t exclude, std::uint32_t& out_key) const {
  // Full scan with deterministic tie-breaking: nearest() is called rarely
  // (guardian selection, task dispatch), so O(n) beats ring-search complexity.
  if (positions_.empty() ||
      (positions_.size() == 1 && positions_.contains(exclude))) {
    return false;
  }
  double best_d2 = std::numeric_limits<double>::infinity();
  std::uint32_t best = 0;
  bool found = false;
  for (const auto& [key, pos] : positions_) {
    if (key == exclude) continue;
    const double d2 = distance2(pos, center);
    if (d2 < best_d2 || (d2 == best_d2 && found && key < best)) {
      best_d2 = d2;
      best = key;
      found = true;
    }
  }
  if (found) out_key = best;
  return found;
}

}  // namespace sensrep::geometry
