#include "geometry/voronoi.hpp"

#include <cassert>
#include <cmath>
#include <limits>

namespace sensrep::geometry {

VoronoiDiagram::VoronoiDiagram(std::vector<Vec2> sites, const Rect& bounds)
    : sites_(std::move(sites)), bounds_(bounds) {
  cells_.reserve(sites_.size());
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    ConvexPolygon cell = ConvexPolygon::from_rect(bounds_);
    for (std::size_t j = 0; j < sites_.size() && !cell.empty(); ++j) {
      if (j == i || sites_[j] == sites_[i]) continue;
      cell = cell.clip_closer_to(sites_[i], sites_[j]);
    }
    cells_.push_back(std::move(cell));
  }
}

std::size_t VoronoiDiagram::nearest_site(Vec2 p) const noexcept {
  assert(!sites_.empty());
  std::size_t best = 0;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    const double d2 = distance2(p, sites_[i]);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = i;
    }
  }
  return best;
}

double VoronoiDiagram::flood_region_area(std::size_t i, Vec2 new_pos, double fringe,
                                         std::size_t samples) const {
  assert(i < sites_.size());
  // Diagram with site i moved; a point belongs to the flood region when it is
  // within `fringe` of being closest to the moved site, i.e. when
  // dist(p, new_pos) <= dist(p, nearest other site) + fringe.
  const auto side = static_cast<std::size_t>(std::max(1.0, std::floor(std::sqrt(
      static_cast<double>(samples)))));
  const double dx = bounds_.width() / static_cast<double>(side);
  const double dy = bounds_.height() / static_cast<double>(side);
  std::size_t hits = 0;
  for (std::size_t gy = 0; gy < side; ++gy) {
    for (std::size_t gx = 0; gx < side; ++gx) {
      const Vec2 p{bounds_.min.x + (static_cast<double>(gx) + 0.5) * dx,
                   bounds_.min.y + (static_cast<double>(gy) + 0.5) * dy};
      double other = std::numeric_limits<double>::infinity();
      for (std::size_t j = 0; j < sites_.size(); ++j) {
        if (j == i) continue;
        other = std::min(other, distance(p, sites_[j]));
      }
      if (distance(p, new_pos) <= other + fringe) ++hits;
    }
  }
  const double cell_area = dx * dy;
  return static_cast<double>(hits) * cell_area;
}

}  // namespace sensrep::geometry
