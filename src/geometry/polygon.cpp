#include "geometry/polygon.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sensrep::geometry {

namespace {

double signed_area2(const std::vector<Vec2>& v) noexcept {
  double s = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    const Vec2 a = v[i];
    const Vec2 b = v[(i + 1) % v.size()];
    s += cross(a, b);
  }
  return s;
}

}  // namespace

ConvexPolygon::ConvexPolygon(std::vector<Vec2> vertices) : vertices_(std::move(vertices)) {
  if (vertices_.size() >= 3 && signed_area2(vertices_) < 0.0) {
    std::reverse(vertices_.begin(), vertices_.end());
  }
}

ConvexPolygon ConvexPolygon::from_rect(const Rect& r) {
  return ConvexPolygon{{r.min, {r.max.x, r.min.y}, r.max, {r.min.x, r.max.y}}};
}

double ConvexPolygon::area() const noexcept {
  if (empty()) return 0.0;
  return 0.5 * signed_area2(vertices_);
}

Vec2 ConvexPolygon::centroid() const noexcept {
  assert(!empty());
  // Standard polygon centroid; falls back to vertex mean for degenerate area.
  double a2 = 0.0;
  Vec2 c{};
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const Vec2 p = vertices_[i];
    const Vec2 q = vertices_[(i + 1) % vertices_.size()];
    const double w = cross(p, q);
    a2 += w;
    c += (p + q) * w;
  }
  if (std::abs(a2) < 1e-12) {
    Vec2 mean{};
    for (const Vec2 v : vertices_) mean += v;
    return mean / static_cast<double>(vertices_.size());
  }
  return c / (3.0 * a2);
}

bool ConvexPolygon::contains(Vec2 p, double eps) const noexcept {
  if (empty()) return false;
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const Vec2 a = vertices_[i];
    const Vec2 b = vertices_[(i + 1) % vertices_.size()];
    // CCW order: inside points are on the left of every edge.
    if (orient(a, b, p) < -eps * distance(a, b)) return false;
  }
  return true;
}

ConvexPolygon ConvexPolygon::clip_half_plane(Vec2 normal, double offset) const {
  // Sutherland–Hodgman against a single half-plane: keep dot(q,n) <= offset.
  if (vertices_.empty()) return {};
  std::vector<Vec2> out;
  out.reserve(vertices_.size() + 1);
  const auto inside = [&](Vec2 q) { return dot(q, normal) <= offset; };
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const Vec2 cur = vertices_[i];
    const Vec2 nxt = vertices_[(i + 1) % vertices_.size()];
    const bool cur_in = inside(cur);
    const bool nxt_in = inside(nxt);
    if (cur_in) out.push_back(cur);
    if (cur_in != nxt_in) {
      // Edge crosses the boundary line dot(q,n) == offset.
      const double dcur = dot(cur, normal) - offset;
      const double dnxt = dot(nxt, normal) - offset;
      const double t = dcur / (dcur - dnxt);
      out.push_back(lerp(cur, nxt, t));
    }
  }
  if (out.size() < 3) return {};
  return ConvexPolygon{std::move(out)};
}

ConvexPolygon ConvexPolygon::clip_closer_to(Vec2 site, Vec2 other) const {
  // Points q with |q-site| <= |q-other|  <=>  dot(q, other-site) <= offset
  // where the boundary is the perpendicular bisector of site—other.
  const Vec2 n = other - site;
  const double offset = dot(midpoint(site, other), n);
  return clip_half_plane(n, offset);
}

}  // namespace sensrep::geometry
