#pragma once

#include <optional>
#include <vector>

#include "geometry/vec2.hpp"
#include "sim/rng.hpp"

namespace sensrep::geometry {

/// Range-based localization substrate.
///
/// The paper assumes every sensor knows its own location, "enabled in the
/// initial deployment process" (§2a). This module implements the standard
/// way that assumption is realized in practice — a fraction of nodes are
/// anchors (GPS or surveyed) and the rest multilaterate from noisy range
/// measurements — so that the localization-error ablation can quantify how
/// much position error the geographic-routing stack tolerates.

/// One noisy distance measurement to a known-position anchor.
struct RangeMeasurement {
  Vec2 anchor;
  double range = 0.0;  // measured distance, meters (noise included)
};

/// Nonlinear least squares position fit (Gauss–Newton on the residuals
/// |x - a_i| - d_i). Returns nullopt when the system is degenerate (fewer
/// than 3 measurements, collinear anchors, or a singular normal matrix).
[[nodiscard]] std::optional<Vec2> multilaterate(
    const std::vector<RangeMeasurement>& measurements, Vec2 initial_guess,
    int max_iterations = 25, double tolerance = 1e-9);

/// Field-level localization parameters.
struct LocalizationConfig {
  double anchor_fraction = 0.1;     // nodes with surveyed/GPS positions
  double range_noise_stddev = 2.0;  // additive Gaussian ranging error, m
  double max_ranging_distance = 150.0;  // anchors audible for ranging
  int min_anchors = 3;              // fall back to nearest anchors if fewer in range
};

/// Per-node localization outcome.
struct LocalizationResult {
  std::vector<Vec2> estimated;   // estimated position per node
  std::vector<bool> is_anchor;   // anchors keep their true position
  std::size_t failed = 0;        // nodes that fell back to the anchor centroid
  double mean_error = 0.0;       // mean |estimate - truth| over non-anchors
  double max_error = 0.0;
};

/// Localizes every node of `true_positions`: draws anchors, simulates noisy
/// ranging, multilaterates the rest. Deterministic for a given rng state.
[[nodiscard]] LocalizationResult localize_field(const std::vector<Vec2>& true_positions,
                                                const LocalizationConfig& config,
                                                sim::Rng& rng);

}  // namespace sensrep::geometry
