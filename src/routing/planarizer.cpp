#include "routing/planarizer.hpp"

#include <algorithm>

#include "obs/profiler.hpp"

namespace sensrep::routing {

using geometry::Vec2;

bool edge_survives(PlanarGraph kind, Vec2 self, const NeighborEntry& candidate,
                   const std::vector<NeighborEntry>& witnesses) noexcept {
  const Vec2 u = self;
  const Vec2 v = candidate.pos;
  switch (kind) {
    case PlanarGraph::kGabriel: {
      const Vec2 mid = geometry::midpoint(u, v);
      const double r2 = geometry::distance2(u, v) * 0.25;  // (|uv|/2)^2
      for (const NeighborEntry& w : witnesses) {
        if (w.id == candidate.id) continue;
        // Strictly inside the diameter circle kills the edge; boundary points
        // (three collinear equally-spaced nodes) keep it, matching GPSR.
        if (geometry::distance2(w.pos, mid) < r2) return false;
      }
      return true;
    }
    case PlanarGraph::kRelativeNeighborhood: {
      const double d2 = geometry::distance2(u, v);
      for (const NeighborEntry& w : witnesses) {
        if (w.id == candidate.id) continue;
        if (geometry::distance2(w.pos, u) < d2 && geometry::distance2(w.pos, v) < d2) {
          return false;
        }
      }
      return true;
    }
  }
  return true;
}

std::vector<NeighborEntry> planar_neighbors(PlanarGraph kind, Vec2 self,
                                            const std::vector<NeighborEntry>& neighbors) {
  const obs::ScopedTimer probe(obs::Probe::kPlanarizer);
  std::vector<NeighborEntry> out;
  out.reserve(neighbors.size());
  for (const NeighborEntry& n : neighbors) {
    if (edge_survives(kind, self, n, neighbors)) out.push_back(n);
  }
  std::sort(out.begin(), out.end(),
            [](const NeighborEntry& a, const NeighborEntry& b) { return a.id < b.id; });
  return out;
}

}  // namespace sensrep::routing
