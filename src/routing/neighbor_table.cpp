#include "routing/neighbor_table.hpp"

#include <algorithm>
#include <limits>

namespace sensrep::routing {

using geometry::Vec2;

void NeighborTable::upsert(net::NodeId id, Vec2 pos) { entries_[id] = pos; }

void NeighborTable::remove(net::NodeId id) { entries_.erase(id); }

bool NeighborTable::contains(net::NodeId id) const noexcept { return entries_.contains(id); }

std::optional<Vec2> NeighborTable::position_of(net::NodeId id) const {
  auto it = entries_.find(id);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::vector<NeighborEntry> NeighborTable::entries() const {
  std::vector<NeighborEntry> out;
  out.reserve(entries_.size());
  for (const auto& [id, pos] : entries_) out.push_back({id, pos});
  std::sort(out.begin(), out.end(),
            [](const NeighborEntry& a, const NeighborEntry& b) { return a.id < b.id; });
  return out;
}

std::optional<NeighborEntry> NeighborTable::closest_to(Vec2 target) const {
  std::optional<NeighborEntry> best;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (const auto& [id, pos] : entries_) {
    const double d2 = geometry::distance2(pos, target);
    // Tie-break toward the lower id for determinism across hash orders.
    if (d2 < best_d2 || (d2 == best_d2 && best && id < best->id)) {
      best_d2 = d2;
      best = NeighborEntry{id, pos};
    }
  }
  return best;
}

std::optional<NeighborEntry> NeighborTable::closest_to_with_progress(Vec2 target,
                                                                     double than) const {
  auto best = closest_to(target);
  if (!best) return std::nullopt;
  if (geometry::distance(best->pos, target) >= than) return std::nullopt;
  return best;
}

}  // namespace sensrep::routing
