#include "routing/neighbor_table.hpp"

#include <algorithm>
#include <limits>

namespace sensrep::routing {

using geometry::Vec2;

namespace {

template <typename Vec>
auto lower_bound_id(Vec& v, net::NodeId id) {
  return std::lower_bound(v.begin(), v.end(), id,
                          [](const NeighborEntry& e, net::NodeId x) { return e.id < x; });
}

}  // namespace

void NeighborTable::upsert(net::NodeId id, Vec2 pos) {
  auto it = lower_bound_id(entries_, id);
  if (it != entries_.end() && it->id == id) {
    it->pos = pos;
  } else {
    entries_.insert(it, NeighborEntry{id, pos});
  }
}

void NeighborTable::remove(net::NodeId id) {
  auto it = lower_bound_id(entries_, id);
  if (it != entries_.end() && it->id == id) entries_.erase(it);
}

bool NeighborTable::contains(net::NodeId id) const noexcept {
  auto it = lower_bound_id(entries_, id);
  return it != entries_.end() && it->id == id;
}

std::optional<Vec2> NeighborTable::position_of(net::NodeId id) const {
  auto it = lower_bound_id(entries_, id);
  if (it == entries_.end() || it->id != id) return std::nullopt;
  return it->pos;
}

std::optional<NeighborEntry> NeighborTable::closest_to(Vec2 target) const {
  std::optional<NeighborEntry> best;
  double best_d2 = std::numeric_limits<double>::infinity();
  // Ascending-id scan with a strict '<': distance ties resolve to the lower
  // id, exactly as the explicit tie-break did over hash iteration.
  for (const NeighborEntry& e : entries_) {
    const double d2 = geometry::distance2(e.pos, target);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = e;
    }
  }
  return best;
}

std::optional<NeighborEntry> NeighborTable::closest_to_with_progress(Vec2 target,
                                                                     double than) const {
  auto best = closest_to(target);
  if (!best) return std::nullopt;
  if (geometry::distance(best->pos, target) >= than) return std::nullopt;
  return best;
}

}  // namespace sensrep::routing
