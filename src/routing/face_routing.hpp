#pragma once

#include <optional>
#include <vector>

#include "geometry/segment.hpp"
#include "geometry/vec2.hpp"
#include "net/node_id.hpp"
#include "routing/neighbor_table.hpp"

namespace sensrep::routing {

/// Right-hand-rule edge selection (GPSR §2.2).
///
/// Returns the neighbor whose bearing from `self` is the first one
/// counterclockwise from the reference direction `ref_dir`. The node the
/// packet arrived from (`from`, may be kNoNode) is eligible only as the last
/// resort — walking back along the incoming edge is exactly what the
/// right-hand rule prescribes at a dead end.
///
/// A neighbor exactly collinear with `ref_dir` is taken first (angle 0),
/// which matches "the first edge counterclockwise from the line xD" on
/// perimeter entry. Ties (identical bearings) break toward the closer node,
/// then the lower id.
[[nodiscard]] std::optional<NeighborEntry> right_hand_neighbor(
    geometry::Vec2 self, geometry::Vec2 ref_dir,
    const std::vector<NeighborEntry>& planar, net::NodeId from);

/// Face-change test (GPSR §2.4).
///
/// If the candidate edge self→candidate crosses the segment Lp→dst at a
/// point strictly closer to dst than the current face-entry point Lf,
/// returns that intersection (the packet should hop to the next face there).
[[nodiscard]] std::optional<geometry::Vec2> face_change_point(
    geometry::Vec2 self, geometry::Vec2 candidate, geometry::Vec2 perimeter_entry,
    geometry::Vec2 dst, geometry::Vec2 face_entry) noexcept;

}  // namespace sensrep::routing
