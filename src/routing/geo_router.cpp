#include "routing/geo_router.hpp"

#include <cassert>

#include "obs/profiler.hpp"
#include "routing/face_routing.hpp"

namespace sensrep::routing {

using geometry::Vec2;
using net::GeoMode;
using net::kNoNode;
using net::NodeId;
using net::Packet;

std::string_view to_string(DropReason r) noexcept {
  switch (r) {
    case DropReason::kTtlExpired: return "ttl_expired";
    case DropReason::kNoNeighbors: return "no_neighbors";
    case DropReason::kFaceLoop: return "face_loop";
    case DropReason::kLinkFailure: return "link_failure";
  }
  return "?";
}

GeoRouter::GeoRouter(NodeId self, net::Medium& medium, NeighborTable& table,
                     std::function<Vec2()> position, Callbacks callbacks,
                     PlanarGraph planar_kind)
    : self_(self),
      medium_(&medium),
      table_(&table),
      position_(std::move(position)),
      callbacks_(std::move(callbacks)),
      planar_kind_(planar_kind) {
  assert(callbacks_.deliver && "GeoRouter requires a deliver callback");
}

void GeoRouter::send(Packet pkt) {
  pkt.src = self_;
  pkt.seq = next_seq_++;
  if (pkt.dst == self_) {
    callbacks_.deliver(pkt);
    return;
  }
  forward(std::move(pkt), kNoNode);
}

void GeoRouter::on_receive(const Packet& pkt, NodeId from) {
  if (pkt.dst == self_) {
    callbacks_.deliver(pkt);
    return;
  }
  forward(pkt, from);
}

void GeoRouter::drop_packet(const Packet& pkt, DropReason reason) {
  ++drops_;
  if (callbacks_.drop) callbacks_.drop(pkt, reason);
}

bool GeoRouter::try_unicast(NodeId next, const Packet& pkt) {
  if (medium_->unicast(self_, next, pkt)) return true;
  // The link is down (neighbor died or moved away): evict so the next
  // candidate computation does not pick it again.
  table_->remove(next);
  return false;
}

void GeoRouter::forward(Packet pkt, NodeId from) {
  // Safe to time the whole call: transmission is asynchronous (the medium
  // delivers via the simulator), so forward() never re-enters itself.
  const obs::ScopedTimer probe(obs::Probe::kRouterNextHop);
  if (pkt.ttl == 0) {
    drop_packet(pkt, DropReason::kTtlExpired);
    return;
  }
  pkt.ttl -= 1;

  // Direct shortcut: the destination itself is a known one-hop neighbor.
  // Robots announce themselves to nearby sensors, so the final hop to a
  // moving robot resolves here even when the advertised dst_location lags
  // its true position by up to the 20 m update threshold.
  while (table_->contains(pkt.dst)) {
    if (try_unicast(pkt.dst, pkt)) return;
  }

  // Alternate greedy/perimeter until the packet is transmitted or dropped.
  // Mode flips are strictly bounded: greedy -> perimeter happens at most once
  // per node (no progress), perimeter -> greedy only with strict progress
  // over the perimeter entry point.
  for (int flips = 0; flips < 4; ++flips) {
    if (pkt.geo.mode == GeoMode::kGreedy) {
      if (greedy_hop(pkt)) return;
      if (table_->empty()) {
        drop_packet(pkt, DropReason::kNoNeighbors);
        return;
      }
      // Enter perimeter mode at this node (GPSR: record Lp and reset face
      // state; the first edge is chosen by the right-hand rule from the
      // line self->dst).
      pkt.geo.mode = GeoMode::kPerimeter;
      pkt.geo.entry_loc = position_();
      pkt.geo.face_entry = position_();
      pkt.geo.first_edge_from = kNoNode;
      pkt.geo.first_edge_to = kNoNode;
      from = kNoNode;  // the sweep reference is the dst line, not an edge
      continue;
    }
    // Perimeter mode: resume greedy once strictly closer than the entry.
    if (geometry::distance(position_(), pkt.dst_location) <
        geometry::distance(pkt.geo.entry_loc, pkt.dst_location)) {
      pkt.geo.mode = GeoMode::kGreedy;
      continue;
    }
    perimeter_hop(pkt, from);
    return;
  }
  // Unreachable: the flip bound above cannot be exceeded by the transitions
  // described. Guard anyway.
  drop_packet(pkt, DropReason::kNoNeighbors);
}

bool GeoRouter::greedy_hop(Packet& pkt) {
  const Vec2 here = position_();
  for (;;) {
    const double my_d = geometry::distance(here, pkt.dst_location);
    const auto cand = table_->closest_to_with_progress(pkt.dst_location, my_d);
    if (!cand) return false;
    if (try_unicast(cand->id, pkt)) return true;
    // Link failed; entry was evicted — try the next best candidate.
  }
}

bool GeoRouter::perimeter_hop(Packet& pkt, NodeId from) {
  const Vec2 here = position_();
  for (;;) {
    const auto planar = planar_neighbors(planar_kind_, here, table_->entries());
    if (planar.empty()) {
      drop_packet(pkt, DropReason::kNoNeighbors);
      return false;
    }

    // Reference direction: incoming edge when known, else the dst line
    // (perimeter entry at this node).
    Vec2 ref;
    if (from != kNoNode) {
      if (const auto fpos = table_->position_of(from)) {
        ref = *fpos - here;
      } else {
        ref = pkt.dst_location - here;
      }
    } else {
      ref = pkt.dst_location - here;
    }

    auto cand = right_hand_neighbor(here, ref, planar, from);
    if (!cand) {
      drop_packet(pkt, DropReason::kNoNeighbors);
      return false;
    }

    // Face changes: while the candidate edge crosses LpD strictly closer to
    // dst than the current face entry, hop to the next face and re-sweep
    // from the dst line. Each iteration strictly shrinks d(Lf, dst), so the
    // loop terminates; bound it defensively by the planar degree.
    for (std::size_t i = 0; i <= planar.size(); ++i) {
      const auto cross = face_change_point(here, cand->pos, pkt.geo.entry_loc,
                                           pkt.dst_location, pkt.geo.face_entry);
      if (!cross) break;
      pkt.geo.face_entry = *cross;
      auto next = right_hand_neighbor(here, pkt.dst_location - here, planar, from);
      if (!next || next->id == cand->id) break;
      cand = next;
    }

    // Loop detection: re-traversing the recorded first perimeter edge means
    // the destination region is unreachable in this planar face structure.
    if (pkt.geo.first_edge_from == self_ && pkt.geo.first_edge_to == cand->id) {
      drop_packet(pkt, DropReason::kFaceLoop);
      return false;
    }
    if (pkt.geo.first_edge_from == kNoNode) {
      pkt.geo.first_edge_from = self_;
      pkt.geo.first_edge_to = cand->id;
    }

    if (try_unicast(cand->id, pkt)) return true;
    if (table_->empty()) {
      drop_packet(pkt, DropReason::kLinkFailure);
      return false;
    }
    // Candidate evicted after link failure; recompute on the shrunken table.
  }
}

}  // namespace sensrep::routing
