#include "routing/face_routing.hpp"

#include <cmath>
#include <limits>
#include <numbers>

namespace sensrep::routing {

using geometry::Vec2;

std::optional<NeighborEntry> right_hand_neighbor(Vec2 self, Vec2 ref_dir,
                                                 const std::vector<NeighborEntry>& planar,
                                                 net::NodeId from) {
  if (planar.empty()) return std::nullopt;
  constexpr double kTwoPi = 2.0 * std::numbers::pi;
  const double ref = geometry::angle_of(ref_dir);

  std::optional<NeighborEntry> best;
  double best_key = std::numeric_limits<double>::infinity();
  double best_d2 = 0.0;

  for (const NeighborEntry& n : planar) {
    const Vec2 d = n.pos - self;
    if (d == Vec2{}) continue;  // co-located: no direction, skip
    double delta = geometry::angle_of(d) - ref;
    delta = std::fmod(delta, kTwoPi);
    if (delta < 0.0) delta += kTwoPi;
    // The incoming edge sorts last: taking it means a full sweep found
    // nothing else (dead end), per the right-hand rule.
    if (n.id == from) delta = kTwoPi;
    const double d2 = geometry::distance2(n.pos, self);
    const bool better =
        delta < best_key ||
        (delta == best_key && (!best || d2 < best_d2 || (d2 == best_d2 && n.id < best->id)));
    if (better) {
      best_key = delta;
      best_d2 = d2;
      best = n;
    }
  }
  return best;
}

std::optional<Vec2> face_change_point(Vec2 self, Vec2 candidate, Vec2 perimeter_entry,
                                      Vec2 dst, Vec2 face_entry) noexcept {
  const auto hit = geometry::segment_intersection({self, candidate}, {perimeter_entry, dst});
  if (!hit) return std::nullopt;
  // Require strict progress along LpD; the epsilon guards against re-firing
  // on the same crossing due to floating-point noise.
  constexpr double kEps = 1e-9;
  if (geometry::distance(*hit, dst) + kEps < geometry::distance(face_entry, dst)) return hit;
  return std::nullopt;
}

}  // namespace sensrep::routing
