#pragma once

#include <optional>
#include <vector>

#include "geometry/vec2.hpp"
#include "net/node_id.hpp"

namespace sensrep::routing {

/// One-hop neighbor as known locally (from location announcements / beacons).
struct NeighborEntry {
  net::NodeId id = net::kNoNode;
  geometry::Vec2 pos;
};

/// Per-node table of one-hop neighbors with their advertised locations.
///
/// Ownership of freshness policy is deliberately outside this class: the WSN
/// layer inserts entries when a neighbor announces itself and removes them
/// when the neighbor is declared failed (3 missed beacons) or a robot moves
/// out of range — see DESIGN.md substitution 3 for why this is equivalent to
/// per-beacon refresh for static nodes.
///
/// Storage is a flat vector sorted by id (tables hold a dozen-odd entries at
/// paper densities, so binary search + memmove beat hashing and node
/// allocation). This is also what makes entries() free: the sorted snapshot
/// the old hash-map version built and sorted per call *is* the storage.
/// Behavior is unchanged: closest_to always tie-broke toward the lower id
/// explicitly, so it never depended on hash iteration order.
class NeighborTable {
 public:
  /// Adds or refreshes a neighbor's advertised position.
  void upsert(net::NodeId id, geometry::Vec2 pos);

  /// Removes a neighbor; no-op if absent.
  void remove(net::NodeId id);

  [[nodiscard]] bool contains(net::NodeId id) const noexcept;
  [[nodiscard]] std::optional<geometry::Vec2> position_of(net::NodeId id) const;
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  /// All entries, ascending id (deterministic iteration). The reference is
  /// invalidated by upsert/remove/clear — callers that mutate while
  /// iterating must collect first (they all do).
  [[nodiscard]] const std::vector<NeighborEntry>& entries() const noexcept {
    return entries_;
  }

  /// Neighbor geographically closest to `target`; nullopt when empty.
  [[nodiscard]] std::optional<NeighborEntry> closest_to(geometry::Vec2 target) const;

  /// Neighbor closest to `target` and strictly closer than `than` (greedy
  /// forwarding candidate); nullopt when no neighbor makes progress.
  [[nodiscard]] std::optional<NeighborEntry> closest_to_with_progress(
      geometry::Vec2 target, double than) const;

  void clear() { entries_.clear(); }

 private:
  std::vector<NeighborEntry> entries_;  // sorted by id
};

}  // namespace sensrep::routing
