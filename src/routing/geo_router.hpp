#pragma once

#include <cstdint>
#include <functional>
#include <string_view>

#include "net/medium.hpp"
#include "net/packet.hpp"
#include "routing/neighbor_table.hpp"
#include "routing/planarizer.hpp"

namespace sensrep::routing {

/// Reasons a geo-routed packet can be discarded (diagnostics & tests).
enum class DropReason {
  kTtlExpired,
  kNoNeighbors,
  kFaceLoop,     // perimeter walked back onto its first edge: unreachable
  kLinkFailure,  // every candidate next hop failed at the link layer
};

[[nodiscard]] std::string_view to_string(DropReason r) noexcept;

/// Per-node geographic router: greedy forwarding with face-routing recovery,
/// after GPSR (Karp & Kung 2000) / GFG (Bose et al. 1999) — the stack the
/// paper states it implements on GloMoSim (§4.2).
///
/// One instance lives on every routable node (sensor or robot). It consults
/// the node's NeighborTable, transmits via the shared Medium, and hands
/// packets destined to this node to the `deliver` callback.
class GeoRouter {
 public:
  struct Callbacks {
    /// Packet whose dst is this node (or that was addressed to this node's
    /// location and arrived). Required.
    std::function<void(const net::Packet&)> deliver;
    /// Packet this node had to discard. Optional.
    std::function<void(const net::Packet&, DropReason)> drop;
  };

  /// `position` supplies the node's current location (robots move).
  GeoRouter(net::NodeId self, net::Medium& medium, NeighborTable& table,
            std::function<geometry::Vec2()> position, Callbacks callbacks,
            PlanarGraph planar_kind = PlanarGraph::kGabriel);

  GeoRouter(const GeoRouter&) = delete;
  GeoRouter& operator=(const GeoRouter&) = delete;

  /// Originates a geo-routed packet. pkt.dst and pkt.dst_location must be
  /// set; pkt.src/seq are stamped here.
  void send(net::Packet pkt);

  /// Entry point for received geo-routed packets (wired by the owning node's
  /// receive dispatch).
  void on_receive(const net::Packet& pkt, net::NodeId from);

  [[nodiscard]] net::NodeId self() const noexcept { return self_; }
  [[nodiscard]] NeighborTable& table() noexcept { return *table_; }

  /// Packets discarded by this router, by reason (diagnostics).
  [[nodiscard]] std::uint64_t drops() const noexcept { return drops_; }

 private:
  void forward(net::Packet pkt, net::NodeId from);
  /// Attempts one greedy hop; returns false when no neighbor makes progress.
  bool greedy_hop(net::Packet& pkt);
  /// Attempts one perimeter hop; returns false on drop.
  bool perimeter_hop(net::Packet& pkt, net::NodeId from);
  void drop_packet(const net::Packet& pkt, DropReason reason);
  /// Unicast wrapper that evicts dead next hops and reports link success.
  bool try_unicast(net::NodeId next, const net::Packet& pkt);

  net::NodeId self_;
  net::Medium* medium_;
  NeighborTable* table_;
  std::function<geometry::Vec2()> position_;
  Callbacks callbacks_;
  PlanarGraph planar_kind_;
  std::uint32_t next_seq_ = 1;
  std::uint64_t drops_ = 0;
};

}  // namespace sensrep::routing
