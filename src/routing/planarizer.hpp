#pragma once

#include <vector>

#include "geometry/vec2.hpp"
#include "routing/neighbor_table.hpp"

namespace sensrep::routing {

/// Local planarization of the one-hop neighborhood graph.
///
/// Face routing is only correct on a planar subgraph; GPSR/GFG build one with
/// purely local tests. We implement both classic constructions:
///
///  * Gabriel Graph (GG): keep edge (u,v) iff no known witness w lies inside
///    the circle with diameter uv.
///  * Relative Neighborhood Graph (RNG): keep (u,v) iff no witness w with
///    max(d(u,w), d(v,w)) < d(u,v) (the lune test); RNG ⊆ GG.
///
/// Witnesses come from u's own neighbor table — exactly the information a
/// real node has. Both tests keep connectivity of the unit-disk graph.
enum class PlanarGraph {
  kGabriel,
  kRelativeNeighborhood,
};

/// True if edge (self—candidate) survives the chosen planarity test given
/// the locally known `witnesses` (entries equal to candidate are skipped).
[[nodiscard]] bool edge_survives(PlanarGraph kind, geometry::Vec2 self,
                                 const NeighborEntry& candidate,
                                 const std::vector<NeighborEntry>& witnesses) noexcept;

/// Filters a neighbor set down to the planar subgraph edges incident to
/// `self`. Returned in ascending id order.
[[nodiscard]] std::vector<NeighborEntry> planar_neighbors(
    PlanarGraph kind, geometry::Vec2 self, const std::vector<NeighborEntry>& neighbors);

}  // namespace sensrep::routing
