#include "runner/executor.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/simulation.hpp"
#include "runner/thread_pool.hpp"
#include "trace/format.hpp"

namespace sensrep::runner {

namespace {

std::size_t resolve_workers(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

double BatchResult::total_wall_seconds() const noexcept {
  double sum = 0.0;
  for (const JobStats& s : stats) sum += s.wall_seconds;
  return sum;
}

std::vector<std::size_t> BatchResult::slowest(std::size_t n) const {
  std::vector<std::size_t> order(stats.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    if (stats[a].wall_seconds != stats[b].wall_seconds) {
      return stats[a].wall_seconds > stats[b].wall_seconds;
    }
    return a < b;
  });
  order.resize(std::min(n, order.size()));
  return order;
}

Executor::Executor(ExecutorOptions options)
    : workers_(resolve_workers(options.jobs)),
      retries_(options.retries),
      progress_(options.progress),
      cancelled_(std::move(options.cancelled)) {}

core::ExperimentResult Executor::run_simulation(const Job& job) {
  job.config.validate();
  core::Simulation sim(job.config);
  sim.run();
  return sim.result();
}

BatchResult Executor::run(const std::vector<Job>& jobs, const RunFn& fn,
                          ResultSink* sink) {
  BatchResult batch;
  batch.results.resize(jobs.size());
  batch.stats.resize(jobs.size());

  // Workers publish into index-addressed slots; the thread that completes
  // the head of the remaining range flushes the contiguous ready prefix to
  // the sink. That keeps emission strictly in grid order (deterministic
  // output) while still streaming rows as early as dependencies allow.
  struct Slot {
    std::optional<core::ExperimentResult> result;
    std::optional<JobFailure> failure;
    JobStats stats;
  };
  std::vector<Slot> slots(jobs.size());
  std::vector<char> ready(jobs.size(), 0);
  std::mutex dispatch_mu;
  std::size_t next_to_emit = 0;

  ThreadPool pool(workers_);
  for (const Job& job : jobs) {
    pool.submit([&batch, &fn, &sink, &jobs, &slots, &ready, &dispatch_mu, &next_to_emit,
                 &job, this] {
      Slot slot;
      const std::size_t max_attempts = retries_ + 1;
      const auto started = std::chrono::steady_clock::now();
      for (std::size_t attempt = 1; attempt <= max_attempts; ++attempt) {
        if (cancelled_ && cancelled_()) {
          slot.failure = JobFailure{job.index, job.label, attempt - 1, "cancelled"};
          break;
        }
        slot.stats.attempts = attempt;
        try {
          slot.result = fn(job);
          break;
        } catch (const std::exception& e) {
          if (attempt == max_attempts) {
            slot.failure = JobFailure{job.index, job.label, attempt, e.what()};
          }
        } catch (...) {
          if (attempt == max_attempts) {
            slot.failure = JobFailure{job.index, job.label, attempt, "unknown exception"};
          }
        }
      }
      slot.stats.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
              .count();
      if (progress_ != nullptr) progress_->job_done();

      const std::lock_guard lock(dispatch_mu);
      slots[job.index] = std::move(slot);
      ready[job.index] = 1;
      while (next_to_emit < jobs.size() && ready[next_to_emit] != 0) {
        Slot& head = slots[next_to_emit];
        if (head.failure) {
          batch.failures.push_back(std::move(*head.failure));
        } else if (sink != nullptr) {
          sink->accept(jobs[next_to_emit], *head.result, head.stats);
        }
        batch.stats[next_to_emit] = head.stats;
        batch.results[next_to_emit] = std::move(head.result);
        ++next_to_emit;
      }
    });
  }
  pool.wait_idle();
  return batch;
}

BatchResult Executor::run(const ParameterGrid& grid, ResultSink* sink) {
  if (!cancelled_) return run(grid.expand(), &Executor::run_simulation, sink);
  // With a cancellation probe, wire it into each simulation's event loop so
  // an in-flight cell stops mid-run instead of running to its horizon.
  const std::function<bool()>& probe = cancelled_;
  const RunFn fn = [&probe](const Job& job) {
    job.config.validate();
    core::Simulation sim(job.config);
    sim.simulator().set_interrupt(probe);
    sim.run();
    if (sim.simulator().interrupted()) {
      throw std::runtime_error("cancelled");
    }
    return sim.result();
  };
  return run(grid.expand(), fn, sink);
}

core::ReplicatedResult run_replicated(const core::SimulationConfig& config,
                                      std::size_t replications,
                                      const ExecutorOptions& options) {
  if (replications == 0) {
    throw std::invalid_argument("run_replicated: replications must be >= 1");
  }
  std::vector<Job> jobs;
  jobs.reserve(replications);
  for (std::size_t i = 0; i < replications; ++i) {
    Job job;
    job.index = i;
    job.config = config;
    job.config.seed = config.seed + i;
    job.label = trace::strfmt("seed=%llu",
                              static_cast<unsigned long long>(job.config.seed));
    jobs.push_back(std::move(job));
  }

  Executor exec(options);
  auto batch = exec.run(jobs, &Executor::run_simulation);
  if (!batch.ok()) {
    const auto& f = batch.failures.front();
    throw std::runtime_error(trace::strfmt("run_replicated: %s failed after %zu attempt(s): %s",
                                           f.label.c_str(), f.attempts, f.error.c_str()));
  }
  std::vector<core::ExperimentResult> per_seed;
  per_seed.reserve(batch.results.size());
  for (auto& r : batch.results) per_seed.push_back(std::move(*r));
  return core::aggregate_replications(config, per_seed);
}

}  // namespace sensrep::runner
