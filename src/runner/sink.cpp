#include "runner/sink.hpp"

#include <string>
#include <vector>

namespace sensrep::runner {

void VectorSink::accept(const Job& job, const core::ExperimentResult& result) {
  entries_.push_back({job.index, result});
}

CsvSink::CsvSink(std::ostream& out, bool wall_time) : csv_(out), wall_time_(wall_time) {
  if (wall_time_) {
    csv_.row({"algorithm", "robots", "seed", "duration_s", "failures", "repaired",
              "delivery_ratio", "travel_m_per_failure", "report_hops", "request_hops",
              "update_tx_per_failure", "repair_latency_s", "p95_latency_s",
              "motion_energy_kj", "wall_s"});
    return;
  }
  csv_.row({"algorithm", "robots", "seed", "duration_s", "failures", "repaired",
            "delivery_ratio", "travel_m_per_failure", "report_hops", "request_hops",
            "update_tx_per_failure", "repair_latency_s", "p95_latency_s",
            "motion_energy_kj"});
}

void CsvSink::accept(const Job& job, const core::ExperimentResult& r) {
  emit(job, r, nullptr);
}

void CsvSink::accept(const Job& job, const core::ExperimentResult& r,
                     const JobStats& stats) {
  emit(job, r, &stats);
}

void CsvSink::emit(const Job& job, const core::ExperimentResult& r,
                   const JobStats* stats) {
  if (wall_time_) {
    csv_.row(std::string(core::to_string(job.config.algorithm)), job.config.robots,
             job.config.seed, job.config.sim_duration, r.failures, r.repaired,
             r.delivery_ratio, r.avg_travel_per_repair, r.avg_report_hops,
             r.avg_request_hops, r.location_update_tx_per_repair, r.avg_repair_latency,
             r.p95_repair_latency, r.motion_energy_j / 1000.0,
             stats != nullptr ? stats->wall_seconds : 0.0);
    return;
  }
  csv_.row(std::string(core::to_string(job.config.algorithm)), job.config.robots,
           job.config.seed, job.config.sim_duration, r.failures, r.repaired,
           r.delivery_ratio, r.avg_travel_per_repair, r.avg_report_hops,
           r.avg_request_hops, r.location_update_tx_per_repair, r.avg_repair_latency,
           r.p95_repair_latency, r.motion_energy_j / 1000.0);
}

}  // namespace sensrep::runner
