#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "core/simulation.hpp"
#include "metrics/csv.hpp"
#include "runner/job.hpp"

namespace sensrep::runner {

/// Host-side execution stats for one job (wall clock, not sim time).
struct JobStats {
  double wall_seconds = 0.0;  // time inside the run function, retries included
  std::size_t attempts = 1;   // 1 + retries actually taken
};

/// Consumer of per-job results.
///
/// The executor guarantees accept() is invoked from one thread at a time,
/// in ascending job-index order, regardless of worker count or completion
/// order — so a sink needs neither locking nor reordering to produce
/// deterministic output. Failed jobs are skipped (they surface as
/// JobFailure records on the batch instead).
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void accept(const Job& job, const core::ExperimentResult& result) = 0;

  /// Stats-aware entry the executor actually calls; the default forwards to
  /// the two-argument accept() so existing sinks ignore stats transparently.
  virtual void accept(const Job& job, const core::ExperimentResult& result,
                      const JobStats& /*stats*/) {
    accept(job, result);
  }
};

/// Collects (index, result) pairs; entries arrive already index-sorted.
class VectorSink final : public ResultSink {
 public:
  struct Entry {
    std::size_t index;
    core::ExperimentResult result;
  };

  void accept(const Job& job, const core::ExperimentResult& result) override;

  [[nodiscard]] const std::vector<Entry>& entries() const noexcept { return entries_; }

 private:
  std::vector<Entry> entries_;
};

/// Streams the sweep CSV schema — the exact columns sensrep_sweep has
/// always emitted — one row per completed job. Because rows are emitted in
/// grid order, the file is byte-identical across --jobs=1 and --jobs=N.
class CsvSink final : public ResultSink {
 public:
  /// Writes the header immediately; `out` must outlive the sink. With
  /// `wall_time` a trailing wall_s column is added — opt-in because wall
  /// clocks are nondeterministic and would break byte-identical-output
  /// comparisons across worker counts.
  explicit CsvSink(std::ostream& out, bool wall_time = false);

  void accept(const Job& job, const core::ExperimentResult& result) override;
  void accept(const Job& job, const core::ExperimentResult& result,
              const JobStats& stats) override;

 private:
  void emit(const Job& job, const core::ExperimentResult& r,
            const JobStats* stats);

  metrics::CsvWriter csv_;
  bool wall_time_;
};

}  // namespace sensrep::runner
