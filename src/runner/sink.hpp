#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "core/simulation.hpp"
#include "metrics/csv.hpp"
#include "runner/job.hpp"

namespace sensrep::runner {

/// Consumer of per-job results.
///
/// The executor guarantees accept() is invoked from one thread at a time,
/// in ascending job-index order, regardless of worker count or completion
/// order — so a sink needs neither locking nor reordering to produce
/// deterministic output. Failed jobs are skipped (they surface as
/// JobFailure records on the batch instead).
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void accept(const Job& job, const core::ExperimentResult& result) = 0;
};

/// Collects (index, result) pairs; entries arrive already index-sorted.
class VectorSink final : public ResultSink {
 public:
  struct Entry {
    std::size_t index;
    core::ExperimentResult result;
  };

  void accept(const Job& job, const core::ExperimentResult& result) override;

  [[nodiscard]] const std::vector<Entry>& entries() const noexcept { return entries_; }

 private:
  std::vector<Entry> entries_;
};

/// Streams the sweep CSV schema — the exact columns sensrep_sweep has
/// always emitted — one row per completed job. Because rows are emitted in
/// grid order, the file is byte-identical across --jobs=1 and --jobs=N.
class CsvSink final : public ResultSink {
 public:
  /// Writes the header immediately; `out` must outlive the sink.
  explicit CsvSink(std::ostream& out);

  void accept(const Job& job, const core::ExperimentResult& result) override;

 private:
  metrics::CsvWriter csv_;
};

}  // namespace sensrep::runner
