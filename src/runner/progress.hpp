#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <iosfwd>
#include <mutex>
#include <string>

namespace sensrep::runner {

/// Live batch progress: completed/total, throughput, and an ETA, fed by an
/// atomic counter so worker threads report completions without serializing
/// on the render path.
class ProgressMeter {
 public:
  /// Re-renders a carriage-return status line to `out` (typically
  /// std::cerr) after every completion; pass nullptr for a silent counter.
  explicit ProgressMeter(std::size_t total, std::ostream* out = nullptr);

  /// Marks one job finished (success or failure). Thread-safe.
  void job_done();

  /// Renders the final state followed by a newline; call once, after the
  /// batch has drained.
  void finish();

  [[nodiscard]] std::size_t completed() const noexcept {
    return done_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }

  /// "k/N runs (p%) | r.rr runs/s | eta Ss". Thread-safe.
  [[nodiscard]] std::string render() const;

 private:
  std::size_t total_;
  std::ostream* out_;
  std::atomic<std::size_t> done_{0};
  std::chrono::steady_clock::time_point start_;
  std::mutex render_mu_;  // serializes the output stream, not the counter
};

}  // namespace sensrep::runner
