#include "runner/progress.hpp"

#include <ostream>

#include "trace/format.hpp"

namespace sensrep::runner {

ProgressMeter::ProgressMeter(std::size_t total, std::ostream* out)
    : total_(total), out_(out), start_(std::chrono::steady_clock::now()) {}

void ProgressMeter::job_done() {
  done_.fetch_add(1, std::memory_order_relaxed);
  if (out_ == nullptr) return;
  const std::lock_guard lock(render_mu_);
  (*out_) << "\r" << render() << std::flush;
}

void ProgressMeter::finish() {
  if (out_ == nullptr) return;
  const std::lock_guard lock(render_mu_);
  (*out_) << "\r" << render() << "\n";
}

std::string ProgressMeter::render() const {
  const std::size_t done = completed();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  const double rate = elapsed > 0.0 ? static_cast<double>(done) / elapsed : 0.0;
  const double pct =
      total_ > 0 ? 100.0 * static_cast<double>(done) / static_cast<double>(total_) : 100.0;
  std::string line = trace::strfmt("%zu/%zu runs (%.0f%%)", done, total_, pct);
  if (done > 0 && rate > 0.0) {
    line += trace::strfmt(" | %.2f runs/s", rate);
    if (done < total_) {
      const double eta = static_cast<double>(total_ - done) / rate;
      line += trace::strfmt(" | eta %.0fs", eta);
    }
  }
  return line;
}

}  // namespace sensrep::runner
