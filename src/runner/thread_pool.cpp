#include "runner/thread_pool.hpp"

namespace sensrep::runner {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = threads == 0 ? 1 : threads;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mu_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard lock(mu_);
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      task_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    task();
    {
      const std::lock_guard lock(mu_);
      --running_;
      if (queue_.empty() && running_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace sensrep::runner
