#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sensrep::runner {

/// Fixed-size pool of worker threads draining one FIFO task queue.
///
/// Deliberately minimal — no work stealing, no priorities, no futures. The
/// executor layers retry, failure capture, and deterministic aggregation on
/// top; the pool only promises that every submitted task runs exactly once
/// on some worker thread.
class ThreadPool {
 public:
  /// Spawns `threads` workers (a request for 0 gets 1).
  explicit ThreadPool(std::size_t threads);

  /// Drains the remaining queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for some worker. Thread-safe.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is executing.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::size_t running_ = 0;
  bool stop_ = false;
};

}  // namespace sensrep::runner
