#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "core/replication.hpp"
#include "runner/grid.hpp"
#include "runner/job.hpp"
#include "runner/progress.hpp"
#include "runner/sink.hpp"

namespace sensrep::runner {

struct ExecutorOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency (min 1).
  std::size_t jobs = 0;
  /// Extra attempts after a job's first throw (0 = a throw fails the job
  /// immediately). Retries re-run the same deterministic config, so they
  /// only help against transient environment faults (OOM, I/O), not logic
  /// bugs — but they keep a 27-cell overnight sweep from dying at cell 26.
  std::size_t retries = 0;
  /// Optional live progress, ticked once per finished job. Not owned.
  ProgressMeter* progress = nullptr;
  /// Optional cooperative-cancellation probe (e.g. a SIGINT flag). Polled
  /// before every job attempt and — for grid runs — inside each simulation's
  /// event loop, so Ctrl-C stops a sweep within milliseconds instead of at
  /// the next job boundary. Cancelled jobs are recorded as failures with
  /// error "cancelled"; already-finished jobs keep streaming to the sink, so
  /// a partial CSV survives. Must be thread-safe (called from workers).
  std::function<bool()> cancelled;
};

/// Outcome of one batch. results[i] corresponds to job index i and is empty
/// exactly when `failures` holds a record for that index.
struct BatchResult {
  std::vector<std::optional<core::ExperimentResult>> results;
  std::vector<JobFailure> failures;  // ascending index
  std::vector<JobStats> stats;       // per job index (failed jobs included)

  [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
  [[nodiscard]] std::size_t completed() const noexcept {
    return results.size() - failures.size();
  }

  /// Sum of per-job wall seconds (CPU-side cost, not elapsed batch time).
  [[nodiscard]] double total_wall_seconds() const noexcept;

  /// Indices of the `n` slowest jobs by wall time, slowest first (ties by
  /// ascending index, so the order is stable across worker counts).
  [[nodiscard]] std::vector<std::size_t> slowest(std::size_t n) const;
};

/// Parallel batch executor for independent simulation runs.
///
/// Concurrency contract: each Simulation stays single-threaded (the
/// simulator's event loop is sequential by design); parallelism is across
/// runs only. Determinism contract: a run's outcome is a pure function of
/// its config, and aggregation (BatchResult order, sink callbacks) follows
/// job index, never completion order — so any observable output is
/// identical for 1 and N workers.
///
///   runner::ParameterGrid grid;
///   grid.seeds = 5;
///   runner::CsvSink sink(out);
///   runner::Executor exec({.jobs = 8});
///   const auto batch = exec.run(grid, &sink);
class Executor {
 public:
  explicit Executor(ExecutorOptions options = {});

  using RunFn = std::function<core::ExperimentResult(const Job&)>;

  /// Runs every job through `fn` on the worker pool. Exceptions from `fn`
  /// are retried per options and captured as JobFailure records — sibling
  /// jobs always run to completion. If `sink` is non-null its accept() is
  /// called serially, in ascending job-index order, as soon as each
  /// contiguous index prefix is complete (streaming, not end-of-batch).
  BatchResult run(const std::vector<Job>& jobs, const RunFn& fn,
                  ResultSink* sink = nullptr);

  /// Expands the grid and runs each cell as one full Simulation.
  BatchResult run(const ParameterGrid& grid, ResultSink* sink = nullptr);

  [[nodiscard]] std::size_t worker_count() const noexcept { return workers_; }

  /// The default RunFn: validate the config, run one fresh single-threaded
  /// Simulation to completion, return its result snapshot.
  static core::ExperimentResult run_simulation(const Job& job);

 private:
  std::size_t workers_;
  std::size_t retries_;
  ProgressMeter* progress_;
  std::function<bool()> cancelled_;
};

/// Drop-in parallel equivalent of core::run_replicated — same seed
/// schedule, same aggregation, `options.jobs` simulations in flight.
/// Throws std::runtime_error if any replication fails after retries.
[[nodiscard]] core::ReplicatedResult run_replicated(const core::SimulationConfig& config,
                                                    std::size_t replications,
                                                    const ExecutorOptions& options);

}  // namespace sensrep::runner
