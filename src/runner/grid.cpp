#include "runner/grid.hpp"

#include "trace/format.hpp"

namespace sensrep::runner {

std::size_t ParameterGrid::size() const noexcept {
  return algorithms.size() * robot_counts.size() * seeds;
}

std::vector<Job> ParameterGrid::expand() const {
  std::vector<Job> jobs;
  jobs.reserve(size());
  for (const auto algorithm : algorithms) {
    for (const std::size_t robots : robot_counts) {
      for (std::size_t i = 0; i < seeds; ++i) {
        Job job;
        job.index = jobs.size();
        job.config = base;
        job.config.algorithm = algorithm;
        job.config.robots = robots;
        job.config.seed = first_seed + i;
        job.label = trace::strfmt(
            "%s r=%zu seed=%llu", std::string(core::to_string(algorithm)).c_str(),
            robots, static_cast<unsigned long long>(job.config.seed));
        jobs.push_back(std::move(job));
      }
    }
  }
  return jobs;
}

}  // namespace sensrep::runner
