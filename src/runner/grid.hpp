#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "runner/job.hpp"

namespace sensrep::runner {

/// Declarative algorithm × robot-count × seed grid — the shape of the
/// paper's whole evaluation (§4.3, Figs. 2–4). Consumers describe the sweep
/// they want; the executor owns how it runs.
///
/// Expansion order is the classic triple-nested loop — algorithm-major, then
/// robots, then seed — and is a contract: every sink's output order inherits
/// it, so CSVs stay byte-identical whether the batch ran on 1 thread or 64.
struct ParameterGrid {
  /// Every job starts from this config; the three axes below override
  /// `algorithm`, `robots`, and `seed` per cell.
  core::SimulationConfig base;

  std::vector<core::Algorithm> algorithms{core::Algorithm::kCentralized,
                                          core::Algorithm::kFixedDistributed,
                                          core::Algorithm::kDynamicDistributed};
  std::vector<std::size_t> robot_counts{4, 9, 16};
  std::uint64_t first_seed = 1;
  std::size_t seeds = 3;

  [[nodiscard]] std::size_t size() const noexcept;

  /// Materializes the jobs with indices 0..size()-1 in expansion order.
  [[nodiscard]] std::vector<Job> expand() const;
};

}  // namespace sensrep::runner
