#pragma once

#include <cstddef>
#include <string>

#include "core/config.hpp"

namespace sensrep::runner {

/// One unit of batch work: a fully specified simulation run plus its fixed
/// position in the batch. `index` is assigned at grid-expansion (or
/// job-list construction) time and is the ONLY ordering the rest of the
/// subsystem respects — worker count and completion order never leak into
/// aggregated output.
struct Job {
  std::size_t index = 0;
  std::string label;  ///< human tag for progress and failure lines
  core::SimulationConfig config;
};

/// Structured record of a job that kept throwing after every allowed
/// attempt. Sibling jobs are unaffected: the batch carries these records
/// instead of aborting the whole sweep.
struct JobFailure {
  std::size_t index = 0;
  std::string label;
  std::size_t attempts = 0;  ///< total tries, including the first
  std::string error;         ///< what() of the last exception
};

}  // namespace sensrep::runner
