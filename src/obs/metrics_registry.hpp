#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sensrep::obs {

/// Unlabeled monotone counters. One enum value = one Prometheus series
/// `sensrep_<name>_total` / one Influx field. Keep the catalog in
/// docs/OBSERVABILITY.md in sync when adding entries.
enum class Counter : std::uint16_t {
  // wsn / repair pipeline
  kSensorFailures,    // SensorField::fail_slot
  kSensorRepairs,     // SensorField::replace_slot (failure record sealed)
  kReportsArrived,    // CoordinationAlgorithm::record_report_arrival (fresh)
  kReportsDeduped,    // record_report_arrival (duplicate suppressed)
  kDispatches,        // CoordinationAlgorithm::dispatch_to
  kRedispatches,      // task recovery re-dispatch after robot loss
  // robot fault tolerance
  kRobotFailures,     // on_robot_failed
  kRobotRepairs,      // on_robot_repaired
  kLeaseExpiries,     // supervision sweep presumed-dead verdicts
  kTasksLost,         // in-flight tasks lost to a robot crash
  kFailovers,         // manager failover completions
  kElections,         // manager elections started
  kHandbacks,         // repaired manager takes its role back
  kOwnershipTransfers,// task table ownership transfers
  kAdoptions,         // fixed-distributed orphan adoptions
  // net::Medium (per-transmission; category-labeled families are separate)
  kNetLossDrops,      // Bernoulli per-receiver losses
  kNetChaosDrops,     // Gilbert-Elliott burst / partition drops
  kNetChaosDuplicates,// chaos duplicated deliveries
  kNetChaosJams,      // jam-window suppressions
  kNetCollisions,     // listener busy at delivery
  // sim kernel
  kEventsScheduled,   // EventQueue::schedule
  kEventsExecuted,    // EventQueue::pop delivering a live event
  kEventsCancelled,   // EventQueue::cancel
  // service plane
  kServiceCommands,       // daemon protocol commands accepted
  kServiceCommandErrors,  // daemon protocol parse/apply errors
  kTelemetrySamples,      // TelemetryExporter ticks
  kJsonlDropped,          // JsonlSink lines dropped (backpressure/close)
  // oracle / flight recorder
  kInvariantViolations,   // chaos::InvariantChecker::record
  kFlightRecDumps,        // flight recorder dumps written
  kCount,
};

/// Last-write-wins gauges (not sharded; plain relaxed store).
enum class Gauge : std::uint16_t {
  kAliveSensors,      // set at telemetry tick
  kLiveRobots,        // set at telemetry tick
  kOpenFailures,      // set at telemetry tick
  kPendingEvents,     // set at telemetry tick (EventQueue::size)
  kEventPoolSlots,    // set when the pooled queue grows a chunk
  kSimClock,          // virtual-clock seconds, set at telemetry tick
  kCount,
};

/// Fixed-bucket histograms (cumulative `le` buckets, Prometheus-style).
enum class Hist : std::uint16_t {
  kRepairLatency,     // seconds from sensor failure to replacement
  kDispatchDistance,  // meters from dispatched robot to failure site
  kCount,
};

inline constexpr std::size_t kHistBuckets = 8;  // finite edges; +Inf is implicit

/// Mirror of metrics::MessageCategory label names for the kNetTx/kNetRx
/// families. src/obs cannot include metrics/counters.hpp (sensrep_metrics
/// links *against* sensrep_obs), so the table is duplicated here;
/// net/medium.cpp static_asserts the count and metrics_plane_test asserts
/// each name against metrics::to_string.
inline constexpr std::size_t kNetCategories = 10;
inline constexpr const char* kCategoryLabel[kNetCategories] = {
    "initialization", "beacon",           "guardian_confirm", "failure_report",
    "repair_request", "location_update",  "replacement",      "data",
    "fault_tolerance", "other",
};

[[nodiscard]] std::string_view to_string(Counter c) noexcept;
[[nodiscard]] std::string_view to_string(Gauge g) noexcept;
[[nodiscard]] std::string_view to_string(Hist h) noexcept;
[[nodiscard]] std::string_view counter_help(Counter c) noexcept;
/// Finite bucket upper bounds for a histogram (kHistBuckets entries).
[[nodiscard]] const std::array<double, kHistBuckets>& hist_edges(Hist h) noexcept;

/// Consistent point-in-time-ish view of the registry (per-cell relaxed
/// loads; each cell is monotone, so repeated snapshots are monotone per
/// series even while writers run).
struct MetricsSnapshot {
  std::array<std::uint64_t, static_cast<std::size_t>(Counter::kCount)> counters{};
  std::array<std::uint64_t, kNetCategories> net_tx{};
  std::array<std::uint64_t, kNetCategories> net_rx{};
  std::array<double, static_cast<std::size_t>(Gauge::kCount)> gauges{};
  struct HistSnapshot {
    std::array<std::uint64_t, kHistBuckets> buckets{};  // non-cumulative
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  std::array<HistSnapshot, static_cast<std::size_t>(Hist::kCount)> hists{};
};

/// Process-wide lock-free metrics registry.
///
/// Strictly opt-in like obs::Profiler: while disabled (the default) every
/// instrumentation site costs one relaxed atomic load and a predictable
/// branch. When enabled, increments go to per-thread-sharded cache-line-
/// aligned rows of relaxed atomic cells — concurrent simulations on runner
/// worker threads never contend on a cell — and scrapes aggregate the
/// shards. The registry only observes; it never touches the virtual clock,
/// RNG streams, or event ordering, so enabling it cannot change results.
class Metrics {
 public:
  static constexpr std::size_t kShards = 8;  // power of two

  static void enable(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] static bool enabled() noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  static void inc(Counter c, std::uint64_t n = 1) noexcept {
    if (!enabled()) return;
    cell(counter_cell(c)).fetch_add(n, std::memory_order_relaxed);
  }
  static void net_tx(std::size_t category, std::uint64_t n = 1) noexcept {
    if (!enabled()) return;
    cell(net_tx_cell(category)).fetch_add(n, std::memory_order_relaxed);
  }
  static void net_rx(std::size_t category, std::uint64_t n = 1) noexcept {
    if (!enabled()) return;
    cell(net_rx_cell(category)).fetch_add(n, std::memory_order_relaxed);
  }
  static void set_gauge(Gauge g, double v) noexcept {
    if (!enabled()) return;
    gauges_[static_cast<std::size_t>(g)].store(v, std::memory_order_relaxed);
  }
  static void observe(Hist h, double v) noexcept;

  /// Zeroes every cell (tests, start of a measured run). Not safe
  /// concurrently with writers that must sum exactly.
  static void reset() noexcept;

  [[nodiscard]] static MetricsSnapshot snapshot();

  /// Sharded cell total for one counter — test hook.
  [[nodiscard]] static std::uint64_t counter_value(Counter c) noexcept;

 private:
  // Flat cell index space: [counters][net_tx][net_rx][hist buckets+count+sum].
  static constexpr std::size_t kCounterBase = 0;
  static constexpr std::size_t kNetTxBase =
      kCounterBase + static_cast<std::size_t>(Counter::kCount);
  static constexpr std::size_t kNetRxBase = kNetTxBase + kNetCategories;
  static constexpr std::size_t kHistBase = kNetRxBase + kNetCategories;
  static constexpr std::size_t kHistStride = kHistBuckets + 2;  // + count + sum
  static constexpr std::size_t kCells =
      kHistBase + kHistStride * static_cast<std::size_t>(Hist::kCount);

  static constexpr std::size_t counter_cell(Counter c) noexcept {
    return kCounterBase + static_cast<std::size_t>(c);
  }
  static constexpr std::size_t net_tx_cell(std::size_t category) noexcept {
    return kNetTxBase + category;
  }
  static constexpr std::size_t net_rx_cell(std::size_t category) noexcept {
    return kNetRxBase + category;
  }
  static constexpr std::size_t hist_cell(Hist h, std::size_t off) noexcept {
    return kHistBase + kHistStride * static_cast<std::size_t>(h) + off;
  }

  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kCells> v{};
  };

  /// Per-thread shard row; threads round-robin over rows so runner workers
  /// land on distinct cache lines.
  [[nodiscard]] static std::atomic<std::uint64_t>& cell(std::size_t idx) noexcept {
    return shards_[shard_index()].v[idx];
  }
  [[nodiscard]] static std::size_t shard_index() noexcept {
    thread_local const std::size_t idx =
        next_shard_.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
    return idx;
  }
  [[nodiscard]] static std::uint64_t sum_cell(std::size_t idx) noexcept {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v[idx].load(std::memory_order_relaxed);
    return total;
  }

  // Histogram sums are stored in fixed-point micro-units so they fit the
  // same u64 fetch_add cells as everything else.
  static constexpr double kSumScale = 1e6;

  static std::atomic<bool> enabled_;
  static std::atomic<std::size_t> next_shard_;
  static std::array<Shard, kShards> shards_;
  static std::array<std::atomic<double>, static_cast<std::size_t>(Gauge::kCount)> gauges_;
};

}  // namespace sensrep::obs
