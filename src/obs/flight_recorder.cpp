#include "obs/flight_recorder.hpp"

#include <cstdio>
#include <fstream>

#include "obs/metrics_registry.hpp"

namespace sensrep::obs {

std::atomic<bool> FlightRecorder::enabled_{false};
std::atomic<std::uint64_t> FlightRecorder::head_{0};
std::vector<FlightRecord> FlightRecorder::ring_;
std::size_t FlightRecorder::mask_ = 0;

std::string_view to_string(FlightKind k) noexcept {
  switch (k) {
    case FlightKind::kSensorFailure: return "sensor_failure";
    case FlightKind::kSensorRepair: return "sensor_repair";
    case FlightKind::kReportArrival: return "report_arrival";
    case FlightKind::kDispatch: return "dispatch";
    case FlightKind::kRedispatch: return "redispatch";
    case FlightKind::kRobotCrash: return "robot_crash";
    case FlightKind::kRobotRepair: return "robot_repair";
    case FlightKind::kLeaseExpiry: return "lease_expiry";
    case FlightKind::kFailover: return "failover";
    case FlightKind::kElection: return "election";
    case FlightKind::kHandback: return "handback";
    case FlightKind::kAdoption: return "adoption";
    case FlightKind::kCommand: return "command";
    case FlightKind::kViolation: return "violation";
    case FlightKind::kCount: break;
  }
  return "?";
}

void FlightRecorder::enable(std::size_t capacity) {
  std::size_t cap = 16;
  while (cap < capacity) cap <<= 1;
  if (ring_.size() != cap) {
    ring_.assign(cap, FlightRecord{});
    mask_ = cap - 1;
    head_.store(0, std::memory_order_relaxed);
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void FlightRecorder::disable() noexcept {
  enabled_.store(false, std::memory_order_relaxed);
}

void FlightRecorder::reset() noexcept {
  head_.store(0, std::memory_order_relaxed);
  for (FlightRecord& r : ring_) r = FlightRecord{};
}

std::vector<FlightRecord> FlightRecorder::dump() {
  std::vector<FlightRecord> out;
  if (ring_.empty()) return out;
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  const std::uint64_t n = head < ring_.size() ? head : ring_.size();
  out.reserve(n);
  for (std::uint64_t i = head - n; i < head; ++i) {
    out.push_back(ring_[i & mask_]);
  }
  return out;
}

std::string FlightRecorder::dump_jsonl() {
  std::string out;
  if (ring_.empty()) return out;
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  const std::uint64_t n = head < ring_.size() ? head : ring_.size();
  char line[192];
  for (std::uint64_t i = head - n; i < head; ++i) {
    const FlightRecord& r = ring_[i & mask_];
    const std::string_view kind =
        r.kind < static_cast<std::uint16_t>(FlightKind::kCount)
            ? to_string(static_cast<FlightKind>(r.kind))
            : "?";
    std::snprintf(line, sizeof line,
                  "{\"seq\":%llu,\"t\":%.17g,\"kind\":\"%.*s\",\"a\":%u,\"b\":%u}\n",
                  static_cast<unsigned long long>(i), r.t,
                  static_cast<int>(kind.size()), kind.data(), r.a, r.b);
    out += line;
  }
  return out;
}

bool FlightRecorder::dump_to_file(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << dump_jsonl();
  out.flush();
  if (!out) return false;
  Metrics::inc(Counter::kFlightRecDumps);
  return true;
}

}  // namespace sensrep::obs
