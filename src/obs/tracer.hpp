#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace sensrep::obs {

/// Stages of one sensor failure's repair lifecycle, in causal order. Each
/// stage is a span on the failure's trace; `kRepair` is the root span
/// covering the whole failure -> replacement interval.
enum class Stage : std::uint8_t {
  kDetect,    // failure -> guardian declared it dead
  kReport,    // detection -> report delivered to a manager/robot
  kDispatch,  // report delivery -> a robot accepted the task
  kQueue,     // accepted -> the robot starts driving for this task
  kTravel,    // driving (incl. depot detours) -> replacement powered on
  kOrphan,    // task stranded (robot died / no spare) -> redispatch/repair
  kRepair,    // root: failure -> replacement powered on
  kCount,
};

[[nodiscard]] std::string_view to_string(Stage s) noexcept;

/// One span instance. A trace (= one sensor failure, keyed by its non-zero
/// failure id) usually holds one span per stage; retransmissions, duplicate
/// dispatches and fault recovery can add more.
struct Span {
  std::uint64_t trace_id = 0;          // failure id (FailureLog index + 1)
  Stage stage = Stage::kRepair;
  std::uint32_t node = 0;              // sensor slot concerned
  std::optional<std::uint32_t> actor;  // robot/guardian involved, if any
  sim::SimTime start = 0.0;
  sim::SimTime end = sim::kNever;      // kNever while the span is open
  std::optional<double> value;         // stage scalar (report hops, travel m)

  [[nodiscard]] bool closed() const noexcept { return sim::is_valid_time(end); }
  [[nodiscard]] double duration() const noexcept { return closed() ? end - start : 0.0; }
};

/// Span-based repair-lifecycle tracer (simulation time, opt-in).
///
/// The instrumented components (SensorField, CoordinationAlgorithm,
/// RobotNode) call open()/close() as a failure progresses through its
/// stages; a null tracer pointer disables everything at one branch per site.
///
/// Invariants the bookkeeping enforces:
///  - at most one *open* instance per (trace, stage): re-opening while open
///    is ignored and counted in duplicate_opens();
///  - close() closes the most recent open instance exactly once; a close()
///    with no open instance is counted in stray_closes() and does nothing;
///    close_if_open() is the variant for call sites where "maybe already
///    closed" is semantically expected (duplicate dispatches, fault paths)
///    and is never counted as stray;
///  - spans never reopen: a closed instance is immutable, so every span is
///    closed at most once by construction. Spans still open when the run
///    ends export with "open":true — the flagged orphans.
class Tracer {
 public:
  void open(std::uint64_t trace_id, Stage stage, sim::SimTime t, std::uint32_t node,
            std::optional<std::uint32_t> actor = std::nullopt);

  void close(std::uint64_t trace_id, Stage stage, sim::SimTime t,
             std::optional<double> value = std::nullopt,
             std::optional<std::uint32_t> actor = std::nullopt);

  /// close() that tolerates an already-closed (or never-opened) span without
  /// counting it as a stray.
  void close_if_open(std::uint64_t trace_id, Stage stage, sim::SimTime t,
                     std::optional<double> value = std::nullopt,
                     std::optional<std::uint32_t> actor = std::nullopt);

  [[nodiscard]] bool is_open(std::uint64_t trace_id, Stage stage) const;

  // --- inspection ----------------------------------------------------------

  [[nodiscard]] const std::vector<Span>& spans() const noexcept { return spans_; }
  [[nodiscard]] std::vector<Span> spans_of(std::uint64_t trace_id) const;

  [[nodiscard]] std::size_t opened() const noexcept { return spans_.size(); }
  [[nodiscard]] std::size_t closed_count() const noexcept { return closed_; }
  [[nodiscard]] std::size_t open_count() const noexcept { return spans_.size() - closed_; }
  [[nodiscard]] std::size_t duplicate_opens() const noexcept { return duplicate_opens_; }
  [[nodiscard]] std::size_t stray_closes() const noexcept { return stray_closes_; }

  /// Closed spans dropped by compact() since construction. opened() /
  /// closed_count() always describe the *retained* spans, so the cumulative
  /// totals are opened() + retired() and closed_count() + retired().
  [[nodiscard]] std::size_t retired() const noexcept { return retired_; }

  /// Closed-span durations of one stage, in completion order (feed these
  /// into metrics::Summary for percentiles).
  [[nodiscard]] std::vector<double> stage_durations(Stage stage) const;

  /// True when the trace carries the full failure -> replacement chain: a
  /// closed instance of every core stage (detect, report, dispatch, queue,
  /// travel) plus the closed kRepair root.
  [[nodiscard]] bool has_complete_chain(std::uint64_t trace_id) const;

  // --- export --------------------------------------------------------------

  /// One JSON object per span, one line each (open spans flagged).
  void write_jsonl(std::ostream& out) const;
  [[nodiscard]] bool save_jsonl(const std::string& path) const;

  /// Chrome trace_event JSON (chrome://tracing / Perfetto): closed spans as
  /// complete "X" events, still-open spans as unmatched "B" events, one
  /// virtual thread per trace id, timestamps in microseconds of sim time.
  void write_chrome_trace(std::ostream& out) const;
  [[nodiscard]] bool save_chrome_trace(const std::string& path) const;

  /// Long-running service mode: retires closed spans that ended before `t`,
  /// bounding the tracer's memory to the retention window while every open
  /// span (whatever its age) survives. After compaction stage_durations()
  /// and the exports cover only the retained window — which is exactly what
  /// a live-telemetry percentile wants. Invariants are unaffected: open-span
  /// bookkeeping is rebuilt, and retired() keeps the cumulative count.
  void compact(sim::SimTime before);

  void clear();

 private:
  [[nodiscard]] static std::uint64_t key(std::uint64_t trace_id, Stage stage) noexcept {
    return trace_id * static_cast<std::uint64_t>(Stage::kCount) +
           static_cast<std::uint64_t>(stage);
  }
  /// Shared close path; returns false when no instance was open.
  bool close_impl(std::uint64_t trace_id, Stage stage, sim::SimTime t,
                  const std::optional<double>& value,
                  const std::optional<std::uint32_t>& actor);

  std::vector<Span> spans_;
  std::unordered_map<std::uint64_t, std::size_t> open_;  // key -> index in spans_
  std::size_t closed_ = 0;
  std::size_t duplicate_opens_ = 0;
  std::size_t stray_closes_ = 0;
  std::size_t retired_ = 0;
};

}  // namespace sensrep::obs
