#include "obs/exporters.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace sensrep::obs {

namespace {

void appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

/// %g keeps integral bucket edges terse ("30", not "30.000000") so the
/// le label is stable across render sites.
std::string edge_label(double edge) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", edge);
  return buf;
}

}  // namespace

std::string prometheus_escape(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string prometheus_text(const MetricsSnapshot& s) {
  std::string out;
  out.reserve(4096);
  for (std::size_t i = 0; i < s.counters.size(); ++i) {
    const auto c = static_cast<Counter>(i);
    appendf(out, "# HELP sensrep_%s_total %s\n",
            std::string(to_string(c)).c_str(),
            std::string(counter_help(c)).c_str());
    appendf(out, "# TYPE sensrep_%s_total counter\n",
            std::string(to_string(c)).c_str());
    appendf(out, "sensrep_%s_total %llu\n", std::string(to_string(c)).c_str(),
            static_cast<unsigned long long>(s.counters[i]));
  }
  for (int dir = 0; dir < 2; ++dir) {
    const char* fam = dir == 0 ? "net_tx" : "net_rx";
    appendf(out, "# HELP sensrep_%s_total Radio %s by message category\n", fam,
            dir == 0 ? "transmissions" : "deliveries");
    appendf(out, "# TYPE sensrep_%s_total counter\n", fam);
    for (std::size_t i = 0; i < kNetCategories; ++i) {
      appendf(out, "sensrep_%s_total{category=\"%s\"} %llu\n", fam,
              prometheus_escape(kCategoryLabel[i]).c_str(),
              static_cast<unsigned long long>(dir == 0 ? s.net_tx[i]
                                                       : s.net_rx[i]));
    }
  }
  for (std::size_t i = 0; i < s.gauges.size(); ++i) {
    const auto g = static_cast<Gauge>(i);
    appendf(out, "# TYPE sensrep_%s gauge\n", std::string(to_string(g)).c_str());
    appendf(out, "sensrep_%s %.17g\n", std::string(to_string(g)).c_str(),
            s.gauges[i]);
  }
  for (std::size_t i = 0; i < s.hists.size(); ++i) {
    const auto h = static_cast<Hist>(i);
    const std::string name = std::string(to_string(h));
    const auto& edges = hist_edges(h);
    const auto& hs = s.hists[i];
    appendf(out, "# TYPE sensrep_%s histogram\n", name.c_str());
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      cumulative += hs.buckets[b];
      appendf(out, "sensrep_%s_bucket{le=\"%s\"} %llu\n", name.c_str(),
              edge_label(edges[b]).c_str(),
              static_cast<unsigned long long>(cumulative));
    }
    appendf(out, "sensrep_%s_bucket{le=\"+Inf\"} %llu\n", name.c_str(),
            static_cast<unsigned long long>(hs.count));
    appendf(out, "sensrep_%s_sum %.17g\n", name.c_str(), hs.sum);
    appendf(out, "sensrep_%s_count %llu\n", name.c_str(),
            static_cast<unsigned long long>(hs.count));
  }
  return out;
}

std::string influx_lines(const MetricsSnapshot& s, double sim_time) {
  const auto ts = static_cast<long long>(sim_time * 1e9 + 0.5);
  std::string out;
  out.reserve(4096);
  for (std::size_t i = 0; i < s.counters.size(); ++i) {
    appendf(out, "sensrep_counter,name=%s value=%llui %lld\n",
            std::string(to_string(static_cast<Counter>(i))).c_str(),
            static_cast<unsigned long long>(s.counters[i]), ts);
  }
  for (std::size_t i = 0; i < kNetCategories; ++i) {
    appendf(out, "sensrep_net_tx,category=%s value=%llui %lld\n",
            kCategoryLabel[i], static_cast<unsigned long long>(s.net_tx[i]), ts);
    appendf(out, "sensrep_net_rx,category=%s value=%llui %lld\n",
            kCategoryLabel[i], static_cast<unsigned long long>(s.net_rx[i]), ts);
  }
  for (std::size_t i = 0; i < s.gauges.size(); ++i) {
    appendf(out, "sensrep_gauge,name=%s value=%.17g %lld\n",
            std::string(to_string(static_cast<Gauge>(i))).c_str(), s.gauges[i],
            ts);
  }
  for (std::size_t i = 0; i < s.hists.size(); ++i) {
    const auto h = static_cast<Hist>(i);
    const std::string name = std::string(to_string(h));
    const auto& edges = hist_edges(h);
    const auto& hs = s.hists[i];
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      cumulative += hs.buckets[b];
      appendf(out, "sensrep_hist_bucket,name=%s,le=%s value=%llui %lld\n",
              name.c_str(), edge_label(edges[b]).c_str(),
              static_cast<unsigned long long>(cumulative), ts);
    }
    appendf(out, "sensrep_hist_count,name=%s value=%llui %lld\n", name.c_str(),
            static_cast<unsigned long long>(hs.count), ts);
    appendf(out, "sensrep_hist_sum,name=%s value=%.17g %lld\n", name.c_str(),
            hs.sum, ts);
  }
  return out;
}

std::string json_sample(const MetricsSnapshot& s, double sim_time) {
  std::string out;
  out.reserve(2048);
  appendf(out, "{\"t\":%.17g,\"counters\":{", sim_time);
  for (std::size_t i = 0; i < s.counters.size(); ++i) {
    appendf(out, "%s\"%s\":%llu", i ? "," : "",
            std::string(to_string(static_cast<Counter>(i))).c_str(),
            static_cast<unsigned long long>(s.counters[i]));
  }
  out += "},\"net_tx\":{";
  for (std::size_t i = 0; i < kNetCategories; ++i) {
    appendf(out, "%s\"%s\":%llu", i ? "," : "", kCategoryLabel[i],
            static_cast<unsigned long long>(s.net_tx[i]));
  }
  out += "},\"net_rx\":{";
  for (std::size_t i = 0; i < kNetCategories; ++i) {
    appendf(out, "%s\"%s\":%llu", i ? "," : "", kCategoryLabel[i],
            static_cast<unsigned long long>(s.net_rx[i]));
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < s.gauges.size(); ++i) {
    appendf(out, "%s\"%s\":%.17g", i ? "," : "",
            std::string(to_string(static_cast<Gauge>(i))).c_str(), s.gauges[i]);
  }
  out += "}}";
  return out;
}

// ---------------------------------------------------------------------------
// InfluxExporter

InfluxExporter::InfluxExporter(const std::string& target) {
  constexpr std::string_view kTcp = "tcp://";
  if (target.rfind(kTcp, 0) == 0) {
    const std::string hostport = target.substr(kTcp.size());
    const auto colon = hostport.rfind(':');
    if (colon == std::string::npos) return;
    const std::string host = hostport.substr(0, colon);
    const int port = std::atoi(hostport.c_str() + colon + 1);
    if (port <= 0 || port > 65535) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return;
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
    ok_ = true;
    return;
  }
  file_.open(target, std::ios::trunc);
  ok_ = static_cast<bool>(file_);
}

InfluxExporter::~InfluxExporter() { close(); }

void InfluxExporter::on_tick(double sim_time) {
  if (!ok_) return;
  const std::string lines = influx_lines(Metrics::snapshot(), sim_time);
  if (fd_ >= 0) {
    std::size_t off = 0;
    while (off < lines.size()) {
      const ssize_t n = ::send(fd_, lines.data() + off, lines.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) {  // peer gone: stop exporting, keep simulating
        ok_ = false;
        return;
      }
      off += static_cast<std::size_t>(n);
    }
  } else {
    file_ << lines;
  }
}

void InfluxExporter::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (file_.is_open()) {
    file_.flush();
    file_.close();
  }
  ok_ = false;
}

// ---------------------------------------------------------------------------
// WebhookExporter

WebhookExporter::WebhookExporter(LineSink sink, std::size_t batch_ticks,
                                 std::string url)
    : sink_(std::move(sink)),
      batch_ticks_(batch_ticks == 0 ? 1 : batch_ticks),
      url_(std::move(url)) {}

void WebhookExporter::on_tick(double sim_time) {
  if (!sink_) return;
  pending_.push_back(json_sample(Metrics::snapshot(), sim_time));
  if (pending_.size() >= batch_ticks_) flush();
}

void WebhookExporter::close() {
  flush();
  sink_ = nullptr;
}

void WebhookExporter::flush() {
  if (pending_.empty() || !sink_) return;
  std::string body = "{\"url\":\"" + url_ + "\",\"batch\":[";
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    if (i) body += ',';
    body += pending_[i];
  }
  body += "]}";
  sink_(body);
  pending_.clear();
}

// ---------------------------------------------------------------------------
// MetricsHttpServer

MetricsHttpServer::~MetricsHttpServer() { stop(); }

bool MetricsHttpServer::start(std::uint16_t port, std::string* err) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (err) *err = "socket() failed";
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // scrape-only: loopback
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listen_fd_, 4) != 0) {
    if (err) *err = "bind/listen on 127.0.0.1 failed";
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { loop(); });
  return true;
}

void MetricsHttpServer::stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void MetricsHttpServer::loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready <= 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    timeval tv{1, 0};
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    char req[1024];
    const ssize_t n = ::recv(client, req, sizeof req - 1, 0);
    std::string response;
    if (n > 0) {
      req[n] = '\0';
      const bool metrics = std::strncmp(req, "GET /metrics", 12) == 0;
      if (metrics) {
        const std::string body = prometheus_text(Metrics::snapshot());
        char hdr[160];
        std::snprintf(hdr, sizeof hdr,
                      "HTTP/1.1 200 OK\r\n"
                      "Content-Type: text/plain; version=0.0.4\r\n"
                      "Content-Length: %zu\r\n"
                      "Connection: close\r\n\r\n",
                      body.size());
        response = hdr;
        response += body;
        scrapes_.fetch_add(1, std::memory_order_relaxed);
      } else {
        response =
            "HTTP/1.1 404 Not Found\r\n"
            "Content-Length: 0\r\nConnection: close\r\n\r\n";
      }
    }
    if (!response.empty()) {
      std::size_t off = 0;
      while (off < response.size()) {
        const ssize_t w = ::send(client, response.data() + off,
                                 response.size() - off, MSG_NOSIGNAL);
        if (w <= 0) break;
        off += static_cast<std::size_t>(w);
      }
    }
    ::close(client);
  }
}

}  // namespace sensrep::obs
