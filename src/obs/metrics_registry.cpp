#include "obs/metrics_registry.hpp"

namespace sensrep::obs {

std::atomic<bool> Metrics::enabled_{false};
std::atomic<std::size_t> Metrics::next_shard_{0};
std::array<Metrics::Shard, Metrics::kShards> Metrics::shards_{};
std::array<std::atomic<double>, static_cast<std::size_t>(Gauge::kCount)>
    Metrics::gauges_{};

std::string_view to_string(Counter c) noexcept {
  switch (c) {
    case Counter::kSensorFailures: return "sensor_failures";
    case Counter::kSensorRepairs: return "sensor_repairs";
    case Counter::kReportsArrived: return "reports_arrived";
    case Counter::kReportsDeduped: return "reports_deduped";
    case Counter::kDispatches: return "dispatches";
    case Counter::kRedispatches: return "redispatches";
    case Counter::kRobotFailures: return "robot_failures";
    case Counter::kRobotRepairs: return "robot_repairs";
    case Counter::kLeaseExpiries: return "lease_expiries";
    case Counter::kTasksLost: return "tasks_lost";
    case Counter::kFailovers: return "failovers";
    case Counter::kElections: return "elections";
    case Counter::kHandbacks: return "handbacks";
    case Counter::kOwnershipTransfers: return "ownership_transfers";
    case Counter::kAdoptions: return "adoptions";
    case Counter::kNetLossDrops: return "net_loss_drops";
    case Counter::kNetChaosDrops: return "net_chaos_drops";
    case Counter::kNetChaosDuplicates: return "net_chaos_duplicates";
    case Counter::kNetChaosJams: return "net_chaos_jams";
    case Counter::kNetCollisions: return "net_collisions";
    case Counter::kEventsScheduled: return "events_scheduled";
    case Counter::kEventsExecuted: return "events_executed";
    case Counter::kEventsCancelled: return "events_cancelled";
    case Counter::kServiceCommands: return "service_commands";
    case Counter::kServiceCommandErrors: return "service_command_errors";
    case Counter::kTelemetrySamples: return "telemetry_samples";
    case Counter::kJsonlDropped: return "jsonl_dropped";
    case Counter::kInvariantViolations: return "invariant_violations";
    case Counter::kFlightRecDumps: return "flightrec_dumps";
    case Counter::kCount: break;
  }
  return "?";
}

std::string_view counter_help(Counter c) noexcept {
  switch (c) {
    case Counter::kSensorFailures: return "Sensor slots that failed";
    case Counter::kSensorRepairs: return "Sensor slots replaced by a robot";
    case Counter::kReportsArrived: return "Fresh failure reports at a manager";
    case Counter::kReportsDeduped: return "Duplicate failure reports suppressed";
    case Counter::kDispatches: return "Robot dispatch decisions";
    case Counter::kRedispatches: return "Tasks re-dispatched after robot loss";
    case Counter::kRobotFailures: return "Robot crash injections";
    case Counter::kRobotRepairs: return "Robot repair completions";
    case Counter::kLeaseExpiries: return "Robots presumed dead by lease expiry";
    case Counter::kTasksLost: return "In-flight tasks lost to robot crashes";
    case Counter::kFailovers: return "Manager failover completions";
    case Counter::kElections: return "Manager elections started";
    case Counter::kHandbacks: return "Repaired managers taking their role back";
    case Counter::kOwnershipTransfers: return "Task-table ownership transfers";
    case Counter::kAdoptions: return "Orphan adoptions (fixed-distributed)";
    case Counter::kNetLossDrops: return "Per-receiver Bernoulli link losses";
    case Counter::kNetChaosDrops: return "Burst/partition chaos drops";
    case Counter::kNetChaosDuplicates: return "Chaos duplicated deliveries";
    case Counter::kNetChaosJams: return "Jam-window suppressed transmissions";
    case Counter::kNetCollisions: return "Deliveries lost to busy listeners";
    case Counter::kEventsScheduled: return "Events pushed into the queue";
    case Counter::kEventsExecuted: return "Live events delivered by pop";
    case Counter::kEventsCancelled: return "Events cancelled before firing";
    case Counter::kServiceCommands: return "Daemon protocol commands accepted";
    case Counter::kServiceCommandErrors: return "Daemon protocol command errors";
    case Counter::kTelemetrySamples: return "Telemetry exporter ticks";
    case Counter::kJsonlDropped: return "JSONL sink lines dropped";
    case Counter::kInvariantViolations: return "Invariant oracle violations";
    case Counter::kFlightRecDumps: return "Flight recorder dumps written";
    case Counter::kCount: break;
  }
  return "?";
}

std::string_view to_string(Gauge g) noexcept {
  switch (g) {
    case Gauge::kAliveSensors: return "alive_sensors";
    case Gauge::kLiveRobots: return "live_robots";
    case Gauge::kOpenFailures: return "open_failures";
    case Gauge::kPendingEvents: return "pending_events";
    case Gauge::kEventPoolSlots: return "event_pool_slots";
    case Gauge::kSimClock: return "sim_clock_seconds";
    case Gauge::kCount: break;
  }
  return "?";
}

std::string_view to_string(Hist h) noexcept {
  switch (h) {
    case Hist::kRepairLatency: return "repair_latency_seconds";
    case Hist::kDispatchDistance: return "dispatch_distance_meters";
    case Hist::kCount: break;
  }
  return "?";
}

const std::array<double, kHistBuckets>& hist_edges(Hist h) noexcept {
  // Repair latency: the fig3-style replacement delay runs tens of seconds to
  // tens of minutes depending on field size and fleet; doubling edges.
  static const std::array<double, kHistBuckets> repair = {30,   60,   120,  240,
                                                          480,  960,  1920, 3840};
  // Dispatch distance: default fields are a few hundred meters across.
  static const std::array<double, kHistBuckets> dist = {25,  50,  100, 200,
                                                        400, 800, 1600, 3200};
  switch (h) {
    case Hist::kRepairLatency: return repair;
    case Hist::kDispatchDistance: return dist;
    case Hist::kCount: break;
  }
  return repair;
}

void Metrics::observe(Hist h, double v) noexcept {
  if (!enabled()) return;
  const auto& edges = hist_edges(h);
  std::size_t b = 0;
  while (b < kHistBuckets && v > edges[b]) ++b;
  // b == kHistBuckets means the implicit +Inf bucket: only count/sum move.
  if (b < kHistBuckets) {
    cell(hist_cell(h, b)).fetch_add(1, std::memory_order_relaxed);
  }
  cell(hist_cell(h, kHistBuckets)).fetch_add(1, std::memory_order_relaxed);
  const double scaled = v * kSumScale;
  const auto micros =
      scaled <= 0 ? 0 : static_cast<std::uint64_t>(scaled + 0.5);
  cell(hist_cell(h, kHistBuckets + 1)).fetch_add(micros, std::memory_order_relaxed);
}

void Metrics::reset() noexcept {
  for (Shard& s : shards_) {
    for (auto& c : s.v) c.store(0, std::memory_order_relaxed);
  }
  for (auto& g : gauges_) g.store(0.0, std::memory_order_relaxed);
}

std::uint64_t Metrics::counter_value(Counter c) noexcept {
  return sum_cell(counter_cell(c));
}

MetricsSnapshot Metrics::snapshot() {
  MetricsSnapshot out;
  for (std::size_t i = 0; i < out.counters.size(); ++i) {
    out.counters[i] = sum_cell(counter_cell(static_cast<Counter>(i)));
  }
  for (std::size_t i = 0; i < kNetCategories; ++i) {
    out.net_tx[i] = sum_cell(net_tx_cell(i));
    out.net_rx[i] = sum_cell(net_rx_cell(i));
  }
  for (std::size_t i = 0; i < out.gauges.size(); ++i) {
    out.gauges[i] = gauges_[i].load(std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < out.hists.size(); ++i) {
    const auto h = static_cast<Hist>(i);
    auto& hs = out.hists[i];
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      hs.buckets[b] = sum_cell(hist_cell(h, b));
    }
    hs.count = sum_cell(hist_cell(h, kHistBuckets));
    hs.sum = static_cast<double>(sum_cell(hist_cell(h, kHistBuckets + 1))) / kSumScale;
  }
  return out;
}

}  // namespace sensrep::obs
