#include "obs/profiler.hpp"

#include <cstdio>

namespace sensrep::obs {

std::atomic<bool> Profiler::enabled_{false};
std::array<Profiler::Cell, static_cast<std::size_t>(Probe::kCount)> Profiler::cells_{};

std::string_view to_string(Probe p) noexcept {
  switch (p) {
    case Probe::kEventPush: return "event_queue.push";
    case Probe::kEventPop: return "event_queue.pop";
    case Probe::kRouterNextHop: return "geo_router.next_hop";
    case Probe::kPlanarizer: return "planarizer";
    case Probe::kSupervise: return "supervision_sweep";
    case Probe::kClosestLiveRobot: return "closest_live_robot";
    case Probe::kCount: break;
  }
  return "?";
}

void Profiler::reset() noexcept {
  for (Cell& c : cells_) {
    c.count.store(0, std::memory_order_relaxed);
    c.ns.store(0, std::memory_order_relaxed);
  }
}

Profiler::Snapshot Profiler::snapshot(Probe p) noexcept {
  const Cell& c = cells_[static_cast<std::size_t>(p)];
  return {c.count.load(std::memory_order_relaxed), c.ns.load(std::memory_order_relaxed)};
}

std::string Profiler::report() {
  std::uint64_t total_ns = 0;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    total_ns += snapshot(static_cast<Probe>(i)).ns;
  }
  std::string out = "hot-path wall-clock profile (inclusive):\n";
  char line[160];
  std::snprintf(line, sizeof line, "  %-22s %12s %12s %10s %7s\n", "probe", "calls",
                "total_ms", "ns/call", "share");
  out += line;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const auto p = static_cast<Probe>(i);
    const Snapshot s = snapshot(p);
    if (s.count == 0) continue;
    const double ms = static_cast<double>(s.ns) / 1e6;
    const double per = static_cast<double>(s.ns) / static_cast<double>(s.count);
    const double share =
        total_ns == 0 ? 0.0
                      : 100.0 * static_cast<double>(s.ns) / static_cast<double>(total_ns);
    std::snprintf(line, sizeof line, "  %-22s %12llu %12.2f %10.0f %6.1f%%\n",
                  std::string(to_string(p)).c_str(),
                  static_cast<unsigned long long>(s.count), ms, per, share);
    out += line;
  }
  if (total_ns == 0) out += "  (no probe fired; was the profiler enabled?)\n";
  return out;
}

std::string Profiler::report_csv() {
  std::string out = "probe,calls,total_ns\n";
  char line[128];
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const auto p = static_cast<Probe>(i);
    const Snapshot s = snapshot(p);
    std::snprintf(line, sizeof line, "%s,%llu,%llu\n", std::string(to_string(p)).c_str(),
                  static_cast<unsigned long long>(s.count),
                  static_cast<unsigned long long>(s.ns));
    out += line;
  }
  return out;
}

}  // namespace sensrep::obs
