#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

namespace sensrep::obs {

/// Instrumented hot-path sites. Timings are inclusive: a probe that runs
/// inside another probe's scope (kPlanarizer fires inside kRouterNextHop)
/// contributes to both counters.
enum class Probe : std::uint8_t {
  kEventPush,         // sim::EventQueue::schedule
  kEventPop,          // sim::EventQueue::pop (heap maintenance, not callbacks)
  kRouterNextHop,     // routing::GeoRouter::forward (next-hop selection + tx)
  kPlanarizer,        // routing::planar_neighbors (Gabriel/RNG pruning)
  kSupervise,         // lease supervision sweep (per-algorithm override incl.)
  kClosestLiveRobot,  // CoordinationAlgorithm::closest_live_robot
  kCount,
};

[[nodiscard]] std::string_view to_string(Probe p) noexcept;

/// Process-wide wall-clock profiler for the simulation's hot paths.
///
/// Strictly opt-in: while disabled (the default) every probe site costs one
/// relaxed atomic load and a predictable branch — no clock reads, no stores.
/// When enabled, ScopedTimer accumulates steady-clock nanoseconds into
/// per-probe atomic cells, so concurrent simulations on runner worker
/// threads profile safely into the same registry.
///
/// The profiler only *observes* wall time; it never touches the virtual
/// clock, RNG streams, or event ordering, so enabling it cannot change any
/// simulation result.
class Profiler {
 public:
  struct Snapshot {
    std::uint64_t count = 0;  // times the probe scope ran
    std::uint64_t ns = 0;     // total wall nanoseconds inside the scope
  };

  static void enable(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] static bool enabled() noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  static void add(Probe p, std::uint64_t ns) noexcept {
    Cell& c = cells_[static_cast<std::size_t>(p)];
    c.count.fetch_add(1, std::memory_order_relaxed);
    c.ns.fetch_add(ns, std::memory_order_relaxed);
  }

  /// Zeroes every cell (start of a profiled run).
  static void reset() noexcept;

  [[nodiscard]] static Snapshot snapshot(Probe p) noexcept;

  /// Human-readable per-probe table: calls, total ms, ns/call, share of the
  /// summed probe time. Probes that never fired are omitted.
  [[nodiscard]] static std::string report();

  /// Machine-readable rows (`probe,calls,total_ns`, header included). Every
  /// probe is emitted — zeros too — so downstream regression tooling sees a
  /// stable row set across runs.
  [[nodiscard]] static std::string report_csv();

 private:
  struct Cell {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> ns{0};
  };

  static std::atomic<bool> enabled_;
  static std::array<Cell, static_cast<std::size_t>(Probe::kCount)> cells_;
};

/// RAII probe: times its enclosing scope into one Profiler cell. The
/// enabled() check is hoisted into the constructor so a disabled profiler
/// never reads the clock.
class ScopedTimer {
 public:
  explicit ScopedTimer(Probe p) noexcept : probe_(p), active_(Profiler::enabled()) {
    if (active_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (active_) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
      Profiler::add(probe_, static_cast<std::uint64_t>(ns < 0 ? 0 : ns));
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Probe probe_;
  bool active_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sensrep::obs
