#include "obs/tracer.hpp"

#include <algorithm>
#include <array>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace sensrep::obs {

namespace {

std::string fmt(const char* format, ...) {
  char buf[256];
  std::va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof buf, format, args);
  va_end(args);
  return buf;
}

}  // namespace

std::string_view to_string(Stage s) noexcept {
  switch (s) {
    case Stage::kDetect: return "detect";
    case Stage::kReport: return "report";
    case Stage::kDispatch: return "dispatch";
    case Stage::kQueue: return "queue";
    case Stage::kTravel: return "travel";
    case Stage::kOrphan: return "orphan";
    case Stage::kRepair: return "repair";
    case Stage::kCount: break;
  }
  return "?";
}

void Tracer::open(std::uint64_t trace_id, Stage stage, sim::SimTime t, std::uint32_t node,
                  std::optional<std::uint32_t> actor) {
  const auto k = key(trace_id, stage);
  if (open_.contains(k)) {
    ++duplicate_opens_;
    return;
  }
  open_.emplace(k, spans_.size());
  Span s;
  s.trace_id = trace_id;
  s.stage = stage;
  s.node = node;
  s.actor = actor;
  s.start = t;
  spans_.push_back(s);
}

bool Tracer::close_impl(std::uint64_t trace_id, Stage stage, sim::SimTime t,
                        const std::optional<double>& value,
                        const std::optional<std::uint32_t>& actor) {
  const auto it = open_.find(key(trace_id, stage));
  if (it == open_.end()) return false;
  Span& s = spans_[it->second];
  s.end = t;
  if (value) s.value = value;
  if (actor) s.actor = actor;
  open_.erase(it);
  ++closed_;
  return true;
}

void Tracer::close(std::uint64_t trace_id, Stage stage, sim::SimTime t,
                   std::optional<double> value, std::optional<std::uint32_t> actor) {
  if (!close_impl(trace_id, stage, t, value, actor)) ++stray_closes_;
}

void Tracer::close_if_open(std::uint64_t trace_id, Stage stage, sim::SimTime t,
                           std::optional<double> value,
                           std::optional<std::uint32_t> actor) {
  close_impl(trace_id, stage, t, value, actor);
}

bool Tracer::is_open(std::uint64_t trace_id, Stage stage) const {
  return open_.contains(key(trace_id, stage));
}

std::vector<Span> Tracer::spans_of(std::uint64_t trace_id) const {
  std::vector<Span> out;
  for (const Span& s : spans_) {
    if (s.trace_id == trace_id) out.push_back(s);
  }
  return out;
}

std::vector<double> Tracer::stage_durations(Stage stage) const {
  std::vector<double> out;
  for (const Span& s : spans_) {
    if (s.stage == stage && s.closed()) out.push_back(s.duration());
  }
  return out;
}

bool Tracer::has_complete_chain(std::uint64_t trace_id) const {
  constexpr std::array kRequired{Stage::kDetect, Stage::kReport, Stage::kDispatch,
                                 Stage::kQueue, Stage::kTravel, Stage::kRepair};
  std::array<bool, static_cast<std::size_t>(Stage::kCount)> seen{};
  for (const Span& s : spans_) {
    if (s.trace_id == trace_id && s.closed()) {
      seen[static_cast<std::size_t>(s.stage)] = true;
    }
  }
  return std::all_of(kRequired.begin(), kRequired.end(), [&seen](Stage st) {
    return seen[static_cast<std::size_t>(st)];
  });
}

void Tracer::write_jsonl(std::ostream& out) const {
  for (const Span& s : spans_) {
    out << fmt(R"({"trace":%llu,"stage":"%s","node":%u)",
               static_cast<unsigned long long>(s.trace_id),
               std::string(to_string(s.stage)).c_str(), s.node);
    if (s.actor) out << fmt(R"(,"actor":%u)", *s.actor);
    out << fmt(R"(,"start":%.3f)", s.start);
    if (s.closed()) {
      out << fmt(R"(,"end":%.3f,"dur":%.3f)", s.end, s.duration());
    } else {
      out << R"(,"open":true)";
    }
    if (s.value) out << fmt(R"(,"value":%.3f)", *s.value);
    out << "}\n";
  }
}

bool Tracer::save_jsonl(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  write_jsonl(f);
  return static_cast<bool>(f);
}

void Tracer::write_chrome_trace(std::ostream& out) const {
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const Span& s : spans_) {
    if (!first) out << ",";
    first = false;
    out << "\n";
    // Sim seconds -> trace microseconds; one virtual thread per trace id so
    // each failure renders as its own track in Perfetto.
    const double ts_us = s.start * 1e6;
    out << fmt(R"({"name":"%s","cat":"repair","pid":1,"tid":%llu,"ts":%.0f)",
               std::string(to_string(s.stage)).c_str(),
               static_cast<unsigned long long>(s.trace_id), ts_us);
    if (s.closed()) {
      out << fmt(R"(,"ph":"X","dur":%.0f)", s.duration() * 1e6);
    } else {
      out << R"(,"ph":"B")";
    }
    out << fmt(R"(,"args":{"trace":%llu,"node":%u)",
               static_cast<unsigned long long>(s.trace_id), s.node);
    if (s.actor) out << fmt(R"(,"actor":%u)", *s.actor);
    if (s.value) out << fmt(R"(,"value":%.3f)", *s.value);
    if (!s.closed()) out << R"(,"open":true)";
    out << "}}";
  }
  // displayTimeUnit keeps Perfetto's ruler in milliseconds of sim time.
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

bool Tracer::save_chrome_trace(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  write_chrome_trace(f);
  return static_cast<bool>(f);
}

void Tracer::compact(sim::SimTime before) {
  std::vector<Span> kept;
  kept.reserve(spans_.size());
  for (const Span& s : spans_) {
    if (!s.closed() || s.end >= before) kept.push_back(s);
  }
  const std::size_t removed = spans_.size() - kept.size();
  if (removed == 0) return;
  spans_ = std::move(kept);
  // Only closed spans were dropped, so every open_ entry survives — but its
  // index into spans_ shifted. Rebuild the map from the retained spans.
  open_.clear();
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    if (!spans_[i].closed()) open_.emplace(key(spans_[i].trace_id, spans_[i].stage), i);
  }
  closed_ -= removed;
  retired_ += removed;
}

void Tracer::clear() {
  spans_.clear();
  open_.clear();
  closed_ = 0;
  duplicate_opens_ = 0;
  stray_closes_ = 0;
}

}  // namespace sensrep::obs
