#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sensrep::obs {

/// Coordination-granularity event kinds recorded by the FlightRecorder.
/// These mirror the milestone counters in metrics_registry — the recorder
/// answers "what were the last N of those, in order, with ids and times".
enum class FlightKind : std::uint16_t {
  kSensorFailure,   // a = slot
  kSensorRepair,    // a = slot, b = robot
  kReportArrival,   // a = failed slot, b = manager
  kDispatch,        // a = failed slot, b = robot
  kRedispatch,      // a = failed slot, b = robot
  kRobotCrash,      // a = robot
  kRobotRepair,     // a = robot
  kLeaseExpiry,     // a = robot (presumed dead)
  kFailover,        // a = new manager
  kElection,        // a = initiating robot
  kHandback,        // a = returning manager
  kAdoption,        // a = orphan slot, b = adopting robot
  kCommand,         // a = protocol CommandKind ordinal
  kViolation,       // a = violation ordinal within the run
  kCount,
};

[[nodiscard]] std::string_view to_string(FlightKind k) noexcept;

/// Fixed binary flight record; 24 bytes, no pointers, trivially copyable.
struct FlightRecord {
  double t = 0.0;       // virtual-clock seconds
  std::uint32_t a = 0;  // primary id (kind-specific)
  std::uint32_t b = 0;  // secondary id (kind-specific)
  std::uint16_t kind = 0;
  std::uint16_t pad = 0;
};
static_assert(sizeof(FlightRecord) == 24, "keep flight records fixed-size");

/// Process-wide allocation-free ring buffer of the last N coordination
/// events ("the last 64k events before it went wrong").
///
/// The ring is allocated once by enable(); note() is then allocation-free:
/// one relaxed enabled load, one relaxed fetch_add on the head, one slot
/// write. Recording never touches the virtual clock or RNG streams, so an
/// enabled recorder cannot change simulation results.
///
/// dump() reads slots non-atomically and is meant for quiescent callers
/// (the violation handler, the daemon command loop, end of run) — it is not
/// safe concurrently with note() from *other* threads.
class FlightRecorder {
 public:
  /// Arms the recorder with a ring of `capacity` records (rounded up to a
  /// power of two, min 16). Re-enabling with the same capacity keeps the
  /// existing ring; a different capacity reallocates and clears.
  static void enable(std::size_t capacity = kDefaultCapacity);
  static void disable() noexcept;
  [[nodiscard]] static bool enabled() noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  static void note(double t, FlightKind kind, std::uint32_t a = 0,
                   std::uint32_t b = 0) noexcept {
    if (!enabled()) return;
    const std::uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed);
    FlightRecord& r = ring_[seq & mask_];
    r.t = t;
    r.a = a;
    r.b = b;
    r.kind = static_cast<std::uint16_t>(kind);
  }

  /// Total records ever noted (may exceed capacity; the ring keeps the tail).
  [[nodiscard]] static std::uint64_t recorded() noexcept {
    return head_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] static std::size_t capacity() noexcept { return ring_.size(); }

  /// Clears the ring without resizing (start of a measured run).
  static void reset() noexcept;

  /// Retained records, oldest first.
  [[nodiscard]] static std::vector<FlightRecord> dump();

  /// JSONL rendering of dump(): one object per line,
  /// {"seq":…,"t":…,"kind":"…","a":…,"b":…}. seq is the global note index,
  /// so consumers can see how many records the ring evicted.
  [[nodiscard]] static std::string dump_jsonl();

  /// Writes dump_jsonl() to `path` and bumps Counter::kFlightRecDumps.
  /// Returns false if the file could not be written.
  static bool dump_to_file(const std::string& path);

  static constexpr std::size_t kDefaultCapacity = 65536;

 private:
  static std::atomic<bool> enabled_;
  static std::atomic<std::uint64_t> head_;
  static std::vector<FlightRecord> ring_;
  static std::size_t mask_;
};

}  // namespace sensrep::obs
