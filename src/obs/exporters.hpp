#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics_registry.hpp"

namespace sensrep::obs {

/// Common face of the push-style metric sinks. on_tick() is driven on the
/// *virtual* clock (the service TelemetryExporter's period), so exported
/// timestamps are deterministic for a given seed and command stream.
class Exporter {
 public:
  virtual ~Exporter() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  virtual void on_tick(double sim_time) = 0;
  /// Flush and release the sink; further on_tick() calls are no-ops.
  virtual void close() = 0;
};

/// Escapes a Prometheus label value (backslash, double quote, newline).
[[nodiscard]] std::string prometheus_escape(std::string_view v);

/// Full Prometheus text-exposition rendering of a snapshot: HELP/TYPE
/// comments, `sensrep_*_total` counters, `category`-labeled tx/rx families,
/// gauges, and cumulative-`le` histogram series.
[[nodiscard]] std::string prometheus_text(const MetricsSnapshot& s);

/// InfluxDB line-protocol rendering: one `measurement,tag=… value=… ts`
/// line per series, timestamped with the virtual clock in nanoseconds.
[[nodiscard]] std::string influx_lines(const MetricsSnapshot& s, double sim_time);

/// Single JSON object (no newline) with the whole snapshot — the per-tick
/// sample the webhook exporter batches into POST bodies.
[[nodiscard]] std::string json_sample(const MetricsSnapshot& s, double sim_time);

/// InfluxDB line-protocol sink. `target` is a file path or
/// `tcp://host:port` (a socket writer, e.g. Telegraf's socket_listener).
class InfluxExporter final : public Exporter {
 public:
  explicit InfluxExporter(const std::string& target);
  ~InfluxExporter() override;

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] std::string_view name() const override { return "influx"; }
  void on_tick(double sim_time) override;
  void close() override;

 private:
  std::ofstream file_;
  int fd_ = -1;  // tcp:// mode
  bool ok_ = false;
};

/// Batching webhook writer: renders one JSON sample per tick, and every
/// `batch_ticks` ticks emits a complete POST body
/// `{"url":…,"batch":[sample,…]}` as a single line through `sink`. The
/// daemon wires `sink` to a service::JsonlSink so bodies share the bounded-
/// queue writer thread; a delivery sidecar can then replay the file as real
/// POSTs. (obs stays dependency-free by taking the sink as a callback.)
class WebhookExporter final : public Exporter {
 public:
  using LineSink = std::function<void(const std::string&)>;

  WebhookExporter(LineSink sink, std::size_t batch_ticks = 8,
                  std::string url = "");

  [[nodiscard]] std::string_view name() const override { return "webhook"; }
  void on_tick(double sim_time) override;
  void close() override;  // flushes a partial batch

 private:
  void flush();

  LineSink sink_;
  std::size_t batch_ticks_;
  std::string url_;
  std::vector<std::string> pending_;
};

/// Minimal loopback HTTP server exposing `GET /metrics` as Prometheus text.
/// One background thread, serial accept, Connection: close — sized for a
/// scraper, not for traffic. Pull-based: scrapes read the live registry, so
/// no virtual-clock ticks are needed.
class MetricsHttpServer {
 public:
  MetricsHttpServer() = default;
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the serving thread.
  /// Returns false with `*err` filled on failure.
  bool start(std::uint16_t port, std::string* err = nullptr);
  void stop();

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] bool running() const noexcept { return listen_fd_ >= 0; }
  [[nodiscard]] std::uint64_t scrapes() const noexcept {
    return scrapes_.load(std::memory_order_relaxed);
  }

 private:
  void loop();

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> scrapes_{0};
  std::thread thread_;
};

}  // namespace sensrep::obs
