#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "geometry/rect.hpp"
#include "metrics/counters.hpp"
#include "obs/tracer.hpp"
#include "metrics/failure_log.hpp"
#include "net/medium.hpp"
#include "routing/neighbor_table.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "spatial/uniform_grid.hpp"
#include "trace/event_log.hpp"
#include "wsn/failure_model.hpp"
#include "wsn/sensor_node.hpp"
#include "wsn/sensor_policy.hpp"

namespace sensrep::wsn {

/// Field-level knobs (paper §4.1 defaults).
struct FieldConfig {
  double sensor_tx_range = 63.0;   // sensors transmit 63 m to save power
  double beacon_period = 10.0;     // failure-detection beacon period, seconds
  int stale_beacon_count = 3;      // missed beacons before declaring failure
  LifetimeModel lifetime{};        // unit lifetime distribution (paper: Exp(T))
  bool spontaneous_failures = true;  // false: only explicit fail_slot() calls

  /// Validation mode: materialize every beacon as a real broadcast frame and
  /// drive neighbor-freshness from what each node actually *heard*, instead
  /// of the analytic shortcut of DESIGN.md substitution 3. Roughly 15x the
  /// event count at paper densities; the equivalence test
  /// (BeaconEquivalence.*) runs both modes and checks the observable
  /// behavior matches. Off in production runs.
  bool materialize_beacons = false;

  /// Extension: end-to-end reliable failure reports. The manager
  /// acknowledges each report (kReportAck, geo-routed back to the reporter);
  /// an unacknowledged report is retransmitted up to report_retries times,
  /// report_retry_timeout seconds apart. Recovers reports lost to packet
  /// loss or transient routing voids (E7 companion). Off by default — the
  /// paper assumes a clean channel.
  bool reliable_reports = false;
  int report_retries = 3;
  double report_retry_timeout = 5.0;

  /// Robot fault tolerance: seconds after which a sensor drops a robot it
  /// has not heard from (stale `myrobot` aging). 0 disables aging (the
  /// paper's robots never fail, so knowledge never expires). Simulation
  /// wires this to the robot-fault lease window automatically when the
  /// fault model is enabled.
  double robot_stale_window = 0.0;

  /// Robot fault tolerance: a guardian re-reports a failure it already
  /// reported every this-many seconds until the slot is actually repaired
  /// (0 disables). This is what re-routes repairs around dead robots: the
  /// re-report resolves the *current* manager/owner/closest robot. Wired to
  /// the lease window alongside robot_stale_window.
  double failure_rereport_period = 0.0;

  /// Spatial indexing (src/spatial): accelerate proximity queries — static
  /// adjacency construction, manager-range sensor scans, fixed-subarea
  /// membership, dynamic flood scoping, closest-live-robot, and batched
  /// robot-knowledge aging — with a UniformGrid2D instead of brute-force
  /// scans. The grid paths reproduce the brute-force comparators exactly
  /// (see docs/SPATIAL.md), so flipping this switch changes nothing but
  /// speed; CI diffs the golden CSVs both ways to keep it that way.
  bool spatial_index = true;

  /// Data-oriented hot loop: the simulator's pooled event-queue storage plus
  /// flat struct-of-arrays mirrors of the per-tick-scanned slot state (alive
  /// bits, last-beacon stamps) so beacon-staleness and liveness sweeps read
  /// contiguous vectors instead of chasing per-node pointers. Pure layout
  /// change — the legacy path is preserved behind --legacy-hot-path, and CI
  /// proves both produce byte-identical results (see tests/hot_path_test.cpp).
  bool data_oriented = true;

  /// Extension beyond the paper: every sensor watches *all* of its static
  /// neighbors, not just its confirmed guardees. The paper's guardian-guardee
  /// scheme assumes a guardian and its guardee rarely die together — true
  /// for independent wear-out, false for correlated (disaster) failures,
  /// where whole neighborhoods fall silent and nothing inside the hole is
  /// ever reported. Neighborhood watch trades duplicate reports (deduped at
  /// the robots) for detection that heals holes inward from the rim.
  bool neighborhood_watch = false;

  /// Spatial sharding (src/shard): partition the field into this many
  /// grid-aligned column tiles and run each tile's beacon ticks on its own
  /// worker between deterministic barriers. 1 = the stock single-shard
  /// schedule (the equivalence baseline); >1 requires data_oriented (the
  /// tile workers read the flat last-beacon mirror, never SensorNode
  /// pointers of foreign tiles). See docs/SHARDING.md.
  std::size_t shards = 1;
};

/// Hand-off point between the field and the sharded tick scheduler
/// (shard::ShardedDriver). When installed, per-sensor beacon tick series are
/// armed here instead of in the simulator's event queue; the driver fires
/// them tile-parallel between barriers and keeps executed/pending accounting
/// identical to the in-queue schedule.
class TickDriver {
 public:
  virtual ~TickDriver() = default;

  /// Takes over `slot`'s beacon series: first fire at absolute time `first`,
  /// then every `period` seconds until disarmed.
  virtual void arm_tick(net::NodeId slot, sim::SimTime first, double period) = 0;

  /// Stops `slot`'s beacon series (the sharded analogue of cancelling
  /// SensorNode::tick_timer_). Idempotent.
  virtual void disarm_tick(net::NodeId slot) = 0;
};

/// The static sensor network: slots, their fixed adjacency, beacon/lifetime
/// clocks, failure bookkeeping and replacement mechanics.
///
/// Sensor node ids are dense [0, size()); robot/manager ids must be >= size()
/// (is_sensor() relies on this).
class SensorField {
 public:
  struct Hooks {
    std::function<void(net::NodeId slot, sim::SimTime when)> on_failure;
    std::function<void(net::NodeId slot, sim::SimTime when)> on_replacement;
  };

  SensorField(sim::Simulator& simulator, net::Medium& medium, SensorPolicy& policy,
              metrics::FailureLog& log, const FieldConfig& config, sim::Rng rng);
  ~SensorField();

  SensorField(const SensorField&) = delete;
  SensorField& operator=(const SensorField&) = delete;

  /// Creates one slot per position (ids 0..n-1), attaches them to the medium
  /// and precomputes the static sensor adjacency. Call exactly once.
  void deploy(const std::vector<geometry::Vec2>& positions);

  /// Paper §3, initialization: every sensor broadcasts its location (counted)
  /// and establishes its guardian (confirmation messages are real unicasts).
  void initialize();

  /// Starts beacon/staleness ticks and the exponential lifetime clocks.
  void start();

  void set_hooks(Hooks hooks) { hooks_ = std::move(hooks); }

  /// Streams failure/detection/replacement events into `log` (nullptr
  /// detaches). The log must outlive the field.
  void set_event_log(trace::EventLog* log) noexcept { event_log_ = log; }

  /// Opens/closes repair-lifecycle spans on `tracer` (nullptr detaches). The
  /// tracer must outlive the field.
  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }

  /// Routes beacon tick series through `driver` (nullptr restores the
  /// in-queue schedule). Must be installed before start(); the driver must
  /// outlive the field.
  void set_tick_driver(TickDriver* driver) noexcept { tick_driver_ = driver; }
  [[nodiscard]] TickDriver* tick_driver() const noexcept { return tick_driver_; }

  // --- topology & lookup --------------------------------------------------

  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }
  [[nodiscard]] bool is_sensor(net::NodeId id) const noexcept { return id < slots_.size(); }

  /// Slot ids within `range` of `center` (closed ball under the sqrt-based
  /// `distance(slot, center) <= range` test every call site has always
  /// used), in ascending id order. Grid-accelerated when
  /// FieldConfig::spatial_index is on; brute scan otherwise — both paths
  /// evaluate the identical predicate over the identical candidate order.
  [[nodiscard]] std::vector<net::NodeId> slots_within(geometry::Vec2 center,
                                                      double range) const;
  [[nodiscard]] SensorNode& node(net::NodeId id);
  [[nodiscard]] const SensorNode& node(net::NodeId id) const;
  [[nodiscard]] const std::vector<routing::NeighborEntry>& static_neighbors(
      net::NodeId id) const;

  /// Timestamp of the node's most recent beacon; kNever for non-sensors.
  /// data_oriented mode reads the flat mirror (no SensorNode dereference) —
  /// this is the per-neighbor read inside every staleness check.
  [[nodiscard]] sim::SimTime last_beacon(net::NodeId id) const;

  /// Whether the slot's unit is alive; false for non-sensors. data_oriented
  /// mode reads the flat alive-bit mirror.
  [[nodiscard]] bool slot_alive(net::NodeId id) const;

  /// Beacon-staleness window: stale_beacon_count * beacon_period.
  [[nodiscard]] double staleness_window() const noexcept {
    return static_cast<double>(config_.stale_beacon_count) * config_.beacon_period;
  }

  // --- shared services for nodes -------------------------------------------

  [[nodiscard]] sim::Simulator& simulator() noexcept { return *sim_; }
  [[nodiscard]] net::Medium& medium() noexcept { return *medium_; }
  [[nodiscard]] SensorPolicy& policy() noexcept { return *policy_; }
  [[nodiscard]] metrics::FailureLog& failure_log() noexcept { return *log_; }
  [[nodiscard]] const FieldConfig& config() const noexcept { return config_; }

  // --- failure / replacement lifecycle -------------------------------------

  /// Kills a slot's unit now (lifetime clock or fault injection in tests).
  void fail_slot(net::NodeId slot);

  /// Robot `robot` unloads a functional unit into `slot` (paper: failure
  /// handling step 3). Announces the new unit, closes the failure record,
  /// restarts clocks and schedules neighbor-table/guardian re-establishment.
  void replace_slot(net::NodeId slot, net::NodeId robot);

  /// Metrics id of the open (unrepaired) failure on this slot, if any.
  [[nodiscard]] std::optional<metrics::FailureLog::FailureId> open_failure(
      net::NodeId slot) const;

  /// Records first detection of the slot's open failure.
  void record_detection(net::NodeId slot);

  /// A detection had no reachable manager; tracked for the delivery-ratio
  /// accounting (paper reports 100%; we verify).
  void note_unreported(net::NodeId slot);

  // --- diagnostics -----------------------------------------------------------

  [[nodiscard]] std::size_t alive_count() const noexcept;
  [[nodiscard]] std::size_t unreported_count() const noexcept { return unreported_; }
  [[nodiscard]] std::uint64_t router_drops() const noexcept;
  [[nodiscard]] std::size_t unguarded_count() const noexcept;

  /// Fraction of a uniform grid of sample points covered by >= 1 alive
  /// sensor with the given sensing radius (coverage-maintenance metric).
  [[nodiscard]] double coverage_fraction(const geometry::Rect& area, double sensing_radius,
                                         std::size_t grid_side = 64) const;

 private:
  friend class SensorNode;

  void activate_clocks(SensorNode& n);
  void schedule_lifetime(SensorNode& n);

  sim::Simulator* sim_;
  net::Medium* medium_;
  SensorPolicy* policy_;
  metrics::FailureLog* log_;
  FieldConfig config_;
  sim::Rng rng_;
  Hooks hooks_;

  /// SensorNode beacon hook: keeps the flat last-beacon mirror in sync with
  /// the node's own stamp (called from tick() and revive()). Under sharding
  /// all stores happen on the driver thread at barriers; the parallel
  /// classification phase only *reads* the frozen mirror (docs/SHARDING.md
  /// §3), so a plain store is race-free in both schedules.
  void note_beacon(net::NodeId slot, sim::SimTime when) noexcept {
    if (slot < last_beacon_soa_.size()) last_beacon_soa_[slot] = when;
  }

  std::vector<std::unique_ptr<SensorNode>> slots_;
  /// data_oriented: struct-of-arrays mirrors of per-slot hot state, indexed
  /// by slot id (ids are dense). Maintained unconditionally (writes are
  /// cheap); only the *reads* are gated on FieldConfig::data_oriented so the
  /// legacy path stays byte-for-byte what it was.
  std::vector<std::uint8_t> alive_soa_;
  std::vector<sim::SimTime> last_beacon_soa_;
  /// Sensor positions bucketed at TX-range granularity (spatial_index mode).
  /// Built once in deploy(): slots never move, replacements keep coordinates.
  std::optional<spatial::UniformGrid2D<net::NodeId>> grid_;
  std::vector<std::vector<routing::NeighborEntry>> adjacency_;
  std::vector<std::optional<metrics::FailureLog::FailureId>> open_failure_;
  std::size_t unreported_ = 0;
  trace::EventLog* event_log_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  TickDriver* tick_driver_ = nullptr;
};

}  // namespace sensrep::wsn
