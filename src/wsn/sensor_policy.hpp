#pragma once

#include <optional>

#include "geometry/vec2.hpp"
#include "net/node_id.hpp"
#include "net/packet.hpp"

namespace sensrep::wsn {

class SensorNode;

/// Where a sensor currently believes its manager is.
struct ReportTarget {
  net::NodeId manager = net::kNoNode;
  geometry::Vec2 location;
};

/// The algorithm-specific half of a sensor's behavior.
///
/// The three coordination algorithms differ, on the sensor side, in exactly
/// two decisions (paper §3): *whom to report a failure to* and *what to do
/// with a robot location-update broadcast* (adopt / relay / ignore). One
/// shared policy object per simulation implements both; everything else about
/// a sensor (beaconing, guardian-guardee detection, geo-forwarding) is
/// algorithm-independent mechanism in SensorNode.
class SensorPolicy {
 public:
  virtual ~SensorPolicy() = default;

  /// Manager this sensor should report failures to right now, with its
  /// believed location; nullopt if the sensor has no manager (init hole —
  /// the report is then counted as undeliverable).
  [[nodiscard]] virtual std::optional<ReportTarget> report_target(
      const SensorNode& sensor) const = 0;

  /// A kLocationUpdate broadcast reached this sensor; the policy updates the
  /// sensor's robot knowledge / myrobot choice and decides whether to relay.
  virtual void on_location_update(SensorNode& sensor, const net::Packet& pkt,
                                  net::NodeId from) = 0;

  /// A replacement unit has rebuilt its neighbor table (one beacon period
  /// after powering on); algorithms restore any policy-level entries the
  /// previous incarnation held (e.g. the centralized manager as a one-hop
  /// neighbor).
  virtual void on_sensor_reset(SensorNode& /*sensor*/) {}
};

}  // namespace sensrep::wsn
