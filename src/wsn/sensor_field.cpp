#include "wsn/sensor_field.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "geometry/spatial_hash.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics_registry.hpp"
#include "trace/log.hpp"

namespace sensrep::wsn {

using geometry::Vec2;
using net::kBroadcastId;
using net::NodeId;
using net::Packet;
using net::PacketType;

SensorField::SensorField(sim::Simulator& simulator, net::Medium& medium,
                         SensorPolicy& policy, metrics::FailureLog& log,
                         const FieldConfig& config, sim::Rng rng)
    : sim_(&simulator),
      medium_(&medium),
      policy_(&policy),
      log_(&log),
      config_(config),
      rng_(rng) {
  if (config.beacon_period <= 0.0) {
    throw std::invalid_argument("SensorField: beacon_period must be positive");
  }
  if (config.stale_beacon_count < 1) {
    throw std::invalid_argument("SensorField: stale_beacon_count must be >= 1");
  }
}

SensorField::~SensorField() = default;

void SensorField::deploy(const std::vector<Vec2>& positions) {
  if (!slots_.empty()) throw std::logic_error("SensorField::deploy: already deployed");
  slots_.reserve(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const auto id = static_cast<NodeId>(i);
    slots_.push_back(std::make_unique<SensorNode>(id, positions[i], *this));
    SensorNode* n = slots_.back().get();
    medium_->attach(id, positions[i], config_.sensor_tx_range,
                    [n](const Packet& pkt, NodeId from) { n->on_packet(pkt, from); });
  }
  open_failure_.assign(slots_.size(), std::nullopt);
  alive_soa_.assign(slots_.size(), 1);
  last_beacon_soa_.assign(slots_.size(), 0.0);

  // Static sensor-sensor adjacency: sensors never move and replacements land
  // on the same coordinates, so this graph is computed once. Both index
  // structures use the same closed-ball d^2 <= r^2 predicate and return ids
  // ascending, so the adjacency lists are identical either way.
  adjacency_.resize(slots_.size());
  if (config_.spatial_index && !slots_.empty()) {
    geometry::Rect box{positions.front(), positions.front()};
    for (const Vec2 p : positions) {
      box.min = {std::min(box.min.x, p.x), std::min(box.min.y, p.y)};
      box.max = {std::max(box.max.x, p.x), std::max(box.max.y, p.y)};
    }
    grid_.emplace(box, config_.sensor_tx_range);
    for (const auto& s : slots_) grid_->insert(s->id(), s->position());
    for (const auto& s : slots_) {
      auto& adj = adjacency_[s->id()];
      for (const NodeId m : grid_->within_radius(s->position(), config_.sensor_tx_range)) {
        if (m == s->id()) continue;
        adj.push_back({m, slots_[m]->position()});
      }
    }
    return;
  }
  geometry::SpatialHash index(config_.sensor_tx_range);
  for (const auto& s : slots_) index.upsert(s->id(), s->position());
  for (const auto& s : slots_) {
    auto& adj = adjacency_[s->id()];
    for (const NodeId m : index.query_ball(s->position(), config_.sensor_tx_range)) {
      if (m == s->id()) continue;
      adj.push_back({m, slots_[m]->position()});
    }
  }
}

std::vector<NodeId> SensorField::slots_within(Vec2 center, double range) const {
  std::vector<NodeId> out;
  if (grid_) {
    // Candidate cells are a superset of the ball; the exact predicate below
    // is the same sqrt-form comparison the brute path runs, so the accepted
    // set matches bit for bit. Candidates arrive cell-major, hence the sort.
    grid_->for_each_candidate(center, range, [&](NodeId id, Vec2 pos) {
      if (geometry::distance(pos, center) <= range) out.push_back(id);
    });
    std::sort(out.begin(), out.end());
    return out;
  }
  for (const auto& s : slots_) {
    if (geometry::distance(s->position(), center) <= range) out.push_back(s->id());
  }
  return out;
}

void SensorField::initialize() {
  // Step 1 (paper §3.1 init): every sensor broadcasts its location once.
  // The broadcasts are accounted; their observable effect — each sensor's
  // neighbor table holding its one-hop neighbors — is applied directly.
  medium_->account(metrics::MessageCategory::kInitialization,
                   static_cast<std::uint64_t>(slots_.size()));
  for (const auto& s : slots_) {
    for (const auto& e : adjacency_[s->id()]) {
      s->table().upsert(e.id, e.pos);
      // Honest-beacon mode: the init broadcast is what primes heard_.
      if (config_.materialize_beacons) s->heard_[e.id] = sim_->now();
    }
  }
  // Step 2: guardian selection + confirmation (real counted unicasts).
  for (const auto& s : slots_) s->choose_guardian();
}

void SensorField::start() {
  for (const auto& s : slots_) {
    activate_clocks(*s);
  }
}

void SensorField::activate_clocks(SensorNode& n) {
  // Beacon phase is drawn per activation so replacement units do not stay
  // synchronized with their predecessors. The draw happens before the
  // tick-driver branch so both schedules consume the identical RNG stream.
  const double phase = rng_.uniform(0.0, config_.beacon_period);
  if (tick_driver_) {
    // Sharded: the driver owns the series. Same fire times as the in-queue
    // schedule below — first at now+phase, then every beacon_period.
    tick_driver_->arm_tick(n.id(), sim_->now() + phase, config_.beacon_period);
  } else {
    SensorNode* node_ptr = &n;
    n.tick_timer_ = sim_->in(phase, [this, node_ptr] {
      node_ptr->tick();
      node_ptr->tick_timer_ =
          sim_->every(config_.beacon_period, [node_ptr] { node_ptr->tick(); });
    });
  }
  schedule_lifetime(n);
}

void SensorField::schedule_lifetime(SensorNode& n) {
  if (!config_.spontaneous_failures) return;
  const double lifetime = config_.lifetime.draw(rng_);
  const NodeId id = n.id();
  const std::uint32_t inc = n.incarnation();
  sim_->in(lifetime, [this, id, inc] {
    SensorNode& node_ref = node(id);
    if (node_ref.alive() && node_ref.incarnation() == inc) fail_slot(id);
  });
}

SensorNode& SensorField::node(NodeId id) {
  if (!is_sensor(id)) throw std::out_of_range("SensorField::node: not a sensor id");
  return *slots_[id];
}

const SensorNode& SensorField::node(NodeId id) const {
  if (!is_sensor(id)) throw std::out_of_range("SensorField::node: not a sensor id");
  return *slots_[id];
}

const std::vector<routing::NeighborEntry>& SensorField::static_neighbors(NodeId id) const {
  return adjacency_.at(id);
}

sim::SimTime SensorField::last_beacon(NodeId id) const {
  if (!is_sensor(id)) return sim::kNever;
  if (config_.data_oriented) return last_beacon_soa_[id];
  return slots_[id]->last_beacon();
}

bool SensorField::slot_alive(NodeId id) const {
  if (!is_sensor(id)) return false;
  if (config_.data_oriented) return alive_soa_[id] != 0;
  return slots_[id]->alive();
}

void SensorField::fail_slot(NodeId slot) {
  SensorNode& n = node(slot);
  if (!n.alive()) return;
  const sim::SimTime now = sim_->now();
  n.fail();
  alive_soa_[slot] = 0;
  medium_->set_alive(slot, false);
  obs::Metrics::inc(obs::Counter::kSensorFailures);
  obs::FlightRecorder::note(now, obs::FlightKind::kSensorFailure, slot);
  open_failure_[slot] = log_->open(slot, now);
  if (hooks_.on_failure) hooks_.on_failure(slot, now);
  if (event_log_) {
    event_log_->record({now, trace::EventKind::kFailure, slot, std::nullopt,
                        n.position(), std::nullopt});
  }
  if (tracer_) {
    // One trace per failure, keyed by the non-zero failure id carried in
    // reports and tasks (FailureLog index + 1).
    const std::uint64_t tid = *open_failure_[slot] + 1;
    tracer_->open(tid, obs::Stage::kRepair, now, slot);  // root span
    tracer_->open(tid, obs::Stage::kDetect, now, slot);
  }

  // Neighbor-table staleness: every neighbor stops considering this node a
  // forwarding candidate exactly one staleness window after its last beacon
  // (equivalent to per-beacon refresh; DESIGN.md substitution 3). In honest-
  // beacon mode each node evicts locally from its own heard_ timestamps.
  if (config_.materialize_beacons) return;
  const std::uint32_t inc = n.incarnation();
  sim_->in(staleness_window() + 1e-6, [this, slot, inc] {
    SensorNode& dead = node(slot);
    if (dead.alive() && dead.incarnation() != inc) return;  // already replaced
    for (const auto& e : adjacency_[slot]) {
      node(e.id).remove_neighbor(slot);
    }
  });
}

void SensorField::replace_slot(NodeId slot, NodeId robot) {
  SensorNode& n = node(slot);
  if (n.alive()) {
    trace::Logger::global().logf(trace::Level::kWarn, sim_->now(), "wsn",
                                 "replace_slot(%u): slot already alive", slot);
    return;
  }
  const sim::SimTime now = sim_->now();
  n.revive();
  alive_soa_[slot] = 1;
  medium_->set_alive(slot, true);

  // The new unit announces itself so neighbors restore their table entries
  // (paper §4.2(a)); a real counted broadcast.
  Packet announce;
  announce.type = PacketType::kReplacementAnnounce;
  announce.src = slot;
  announce.dst = kBroadcastId;
  announce.payload = net::ReplacementAnnouncePayload{n.position(), slot};
  medium_->broadcast(slot, announce);

  if (open_failure_[slot]) {
    auto& rec = log_->at(*open_failure_[slot]);
    rec.repaired_at = now;
    rec.robot_id = robot;
    obs::Metrics::inc(obs::Counter::kSensorRepairs);
    obs::Metrics::observe(obs::Hist::kRepairLatency,
                          rec.repaired_at - rec.failed_at);
    obs::FlightRecorder::note(now, obs::FlightKind::kSensorRepair, slot, robot);
    if (tracer_) {
      const std::uint64_t tid = *open_failure_[slot] + 1;
      // Stages the normal path already closed are no-ops here; this sweeps
      // up whatever fault recovery left open before sealing the root span.
      tracer_->close_if_open(tid, obs::Stage::kDetect, now);
      tracer_->close_if_open(tid, obs::Stage::kReport, now);
      tracer_->close_if_open(tid, obs::Stage::kDispatch, now);
      tracer_->close_if_open(tid, obs::Stage::kQueue, now);
      tracer_->close_if_open(tid, obs::Stage::kTravel, now);
      tracer_->close_if_open(tid, obs::Stage::kOrphan, now);
      tracer_->close(tid, obs::Stage::kRepair, now, rec.repaired_at - rec.failed_at,
                     robot);
    }
    open_failure_[slot].reset();
  }
  if (hooks_.on_replacement) hooks_.on_replacement(slot, now);
  if (event_log_) {
    event_log_->record({now, trace::EventKind::kReplacement, slot, robot, n.position(),
                        std::nullopt});
  }

  // Within one beacon period the new unit has heard all alive neighbors and
  // can pick a guardian (paper §4.2: "the neighbors send beacons containing
  // their own locations").
  const std::uint32_t inc = n.incarnation();
  sim_->in(config_.beacon_period, [this, slot, inc] {
    SensorNode& fresh = node(slot);
    if (!fresh.alive() || fresh.incarnation() != inc) return;
    fresh.rebuild_neighbor_table();
    policy_->on_sensor_reset(fresh);
    fresh.choose_guardian();
  });

  activate_clocks(n);
}

std::optional<metrics::FailureLog::FailureId> SensorField::open_failure(NodeId slot) const {
  if (!is_sensor(slot)) return std::nullopt;
  return open_failure_[slot];
}

void SensorField::record_detection(NodeId slot) {
  const auto fid = open_failure(slot);
  if (!fid) return;
  auto& rec = log_->at(*fid);
  if (!rec.detected()) {
    rec.detected_at = sim_->now();
    if (event_log_) {
      event_log_->record({sim_->now(), trace::EventKind::kDetection, slot, std::nullopt,
                          node(slot).position(), rec.detected_at - rec.failed_at});
    }
    if (tracer_) {
      tracer_->close(*fid + 1, obs::Stage::kDetect, sim_->now(),
                     rec.detected_at - rec.failed_at);
      tracer_->open(*fid + 1, obs::Stage::kReport, sim_->now(), slot);
    }
  }
}

void SensorField::note_unreported(NodeId slot) {
  ++unreported_;
  trace::Logger::global().logf(trace::Level::kInfo, sim_->now(), "wsn",
                               "failure of %u detected but no manager known", slot);
}

std::size_t SensorField::alive_count() const noexcept {
  if (config_.data_oriented) {
    // Batched pass over the flat alive bits — one cache line covers 64 slots.
    std::size_t n = 0;
    for (const std::uint8_t a : alive_soa_) n += a;
    return n;
  }
  std::size_t n = 0;
  for (const auto& s : slots_) n += s->alive() ? 1 : 0;
  return n;
}

std::uint64_t SensorField::router_drops() const noexcept {
  std::uint64_t n = 0;
  for (const auto& s : slots_) n += s->router_->drops();
  return n;
}

std::size_t SensorField::unguarded_count() const noexcept {
  std::size_t n = 0;
  for (const auto& s : slots_) {
    if (s->alive() && s->guardian() == net::kNoNode) ++n;
  }
  return n;
}

double SensorField::coverage_fraction(const geometry::Rect& area, double sensing_radius,
                                      std::size_t grid_side) const {
  assert(grid_side > 0);
  geometry::SpatialHash alive(sensing_radius);
  for (const auto& s : slots_) {
    if (s->alive()) alive.upsert(s->id(), s->position());
  }
  std::size_t covered = 0;
  const double dx = area.width() / static_cast<double>(grid_side);
  const double dy = area.height() / static_cast<double>(grid_side);
  for (std::size_t gy = 0; gy < grid_side; ++gy) {
    for (std::size_t gx = 0; gx < grid_side; ++gx) {
      const Vec2 p{area.min.x + (static_cast<double>(gx) + 0.5) * dx,
                   area.min.y + (static_cast<double>(gy) + 0.5) * dy};
      if (!alive.query_ball(p, sensing_radius).empty()) ++covered;
    }
  }
  return static_cast<double>(covered) / static_cast<double>(grid_side * grid_side);
}

}  // namespace sensrep::wsn
