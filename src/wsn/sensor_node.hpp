#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "geometry/vec2.hpp"
#include "net/node_id.hpp"
#include "net/packet.hpp"
#include "routing/geo_router.hpp"
#include "routing/neighbor_table.hpp"
#include "sim/time.hpp"
#include "wsn/sensor_policy.hpp"

namespace sensrep::wsn {

class SensorField;

/// What a sensor knows about one robot (from location-update broadcasts).
struct RobotKnowledge {
  geometry::Vec2 location;
  std::uint32_t seq = 0;
  sim::SimTime heard_at = 0.0;  // when fresh knowledge last arrived (aging)
};

/// One entry of a sensor's robot-knowledge table. Stored as a flat vector
/// sorted by id: robot counts are tiny (4..1k), so binary search + contiguous
/// scans beat hashing, and the aging sweep walks one cache-friendly run.
struct KnownRobot {
  net::NodeId id = net::kNoNode;
  RobotKnowledge info;
};

/// One sensor slot: a deployed position that is occupied by a (possibly
/// replaced) sensor unit. The node id names the slot; replacement units keep
/// the id and bump `incarnation` (paper §2(d): replacements land at the same
/// location).
///
/// SensorNode implements the algorithm-independent mechanism:
///  * periodic beaconing (counted; see DESIGN.md substitution 3),
///  * guardian–guardee failure detection (3 missed beacons, paper §3.1),
///  * guardian re-selection when one's own guardian dies,
///  * geographic forwarding of reports/requests through its GeoRouter,
///  * robot-location bookkeeping and flood relaying, with the adopt/relay
///    decisions delegated to the simulation's SensorPolicy.
class SensorNode {
 public:
  SensorNode(net::NodeId id, geometry::Vec2 pos, SensorField& field);

  SensorNode(const SensorNode&) = delete;
  SensorNode& operator=(const SensorNode&) = delete;

  // --- identity & state -----------------------------------------------

  [[nodiscard]] net::NodeId id() const noexcept { return id_; }
  [[nodiscard]] geometry::Vec2 position() const noexcept { return pos_; }
  [[nodiscard]] bool alive() const noexcept { return alive_; }
  [[nodiscard]] std::uint32_t incarnation() const noexcept { return incarnation_; }
  [[nodiscard]] sim::SimTime last_beacon() const noexcept { return last_beacon_; }

  [[nodiscard]] routing::NeighborTable& table() noexcept { return table_; }
  [[nodiscard]] const routing::NeighborTable& table() const noexcept { return table_; }
  [[nodiscard]] routing::GeoRouter& router() noexcept { return *router_; }

  [[nodiscard]] net::NodeId guardian() const noexcept { return guardian_; }
  [[nodiscard]] const std::vector<net::NodeId>& guardees() const noexcept { return guardees_; }
  void add_guardee(net::NodeId id);
  void remove_guardee(net::NodeId id);

  // --- robot knowledge (location service state) -------------------------

  [[nodiscard]] net::NodeId myrobot() const noexcept { return myrobot_; }
  void set_myrobot(net::NodeId robot) noexcept { myrobot_ = robot; }

  /// Records robot location knowledge if `seq` is fresh. Returns true when
  /// the knowledge was new (callers use this as the flood-dedup test for
  /// adoption; relaying has its own mark, see mark_relayed()).
  bool learn_robot(net::NodeId robot, geometry::Vec2 loc, std::uint32_t seq);

  [[nodiscard]] const RobotKnowledge* find_robot(net::NodeId robot) const;

  /// Known robot closest to this sensor (the dynamic algorithm's myrobot
  /// choice); nullopt when no robot is known.
  [[nodiscard]] std::optional<net::NodeId> closest_known_robot() const;

  [[nodiscard]] bool already_relayed(net::NodeId robot, std::uint32_t seq) const;
  void mark_relayed(net::NodeId robot, std::uint32_t seq);

  /// Re-broadcasts a flood packet unchanged (relay step of the distributed
  /// location-update schemes).
  void relay(const net::Packet& pkt);

  // --- lifecycle (driven by SensorField) --------------------------------

  /// The unit dies: stops transmitting and receiving.
  void fail();

  /// A replacement unit powers on in this slot.
  void revive();

  /// One beacon period elapsed: emit beacon, run staleness checks on this
  /// node's guardian and guardees.
  void tick();

  /// Sharded fast path (src/shard), phase A: classifies the tick scheduled
  /// for time `t` with pure reads so tile workers can run it in parallel
  /// against frozen window state. Returns true when the tick is *quiet* —
  /// it would perform only the self-local steady-state work (beacon stamp,
  /// robot-knowledge aging, repaired-rereport cleanup), which the driver
  /// then applies via commit_quiet_tick() at its barrier. Returns false when
  /// tick() would take any order-sensitive branch (stale guardian/guardee,
  /// rereport due, unguarded, watch report needed, materialize_beacons): the
  /// driver replays the full tick() at the barrier in canonical order. The
  /// verdict equals the branch outcome the sequential tick() would reach at
  /// `t` (docs/SHARDING.md §3). Must not touch the simulator, the medium, or
  /// mutable state of any node — it runs off the driver thread.
  [[nodiscard]] bool quiet_tick_viable(sim::SimTime t) const;

  /// Sharded fast path, barrier side: commits the self-local effects of a
  /// quiet tick at time `t` — exactly what tick() would have done minus the
  /// branches quiet_tick_viable() ruled out. Beacon *accounting* is the
  /// caller's (bulk-merged into the medium per window). Driver thread only.
  void commit_quiet_tick(sim::SimTime t);

  /// Repopulates the neighbor table from the beacons a freshly powered unit
  /// hears during its first beacon period (SensorField schedules this one
  /// period after revive()).
  void rebuild_neighbor_table();

  /// Picks the nearest fresh sensor neighbor as guardian and confirms the
  /// relationship (one counted transmission). No-op if a guardian is set.
  void choose_guardian();

  // --- medium entry ------------------------------------------------------

  void on_packet(const net::Packet& pkt, net::NodeId from);

  /// Field-level staleness eviction (a neighbor stopped beaconing).
  void remove_neighbor(net::NodeId id) { table_.remove(id); }

 private:
  friend class SensorField;

  void report_guardee_failure(net::NodeId failed);
  /// Robot fault tolerance (FieldConfig::robot_stale_window): drops robots
  /// not heard from within the window and re-picks myrobot if it was one.
  /// `now` is the tick's scheduled time — the simulator clock on the
  /// sequential path, the explicit window time on the sharded one.
  void age_robot_knowledge(sim::SimTime now);
  /// Robot fault tolerance (FieldConfig::failure_rereport_period): re-sends
  /// reports for failures that are still unrepaired (same `now` contract).
  void rereport_stale_failures(sim::SimTime now);
  /// reliable_reports: schedules a retransmission unless acked first.
  void arm_report_retry(net::NodeId failed);
  /// reliable_reports: a kReportAck for `failed` reached this node.
  void on_report_ack(net::NodeId failed);
  [[nodiscard]] bool neighbor_is_stale(net::NodeId id) const;
  /// Same staleness predicate evaluated at an explicit time instead of the
  /// simulator clock (the sharded quiet path runs ahead of the clock).
  [[nodiscard]] bool neighbor_stale_at(net::NodeId id, sim::SimTime now) const;

  net::NodeId id_;
  geometry::Vec2 pos_;
  SensorField* field_;

  bool alive_ = true;
  std::uint32_t incarnation_ = 0;
  sim::SimTime last_beacon_ = 0.0;

  routing::NeighborTable table_;
  std::unique_ptr<routing::GeoRouter> router_;

  net::NodeId guardian_ = net::kNoNode;
  std::vector<net::NodeId> guardees_;

  net::NodeId myrobot_ = net::kNoNode;
  std::vector<KnownRobot> known_robots_;  // sorted by robot id
  // Lower bound on min(heard_at) over known_robots_ (+inf when empty).
  // Entries only get fresher between scans, so while floor + window >= now
  // nothing can have expired and age_robot_knowledge() may skip its scan
  // entirely (the spatial_index batched-aging fast path).
  sim::SimTime robots_heard_floor_ = sim::kNever;
  std::unordered_map<net::NodeId, std::uint32_t> relayed_seq_;
  // Neighborhood-watch dedup: the neighbor's last-beacon timestamp at the
  // time this node reported it. A changed timestamp means the neighbor came
  // back (was replaced) and its next silence is a new failure.
  std::unordered_map<net::NodeId, sim::SimTime> watch_reported_;
  // materialize_beacons mode only: when this node last *heard* each
  // neighbor's beacon (the honest per-receiver freshness state).
  std::unordered_map<net::NodeId, sim::SimTime> heard_;
  // reliable_reports mode: unacknowledged reports awaiting retransmission,
  // keyed by the failed node.
  struct PendingReport {
    sim::EventId retry_timer;
    int attempts = 1;
  };
  std::unordered_map<net::NodeId, PendingReport> pending_reports_;
  // failure_rereport_period mode: failures this node reported that are not
  // yet repaired, keyed by slot -> time of the last report sent.
  std::unordered_map<net::NodeId, sim::SimTime> reported_pending_;
  // Originator-scoped sequence stamped on outgoing failure reports (receiver
  // duplication dedup). Monotonic across incarnations: never reset.
  std::uint32_t report_seq_ = 0;

  sim::EventId tick_timer_{};
};

}  // namespace sensrep::wsn
