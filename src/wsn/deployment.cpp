#include "wsn/deployment.hpp"

namespace sensrep::wsn {

using geometry::Rect;
using geometry::Vec2;

std::vector<Vec2> uniform_deployment(sim::Rng& rng, const Rect& area, std::size_t count,
                                     double min_separation) {
  std::vector<Vec2> points;
  points.reserve(count);
  const double sep2 = min_separation * min_separation;
  constexpr int kMaxTries = 64;
  for (std::size_t i = 0; i < count; ++i) {
    Vec2 p;
    for (int attempt = 0; attempt < kMaxTries; ++attempt) {
      p = {rng.uniform(area.min.x, area.max.x), rng.uniform(area.min.y, area.max.y)};
      if (sep2 <= 0.0) break;
      bool ok = true;
      for (const Vec2 q : points) {
        if (geometry::distance2(p, q) < sep2) {
          ok = false;
          break;
        }
      }
      if (ok) break;
    }
    points.push_back(p);
  }
  return points;
}

std::vector<Vec2> grid_deployment(sim::Rng& rng, const Rect& area, std::size_t rows,
                                  std::size_t cols, double jitter) {
  std::vector<Vec2> points;
  points.reserve(rows * cols);
  const double dx = area.width() / static_cast<double>(cols);
  const double dy = area.height() / static_cast<double>(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      Vec2 p{area.min.x + (static_cast<double>(c) + 0.5) * dx,
             area.min.y + (static_cast<double>(r) + 0.5) * dy};
      if (jitter > 0.0) {
        p.x += rng.uniform(-jitter, jitter);
        p.y += rng.uniform(-jitter, jitter);
      }
      points.push_back(area.clamp(p));
    }
  }
  return points;
}

}  // namespace sensrep::wsn
