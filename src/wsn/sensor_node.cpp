#include "wsn/sensor_node.hpp"

#include <algorithm>
#include <limits>

#include "trace/log.hpp"
#include "wsn/sensor_field.hpp"

namespace sensrep::wsn {

using geometry::Vec2;
using net::kBroadcastId;
using net::kNoNode;
using net::NodeId;
using net::Packet;
using net::PacketType;

SensorNode::SensorNode(NodeId id, Vec2 pos, SensorField& field)
    : id_(id), pos_(pos), field_(&field) {
  routing::GeoRouter::Callbacks cb;
  cb.deliver = [this](const Packet& pkt) {
    if (pkt.type == PacketType::kReportAck) {
      on_report_ack(std::get<net::ReportAckPayload>(pkt.payload).failed_node);
      return;
    }
    // Other geo-routed packets terminate at managers/robots; a sensor as
    // final destination indicates a misrouted packet. Log, don't crash.
    trace::Logger::global().logf(trace::Level::kDebug, field_->simulator().now(), "wsn",
                                 "sensor %u received stray %s", id_,
                                 std::string(net::to_string(pkt.type)).c_str());
  };
  cb.drop = [this](const Packet& pkt, routing::DropReason reason) {
    trace::Logger::global().logf(trace::Level::kDebug, field_->simulator().now(), "wsn",
                                 "sensor %u dropped %s: %s", id_,
                                 std::string(net::to_string(pkt.type)).c_str(),
                                 std::string(to_string(reason)).c_str());
  };
  router_ = std::make_unique<routing::GeoRouter>(
      id_, field.medium(), table_, [this] { return pos_; }, std::move(cb));
}

void SensorNode::add_guardee(NodeId id) {
  if (std::find(guardees_.begin(), guardees_.end(), id) == guardees_.end()) {
    guardees_.push_back(id);
  }
}

void SensorNode::remove_guardee(NodeId id) {
  guardees_.erase(std::remove(guardees_.begin(), guardees_.end(), id), guardees_.end());
}

namespace {

/// First entry with id >= robot (the table is sorted by id).
template <typename Vec>
auto robot_lower_bound(Vec& v, NodeId robot) {
  return std::lower_bound(v.begin(), v.end(), robot,
                          [](const KnownRobot& e, NodeId id) { return e.id < id; });
}

}  // namespace

bool SensorNode::learn_robot(NodeId robot, Vec2 loc, std::uint32_t seq) {
  auto it = robot_lower_bound(known_robots_, robot);
  const bool known = it != known_robots_.end() && it->id == robot;
  const bool fresh = !known || seq > it->info.seq;
  if (fresh) {
    const auto now = field_->simulator().now();
    if (known) {
      it->info = RobotKnowledge{loc, seq, now};
    } else {
      known_robots_.insert(it, KnownRobot{robot, RobotKnowledge{loc, seq, now}});
    }
    robots_heard_floor_ = std::min(robots_heard_floor_, now);
    // Keep the routing table's robot entry in sync: the robot is a usable
    // next hop only while inside this sensor's own transmission range.
    if (geometry::distance(pos_, loc) <= field_->config().sensor_tx_range) {
      table_.upsert(robot, loc);
    } else {
      table_.remove(robot);
    }
  }
  return fresh;
}

const RobotKnowledge* SensorNode::find_robot(NodeId robot) const {
  auto it = robot_lower_bound(known_robots_, robot);
  return it != known_robots_.end() && it->id == robot ? &it->info : nullptr;
}

std::optional<NodeId> SensorNode::closest_known_robot() const {
  // Ascending-id scan: on a distance tie the lowest id wins, exactly the
  // comparator the unordered predecessor implemented order-independently.
  std::optional<NodeId> best;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (const KnownRobot& kr : known_robots_) {
    const double d2 = geometry::distance2(pos_, kr.info.location);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = kr.id;
    }
  }
  return best;
}

bool SensorNode::already_relayed(NodeId robot, std::uint32_t seq) const {
  auto it = relayed_seq_.find(robot);
  return it != relayed_seq_.end() && it->second >= seq;
}

void SensorNode::mark_relayed(NodeId robot, std::uint32_t seq) {
  auto& slot = relayed_seq_[robot];
  slot = std::max(slot, seq);
}

void SensorNode::relay(const Packet& pkt) { field_->medium().broadcast(id_, pkt); }

void SensorNode::fail() {
  if (!alive_) return;
  alive_ = false;
  if (tick_timer_.valid()) {
    field_->simulator().cancel(tick_timer_);
    tick_timer_ = {};
  }
  // Sharded mode: the beacon series lives in the tile ticker, not the queue.
  if (auto* driver = field_->tick_driver()) driver->disarm_tick(id_);
  // The dead unit's protocol state dies with it; the slot id survives.
  guardian_ = kNoNode;
  guardees_.clear();
  myrobot_ = kNoNode;
  known_robots_.clear();
  robots_heard_floor_ = sim::kNever;
  relayed_seq_.clear();
  watch_reported_.clear();
  heard_.clear();
  for (auto& [failed, pending] : pending_reports_) {
    field_->simulator().cancel(pending.retry_timer);
  }
  pending_reports_.clear();
  reported_pending_.clear();
  table_.clear();
}

void SensorNode::revive() {
  alive_ = true;
  ++incarnation_;
  last_beacon_ = field_->simulator().now();  // powers on beaconing immediately
  field_->note_beacon(id_, last_beacon_);
}

bool SensorNode::neighbor_is_stale(NodeId id) const {
  return neighbor_stale_at(id, field_->simulator().now());
}

bool SensorNode::neighbor_stale_at(NodeId id, sim::SimTime now) const {
  sim::SimTime last;
  if (field_->config().materialize_beacons) {
    // Honest mode: judged from the beacons this node actually received.
    const auto it = heard_.find(id);
    last = it == heard_.end() ? -sim::kNever : it->second;
  } else {
    // Analytic mode (DESIGN.md substitution 3): a neighbor's own beacon
    // timestamp is what a receiver in range would have heard.
    last = field_->last_beacon(id);
  }
  return last + field_->staleness_window() < now;
}

void SensorNode::choose_guardian() {
  if (guardian_ != kNoNode || !alive_) return;
  // Candidates: fresh sensor neighbors, nearest first (paper §3.1: "picks its
  // nearest neighbor as its guardian"). Freshness is judged by the beacons
  // this node has heard — a recently-dead neighbor can legitimately be
  // picked and will be replaced at the next staleness check.
  std::vector<routing::NeighborEntry> candidates;
  for (const auto& e : table_.entries()) {
    if (!field_->is_sensor(e.id)) continue;  // robots are not guardians
    if (neighbor_is_stale(e.id)) continue;
    candidates.push_back(e);
  }
  std::sort(candidates.begin(), candidates.end(),
            [&](const routing::NeighborEntry& a, const routing::NeighborEntry& b) {
              const double da = geometry::distance2(a.pos, pos_);
              const double db = geometry::distance2(b.pos, pos_);
              return da != db ? da < db : a.id < b.id;
            });
  for (const auto& cand : candidates) {
    Packet confirm;
    confirm.type = PacketType::kGuardianConfirm;
    confirm.src = id_;
    confirm.dst = cand.id;
    confirm.dst_location = cand.pos;
    confirm.payload = net::GuardianConfirmPayload{id_};
    if (field_->medium().unicast(id_, cand.id, confirm)) {
      guardian_ = cand.id;
      return;
    }
    table_.remove(cand.id);  // link dead: neighbor is gone
  }
  // No viable guardian: stay unguarded; tick() retries every period.
}

void SensorNode::tick() {
  if (!alive_) return;
  if (field_->config().materialize_beacons) {
    Packet beacon;
    beacon.type = PacketType::kBeacon;
    beacon.src = id_;
    beacon.dst = kBroadcastId;
    beacon.payload = net::BeaconPayload{pos_};
    field_->medium().broadcast(id_, beacon);  // counted by the medium
  } else {
    field_->medium().account(metrics::MessageCategory::kBeacon);
  }
  last_beacon_ = field_->simulator().now();
  field_->note_beacon(id_, last_beacon_);

  // Honest mode: staleness also evicts silent neighbors from the routing
  // table locally (analytic mode schedules this at the field level).
  if (field_->config().materialize_beacons) {
    std::vector<NodeId> stale;
    for (const auto& e : table_.entries()) {
      if (field_->is_sensor(e.id) && neighbor_is_stale(e.id)) stale.push_back(e.id);
    }
    for (const NodeId id : stale) table_.remove(id);
  }

  // Guardee side: has my guardian gone silent? Re-pick if so (paper §3.1).
  if (guardian_ != kNoNode && neighbor_is_stale(guardian_)) {
    table_.remove(guardian_);
    guardian_ = kNoNode;
  }
  if (guardian_ == kNoNode) choose_guardian();

  // Guardian side: declare failed any guardee silent for the window.
  std::vector<NodeId> failed;
  for (const NodeId e : guardees_) {
    if (neighbor_is_stale(e)) failed.push_back(e);
  }
  for (const NodeId e : failed) {
    remove_guardee(e);
    report_guardee_failure(e);
  }

  // Robot fault tolerance: age out robots gone silent and re-send reports
  // for failures still unrepaired (both no-ops unless configured).
  const auto now = field_->simulator().now();
  if (field_->config().robot_stale_window > 0.0) age_robot_knowledge(now);
  if (field_->config().failure_rereport_period > 0.0) rereport_stale_failures(now);

  // Neighborhood watch (extension; see FieldConfig::neighborhood_watch):
  // report any silent static neighbor, once per silence episode. The
  // guardee path above already reported its subset this tick; the
  // watch_reported_ stamp below keeps this loop from repeating those.
  if (field_->config().neighborhood_watch) {
    for (const auto& e : field_->static_neighbors(id_)) {
      if (!neighbor_is_stale(e.id)) continue;
      const sim::SimTime silent_since = field_->last_beacon(e.id);
      auto it = watch_reported_.find(e.id);
      if (it != watch_reported_.end() && it->second == silent_since) continue;
      watch_reported_[e.id] = silent_since;
      // Avoid double-reporting a neighbor the guardee path just handled.
      if (std::find(failed.begin(), failed.end(), e.id) != failed.end()) continue;
      report_guardee_failure(e.id);
    }
  }
}

bool SensorNode::quiet_tick_viable(sim::SimTime t) const {
  // Mirrors tick()'s decision points with pure reads against the frozen
  // window state, in tick()'s order. Each verdict below matches the branch
  // the sequential tick() would take at t: stamps of alive neighbors cannot
  // cross the staleness threshold within one window (the driver caps windows
  // at one beacon period and validation requires stale_beacon_count >= 2),
  // and dead neighbors' stamps are frozen, so reading pre-window stamps
  // instead of mid-window ones never flips a verdict.
  if (!alive_) return false;  // defensive: fail() disarms the series first
  const FieldConfig& cfg = field_->config();
  // Honest-beacon mode broadcasts a real frame every tick — always escalate.
  if (cfg.materialize_beacons) return false;
  // Guardian side-check: unguarded nodes retry choose_guardian() (counted
  // unicasts), stale guardians get dropped and replaced.
  if (guardian_ == kNoNode || neighbor_stale_at(guardian_, t)) return false;
  // Guardee scan: any silent guardee means a failure report this tick.
  for (const NodeId e : guardees_) {
    if (neighbor_stale_at(e, t)) return false;
  }
  // Rereport scan: a due entry sends a report. Due-ness is frozen within a
  // window (own reports stamp it; repairs only happen at global events).
  if (cfg.failure_rereport_period > 0.0) {
    for (const auto& [slot, stamp] : reported_pending_) {
      if (field_->open_failure(slot) && stamp + cfg.failure_rereport_period <= t) {
        return false;
      }
    }
  }
  // Neighborhood watch: a silent static neighbor not yet reported for this
  // silence episode triggers a report. (No stale guardees here, so tick()'s
  // guardee-overlap dedup cannot apply.)
  if (cfg.neighborhood_watch) {
    for (const auto& e : field_->static_neighbors(id_)) {
      if (!neighbor_stale_at(e.id, t)) continue;
      const sim::SimTime silent_since = field_->last_beacon(e.id);
      const auto it = watch_reported_.find(e.id);
      if (it == watch_reported_.end() || it->second != silent_since) return false;
    }
  }
  return true;
}

void SensorNode::commit_quiet_tick(sim::SimTime t) {
  // The self-local subset of tick() at time t, evaluated against the live
  // barrier state (mid-window deliveries, e.g. location-update floods, have
  // already been applied in canonical order by the driver's run_until).
  const FieldConfig& cfg = field_->config();
  last_beacon_ = t;
  field_->note_beacon(id_, t);
  if (cfg.robot_stale_window > 0.0) age_robot_knowledge(t);
  // Nothing is due (quiet_tick_viable checked; due-ness is window-frozen),
  // so this only erases repaired entries — tick()'s identical cleanup.
  if (cfg.failure_rereport_period > 0.0) rereport_stale_failures(t);
}

void SensorNode::age_robot_knowledge(sim::SimTime now) {
  const double window = field_->config().robot_stale_window;
  // Batched aging (spatial_index): robots_heard_floor_ is a lower bound on
  // every entry's heard_at, so while the *oldest possible* entry is still
  // inside the window the scan can expire nothing — skip it. heard_at only
  // rises between scans, which keeps the bound conservative; a full scan
  // re-tightens it to the exact minimum.
  if (field_->config().spatial_index && robots_heard_floor_ + window >= now) return;
  bool dropped_myrobot = false;
  sim::SimTime floor = sim::kNever;
  // In-place compaction over the flat table: one contiguous pass, keeping
  // survivors in id order.
  std::size_t keep = 0;
  for (KnownRobot& kr : known_robots_) {
    if (kr.info.heard_at + window < now) {
      if (kr.id == myrobot_) {
        myrobot_ = kNoNode;
        dropped_myrobot = true;
      }
      table_.remove(kr.id);
    } else {
      floor = std::min(floor, kr.info.heard_at);
      known_robots_[keep++] = kr;
    }
  }
  known_robots_.resize(keep);
  robots_heard_floor_ = floor;
  // Re-pick among the robots still believed alive (the dynamic algorithm's
  // "re-report to the next-closest robot" behavior; harmless elsewhere).
  if (dropped_myrobot) {
    if (const auto closest = closest_known_robot()) myrobot_ = *closest;
  }
}

void SensorNode::rereport_stale_failures(sim::SimTime now) {
  const double period = field_->config().failure_rereport_period;
  std::vector<NodeId> due;
  for (auto it = reported_pending_.begin(); it != reported_pending_.end();) {
    if (!field_->open_failure(it->first)) {
      it = reported_pending_.erase(it);  // repaired; done nagging
    } else {
      if (it->second + period <= now) due.push_back(it->first);
      ++it;
    }
  }
  // The re-report resolves report_target() afresh, so it follows manager
  // failover, subarea adoption, and myrobot re-picks automatically.
  for (const NodeId slot : due) report_guardee_failure(slot);
}

void SensorNode::report_guardee_failure(NodeId failed) {
  field_->record_detection(failed);
  if (field_->config().failure_rereport_period > 0.0) {
    reported_pending_[failed] = field_->simulator().now();
  }
  const auto target = field_->policy().report_target(*this);
  if (!target || target->manager == kNoNode) {
    field_->note_unreported(failed);
    return;
  }
  Packet pkt;
  pkt.type = PacketType::kFailureReport;
  pkt.dst = target->manager;
  pkt.dst_location = target->location;
  // Every (re)transmission carries a fresh originator-scoped seq: receivers
  // drop exact copies (link duplication) but process retries and re-reports.
  // Monotonic across incarnations so a revived slot never reuses a seq.
  pkt.seq = ++report_seq_;
  net::FailureReportPayload body;
  body.failed_node = failed;
  body.failed_location = field_->node(failed).position();
  const auto fid = field_->open_failure(failed);
  body.failure_id = fid ? *fid + 1 : 0;  // 0 = untagged
  body.reporter_location = pos_;
  pkt.payload = body;
  router_->send(std::move(pkt));

  if (field_->config().reliable_reports) arm_report_retry(failed);
}

void SensorNode::arm_report_retry(NodeId failed) {
  auto& pending = pending_reports_[failed];
  // A periodic re-report may race an armed retry for the same slot; disarm
  // the stale timer so the two paths never double-fire.
  if (pending.retry_timer.valid()) field_->simulator().cancel(pending.retry_timer);
  // Exponential backoff: the k-th wait is timeout * 2^(k-1), so a congested
  // or bursty network sees geometrically decaying re-report pressure instead
  // of a fixed-rate hammer that keeps colliding with the same burst.
  const int backoff_exp = std::min(pending.attempts - 1, 20);  // cap the doubling
  const double delay = field_->config().report_retry_timeout *
                       static_cast<double>(1u << backoff_exp);
  pending.retry_timer = field_->simulator().in(delay, [this, failed] {
    auto it = pending_reports_.find(failed);
    if (it == pending_reports_.end() || !alive_) return;
    if (it->second.attempts > field_->config().report_retries) {
      pending_reports_.erase(it);  // give up; tracked by delivery ratio
      return;
    }
    const int attempts = it->second.attempts + 1;
    pending_reports_.erase(it);
    // Pre-seed the attempt count so the re-arm inside report_guardee_failure
    // sees it and scales the next backoff window.
    pending_reports_[failed].attempts = attempts;
    report_guardee_failure(failed);  // re-resolves the manager too
  });
}

void SensorNode::on_report_ack(NodeId failed) {
  auto it = pending_reports_.find(failed);
  if (it == pending_reports_.end()) return;
  field_->simulator().cancel(it->second.retry_timer);
  pending_reports_.erase(it);
}

void SensorNode::rebuild_neighbor_table() {
  if (!alive_) return;
  // Every alive static neighbor beacons within one period of our power-on;
  // collecting those beacons yields exactly this table (substitution 3).
  table_.clear();
  for (const auto& e : field_->static_neighbors(id_)) {
    if (field_->slot_alive(e.id)) {
      table_.upsert(e.id, e.pos);
      // Honest mode: a full beacon period has elapsed, so every alive
      // neighbor has been heard once by now.
      if (field_->config().materialize_beacons) {
        heard_[e.id] = field_->simulator().now();
      }
    }
  }
  // myrobot bootstrap: the new unit asks its nearest alive neighbor for the
  // current manager state (one query + one response, counted).
  auto nearest = table_.closest_to(pos_);
  while (nearest && !field_->is_sensor(nearest->id)) {
    table_.remove(nearest->id);  // cannot happen (table just rebuilt); guard
    nearest = table_.closest_to(pos_);
  }
  if (nearest) {
    field_->medium().account(metrics::MessageCategory::kReplacement, 2);
    const SensorNode& mentor = field_->node(nearest->id);
    known_robots_ = mentor.known_robots_;
    robots_heard_floor_ = mentor.robots_heard_floor_;
    myrobot_ = mentor.myrobot_;
  }
}

void SensorNode::on_packet(const Packet& pkt, NodeId from) {
  if (!alive_) return;
  switch (pkt.type) {
    case PacketType::kBeacon:
      // Only materialize_beacons mode delivers these frames.
      heard_[pkt.src] = field_->simulator().now();
      table_.upsert(pkt.src, std::get<net::BeaconPayload>(pkt.payload).location);
      break;
    case PacketType::kLocationAnnounce:
      table_.upsert(pkt.src, std::get<net::LocationAnnouncePayload>(pkt.payload).location);
      break;
    case PacketType::kReplacementAnnounce:
      table_.upsert(pkt.src,
                    std::get<net::ReplacementAnnouncePayload>(pkt.payload).location);
      break;
    case PacketType::kGuardianConfirm:
      if (pkt.dst == id_) add_guardee(pkt.src);
      break;
    case PacketType::kLocationUpdate:
      if (pkt.dst == kBroadcastId) {
        field_->policy().on_location_update(*this, pkt, from);
      } else {
        router_->on_receive(pkt, from);
      }
      break;
    case PacketType::kManagerHeartbeat:
      // Liveness flood seed from the (acting) manager: refresh its entry so
      // it stays usable as a forwarding hop.
      table_.upsert(pkt.src, std::get<net::ManagerHeartbeatPayload>(pkt.payload).location);
      break;
    case PacketType::kFailureReport:
    case PacketType::kRepairRequest:
    case PacketType::kData:
    case PacketType::kReportAck:
    case PacketType::kTaskComplete:
    case PacketType::kElection:
    case PacketType::kElectionAck:
    case PacketType::kOwnershipTransfer:
      // Robot-plane unicasts (election, ownership handover): sensors only
      // forward them along the geo-route.
      router_->on_receive(pkt, from);
      break;
  }
}

}  // namespace sensrep::wsn
