#pragma once

#include <vector>

#include "geometry/rect.hpp"
#include "geometry/vec2.hpp"
#include "sim/rng.hpp"

namespace sensrep::wsn {

/// Sensor/robot placement generators (paper §2(a): random uniform).
///
/// `min_separation` rejects draws closer than the given distance to any
/// already-placed point (a light hard-core process; 0 disables). Rejection is
/// bounded; if the constraint cannot be met the point is placed anyway so the
/// requested count is always honored.
[[nodiscard]] std::vector<geometry::Vec2> uniform_deployment(sim::Rng& rng,
                                                             const geometry::Rect& area,
                                                             std::size_t count,
                                                             double min_separation = 0.0);

/// Regular grid deployment with optional uniform jitter (useful in tests and
/// the coverage example; not used by the paper's experiments).
[[nodiscard]] std::vector<geometry::Vec2> grid_deployment(sim::Rng& rng,
                                                          const geometry::Rect& area,
                                                          std::size_t rows, std::size_t cols,
                                                          double jitter = 0.0);

}  // namespace sensrep::wsn
