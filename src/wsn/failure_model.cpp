#include "wsn/failure_model.hpp"

#include <cmath>
#include <stdexcept>

namespace sensrep::wsn {

std::string_view to_string(LifetimeDistribution d) noexcept {
  switch (d) {
    case LifetimeDistribution::kExponential: return "exponential";
    case LifetimeDistribution::kWeibull: return "weibull";
    case LifetimeDistribution::kBatteryLinear: return "battery";
  }
  return "?";
}

void LifetimeModel::validate() const {
  if (mean <= 0.0) throw std::invalid_argument("LifetimeModel: mean must be positive");
  if (distribution == LifetimeDistribution::kWeibull && weibull_shape <= 0.0) {
    throw std::invalid_argument("LifetimeModel: weibull_shape must be positive");
  }
  if (distribution == LifetimeDistribution::kBatteryLinear &&
      (battery_jitter < 0.0 || battery_jitter >= 1.0)) {
    throw std::invalid_argument("LifetimeModel: battery_jitter must be in [0, 1)");
  }
}

double LifetimeModel::draw(sim::Rng& rng) const {
  switch (distribution) {
    case LifetimeDistribution::kExponential:
      return rng.exponential(mean);
    case LifetimeDistribution::kWeibull: {
      // Scale lambda chosen so E[X] = lambda * Gamma(1 + 1/k) == mean.
      const double k = weibull_shape;
      const double lambda = mean / std::tgamma(1.0 + 1.0 / k);
      const double u = rng.uniform01();
      return lambda * std::pow(-std::log(1.0 - u), 1.0 / k);
    }
    case LifetimeDistribution::kBatteryLinear:
      return mean * rng.uniform(1.0 - battery_jitter, 1.0 + battery_jitter);
  }
  return mean;
}

}  // namespace sensrep::wsn
