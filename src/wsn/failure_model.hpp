#pragma once

#include <string_view>

#include "sim/rng.hpp"

namespace sensrep::wsn {

/// Sensor-unit lifetime distributions.
///
/// The paper assumes Exp(T) lifetimes (§2a) — memoryless, so failures arrive
/// as a steady Poisson stream. Real hardware often wears out (Weibull with
/// shape > 1: hazard grows with age, failures of same-age units cluster) or
/// depletes a battery near-deterministically (tight lifetime spread, which
/// synchronizes failures of a same-batch deployment). The E8 ablation bench
/// shows how burstiness stresses the repair pipeline.
enum class LifetimeDistribution {
  kExponential,   // paper's model: memoryless, mean T
  kWeibull,       // shape k: >1 wear-out (bursty), <1 infant mortality
  kBatteryLinear, // mean * Uniform(1-jitter, 1+jitter): near-deterministic
};

[[nodiscard]] std::string_view to_string(LifetimeDistribution d) noexcept;

/// Parameterized lifetime model; draws are calibrated so that every
/// distribution has expectation `mean` (making ablations failure-count
/// comparable).
struct LifetimeModel {
  LifetimeDistribution distribution = LifetimeDistribution::kExponential;
  double mean = 16000.0;        // E[lifetime], seconds (paper §4.1)
  double weibull_shape = 3.0;   // only for kWeibull
  double battery_jitter = 0.1;  // only for kBatteryLinear; fraction of mean

  /// Draws one lifetime. Requires mean > 0 (and shape > 0 for Weibull,
  /// 0 <= jitter < 1 for battery).
  [[nodiscard]] double draw(sim::Rng& rng) const;

  /// Throws std::invalid_argument on out-of-range parameters.
  void validate() const;
};

}  // namespace sensrep::wsn
