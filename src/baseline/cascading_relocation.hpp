#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "geometry/rect.hpp"
#include "geometry/vec2.hpp"
#include "sim/rng.hpp"

namespace sensrep::baseline {

/// Mobile-sensor relocation baseline, after Wang, Cao, La Porta & Zhang
/// (INFOCOM'05) — the related-work approach the paper argues against: every
/// sensor is mobile and redundant nodes relocate to fill coverage holes.
///
/// This module is an analytical motion model, not a packet-level protocol:
/// the paper's comparison point (E5) is *motion energy*, so we compute, for
/// the same failure workload the robot simulation serves, how far mobile
/// sensors would drive under
///   * direct relocation — the nearest redundant node drives to the hole;
///   * cascading relocation — a chain of sensors between the redundant node
///     and the hole each shift one link down the chain, so every individual
///     move is short (bounded per-node energy) and moves run in parallel
///     (bounded response time), at slightly higher total distance.
class CascadingRelocation {
 public:
  struct Config {
    /// Fraction of nodes that are redundant (available to fill holes).
    double redundancy = 0.1;
    /// Maximum single link length in a cascade chain (typically the
    /// communication range; chain hops must be able to coordinate).
    double max_link = 63.0;
    double speed = 1.0;  // m/s, same class of mobility as the robots
  };

  /// Plan for filling one hole.
  struct Plan {
    bool feasible = false;        // a redundant node was available
    double total_distance = 0.0;  // summed over all moving nodes (energy)
    double max_leg = 0.0;         // longest single-node move (peak energy)
    double makespan = 0.0;        // time to heal: moves execute in parallel
    std::size_t moves = 0;        // number of nodes that moved
  };

  /// Aggregates over a workload of holes.
  struct Totals {
    double total_distance = 0.0;
    double max_leg = 0.0;         // worst single-node move seen
    double avg_makespan = 0.0;
    std::size_t holes = 0;
    std::size_t healed = 0;
  };

  CascadingRelocation(std::vector<geometry::Vec2> positions, const Config& config,
                      sim::Rng rng);

  /// Marks `count` random alive nodes redundant (they are spares, their
  /// positions are surplus coverage).
  void designate_redundant(std::size_t count);

  /// Deterministically marks one node's redundancy (tests, crafted benches).
  void set_redundant(std::size_t index, bool value = true);

  [[nodiscard]] std::size_t redundant_count() const noexcept;

  /// Heals the hole at node index `slot` by direct relocation of the nearest
  /// redundant node. The redundant node is consumed.
  Plan heal_direct(std::size_t slot);

  /// Heals the hole by a cascading chain: redundant node r and chain
  /// s1..sk with consecutive distance <= max_link; r -> s1's spot,
  /// s1 -> s2's spot, ..., sk -> hole. The redundant node is consumed; all
  /// other nodes keep existing (their positions shift one link).
  Plan heal_cascading(std::size_t slot);

  /// Runs a whole workload (list of failing slots, applied in order) with
  /// the chosen strategy. Resets nothing: call on a fresh instance per run.
  enum class Strategy { kDirect, kCascading };
  Totals run_workload(const std::vector<std::size_t>& failing_slots, Strategy strategy);

  [[nodiscard]] const std::vector<geometry::Vec2>& positions() const noexcept {
    return positions_;
  }

 private:
  struct Node {
    geometry::Vec2 pos;
    bool alive = true;
    bool redundant = false;
  };

  /// Nearest redundant alive node to `target`; nullopt when none remain.
  [[nodiscard]] std::optional<std::size_t> nearest_redundant(geometry::Vec2 target) const;

  /// Chain of alive non-redundant nodes from `from_idx`'s position toward
  /// `target`, each link <= max_link, ending within max_link of target.
  /// Empty chain means direct move (already within one link).
  [[nodiscard]] std::vector<std::size_t> build_chain(std::size_t from_idx,
                                                     geometry::Vec2 target) const;

  std::vector<geometry::Vec2> positions_;  // original layout (exposed)
  std::vector<Node> nodes_;
  Config config_;
  sim::Rng rng_;
};

}  // namespace sensrep::baseline
