#include "baseline/cascading_relocation.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace sensrep::baseline {

using geometry::Vec2;

CascadingRelocation::CascadingRelocation(std::vector<Vec2> positions, const Config& config,
                                         sim::Rng rng)
    : positions_(std::move(positions)), config_(config), rng_(rng) {
  nodes_.reserve(positions_.size());
  for (const Vec2 p : positions_) nodes_.push_back(Node{p, true, false});
}

void CascadingRelocation::designate_redundant(std::size_t count) {
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].alive && !nodes_[i].redundant) candidates.push_back(i);
  }
  rng_.shuffle(candidates);
  const std::size_t n = std::min(count, candidates.size());
  for (std::size_t i = 0; i < n; ++i) nodes_[candidates[i]].redundant = true;
}

void CascadingRelocation::set_redundant(std::size_t index, bool value) {
  nodes_.at(index).redundant = value;
}

std::size_t CascadingRelocation::redundant_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(nodes_.begin(), nodes_.end(),
                    [](const Node& n) { return n.alive && n.redundant; }));
}

std::optional<std::size_t> CascadingRelocation::nearest_redundant(Vec2 target) const {
  std::optional<std::size_t> best;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (!n.alive || !n.redundant) continue;
    const double d2 = geometry::distance2(n.pos, target);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = i;
    }
  }
  return best;
}

CascadingRelocation::Plan CascadingRelocation::heal_direct(std::size_t slot) {
  assert(slot < nodes_.size());
  nodes_[slot].alive = false;  // the unit in the hole is broken
  const Vec2 hole = nodes_[slot].pos;
  const auto r = nearest_redundant(hole);
  if (!r) return {};
  Plan plan;
  plan.feasible = true;
  plan.total_distance = geometry::distance(nodes_[*r].pos, hole);
  plan.max_leg = plan.total_distance;
  plan.makespan = plan.total_distance / config_.speed;
  plan.moves = 1;
  // The redundant unit drives to the hole and becomes its occupant; its old
  // spot was surplus coverage and is simply vacated.
  nodes_[*r].redundant = false;
  nodes_[*r].pos = hole;
  return plan;
}

std::vector<std::size_t> CascadingRelocation::build_chain(std::size_t from_idx,
                                                          Vec2 target) const {
  // Greedy geographic chain: from the redundant node, repeatedly step to the
  // alive non-redundant node within max_link that is closest to the hole,
  // until the hole is within one link. Mirrors Wang et al.'s grid cascade on
  // an irregular layout.
  std::vector<std::size_t> chain;
  Vec2 cur = nodes_[from_idx].pos;
  std::vector<bool> used(nodes_.size(), false);
  used[from_idx] = true;
  while (geometry::distance(cur, target) > config_.max_link) {
    std::optional<std::size_t> next;
    double best_d2 = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const Node& n = nodes_[i];
      if (!n.alive || n.redundant || used[i]) continue;
      if (geometry::distance(n.pos, cur) > config_.max_link) continue;
      const double d2 = geometry::distance2(n.pos, target);
      if (d2 < best_d2) {
        best_d2 = d2;
        next = i;
      }
    }
    if (!next) return {};  // sparse gap: no chain, caller falls back to direct
    // Progress guard: the chain must strictly approach the hole.
    if (geometry::distance(nodes_[*next].pos, target) >= geometry::distance(cur, target)) {
      return {};
    }
    chain.push_back(*next);
    used[*next] = true;
    cur = nodes_[*next].pos;
  }
  return chain;
}

CascadingRelocation::Plan CascadingRelocation::heal_cascading(std::size_t slot) {
  assert(slot < nodes_.size());
  nodes_[slot].alive = false;
  const Vec2 hole = nodes_[slot].pos;
  const auto r = nearest_redundant(hole);
  if (!r) return {};

  const auto chain = build_chain(*r, hole);
  if (chain.empty()) {
    // Within one link (or no viable chain): degenerate cascade == direct.
    // Undo the kill flag bookkeeping done by heal_direct on re-entry.
    nodes_[slot].alive = true;
    return heal_direct(slot);
  }

  Plan plan;
  plan.feasible = true;

  // Every mover heads to its successor's *original* spot, concurrently:
  //   r -> chain[0]'s spot, chain[i] -> chain[i+1]'s spot, chain.back() -> hole.
  // Afterwards every original position is occupied except r's (surplus).
  std::vector<Vec2> old_spots;
  old_spots.reserve(chain.size());
  for (const std::size_t link : chain) old_spots.push_back(nodes_[link].pos);

  const auto move = [&](std::size_t unit, Vec2 to) {
    const double leg = geometry::distance(nodes_[unit].pos, to);
    plan.total_distance += leg;
    plan.max_leg = std::max(plan.max_leg, leg);
    plan.moves += 1;
    nodes_[unit].pos = to;
  };

  // Back-to-front so each mover's source position is still its original one.
  move(chain.back(), hole);
  for (std::size_t i = chain.size() - 1; i > 0; --i) move(chain[i - 1], old_spots[i]);
  move(*r, old_spots[0]);
  nodes_[*r].redundant = false;

  plan.makespan = plan.max_leg / config_.speed;
  return plan;
}

CascadingRelocation::Totals CascadingRelocation::run_workload(
    const std::vector<std::size_t>& failing_slots, Strategy strategy) {
  Totals totals;
  double makespan_sum = 0.0;
  for (std::size_t slot : failing_slots) {
    // A slot that failed before may have been refilled by a relocated unit;
    // the failure then strikes whichever unit sits at that position now.
    if (!nodes_[slot].alive) {
      const Vec2 spot = positions_[slot];
      std::optional<std::size_t> occupant;
      double best_d2 = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (!nodes_[i].alive) continue;
        const double d2 = geometry::distance2(nodes_[i].pos, spot);
        if (d2 < best_d2) {
          best_d2 = d2;
          occupant = i;
        }
      }
      if (!occupant) continue;  // nothing left to fail
      slot = *occupant;
    }
    ++totals.holes;
    const Plan plan = strategy == Strategy::kDirect ? heal_direct(slot)
                                                    : heal_cascading(slot);
    if (!plan.feasible) continue;
    ++totals.healed;
    totals.total_distance += plan.total_distance;
    totals.max_leg = std::max(totals.max_leg, plan.max_leg);
    makespan_sum += plan.makespan;
  }
  totals.avg_makespan = totals.healed == 0 ? 0.0
                                           : makespan_sum / static_cast<double>(totals.healed);
  return totals;
}

}  // namespace sensrep::baseline
