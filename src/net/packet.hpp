#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <variant>

#include "geometry/vec2.hpp"
#include "metrics/counters.hpp"
#include "net/node_id.hpp"

namespace sensrep::net {

/// Application-level packet kinds used by the replacement system.
enum class PacketType : std::uint8_t {
  kBeacon,               // periodic liveness beacon (one-hop)
  kLocationAnnounce,     // node/robot announces its location (init)
  kGuardianConfirm,      // guardee confirms guardian relationship (one-hop)
  kFailureReport,        // guardian -> manager, geo-routed
  kRepairRequest,        // manager -> maintainer robot, geo-routed (centralized)
  kLocationUpdate,       // robot -> manager (unicast) or -> sensors (flood)
  kReplacementAnnounce,  // freshly unloaded node announces itself (one-hop)
  kData,                 // application sensing report, geo-routed to a sink
  kReportAck,            // manager -> reporting guardian (reliable reports)
  kTaskComplete,         // maintainer -> manager: repair done, close in-flight entry
  kManagerHeartbeat,     // manager liveness flood (robot fault tolerance)
  kElection,             // failover winner -> each live robot: "I am acting manager"
  kElectionAck,          // live robot -> winner: election acknowledged
  kOwnershipTransfer,    // subarea ownership move (adoption return / handback)
};

[[nodiscard]] std::string_view to_string(PacketType t) noexcept;

/// Maps a packet type to its accounting category (paper's Fig. 4 taxonomy).
[[nodiscard]] metrics::MessageCategory category_of(PacketType t) noexcept;

// --- Payloads -------------------------------------------------------------

struct BeaconPayload {
  geometry::Vec2 location;  // beacons carry the sender's location (paper §4.2)
};

struct LocationAnnouncePayload {
  geometry::Vec2 location;
};

struct GuardianConfirmPayload {
  NodeId guardee = kNoNode;
};

struct FailureReportPayload {
  NodeId failed_node = kNoNode;
  geometry::Vec2 failed_location;
  std::uint64_t failure_id = 0;  // trace tag for metrics correlation
  geometry::Vec2 reporter_location;  // where to geo-route the ACK (if enabled)
};

struct ReportAckPayload {
  NodeId failed_node = kNoNode;  // which report is being acknowledged
};

struct RepairRequestPayload {
  NodeId failed_node = kNoNode;
  geometry::Vec2 failed_location;
  std::uint64_t failure_id = 0;
};

struct LocationUpdatePayload {
  NodeId robot = kNoNode;
  geometry::Vec2 robot_location;
  std::uint32_t update_seq = 0;  // per-robot sequence for flood dedup
  std::uint32_t queue_len = 0;   // outstanding repair tasks (queue-aware dispatch)
};

struct ReplacementAnnouncePayload {
  geometry::Vec2 location;
  NodeId replaces = kNoNode;  // id of the failed node this unit replaces
};

struct DataPayload {
  NodeId origin = kNoNode;
  std::uint32_t sample_seq = 0;
};

struct TaskCompletePayload {
  NodeId slot = kNoNode;         // the repaired sensor slot
  std::uint64_t failure_id = 0;  // closes the manager's in-flight entry
};

struct ManagerHeartbeatPayload {
  geometry::Vec2 location;       // current manager location (failover may move it)
  std::uint32_t heartbeat_seq = 0;  // flood dedup
};

struct ElectionPayload {
  NodeId winner = kNoNode;          // acting manager announcing itself
  geometry::Vec2 winner_location;   // where to send manager-plane traffic now
  std::uint32_t election_seq = 0;   // per-winner sequence (ack correlation)
  bool ack = false;                 // true => kElectionAck reply
};

struct OwnershipTransferPayload {
  std::uint32_t cell = 0;             // subarea index changing hands
  NodeId to_owner = kNoNode;          // new owner robot (or resurrected manager)
  geometry::Vec2 to_owner_location;   // where the new owner sits
  std::uint32_t transfer_seq = 0;     // per-sender sequence (retry dedup)
  bool ack = false;                   // true => delivery acknowledgement
};

using Payload =
    std::variant<BeaconPayload, LocationAnnouncePayload, GuardianConfirmPayload,
                 FailureReportPayload, RepairRequestPayload, LocationUpdatePayload,
                 ReplacementAnnouncePayload, DataPayload, ReportAckPayload,
                 TaskCompletePayload, ManagerHeartbeatPayload, ElectionPayload,
                 OwnershipTransferPayload>;

// --- Geographic routing header ---------------------------------------------

/// GPSR/GFG forwarding mode carried in the packet header.
enum class GeoMode : std::uint8_t {
  kGreedy,     // forward to the neighbor geographically closest to dst
  kPerimeter,  // face routing around a void, right-hand rule
};

/// Mutable routing state carried by geo-routed packets (GPSR header fields).
struct GeoHeader {
  GeoMode mode = GeoMode::kGreedy;
  geometry::Vec2 entry_loc;      // Lp: where the packet entered perimeter mode
  geometry::Vec2 face_entry;     // Lf: point where it entered the current face
  NodeId first_edge_from = kNoNode;  // e0: first edge walked on current face
  NodeId first_edge_to = kNoNode;    //     (revisit => undeliverable)
};

// --- Packet ----------------------------------------------------------------

/// One application packet. Copied by value along the forwarding path; the
/// payload variant is small enough that copying is cheaper than shared
/// ownership bookkeeping.
struct Packet {
  PacketType type = PacketType::kBeacon;
  NodeId src = kNoNode;                // originator
  NodeId dst = kBroadcastId;           // final destination node
  geometry::Vec2 dst_location;         // destination's (believed) location
  std::uint32_t seq = 0;               // originator-scoped sequence number
  std::uint32_t hops = 0;              // radio hops traversed so far
  std::uint32_t ttl = 64;              // forwarding budget
  GeoHeader geo;
  Payload payload;

  /// When set, transmissions of this packet are booked under this category
  /// instead of category_of(type). Initialization floods reuse the
  /// location-update machinery but are init cost, not Fig.-4 cost.
  std::optional<metrics::MessageCategory> category_override;

  [[nodiscard]] metrics::MessageCategory category() const noexcept {
    return category_override.value_or(category_of(type));
  }

  /// On-air size, bytes: conservative fixed header + type-dependent body,
  /// sized after GPSR's packet formats. Used for serialization delay only.
  [[nodiscard]] std::size_t size_bytes() const noexcept;
};

}  // namespace sensrep::net
