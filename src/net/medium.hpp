#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "chaos/link_model.hpp"
#include "geometry/spatial_hash.hpp"
#include "geometry/vec2.hpp"
#include "metrics/counters.hpp"
#include "net/packet.hpp"
#include "obs/metrics_registry.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace sensrep::net {

/// Radio / MAC parameters.
///
/// Stands in for GloMoSim's IEEE 802.11 stack (see DESIGN.md substitution 1):
/// unit-disk connectivity with per-transmitter range, serialization at the
/// nominal 11 Mbps bit-rate, uniform CSMA backoff jitter, and optional
/// Bernoulli loss with 802.11-style unicast retransmission.
struct RadioConfig {
  double bitrate_bps = 11e6;      // nominal 802.11b rate (paper §4.1)
  double max_backoff_s = 2e-3;    // CSMA contention jitter bound
  double propagation_s = 1e-6;    // ~300 m at light speed; effectively 0
  double loss_probability = 0.0;  // per-reception Bernoulli loss
  int unicast_retries = 3;        // extra attempts after a lost unicast

  /// Model collisions between overlapping *broadcast* frames at a receiver
  /// (two frames on air at once corrupt each other). Unicasts stay
  /// collision-free: 802.11 protects DATA with virtual carrier sense
  /// (RTS/CTS) and recovers residual losses with ARQ, which the
  /// loss_probability + unicast_retries knobs model. Off by default — the
  /// paper reports contention is negligible at its traffic load, and this
  /// flag exists to check that claim.
  bool model_collisions = false;

  /// Adversarial link behaviors (bursty loss, duplication, reorder jitter,
  /// partition windows). Inert by default; see chaos::ChaosConfig.
  chaos::ChaosConfig chaos;

  /// Throws std::invalid_argument on NaN / out-of-range probabilities,
  /// non-positive bitrate, negative delays/retries, or malformed chaos knobs.
  void validate() const;
};

/// The shared wireless medium.
///
/// Owns the ground-truth position/range/liveness of every transceiver and
/// performs packet delivery: a broadcast reaches every *alive* node within
/// the sender's transmission range; a unicast reaches only its target (with
/// link-layer ARQ under loss). Every radio send increments the per-category
/// transmission counter — the paper's messaging-overhead metric.
class Medium {
 public:
  /// Called on packet reception: (packet, link-layer sender).
  using ReceiveFn = std::function<void(const Packet&, NodeId from)>;

  /// `bucket_size_m` tunes the spatial index; the sensor TX range is a good
  /// choice. All references must outlive the medium.
  Medium(sim::Simulator& simulator, sim::Rng rng, RadioConfig config,
         metrics::TransmissionCounters& counters, double bucket_size_m = 63.0);

  Medium(const Medium&) = delete;
  Medium& operator=(const Medium&) = delete;

  /// Registers a transceiver. `tx_range` is this node's transmission range.
  void attach(NodeId id, geometry::Vec2 pos, double tx_range, ReceiveFn rx);

  /// Unregisters a transceiver (node permanently removed, not just failed).
  void detach(NodeId id);

  /// Moves a transceiver (robots).
  void set_position(NodeId id, geometry::Vec2 pos);

  /// Marks a node dead (failed sensor: no TX, no RX) or alive again.
  void set_alive(NodeId id, bool alive);

  [[nodiscard]] bool attached(NodeId id) const noexcept;
  [[nodiscard]] bool alive(NodeId id) const;
  [[nodiscard]] geometry::Vec2 position_of(NodeId id) const;
  [[nodiscard]] double tx_range_of(NodeId id) const;

  /// True if `receiver` is within `sender`'s transmission range (asymmetric:
  /// the paper's robots transmit 250 m but sensors only 63 m).
  [[nodiscard]] bool in_range(NodeId sender, NodeId receiver) const;

  /// Alive nodes within the sender's TX range, excluding the sender,
  /// ascending id order.
  [[nodiscard]] std::vector<NodeId> neighbors_of(NodeId sender) const;

  /// Alive nodes within `radius` of `pos`, ascending id order.
  [[nodiscard]] std::vector<NodeId> nodes_near(geometry::Vec2 pos, double radius) const;

  /// One-hop broadcast. Counts one transmission; schedules delivery to every
  /// alive node in range after serialization + backoff delay.
  void broadcast(NodeId sender, Packet pkt);

  /// Link-layer unicast with ARQ. Counts one transmission per attempt.
  /// Returns true if the frame was accepted for delivery (target alive, in
  /// range, and not all attempts lost) — modeling the 802.11 ACK the sender
  /// observes synchronously at this abstraction level.
  bool unicast(NodeId sender, NodeId target, Packet pkt);

  [[nodiscard]] const metrics::TransmissionCounters& counters() const noexcept {
    return *counters_;
  }

  /// Books transmissions that are modeled analytically rather than as
  /// delivered frames (beacons; see DESIGN.md substitution 3).
  void account(metrics::MessageCategory c, std::uint64_t n = 1) noexcept {
    counters_->add(c, n);
    obs::Metrics::net_tx(static_cast<std::size_t>(c), n);
  }

  /// Total frames handed to receivers (diagnostics).
  [[nodiscard]] std::uint64_t deliveries() const noexcept { return deliveries_; }

  /// Broadcast frames destroyed by collisions (model_collisions only).
  [[nodiscard]] std::uint64_t collisions() const noexcept { return collisions_; }

  /// Receptions dropped by the chaos burst-loss model.
  [[nodiscard]] std::uint64_t chaos_drops() const noexcept { return chaos_drops_; }

  /// Duplicate copies injected by the chaos duplication model.
  [[nodiscard]] std::uint64_t chaos_duplicates() const noexcept { return chaos_duplicates_; }

  /// Send/receive opportunities suppressed by an active partition window.
  [[nodiscard]] std::uint64_t chaos_jams() const noexcept { return chaos_jams_; }

  /// True when any adversarial link behavior is active.
  [[nodiscard]] bool chaos_active() const noexcept { return chaos_ != nullptr; }

 private:
  struct Transceiver {
    geometry::Vec2 pos;
    double tx_range = 0.0;
    bool alive = true;
    bool attached = false;
    ReceiveFn rx;
  };

  [[nodiscard]] const Transceiver& get(NodeId id) const;
  [[nodiscard]] Transceiver& get(NodeId id);
  [[nodiscard]] sim::Duration frame_delay(const Packet& pkt) noexcept;
  [[nodiscard]] sim::Duration serialization_time(const Packet& pkt) const noexcept;
  void deliver_later(NodeId to, Packet pkt, NodeId from, sim::Duration delay,
                     bool collidable = false);

  /// Delivery front-end applying the chaos duplication/jitter models; falls
  /// through to deliver_later() unchanged when chaos is off.
  void deliver_chaotic(NodeId to, const Packet& pkt, NodeId from,
                       sim::Duration delay, bool collidable = false);

  /// True when `id` is jammed by an active partition window right now.
  [[nodiscard]] bool jammed_now(NodeId id, const Transceiver& t) const noexcept;

  /// A frame's on-air interval at one receiver, with a corruption flag
  /// shared between the scheduler and the delivery event.
  struct PendingArrival {
    sim::SimTime start;
    sim::SimTime end;
    std::shared_ptr<bool> corrupted;
  };

  sim::Simulator* sim_;
  sim::Rng rng_;
  RadioConfig config_;
  metrics::TransmissionCounters* counters_;
  geometry::SpatialHash index_;
  /// Dense table indexed by NodeId (ids are dense: sensors [0, n), robots and
  /// the manager right above). Hot delivery paths index straight into it
  /// instead of hashing per receiver.
  std::vector<Transceiver> nodes_;
  std::unordered_map<NodeId, std::vector<PendingArrival>> pending_;
  std::uint64_t deliveries_ = 0;
  std::uint64_t collisions_ = 0;
  std::unique_ptr<chaos::LinkModel> chaos_;  // null unless chaos configured
  std::uint64_t chaos_drops_ = 0;
  std::uint64_t chaos_duplicates_ = 0;
  std::uint64_t chaos_jams_ = 0;
};

}  // namespace sensrep::net
