#pragma once

#include <cstdint>

namespace sensrep::net {

/// Network-wide node identifier. Sensors, robots and the central manager
/// share one id space (they share one wireless medium).
using NodeId = std::uint32_t;

/// "No node" sentinel (unset fields, failed lookups).
inline constexpr NodeId kNoNode = 0xFFFFFFFFu;

/// Link-layer broadcast destination (one-hop).
inline constexpr NodeId kBroadcastId = 0xFFFFFFFEu;

[[nodiscard]] constexpr bool is_real_node(NodeId id) noexcept {
  return id != kNoNode && id != kBroadcastId;
}

}  // namespace sensrep::net
