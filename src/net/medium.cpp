#include "net/medium.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace sensrep::net {

using geometry::Vec2;

// obs cannot see metrics::MessageCategory (sensrep_metrics links against
// sensrep_obs, not the reverse), so its label table is a mirror. This TU sees
// both headers: pin the sizes together; metrics_plane_test pins the names.
static_assert(obs::kNetCategories ==
                  static_cast<std::size_t>(metrics::MessageCategory::kCount),
              "obs::kCategoryLabel must mirror metrics::MessageCategory");

namespace {
inline std::size_t cat_index(const Packet& pkt) noexcept {
  return static_cast<std::size_t>(pkt.category());
}
}  // namespace

void RadioConfig::validate() const {
  // Negated comparisons so NaN fails every test.
  if (!(bitrate_bps > 0.0) || !std::isfinite(bitrate_bps)) {
    throw std::invalid_argument("RadioConfig: bitrate must be positive and finite");
  }
  if (!(max_backoff_s >= 0.0) || !std::isfinite(max_backoff_s)) {
    throw std::invalid_argument("RadioConfig: max_backoff must be finite and non-negative");
  }
  if (!(propagation_s >= 0.0) || !std::isfinite(propagation_s)) {
    throw std::invalid_argument("RadioConfig: propagation delay must be finite and non-negative");
  }
  if (!(loss_probability >= 0.0 && loss_probability <= 1.0)) {
    throw std::invalid_argument("RadioConfig: loss probability must be in [0, 1]");
  }
  if (unicast_retries < 0) {
    throw std::invalid_argument("RadioConfig: unicast retries must be non-negative");
  }
  chaos.validate();
}

Medium::Medium(sim::Simulator& simulator, sim::Rng rng, RadioConfig config,
               metrics::TransmissionCounters& counters, double bucket_size_m)
    : sim_(&simulator),
      rng_(rng),
      config_(config),
      counters_(&counters),
      index_(bucket_size_m) {
  config_.validate();
  if (config_.chaos.any_enabled()) {
    // fork() is a pure function of (seed, name): instantiating the chaos
    // model never perturbs the medium's existing backoff/loss draw streams.
    chaos_ = std::make_unique<chaos::LinkModel>(config_.chaos, rng_);
  }
}

void Medium::attach(NodeId id, Vec2 pos, double tx_range, ReceiveFn rx) {
  if (!is_real_node(id)) throw std::invalid_argument("Medium::attach: reserved id");
  if (tx_range <= 0.0) throw std::invalid_argument("Medium::attach: non-positive range");
  if (id >= nodes_.size()) nodes_.resize(id + 1);
  if (nodes_[id].attached) throw std::invalid_argument("Medium::attach: duplicate id");
  nodes_[id] = Transceiver{pos, tx_range, true, true, std::move(rx)};
  index_.upsert(id, pos);
}

void Medium::detach(NodeId id) {
  if (id < nodes_.size()) nodes_[id] = Transceiver{};
  index_.erase(id);
}

const Medium::Transceiver& Medium::get(NodeId id) const {
  if (id >= nodes_.size() || !nodes_[id].attached) {
    throw std::out_of_range("Medium: unknown node");
  }
  return nodes_[id];
}

Medium::Transceiver& Medium::get(NodeId id) {
  if (id >= nodes_.size() || !nodes_[id].attached) {
    throw std::out_of_range("Medium: unknown node");
  }
  return nodes_[id];
}

void Medium::set_position(NodeId id, Vec2 pos) {
  get(id).pos = pos;
  index_.upsert(id, pos);
}

void Medium::set_alive(NodeId id, bool alive_flag) { get(id).alive = alive_flag; }

bool Medium::attached(NodeId id) const noexcept {
  return id < nodes_.size() && nodes_[id].attached;
}

bool Medium::alive(NodeId id) const { return get(id).alive; }

Vec2 Medium::position_of(NodeId id) const { return get(id).pos; }

double Medium::tx_range_of(NodeId id) const { return get(id).tx_range; }

bool Medium::in_range(NodeId sender, NodeId receiver) const {
  const Transceiver& s = get(sender);
  const Transceiver& r = get(receiver);
  return geometry::distance2(s.pos, r.pos) <= s.tx_range * s.tx_range;
}

std::vector<NodeId> Medium::neighbors_of(NodeId sender) const {
  const Transceiver& s = get(sender);
  std::vector<NodeId> out;
  for (const NodeId id : index_.query_ball(s.pos, s.tx_range)) {
    if (id == sender) continue;
    if (!nodes_[id].alive) continue;
    out.push_back(id);
  }
  return out;
}

std::vector<NodeId> Medium::nodes_near(Vec2 pos, double radius) const {
  std::vector<NodeId> out;
  for (const NodeId id : index_.query_ball(pos, radius)) {
    if (nodes_[id].alive) out.push_back(id);
  }
  return out;
}

sim::Duration Medium::serialization_time(const Packet& pkt) const noexcept {
  return static_cast<double>(pkt.size_bytes()) * 8.0 / config_.bitrate_bps;
}

sim::Duration Medium::frame_delay(const Packet& pkt) noexcept {
  const double backoff = rng_.uniform(0.0, config_.max_backoff_s);
  return serialization_time(pkt) + config_.propagation_s + backoff;
}

void Medium::deliver_later(NodeId to, Packet pkt, NodeId from, sim::Duration delay,
                           bool collidable) {
  pkt.hops += 1;

  std::shared_ptr<bool> corrupted;
  if (config_.model_collisions && collidable) {
    // The frame occupies the receiver's channel for its serialization time,
    // ending at the delivery instant. Any overlapping frame corrupts both.
    const sim::SimTime end = sim_->now() + delay;
    const sim::SimTime start = end - serialization_time(pkt);
    corrupted = std::make_shared<bool>(false);
    auto& slots = pending_[to];
    // Prune expired windows while scanning for overlaps.
    std::erase_if(slots, [now = sim_->now()](const PendingArrival& a) {
      return a.end < now;
    });
    for (PendingArrival& a : slots) {
      if (a.start < end && start < a.end) {
        *a.corrupted = true;
        *corrupted = true;
      }
    }
    slots.push_back({start, end, corrupted});
  }

  sim_->in(delay, [this, to, pkt = std::move(pkt), from, corrupted] {
    if (corrupted && *corrupted) {
      ++collisions_;
      obs::Metrics::inc(obs::Counter::kNetCollisions);
      return;
    }
    if (to >= nodes_.size()) return;
    const Transceiver& r = nodes_[to];
    if (!r.attached || !r.alive) return;  // detached or died in flight
    ++deliveries_;
    obs::Metrics::net_rx(cat_index(pkt));
    if (r.rx) r.rx(pkt, from);
  });
}

bool Medium::jammed_now(NodeId id, const Transceiver& t) const noexcept {
  return chaos_ && chaos_->jammed(sim_->now(), id, t.pos);
}

void Medium::deliver_chaotic(NodeId to, const Packet& pkt, NodeId from,
                             sim::Duration delay, bool collidable) {
  if (!chaos_) {
    deliver_later(to, pkt, from, delay, collidable);
    return;
  }
  const sim::Duration jittered = delay + chaos_->jitter();
  deliver_later(to, pkt, from, jittered, collidable);
  if (chaos_->duplicate()) {
    // A duplicate is a reception artifact (stale frame, reflection), not a
    // retransmission: it costs no counted transmission and lands late enough
    // to reorder against subsequent traffic.
    ++chaos_duplicates_;
    obs::Metrics::inc(obs::Counter::kNetChaosDuplicates);
    deliver_later(to, pkt, from, jittered + chaos_->duplicate_delay(), collidable);
  }
}

void Medium::broadcast(NodeId sender, Packet pkt) {
  const Transceiver& s = get(sender);
  assert(s.alive && "dead node cannot transmit");
  counters_->add(pkt.category());
  obs::Metrics::net_tx(cat_index(pkt));
  if (jammed_now(sender, s)) {
    // A jammed sender still burns the transmission; nobody hears it.
    ++chaos_jams_;
    obs::Metrics::inc(obs::Counter::kNetChaosJams);
    return;
  }
  const sim::Duration delay = frame_delay(pkt);
  for (const NodeId id : index_.query_ball(s.pos, s.tx_range)) {
    if (id == sender) continue;
    const Transceiver& r = nodes_[id];
    if (!r.alive) continue;
    if (config_.loss_probability > 0.0 && rng_.chance(config_.loss_probability)) {
      obs::Metrics::inc(obs::Counter::kNetLossDrops);
      continue;
    }
    if (chaos_) {
      if (jammed_now(id, r)) {
        ++chaos_jams_;
        obs::Metrics::inc(obs::Counter::kNetChaosJams);
        continue;
      }
      if (chaos_->burst_drop()) {
        ++chaos_drops_;
        obs::Metrics::inc(obs::Counter::kNetChaosDrops);
        continue;
      }
    }
    deliver_chaotic(id, pkt, sender, delay, /*collidable=*/true);
  }
}

bool Medium::unicast(NodeId sender, NodeId target, Packet pkt) {
  const Transceiver& s = get(sender);
  assert(s.alive && "dead node cannot transmit");
  (void)s;
  const Transceiver* t =
      target < nodes_.size() && nodes_[target].attached ? &nodes_[target] : nullptr;
  const bool reachable = t != nullptr && t->alive && in_range(sender, target);

  // An active partition behaves like loss = 1, not like a missing node: every
  // ARQ attempt is still burned (and counted) before the sender gives up.
  bool jammed = false;
  if (chaos_ &&
      (jammed_now(sender, s) || (t != nullptr && jammed_now(target, *t)))) {
    jammed = true;
    ++chaos_jams_;
    obs::Metrics::inc(obs::Counter::kNetChaosJams);
  }

  // 802.11-style ARQ: each attempt is one counted transmission; the sender
  // learns of success/failure via the (implicit) link-layer ACK. A missing
  // ACK (unreachable target or loss) triggers a retry up to the budget.
  const int attempts = 1 + config_.unicast_retries;
  for (int a = 0; a < attempts; ++a) {
    counters_->add(pkt.category());
    obs::Metrics::net_tx(cat_index(pkt));
    bool lost =
        config_.loss_probability > 0.0 && rng_.chance(config_.loss_probability);
    if (lost) obs::Metrics::inc(obs::Counter::kNetLossDrops);
    if (chaos_ && chaos_->burst_drop()) {  // advances the GE chain per attempt
      ++chaos_drops_;
      obs::Metrics::inc(obs::Counter::kNetChaosDrops);
      lost = true;
    }
    if (reachable && !jammed && !lost) {
      deliver_chaotic(target, pkt, sender, frame_delay(pkt));
      return true;
    }
    if (!reachable && config_.loss_probability == 0.0) return false;  // deterministic: retrying is futile
  }
  return false;
}

}  // namespace sensrep::net
