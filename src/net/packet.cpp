#include "net/packet.hpp"

namespace sensrep::net {

std::string_view to_string(PacketType t) noexcept {
  switch (t) {
    case PacketType::kBeacon: return "beacon";
    case PacketType::kLocationAnnounce: return "location_announce";
    case PacketType::kGuardianConfirm: return "guardian_confirm";
    case PacketType::kFailureReport: return "failure_report";
    case PacketType::kRepairRequest: return "repair_request";
    case PacketType::kLocationUpdate: return "location_update";
    case PacketType::kReplacementAnnounce: return "replacement_announce";
    case PacketType::kData: return "data";
    case PacketType::kReportAck: return "report_ack";
    case PacketType::kTaskComplete: return "task_complete";
    case PacketType::kManagerHeartbeat: return "manager_heartbeat";
    case PacketType::kElection: return "election";
    case PacketType::kElectionAck: return "election_ack";
    case PacketType::kOwnershipTransfer: return "ownership_transfer";
  }
  return "?";
}

metrics::MessageCategory category_of(PacketType t) noexcept {
  using metrics::MessageCategory;
  switch (t) {
    case PacketType::kBeacon: return MessageCategory::kBeacon;
    case PacketType::kLocationAnnounce: return MessageCategory::kInitialization;
    case PacketType::kGuardianConfirm: return MessageCategory::kGuardianConfirm;
    case PacketType::kFailureReport: return MessageCategory::kFailureReport;
    case PacketType::kRepairRequest: return MessageCategory::kRepairRequest;
    case PacketType::kLocationUpdate: return MessageCategory::kLocationUpdate;
    case PacketType::kReplacementAnnounce: return MessageCategory::kReplacement;
    case PacketType::kData: return MessageCategory::kData;
    case PacketType::kReportAck: return MessageCategory::kFailureReport;
    case PacketType::kTaskComplete: return MessageCategory::kFaultTolerance;
    case PacketType::kManagerHeartbeat: return MessageCategory::kFaultTolerance;
    case PacketType::kElection: return MessageCategory::kFaultTolerance;
    case PacketType::kElectionAck: return MessageCategory::kFaultTolerance;
    case PacketType::kOwnershipTransfer: return MessageCategory::kFaultTolerance;
  }
  return MessageCategory::kOther;
}

std::size_t Packet::size_bytes() const noexcept {
  // IP header (20) + IP option with destination coordinates (12, paper §4.2)
  // + application body.
  constexpr std::size_t kHeader = 32;
  switch (type) {
    case PacketType::kBeacon: return kHeader + 8;
    case PacketType::kLocationAnnounce: return kHeader + 16;
    case PacketType::kGuardianConfirm: return kHeader + 8;
    case PacketType::kFailureReport: return kHeader + 24;
    case PacketType::kRepairRequest: return kHeader + 24;
    case PacketType::kLocationUpdate: return kHeader + 24;
    case PacketType::kReplacementAnnounce: return kHeader + 20;
    case PacketType::kData: return kHeader + 48;  // sensing sample
    case PacketType::kReportAck: return kHeader + 8;
    case PacketType::kTaskComplete: return kHeader + 16;
    case PacketType::kManagerHeartbeat: return kHeader + 20;
    case PacketType::kElection: return kHeader + 24;
    case PacketType::kElectionAck: return kHeader + 12;
    case PacketType::kOwnershipTransfer: return kHeader + 24;
  }
  return kHeader;
}

}  // namespace sensrep::net
