#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "geometry/rect.hpp"
#include "geometry/vec2.hpp"

namespace sensrep::spatial {

/// Bounded uniform-grid bucket index over point objects.
///
/// Unlike geometry::SpatialHash (an unbounded hash map keyed by quantized
/// coordinates), this grid is sized once from a known field rectangle and
/// stores its buckets in a flat row-major vector, which makes whole-index
/// iteration deterministic and cheap: cell-major (row-major over cells),
/// then insertion order within a cell. Points outside the bounds are clamped
/// into the border cells, so the index never rejects a position — exact
/// distances are always computed from the true stored position, never from
/// the cell.
///
/// Determinism contract (docs/SPATIAL.md):
///  * for_each visits entries in cell-major, then insertion order;
///  * within_radius / in_rect return ids in ascending order;
///  * nearest breaks distance ties by lowest id, and the distance key is
///    configurable (squared distance, or the floating-point sqrt distance)
///    so a grid-backed query can reproduce a brute-force scan's comparator
///    bit for bit.
template <typename Id>
class UniformGrid2D {
 public:
  struct Entry {
    Id id;
    geometry::Vec2 pos;
  };

  UniformGrid2D(geometry::Rect bounds, double cell_size)
      : bounds_(bounds), cell_(cell_size) {
    if (!(cell_size > 0.0)) {
      throw std::invalid_argument("UniformGrid2D: cell_size must be positive");
    }
    if (bounds.width() < 0.0 || bounds.height() < 0.0) {
      throw std::invalid_argument("UniformGrid2D: bounds must be a valid Rect");
    }
    cols_ = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(bounds.width() / cell_size)));
    rows_ = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(bounds.height() / cell_size)));
    cells_.resize(cols_ * rows_);
  }

  [[nodiscard]] const geometry::Rect& bounds() const noexcept { return bounds_; }
  [[nodiscard]] double cell_size() const noexcept { return cell_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t size() const noexcept { return positions_.size(); }
  [[nodiscard]] bool empty() const noexcept { return positions_.empty(); }

  [[nodiscard]] bool contains(Id id) const noexcept {
    return positions_.count(id) != 0;
  }

  /// Current stored position. Requires contains(id).
  [[nodiscard]] geometry::Vec2 position(Id id) const {
    const auto it = positions_.find(id);
    if (it == positions_.end()) {
      throw std::out_of_range("UniformGrid2D::position: unknown id");
    }
    return it->second;
  }

  /// Adds a new object. Throws if the id is already present (use move()).
  void insert(Id id, geometry::Vec2 pos) {
    if (!positions_.emplace(id, pos).second) {
      throw std::logic_error("UniformGrid2D::insert: id already present");
    }
    cells_[cell_index(pos)].push_back(Entry{id, pos});
  }

  /// Removes an object; no-op if absent.
  void remove(Id id) {
    const auto it = positions_.find(id);
    if (it == positions_.end()) return;
    erase_from_cell(id, it->second);
    positions_.erase(it);
  }

  /// Relocates an existing object. Throws if the id is absent.
  void move(Id id, geometry::Vec2 new_pos) {
    const auto it = positions_.find(id);
    if (it == positions_.end()) {
      throw std::out_of_range("UniformGrid2D::move: unknown id");
    }
    const std::size_t old_cell = cell_index(it->second);
    const std::size_t new_cell = cell_index(new_pos);
    if (old_cell == new_cell) {
      // Same bucket: refresh the stored position in place (keeps insertion
      // order, which the determinism contract pins).
      for (Entry& e : cells_[old_cell]) {
        if (e.id == id) {
          e.pos = new_pos;
          break;
        }
      }
    } else {
      erase_from_cell(id, it->second);
      cells_[new_cell].push_back(Entry{id, new_pos});
    }
    it->second = new_pos;
  }

  /// Relocation with the caller's belief of the old position; throws if it
  /// disagrees with the stored one (a desync means a call site forgot an
  /// update — fail loudly rather than silently corrupt the index).
  void move(Id id, geometry::Vec2 old_pos, geometry::Vec2 new_pos) {
    const auto it = positions_.find(id);
    if (it == positions_.end()) {
      throw std::out_of_range("UniformGrid2D::move: unknown id");
    }
    if (it->second != old_pos) {
      throw std::logic_error("UniformGrid2D::move: stale old_pos (index desync)");
    }
    move(id, new_pos);
  }

  /// Nearest accepted object under the squared-distance key (ties by lowest
  /// id). `accept(id)` filters candidates (e.g. "not presumed dead").
  template <typename Filter>
  [[nodiscard]] std::optional<Id> nearest(geometry::Vec2 p, Filter&& accept) const {
    return nearest_impl(p, accept, [](double d2) { return d2; });
  }

  [[nodiscard]] std::optional<Id> nearest(geometry::Vec2 p) const {
    return nearest(p, [](Id) { return true; });
  }

  /// Nearest accepted object under the *computed Euclidean distance* key —
  /// fl(sqrt(d2)) — which is what brute-force scans using
  /// geometry::distance() compare. sqrt compresses ULP spacing, so two
  /// different squared distances can round to the same sqrt; matching the
  /// brute comparator exactly is what keeps goldens byte-identical.
  template <typename Filter>
  [[nodiscard]] std::optional<Id> nearest_euclid(geometry::Vec2 p,
                                                 Filter&& accept) const {
    return nearest_impl(p, accept, [](double d2) { return std::sqrt(d2); });
  }

  /// Ids within the closed ball (fl(d2) <= fl(r*r), the SpatialHash
  /// predicate), ascending.
  [[nodiscard]] std::vector<Id> within_radius(geometry::Vec2 p, double r) const {
    std::vector<Id> out;
    const double r2 = r * r;
    for_each_candidate(p, r, [&](Id id, geometry::Vec2 pos) {
      if (geometry::distance2(pos, p) <= r2) out.push_back(id);
    });
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Ids inside the closed rectangle, ascending.
  [[nodiscard]] std::vector<Id> in_rect(const geometry::Rect& r) const {
    std::vector<Id> out;
    const auto [lo_x, lo_y] = cell_coords(r.min);
    const auto [hi_x, hi_y] = cell_coords(r.max);
    for (std::size_t cy = lo_y; cy <= hi_y; ++cy) {
      for (std::size_t cx = lo_x; cx <= hi_x; ++cx) {
        for (const Entry& e : cells_[cy * cols_ + cx]) {
          if (r.contains(e.pos)) out.push_back(e.id);
        }
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Visits every entry in cell-major (row-major over cells), then insertion
  /// order. fn(id, pos).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& cell : cells_) {
      for (const Entry& e : cell) fn(e.id, e.pos);
    }
  }

  /// Visits every entry in the cells overlapping the disc of radius `r`
  /// around `p`, padded by one cell on each side so clamped border points
  /// and FP-boundary cells are never missed. A superset of the disc's
  /// entries: callers apply their own exact predicate. fn(id, pos).
  template <typename Fn>
  void for_each_candidate(geometry::Vec2 p, double r, Fn&& fn) const {
    const auto [lo_x, lo_y] = cell_coords({p.x - r, p.y - r});
    const auto [hi_x, hi_y] = cell_coords({p.x + r, p.y + r});
    const std::size_t x0 = lo_x > 0 ? lo_x - 1 : 0;
    const std::size_t y0 = lo_y > 0 ? lo_y - 1 : 0;
    const std::size_t x1 = std::min(cols_ - 1, hi_x + 1);
    const std::size_t y1 = std::min(rows_ - 1, hi_y + 1);
    for (std::size_t cy = y0; cy <= y1; ++cy) {
      for (std::size_t cx = x0; cx <= x1; ++cx) {
        for (const Entry& e : cells_[cy * cols_ + cx]) fn(e.id, e.pos);
      }
    }
  }

 private:
  [[nodiscard]] std::pair<std::size_t, std::size_t> cell_coords(
      geometry::Vec2 p) const noexcept {
    // Out-of-bounds points land in the border cells (clamp before the cast:
    // a negative double to unsigned cast is UB).
    const double fx = std::floor((p.x - bounds_.min.x) / cell_);
    const double fy = std::floor((p.y - bounds_.min.y) / cell_);
    const auto clamp_to = [](double f, std::size_t n) {
      if (!(f > 0.0)) return std::size_t{0};
      const auto i = static_cast<std::size_t>(f);
      return std::min(i, n - 1);
    };
    return {clamp_to(fx, cols_), clamp_to(fy, rows_)};
  }

  [[nodiscard]] std::size_t cell_index(geometry::Vec2 p) const noexcept {
    const auto [cx, cy] = cell_coords(p);
    return cy * cols_ + cx;
  }

  void erase_from_cell(Id id, geometry::Vec2 pos) {
    auto& cell = cells_[cell_index(pos)];
    for (auto it = cell.begin(); it != cell.end(); ++it) {
      if (it->id == id) {
        cell.erase(it);  // preserves the insertion order of the rest
        return;
      }
    }
  }

  template <typename Filter, typename KeyFn>
  [[nodiscard]] std::optional<Id> nearest_impl(geometry::Vec2 p, Filter& accept,
                                               KeyFn key) const {
    if (positions_.empty()) return std::nullopt;
    const auto [cx, cy] = cell_coords(p);
    bool found = false;
    Id best{};
    double best_key = std::numeric_limits<double>::infinity();
    double best_d2 = std::numeric_limits<double>::infinity();
    const auto consider = [&](const Entry& e) {
      if (!accept(e.id)) return;
      const double d2 = geometry::distance2(e.pos, p);
      // Clear losers skip the key transform: fl(sqrt) halves relative ulp
      // spacing, so it can only merge two keys whose squared distances are
      // within ~4.6e-16 relative — far inside this guard. Anything beyond
      // it is strictly farther under either key and can neither win the
      // comparison nor reach the id tie-break.
      if (found && d2 > best_d2 * (1.0 + 1e-14)) return;
      const double k = key(d2);
      if (!found || k < best_key || (k == best_key && e.id < best)) {
        found = true;
        best = e.id;
        best_key = k;
        best_d2 = d2;
      }
    };
    // Expanding Chebyshev ring search. Any entry in a ring-r cell is at true
    // distance >= (r-1)*cell from p — an exact geometric bound (p can sit
    // anywhere inside its own cell). The termination compares against that
    // bound with a two-sided 1e-9 relative margin, which towers over every
    // floating-point hazard (distance2 rounds within a few ulps ~ 2e-16
    // relative, and fl(sqrt) can only merge keys whose squared distances
    // are within ~4e-16 relative): once the deflated bound exceeds the
    // inflated best, every unvisited entry is *strictly* farther under
    // either key, so it can neither win nor tie.
    // Rings 0 and 1 are fused into one clamped 3x3 block sweep — the common
    // case resolves next door, and the result is visit-order independent
    // (strict key comparison with the id tie-break).
    const std::size_t bx0 = cx > 0 ? cx - 1 : 0;
    const std::size_t bx1 = std::min(cols_ - 1, cx + 1);
    const std::size_t by0 = cy > 0 ? cy - 1 : 0;
    const std::size_t by1 = std::min(rows_ - 1, cy + 1);
    for (std::size_t y = by0; y <= by1; ++y) {
      for (std::size_t x = bx0; x <= bx1; ++x) {
        for (const Entry& e : cells_[y * cols_ + x]) consider(e);
      }
    }
    const std::size_t max_ring =
        std::max(std::max(cx, cols_ - 1 - cx), std::max(cy, rows_ - 1 - cy));
    for (std::size_t ring = 2; ring <= max_ring; ++ring) {
      if (found) {
        const double ring_floor =
            (static_cast<double>(ring) - 1.0) * cell_ * (1.0 - 1e-9);
        if (ring_floor * ring_floor > best_d2 * (1.0 + 1e-9)) break;
      }
      visit_ring(cx, cy, ring, consider);
    }
    if (!found) return std::nullopt;
    return best;
  }

  template <typename Fn>
  void visit_ring(std::size_t cx, std::size_t cy, std::size_t ring, Fn& fn) const {
    const auto visit_cell = [&](std::size_t x, std::size_t y) {
      for (const Entry& e : cells_[y * cols_ + x]) fn(e);
    };
    if (ring == 0) {
      visit_cell(cx, cy);
      return;
    }
    const std::size_t x0 = cx >= ring ? cx - ring : 0;
    const std::size_t x1 = std::min(cols_ - 1, cx + ring);
    const std::size_t y0 = cy >= ring ? cy - ring : 0;
    const std::size_t y1 = std::min(rows_ - 1, cy + ring);
    const bool top = cy >= ring;           // row y0 really is the ring's top
    const bool bottom = cy + ring <= rows_ - 1;
    const bool left = cx >= ring;
    const bool right = cx + ring <= cols_ - 1;
    if (top) {
      for (std::size_t x = x0; x <= x1; ++x) visit_cell(x, y0);
    }
    if (bottom) {
      for (std::size_t x = x0; x <= x1; ++x) visit_cell(x, y1);
    }
    const std::size_t ry0 = top ? y0 + 1 : y0;
    const std::size_t ry1 = bottom ? y1 - 1 : y1;
    if (ry0 <= ry1 && ry1 != std::numeric_limits<std::size_t>::max()) {
      if (left) {
        for (std::size_t y = ry0; y <= ry1; ++y) visit_cell(x0, y);
      }
      if (right) {
        for (std::size_t y = ry0; y <= ry1; ++y) visit_cell(x1, y);
      }
    }
  }

  geometry::Rect bounds_;
  double cell_;
  std::size_t cols_ = 0;
  std::size_t rows_ = 0;
  std::vector<std::vector<Entry>> cells_;
  std::unordered_map<Id, geometry::Vec2> positions_;
};

}  // namespace sensrep::spatial
