#pragma once

#include <functional>
#include <ostream>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace sensrep::metrics {

/// Append-only (time, value) series with step semantics: the recorded value
/// holds until the next sample. Used for coverage-over-time, queue depths,
/// alive counts — anything the examples plot against the virtual clock.
///
/// Samples must be added in nondecreasing time order (enforced).
class TimeSeries {
 public:
  void add(sim::SimTime t, double value);

  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }
  [[nodiscard]] const std::vector<std::pair<sim::SimTime, double>>& points() const noexcept {
    return points_;
  }

  /// Value in force at time t (the last sample at or before t).
  /// Requires !empty() and t >= first sample time.
  [[nodiscard]] double value_at(sim::SimTime t) const;

  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Time-weighted mean over [t0, t1] under step semantics.
  /// Requires t0 < t1 and samples covering t0.
  [[nodiscard]] double time_weighted_mean(sim::SimTime t0, sim::SimTime t1) const;

  /// Retention window for long-running series (service mode): drops samples
  /// that stopped being in force before `t`. The sample in force at `t`
  /// survives, so value_at()/time_weighted_mean() stay valid for every
  /// instant >= t; only queries into the dropped past become invalid.
  void drop_before(sim::SimTime t);

  /// Samples removed by drop_before() since construction.
  [[nodiscard]] std::size_t dropped() const noexcept { return dropped_; }

  /// Writes "t,<name>" rows (with header) as CSV.
  void write_csv(std::ostream& out, std::string_view name) const;

 private:
  std::vector<std::pair<sim::SimTime, double>> points_;
  std::size_t dropped_ = 0;
};

/// Samples `probe` every `period` seconds into `series` (first sample at
/// now()+period). Cancel with the returned id. All references must outlive
/// the sampling.
sim::EventId sample_periodically(sim::Simulator& simulator, sim::Duration period,
                                 TimeSeries& series, std::function<double()> probe);

}  // namespace sensrep::metrics
