#include "metrics/failure_log.hpp"

#include <algorithm>

namespace sensrep::metrics {

FailureLog::FailureId FailureLog::open(std::uint32_t node_id, sim::SimTime failed_at) {
  FailureRecord rec;
  rec.node_id = node_id;
  rec.failed_at = failed_at;
  records_.push_back(rec);
  return records_.size() - 1;
}

std::size_t FailureLog::repaired_count() const noexcept {
  return static_cast<std::size_t>(std::count_if(
      records_.begin(), records_.end(), [](const FailureRecord& r) { return r.repaired(); }));
}

std::size_t FailureLog::detected_count() const noexcept {
  return static_cast<std::size_t>(std::count_if(
      records_.begin(), records_.end(), [](const FailureRecord& r) { return r.detected(); }));
}

}  // namespace sensrep::metrics
