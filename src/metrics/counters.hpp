#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace sensrep::metrics {

/// Taxonomy of wireless transmissions, matching the paper's messaging
/// breakdown (§4.3.2): initialization, failure detection (beacons), failure
/// report, and robot location update; plus the repair-request forwarding leg
/// that exists only in the centralized algorithm and bookkeeping categories.
enum class MessageCategory : std::uint8_t {
  kInitialization,    // location broadcasts / floods during setup
  kBeacon,            // periodic failure-detection beacons
  kGuardianConfirm,   // guardee -> guardian relationship confirmation
  kFailureReport,     // guardian -> manager failure report (all hops)
  kRepairRequest,     // manager -> robot forwarding (centralized only)
  kLocationUpdate,    // robot location updates (unicast hops + flood relays)
  kReplacement,       // new-node announcement and neighbor repair traffic
  kData,              // application sensing reports (data-collection workload)
  kFaultTolerance,    // robot liveness: manager heartbeats, task-complete, failover
  kOther,
  kCount,
};

/// Human-readable name for a category (stable; used in CSV headers).
[[nodiscard]] std::string_view to_string(MessageCategory c) noexcept;

/// Per-category transmission counters.
///
/// A "transmission" is one radio send (the paper's Fig. 4 metric); a packet
/// relayed over h hops therefore costs h transmissions.
class TransmissionCounters {
 public:
  void add(MessageCategory c, std::uint64_t n = 1) noexcept {
    counts_[static_cast<std::size_t>(c)] += n;
  }

  [[nodiscard]] std::uint64_t get(MessageCategory c) const noexcept {
    return counts_[static_cast<std::size_t>(c)];
  }

  [[nodiscard]] std::uint64_t total() const noexcept;

  void reset() noexcept { counts_.fill(0); }

 private:
  std::array<std::uint64_t, static_cast<std::size_t>(MessageCategory::kCount)> counts_{};
};

}  // namespace sensrep::metrics
