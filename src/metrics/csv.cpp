#include "metrics/csv.hpp"

#include <charconv>

namespace sensrep::metrics {

void CsvWriter::row(std::initializer_list<std::string_view> cells) {
  std::vector<std::string> rendered;
  rendered.reserve(cells.size());
  for (const auto c : cells) rendered.emplace_back(c);
  write_row(rendered);
}

std::string CsvWriter::to_cell(double v) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  return ec == std::errc{} ? std::string(buf, ptr) : std::string("nan");
}

std::string CsvWriter::escape(std::string_view cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(cell);
  std::string out;
  out.reserve(cell.size() + 2);
  out.push_back('"');
  for (const char c : cell) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  bool first = true;
  for (const auto& c : cells) {
    if (!first) (*out_) << ',';
    (*out_) << escape(c);
    first = false;
  }
  (*out_) << '\n';
}

}  // namespace sensrep::metrics
