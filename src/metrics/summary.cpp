#include "metrics/summary.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace sensrep::metrics {

void Summary::add(double x) {
  samples_.push_back(x);
  sorted_valid_ = false;
  sum_ += x;
  // Welford update.
  const double n = static_cast<double>(samples_.size());
  const double delta = x - mean_;
  mean_ += delta / n;
  m2_ += delta * (x - mean_);
}

double Summary::stddev() const noexcept {
  if (samples_.size() < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(samples_.size() - 1));
}

double Summary::min() const noexcept {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const noexcept {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::percentile(double q) const {
  if (samples_.empty()) throw std::logic_error("Summary::percentile: no samples");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("Summary::percentile: q outside [0,1]");
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  const double idx = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(idx));
  const auto hi = static_cast<std::size_t>(std::ceil(idx));
  const double frac = idx - static_cast<double>(lo);
  return sorted_[lo] + (sorted_[hi] - sorted_[lo]) * frac;
}

void Summary::reset() {
  samples_.clear();
  sorted_.clear();
  sorted_valid_ = false;
  mean_ = 0.0;
  m2_ = 0.0;
  sum_ = 0.0;
}

}  // namespace sensrep::metrics
