#include "metrics/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "trace/format.hpp"

namespace sensrep::metrics {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo) {
  if (lo >= hi) throw std::invalid_argument("Histogram: lo must be < hi");
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be >= 1");
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0);
}

void Histogram::add(double value) {
  ++total_;
  if (value < lo_) {
    ++underflow_;
    return;
  }
  const auto bin = static_cast<std::size_t>((value - lo_) / width_);
  if (bin >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[bin];
}

void Histogram::add_all(const std::vector<double>& values) {
  for (const double v : values) add(v);
}

double Histogram::bin_lo(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("Histogram::bin_lo");
  return lo_ + static_cast<double>(bin) * width_;
}

std::string Histogram::ascii(std::size_t bar_width) const {
  std::uint64_t peak = std::max<std::uint64_t>(1, *std::max_element(counts_.begin(),
                                                                    counts_.end()));
  std::string out;
  if (underflow_ > 0) {
    out += trace::strfmt("  (< %8.1f)  %llu\n", lo_,
                         static_cast<unsigned long long>(underflow_));
  }
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar_len = static_cast<std::size_t>(
        std::llround(static_cast<double>(counts_[b]) * static_cast<double>(bar_width) /
                     static_cast<double>(peak)));
    out += trace::strfmt("  [%8.1f,%8.1f)  %-*s %llu\n", bin_lo(b), bin_lo(b) + width_,
                         static_cast<int>(bar_width),
                         std::string(bar_len, '#').c_str(),
                         static_cast<unsigned long long>(counts_[b]));
  }
  if (overflow_ > 0) {
    out += trace::strfmt("  (>=%8.1f)  %llu\n", lo_ + width_ * static_cast<double>(counts_.size()),
                         static_cast<unsigned long long>(overflow_));
  }
  return out;
}

}  // namespace sensrep::metrics
