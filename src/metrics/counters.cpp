#include "metrics/counters.hpp"

namespace sensrep::metrics {

std::string_view to_string(MessageCategory c) noexcept {
  switch (c) {
    case MessageCategory::kInitialization: return "initialization";
    case MessageCategory::kBeacon: return "beacon";
    case MessageCategory::kGuardianConfirm: return "guardian_confirm";
    case MessageCategory::kFailureReport: return "failure_report";
    case MessageCategory::kRepairRequest: return "repair_request";
    case MessageCategory::kLocationUpdate: return "location_update";
    case MessageCategory::kReplacement: return "replacement";
    case MessageCategory::kData: return "data";
    case MessageCategory::kFaultTolerance: return "fault_tolerance";
    case MessageCategory::kOther: return "other";
    case MessageCategory::kCount: break;
  }
  return "invalid";
}

std::uint64_t TransmissionCounters::total() const noexcept {
  std::uint64_t sum = 0;
  for (const auto v : counts_) sum += v;
  return sum;
}

}  // namespace sensrep::metrics
