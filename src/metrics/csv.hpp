#pragma once

#include <concepts>
#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace sensrep::metrics {

/// Minimal CSV emitter (RFC-4180 quoting) for experiment outputs.
///
/// Usage:
///   CsvWriter csv(out);
///   csv.row({"robots", "algorithm", "avg_distance_m"});
///   csv.row(4, "dynamic", 83.2);
class CsvWriter {
 public:
  /// Writes to `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Writes one row from pre-rendered cells.
  void row(std::initializer_list<std::string_view> cells);

  /// Writes one row, rendering each argument with to_cell().
  template <typename... Ts>
  void row(const Ts&... cells) {
    std::vector<std::string> rendered{to_cell(cells)...};
    write_row(rendered);
  }

  /// Renders a value as a CSV cell (doubles use shortest round-trip form).
  [[nodiscard]] static std::string to_cell(double v);
  [[nodiscard]] static std::string to_cell(std::string_view v) { return std::string(v); }
  [[nodiscard]] static std::string to_cell(const std::string& v) { return v; }
  [[nodiscard]] static std::string to_cell(const char* v) { return v; }
  template <std::integral T>
  [[nodiscard]] static std::string to_cell(T v) {
    return std::to_string(v);
  }

 private:
  void write_row(const std::vector<std::string>& cells);
  [[nodiscard]] static std::string escape(std::string_view cell);

  std::ostream* out_;
};

}  // namespace sensrep::metrics
