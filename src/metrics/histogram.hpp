#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sensrep::metrics {

/// Fixed-range, equal-width histogram with underflow/overflow buckets and a
/// terminal-friendly ASCII rendering — the CLI's quick look at latency and
/// travel distributions without leaving the shell.
class Histogram {
 public:
  /// Buckets cover [lo, hi) split into `bins` equal widths.
  /// Requires lo < hi and bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);
  void add_all(const std::vector<double>& values);

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Lower edge of a bin.
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_width() const noexcept { return width_; }

  /// Multi-line ASCII bar chart, bars scaled to `bar_width` characters:
  ///   [   0,  100)  ####################  42
  [[nodiscard]] std::string ascii(std::size_t bar_width = 40) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace sensrep::metrics
