#pragma once

#include <cstddef>
#include <vector>

namespace sensrep::metrics {

/// Accumulates scalar samples and reports summary statistics.
///
/// Keeps all samples (experiments here produce at most a few thousand per
/// metric) so exact percentiles are available; mean/stddev use Welford's
/// online method to stay numerically stable.
class Summary {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  /// Mean of the samples; 0 when empty.
  [[nodiscard]] double mean() const noexcept { return mean_; }

  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double stddev() const noexcept;

  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Exact percentile by linear interpolation; q in [0, 1]. Requires !empty().
  [[nodiscard]] double percentile(double q) const;

  [[nodiscard]] double median() const { return percentile(0.5); }

  /// Raw samples in insertion order.
  [[nodiscard]] const std::vector<double>& samples() const noexcept { return samples_; }

  void reset();

 private:
  std::vector<double> samples_;
  mutable std::vector<double> sorted_;   // lazily rebuilt for percentiles
  mutable bool sorted_valid_ = false;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace sensrep::metrics
