#include "metrics/timeline.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

namespace sensrep::metrics {

void TimeSeries::add(sim::SimTime t, double value) {
  if (!points_.empty() && t < points_.back().first) {
    throw std::invalid_argument("TimeSeries::add: time went backwards");
  }
  points_.emplace_back(t, value);
}

double TimeSeries::value_at(sim::SimTime t) const {
  if (empty()) throw std::logic_error("TimeSeries::value_at: empty series");
  if (t < points_.front().first) {
    throw std::invalid_argument("TimeSeries::value_at: before first sample");
  }
  // Last sample with time <= t.
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](sim::SimTime lhs, const auto& p) { return lhs < p.first; });
  return std::prev(it)->second;
}

double TimeSeries::min() const {
  if (empty()) throw std::logic_error("TimeSeries::min: empty series");
  double m = points_.front().second;
  for (const auto& [t, v] : points_) m = std::min(m, v);
  return m;
}

double TimeSeries::max() const {
  if (empty()) throw std::logic_error("TimeSeries::max: empty series");
  double m = points_.front().second;
  for (const auto& [t, v] : points_) m = std::max(m, v);
  return m;
}

double TimeSeries::time_weighted_mean(sim::SimTime t0, sim::SimTime t1) const {
  if (t0 >= t1) throw std::invalid_argument("TimeSeries::time_weighted_mean: t0 >= t1");
  double area = 0.0;
  sim::SimTime cursor = t0;
  double current = value_at(t0);
  for (const auto& [t, v] : points_) {
    if (t <= t0) continue;
    if (t >= t1) break;
    area += current * (t - cursor);
    cursor = t;
    current = v;
  }
  area += current * (t1 - cursor);
  return area / (t1 - t0);
}

void TimeSeries::drop_before(sim::SimTime t) {
  if (points_.empty()) return;
  // First sample strictly after t; the one before it is in force at t and
  // must survive to keep step semantics over [t, inf).
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](sim::SimTime lhs, const auto& p) { return lhs < p.first; });
  if (it == points_.begin()) return;
  --it;  // the sample in force at t
  dropped_ += static_cast<std::size_t>(it - points_.begin());
  points_.erase(points_.begin(), it);
}

void TimeSeries::write_csv(std::ostream& out, std::string_view name) const {
  out << "t," << name << '\n';
  for (const auto& [t, v] : points_) out << t << ',' << v << '\n';
}

sim::EventId sample_periodically(sim::Simulator& simulator, sim::Duration period,
                                 TimeSeries& series, std::function<double()> probe) {
  auto probe_fn = std::make_shared<std::function<double()>>(std::move(probe));
  TimeSeries* series_ptr = &series;
  sim::Simulator* sim_ptr = &simulator;
  return simulator.every(period, [sim_ptr, series_ptr, probe_fn] {
    series_ptr->add(sim_ptr->now(), (*probe_fn)());
  });
}

}  // namespace sensrep::metrics
