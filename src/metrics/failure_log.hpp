#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/time.hpp"

namespace sensrep::metrics {

/// Lifecycle record of one sensor failure, from death to replacement.
///
/// Every per-failure metric in the paper's figures is a projection of these
/// records: Fig. 2 averages `travel_distance`, Fig. 3 averages `report_hops`
/// (and `request_hops` for the centralized algorithm), Fig. 4 divides the
/// location-update transmission counter by the number of records.
struct FailureRecord {
  std::uint32_t node_id = 0;
  sim::SimTime failed_at = sim::kNever;      // true failure instant
  sim::SimTime detected_at = sim::kNever;    // guardian declared it dead
  sim::SimTime reported_at = sim::kNever;    // report reached the manager
  sim::SimTime dispatched_at = sim::kNever;  // a robot was tasked
  sim::SimTime repaired_at = sim::kNever;    // replacement node powered on

  std::optional<std::uint32_t> robot_id;  // maintainer that repaired it
  std::uint32_t report_hops = 0;          // guardian -> manager
  std::uint32_t request_hops = 0;         // manager -> robot (centralized)
  double travel_distance = 0.0;           // meters the maintainer drove for
                                          // this failure (queue-wait excluded)

  [[nodiscard]] bool detected() const noexcept { return sim::is_valid_time(detected_at); }
  [[nodiscard]] bool repaired() const noexcept { return sim::is_valid_time(repaired_at); }

  /// Failure-to-repair latency; kNever if unrepaired.
  [[nodiscard]] sim::Duration repair_latency() const noexcept {
    return repaired() ? repaired_at - failed_at : sim::kNever;
  }
};

/// Append-only log of failure records, indexed by a dense failure id.
class FailureLog {
 public:
  using FailureId = std::size_t;

  /// Opens a record for a node that just failed; returns its id.
  FailureId open(std::uint32_t node_id, sim::SimTime failed_at);

  [[nodiscard]] FailureRecord& at(FailureId id) { return records_.at(id); }
  [[nodiscard]] const FailureRecord& at(FailureId id) const { return records_.at(id); }

  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] const std::vector<FailureRecord>& records() const noexcept { return records_; }

  /// Counts of records in each terminal state (diagnostics / tests).
  [[nodiscard]] std::size_t repaired_count() const noexcept;
  [[nodiscard]] std::size_t detected_count() const noexcept;

 private:
  std::vector<FailureRecord> records_;
};

}  // namespace sensrep::metrics
