#pragma once

#include <fstream>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/simulation.hpp"
#include "obs/exporters.hpp"
#include "obs/tracer.hpp"
#include "service/options.hpp"
#include "service/protocol.hpp"
#include "service/snapshot.hpp"
#include "service/telemetry.hpp"

namespace sensrep::service {

/// The long-running service around one core::Simulation: ingests protocol
/// commands as live event injections, streams telemetry, and can snapshot
/// itself for a deterministic restore (docs/SERVICE.md).
///
/// Determinism contract: the daemon's observable state is a pure function
/// of (DaemonOptions, journal of applied mutations). Mutations journal the
/// virtual time they took effect; restore replays the journal against a
/// fresh Simulation and verifies the snapshot's StateDigest, throwing on
/// divergence. Commands are applied strictly between simulator steps —
/// the daemon is single-threaded apart from the JSONL writer.
class Daemon {
 public:
  /// Fresh service at t=0.
  explicit Daemon(const DaemonOptions& options);

  /// Restore: rebuilds the simulation from the snapshot's genesis options,
  /// replays its journal (telemetry muted so history is not re-emitted),
  /// and verifies the digest. Throws std::runtime_error on divergence.
  explicit Daemon(const Snapshot& snapshot);

  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Handles one protocol line. Returns the reply ("ok ..." / "err ...",
  /// possibly multi-line) or nullopt for blank lines and '#' comments.
  /// Never throws on bad input — malformed commands become `err` replies.
  std::optional<std::string> handle_line(std::string_view line);

  /// Line loop: read commands from `in`, write replies (and interleaved
  /// telemetry) to `out`, flush per line. Ends on `quit`, EOF, or
  /// service::shutdown_requested(); always prints a final
  /// "bye <digest>" line.
  void serve(std::istream& in, std::ostream& out);

  [[nodiscard]] Snapshot make_snapshot() const;

  /// The state digest, one line (the payload of an `ok status` reply).
  [[nodiscard]] std::string status_line() const { return sim_->digest().to_string(); }

  [[nodiscard]] bool quit_requested() const noexcept { return quit_; }
  [[nodiscard]] const DaemonOptions& options() const noexcept { return opts_; }
  [[nodiscard]] const std::vector<JournalEntry>& journal() const noexcept {
    return journal_;
  }
  [[nodiscard]] core::Simulation& simulation() noexcept { return *sim_; }
  [[nodiscard]] TelemetryExporter* exporter() noexcept { return exporter_.get(); }

 private:
  void construct();
  void arm_interrupt();
  std::string apply_mutation(const Command& c);
  std::string dispatch_query(const Command& c);

  DaemonOptions opts_;
  obs::Tracer tracer_;  // before sim_: attached spans must outlive the run
  std::ofstream jsonl_file_;
  std::unique_ptr<JsonlSink> jsonl_;
  std::unique_ptr<obs::InfluxExporter> influx_;
  std::ofstream webhook_file_;
  std::unique_ptr<JsonlSink> webhook_sink_;  // before webhook_: its target
  std::unique_ptr<obs::WebhookExporter> webhook_;
  std::unique_ptr<core::Simulation> sim_;
  std::unique_ptr<TelemetryExporter> exporter_;
  std::vector<JournalEntry> journal_;
  bool quit_ = false;
};

}  // namespace sensrep::service
