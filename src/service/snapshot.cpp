#include "service/snapshot.hpp"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "trace/format.hpp"

namespace sensrep::service {

namespace {

core::Algorithm parse_algorithm(const std::string& s) {
  if (s == "centralized") return core::Algorithm::kCentralized;
  if (s == "fixed") return core::Algorithm::kFixedDistributed;
  if (s == "dynamic") return core::Algorithm::kDynamicDistributed;
  throw std::runtime_error("snapshot: unknown algorithm '" + s + "'");
}

double parse_double(const std::string& s, const char* what) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    throw std::runtime_error(trace::strfmt("snapshot: bad %s '%s'", what, s.c_str()));
  }
  return v;
}

std::uint64_t parse_u64(const std::string& s, const char* what) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end == s.c_str() || *end != '\0') {
    throw std::runtime_error(trace::strfmt("snapshot: bad %s '%s'", what, s.c_str()));
  }
  return v;
}

bool parse_bool(const std::string& s, const char* what) {
  if (s == "1") return true;
  if (s == "0") return false;
  throw std::runtime_error(trace::strfmt("snapshot: bad %s '%s' (want 0|1)", what, s.c_str()));
}

}  // namespace

core::StateDigest parse_digest(const std::string& line) {
  core::StateDigest d;
  std::istringstream in(line);
  std::string token;
  unsigned seen = 0;
  while (in >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("snapshot: malformed digest token '" + token + "'");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "clock") {
      d.clock = parse_double(value, "digest clock");
    } else if (key == "executed") {
      d.events_executed = parse_u64(value, "digest executed");
    } else if (key == "pending_events") {
      d.pending_events = parse_u64(value, "digest pending_events");
    } else if (key == "failures") {
      d.failures = parse_u64(value, "digest failures");
    } else if (key == "repaired") {
      d.repaired = parse_u64(value, "digest repaired");
    } else if (key == "robot_failures") {
      d.robot_failures = parse_u64(value, "digest robot_failures");
    } else if (key == "robot_repairs") {
      d.robot_repairs = parse_u64(value, "digest robot_repairs");
    } else if (key == "live_robots") {
      d.live_robots = parse_u64(value, "digest live_robots");
    } else if (key == "pending_tasks") {
      d.pending_tasks = parse_u64(value, "digest pending_tasks");
    } else if (key == "tx") {
      d.transmissions = parse_u64(value, "digest tx");
    } else {
      throw std::runtime_error("snapshot: unknown digest key '" + key + "'");
    }
    ++seen;
  }
  if (seen != 10) {
    throw std::runtime_error("snapshot: digest line is missing keys");
  }
  return d;
}

void Snapshot::write(std::ostream& out) const {
  out << kMagic << '\n';
  out << "algorithm " << core::to_string(options.algorithm) << '\n';
  out << "robots " << options.robots << '\n';
  out << "seed " << options.seed << '\n';
  out << trace::strfmt("horizon %.17g\n", options.horizon);
  out << trace::strfmt("mean-lifetime %.17g\n", options.mean_lifetime);
  out << trace::strfmt("loss %.17g\n", options.loss);
  out << "spontaneous " << (options.spontaneous_failures ? 1 : 0) << '\n';
  // Written only when sharded so single-shard snapshots keep the historical
  // format byte-for-byte (readers default a missing key to 1).
  if (options.shards != 1) out << "shards " << options.shards << '\n';
  out << trace::strfmt("telemetry-period %.17g\n", options.telemetry_period);
  out << trace::strfmt("retention-window %.17g\n", options.retention_window);
  out << "trace-stages " << (options.trace_stages ? 1 : 0) << '\n';
  out << trace::strfmt("clock %.17g\n", clock);
  for (const JournalEntry& e : journal) {
    out << trace::strfmt("inject %.17g ", e.t) << format_command(e.command) << '\n';
  }
  out << "digest " << digest.to_string() << '\n';
  out << "end\n";
}

bool Snapshot::save(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  write(f);
  return static_cast<bool>(f);
}

Snapshot Snapshot::read(std::istream& in) {
  Snapshot snap;
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    throw std::runtime_error("snapshot: bad magic (want '" + std::string(kMagic) + "')");
  }
  bool saw_digest = false;
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line == "end") {
      saw_end = true;
      break;
    }
    const auto space = line.find(' ');
    const std::string key = line.substr(0, space);
    const std::string rest = space == std::string::npos ? "" : line.substr(space + 1);
    if (key == "algorithm") {
      snap.options.algorithm = parse_algorithm(rest);
    } else if (key == "robots") {
      snap.options.robots = static_cast<std::size_t>(parse_u64(rest, "robots"));
    } else if (key == "seed") {
      snap.options.seed = parse_u64(rest, "seed");
    } else if (key == "horizon") {
      snap.options.horizon = parse_double(rest, "horizon");
    } else if (key == "mean-lifetime") {
      snap.options.mean_lifetime = parse_double(rest, "mean-lifetime");
    } else if (key == "loss") {
      snap.options.loss = parse_double(rest, "loss");
    } else if (key == "spontaneous") {
      snap.options.spontaneous_failures = parse_bool(rest, "spontaneous");
    } else if (key == "shards") {
      snap.options.shards = static_cast<std::size_t>(parse_u64(rest, "shards"));
    } else if (key == "telemetry-period") {
      snap.options.telemetry_period = parse_double(rest, "telemetry-period");
    } else if (key == "retention-window") {
      snap.options.retention_window = parse_double(rest, "retention-window");
    } else if (key == "trace-stages") {
      snap.options.trace_stages = parse_bool(rest, "trace-stages");
    } else if (key == "clock") {
      snap.clock = parse_double(rest, "clock");
    } else if (key == "inject") {
      const auto cmd_at = rest.find(' ');
      if (cmd_at == std::string::npos) {
        throw std::runtime_error("snapshot: malformed inject line '" + line + "'");
      }
      JournalEntry e;
      e.t = parse_double(rest.substr(0, cmd_at), "inject time");
      const auto parsed = parse_command(rest.substr(cmd_at + 1));
      if (!parsed || !is_mutation(parsed->kind)) {
        throw std::runtime_error("snapshot: non-mutation inject line '" + line + "'");
      }
      e.command = *parsed;
      snap.journal.push_back(std::move(e));
    } else if (key == "digest") {
      snap.digest = parse_digest(rest);
      saw_digest = true;
    } else {
      throw std::runtime_error("snapshot: unknown key '" + key + "'");
    }
  }
  if (!saw_end || !saw_digest) {
    throw std::runtime_error("snapshot: truncated (missing digest/end)");
  }
  return snap;
}

Snapshot Snapshot::load(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("snapshot: cannot open '" + path + "'");
  return read(f);
}

}  // namespace sensrep::service
