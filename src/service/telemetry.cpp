#include "service/telemetry.hpp"

#include <ostream>
#include <stdexcept>
#include <utility>

#include "metrics/summary.hpp"
#include "trace/format.hpp"

namespace sensrep::service {

// --- TelemetrySample ---------------------------------------------------------

std::string TelemetrySample::protocol_line() const {
  std::string line = trace::strfmt(
      "telemetry t=%.3f failures=%llu repaired=%llu open=%llu pending=%llu "
      "live_robots=%llu events=%llu repairs_per_sec=%.6f availability=%.6f",
      t, static_cast<unsigned long long>(failures),
      static_cast<unsigned long long>(repaired),
      static_cast<unsigned long long>(open_failures),
      static_cast<unsigned long long>(pending_tasks),
      static_cast<unsigned long long>(live_robots),
      static_cast<unsigned long long>(events), repairs_per_sec, availability);
  for (const StagePercentiles& s : stages) {
    const std::string name(obs::to_string(s.stage));
    line += trace::strfmt(" %s_n=%zu %s_p50=%.3f %s_p90=%.3f %s_p99=%.3f",
                          name.c_str(), s.count, name.c_str(), s.p50, name.c_str(),
                          s.p90, name.c_str(), s.p99);
  }
  return line;
}

std::string TelemetrySample::json_line() const {
  std::string line = trace::strfmt(
      R"({"t":%.3f,"failures":%llu,"repaired":%llu,"open":%llu,"pending":%llu)"
      R"(,"live_robots":%llu,"events":%llu,"repairs_per_sec":%.6f,"availability":%.6f)",
      t, static_cast<unsigned long long>(failures),
      static_cast<unsigned long long>(repaired),
      static_cast<unsigned long long>(open_failures),
      static_cast<unsigned long long>(pending_tasks),
      static_cast<unsigned long long>(live_robots),
      static_cast<unsigned long long>(events), repairs_per_sec, availability);
  if (!stages.empty()) {
    line += R"(,"stages":{)";
    bool first = true;
    for (const StagePercentiles& s : stages) {
      if (!first) line += ',';
      first = false;
      line += trace::strfmt(R"("%s":{"n":%zu,"p50":%.3f,"p90":%.3f,"p99":%.3f})",
                            std::string(obs::to_string(s.stage)).c_str(), s.count,
                            s.p50, s.p90, s.p99);
    }
    line += '}';
  }
  line += '}';
  return line;
}

// --- JsonlSink ---------------------------------------------------------------

JsonlSink::JsonlSink(std::ostream& out, std::size_t capacity, bool drop_when_full)
    : out_(out),
      capacity_(capacity == 0 ? 1 : capacity),
      drop_when_full_(drop_when_full),
      writer_([this] { writer_loop(); }) {}

JsonlSink::~JsonlSink() { close(); }

void JsonlSink::count_drop() noexcept {
  dropped_.fetch_add(1, std::memory_order_relaxed);
  obs::Metrics::inc(obs::Counter::kJsonlDropped);
}

void JsonlSink::push(std::string line) {
  std::unique_lock lock(mu_);
  if (drop_when_full_ && queue_.size() >= capacity_ && !closing_) {
    count_drop();  // shed rather than stall the producer (the event loop)
    return;
  }
  not_full_.wait(lock, [this] { return queue_.size() < capacity_ || closing_; });
  if (closing_) {  // shutting down; the producer's line is dropped
    count_drop();
    return;
  }
  queue_.push_back(std::move(line));
  not_empty_.notify_one();
}

void JsonlSink::close() {
  {
    const std::lock_guard lock(mu_);
    closing_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  if (writer_.joinable()) writer_.join();
}

void JsonlSink::writer_loop() {
  std::deque<std::string> batch;
  for (;;) {
    {
      std::unique_lock lock(mu_);
      not_empty_.wait(lock, [this] { return !queue_.empty() || closing_; });
      if (queue_.empty() && closing_) break;
      batch.swap(queue_);
      not_full_.notify_all();
    }
    for (const std::string& line : batch) {
      out_ << line << '\n';
      written_.fetch_add(1, std::memory_order_relaxed);
    }
    batch.clear();
  }
  out_.flush();
}

// --- TelemetryExporter -------------------------------------------------------

TelemetryExporter::TelemetryExporter(core::Simulation& sim, Options options)
    : sim_(sim), options_(options) {
  if (!(options_.period > 0.0)) {
    throw std::invalid_argument("TelemetryExporter: period must be > 0");
  }
}

void TelemetryExporter::start() {
  if (started_) throw std::logic_error("TelemetryExporter: start() called twice");
  started_ = true;
  sim_.simulator().every(options_.period, [this] { tick(); });
}

TelemetrySample TelemetryExporter::sample_now() const {
  const core::StateDigest d = sim_.digest();
  TelemetrySample s;
  s.t = d.clock;
  s.failures = d.failures;
  s.repaired = d.repaired;
  s.open_failures = d.failures - d.repaired;
  s.pending_tasks = d.pending_tasks;
  s.live_robots = d.live_robots;
  s.events = d.events_executed;
  const double dt = d.clock - last_t_;
  s.repairs_per_sec = dt > 0.0
      ? static_cast<double>(d.repaired - last_repaired_) / dt
      : 0.0;
  const auto deployed = static_cast<double>(sim_.config().sensor_count());
  s.availability = deployed > 0.0
      ? 1.0 - static_cast<double>(s.open_failures) / deployed
      : 1.0;
  if (tracer_ != nullptr) {
    for (std::size_t i = 0; i < static_cast<std::size_t>(obs::Stage::kCount); ++i) {
      const auto stage = static_cast<obs::Stage>(i);
      const auto durations = tracer_->stage_durations(stage);
      if (durations.empty()) continue;
      metrics::Summary summary;
      for (const double v : durations) summary.add(v);
      StagePercentiles p;
      p.stage = stage;
      p.count = summary.count();
      p.p50 = summary.percentile(0.50);
      p.p90 = summary.percentile(0.90);
      p.p99 = summary.percentile(0.99);
      s.stages.push_back(p);
    }
  }
  return s;
}

void TelemetryExporter::tick() {
  const TelemetrySample s = sample_now();
  availability_.add(s.t, s.availability);
  pending_.add(s.t, static_cast<double>(s.pending_tasks));
  last_t_ = s.t;
  last_repaired_ = s.repaired;
  ++samples_;
  // Registry state (not an emission): gauges track the latest sample even
  // while muted, so a post-restore scrape shows live values immediately.
  obs::Metrics::inc(obs::Counter::kTelemetrySamples);
  const auto deployed = static_cast<double>(sim_.config().sensor_count());
  obs::Metrics::set_gauge(obs::Gauge::kAliveSensors,
                          deployed - static_cast<double>(s.open_failures));
  obs::Metrics::set_gauge(obs::Gauge::kLiveRobots,
                          static_cast<double>(s.live_robots));
  obs::Metrics::set_gauge(obs::Gauge::kOpenFailures,
                          static_cast<double>(s.open_failures));
  obs::Metrics::set_gauge(obs::Gauge::kPendingEvents,
                          static_cast<double>(sim_.simulator().pending()));
  obs::Metrics::set_gauge(obs::Gauge::kSimClock, s.t);
  if (options_.retention_window > 0.0) {
    const double cutoff = s.t - options_.retention_window;
    availability_.drop_before(cutoff);
    pending_.drop_before(cutoff);
    if (tracer_ != nullptr) tracer_->compact(cutoff);
  }
  if (muted_) return;
  if (line_sink_) line_sink_(s.protocol_line());
  if (jsonl_ != nullptr) jsonl_->push(s.json_line());
  for (obs::Exporter* e : metrics_exporters_) e->on_tick(s.t);
}

}  // namespace sensrep::service
