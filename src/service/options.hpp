#pragma once

#include <cstdint>
#include <string>

#include "core/config.hpp"

namespace sensrep::service {

/// Genesis configuration of a service-mode run: the daemon-settable subset
/// of core::SimulationConfig plus the telemetry knobs. This is what a
/// snapshot persists — restoring reconstructs the Simulation from exactly
/// these values and replays the journal, so every field here must round-trip
/// through the snapshot text format bitwise.
struct DaemonOptions {
  core::Algorithm algorithm = core::Algorithm::kCentralized;
  std::size_t robots = 4;
  std::uint64_t seed = 1;

  /// Service-mode horizon (core::SimulationConfig::sim_duration). A service
  /// has no natural end, so the default is effectively "forever"; `advance`
  /// past it is rejected.
  double horizon = 1e9;

  /// E[sensor unit lifetime] seconds (ignored when !spontaneous_failures).
  double mean_lifetime = 16000.0;

  /// Per-reception Bernoulli loss probability.
  double loss = 0.0;

  /// False: sensors only die via injected `fail` commands — the pure
  /// externally-driven service. True: the paper's Exp(mean_lifetime) churn
  /// runs underneath the injected events.
  bool spontaneous_failures = true;

  /// Spatially sharded execution (FieldConfig::shards): tile workers between
  /// deterministic barriers. Part of the snapshot genesis for the record,
  /// although any value replays the same observable state (docs/SHARDING.md);
  /// a snapshot taken at N shards restores bitwise at any other count.
  std::size_t shards = 1;

  /// Telemetry sampling period in sim seconds; 0 disables the exporter.
  /// Sampling runs on the virtual clock so the stream is deterministic.
  double telemetry_period = 0.0;

  /// Sliding retention window in sim seconds for telemetry series and
  /// closed trace spans; 0 keeps everything (fine for short sessions, not
  /// for soaks — see docs/SERVICE.md §5).
  double retention_window = 0.0;

  /// Attach an obs::Tracer and report per-stage p50/p90/p99 in telemetry.
  bool trace_stages = false;

  /// Local sink for telemetry JSONL ("" = none). Deliberately NOT part of
  /// the snapshot: where a restored daemon writes its telemetry is the
  /// restorer's choice, not simulation state.
  std::string telemetry_jsonl;

  // --- Observability sinks -------------------------------------------------
  // Like telemetry_jsonl, none of these are part of the snapshot: a restored
  // daemon picks its own sinks, and enabling any of them never changes the
  // simulation's observable state.

  /// Arms the process-wide metrics registry (obs::Metrics). sensrep_serve
  /// sets this implicitly when any metrics endpoint/sink flag is given.
  bool metrics = false;

  /// InfluxDB line-protocol sink: a file path or "tcp://host:port"
  /// ("" = off). Batched on the telemetry cadence, so it requires
  /// telemetry_period > 0.
  std::string metrics_influx;

  /// Webhook sink: a file path receiving one POST body (JSONL) per flushed
  /// batch ("" = off). Shares the JsonlSink writer-thread design in
  /// drop-when-full mode; requires telemetry_period > 0.
  std::string metrics_webhook;

  /// Logical URL stamped into each webhook POST body.
  std::string webhook_url = "http://localhost/metrics";

  /// Flight-recorder ring capacity in records; 0 disables. Always on by
  /// default in service mode — the ring is fixed-size and a disabled-or-
  /// enabled note() costs one relaxed load plus one relaxed fetch_add.
  std::size_t flightrec_capacity = 65536;

  /// Where SIGUSR1 dumps the flight recorder.
  std::string flightrec_dump = "flightrec.jsonl";

  /// The corresponding simulation config. Always arms the robot-fault
  /// machinery (FaultConfig::external) so injected crash-robot events are
  /// detected and recovered even though no fault source is pre-scheduled.
  [[nodiscard]] core::SimulationConfig simulation_config() const {
    core::SimulationConfig cfg;
    cfg.algorithm = algorithm;
    cfg.robots = robots;
    cfg.seed = seed;
    cfg.sim_duration = horizon;
    cfg.field.lifetime.mean = mean_lifetime;
    cfg.field.spontaneous_failures = spontaneous_failures;
    cfg.field.shards = shards;
    cfg.radio.loss_probability = loss;
    cfg.robot_faults.external = true;
    return cfg;
  }
};

}  // namespace sensrep::service
