#pragma once

namespace sensrep::service {

/// Installs SIGINT/SIGTERM handlers that set a process-wide shutdown flag.
/// Safe to call more than once; the handlers only ever set the flag, so all
/// real cleanup happens cooperatively in the interrupted code
/// (sim::Simulator::set_interrupt, runner::ExecutorOptions::cancelled,
/// service::Daemon::serve all poll shutdown_requested()).
void install_signal_handlers();

/// True once a SIGINT/SIGTERM arrived (or request_shutdown() ran). Async-
/// signal-safe and thread-safe; cheap enough to poll from event loops.
[[nodiscard]] bool shutdown_requested() noexcept;

/// Sets the flag programmatically (tests, embedders).
void request_shutdown() noexcept;

/// Clears the flag (tests re-arming between cases).
void reset_shutdown() noexcept;

/// Installs a SIGUSR1 handler that sets a separate dump-request flag. The
/// daemon polls it between protocol lines and dumps the flight recorder;
/// glibc's std::signal gives SA_RESTART semantics, so a pending getline is
/// not interrupted — the dump is serviced at the next protocol step.
void install_usr1_handler();

/// True once a SIGUSR1 arrived since the last clear_usr1().
[[nodiscard]] bool usr1_requested() noexcept;

/// Acknowledges (clears) the SIGUSR1 flag.
void clear_usr1() noexcept;

}  // namespace sensrep::service
