#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/simulation.hpp"
#include "metrics/timeline.hpp"
#include "obs/exporters.hpp"
#include "obs/tracer.hpp"

namespace sensrep::service {

/// p50/p90/p99 of one repair-lifecycle stage over the retained trace window.
struct StagePercentiles {
  obs::Stage stage = obs::Stage::kRepair;
  std::size_t count = 0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// One telemetry observation, taken on the *virtual* clock — the stream is
/// a pure function of the simulation, so two runs with identical journals
/// emit byte-identical telemetry (the restore differential test relies on
/// this).
struct TelemetrySample {
  double t = 0.0;
  std::uint64_t failures = 0;       // sensor failures opened so far
  std::uint64_t repaired = 0;       // closed by a replacement
  std::uint64_t open_failures = 0;  // failures - repaired
  std::uint64_t pending_tasks = 0;  // queued + in-service repair tasks
  std::uint64_t live_robots = 0;
  std::uint64_t events = 0;         // simulator events executed
  double repairs_per_sec = 0.0;     // over the last sampling window
  double availability = 0.0;        // live sensors / deployed sensors
  std::vector<StagePercentiles> stages;  // only stages with closed spans

  /// Protocol stream form: "telemetry t=... failures=... ..." one line.
  [[nodiscard]] std::string protocol_line() const;

  /// One JSON object, one line (the --telemetry-jsonl sink format; checked
  /// by `trace_check --telemetry`).
  [[nodiscard]] std::string json_line() const;
};

/// Bounded-queue JSONL writer with a background flush thread, so telemetry
/// file I/O never stalls the simulation's event loop. By default push()
/// applies backpressure (blocks) when the queue is full rather than dropping
/// or growing without bound; with `drop_when_full` it sheds the line instead
/// (metrics bodies are periodic snapshots, so losing one is recoverable —
/// stalling the event loop is not). Every shed line — full-queue or
/// after-close — lands in dropped() and the kJsonlDropped registry counter,
/// so backpressure is observable rather than silent. close() drains
/// everything and joins; the destructor closes implicitly. The target stream
/// is written exclusively by the writer thread until close() returns.
class JsonlSink {
 public:
  explicit JsonlSink(std::ostream& out, std::size_t capacity = 4096,
                     bool drop_when_full = false);
  ~JsonlSink();

  JsonlSink(const JsonlSink&) = delete;
  JsonlSink& operator=(const JsonlSink&) = delete;

  /// Enqueues one line (no trailing newline; the sink adds it). Blocks
  /// while the queue is full (unless drop_when_full); after close() the
  /// line is dropped.
  void push(std::string line);

  /// Drains the queue, flushes, and joins the writer. Idempotent.
  void close();

  /// Lines flushed to the stream so far.
  [[nodiscard]] std::uint64_t written() const noexcept {
    return written_.load(std::memory_order_relaxed);
  }

  /// Lines dropped instead of written (push after close, or a full queue in
  /// drop_when_full mode).
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  void writer_loop();
  void count_drop() noexcept;

  std::ostream& out_;
  std::size_t capacity_;
  bool drop_when_full_;
  std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<std::string> queue_;
  bool closing_ = false;
  std::atomic<std::uint64_t> written_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::thread writer_;
};

/// Periodic telemetry on the virtual clock. Each tick samples the
/// simulation's digest (plus per-stage percentiles when a tracer is
/// attached), appends to the availability/pending time series, applies the
/// retention window (TimeSeries::drop_before + Tracer::compact) so a soak
/// holds bounded memory, and emits the sample to the line sink / JSONL
/// sink. Muting suppresses emission only — sampling and window state still
/// advance, which is how a restore replay reconverges on the original
/// exporter state without re-printing history.
class TelemetryExporter {
 public:
  struct Options {
    double period = 60.0;           // sim seconds between samples (> 0)
    double retention_window = 0.0;  // 0 = keep everything
  };

  TelemetryExporter(core::Simulation& sim, Options options);

  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }
  void set_jsonl(JsonlSink* sink) noexcept { jsonl_ = sink; }
  /// Registers a metrics exporter (Influx/webhook) to drive on each tick —
  /// batched on the same virtual-clock cadence as the telemetry stream.
  /// Not owned; muting suppresses exporter ticks like every other emission.
  void add_metrics_exporter(obs::Exporter* exporter) {
    if (exporter != nullptr) metrics_exporters_.push_back(exporter);
  }
  void set_line_sink(std::function<void(const std::string&)> sink) {
    line_sink_ = std::move(sink);
  }
  void set_muted(bool muted) noexcept { muted_ = muted; }

  /// Schedules the periodic tick (first sample at now()+period). Call once.
  void start();

  /// Builds a sample at the current virtual time without touching the
  /// exporter's window state (the `telemetry` command — a read, not a tick).
  [[nodiscard]] TelemetrySample sample_now() const;

  [[nodiscard]] std::uint64_t samples_taken() const noexcept { return samples_; }
  [[nodiscard]] const metrics::TimeSeries& availability_series() const noexcept {
    return availability_;
  }
  [[nodiscard]] const metrics::TimeSeries& pending_series() const noexcept {
    return pending_;
  }

 private:
  void tick();

  core::Simulation& sim_;
  Options options_;
  obs::Tracer* tracer_ = nullptr;
  JsonlSink* jsonl_ = nullptr;
  std::vector<obs::Exporter*> metrics_exporters_;
  std::function<void(const std::string&)> line_sink_;
  bool muted_ = false;
  bool started_ = false;

  metrics::TimeSeries availability_;
  metrics::TimeSeries pending_;
  double last_t_ = 0.0;
  std::uint64_t last_repaired_ = 0;
  std::uint64_t samples_ = 0;
};

}  // namespace sensrep::service
