#include "service/daemon.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "service/signal.hpp"
#include "trace/format.hpp"

namespace sensrep::service {

Daemon::Daemon(const DaemonOptions& options) : opts_(options) {
  construct();
  arm_interrupt();
}

Daemon::Daemon(const Snapshot& snapshot) : opts_(snapshot.options) {
  construct();
  // Replay with telemetry muted: the exporter still samples every period —
  // reconverging its window state on the original's — but re-emits nothing.
  if (exporter_) exporter_->set_muted(true);
  for (const JournalEntry& e : snapshot.journal) {
    // Strictly-greater guard: an injection at exactly the current clock must
    // not trigger a run_until(now) here, which would execute events at this
    // instant that the original run only executed *after* the injection.
    if (e.t > sim_->simulator().now()) sim_->run_until(e.t);
    switch (e.command.kind) {
      case CommandKind::kFail:
        sim_->inject_sensor_failure(static_cast<net::NodeId>(e.command.id));
        break;
      case CommandKind::kCrashRobot:
        sim_->inject_robot_crash(e.command.id);
        break;
      case CommandKind::kRepairRobot:
        sim_->inject_robot_repair(e.command.id);
        break;
      case CommandKind::kAdvance:
        break;  // the run_until above is the whole effect
      default:
        throw std::runtime_error("snapshot: non-mutation command in journal");
    }
  }
  if (snapshot.clock > sim_->simulator().now()) sim_->run_until(snapshot.clock);
  const core::StateDigest replayed = sim_->digest();
  if (!(replayed == snapshot.digest)) {
    throw std::runtime_error("snapshot restore diverged from the recorded run\n  want " +
                             snapshot.digest.to_string() + "\n  got  " +
                             replayed.to_string());
  }
  journal_ = snapshot.journal;
  if (exporter_) exporter_->set_muted(false);
  arm_interrupt();
}

Daemon::~Daemon() {
  if (jsonl_) jsonl_->close();
}

void Daemon::construct() {
  core::SimulationConfig cfg = opts_.simulation_config();
  cfg.validate();
  sim_ = std::make_unique<core::Simulation>(cfg);
  if (opts_.trace_stages) sim_->attach_tracer(tracer_);
  if (opts_.telemetry_period > 0.0) {
    exporter_ = std::make_unique<TelemetryExporter>(
        *sim_, TelemetryExporter::Options{opts_.telemetry_period,
                                          opts_.retention_window});
    if (opts_.trace_stages) exporter_->set_tracer(&tracer_);
    if (!opts_.telemetry_jsonl.empty()) {
      jsonl_file_.open(opts_.telemetry_jsonl);
      if (!jsonl_file_) {
        throw std::runtime_error("cannot open telemetry sink '" + opts_.telemetry_jsonl +
                                 "'");
      }
      jsonl_ = std::make_unique<JsonlSink>(jsonl_file_);
      exporter_->set_jsonl(jsonl_.get());
    }
    exporter_->start();
  }
}

void Daemon::arm_interrupt() {
  sim_->simulator().set_interrupt([] { return shutdown_requested(); });
}

std::optional<std::string> Daemon::handle_line(std::string_view line) {
  std::optional<Command> cmd;
  try {
    cmd = parse_command(line);
  } catch (const std::exception& e) {
    return std::string("err ") + e.what();
  }
  if (!cmd) return std::nullopt;
  if (is_mutation(cmd->kind)) return apply_mutation(*cmd);
  switch (cmd->kind) {
    case CommandKind::kStatus:
      return "ok " + status_line();
    case CommandKind::kTelemetry: {
      if (!exporter_) return std::string("err telemetry disabled (--telemetry-period)");
      return exporter_->sample_now().protocol_line() + "\nok telemetry";
    }
    case CommandKind::kSnapshot: {
      if (!make_snapshot().save(cmd->path)) {
        return "err snapshot: cannot write '" + cmd->path + "'";
      }
      return "ok snapshot " + cmd->path;
    }
    case CommandKind::kQuit:
      quit_ = true;
      return std::string("ok quit");
    default:
      return std::string("err unhandled command");
  }
}

std::string Daemon::apply_mutation(const Command& c) {
  const double now = sim_->simulator().now();
  try {
    switch (c.kind) {
      case CommandKind::kFail: {
        if (!sim_->inject_sensor_failure(static_cast<net::NodeId>(c.id))) {
          return trace::strfmt("err sensor %llu already dead",
                               static_cast<unsigned long long>(c.id));
        }
        journal_.push_back({now, c});
        return trace::strfmt("ok fail %llu", static_cast<unsigned long long>(c.id));
      }
      case CommandKind::kCrashRobot: {
        if (!sim_->inject_robot_crash(c.id)) {
          return trace::strfmt("err robot %llu already dead",
                               static_cast<unsigned long long>(c.id));
        }
        journal_.push_back({now, c});
        return trace::strfmt("ok crash-robot %llu",
                             static_cast<unsigned long long>(c.id));
      }
      case CommandKind::kRepairRobot: {
        if (!sim_->inject_robot_repair(c.id)) {
          return trace::strfmt("err robot %llu already alive",
                               static_cast<unsigned long long>(c.id));
        }
        journal_.push_back({now, c});
        return trace::strfmt("ok repair-robot %llu",
                             static_cast<unsigned long long>(c.id));
      }
      case CommandKind::kAdvance: {
        const double target = now + c.seconds;
        if (target > opts_.horizon) {
          return trace::strfmt("err advance: %.17g is beyond the horizon %.17g", target,
                               opts_.horizon);
        }
        sim_->run_until(target);
        const bool interrupted = sim_->simulator().interrupted();
        const double reached = sim_->simulator().now();
        if (interrupted) {
          // Land on a replayable boundary: finish everything scheduled at
          // exactly the interruption instant with the probe disarmed, so a
          // journal replay's run_until(reached) reproduces this state.
          sim_->simulator().set_interrupt({});
          sim_->run_until(reached);
          arm_interrupt();
        }
        if (reached > now) {
          Command done = c;
          done.seconds = reached - now;
          journal_.push_back({reached, done});
        }
        return interrupted ? trace::strfmt("ok advance %.17g interrupted", reached)
                           : trace::strfmt("ok advance %.17g", reached);
      }
      default:
        return std::string("err unhandled mutation");
    }
  } catch (const std::exception& e) {
    return std::string("err ") + e.what();
  }
}

void Daemon::serve(std::istream& in, std::ostream& out) {
  if (exporter_) {
    exporter_->set_line_sink([&out](const std::string& line) {
      out << line << '\n';
      out.flush();
    });
  }
  std::string line;
  while (!quit_ && !shutdown_requested() && std::getline(in, line)) {
    const auto reply = handle_line(line);
    if (reply) {
      out << *reply << '\n';
      out.flush();
    }
  }
  out << "bye " << status_line() << '\n';
  out.flush();
  if (exporter_) exporter_->set_line_sink(nullptr);
}

Snapshot Daemon::make_snapshot() const {
  Snapshot snap;
  snap.options = opts_;
  snap.options.telemetry_jsonl.clear();  // sinks are the restorer's choice
  snap.journal = journal_;
  snap.clock = sim_->simulator().now();
  snap.digest = sim_->digest();
  return snap;
}

}  // namespace sensrep::service
