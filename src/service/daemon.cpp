#include "service/daemon.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "obs/flight_recorder.hpp"
#include "obs/metrics_registry.hpp"
#include "service/signal.hpp"
#include "trace/format.hpp"

namespace sensrep::service {

Daemon::Daemon(const DaemonOptions& options) : opts_(options) {
  construct();
  arm_interrupt();
}

Daemon::Daemon(const Snapshot& snapshot) : opts_(snapshot.options) {
  construct();
  // Replay with telemetry muted: the exporter still samples every period —
  // reconverging its window state on the original's — but re-emits nothing.
  if (exporter_) exporter_->set_muted(true);
  for (const JournalEntry& e : snapshot.journal) {
    // Strictly-greater guard: an injection at exactly the current clock must
    // not trigger a run_until(now) here, which would execute events at this
    // instant that the original run only executed *after* the injection.
    if (e.t > sim_->simulator().now()) sim_->run_until(e.t);
    switch (e.command.kind) {
      case CommandKind::kFail:
        sim_->inject_sensor_failure(static_cast<net::NodeId>(e.command.id));
        break;
      case CommandKind::kCrashRobot:
        sim_->inject_robot_crash(e.command.id);
        break;
      case CommandKind::kRepairRobot:
        sim_->inject_robot_repair(e.command.id);
        break;
      case CommandKind::kAdvance:
        break;  // the run_until above is the whole effect
      default:
        throw std::runtime_error("snapshot: non-mutation command in journal");
    }
  }
  if (snapshot.clock > sim_->simulator().now()) sim_->run_until(snapshot.clock);
  const core::StateDigest replayed = sim_->digest();
  if (!(replayed == snapshot.digest)) {
    throw std::runtime_error("snapshot restore diverged from the recorded run\n  want " +
                             snapshot.digest.to_string() + "\n  got  " +
                             replayed.to_string());
  }
  journal_ = snapshot.journal;
  if (exporter_) exporter_->set_muted(false);
  arm_interrupt();
}

Daemon::~Daemon() {
  if (webhook_) webhook_->close();          // flushes the partial batch...
  if (webhook_sink_) webhook_sink_->close();  // ...which this drains to disk
  if (influx_) influx_->close();
  if (jsonl_) jsonl_->close();
}

void Daemon::construct() {
  if (opts_.metrics) obs::Metrics::enable(true);
  if (opts_.flightrec_capacity > 0) {
    obs::FlightRecorder::enable(opts_.flightrec_capacity);
  }
  core::SimulationConfig cfg = opts_.simulation_config();
  cfg.validate();
  sim_ = std::make_unique<core::Simulation>(cfg);
  if (opts_.trace_stages) sim_->attach_tracer(tracer_);
  if (opts_.telemetry_period > 0.0) {
    exporter_ = std::make_unique<TelemetryExporter>(
        *sim_, TelemetryExporter::Options{opts_.telemetry_period,
                                          opts_.retention_window});
    if (opts_.trace_stages) exporter_->set_tracer(&tracer_);
    if (!opts_.telemetry_jsonl.empty()) {
      jsonl_file_.open(opts_.telemetry_jsonl);
      if (!jsonl_file_) {
        throw std::runtime_error("cannot open telemetry sink '" + opts_.telemetry_jsonl +
                                 "'");
      }
      jsonl_ = std::make_unique<JsonlSink>(jsonl_file_);
      exporter_->set_jsonl(jsonl_.get());
    }
    exporter_->start();
  }
  // Metrics exporters ride the telemetry tick (the virtual-clock batching
  // cadence), so they require an exporter to drive them.
  if (!opts_.metrics_influx.empty()) {
    if (!exporter_) {
      throw std::runtime_error("influx sink requires telemetry (--telemetry-period)");
    }
    influx_ = std::make_unique<obs::InfluxExporter>(opts_.metrics_influx);
    if (!influx_->ok()) {
      throw std::runtime_error("cannot open influx sink '" + opts_.metrics_influx + "'");
    }
    exporter_->add_metrics_exporter(influx_.get());
  }
  if (!opts_.metrics_webhook.empty()) {
    if (!exporter_) {
      throw std::runtime_error("webhook sink requires telemetry (--telemetry-period)");
    }
    webhook_file_.open(opts_.metrics_webhook);
    if (!webhook_file_) {
      throw std::runtime_error("cannot open webhook sink '" + opts_.metrics_webhook + "'");
    }
    // Drop-when-full: a shed metrics batch is recoverable (the next one is a
    // fresh snapshot); stalling the event loop on body I/O is not.
    webhook_sink_ = std::make_unique<JsonlSink>(webhook_file_, /*capacity=*/1024,
                                                /*drop_when_full=*/true);
    webhook_ = std::make_unique<obs::WebhookExporter>(
        [sink = webhook_sink_.get()](const std::string& body) { sink->push(body); },
        /*batch_ticks=*/8, opts_.webhook_url);
    exporter_->add_metrics_exporter(webhook_.get());
  }
}

void Daemon::arm_interrupt() {
  sim_->simulator().set_interrupt([] { return shutdown_requested(); });
}

std::optional<std::string> Daemon::handle_line(std::string_view line) {
  std::optional<Command> cmd;
  try {
    cmd = parse_command(line);
  } catch (const std::exception& e) {
    obs::Metrics::inc(obs::Counter::kServiceCommandErrors);
    return std::string("err ") + e.what();
  }
  if (!cmd) return std::nullopt;
  obs::Metrics::inc(obs::Counter::kServiceCommands);
  obs::FlightRecorder::note(sim_->simulator().now(), obs::FlightKind::kCommand,
                            static_cast<std::uint32_t>(cmd->kind));
  std::string reply = is_mutation(cmd->kind) ? apply_mutation(*cmd) : dispatch_query(*cmd);
  if (reply.rfind("err", 0) == 0) {
    obs::Metrics::inc(obs::Counter::kServiceCommandErrors);
  }
  return reply;
}

std::string Daemon::dispatch_query(const Command& c) {
  switch (c.kind) {
    case CommandKind::kStatus: {
      std::string reply = "ok " + status_line();
      // Sink backpressure rides on status (NOT on the digest itself, whose
      // token set is frozen by the snapshot format).
      if (jsonl_) {
        reply += trace::strfmt(" jsonl_dropped=%llu",
                               static_cast<unsigned long long>(jsonl_->dropped()));
      }
      return reply;
    }
    case CommandKind::kTelemetry: {
      if (!exporter_) return std::string("err telemetry disabled (--telemetry-period)");
      return exporter_->sample_now().protocol_line() + "\nok telemetry";
    }
    case CommandKind::kSnapshot: {
      if (!make_snapshot().save(c.path)) {
        return "err snapshot: cannot write '" + c.path + "'";
      }
      return "ok snapshot " + c.path;
    }
    case CommandKind::kDumpFlightRec: {
      if (!obs::FlightRecorder::enabled()) {
        return std::string("err flight recorder disabled (--flightrec-capacity)");
      }
      if (!obs::FlightRecorder::dump_to_file(c.path)) {
        return "err dump-flightrec: cannot write '" + c.path + "'";
      }
      return "ok dump-flightrec " + c.path;
    }
    case CommandKind::kQuit:
      quit_ = true;
      return std::string("ok quit");
    default:
      return std::string("err unhandled command");
  }
}

std::string Daemon::apply_mutation(const Command& c) {
  const double now = sim_->simulator().now();
  try {
    switch (c.kind) {
      case CommandKind::kFail: {
        if (!sim_->inject_sensor_failure(static_cast<net::NodeId>(c.id))) {
          return trace::strfmt("err sensor %llu already dead",
                               static_cast<unsigned long long>(c.id));
        }
        journal_.push_back({now, c});
        return trace::strfmt("ok fail %llu", static_cast<unsigned long long>(c.id));
      }
      case CommandKind::kCrashRobot: {
        if (!sim_->inject_robot_crash(c.id)) {
          return trace::strfmt("err robot %llu already dead",
                               static_cast<unsigned long long>(c.id));
        }
        journal_.push_back({now, c});
        return trace::strfmt("ok crash-robot %llu",
                             static_cast<unsigned long long>(c.id));
      }
      case CommandKind::kRepairRobot: {
        if (!sim_->inject_robot_repair(c.id)) {
          return trace::strfmt("err robot %llu already alive",
                               static_cast<unsigned long long>(c.id));
        }
        journal_.push_back({now, c});
        return trace::strfmt("ok repair-robot %llu",
                             static_cast<unsigned long long>(c.id));
      }
      case CommandKind::kAdvance: {
        const double target = now + c.seconds;
        if (target > opts_.horizon) {
          return trace::strfmt("err advance: %.17g is beyond the horizon %.17g", target,
                               opts_.horizon);
        }
        sim_->run_until(target);
        const bool interrupted = sim_->simulator().interrupted();
        const double reached = sim_->simulator().now();
        if (interrupted) {
          // Land on a replayable boundary: finish everything scheduled at
          // exactly the interruption instant with the probe disarmed, so a
          // journal replay's run_until(reached) reproduces this state.
          sim_->simulator().set_interrupt({});
          sim_->run_until(reached);
          arm_interrupt();
        }
        if (reached > now) {
          Command done = c;
          done.seconds = reached - now;
          journal_.push_back({reached, done});
        }
        return interrupted ? trace::strfmt("ok advance %.17g interrupted", reached)
                           : trace::strfmt("ok advance %.17g", reached);
      }
      default:
        return std::string("err unhandled mutation");
    }
  } catch (const std::exception& e) {
    return std::string("err ") + e.what();
  }
}

void Daemon::serve(std::istream& in, std::ostream& out) {
  if (exporter_) {
    exporter_->set_line_sink([&out](const std::string& line) {
      out << line << '\n';
      out.flush();
    });
  }
  std::string line;
  while (!quit_ && !shutdown_requested() && std::getline(in, line)) {
    // A SIGUSR1 that arrived while blocked in getline (SA_RESTART keeps the
    // read going) is serviced here, at the next protocol step.
    if (usr1_requested()) {
      clear_usr1();
      if (obs::FlightRecorder::enabled() && !opts_.flightrec_dump.empty() &&
          obs::FlightRecorder::dump_to_file(opts_.flightrec_dump)) {
        out << "flightrec " << opts_.flightrec_dump << '\n';
        out.flush();
      }
    }
    const auto reply = handle_line(line);
    if (reply) {
      out << *reply << '\n';
      out.flush();
    }
  }
  out << "bye " << status_line() << '\n';
  out.flush();
  if (exporter_) exporter_->set_line_sink(nullptr);
}

Snapshot Daemon::make_snapshot() const {
  Snapshot snap;
  snap.options = opts_;
  // Sinks are the restorer's choice, not simulation state.
  snap.options.telemetry_jsonl.clear();
  snap.options.metrics = false;
  snap.options.metrics_influx.clear();
  snap.options.metrics_webhook.clear();
  snap.journal = journal_;
  snap.clock = sim_->simulator().now();
  snap.digest = sim_->digest();
  return snap;
}

}  // namespace sensrep::service
