#include "service/protocol.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "trace/format.hpp"

namespace sensrep::service {

namespace {

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])) != 0) ++i;
    std::size_t start = i;
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])) == 0) ++i;
    if (i > start) out.emplace_back(line.substr(start, i - start));
  }
  return out;
}

std::uint64_t parse_u64(const std::string& token, const char* what) {
  if (token.empty() || token[0] == '-') {
    throw std::invalid_argument(trace::strfmt("%s: expected a non-negative integer, got '%s'",
                                              what, token.c_str()));
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
  if (errno != 0 || end == token.c_str() || *end != '\0') {
    throw std::invalid_argument(trace::strfmt("%s: expected a non-negative integer, got '%s'",
                                              what, token.c_str()));
  }
  return v;
}

double parse_positive_seconds(const std::string& token) {
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0' || !std::isfinite(v)) {
    throw std::invalid_argument(
        trace::strfmt("advance: expected seconds, got '%s'", token.c_str()));
  }
  if (!(v > 0.0)) {
    throw std::invalid_argument("advance: seconds must be > 0");
  }
  return v;
}

void expect_arity(const std::vector<std::string>& tokens, std::size_t n, const char* usage) {
  if (tokens.size() != n) {
    throw std::invalid_argument(trace::strfmt("usage: %s", usage));
  }
}

}  // namespace

std::string_view to_string(CommandKind k) noexcept {
  switch (k) {
    case CommandKind::kFail: return "fail";
    case CommandKind::kCrashRobot: return "crash-robot";
    case CommandKind::kRepairRobot: return "repair-robot";
    case CommandKind::kAdvance: return "advance";
    case CommandKind::kStatus: return "status";
    case CommandKind::kTelemetry: return "telemetry";
    case CommandKind::kSnapshot: return "snapshot";
    case CommandKind::kDumpFlightRec: return "dump-flightrec";
    case CommandKind::kQuit: return "quit";
  }
  return "?";
}

bool is_mutation(CommandKind k) noexcept {
  switch (k) {
    case CommandKind::kFail:
    case CommandKind::kCrashRobot:
    case CommandKind::kRepairRobot:
    case CommandKind::kAdvance:
      return true;
    case CommandKind::kStatus:
    case CommandKind::kTelemetry:
    case CommandKind::kSnapshot:
    case CommandKind::kDumpFlightRec:
    case CommandKind::kQuit:
      return false;
  }
  return false;
}

std::optional<Command> parse_command(std::string_view line) {
  // Strip a trailing comment only when it starts the line; mid-line '#'
  // would silently truncate snapshot paths.
  const auto tokens = tokenize(line);
  if (tokens.empty() || tokens.front().front() == '#') return std::nullopt;

  Command c;
  const std::string& verb = tokens.front();
  if (verb == "fail") {
    expect_arity(tokens, 2, "fail <sensor-slot>");
    c.kind = CommandKind::kFail;
    c.id = parse_u64(tokens[1], "fail");
  } else if (verb == "crash-robot") {
    expect_arity(tokens, 2, "crash-robot <index>");
    c.kind = CommandKind::kCrashRobot;
    c.id = parse_u64(tokens[1], "crash-robot");
  } else if (verb == "repair-robot") {
    expect_arity(tokens, 2, "repair-robot <index>");
    c.kind = CommandKind::kRepairRobot;
    c.id = parse_u64(tokens[1], "repair-robot");
  } else if (verb == "advance") {
    expect_arity(tokens, 2, "advance <seconds>");
    c.kind = CommandKind::kAdvance;
    c.seconds = parse_positive_seconds(tokens[1]);
  } else if (verb == "status") {
    expect_arity(tokens, 1, "status");
    c.kind = CommandKind::kStatus;
  } else if (verb == "telemetry") {
    expect_arity(tokens, 1, "telemetry");
    c.kind = CommandKind::kTelemetry;
  } else if (verb == "snapshot") {
    expect_arity(tokens, 2, "snapshot <path>");
    c.kind = CommandKind::kSnapshot;
    c.path = tokens[1];
  } else if (verb == "dump-flightrec") {
    expect_arity(tokens, 2, "dump-flightrec <path>");
    c.kind = CommandKind::kDumpFlightRec;
    c.path = tokens[1];
  } else if (verb == "quit") {
    expect_arity(tokens, 1, "quit");
    c.kind = CommandKind::kQuit;
  } else {
    throw std::invalid_argument(trace::strfmt("unknown command '%s'", verb.c_str()));
  }
  return c;
}

std::string format_command(const Command& c) {
  switch (c.kind) {
    case CommandKind::kFail:
    case CommandKind::kCrashRobot:
    case CommandKind::kRepairRobot:
      return trace::strfmt("%s %llu", std::string(to_string(c.kind)).c_str(),
                           static_cast<unsigned long long>(c.id));
    case CommandKind::kAdvance:
      return trace::strfmt("advance %.17g", c.seconds);
    case CommandKind::kSnapshot:
      return "snapshot " + c.path;
    case CommandKind::kDumpFlightRec:
      return "dump-flightrec " + c.path;
    case CommandKind::kStatus:
    case CommandKind::kTelemetry:
    case CommandKind::kQuit:
      return std::string(to_string(c.kind));
  }
  return "?";
}

}  // namespace sensrep::service
