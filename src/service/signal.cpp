#include "service/signal.hpp"

#include <atomic>
#include <csignal>

namespace sensrep::service {

namespace {

std::atomic<int> g_shutdown{0};
std::atomic<int> g_usr1{0};

}  // namespace

extern "C" void sensrep_service_signal_handler(int /*signum*/) {
  // Only an async-signal-safe store; everything else is cooperative.
  g_shutdown.store(1, std::memory_order_relaxed);
}

extern "C" void sensrep_service_usr1_handler(int /*signum*/) {
  g_usr1.store(1, std::memory_order_relaxed);
}

void install_signal_handlers() {
  std::signal(SIGINT, &sensrep_service_signal_handler);
  std::signal(SIGTERM, &sensrep_service_signal_handler);
}

bool shutdown_requested() noexcept {
  return g_shutdown.load(std::memory_order_relaxed) != 0;
}

void request_shutdown() noexcept { g_shutdown.store(1, std::memory_order_relaxed); }

void reset_shutdown() noexcept { g_shutdown.store(0, std::memory_order_relaxed); }

void install_usr1_handler() {
#ifdef SIGUSR1
  std::signal(SIGUSR1, &sensrep_service_usr1_handler);
#endif
}

bool usr1_requested() noexcept { return g_usr1.load(std::memory_order_relaxed) != 0; }

void clear_usr1() noexcept { g_usr1.store(0, std::memory_order_relaxed); }

}  // namespace sensrep::service
