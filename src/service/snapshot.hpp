#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "service/options.hpp"
#include "service/protocol.hpp"

namespace sensrep::service {

/// One journaled mutation: the command and the absolute virtual time it was
/// in effect by. For fail/crash-robot/repair-robot `t` is the clock at
/// application; for advance it is the clock actually *reached* (an advance
/// interrupted by a signal journals the partial progress). Replay runs the
/// clock to `t`, then applies the injection — see Daemon's restore ctor.
struct JournalEntry {
  double t = 0.0;
  Command command;

  friend bool operator==(const JournalEntry&, const JournalEntry&) = default;
};

/// A restorable image of a service-mode run.
///
/// The event queue holds arbitrary callbacks and cannot be serialized, so a
/// snapshot is not a memory dump: it is the *recipe* — genesis options, the
/// ordered journal of injected mutations, and the final clock. Restoring
/// reconstructs the Simulation from the options and deterministically
/// replays the journal; the embedded digest then proves (or refutes, by
/// throwing) that the replayed run reconverged bit-for-bit on the one that
/// was snapshotted. docs/SERVICE.md §4 specifies the text format.
struct Snapshot {
  static constexpr const char* kMagic = "sensrep-snapshot v1";

  DaemonOptions options;
  std::vector<JournalEntry> journal;
  double clock = 0.0;
  core::StateDigest digest;

  void write(std::ostream& out) const;
  [[nodiscard]] bool save(const std::string& path) const;

  /// Throws std::runtime_error on bad magic, unknown keys, or malformed
  /// values — a snapshot either loads exactly or not at all.
  static Snapshot read(std::istream& in);
  static Snapshot load(const std::string& path);
};

/// Parses a digest line as produced by core::StateDigest::to_string().
/// Throws std::runtime_error on unknown or missing keys.
[[nodiscard]] core::StateDigest parse_digest(const std::string& line);

}  // namespace sensrep::service
