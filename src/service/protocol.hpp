#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace sensrep::service {

/// The daemon's line-oriented command vocabulary (docs/SERVICE.md §2).
enum class CommandKind : std::uint8_t {
  kFail,         // fail <sensor-slot>         kill a sensor's unit now
  kCrashRobot,   // crash-robot <index>        kill robot <index> now
  kRepairRobot,  // repair-robot <index>       resurrect robot <index> now
  kAdvance,      // advance <seconds>          run the virtual clock forward
  kStatus,       // status                     print the state digest
  kTelemetry,    // telemetry                  print one telemetry sample now
  kSnapshot,      // snapshot <path>            write a restorable snapshot
  kDumpFlightRec, // dump-flightrec <path>      dump the flight-recorder ring
  kQuit,          // quit                       leave the serve loop
};

[[nodiscard]] std::string_view to_string(CommandKind k) noexcept;

/// True for commands that change simulation state and therefore belong in
/// the snapshot's replay journal (fail, crash-robot, repair-robot, advance).
[[nodiscard]] bool is_mutation(CommandKind k) noexcept;

/// One parsed command. Only the operand matching the kind is meaningful.
struct Command {
  CommandKind kind = CommandKind::kStatus;
  std::uint64_t id = 0;    // kFail (sensor slot), kCrashRobot/kRepairRobot (index)
  double seconds = 0.0;    // kAdvance (strictly positive)
  std::string path;        // kSnapshot, kDumpFlightRec

  friend bool operator==(const Command&, const Command&) = default;
};

/// Parses one protocol line. Blank lines and '#' comments yield nullopt
/// (skip, no reply). Malformed input throws std::invalid_argument with a
/// message suitable for an `err ...` reply. `advance 0` is rejected: a
/// zero-second advance would run events at the current instant that a
/// snapshot replay could not reproduce, breaking the determinism contract.
[[nodiscard]] std::optional<Command> parse_command(std::string_view line);

/// Canonical one-line form: parse_command(format_command(c)) == c. Advance
/// seconds print with %.17g so the journal round-trips bitwise.
[[nodiscard]] std::string format_command(const Command& c);

}  // namespace sensrep::service
