#pragma once

#include <memory>
#include <vector>

#include "core/coordination.hpp"
#include "geometry/partition.hpp"

namespace sensrep::core {

/// Fixed distributed manager algorithm (paper §3.2).
///
/// The field is partitioned into equal subareas, one robot per subarea; each
/// robot is both manager and maintainer for its subarea. At initialization
/// robots move to their subarea centers and flood their location within the
/// subarea. Failures are reported to the subarea's robot; location updates
/// while it moves are flooded to (and relayed by) the subarea's sensors,
/// deduplicated by sequence number.
class FixedDistributedAlgorithm final : public CoordinationAlgorithm {
 public:
  void bind(const SystemContext& ctx) override;
  void initialize() override;

  // SensorPolicy ------------------------------------------------------------
  [[nodiscard]] std::optional<wsn::ReportTarget> report_target(
      const wsn::SensorNode& sensor) const override;
  void on_location_update(wsn::SensorNode& sensor, const net::Packet& pkt,
                          net::NodeId from) override;

  // RobotPolicy ---------------------------------------------------------------
  void on_robot_location_update(robot::RobotNode& robot) override;
  void on_robot_packet(robot::RobotNode& robot, const net::Packet& pkt) override;

  [[nodiscard]] const geometry::Partition& partition() const { return *partition_; }

  /// Current subarea ownership: cell index -> fleet index of the robot in
  /// charge. Identity until a robot death triggers an adoption.
  [[nodiscard]] const std::vector<std::size_t>& owners() const noexcept { return owner_; }

 protected:
  /// Idle robots return to their fixed subarea center (E12).
  [[nodiscard]] geometry::Vec2 idle_home(const robot::RobotNode& robot) const override {
    return partition_->center(robot_index(robot.id()));
  }

  /// Fault tolerance: the lowest-id live robot adopts every subarea the dead
  /// robot owned and floods the ownership update.
  void on_robot_presumed_dead(std::size_t index) override;

  /// Repair/return: every subarea the reborn robot originally owned (cell i
  /// belongs to robot i) is returned by its adopter via a real
  /// kOwnershipTransfer exchange — ownership flips only when the offer is
  /// delivered, and undelivered offers are retried on a timer.
  void on_robot_rejoin(std::size_t index) override;

 private:
  [[nodiscard]] std::size_t subarea_of(geometry::Vec2 p) const {
    return partition_->cell_of(p);
  }

  /// Geo-routes one ownership-return offer for `cell` from its current
  /// adopter to the cell's original owner; re-arms itself until the transfer
  /// is applied or the attempt budget runs out.
  void offer_return(std::size_t cell, std::size_t attempt);

  /// Delivered kOwnershipTransfer at the original owner: take the cell back,
  /// teach its sensors, and ack the adopter.
  void apply_return(robot::RobotNode& robot, const net::Packet& pkt);

  /// Sensor ids of subarea `cell`, ascending. Built lazily in one ascending
  /// field pass (sensors are static, so membership never changes); the
  /// spatial_index fast path for the adoption/return flood loops, which
  /// otherwise classify every sensor on every ownership change.
  [[nodiscard]] const std::vector<net::NodeId>& members_of(std::size_t cell);

  std::unique_ptr<geometry::Partition> partition_;
  std::vector<std::size_t> owner_;  // cell -> fleet index (identity by default)
  std::vector<std::vector<net::NodeId>> cell_members_;  // cell -> sensor ids, ascending
  std::uint32_t transfer_seq_ = 0;  // ownership-offer retry dedup
};

}  // namespace sensrep::core
