#pragma once

#include <unordered_map>

#include "core/coordination.hpp"
#include "core/manager_node.hpp"

namespace sensrep::core {

/// Centralized manager algorithm (paper §3.1).
///
/// One dedicated, stationary robot-class manager sits at the field center.
/// Every failure is reported to it; it forwards each failure to the
/// maintenance robot whose last-known location is closest. Robots update the
/// manager (geo-routed unicast) and their one-hop sensor neighborhood
/// (broadcast) every 20 m of travel.
class CentralizedAlgorithm final : public CoordinationAlgorithm {
 public:
  void initialize() override;

  // SensorPolicy ------------------------------------------------------------
  [[nodiscard]] std::optional<wsn::ReportTarget> report_target(
      const wsn::SensorNode& sensor) const override;
  void on_location_update(wsn::SensorNode& sensor, const net::Packet& pkt,
                          net::NodeId from) override;
  void on_sensor_reset(wsn::SensorNode& sensor) override;

  // RobotPolicy ---------------------------------------------------------------
  void on_robot_location_update(robot::RobotNode& robot) override;
  void on_robot_packet(robot::RobotNode& robot, const net::Packet& pkt) override;
  void on_robot_task_complete(robot::RobotNode& robot) override;

  // Introspection (tests/examples) -------------------------------------------
  [[nodiscard]] ManagerNode& manager() { return *manager_; }
  [[nodiscard]] const std::unordered_map<net::NodeId, geometry::Vec2>& tracked_robots()
      const noexcept {
    return robot_locations_;
  }

 private:
  void handle_manager_packet(const net::Packet& pkt);
  void dispatch(const net::FailureReportPayload& failure);

  std::unique_ptr<ManagerNode> manager_;
  std::unordered_map<net::NodeId, geometry::Vec2> robot_locations_;
  // Last backlog each robot reported, plus the manager's own optimistic
  // increments between updates (queue-aware dispatch, E9).
  std::unordered_map<net::NodeId, std::uint32_t> robot_backlog_;
  geometry::Vec2 manager_pos_;
};

}  // namespace sensrep::core
