#pragma once

#include <map>
#include <set>
#include <unordered_map>
#include <utility>

#include "core/coordination.hpp"
#include "core/manager_node.hpp"

namespace sensrep::core {

/// Centralized manager algorithm (paper §3.1).
///
/// One dedicated, stationary robot-class manager sits at the field center.
/// Every failure is reported to it; it forwards each failure to the
/// maintenance robot whose last-known location is closest. Robots update the
/// manager (geo-routed unicast) and their one-hop sensor neighborhood
/// (broadcast) every 20 m of travel.
class CentralizedAlgorithm final : public CoordinationAlgorithm {
 public:
  void initialize() override;

  // SensorPolicy ------------------------------------------------------------
  [[nodiscard]] std::optional<wsn::ReportTarget> report_target(
      const wsn::SensorNode& sensor) const override;
  void on_location_update(wsn::SensorNode& sensor, const net::Packet& pkt,
                          net::NodeId from) override;
  void on_sensor_reset(wsn::SensorNode& sensor) override;

  // RobotPolicy ---------------------------------------------------------------
  void on_robot_location_update(robot::RobotNode& robot) override;
  void on_robot_packet(robot::RobotNode& robot, const net::Packet& pkt) override;
  void on_robot_task_complete(robot::RobotNode& robot) override;

  // Fault tolerance -----------------------------------------------------------
  void fail_manager() override;
  void repair_manager() override;

  // Introspection (tests/examples) -------------------------------------------
  [[nodiscard]] ManagerNode& manager() { return *manager_; }
  [[nodiscard]] const std::unordered_map<net::NodeId, geometry::Vec2>& tracked_robots()
      const noexcept {
    return robot_locations_;
  }
  /// Fleet index of the robot acting as manager after failover (empty while
  /// the dedicated manager is believed alive).
  [[nodiscard]] std::optional<std::size_t> acting_manager() const noexcept {
    return acting_manager_;
  }
  [[nodiscard]] std::size_t in_flight_count() const noexcept { return in_flight_.size(); }

 protected:
  void supervise() override;
  void on_robot_presumed_dead(std::size_t index) override;
  void on_robot_rejoin(std::size_t index) override;
  /// Centralized leases are refreshed when an update *reaches* the manager
  /// (receiver-side), not when the robot transmits it.
  [[nodiscard]] bool lease_refresh_on_broadcast() const override { return false; }

 private:
  /// One dispatched-but-unfinished repair (keyed by failure id). Closed by a
  /// kTaskComplete from the maintainer; re-dispatched if the maintainer's
  /// lease expires first.
  struct InFlight {
    net::NodeId slot = net::kNoNode;
    geometry::Vec2 location;
    std::size_t robot = 0;  // fleet index the task was handed to
  };

  void handle_manager_packet(const net::Packet& pkt);
  void dispatch(const net::FailureReportPayload& failure);
  void close_in_flight(const net::TaskCompletePayload& done);
  void perform_failover();
  /// The repaired dedicated manager accepted the acting manager's
  /// kOwnershipTransfer: the role (and the intact in-flight table) moves
  /// back. Runs on delivery, so a lost offer is simply re-sent next sweep.
  void apply_handback();

  /// Node id failure reports and task-completes are addressed to: the
  /// dedicated manager, or the promoted robot after failover.
  [[nodiscard]] net::NodeId current_manager_id() const noexcept {
    return acting_manager_ ? config().robot_id(*acting_manager_) : config().manager_id();
  }
  [[nodiscard]] bool is_acting_manager(const robot::RobotNode& robot) const noexcept {
    return acting_manager_ && config().robot_id(*acting_manager_) == robot.id();
  }

  std::unique_ptr<ManagerNode> manager_;
  std::unordered_map<net::NodeId, geometry::Vec2> robot_locations_;
  // Last backlog each robot reported, plus the manager's own optimistic
  // increments between updates (queue-aware dispatch, E9).
  std::unordered_map<net::NodeId, std::uint32_t> robot_backlog_;
  geometry::Vec2 manager_pos_;

  // Fault-tolerance state (inert while the fault model is disabled).
  std::unordered_map<std::uint64_t, InFlight> in_flight_;
  std::optional<std::size_t> acting_manager_;
  sim::SimTime manager_lease_ = 0.0;  // fleet's shared belief in the manager
  std::uint32_t manager_hb_seq_ = 0;  // manager-heartbeat flood dedup
  std::uint32_t election_seq_ = 0;    // per-election round tag (ack correlation)
  std::uint32_t transfer_seq_ = 0;    // handback-offer retry dedup

  // Link-duplication hardening (chaos::DuplicationConfig): every radio-borne
  // dispatch/election packet carries a sequence, and exact copies are dropped
  // at the receiver so a duplicated frame never acts twice.
  std::uint32_t dispatch_seq_ = 0;  // stamps outgoing kRepairRequest packets
  std::set<std::pair<net::NodeId, std::uint32_t>> seen_requests_;
  // Per robot: the (winner, election_seq) ballot it last acked — a duplicated
  // ballot is not re-acked, so one election yields at most one ack per robot.
  std::map<net::NodeId, std::pair<net::NodeId, std::uint32_t>> election_acked_;
  // At the winner: ack copies already counted, keyed (acker, election_seq) —
  // a duplicated ack must not re-refresh the acker's lease (the tiny
  // inter-arrival would pollute the auto-tuned lease cadence EWMA).
  std::set<std::pair<net::NodeId, std::uint32_t>> election_acks_seen_;
};

}  // namespace sensrep::core
