#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string_view>

#include "geometry/rect.hpp"
#include "net/medium.hpp"
#include "net/node_id.hpp"
#include "robot/energy.hpp"
#include "robot/fault.hpp"
#include "wsn/sensor_field.hpp"

namespace sensrep::core {

/// The paper's three robot coordination algorithms (§3).
enum class Algorithm {
  kCentralized,
  kFixedDistributed,
  kDynamicDistributed,
};

[[nodiscard]] std::string_view to_string(Algorithm a) noexcept;

/// Subarea shape for the fixed distributed algorithm (§4.3.1 reports the
/// hexagon variant makes a negligible difference — ablation E4).
enum class PartitionShape {
  kSquare,
  kHexagon,
};

[[nodiscard]] std::string_view to_string(PartitionShape p) noexcept;

/// Full parameterization of one simulation run. Defaults are the paper's
/// §4.1 settings.
struct SimulationConfig {
  std::uint64_t seed = 1;

  Algorithm algorithm = Algorithm::kCentralized;

  /// Number of maintenance robots (the paper sweeps k^2 in {4, 9, 16}; the
  /// central manager, when present, is an additional dedicated node).
  std::size_t robots = 4;

  /// Field scaling: the area grows with the robot count so each robot is in
  /// charge of `area_per_robot` and `sensors_per_robot` on average.
  double area_per_robot = 200.0 * 200.0;  // m^2
  std::size_t sensors_per_robot = 50;

  double sim_duration = 64000.0;  // seconds

  // Robot parameters (Pioneer 3DX speed; paper §4.1).
  double robot_speed = 1.0;         // m/s
  double robot_tx_range = 250.0;    // m (robots and manager)
  double update_threshold = 20.0;   // m, < 1/3 sensor range

  /// Spare sensor units per robot; the paper does not model restocking, so
  /// the default is unlimited. With a finite count set `robot_depot`
  /// (reload point) — or leave it empty to model a fleet that cannot repair
  /// at all (the no-maintenance baseline of E11).
  std::size_t robot_spares = std::numeric_limits<std::size_t>::max();
  std::optional<geometry::Vec2> robot_depot;

  // Fixed algorithm.
  PartitionShape partition = PartitionShape::kSquare;

  /// Dynamic algorithm: extra relay margin beyond the robot's new Voronoi
  /// cell (paper Fig. 1b's shaded boundary band). Sensors of the old and new
  /// cells always relay; the fringe hedges against stale cell knowledge at
  /// the boundary. One update-threshold leg is a sufficient default — the
  /// ablation bench sweeps this (E6 companion).
  double dynamic_fringe = 20.0;

  /// E6 ablation: self-pruning relay (Wu–Li style) — a sensor relays a flood
  /// only if one of its neighbors was not already covered by the
  /// transmission it heard.
  bool efficient_broadcast = false;

  /// Extension (E9): the centralized manager weighs each robot's reported
  /// backlog into dispatch instead of picking the geometrically closest
  /// robot (paper §3.1). Score = distance + queue_len * E[service leg].
  /// Robots piggyback their queue length on location updates. No effect on
  /// the distributed algorithms (the reporting sensor picks the robot).
  bool queue_aware_dispatch = false;

  /// Extension (E12): anticipatory repositioning. In the paper, an idle
  /// robot waits wherever its last repair ended; with this flag it drives
  /// back to the centroid of its responsibility region (subarea center for
  /// fixed, Voronoi-cell centroid of the fleet's current positions
  /// otherwise), trading return-trip motion for shorter dispatch legs.
  bool idle_reposition = false;

  wsn::FieldConfig field;   // sensor TX range, beacon period, lifetimes
  net::RadioConfig radio;   // bitrate, jitter, loss
  robot::EnergyModel energy;  // Pioneer-3DX-calibrated power draw

  /// Robot fault model (MTBF draws, scheduled crashes, manager crash) plus
  /// the lease-based detection knobs. Disabled by default — see
  /// robot::FaultConfig::enabled().
  robot::FaultConfig robot_faults;

  // --- derived -------------------------------------------------------------

  /// Square field sized for the robot count: side = sqrt(area_per_robot * robots).
  [[nodiscard]] geometry::Rect field_area() const noexcept;

  [[nodiscard]] std::size_t sensor_count() const noexcept {
    return sensors_per_robot * robots;
  }

  /// Sensor ids are [0, sensor_count); robots follow densely.
  [[nodiscard]] net::NodeId robot_base_id() const noexcept {
    return static_cast<net::NodeId>(sensor_count());
  }

  [[nodiscard]] net::NodeId robot_id(std::size_t index) const noexcept {
    return robot_base_id() + static_cast<net::NodeId>(index);
  }

  /// Id of the central manager (only attached for kCentralized).
  [[nodiscard]] net::NodeId manager_id() const noexcept {
    return robot_base_id() + static_cast<net::NodeId>(robots);
  }

  /// Throws std::invalid_argument if any parameter is out of range.
  void validate() const;
};

}  // namespace sensrep::core
