#include "core/simulation.hpp"

#include <cmath>
#include <sstream>

#include "metrics/summary.hpp"
#include "trace/format.hpp"
#include "wsn/deployment.hpp"

namespace sensrep::core {

Simulation::Simulation(const SimulationConfig& config) : config_(config) {
  config_.validate();
  // Must happen before the first schedule (nothing below schedules until the
  // components construct): the legacy hot path keeps the map-backed event
  // queue so old-vs-new equivalence runs compare whole simulations.
  sim_.use_legacy_queue(!config_.field.data_oriented);
  sim::Rng master(config_.seed);

  // Robot fault tolerance: unless overridden, sensors age robot knowledge
  // and guardians re-report unrepaired failures on the same window the lease
  // machinery uses — sensor-side and manager-side beliefs expire together.
  if (config_.robot_faults.enabled()) {
    if (config_.field.robot_stale_window <= 0.0) {
      config_.field.robot_stale_window = config_.robot_faults.lease_window();
    }
    if (config_.field.failure_rereport_period <= 0.0) {
      config_.field.failure_rereport_period = config_.robot_faults.lease_window();
    }
  }

  medium_ = std::make_unique<net::Medium>(sim_, master.fork("medium"), config_.radio,
                                          counters_, config_.field.sensor_tx_range);
  algo_ = make_algorithm(config_);
  field_ = std::make_unique<wsn::SensorField>(sim_, *medium_, *algo_, log_, config_.field,
                                              master.fork("field"));

  auto deploy_rng = master.fork("sensor-deploy");
  field_->deploy(wsn::uniform_deployment(deploy_rng, config_.field_area(),
                                         config_.sensor_count()));

  auto robot_rng = master.fork("robot-deploy");
  const auto robot_positions =
      wsn::uniform_deployment(robot_rng, config_.field_area(), config_.robots);
  robot::RobotNode::Config rc;
  rc.speed = config_.robot_speed;
  rc.tx_range = config_.robot_tx_range;
  rc.update_threshold = config_.update_threshold;
  rc.spares = config_.robot_spares;
  rc.depot = config_.robot_depot;
  robots_.reserve(config_.robots);
  for (std::size_t i = 0; i < config_.robots; ++i) {
    robots_.push_back(std::make_unique<robot::RobotNode>(
        config_.robot_id(i), robot_positions[i], rc, sim_, *medium_, *field_, *algo_));
  }

  // Spatial sharding: the driver must exist before field_->start() arms the
  // beacon clocks (they route through it) and before any robot moves (the
  // tile-ownership ledger tracks hand-offs from the deployment positions on).
  if (config_.field.shards > 1) {
    driver_ = std::make_unique<shard::ShardedDriver>(
        sim_, *medium_, *field_, config_.field_area(), config_.field.shards);
    driver_->ledger().reset(robot_positions);
    field_->set_tick_driver(driver_.get());
    algo_->set_robot_ledger(&driver_->ledger());
  }

  SystemContext ctx;
  ctx.simulator = &sim_;
  ctx.medium = medium_.get();
  ctx.field = field_.get();
  ctx.log = &log_;
  ctx.robots = &robots_;
  ctx.config = &config_;
  algo_->bind(ctx);

  field_->initialize();
  algo_->initialize();
  field_->start();

  // Fault injection: schedule robot deaths (one spontaneous draw per robot
  // plus any scheduled crashes), repairs (MTTR draws ride along with each
  // death; scheduled repairs are fixed times), and the optional manager
  // crash/repair. Everything here — including the RNG forks — happens only
  // when the fault model is enabled, so the default configuration replays
  // byte-identical traces.
  const auto& faults = config_.robot_faults;
  if (faults.enabled()) {
    algo_->start_fault_tolerance();
    if (std::isfinite(faults.mttr)) repair_rng_.emplace(master.fork("robot-repairs"));
    if (faults.spontaneous()) {
      fault_rng_.emplace(master.fork("robot-faults"));
      for (std::size_t i = 0; i < config_.robots; ++i) {
        const double at = faults.draw(*fault_rng_);
        if (at < config_.sim_duration) sim_.at(at, [this, i] { kill_robot(i); });
      }
    }
    for (const auto& crash : faults.crashes) {
      const std::size_t i = crash.robot;
      sim_.at(crash.at, [this, i] { kill_robot(i); });
    }
    for (const auto& rep : faults.repairs) {
      const std::size_t i = rep.robot;
      sim_.at(rep.at, [this, i] { revive_robot(i); });
    }
    if (faults.manager_crash_at) {
      sim_.at(*faults.manager_crash_at, [this] { algo_->fail_manager(); });
    }
    if (faults.manager_repair_at) {
      sim_.at(*faults.manager_repair_at, [this] { algo_->repair_manager(); });
    }
  }
}

void Simulation::kill_robot(std::size_t index) {
  auto& r = *robots_[index];
  if (r.failed()) return;
  const std::size_t lost = r.fail();
  algo_->on_robot_failed(r, lost);
  // MTTR: draw how long the unit stays out of service and schedule its
  // return (only when it lands inside the mission).
  if (repair_rng_) {
    const double at = sim_.now() + config_.robot_faults.draw_repair(*repair_rng_);
    if (at < config_.sim_duration) sim_.at(at, [this, index] { revive_robot(index); });
  }
}

void Simulation::revive_robot(std::size_t index) {
  auto& r = *robots_[index];
  if (!r.failed()) return;
  r.repair();  // runs the algorithm's rejoin path via the policy hook
  // A repaired unit ages anew: with spontaneous failures on, draw its next
  // time-to-failure so the fleet cycles toward MTBF/(MTBF+MTTR) availability.
  if (fault_rng_) {
    const double at = sim_.now() + config_.robot_faults.draw(*fault_rng_);
    if (at < config_.sim_duration) sim_.at(at, [this, index] { kill_robot(index); });
  }
}

Simulation::~Simulation() = default;

void Simulation::run() { run_until(config_.sim_duration); }

void Simulation::attach_event_log(trace::EventLog& log) {
  field_->set_event_log(&log);
  algo_->set_event_log(&log);
}

void Simulation::attach_tracer(obs::Tracer& tracer) {
  field_->set_tracer(&tracer);
  algo_->set_tracer(&tracer);
  for (auto& r : robots_) r->set_tracer(&tracer);
}

void Simulation::run_until(sim::SimTime t) {
  if (driver_) {
    driver_->run_until(t);
  } else {
    sim_.run_until(t);
  }
}

bool Simulation::inject_sensor_failure(net::NodeId slot) {
  if (!field_->is_sensor(slot)) {
    throw std::invalid_argument(trace::strfmt(
        "inject_sensor_failure: id %u is not a sensor (field has %zu slots)", slot,
        field_->size()));
  }
  if (!field_->node(slot).alive()) return false;
  field_->fail_slot(slot);
  return true;
}

bool Simulation::inject_robot_crash(std::size_t index) {
  if (index >= robots_.size()) {
    throw std::invalid_argument(trace::strfmt(
        "inject_robot_crash: index %zu out of range (fleet of %zu)", index,
        robots_.size()));
  }
  if (robots_[index]->failed()) return false;
  kill_robot(index);
  return true;
}

bool Simulation::inject_robot_repair(std::size_t index) {
  if (index >= robots_.size()) {
    throw std::invalid_argument(trace::strfmt(
        "inject_robot_repair: index %zu out of range (fleet of %zu)", index,
        robots_.size()));
  }
  if (!robots_[index]->failed()) return false;
  revive_robot(index);
  return true;
}

StateDigest Simulation::digest() const {
  StateDigest d;
  d.clock = sim_.now();
  d.events_executed = sim_.executed();
  // Armed tick series live in tile tickers under sharding; the sequential
  // schedule keeps one pending queue event per series, so add them back for
  // a shard-count-invariant digest.
  d.pending_events = sim_.pending() + (driver_ ? driver_->armed_count() : 0);
  d.failures = log_.size();
  d.repaired = log_.repaired_count();
  const auto& faults = algo_->fault_stats();
  d.robot_failures = faults.robot_failures;
  d.robot_repairs = faults.robot_repairs;
  for (const auto& robot : robots_) {
    if (!robot->failed()) ++d.live_robots;
    d.pending_tasks += robot->queue().size() + (robot->busy() ? 1 : 0);
  }
  d.transmissions = counters_.total();
  return d;
}

std::string StateDigest::to_string() const {
  return trace::strfmt(
      "clock=%.17g executed=%llu pending_events=%llu failures=%llu repaired=%llu "
      "robot_failures=%llu robot_repairs=%llu live_robots=%llu pending_tasks=%llu "
      "tx=%llu",
      clock, static_cast<unsigned long long>(events_executed),
      static_cast<unsigned long long>(pending_events),
      static_cast<unsigned long long>(failures),
      static_cast<unsigned long long>(repaired),
      static_cast<unsigned long long>(robot_failures),
      static_cast<unsigned long long>(robot_repairs),
      static_cast<unsigned long long>(live_robots),
      static_cast<unsigned long long>(pending_tasks),
      static_cast<unsigned long long>(transmissions));
}

ExperimentResult Simulation::result() const {
  ExperimentResult r;
  r.algorithm = config_.algorithm;
  r.robots = config_.robots;
  r.seed = config_.seed;

  metrics::Summary travel;
  metrics::Summary report_hops;
  metrics::Summary request_hops;
  metrics::Summary detect_latency;
  metrics::Summary repair_latency;

  for (const auto& rec : log_.records()) {
    ++r.failures;
    if (rec.detected()) {
      ++r.detected;
      detect_latency.add(rec.detected_at - rec.failed_at);
    }
    if (sim::is_valid_time(rec.reported_at)) {
      ++r.reported;
      report_hops.add(static_cast<double>(rec.report_hops));
    }
    if (rec.request_hops > 0) request_hops.add(static_cast<double>(rec.request_hops));
    if (rec.repaired()) {
      ++r.repaired;
      travel.add(rec.travel_distance);
      repair_latency.add(rec.repair_latency());
    }
  }

  r.avg_travel_per_repair = travel.mean();
  r.avg_report_hops = report_hops.mean();
  r.avg_request_hops = request_hops.mean();
  r.avg_detection_latency = detect_latency.mean();
  r.avg_repair_latency = repair_latency.mean();
  r.p95_repair_latency = repair_latency.empty() ? 0.0 : repair_latency.percentile(0.95);
  r.delivery_ratio =
      r.detected == 0 ? 1.0
                      : static_cast<double>(r.reported) / static_cast<double>(r.detected);
  r.unreported = field_->unreported_count();

  r.router_drops = field_->router_drops();
  for (const auto& robot : robots_) r.router_drops += robot->router().drops();

  for (std::size_t c = 0; c < r.transmissions.size(); ++c) {
    r.transmissions[c] = counters_.get(static_cast<metrics::MessageCategory>(c));
  }
  r.location_update_tx_per_repair =
      r.repaired == 0
          ? 0.0
          : static_cast<double>(r.tx(metrics::MessageCategory::kLocationUpdate)) /
                static_cast<double>(r.repaired);

  for (const auto& robot : robots_) {
    r.total_robot_distance += robot->odometer();
    r.motion_energy_j += config_.energy.motion_energy_j(robot->odometer());
    r.mission_energy_j += config_.energy.mission_energy_j(robot->odometer(), sim_.now());
    r.orphaned_tasks += robot->orphaned_tasks();
  }
  r.init_motion = algo_->init_motion();

  const auto& faults = algo_->fault_stats();
  r.robot_failures = faults.robot_failures;
  r.tasks_lost = faults.tasks_lost;
  r.redispatches = faults.redispatches;
  r.failover_events = faults.failovers;
  r.adoptions = faults.adoptions;
  r.robot_repairs = faults.robot_repairs;
  r.elections = faults.elections;
  r.handbacks = faults.handbacks;
  r.ownership_transfers = faults.ownership_transfers;
  return r;
}

std::string ExperimentResult::summary() const {
  std::ostringstream out;
  out << trace::strfmt("algorithm=%s robots=%zu seed=%llu\n",
                       std::string(to_string(algorithm)).c_str(), robots,
                       static_cast<unsigned long long>(seed));
  out << trace::strfmt(
      "  failures=%zu detected=%zu reported=%zu repaired=%zu unreported=%zu drops=%llu\n",
      failures, detected, reported, repaired, unreported,
      static_cast<unsigned long long>(router_drops));
  out << trace::strfmt("  fig2 avg travel per repair   : %8.2f m\n", avg_travel_per_repair);
  out << trace::strfmt("  fig3 avg report hops          : %8.2f\n", avg_report_hops);
  if (avg_request_hops > 0.0) {
    out << trace::strfmt("  fig3 avg request hops         : %8.2f\n", avg_request_hops);
  }
  out << trace::strfmt("  fig4 location-update tx/fail  : %8.2f\n",
                       location_update_tx_per_repair);
  out << trace::strfmt("  latency detect=%.1fs repair avg=%.1fs p95=%.1fs\n",
                       avg_detection_latency, avg_repair_latency, p95_repair_latency);
  out << trace::strfmt("  motion total=%.1fm init=%.1fm delivery=%.4f\n",
                       total_robot_distance, init_motion, delivery_ratio);
  out << trace::strfmt("  energy motion=%.1fkJ mission=%.1fkJ\n",
                       motion_energy_j / 1000.0, mission_energy_j / 1000.0);
  // Printed only when something fault-related actually happened, so
  // fault-free runs keep the historical summary format.
  if (robot_failures > 0 || tasks_lost > 0 || orphaned_tasks > 0 || redispatches > 0 ||
      failover_events > 0 || adoptions > 0) {
    out << trace::strfmt(
        "  faults robots=%zu lost=%zu orphaned=%zu redispatch=%zu failover=%zu adopt=%zu\n",
        robot_failures, tasks_lost, orphaned_tasks, redispatches, failover_events,
        adoptions);
  }
  // Recovery line, same rule: only when the MTTR machinery actually ran.
  if (robot_repairs > 0 || elections > 0 || handbacks > 0 || ownership_transfers > 0) {
    out << trace::strfmt(
        "  repairs robots=%zu elections=%zu handback=%zu ownership=%zu\n",
        robot_repairs, elections, handbacks, ownership_transfers);
  }
  return out.str();
}

}  // namespace sensrep::core
