#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/simulation.hpp"
#include "metrics/summary.hpp"

namespace sensrep::core {

/// One metric aggregated across replications.
struct MetricEstimate {
  double mean = 0.0;
  double stddev = 0.0;
  double ci95_half_width = 0.0;  // normal-approximation 95% interval
  std::size_t n = 0;

  [[nodiscard]] double lo() const noexcept { return mean - ci95_half_width; }
  [[nodiscard]] double hi() const noexcept { return mean + ci95_half_width; }
};

/// Cross-seed aggregate of the figure metrics — single-seed simulation
/// results carry deployment-draw noise (visible in Fig. 2's small
/// fixed-vs-dynamic gap), and any claim worth publishing needs replication.
struct ReplicatedResult {
  SimulationConfig base_config;
  std::vector<std::uint64_t> seeds;

  MetricEstimate travel_per_repair;          // Fig. 2
  MetricEstimate report_hops;                // Fig. 3
  MetricEstimate request_hops;               // Fig. 3, centralized
  MetricEstimate update_tx_per_repair;       // Fig. 4
  MetricEstimate repair_latency;
  MetricEstimate delivery_ratio;
  MetricEstimate failures;

  /// Human-readable block, one line per metric: "mean ± ci95 (n=..)".
  [[nodiscard]] std::string summary() const;
};

/// Runs `replications` full simulations of `config`, with seeds
/// config.seed, config.seed+1, ... and aggregates the figure metrics.
/// Requires replications >= 1. Serial; runner::run_replicated is the
/// parallel equivalent with the same seed schedule and aggregation.
[[nodiscard]] ReplicatedResult run_replicated(const SimulationConfig& config,
                                              std::size_t replications);

/// Aggregates already-computed per-seed results (any producer — the serial
/// loop above or the parallel runner). Requires per_seed non-empty; seed
/// order is preserved into ReplicatedResult::seeds.
[[nodiscard]] ReplicatedResult aggregate_replications(
    const SimulationConfig& base_config, const std::vector<ExperimentResult>& per_seed);

/// Normal-approximation aggregation of per-seed samples (exposed for tests).
[[nodiscard]] MetricEstimate estimate_from(const metrics::Summary& summary);

/// True when two estimates' 95% intervals do not overlap — the replication
/// suite's criterion for calling an ordering "significant".
[[nodiscard]] bool significantly_different(const MetricEstimate& a,
                                           const MetricEstimate& b) noexcept;

}  // namespace sensrep::core
