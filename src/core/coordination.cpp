#include "core/coordination.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geometry/voronoi.hpp"
#include "obs/flight_recorder.hpp"
#include "shard/robot_ledger.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/profiler.hpp"
#include "trace/log.hpp"

#include "core/centralized.hpp"
#include "core/dynamic_distributed.hpp"
#include "core/fixed_distributed.hpp"

namespace sensrep::core {

using net::NodeId;
using net::Packet;

bool CoordinationAlgorithm::record_report_arrival(const Packet& pkt) {
  // Duplication dedup: seq 0 is an untagged (hand-crafted test) report and is
  // always fresh; every real report is stamped with a per-sensor sequence.
  if (pkt.seq != 0 && !seen_reports_.insert({pkt.src, pkt.seq}).second) {
    obs::Metrics::inc(obs::Counter::kReportsDeduped);
    return false;
  }
  obs::Metrics::inc(obs::Counter::kReportsArrived);
  const auto& body = std::get<net::FailureReportPayload>(pkt.payload);
  if (body.failure_id == 0) return true;
  auto& rec = ctx_.log->at(body.failure_id - 1);
  if (!sim::is_valid_time(rec.reported_at)) {
    rec.reported_at = ctx_.simulator->now();
    rec.report_hops = pkt.hops;
    obs::FlightRecorder::note(ctx_.simulator->now(),
                              obs::FlightKind::kReportArrival, body.failed_node,
                              pkt.src);
    if (event_log_) {
      event_log_->record({ctx_.simulator->now(), trace::EventKind::kReport,
                          body.failed_node, pkt.src, body.failed_location,
                          static_cast<double>(pkt.hops)});
    }
    if (tracer_) {
      tracer_->close(body.failure_id, obs::Stage::kReport, ctx_.simulator->now(),
                     static_cast<double>(pkt.hops), pkt.src);
      tracer_->open(body.failure_id, obs::Stage::kDispatch, ctx_.simulator->now(),
                    body.failed_node);
    }
  }
  return true;
}

void CoordinationAlgorithm::acknowledge_report(routing::GeoRouter& router,
                                               const net::Packet& report) {
  if (!config().field.reliable_reports) return;
  const auto& body = std::get<net::FailureReportPayload>(report.payload);
  Packet ack;
  ack.type = net::PacketType::kReportAck;
  ack.dst = report.src;
  ack.dst_location = body.reporter_location;
  ack.payload = net::ReportAckPayload{body.failed_node};
  router.send(std::move(ack));
}

void CoordinationAlgorithm::dispatch_to(robot::RobotNode& robot,
                                        const robot::RepairTask& task) {
  robot.enqueue(task);
  obs::Metrics::inc(obs::Counter::kDispatches);
  obs::Metrics::observe(obs::Hist::kDispatchDistance,
                        geometry::distance(robot.position(), task.location));
  obs::FlightRecorder::note(ctx_.simulator->now(), obs::FlightKind::kDispatch,
                            task.slot, robot.id());
  if (event_log_) {
    event_log_->record({ctx_.simulator->now(), trace::EventKind::kDispatch, task.slot,
                        robot.id(), task.location,
                        static_cast<double>(robot.queue().size())});
  }
}

robot::RepairTask CoordinationAlgorithm::make_task(NodeId failed_slot,
                                                   geometry::Vec2 failed_location,
                                                   std::uint64_t failure_id) const {
  robot::RepairTask task;
  task.slot = failed_slot;
  task.location = failed_location;
  task.failure_id = failure_id;
  task.enqueued_at = ctx_.simulator->now();
  return task;
}

void CoordinationAlgorithm::broadcast_location_update(robot::RobotNode& robot, bool init) {
  Packet pkt;
  pkt.type = net::PacketType::kLocationUpdate;
  pkt.src = robot.id();
  pkt.dst = net::kBroadcastId;
  const auto backlog =
      static_cast<std::uint32_t>(robot.queue().size() + (robot.busy() ? 1 : 0));
  pkt.payload = net::LocationUpdatePayload{robot.id(), robot.position(),
                                           robot.next_update_seq(), backlog};
  if (init) pkt.category_override = metrics::MessageCategory::kInitialization;
  ctx_.medium->broadcast(robot.id(), pkt);
  // Distributed algorithms: the flood itself is the liveness signal peers
  // observe, so the broadcast refreshes the sender's lease. (A failed robot
  // never reaches here — its heartbeat and movement events are cancelled.)
  if (ft_active_ && lease_refresh_on_broadcast()) refresh_lease(robot_index(robot.id()));
  if (event_log_ && !init) {
    event_log_->record({ctx_.simulator->now(), trace::EventKind::kRobotMove, robot.id(),
                        std::nullopt, robot.position(), robot.odometer()});
  }
}

geometry::Vec2 CoordinationAlgorithm::idle_home(const robot::RobotNode& robot) const {
  std::vector<geometry::Vec2> sites;
  if (config().field.data_oriented) {
    sites = robot_pos_;  // the flat mirror IS the site list
  } else {
    sites.reserve(ctx_.robots->size());
    for (const auto& r : *ctx_.robots) sites.push_back(r->position());
  }
  const geometry::VoronoiDiagram voronoi(sites, config().field_area());
  const auto& cell = voronoi.cell(robot_index(robot.id()));
  return cell.empty() ? robot.position() : cell.centroid();
}

void CoordinationAlgorithm::on_robot_idle(robot::RobotNode& robot) {
  if (!config().idle_reposition) return;  // paper behavior: wait in place
  const geometry::Vec2 home = idle_home(robot);
  // A dead-band one update-leg wide prevents oscillating micro-returns
  // (arrival at home re-triggers the idle hook).
  if (geometry::distance(robot.position(), home) <= config().update_threshold) return;
  robot.drive_to(home);
}

void CoordinationAlgorithm::on_robot_failed(robot::RobotNode& robot,
                                            std::size_t tasks_lost) {
  ++fault_stats_.robot_failures;
  fault_stats_.tasks_lost += tasks_lost;
  obs::Metrics::inc(obs::Counter::kRobotFailures);
  obs::Metrics::inc(obs::Counter::kTasksLost, tasks_lost);
  obs::FlightRecorder::note(ctx_.simulator->now(), obs::FlightKind::kRobotCrash,
                            robot.id(),
                            static_cast<std::uint32_t>(tasks_lost));
  if (event_log_) {
    event_log_->record({ctx_.simulator->now(), trace::EventKind::kRobotFailure,
                        robot.id(), std::nullopt, robot.position(),
                        static_cast<double>(tasks_lost)});
  }
}

void CoordinationAlgorithm::on_robot_repaired(robot::RobotNode& robot) {
  ++fault_stats_.robot_repairs;
  obs::Metrics::inc(obs::Counter::kRobotRepairs);
  obs::FlightRecorder::note(ctx_.simulator->now(),
                            obs::FlightKind::kRobotRepair, robot.id());
  if (event_log_) {
    event_log_->record({ctx_.simulator->now(), trace::EventKind::kRobotRepair,
                        robot.id(), std::nullopt, robot.position(), std::nullopt});
  }
  const std::size_t index = robot_index(robot.id());
  if (ft_active_) {
    // Grace lease from the resurrection instant, and a reset cadence: the
    // robot's pre-death update rhythm says nothing about its new life.
    presumed_dead_[index] = false;
    lease_[index] = ctx_.simulator->now();
    // The rejoined lease re-enters the floor (crucial when the whole fleet
    // was presumed dead and the floor had risen to +inf — without this the
    // batched sweep would never look at the reborn robot again).
    lease_floor_ = std::min(lease_floor_, lease_[index]);
    cadence_ewma_[index] = config().robot_faults.heartbeat_period;
    robot.start_heartbeat(config().robot_faults.heartbeat_period);
  }
  on_robot_rejoin(index);
}

void CoordinationAlgorithm::on_robot_moved(robot::RobotNode& robot) {
  const std::size_t index = robot_index(robot.id());
  robot_pos_[index] = robot.position();
  if (robot_grid_) {
    robot_grid_->move(static_cast<std::uint32_t>(index), robot.position());
  }
  // Sharded runs: robot movement executes at tick barriers only, so the
  // tile hand-off (and its conservation invariant) is maintained here.
  if (robot_ledger_) robot_ledger_->on_robot_moved(index, robot.position());
}

void CoordinationAlgorithm::ensure_robot_grid() {
  if (robot_grid_) return;
  // One bucket per robot's average responsibility area: nearest() then
  // settles within a ring or two at any fleet size.
  robot_grid_.emplace(config().field_area(), std::sqrt(config().area_per_robot));
  for (std::size_t i = 0; i < robot_count(); ++i) {
    robot_grid_->insert(static_cast<std::uint32_t>(i), robot_at(i).position());
  }
}

void CoordinationAlgorithm::start_fault_tolerance() {
  const auto& faults = config().robot_faults;
  if (!faults.enabled() || ft_active_) return;
  ft_active_ = true;
  const auto now = ctx_.simulator->now();
  lease_floor_ = now;
  lease_.assign(robot_count(), now);
  presumed_dead_.assign(robot_count(), false);
  cadence_ewma_.assign(robot_count(), faults.heartbeat_period);
  for (std::size_t i = 0; i < robot_count(); ++i) {
    robot_at(i).start_heartbeat(faults.heartbeat_period);
  }
  ctx_.simulator->every(faults.heartbeat_period, [this] {
    // Timed here (not inside supervise()) so algorithm overrides that call
    // the base sweep are counted once per tick, not nested.
    const obs::ScopedTimer probe(obs::Probe::kSupervise);
    supervise();
  });
}

void CoordinationAlgorithm::refresh_lease(std::size_t index) {
  if (!ft_active_) return;
  const auto now = ctx_.simulator->now();
  const double interval = now - lease_[index];
  if (interval > 0.0) {
    // EWMA of the observed inter-refresh cadence (auto-tuned lease windows).
    cadence_ewma_[index] = 0.75 * cadence_ewma_[index] + 0.25 * interval;
  }
  lease_[index] = now;
}

double CoordinationAlgorithm::effective_lease_window(std::size_t index) const {
  const auto& faults = config().robot_faults;
  if (!faults.lease_auto_tune) return faults.lease_window();
  return std::clamp(faults.lease_multiplier * cadence_ewma_[index],
                    2.0 * faults.heartbeat_period, faults.lease_window());
}

robot::RobotNode* CoordinationAlgorithm::closest_live_robot(geometry::Vec2 pos) {
  const obs::ScopedTimer probe(obs::Probe::kClosestLiveRobot);
  if (config().field.spatial_index) {
    ensure_robot_grid();
    // nearest_euclid compares fl(sqrt(d2)) with ties to the lowest index —
    // exactly the brute loop's comparator (ascending scan, strict <, sqrt
    // distances), so the two paths agree even at ULP-coincident distances.
    const auto best = robot_grid_->nearest_euclid(pos, [this](std::uint32_t i) {
      return !(ft_active_ && presumed_dead_[i]);
    });
    return best ? &robot_at(*best) : nullptr;
  }
  const bool soa = config().field.data_oriented;
  robot::RobotNode* best = nullptr;
  double best_d = 0.0;
  for (std::size_t i = 0; i < robot_count(); ++i) {
    if (ft_active_ && presumed_dead_[i]) continue;
    const geometry::Vec2 rp = soa ? robot_pos_[i] : robot_at(i).position();
    const double d = geometry::distance(rp, pos);
    if (!best || d < best_d) {
      best = &robot_at(i);
      best_d = d;
    }
  }
  return best;
}

std::optional<std::size_t> CoordinationAlgorithm::nearest_robot_index(
    geometry::Vec2 pos) {
  if (config().field.spatial_index) {
    ensure_robot_grid();
    const auto best = robot_grid_->nearest(pos);  // d2 key, ties to lowest index
    if (!best) return std::nullopt;
    return static_cast<std::size_t>(*best);
  }
  const bool soa = config().field.data_oriented;
  std::optional<std::size_t> best;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < robot_count(); ++i) {
    const geometry::Vec2 rp = soa ? robot_pos_[i] : robot_at(i).position();
    const double d2 = geometry::distance2(rp, pos);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = i;
    }
  }
  return best;
}

void CoordinationAlgorithm::supervise() {
  const auto now = ctx_.simulator->now();
  const auto& faults = config().robot_faults;
  if (config().field.spatial_index) {
    // Batched sweep: the smallest window any live robot could be held to
    // (auto-tune clamps to >= 2 heartbeats; fixed windows are uniform).
    // Every live lease is >= lease_floor_, so while the floor itself is
    // within that window no lease can have expired — skip the scan.
    const double min_window =
        faults.lease_auto_tune
            ? std::min(2.0 * faults.heartbeat_period, faults.lease_window())
            : faults.lease_window();
    if (now - lease_floor_ <= min_window) return;
  }
  sim::SimTime floor = sim::kNever;
  for (std::size_t i = 0; i < robot_count(); ++i) {
    if (presumed_dead_[i]) continue;
    const double window = effective_lease_window(i);
    if (now - lease_[i] <= window) {
      floor = std::min(floor, lease_[i]);
      continue;
    }
    presumed_dead_[i] = true;
    obs::Metrics::inc(obs::Counter::kLeaseExpiries);
    obs::FlightRecorder::note(now, obs::FlightKind::kLeaseExpiry,
                              robot_at(i).id());
    // Clamped to >= 0: at the boundary sweep the raw difference is a
    // negative epsilon, which printed as "-0s ago" and broke trace greps.
    const double overdue = std::max(0.0, now - lease_[i] - window);
    trace::Logger::global().logf(
        trace::Level::kInfo, now, "fault",
        "robot %u presumed dead (lease expired %.0fs ago, window %.0fs)",
        robot_at(i).id(), overdue, window);
    on_robot_presumed_dead(i);
  }
  lease_floor_ = floor;
}

bool CoordinationAlgorithm::relay_adds_coverage(const wsn::SensorNode& sensor,
                                                NodeId from) const {
  const auto origin = sensor.table().position_of(from);
  if (!origin) return true;  // unknown transmitter: relay conservatively
  const double range = config().field.sensor_tx_range;
  for (const auto& e : sensor.table().entries()) {
    if (e.id == from) continue;
    if (geometry::distance(e.pos, *origin) > range &&
        geometry::distance(e.pos, sensor.position()) <= range) {
      return true;  // this neighbor missed the heard transmission
    }
  }
  return false;
}

std::unique_ptr<CoordinationAlgorithm> make_algorithm(const SimulationConfig& config) {
  switch (config.algorithm) {
    case Algorithm::kCentralized:
      return std::make_unique<CentralizedAlgorithm>();
    case Algorithm::kFixedDistributed:
      return std::make_unique<FixedDistributedAlgorithm>();
    case Algorithm::kDynamicDistributed:
      return std::make_unique<DynamicDistributedAlgorithm>();
  }
  throw std::invalid_argument("make_algorithm: unknown algorithm");
}

}  // namespace sensrep::core
