#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "spatial/uniform_grid.hpp"
#include "metrics/failure_log.hpp"
#include "obs/tracer.hpp"
#include "net/medium.hpp"
#include "robot/robot.hpp"
#include "sim/simulator.hpp"
#include "trace/event_log.hpp"
#include "wsn/sensor_field.hpp"
#include "wsn/sensor_policy.hpp"

namespace sensrep::shard {
class RobotLedger;
}

namespace sensrep::core {

/// Everything a coordination algorithm needs to reach at runtime. All
/// pointers are owned by the enclosing Simulation and outlive the algorithm.
struct SystemContext {
  sim::Simulator* simulator = nullptr;
  net::Medium* medium = nullptr;
  wsn::SensorField* field = nullptr;
  metrics::FailureLog* log = nullptr;
  std::vector<std::unique_ptr<robot::RobotNode>>* robots = nullptr;
  const SimulationConfig* config = nullptr;
};

/// Counters for the robot fault-tolerance subsystem (all zero when the fault
/// model is disabled). `robot_failures`/`tasks_lost` are ground truth from
/// the injector; the rest count what the recovery machinery actually did.
struct FaultStats {
  std::size_t robot_failures = 0;  // robots that died (injection ground truth)
  std::size_t tasks_lost = 0;      // tasks dropped by dying robots
  std::size_t redispatches = 0;    // in-flight tasks re-sent to another robot
  std::size_t failovers = 0;       // manager failover promotions (centralized)
  std::size_t adoptions = 0;       // orphaned subareas adopted (fixed)
  std::size_t robot_repairs = 0;       // robots resurrected (MTTR ground truth)
  std::size_t elections = 0;           // real kElection rounds run (centralized)
  std::size_t handbacks = 0;           // acting manager -> repaired manager
  std::size_t ownership_transfers = 0; // kOwnershipTransfer deliveries applied
};

/// Base of the three coordination algorithms (paper §3).
///
/// An algorithm is simultaneously the SensorPolicy (sensor-side decisions)
/// and the RobotPolicy (robot-side decisions); one shared instance serves
/// every node in the simulation. Concrete subclasses: CentralizedAlgorithm,
/// FixedDistributedAlgorithm, DynamicDistributedAlgorithm.
class CoordinationAlgorithm : public wsn::SensorPolicy, public robot::RobotPolicy {
 public:
  /// Late-binds the runtime context (nodes are constructed after the policy,
  /// which the SensorField constructor needs).
  virtual void bind(const SystemContext& ctx) {
    ctx_ = ctx;
    // Seed the flat fleet-position mirror (kept in sync by on_robot_moved).
    robot_pos_.resize(robot_count());
    for (std::size_t i = 0; i < robot_count(); ++i) {
      robot_pos_[i] = robot_at(i).position();
    }
  }

  /// Paper §2, stage (a): set up roles, manager knowledge, sensors' myrobot
  /// relationships. Runs at t=0, before SensorField::start(). Initialization
  /// traffic is counted under MessageCategory::kInitialization.
  virtual void initialize() = 0;

  /// Robot meters driven during initialization (the fixed algorithm moves
  /// robots to subarea centers); excluded from the Fig.-2 metric.
  [[nodiscard]] double init_motion() const noexcept { return init_motion_; }

  /// Streams report/dispatch/robot-move events into `log` (nullptr
  /// detaches). The log must outlive the algorithm.
  void set_event_log(trace::EventLog* log) noexcept { event_log_ = log; }

  /// Opens/closes report/dispatch spans on `tracer` (nullptr detaches). The
  /// tracer must outlive the algorithm.
  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }

  /// Streams robot position updates into the sharded driver's tile-ownership
  /// ledger (nullptr detaches). The ledger must outlive the algorithm; only
  /// installed when FieldConfig::shards > 1.
  void set_robot_ledger(shard::RobotLedger* ledger) noexcept { robot_ledger_ = ledger; }

  /// RobotPolicy: anticipatory repositioning (config().idle_reposition,
  /// extension E12) — an idle robot returns to its region's centroid.
  void on_robot_idle(robot::RobotNode& robot) override;

  /// RobotPolicy: ground-truth bookkeeping when the injector kills a robot.
  /// Recovery is NOT triggered here — the system only learns of the death
  /// when the robot's lease expires.
  void on_robot_failed(robot::RobotNode& robot, std::size_t tasks_lost) override;

  /// RobotPolicy: a repaired robot rejoined service. Clears the presumed-dead
  /// belief, grants a fresh lease, restarts the heartbeat, then runs the
  /// algorithm-specific on_robot_rejoin path.
  void on_robot_repaired(robot::RobotNode& robot) override;

  /// RobotPolicy: the robot's position changed — apply the incremental move
  /// to the fleet's spatial index (no-op until the index is first needed).
  void on_robot_moved(robot::RobotNode& robot) override;

  /// Arms the fault-tolerance machinery (no-op unless the fault model is
  /// enabled): starts every robot's liveness heartbeat, seeds the lease
  /// table, and schedules the periodic lease supervision sweep. Called by
  /// Simulation after initialize().
  void start_fault_tolerance();

  /// Kills the dedicated manager node (centralized only; default no-op).
  /// Exercised by FaultConfig::manager_crash_at.
  virtual void fail_manager() {}

  /// Resurrects the dedicated manager node (centralized only; default
  /// no-op). Exercised by FaultConfig::manager_repair_at; the acting manager
  /// hands the role back at the next supervision sweep.
  virtual void repair_manager() {}

  [[nodiscard]] const FaultStats& fault_stats() const noexcept { return fault_stats_; }

  /// Lease window applied to robot `index` in supervise(). With
  /// lease_auto_tune off this is the configured lease_window(); with it on,
  /// `lease_multiplier * EWMA(inter-refresh interval)` clamped to
  /// [2 * heartbeat_period, lease_window()].
  [[nodiscard]] double effective_lease_window(std::size_t index) const;

  /// Public read-only view of the supervision belief for robot `index`
  /// (invariant oracle, tests). False whenever fault tolerance is inactive.
  [[nodiscard]] bool robot_presumed_dead(std::size_t index) const noexcept {
    return presumed_dead(index);
  }

 protected:
  [[nodiscard]] const SystemContext& ctx() const noexcept { return ctx_; }
  [[nodiscard]] const SimulationConfig& config() const noexcept { return *ctx_.config; }
  [[nodiscard]] robot::RobotNode& robot_at(std::size_t index) {
    return *(*ctx_.robots)[index];
  }
  [[nodiscard]] std::size_t robot_count() const noexcept { return ctx_.robots->size(); }

  /// Index of a robot from its node id; robots are densely numbered.
  [[nodiscard]] std::size_t robot_index(net::NodeId id) const noexcept {
    return id - config().robot_base_id();
  }

  /// Stamps reported_at / report_hops on the failure record named by a
  /// delivered FailureReport. Returns false when this exact report copy
  /// (same originator and originator-scoped seq) was already processed —
  /// link-level duplication delivered it twice. Callers must not dispatch a
  /// stale copy; acking it again is fine (the first ack may have been lost).
  /// Legitimate retries and re-reports carry fresh seqs and return true.
  bool record_report_arrival(const net::Packet& pkt);

  /// reliable_reports: geo-routes a kReportAck back to the reporter through
  /// `router` (the receiving manager's or robot's). Acks every copy so a
  /// retransmitted report whose first ack was lost still gets one.
  void acknowledge_report(routing::GeoRouter& router, const net::Packet& report);

  /// Builds the RepairTask for a delivered report/request payload.
  [[nodiscard]] robot::RepairTask make_task(net::NodeId failed_slot,
                                            geometry::Vec2 failed_location,
                                            std::uint64_t failure_id) const;

  /// Hands a task to its maintainer and records the dispatch event.
  void dispatch_to(robot::RobotNode& robot, const robot::RepairTask& task);

  /// Where an idle robot should wait. Default: the centroid of its Voronoi
  /// cell over the fleet's current positions; the fixed algorithm overrides
  /// with its subarea center.
  [[nodiscard]] virtual geometry::Vec2 idle_home(const robot::RobotNode& robot) const;

  /// Seeds a location-update flood / one-hop announce from a robot.
  /// `init` books the transmissions as initialization cost.
  void broadcast_location_update(robot::RobotNode& robot, bool init = false);

  /// E6 self-pruning test: should `sensor` relay a flood it heard from
  /// `from`, given every neighbor it could newly cover? True when relaying
  /// adds coverage (or when the heard transmission's origin is unknown).
  [[nodiscard]] bool relay_adds_coverage(const wsn::SensorNode& sensor,
                                         net::NodeId from) const;

  // --- robot fault tolerance (lease-based liveness) -------------------------

  /// True once start_fault_tolerance() armed the machinery.
  [[nodiscard]] bool fault_tolerance_active() const noexcept { return ft_active_; }

  /// Whether the supervision sweep has declared robot `index` dead. This is
  /// the system's *belief*, driven purely by lease expiry — a freshly failed
  /// robot is still presumed live until its lease runs out.
  [[nodiscard]] bool presumed_dead(std::size_t index) const noexcept {
    return ft_active_ && presumed_dead_[index];
  }

  /// Re-arms robot `index`'s lease (a location update / heartbeat arrived).
  void refresh_lease(std::size_t index);

  /// Closest presumed-live robot to `pos`, or nullptr when the whole fleet
  /// is presumed dead. Uses leases, not ground truth: a dead-but-unexpired
  /// robot can be picked — its lease will expire and trigger recovery again.
  [[nodiscard]] robot::RobotNode* closest_live_robot(geometry::Vec2 pos);

  /// Fleet index of the robot nearest `pos` under the squared-distance
  /// comparator (ties to the lowest index), ignoring liveness — the dynamic
  /// init sweep's assignment rule. Grid-backed when spatial_index is on;
  /// nullopt only for an empty fleet.
  [[nodiscard]] std::optional<std::size_t> nearest_robot_index(geometry::Vec2 pos);

  /// Periodic lease sweep: expires silent robots and fires
  /// on_robot_presumed_dead for each. Centralized overrides to check the
  /// manager's own lease first (a dead manager starves every robot lease).
  virtual void supervise();

  /// Recovery hook: the system just gave up on robot `index` (lease expired).
  /// Centralized re-dispatches its in-flight tasks; fixed re-assigns its
  /// subarea; dynamic refloods a live robot's location. Default: nothing.
  virtual void on_robot_presumed_dead(std::size_t /*index*/) {}

  /// Rejoin hook: robot `index` was repaired and is back in service (lease
  /// and heartbeat already restored by the base). Centralized re-admits it to
  /// the dispatch pool; fixed takes its subareas back via kOwnershipTransfer;
  /// dynamic refloods its location. Default: nothing.
  virtual void on_robot_rejoin(std::size_t /*index*/) {}

  /// Whether a robot's own broadcast refreshes its lease (distributed: the
  /// flood is what peers observe). Centralized returns false — its leases
  /// are refreshed when the update *reaches the manager*.
  [[nodiscard]] virtual bool lease_refresh_on_broadcast() const { return true; }

  double init_motion_ = 0.0;
  trace::EventLog* event_log_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  shard::RobotLedger* robot_ledger_ = nullptr;
  FaultStats fault_stats_;

 private:
  /// Builds the fleet index on first use (spatial_index mode): one bucket
  /// per robot's average responsibility area over the field rectangle,
  /// seeded with the fleet's current positions and kept consistent by
  /// on_robot_moved. Lazy so runs that never ask a proximity question
  /// (centralized without faults) pay nothing.
  void ensure_robot_grid();

  SystemContext ctx_;
  bool ft_active_ = false;
  std::vector<sim::SimTime> lease_;       // per robot index: last refresh time
  std::vector<bool> presumed_dead_;       // per robot index: system belief
  std::vector<double> cadence_ewma_;      // per robot index: observed refresh cadence
  /// Lower bound on min(lease_) over live robots (+inf when all presumed
  /// dead); leases only rise between sweeps, so while even the stalest
  /// possible lease is inside the smallest possible window supervise() can
  /// expire nobody and skips its scan (spatial_index batched sweep).
  sim::SimTime lease_floor_ = 0.0;
  std::optional<spatial::UniformGrid2D<std::uint32_t>> robot_grid_;  // fleet index -> pos
  /// Flat struct-of-arrays mirror of fleet positions (index == fleet index),
  /// synced by on_robot_moved. data_oriented reads (Voronoi idle-home site
  /// lists, brute nearest scans) walk this vector instead of dereferencing
  /// per-robot objects; writes are unconditional so both paths stay exact.
  std::vector<geometry::Vec2> robot_pos_;
  /// Exact report copies already processed, keyed (originator, seq). Reports
  /// are rare (one per sensor failure plus retries), so the set stays small.
  std::set<std::pair<net::NodeId, std::uint32_t>> seen_reports_;
};

/// Factory for the algorithm selected in the config.
[[nodiscard]] std::unique_ptr<CoordinationAlgorithm> make_algorithm(
    const SimulationConfig& config);

}  // namespace sensrep::core
