#include "core/config.hpp"

#include <cmath>
#include <stdexcept>

namespace sensrep::core {

std::string_view to_string(Algorithm a) noexcept {
  switch (a) {
    case Algorithm::kCentralized: return "centralized";
    case Algorithm::kFixedDistributed: return "fixed";
    case Algorithm::kDynamicDistributed: return "dynamic";
  }
  return "?";
}

std::string_view to_string(PartitionShape p) noexcept {
  switch (p) {
    case PartitionShape::kSquare: return "square";
    case PartitionShape::kHexagon: return "hexagon";
  }
  return "?";
}

geometry::Rect SimulationConfig::field_area() const noexcept {
  const double side = std::sqrt(area_per_robot * static_cast<double>(robots));
  return geometry::Rect::sized(side, side);
}

void SimulationConfig::validate() const {
  if (robots == 0) throw std::invalid_argument("config: robots must be >= 1");
  if (sensors_per_robot == 0) throw std::invalid_argument("config: sensors_per_robot >= 1");
  if (area_per_robot <= 0.0) throw std::invalid_argument("config: area_per_robot > 0");
  if (sim_duration <= 0.0) throw std::invalid_argument("config: sim_duration > 0");
  if (robot_speed <= 0.0) throw std::invalid_argument("config: robot_speed > 0");
  if (robot_tx_range <= 0.0) throw std::invalid_argument("config: robot_tx_range > 0");
  if (update_threshold <= 0.0) throw std::invalid_argument("config: update_threshold > 0");
  if (update_threshold >= field.sensor_tx_range / 2.0) {
    // The paper requires threshold < 1/3 sensor range so a moving robot is
    // always reachable via its advertised location; we enforce a looser but
    // still safe bound.
    throw std::invalid_argument("config: update_threshold must be < sensor_tx_range/2");
  }
  if (dynamic_fringe < 0.0) throw std::invalid_argument("config: dynamic_fringe >= 0");
  if (field.sensor_tx_range <= 0.0) throw std::invalid_argument("config: sensor_tx_range > 0");
  if (field.robot_stale_window < 0.0) {
    throw std::invalid_argument("config: robot_stale_window >= 0");
  }
  if (field.failure_rereport_period < 0.0) {
    throw std::invalid_argument("config: failure_rereport_period >= 0");
  }
  if (field.shards == 0) throw std::invalid_argument("config: shards must be >= 1");
  if (field.shards > 256) {
    throw std::invalid_argument("config: shards must be <= 256");
  }
  if (field.shards > 1 && !field.data_oriented) {
    throw std::invalid_argument(
        "config: shards > 1 requires the data-oriented hot path "
        "(tile workers read the flat last-beacon mirror)");
  }
  if (field.shards > 1 && field.stale_beacon_count < 2) {
    // The sharded schedule advances in one-beacon-period windows; with a
    // staleness window of a single period a stamp refreshed inside the
    // window could flip a liveness verdict taken at the window edge. Two
    // periods of slack restore the frozen-verdict guarantee
    // (docs/SHARDING.md §3).
    throw std::invalid_argument(
        "config: shards > 1 requires stale_beacon_count >= 2");
  }
  field.lifetime.validate();
  robot_faults.validate();
  for (const auto& crash : robot_faults.crashes) {
    if (crash.robot >= robots) {
      throw std::invalid_argument("config: scheduled crash robot index out of range");
    }
  }
  for (const auto& rep : robot_faults.repairs) {
    if (rep.robot >= robots) {
      throw std::invalid_argument("config: scheduled repair robot index out of range");
    }
  }
  if (robot_faults.manager_crash_at && algorithm != Algorithm::kCentralized) {
    throw std::invalid_argument("config: manager_crash_at requires the centralized algorithm");
  }
  if (robot_faults.manager_repair_at && algorithm != Algorithm::kCentralized) {
    throw std::invalid_argument(
        "config: manager_repair_at requires the centralized algorithm");
  }
}

}  // namespace sensrep::core
