#pragma once

#include <cstdint>
#include <memory>

#include "core/manager_node.hpp"
#include "core/simulation.hpp"
#include "metrics/timeline.hpp"

namespace sensrep::core {

/// The sensing-data workload — the service the network exists to provide.
///
/// The paper motivates replacement by continuity of sensing (§1: "Sensor
/// replacement is important for sensor networks to provide continuous
/// sensing services"), but never measures the service itself. This module
/// closes that loop: every alive sensor geo-routes a periodic sensing report
/// to a sink at the field center, and the *data yield* (delivered /
/// generated) quantifies what robot maintenance actually buys — compare a
/// healthy fleet against one with no spares (E11).
class DataCollection {
 public:
  struct Config {
    double report_period = 60.0;  // per-sensor sample interval, seconds
    /// Sink re-announces itself to one-hop sensors at this interval so
    /// replacement units near the sink re-learn the final-hop link.
    double sink_announce_period = 100.0;
  };

  /// Attaches a sink node and starts per-sensor reporting timers (phase-
  /// staggered from the simulation's seed). The simulation must outlive
  /// this object. Call before Simulation::run().
  DataCollection(Simulation& simulation, const Config& config);

  DataCollection(const DataCollection&) = delete;
  DataCollection& operator=(const DataCollection&) = delete;

  [[nodiscard]] std::uint64_t generated() const noexcept { return generated_; }
  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }

  /// Fraction of generated reports that reached the sink so far.
  [[nodiscard]] double yield() const noexcept {
    return generated_ == 0
               ? 1.0
               : static_cast<double>(delivered_) / static_cast<double>(generated_);
  }

  /// Per-window yield: delivered/generated within each sampling window of
  /// `window` seconds, recorded as a TimeSeries (for plotting decay/recovery).
  void sample_yield_every(double window);
  [[nodiscard]] const metrics::TimeSeries& yield_timeline() const noexcept {
    return yield_series_;
  }

  [[nodiscard]] net::NodeId sink_id() const noexcept { return sink_->id(); }

 private:
  void start_sensor_timer(net::NodeId sensor);
  void generate_report(net::NodeId sensor);
  void refresh_sink_neighbors();

  Simulation* sim_;
  Config config_;
  std::unique_ptr<ManagerNode> sink_;
  sim::Rng rng_;
  std::uint64_t generated_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t window_generated_ = 0;
  std::uint64_t window_delivered_ = 0;
  std::uint32_t sample_seq_ = 0;
  metrics::TimeSeries yield_series_;
};

}  // namespace sensrep::core
