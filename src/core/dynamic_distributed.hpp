#pragma once

#include "core/coordination.hpp"

namespace sensrep::core {

/// Dynamic distributed manager algorithm (paper §3.3).
///
/// No fixed boundaries: each sensor reports to the *closest* robot it knows
/// of, so the robots implicitly partition the field as a Voronoi diagram
/// that shifts as they move. A moving robot's location updates are flooded
/// to its (new) Voronoi cell plus a fringe of sensors that may need to
/// switch their `myrobot` — the shaded region of the paper's Fig. 1(b) —
/// and to the sensors of its previous cell so they can switch away.
class DynamicDistributedAlgorithm final : public CoordinationAlgorithm {
 public:
  void initialize() override;

  // SensorPolicy ------------------------------------------------------------
  [[nodiscard]] std::optional<wsn::ReportTarget> report_target(
      const wsn::SensorNode& sensor) const override;
  void on_location_update(wsn::SensorNode& sensor, const net::Packet& pkt,
                          net::NodeId from) override;

  // RobotPolicy ---------------------------------------------------------------
  void on_robot_location_update(robot::RobotNode& robot) override;
  void on_robot_packet(robot::RobotNode& robot, const net::Packet& pkt) override;

 protected:
  /// Fault tolerance: sensors age the dead robot out of their knowledge on
  /// their own (robot_stale_window); this hook refloods the nearest
  /// surviving robot's location so the orphaned region re-learns a live
  /// manager quickly.
  void on_robot_presumed_dead(std::size_t index) override;

  /// Repair/return: the reborn robot refloods its own location. Sensors it
  /// is now the closest robot for re-switch their `myrobot` through the
  /// ordinary Voronoi adoption rule — no extra machinery needed.
  void on_robot_rejoin(std::size_t index) override;
};

}  // namespace sensrep::core
