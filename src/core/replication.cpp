#include "core/replication.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "trace/format.hpp"

namespace sensrep::core {

MetricEstimate estimate_from(const metrics::Summary& summary) {
  MetricEstimate e;
  e.n = summary.count();
  e.mean = summary.mean();
  e.stddev = summary.stddev();
  if (e.n >= 2) {
    // z=1.96; with the handful of replications typical here this slightly
    // understates the t-interval, which the non-overlap test compensates by
    // being conservative in the first place.
    e.ci95_half_width = 1.96 * e.stddev / std::sqrt(static_cast<double>(e.n));
  }
  return e;
}

bool significantly_different(const MetricEstimate& a, const MetricEstimate& b) noexcept {
  return a.lo() > b.hi() || b.lo() > a.hi();
}

ReplicatedResult run_replicated(const SimulationConfig& config,
                                std::size_t replications) {
  if (replications == 0) {
    throw std::invalid_argument("run_replicated: replications must be >= 1");
  }
  std::vector<ExperimentResult> per_seed;
  per_seed.reserve(replications);
  for (std::size_t i = 0; i < replications; ++i) {
    SimulationConfig cfg = config;
    cfg.seed = config.seed + i;
    Simulation sim(cfg);
    sim.run();
    per_seed.push_back(sim.result());
  }
  return aggregate_replications(config, per_seed);
}

ReplicatedResult aggregate_replications(const SimulationConfig& base_config,
                                        const std::vector<ExperimentResult>& per_seed) {
  if (per_seed.empty()) {
    throw std::invalid_argument("aggregate_replications: per_seed must be non-empty");
  }
  metrics::Summary travel, report, request, update_tx, latency, delivery, failures;

  ReplicatedResult out;
  out.base_config = base_config;
  for (const auto& r : per_seed) {
    out.seeds.push_back(r.seed);
    travel.add(r.avg_travel_per_repair);
    report.add(r.avg_report_hops);
    if (r.avg_request_hops > 0.0) request.add(r.avg_request_hops);
    update_tx.add(r.location_update_tx_per_repair);
    latency.add(r.avg_repair_latency);
    delivery.add(r.delivery_ratio);
    failures.add(static_cast<double>(r.failures));
  }
  out.travel_per_repair = estimate_from(travel);
  out.report_hops = estimate_from(report);
  out.request_hops = estimate_from(request);
  out.update_tx_per_repair = estimate_from(update_tx);
  out.repair_latency = estimate_from(latency);
  out.delivery_ratio = estimate_from(delivery);
  out.failures = estimate_from(failures);
  return out;
}

std::string ReplicatedResult::summary() const {
  std::ostringstream out;
  const auto line = [&](const char* name, const MetricEstimate& e) {
    out << trace::strfmt("  %-24s %10.3f +- %7.3f  (n=%zu)\n", name, e.mean,
                         e.ci95_half_width, e.n);
  };
  out << trace::strfmt("%s, %zu robots, %zu replications\n",
                       std::string(to_string(base_config.algorithm)).c_str(),
                       base_config.robots, seeds.size());
  line("travel m/repair", travel_per_repair);
  line("report hops", report_hops);
  if (request_hops.n > 0) line("request hops", request_hops);
  line("update tx/repair", update_tx_per_repair);
  line("repair latency s", repair_latency);
  line("delivery ratio", delivery_ratio);
  line("failures", failures);
  return out.str();
}

}  // namespace sensrep::core
