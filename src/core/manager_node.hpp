#pragma once

#include <functional>
#include <memory>

#include "geometry/vec2.hpp"
#include "net/medium.hpp"
#include "net/packet.hpp"
#include "routing/geo_router.hpp"
#include "routing/neighbor_table.hpp"
#include "sim/simulator.hpp"

namespace sensrep::core {

/// The centralized algorithm's dedicated manager: a stationary robot-class
/// node at the field center (paper §3.1). It never moves and never repairs;
/// it only receives failure reports and forwards repair requests.
class ManagerNode {
 public:
  using DeliverFn = std::function<void(const net::Packet&)>;

  ManagerNode(net::NodeId id, geometry::Vec2 pos, double tx_range,
              sim::Simulator& simulator, net::Medium& medium, DeliverFn deliver);

  ManagerNode(const ManagerNode&) = delete;
  ManagerNode& operator=(const ManagerNode&) = delete;

  [[nodiscard]] net::NodeId id() const noexcept { return id_; }
  [[nodiscard]] geometry::Vec2 position() const noexcept { return pos_; }
  [[nodiscard]] bool failed() const noexcept { return failed_; }
  [[nodiscard]] routing::GeoRouter& router() noexcept { return *router_; }

  /// Kills the manager (fault injection): detaches it from the radio medium
  /// and stops packet handling. Idempotent. The fleet only notices when the
  /// manager's heartbeat lease expires.
  void fail();

  /// Resurrects a failed manager (MTTR model): reattaches it to the radio
  /// medium and rebuilds its neighbor view. The algorithm notices at the next
  /// supervision sweep and performs the acting-manager handback. Idempotent.
  void repair();

  /// Refreshes the manager's one-hop view (alive nodes within its TX range;
  /// oracle discovery, same abstraction as RobotNode — see DESIGN.md).
  void refresh_neighbor_table();

 private:
  void on_packet(const net::Packet& pkt, net::NodeId from);

  net::NodeId id_;
  geometry::Vec2 pos_;
  double tx_range_;
  net::Medium* medium_;
  routing::NeighborTable table_;
  std::unique_ptr<routing::GeoRouter> router_;
  DeliverFn deliver_;
  bool failed_ = false;
};

}  // namespace sensrep::core
