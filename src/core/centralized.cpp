#include "core/centralized.hpp"

#include <cmath>
#include <limits>

#include "trace/log.hpp"

namespace sensrep::core {

using geometry::Vec2;
using net::kBroadcastId;
using net::kNoNode;
using net::NodeId;
using net::Packet;
using net::PacketType;

void CentralizedAlgorithm::initialize() {
  manager_pos_ = config().field_area().center();
  manager_ = std::make_unique<ManagerNode>(
      config().manager_id(), manager_pos_, config().robot_tx_range, *ctx().simulator,
      *ctx().medium, [this](const Packet& pkt) { handle_manager_packet(pkt); });

  // Init message 1 (paper §3.1): the manager broadcasts its location to all
  // sensors and robots — a network-wide flood in which every sensor relays
  // once. Accounted; the observable outcome (everyone knows the manager's
  // location) is supplied by report_target(), which never changes because
  // the manager never moves.
  ctx().medium->account(metrics::MessageCategory::kInitialization,
                        1 + static_cast<std::uint64_t>(ctx().field->size()));
  // Sensors within their own TX range of the manager can use it as a final
  // forwarding hop; the flood above is how they learned it exists.
  auto& field = *ctx().field;
  for (std::size_t s = 0; s < field.size(); ++s) {
    auto& sensor = field.node(static_cast<NodeId>(s));
    if (geometry::distance(sensor.position(), manager_pos_) <=
        config().field.sensor_tx_range) {
      sensor.table().upsert(manager_->id(), manager_pos_);
    }
  }

  // Init message 2: each maintenance robot unicasts its location to the
  // manager (real geo-routed packets) and announces itself to its one-hop
  // sensor neighbors (real broadcast).
  for (std::size_t i = 0; i < robot_count(); ++i) {
    auto& r = robot_at(i);
    r.refresh_neighbor_table();

    Packet to_manager;
    to_manager.type = PacketType::kLocationAnnounce;
    to_manager.dst = manager_->id();
    to_manager.dst_location = manager_pos_;
    to_manager.payload = net::LocationAnnouncePayload{r.position()};
    r.router().send(std::move(to_manager));

    Packet hello;
    hello.type = PacketType::kLocationAnnounce;
    hello.src = r.id();
    hello.dst = kBroadcastId;
    hello.payload = net::LocationAnnouncePayload{r.position()};
    ctx().medium->broadcast(r.id(), hello);

    // The manager's tracking map is also primed directly: losing a robot to
    // an init packet drop would deadlock repairs, which the paper's model
    // (reliable init) excludes.
    robot_locations_[r.id()] = r.position();
  }
}

std::optional<wsn::ReportTarget> CentralizedAlgorithm::report_target(
    const wsn::SensorNode& /*sensor*/) const {
  return wsn::ReportTarget{config().manager_id(), manager_pos_};
}

void CentralizedAlgorithm::on_location_update(wsn::SensorNode& sensor, const Packet& pkt,
                                              NodeId /*from*/) {
  // Centralized sensors track nearby robots only as routing next hops; they
  // never relay (the manager is updated by unicast instead).
  const auto& body = std::get<net::LocationUpdatePayload>(pkt.payload);
  sensor.learn_robot(body.robot, body.robot_location, body.update_seq);
}

void CentralizedAlgorithm::on_sensor_reset(wsn::SensorNode& sensor) {
  if (geometry::distance(sensor.position(), manager_pos_) <=
      config().field.sensor_tx_range) {
    sensor.table().upsert(manager_->id(), manager_pos_);
  }
}

void CentralizedAlgorithm::on_robot_location_update(robot::RobotNode& robot) {
  // One-hop broadcast so nearby sensors can deliver packets to the moving
  // robot...
  broadcast_location_update(robot);
  // ...and a geo-routed unicast so the manager can keep dispatching to it.
  Packet update;
  update.type = PacketType::kLocationUpdate;
  update.dst = manager_->id();
  update.dst_location = manager_pos_;
  update.payload =
      net::LocationUpdatePayload{robot.id(), robot.position(), robot.current_update_seq()};
  robot.router().send(std::move(update));
}

void CentralizedAlgorithm::on_robot_task_complete(robot::RobotNode& robot) {
  // Under queue-aware dispatch the backlog value is load-bearing, so the
  // robot refreshes the manager immediately after unloading; the plain
  // paper algorithm relies on the movement-leg updates alone.
  if (!config().queue_aware_dispatch) return;
  Packet update;
  update.type = PacketType::kLocationUpdate;
  update.dst = manager_->id();
  update.dst_location = manager_pos_;
  const auto backlog =
      static_cast<std::uint32_t>(robot.queue().size() + (robot.busy() ? 1 : 0));
  update.payload = net::LocationUpdatePayload{robot.id(), robot.position(),
                                              robot.current_update_seq(), backlog};
  robot.router().send(std::move(update));
}

void CentralizedAlgorithm::handle_manager_packet(const Packet& pkt) {
  switch (pkt.type) {
    case PacketType::kLocationAnnounce:
      robot_locations_[pkt.src] = std::get<net::LocationAnnouncePayload>(pkt.payload).location;
      break;
    case PacketType::kLocationUpdate: {
      const auto& body = std::get<net::LocationUpdatePayload>(pkt.payload);
      robot_locations_[body.robot] = body.robot_location;
      robot_backlog_[body.robot] = body.queue_len;
      break;
    }
    case PacketType::kFailureReport: {
      record_report_arrival(pkt);
      manager_->refresh_neighbor_table();
      acknowledge_report(manager_->router(), pkt);
      dispatch(std::get<net::FailureReportPayload>(pkt.payload));
      break;
    }
    default:
      break;
  }
}

void CentralizedAlgorithm::dispatch(const net::FailureReportPayload& failure) {
  // Paper §3.1: "the manager selects the robot whose current location is the
  // closest to the failure". With queue_aware_dispatch (extension E9) the
  // score also charges each queued task one expected service leg, so a busy
  // nearby robot loses to an idle slightly-farther one.
  const double service_leg =
      config().queue_aware_dispatch ? 0.5 * std::sqrt(config().area_per_robot) : 0.0;
  NodeId best = kNoNode;
  double best_score = std::numeric_limits<double>::infinity();
  for (const auto& [robot, loc] : robot_locations_) {
    double score = geometry::distance(loc, failure.failed_location);
    if (config().queue_aware_dispatch) {
      const auto it = robot_backlog_.find(robot);
      if (it != robot_backlog_.end()) score += service_leg * it->second;
    }
    if (score < best_score || (score == best_score && robot < best)) {
      best_score = score;
      best = robot;
    }
  }
  if (best == kNoNode) {
    trace::Logger::global().logf(trace::Level::kError, ctx().simulator->now(), "core",
                                 "manager knows no robots; failure of %u stranded",
                                 failure.failed_node);
    return;
  }
  Packet request;
  request.type = PacketType::kRepairRequest;
  request.dst = best;
  request.dst_location = robot_locations_[best];
  request.payload =
      net::RepairRequestPayload{failure.failed_node, failure.failed_location,
                                failure.failure_id};
  // Optimistic backlog bump so back-to-back reports spread across robots
  // even before the next location update arrives.
  robot_backlog_[best] += 1;
  manager_->refresh_neighbor_table();
  manager_->router().send(std::move(request));
}

void CentralizedAlgorithm::on_robot_packet(robot::RobotNode& robot, const Packet& pkt) {
  if (pkt.type != PacketType::kRepairRequest) return;
  const auto& body = std::get<net::RepairRequestPayload>(pkt.payload);
  if (body.failure_id != 0) {
    auto& rec = ctx().log->at(body.failure_id - 1);
    if (rec.request_hops == 0) rec.request_hops = pkt.hops;
  }
  dispatch_to(robot, make_task(body.failed_node, body.failed_location, body.failure_id));
}

}  // namespace sensrep::core
