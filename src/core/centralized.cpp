#include "core/centralized.hpp"

#include <cmath>
#include <limits>

#include "obs/flight_recorder.hpp"
#include "obs/metrics_registry.hpp"
#include "trace/log.hpp"

namespace sensrep::core {

using geometry::Vec2;
using net::kBroadcastId;
using net::kNoNode;
using net::NodeId;
using net::Packet;
using net::PacketType;

void CentralizedAlgorithm::initialize() {
  manager_pos_ = config().field_area().center();
  manager_ = std::make_unique<ManagerNode>(
      config().manager_id(), manager_pos_, config().robot_tx_range, *ctx().simulator,
      *ctx().medium, [this](const Packet& pkt) { handle_manager_packet(pkt); });

  // Init message 1 (paper §3.1): the manager broadcasts its location to all
  // sensors and robots — a network-wide flood in which every sensor relays
  // once. Accounted; the observable outcome (everyone knows the manager's
  // location) is supplied by report_target(), which never changes because
  // the manager never moves.
  ctx().medium->account(metrics::MessageCategory::kInitialization,
                        1 + static_cast<std::uint64_t>(ctx().field->size()));
  // Sensors within their own TX range of the manager can use it as a final
  // forwarding hop; the flood above is how they learned it exists.
  auto& field = *ctx().field;
  for (const NodeId s : field.slots_within(manager_pos_, config().field.sensor_tx_range)) {
    field.node(s).table().upsert(manager_->id(), manager_pos_);
  }

  // Init message 2: each maintenance robot unicasts its location to the
  // manager (real geo-routed packets) and announces itself to its one-hop
  // sensor neighbors (real broadcast).
  for (std::size_t i = 0; i < robot_count(); ++i) {
    auto& r = robot_at(i);
    r.refresh_neighbor_table();

    Packet to_manager;
    to_manager.type = PacketType::kLocationAnnounce;
    to_manager.dst = manager_->id();
    to_manager.dst_location = manager_pos_;
    to_manager.payload = net::LocationAnnouncePayload{r.position()};
    r.router().send(std::move(to_manager));

    Packet hello;
    hello.type = PacketType::kLocationAnnounce;
    hello.src = r.id();
    hello.dst = kBroadcastId;
    hello.payload = net::LocationAnnouncePayload{r.position()};
    ctx().medium->broadcast(r.id(), hello);

    // The manager's tracking map is also primed directly: losing a robot to
    // an init packet drop would deadlock repairs, which the paper's model
    // (reliable init) excludes.
    robot_locations_[r.id()] = r.position();
  }
}

std::optional<wsn::ReportTarget> CentralizedAlgorithm::report_target(
    const wsn::SensorNode& /*sensor*/) const {
  return wsn::ReportTarget{current_manager_id(), manager_pos_};
}

void CentralizedAlgorithm::on_location_update(wsn::SensorNode& sensor, const Packet& pkt,
                                              NodeId /*from*/) {
  // Centralized sensors track nearby robots only as routing next hops; they
  // never relay (the manager is updated by unicast instead).
  const auto& body = std::get<net::LocationUpdatePayload>(pkt.payload);
  sensor.learn_robot(body.robot, body.robot_location, body.update_seq);
}

void CentralizedAlgorithm::on_sensor_reset(wsn::SensorNode& sensor) {
  if (geometry::distance(sensor.position(), manager_pos_) <=
      config().field.sensor_tx_range) {
    sensor.table().upsert(current_manager_id(), manager_pos_);
  }
}

void CentralizedAlgorithm::on_robot_location_update(robot::RobotNode& robot) {
  // One-hop broadcast so nearby sensors can deliver packets to the moving
  // robot...
  broadcast_location_update(robot);
  // The acting manager's updates terminate at itself: it refreshes its own
  // tracking entry (and lease) without a unicast leg.
  if (is_acting_manager(robot)) {
    robot_locations_[robot.id()] = robot.position();
    manager_pos_ = robot.position();
    refresh_lease(robot_index(robot.id()));
    return;
  }
  // ...and a geo-routed unicast so the manager can keep dispatching to it.
  Packet update;
  update.type = PacketType::kLocationUpdate;
  update.dst = current_manager_id();
  update.dst_location = manager_pos_;
  update.payload =
      net::LocationUpdatePayload{robot.id(), robot.position(), robot.current_update_seq()};
  robot.router().send(std::move(update));
}

void CentralizedAlgorithm::on_robot_task_complete(robot::RobotNode& robot) {
  // Fault tolerance: report completion so the manager can close the
  // in-flight entry (otherwise a later lease expiry would re-dispatch a
  // repair that already happened).
  if (fault_tolerance_active() && robot.last_completed() &&
      robot.last_completed()->failure_id != 0) {
    const auto& done = *robot.last_completed();
    if (is_acting_manager(robot)) {
      close_in_flight(net::TaskCompletePayload{done.slot, done.failure_id});
    } else {
      Packet fin;
      fin.type = PacketType::kTaskComplete;
      fin.dst = current_manager_id();
      fin.dst_location = manager_pos_;
      fin.payload = net::TaskCompletePayload{done.slot, done.failure_id};
      robot.router().send(std::move(fin));
    }
  }
  // Under queue-aware dispatch the backlog value is load-bearing, so the
  // robot refreshes the manager immediately after unloading; the plain
  // paper algorithm relies on the movement-leg updates alone.
  if (!config().queue_aware_dispatch) return;
  if (is_acting_manager(robot)) {
    robot_backlog_[robot.id()] =
        static_cast<std::uint32_t>(robot.queue().size() + (robot.busy() ? 1 : 0));
    return;
  }
  Packet update;
  update.type = PacketType::kLocationUpdate;
  update.dst = current_manager_id();
  update.dst_location = manager_pos_;
  const auto backlog =
      static_cast<std::uint32_t>(robot.queue().size() + (robot.busy() ? 1 : 0));
  update.payload = net::LocationUpdatePayload{robot.id(), robot.position(),
                                              robot.current_update_seq(), backlog};
  robot.router().send(std::move(update));
}

void CentralizedAlgorithm::handle_manager_packet(const Packet& pkt) {
  switch (pkt.type) {
    case PacketType::kLocationAnnounce:
      robot_locations_[pkt.src] = std::get<net::LocationAnnouncePayload>(pkt.payload).location;
      if (fault_tolerance_active()) refresh_lease(robot_index(pkt.src));
      break;
    case PacketType::kLocationUpdate: {
      const auto& body = std::get<net::LocationUpdatePayload>(pkt.payload);
      robot_locations_[body.robot] = body.robot_location;
      robot_backlog_[body.robot] = body.queue_len;
      if (fault_tolerance_active()) refresh_lease(robot_index(body.robot));
      break;
    }
    case PacketType::kFailureReport: {
      const bool fresh = record_report_arrival(pkt);
      manager_->refresh_neighbor_table();
      // Every copy is acked (the first ack may have been lost), but only a
      // fresh report dispatches — a duplicated frame must not double-dispatch.
      acknowledge_report(manager_->router(), pkt);
      if (fresh) dispatch(std::get<net::FailureReportPayload>(pkt.payload));
      break;
    }
    case PacketType::kTaskComplete:
      close_in_flight(std::get<net::TaskCompletePayload>(pkt.payload));
      if (fault_tolerance_active()) refresh_lease(robot_index(pkt.src));
      break;
    case PacketType::kOwnershipTransfer: {
      // Handback offer from the acting manager reached the repaired manager:
      // the role moves back here. Pure confirmation ack to the sender.
      const auto& offer = std::get<net::OwnershipTransferPayload>(pkt.payload);
      if (offer.ack) break;
      const NodeId former = pkt.src;
      apply_handback();
      Packet ack;
      ack.type = PacketType::kOwnershipTransfer;
      ack.dst = former;
      const auto it = robot_locations_.find(former);
      ack.dst_location = it != robot_locations_.end()
                             ? it->second
                             : robot_at(robot_index(former)).position();
      ack.payload = net::OwnershipTransferPayload{offer.cell, manager_->id(),
                                                  manager_->position(),
                                                  offer.transfer_seq, true};
      manager_->refresh_neighbor_table();
      manager_->router().send(std::move(ack));
      break;
    }
    default:
      break;
  }
}

void CentralizedAlgorithm::dispatch(const net::FailureReportPayload& failure) {
  // Paper §3.1: "the manager selects the robot whose current location is the
  // closest to the failure". With queue_aware_dispatch (extension E9) the
  // score also charges each queued task one expected service leg, so a busy
  // nearby robot loses to an idle slightly-farther one.
  const double service_leg =
      config().queue_aware_dispatch ? 0.5 * std::sqrt(config().area_per_robot) : 0.0;
  NodeId best = kNoNode;
  double best_score = std::numeric_limits<double>::infinity();
  for (const auto& [robot, loc] : robot_locations_) {
    // Robots whose lease expired are out of the candidate set until (never)
    // they come back; a dead-but-unexpired robot can still be picked — its
    // lease will run out and the task will be re-dispatched.
    if (presumed_dead(robot_index(robot))) continue;
    double score = geometry::distance(loc, failure.failed_location);
    if (config().queue_aware_dispatch) {
      const auto it = robot_backlog_.find(robot);
      if (it != robot_backlog_.end()) score += service_leg * it->second;
    }
    if (score < best_score || (score == best_score && robot < best)) {
      best_score = score;
      best = robot;
    }
  }
  if (best == kNoNode) {
    trace::Logger::global().logf(trace::Level::kError, ctx().simulator->now(), "core",
                                 "manager knows no robots; failure of %u stranded",
                                 failure.failed_node);
    return;
  }
  if (fault_tolerance_active() && failure.failure_id != 0) {
    in_flight_[failure.failure_id] =
        InFlight{failure.failed_node, failure.failed_location, robot_index(best)};
  }
  // The acting manager dispatches to itself directly (no radio leg).
  if (acting_manager_ && best == config().robot_id(*acting_manager_)) {
    robot_backlog_[best] += 1;
    dispatch_to(robot_at(*acting_manager_),
                make_task(failure.failed_node, failure.failed_location, failure.failure_id));
    return;
  }
  Packet request;
  request.type = PacketType::kRepairRequest;
  request.dst = best;
  request.dst_location = robot_locations_[best];
  request.seq = ++dispatch_seq_;  // duplication dedup at the robot
  request.payload =
      net::RepairRequestPayload{failure.failed_node, failure.failed_location,
                                failure.failure_id};
  // Optimistic backlog bump so back-to-back reports spread across robots
  // even before the next location update arrives.
  robot_backlog_[best] += 1;
  if (acting_manager_) {
    auto& am = robot_at(*acting_manager_);
    am.refresh_neighbor_table();
    am.router().send(std::move(request));
    return;
  }
  manager_->refresh_neighbor_table();
  manager_->router().send(std::move(request));
}

void CentralizedAlgorithm::on_robot_packet(robot::RobotNode& robot, const Packet& pkt) {
  // After failover the promoted robot receives the manager-plane traffic
  // (reports, updates, completions) at its own robot address.
  if (is_acting_manager(robot)) {
    switch (pkt.type) {
      case PacketType::kLocationAnnounce:
      case PacketType::kLocationUpdate:
      case PacketType::kTaskComplete:
        handle_manager_packet(pkt);  // bookkeeping is router-agnostic
        return;
      case PacketType::kFailureReport: {
        const bool fresh = record_report_arrival(pkt);
        robot.refresh_neighbor_table();
        acknowledge_report(robot.router(), pkt);
        if (fresh) dispatch(std::get<net::FailureReportPayload>(pkt.payload));
        return;
      }
      default:
        break;
    }
  }
  if (pkt.type == PacketType::kElection) {
    // A failover winner announced itself: acknowledge so the election is a
    // real two-way exchange (and proves this robot alive to the new manager).
    const auto& ballot = std::get<net::ElectionPayload>(pkt.payload);
    // A duplicated ballot of a round this robot already acked is not acked
    // again — one election round yields at most one ack per robot.
    const auto round = std::make_pair(ballot.winner, ballot.election_seq);
    auto [acked_it, first_copy] = election_acked_.try_emplace(robot.id(), round);
    if (!first_copy) {
      if (acked_it->second == round) return;
      acked_it->second = round;
    }
    Packet ack;
    ack.type = PacketType::kElectionAck;
    ack.dst = ballot.winner;
    ack.dst_location = ballot.winner_location;
    ack.payload = net::ElectionPayload{ballot.winner, ballot.winner_location,
                                       ballot.election_seq, true};
    robot.refresh_neighbor_table();
    robot.router().send(std::move(ack));
    return;
  }
  if (pkt.type == PacketType::kElectionAck) {
    // Delivered to the acting manager: the acker is alive — refresh its
    // lease, but count each (acker, round) only once; a duplicated ack would
    // otherwise feed a near-zero interval into the lease cadence EWMA.
    const auto& ballot = std::get<net::ElectionPayload>(pkt.payload);
    if (!election_acks_seen_.insert({pkt.src, ballot.election_seq}).second) return;
    if (fault_tolerance_active()) refresh_lease(robot_index(pkt.src));
    return;
  }
  if (pkt.type == PacketType::kOwnershipTransfer) {
    // Ack of the handback offer this (former acting manager) robot sent; the
    // role change itself was applied when the offer reached the manager.
    return;
  }
  if (pkt.type != PacketType::kRepairRequest) return;
  // Duplication dedup: an exact copy of a request this robot already accepted
  // must not re-enqueue (the slot may have been repaired and failed again by
  // the time the stale copy lands). Redispatches carry a fresh seq and pass.
  if (pkt.seq != 0 && !seen_requests_.insert({pkt.src, pkt.seq}).second) return;
  const auto& body = std::get<net::RepairRequestPayload>(pkt.payload);
  if (body.failure_id != 0) {
    auto& rec = ctx().log->at(body.failure_id - 1);
    if (rec.request_hops == 0) rec.request_hops = pkt.hops;
  }
  dispatch_to(robot, make_task(body.failed_node, body.failed_location, body.failure_id));
}

void CentralizedAlgorithm::close_in_flight(const net::TaskCompletePayload& done) {
  in_flight_.erase(done.failure_id);
}

void CentralizedAlgorithm::fail_manager() {
  if (manager_ && !manager_->failed()) {
    manager_->fail();
    trace::Logger::global().logf(trace::Level::kInfo, ctx().simulator->now(), "fault",
                                 "manager %u failed", manager_->id());
  }
}

void CentralizedAlgorithm::repair_manager() {
  if (manager_ && manager_->failed()) {
    manager_->repair();
    trace::Logger::global().logf(trace::Level::kInfo, ctx().simulator->now(), "fault",
                                 "manager %u repaired%s", manager_->id(),
                                 acting_manager_ ? " (awaiting handback)" : "");
  }
}

void CentralizedAlgorithm::apply_handback() {
  if (!acting_manager_) return;  // duplicate offer: the role already returned
  const NodeId former = config().robot_id(*acting_manager_);
  acting_manager_.reset();
  ++fault_stats_.handbacks;
  ++fault_stats_.ownership_transfers;
  obs::Metrics::inc(obs::Counter::kHandbacks);
  obs::Metrics::inc(obs::Counter::kOwnershipTransfers);
  obs::FlightRecorder::note(ctx().simulator->now(), obs::FlightKind::kHandback,
                            manager_->id(), former);
  manager_pos_ = manager_->position();
  manager_lease_ = ctx().simulator->now();
  trace::Logger::global().logf(trace::Level::kInfo, ctx().simulator->now(), "fault",
                               "acting manager %u handed the role back to manager %u",
                               former, manager_->id());
  if (event_log_) {
    event_log_->record({ctx().simulator->now(), trace::EventKind::kFailover,
                        manager_->id(), former, manager_pos_, std::nullopt});
  }
  // The in-flight table, tracking map, and backlogs survive the handback —
  // the role moves, the dispatcher state does not, so no task is lost.
  // Re-announce flood: the restored manager tells the network where to
  // report again (same analytic accounting as the promotion flood).
  ctx().medium->account(metrics::MessageCategory::kFaultTolerance,
                        1 + static_cast<std::uint64_t>(ctx().field->size()));
  for (std::size_t i = 0; i < robot_count(); ++i) {
    if (robot_at(i).failed()) continue;
    refresh_lease(i);  // fresh grace period under the restored manager
  }
  // Sensors in radio range of the restored manager re-learn it as a final
  // forwarding hop (they may have switched to the acting manager's id).
  auto& field = *ctx().field;
  for (const NodeId s : field.slots_within(manager_pos_, config().field.sensor_tx_range)) {
    auto& sensor = field.node(s);
    if (sensor.alive()) sensor.table().upsert(manager_->id(), manager_pos_);
  }
}

void CentralizedAlgorithm::on_robot_rejoin(std::size_t index) {
  auto& r = robot_at(index);
  // One-hop hello so nearby sensors re-learn the reborn robot as a next hop.
  Packet hello;
  hello.type = PacketType::kLocationAnnounce;
  hello.src = r.id();
  hello.dst = kBroadcastId;
  hello.payload = net::LocationAnnouncePayload{r.position()};
  hello.category_override = metrics::MessageCategory::kFaultTolerance;
  ctx().medium->broadcast(r.id(), hello);
  if (is_acting_manager(r)) {
    // The acting manager resurrected before its own lease expired: it simply
    // resumes the role in place.
    robot_locations_[r.id()] = r.position();
    manager_pos_ = r.position();
    return;
  }
  // Re-admission: geo-route a kLocationAnnounce to whoever manages now; the
  // delivery re-enters the robot into the dispatch pool and refreshes its
  // lease. If every retry is lost, the restarted heartbeat unicasts catch up.
  Packet announce;
  announce.type = PacketType::kLocationAnnounce;
  announce.dst = current_manager_id();
  announce.dst_location = manager_pos_;
  announce.payload = net::LocationAnnouncePayload{r.position()};
  announce.category_override = metrics::MessageCategory::kFaultTolerance;
  r.router().send(std::move(announce));
}

void CentralizedAlgorithm::supervise() {
  const auto now = ctx().simulator->now();
  const double window = config().robot_faults.lease_window();
  // Handback offer: the dedicated manager is back in service, so the acting
  // manager geo-routes it a kOwnershipTransfer carrying the manager role.
  // Applied on delivery (apply_handback); a lost offer is simply re-sent at
  // the next sweep, so the exchange is loss-robust.
  if (acting_manager_ && manager_ && !manager_->failed() &&
      !robot_at(*acting_manager_).failed()) {
    auto& am = robot_at(*acting_manager_);
    Packet offer;
    offer.type = PacketType::kOwnershipTransfer;
    offer.dst = manager_->id();
    offer.dst_location = manager_->position();
    offer.payload = net::OwnershipTransferPayload{0, manager_->id(), manager_->position(),
                                                  ++transfer_seq_, false};
    am.refresh_neighbor_table();
    am.router().send(std::move(offer));
  }
  // Manager heartbeat: a network-wide liveness flood every supervision
  // sweep. The one-hop seed is a real kManagerHeartbeat broadcast (nearby
  // sensors refresh their forwarding entry for the manager); the field-wide
  // relays are accounted analytically, like the init flood. Only a live
  // manager emits — the silence of a dead one is what lets the fleet's
  // shared lease expire.
  const auto emit_heartbeat = [&](NodeId src, geometry::Vec2 at) {
    Packet hb;
    hb.type = PacketType::kManagerHeartbeat;
    hb.src = src;
    hb.dst = net::kBroadcastId;
    hb.payload = net::ManagerHeartbeatPayload{at, ++manager_hb_seq_};
    ctx().medium->broadcast(src, hb);
    ctx().medium->account(metrics::MessageCategory::kFaultTolerance,
                          static_cast<std::uint64_t>(ctx().field->size()));
    manager_lease_ = now;
  };
  if (!acting_manager_) {
    if (!manager_->failed()) emit_heartbeat(manager_->id(), manager_pos_);
  } else if (!robot_at(*acting_manager_).failed()) {
    auto& am = robot_at(*acting_manager_);
    manager_pos_ = am.position();
    emit_heartbeat(am.id(), manager_pos_);
    refresh_lease(*acting_manager_);
  }
  if (now - manager_lease_ > window) perform_failover();
  CoordinationAlgorithm::supervise();
}

void CentralizedAlgorithm::perform_failover() {
  // Election among the surviving robots: the live robot with the lowest id
  // wins (classic bully outcome). Nothing is charged before the winner check:
  // an all-dead fleet runs no election and pays for none.
  std::optional<std::size_t> winner;
  for (std::size_t i = 0; i < robot_count(); ++i) {
    if (!robot_at(i).failed()) {
      winner = i;
      break;
    }
  }
  if (!winner) {
    trace::Logger::global().logf(trace::Level::kError, ctx().simulator->now(), "fault",
                                 "manager lease expired but no live robot to promote");
    return;
  }
  acting_manager_ = winner;
  ++fault_stats_.failovers;
  ++fault_stats_.elections;
  obs::Metrics::inc(obs::Counter::kFailovers);
  obs::Metrics::inc(obs::Counter::kElections);
  obs::FlightRecorder::note(ctx().simulator->now(), obs::FlightKind::kElection,
                            robot_at(*winner).id());
  obs::FlightRecorder::note(ctx().simulator->now(), obs::FlightKind::kFailover,
                            robot_at(*winner).id());
  auto& am = robot_at(*winner);
  manager_pos_ = am.position();
  manager_lease_ = ctx().simulator->now();
  trace::Logger::global().logf(trace::Level::kInfo, ctx().simulator->now(), "fault",
                               "robot %u promoted to acting manager", am.id());
  if (event_log_) {
    event_log_->record({ctx().simulator->now(), trace::EventKind::kFailover, am.id(),
                        manager_->id(), am.position(), std::nullopt});
  }
  // Promotion flood: the new manager tells the whole network where to report
  // (same analytic accounting as the init flood). The old manager's in-flight
  // table died with it — unrepaired failures come back via the guardians'
  // periodic re-reports.
  ctx().medium->account(metrics::MessageCategory::kFaultTolerance,
                        1 + static_cast<std::uint64_t>(ctx().field->size()));
  in_flight_.clear();
  robot_locations_.clear();
  robot_backlog_.clear();
  for (std::size_t i = 0; i < robot_count(); ++i) {
    auto& r = robot_at(i);
    if (r.failed()) continue;
    robot_locations_[r.id()] = r.position();
    robot_backlog_[r.id()] =
        static_cast<std::uint32_t>(r.queue().size() + (r.busy() ? 1 : 0));
    refresh_lease(i);  // fresh grace period under the new manager
  }
  // The election exchange itself is real traffic: the winner geo-routes a
  // kElection to every other surviving robot (per-hop ARQ handles loss), and
  // each replies kElectionAck — see on_robot_packet. Convergence is still
  // modeled as immediate (the winner is deterministic: lowest live id).
  ++election_seq_;
  am.refresh_neighbor_table();
  for (std::size_t i = 0; i < robot_count(); ++i) {
    if (i == *winner || robot_at(i).failed()) continue;
    Packet ballot;
    ballot.type = PacketType::kElection;
    ballot.dst = robot_at(i).id();
    ballot.dst_location = robot_at(i).position();
    ballot.payload = net::ElectionPayload{am.id(), manager_pos_, election_seq_, false};
    am.router().send(std::move(ballot));
  }
  // Sensors in radio range of the new manager can use it as a final hop.
  auto& field = *ctx().field;
  for (const NodeId s : field.slots_within(manager_pos_, config().field.sensor_tx_range)) {
    auto& sensor = field.node(s);
    if (sensor.alive()) sensor.table().upsert(am.id(), manager_pos_);
  }
}

void CentralizedAlgorithm::on_robot_presumed_dead(std::size_t index) {
  // Re-dispatch every task that was in flight at the dead robot. Tasks whose
  // slot has since been repaired (duplicate dispatch) are simply closed.
  std::vector<std::pair<std::uint64_t, InFlight>> orphaned;
  for (const auto& [fid, entry] : in_flight_) {
    if (entry.robot == index) orphaned.emplace_back(fid, entry);
  }
  for (const auto& [fid, entry] : orphaned) {
    in_flight_.erase(fid);
    if (ctx().field->node(entry.slot).alive()) continue;
    ++fault_stats_.redispatches;
    obs::Metrics::inc(obs::Counter::kRedispatches);
    obs::FlightRecorder::note(ctx().simulator->now(),
                              obs::FlightKind::kRedispatch, entry.slot,
                              robot_at(index).id());
    trace::Logger::global().logf(trace::Level::kInfo, ctx().simulator->now(), "fault",
                                 "re-dispatching repair of %u (was in flight at robot %u)",
                                 entry.slot, robot_at(index).id());
    if (event_log_) {
      event_log_->record({ctx().simulator->now(), trace::EventKind::kRedispatch,
                          entry.slot, robot_at(index).id(), entry.location,
                          static_cast<double>(fid)});
    }
    net::FailureReportPayload failure;
    failure.failed_node = entry.slot;
    failure.failed_location = entry.location;
    failure.failure_id = fid;
    dispatch(failure);
  }
}

}  // namespace sensrep::core
