#include "core/data_collection.hpp"

namespace sensrep::core {

using net::NodeId;
using net::Packet;
using net::PacketType;

DataCollection::DataCollection(Simulation& simulation, const Config& config)
    : sim_(&simulation),
      config_(config),
      rng_(sim::Rng(simulation.config().seed).fork("data-collection")) {
  // Sink: robot-class radio at the field center, one id above the manager's
  // slot so the two coexist under the centralized algorithm.
  const NodeId sink_id = simulation.config().manager_id() + 1;
  sink_ = std::make_unique<ManagerNode>(
      sink_id, simulation.config().field_area().center(),
      simulation.config().robot_tx_range, simulation.simulator(), simulation.medium(),
      [this](const Packet& pkt) {
        if (pkt.type != PacketType::kData) return;
        ++delivered_;
        ++window_delivered_;
      });
  refresh_sink_neighbors();
  simulation.simulator().every(config_.sink_announce_period,
                               [this] { refresh_sink_neighbors(); });

  for (NodeId s = 0; s < simulation.field().size(); ++s) start_sensor_timer(s);
}

void DataCollection::refresh_sink_neighbors() {
  // The sink beacons like any node (one counted transmission); sensors in
  // *their own* TX range of it keep a final-hop table entry. This restores
  // entries on replacement units near the sink.
  sim_->medium().account(metrics::MessageCategory::kData);
  auto& field = sim_->field();
  const double range = sim_->config().field.sensor_tx_range;
  for (NodeId s = 0; s < field.size(); ++s) {
    auto& sensor = field.node(s);
    if (!sensor.alive()) continue;
    if (geometry::distance(sensor.position(), sink_->position()) <= range) {
      sensor.table().upsert(sink_->id(), sink_->position());
    }
  }
}

void DataCollection::start_sensor_timer(NodeId sensor) {
  const double phase = rng_.uniform(0.0, config_.report_period);
  auto& simulator = sim_->simulator();
  simulator.in(phase, [this, sensor, &simulator] {
    generate_report(sensor);
    simulator.every(config_.report_period, [this, sensor] { generate_report(sensor); });
  });
}

void DataCollection::generate_report(NodeId sensor) {
  // Every slot owes one sample per period: a dead sensor's missing sample
  // *is* the service degradation the yield measures (holes are lost data,
  // not a smaller denominator).
  ++generated_;
  ++window_generated_;
  auto& node = sim_->field().node(sensor);
  if (!node.alive()) return;
  Packet pkt;
  pkt.type = PacketType::kData;
  pkt.dst = sink_->id();
  pkt.dst_location = sink_->position();
  pkt.payload = net::DataPayload{sensor, ++sample_seq_};
  node.router().send(std::move(pkt));
}

void DataCollection::sample_yield_every(double window) {
  auto& simulator = sim_->simulator();
  simulator.every(window, [this, &simulator] {
    const double y = window_generated_ == 0
                         ? 1.0
                         : static_cast<double>(window_delivered_) /
                               static_cast<double>(window_generated_);
    yield_series_.add(simulator.now(), y);
    window_generated_ = 0;
    window_delivered_ = 0;
  });
}

}  // namespace sensrep::core
