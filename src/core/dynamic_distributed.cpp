#include "core/dynamic_distributed.hpp"

#include "trace/log.hpp"

namespace sensrep::core {

using net::kNoNode;
using net::NodeId;
using net::Packet;
using net::PacketType;

void DynamicDistributedAlgorithm::initialize() {
  // Robots stay at their deployment positions and flood their locations.
  // The relay rule lets the first floods travel wide (sensors with no
  // myrobot yet always relay), then narrows as knowledge accumulates, so
  // the field converges to the Voronoi assignment.
  for (std::size_t i = 0; i < robot_count(); ++i) {
    broadcast_location_update(robot_at(i), /*init=*/true);
  }

  // Defensive sweep shortly after the init floods settle: any sensor left
  // without a manager (a flood hole) queries a neighbor for the nearest
  // robot — two counted messages each. The paper assumes init is complete;
  // this keeps that assumption checkable instead of silent.
  ctx().simulator->in(5.0, [this] {
    auto& field = *ctx().field;
    for (std::size_t s = 0; s < field.size(); ++s) {
      auto& sensor = field.node(static_cast<NodeId>(s));
      if (!sensor.alive() || sensor.myrobot() != kNoNode) continue;
      // Squared-distance comparator, ties to the lowest index — identical
      // whether answered by the fleet grid or the brute scan.
      const auto nearest = nearest_robot_index(sensor.position());
      if (!nearest) continue;
      const NodeId best = robot_at(*nearest).id();
      sensor.learn_robot(best, robot_at(*nearest).position(), 1);
      sensor.set_myrobot(best);
      ctx().medium->account(metrics::MessageCategory::kInitialization, 2);
      trace::Logger::global().logf(trace::Level::kInfo, ctx().simulator->now(), "core",
                                   "dynamic init: sensor %u missed the floods, assigned %u",
                                   sensor.id(), best);
    }
  });
}

std::optional<wsn::ReportTarget> DynamicDistributedAlgorithm::report_target(
    const wsn::SensorNode& sensor) const {
  const NodeId robot = sensor.myrobot();
  if (robot == kNoNode) return std::nullopt;
  const auto* knowledge = sensor.find_robot(robot);
  if (knowledge == nullptr) return std::nullopt;
  return wsn::ReportTarget{robot, knowledge->location};
}

void DynamicDistributedAlgorithm::on_location_update(wsn::SensorNode& sensor,
                                                     const Packet& pkt, NodeId from) {
  const auto& body = std::get<net::LocationUpdatePayload>(pkt.payload);
  const NodeId previous_myrobot = sensor.myrobot();
  const bool fresh = sensor.learn_robot(body.robot, body.robot_location, body.update_seq);

  // Adopt the closest known robot as manager (Voronoi membership).
  if (const auto closest = sensor.closest_known_robot()) sensor.set_myrobot(*closest);

  if (!fresh) return;
  if (sensor.already_relayed(body.robot, body.update_seq)) return;

  // Relay scope (paper §3.3): the robot's previous cell (so members can
  // switch away), plus everyone within `fringe` of preferring the robot's
  // new location (the potential switchers of Fig. 1b).
  bool relay = previous_myrobot == body.robot || previous_myrobot == kNoNode;
  if (!relay) {
    const auto* mine = sensor.find_robot(sensor.myrobot());
    relay = mine == nullptr ||
            geometry::distance(sensor.position(), body.robot_location) <=
                geometry::distance(sensor.position(), mine->location) +
                    config().dynamic_fringe;
  }
  if (relay && config().efficient_broadcast && !relay_adds_coverage(sensor, from)) {
    relay = false;
  }
  if (relay) {
    sensor.mark_relayed(body.robot, body.update_seq);
    sensor.relay(pkt);
  }
}

void DynamicDistributedAlgorithm::on_robot_location_update(robot::RobotNode& robot) {
  broadcast_location_update(robot);  // flood seed; scoped relays follow
}

void DynamicDistributedAlgorithm::on_robot_packet(robot::RobotNode& robot,
                                                  const Packet& pkt) {
  if (pkt.type != PacketType::kFailureReport) return;
  // Every copy is acked (the first ack may have been lost); only a fresh
  // report dispatches — a link-duplicated frame must not double-dispatch.
  const bool fresh = record_report_arrival(pkt);
  acknowledge_report(robot.router(), pkt);
  if (!fresh) return;
  const auto& body = std::get<net::FailureReportPayload>(pkt.payload);
  dispatch_to(robot, make_task(body.failed_node, body.failed_location, body.failure_id));
}

void DynamicDistributedAlgorithm::on_robot_presumed_dead(std::size_t index) {
  auto* live = closest_live_robot(robot_at(index).position());
  if (live == nullptr) {
    trace::Logger::global().logf(trace::Level::kError, ctx().simulator->now(), "fault",
                                 "robot %u presumed dead and no live robot remains",
                                 robot_at(index).id());
    return;
  }
  trace::Logger::global().logf(trace::Level::kInfo, ctx().simulator->now(), "fault",
                               "reflooding location of robot %u toward dead robot %u's cell",
                               live->id(), robot_at(index).id());
  if (event_log_) {
    event_log_->record({ctx().simulator->now(), trace::EventKind::kFailover, live->id(),
                        robot_at(index).id(), live->position(), std::nullopt});
  }
  // A real flood seed: orphaned sensors (those whose myrobot aged out) relay
  // unconditionally, so the update spreads across the dead robot's cell.
  broadcast_location_update(*live);
}

void DynamicDistributedAlgorithm::on_robot_rejoin(std::size_t index) {
  auto& r = robot_at(index);
  trace::Logger::global().logf(trace::Level::kInfo, ctx().simulator->now(), "fault",
                               "reflooding location of repaired robot %u", r.id());
  // The reflood re-enters the robot into every nearby sensor's knowledge;
  // the Voronoi adoption rule in on_location_update does the re-switching.
  broadcast_location_update(r);
}

}  // namespace sensrep::core
