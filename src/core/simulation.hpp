#pragma once

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/coordination.hpp"
#include "metrics/counters.hpp"
#include "metrics/failure_log.hpp"
#include "net/medium.hpp"
#include "robot/robot.hpp"
#include "shard/driver.hpp"
#include "sim/simulator.hpp"
#include "wsn/sensor_field.hpp"

namespace sensrep::core {

/// Aggregated outcome of one run; every figure of the paper is a projection
/// of these fields (see DESIGN.md §4 experiment index).
struct ExperimentResult {
  Algorithm algorithm = Algorithm::kCentralized;
  std::size_t robots = 0;
  std::uint64_t seed = 0;

  // Figure 2: motion overhead.
  double avg_travel_per_repair = 0.0;  // meters

  // Figure 3: messaging hops.
  double avg_report_hops = 0.0;
  double avg_request_hops = 0.0;  // centralized only; 0 otherwise

  // Figure 4: location-update transmissions per (repaired) failure.
  double location_update_tx_per_repair = 0.0;

  // Failure pipeline health.
  std::size_t failures = 0;
  std::size_t detected = 0;
  std::size_t reported = 0;
  std::size_t repaired = 0;
  std::size_t unreported = 0;   // detections with no reachable manager
  std::uint64_t router_drops = 0;
  double delivery_ratio = 0.0;  // reports that reached a manager / detections

  // Latency.
  double avg_detection_latency = 0.0;  // failure -> guardian detection
  double avg_repair_latency = 0.0;     // failure -> replacement powered on
  double p95_repair_latency = 0.0;

  // Motion & energy (EnergyModel in the config; paper ref. [9]).
  double total_robot_distance = 0.0;
  double init_motion = 0.0;
  double motion_energy_j = 0.0;   // marginal energy of all driving
  double mission_energy_j = 0.0;  // full-mission draw incl. idle floor

  // Robot fault tolerance (all zero with the default, fault-free config).
  std::size_t robot_failures = 0;   // robots that died (injection ground truth)
  std::size_t tasks_lost = 0;       // tasks dropped by dying robots
  std::size_t orphaned_tasks = 0;   // tasks dropped for want of spares/depot
  std::size_t redispatches = 0;     // in-flight tasks re-sent after lease expiry
  std::size_t failover_events = 0;  // manager failovers (centralized)
  std::size_t adoptions = 0;        // subareas adopted from dead robots (fixed)
  std::size_t robot_repairs = 0;        // robots resurrected (MTTR ground truth)
  std::size_t elections = 0;            // real election rounds run (centralized)
  std::size_t handbacks = 0;            // acting manager -> repaired manager
  std::size_t ownership_transfers = 0;  // kOwnershipTransfer deliveries applied

  // Transmission counters snapshot, indexed by MessageCategory.
  std::array<std::uint64_t, static_cast<std::size_t>(metrics::MessageCategory::kCount)>
      transmissions{};

  [[nodiscard]] std::uint64_t tx(metrics::MessageCategory c) const noexcept {
    return transmissions[static_cast<std::size_t>(c)];
  }

  /// Human-readable multi-line summary.
  [[nodiscard]] std::string summary() const;
};

/// Compact deterministic fingerprint of a live simulation, cheap enough to
/// take between events. The service layer (src/service) embeds it in
/// snapshots and compares it after a restore-replay to prove the resumed run
/// reconverged on the interrupted one; the daemon's `status` command prints
/// it. Two runs with identical configs and identical injected-event journals
/// produce identical digests at the same virtual time.
struct StateDigest {
  double clock = 0.0;
  std::uint64_t events_executed = 0;
  std::uint64_t pending_events = 0;
  std::uint64_t failures = 0;        // sensor failures opened so far
  std::uint64_t repaired = 0;        // sensor failures closed by a replacement
  std::uint64_t robot_failures = 0;  // robots killed so far
  std::uint64_t robot_repairs = 0;   // robots resurrected so far
  std::uint64_t live_robots = 0;
  std::uint64_t pending_tasks = 0;   // queued + in-service repair tasks
  std::uint64_t transmissions = 0;   // all categories
  friend bool operator==(const StateDigest&, const StateDigest&) = default;

  /// One line of space-separated key=value tokens (snapshot format; the
  /// clock prints with %.17g so it round-trips bitwise).
  [[nodiscard]] std::string to_string() const;
};

/// One fully wired simulation: medium, sensor field, robots, and the chosen
/// coordination algorithm — construction performs deployment and the
/// algorithm's initialization stage, so the system is ready to run.
///
///   core::SimulationConfig cfg;
///   cfg.algorithm = core::Algorithm::kDynamicDistributed;
///   cfg.robots = 9;
///   core::Simulation sim(cfg);
///   sim.run();
///   auto result = sim.result();
class Simulation {
 public:
  explicit Simulation(const SimulationConfig& config);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Runs to config.sim_duration (resumable: run_until first, then run).
  void run();

  /// Runs the virtual clock up to `t` (absolute seconds).
  void run_until(sim::SimTime t);

  /// Snapshot of all metrics at the current virtual time.
  [[nodiscard]] ExperimentResult result() const;

  /// Deterministic state fingerprint at the current virtual time.
  [[nodiscard]] StateDigest digest() const;

  // --- external event injection (service mode; see docs/SERVICE.md) ---------
  //
  // These are the daemon's ingestion points: they apply an event *now*, at
  // the current virtual time, instead of pre-scheduling it at construction.
  // All three are safe to call between run_until() steps only (never from
  // inside an event callback).

  /// Kills sensor `slot`'s unit now. Returns false (and does nothing) when
  /// the slot is already dead; throws std::invalid_argument for non-sensor
  /// ids.
  bool inject_sensor_failure(net::NodeId slot);

  /// Kills robot `index` now (same path as scheduled crashes, including the
  /// MTTR draw when the repair model is on). Returns false when the robot is
  /// already dead; throws std::invalid_argument for out-of-range indices.
  bool inject_robot_crash(std::size_t index);

  /// Resurrects robot `index` now (same path as scheduled repairs). Returns
  /// false when the robot is alive; throws std::invalid_argument for
  /// out-of-range indices.
  bool inject_robot_repair(std::size_t index);

  /// Streams failure-lifecycle and robot-movement events into `log` from now
  /// on (see trace::EventLog). The log must outlive the simulation.
  void attach_event_log(trace::EventLog& log);

  /// Follows every sensor failure through its repair lifecycle as spans on
  /// `tracer` from now on (see obs::Tracer and docs/OBSERVABILITY.md). The
  /// tracer must outlive the simulation.
  void attach_tracer(obs::Tracer& tracer);

  // --- component access (examples, tests, visualization) --------------------

  [[nodiscard]] const SimulationConfig& config() const noexcept { return config_; }
  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] net::Medium& medium() noexcept { return *medium_; }
  [[nodiscard]] wsn::SensorField& field() noexcept { return *field_; }
  [[nodiscard]] CoordinationAlgorithm& algorithm() noexcept { return *algo_; }
  [[nodiscard]] std::vector<std::unique_ptr<robot::RobotNode>>& robots() noexcept {
    return robots_;
  }
  [[nodiscard]] const metrics::FailureLog& failure_log() const noexcept { return log_; }
  [[nodiscard]] const metrics::TransmissionCounters& counters() const noexcept {
    return counters_;
  }

  /// The sharded tick driver, or nullptr on the stock single-shard schedule
  /// (FieldConfig::shards == 1). Tests reach through this for window stats
  /// and the robot tile-ownership ledger.
  [[nodiscard]] shard::ShardedDriver* shard_driver() noexcept { return driver_.get(); }

 private:
  /// Fault injection: kills robot `index` (no-op if already dead) and, with
  /// a finite MTTR, draws and schedules its repair.
  void kill_robot(std::size_t index);

  /// MTTR model: resurrects robot `index` (no-op if alive) and, with
  /// spontaneous failures on, draws its next time-to-failure — the fleet
  /// cycles through fail/repair and reaches steady-state availability.
  void revive_robot(std::size_t index);

  SimulationConfig config_;
  sim::Simulator sim_;
  metrics::TransmissionCounters counters_;
  metrics::FailureLog log_;
  std::unique_ptr<net::Medium> medium_;
  std::unique_ptr<CoordinationAlgorithm> algo_;
  std::unique_ptr<wsn::SensorField> field_;
  std::unique_ptr<shard::ShardedDriver> driver_;  // shards > 1 only
  std::vector<std::unique_ptr<robot::RobotNode>> robots_;

  // Fault-model RNG streams, seeded only when the respective model is on so
  // fault-free (and repair-free) runs draw nothing extra.
  std::optional<sim::Rng> fault_rng_;   // times-to-failure (initial + post-repair)
  std::optional<sim::Rng> repair_rng_;  // times-to-repair
};

}  // namespace sensrep::core
