#include "core/fixed_distributed.hpp"

namespace sensrep::core {

using geometry::Vec2;
using net::NodeId;
using net::Packet;
using net::PacketType;

void FixedDistributedAlgorithm::bind(const SystemContext& system_ctx) {
  CoordinationAlgorithm::bind(system_ctx);
  const geometry::Rect area = config().field_area();
  switch (config().partition) {
    case PartitionShape::kSquare:
      partition_ = std::make_unique<geometry::SquarePartition>(
          geometry::SquarePartition::squares(area, config().robots));
      break;
    case PartitionShape::kHexagon:
      partition_ = std::make_unique<geometry::HexPartition>(area, config().robots);
      break;
  }
}

void FixedDistributedAlgorithm::initialize() {
  // Paper §3.2 init: robots move to their subarea centers, then flood their
  // location to the subarea's sensors. The repositioning is instantaneous in
  // simulation time (it precedes operation) but its motion cost is tracked.
  for (std::size_t i = 0; i < robot_count(); ++i) {
    auto& r = robot_at(i);
    const Vec2 center = partition_->center(i);
    init_motion_ += geometry::distance(r.position(), center);
    r.teleport(center);
    broadcast_location_update(r, /*init=*/true);
  }
}

std::optional<wsn::ReportTarget> FixedDistributedAlgorithm::report_target(
    const wsn::SensorNode& sensor) const {
  // Subarea membership is deployment-time configuration: every sensor knows
  // the field geometry and its own coordinates, hence its subarea index.
  const std::size_t cell = subarea_of(sensor.position());
  const NodeId robot = config().robot_id(cell);
  // Believed robot location: last flooded update, else the subarea center
  // (where the robot parked at initialization).
  const auto* knowledge = sensor.find_robot(robot);
  const Vec2 loc = knowledge ? knowledge->location : partition_->center(cell);
  return wsn::ReportTarget{robot, loc};
}

void FixedDistributedAlgorithm::on_location_update(wsn::SensorNode& sensor,
                                                   const Packet& pkt, NodeId from) {
  const auto& body = std::get<net::LocationUpdatePayload>(pkt.payload);
  const bool fresh = sensor.learn_robot(body.robot, body.robot_location, body.update_seq);
  const std::size_t my_cell = subarea_of(sensor.position());
  const std::size_t robot_cell = robot_index(body.robot);
  if (robot_cell == my_cell) sensor.set_myrobot(body.robot);

  // Relay rule (paper §3.2): all sensors of the robot's subarea relay each
  // update exactly once, remembered by sequence number.
  if (!fresh || robot_cell != my_cell) return;
  if (sensor.already_relayed(body.robot, body.update_seq)) return;
  if (config().efficient_broadcast && !relay_adds_coverage(sensor, from)) return;
  sensor.mark_relayed(body.robot, body.update_seq);
  sensor.relay(pkt);
}

void FixedDistributedAlgorithm::on_robot_location_update(robot::RobotNode& robot) {
  broadcast_location_update(robot);  // flood seed; subarea sensors relay
}

void FixedDistributedAlgorithm::on_robot_packet(robot::RobotNode& robot,
                                                const Packet& pkt) {
  if (pkt.type != PacketType::kFailureReport) return;
  record_report_arrival(pkt);
  acknowledge_report(robot.router(), pkt);
  const auto& body = std::get<net::FailureReportPayload>(pkt.payload);
  dispatch_to(robot, make_task(body.failed_node, body.failed_location, body.failure_id));
}

}  // namespace sensrep::core
