#include "core/fixed_distributed.hpp"

#include <algorithm>

#include "obs/flight_recorder.hpp"
#include "obs/metrics_registry.hpp"
#include "trace/log.hpp"

namespace sensrep::core {

using geometry::Vec2;
using net::NodeId;
using net::Packet;
using net::PacketType;

void FixedDistributedAlgorithm::bind(const SystemContext& system_ctx) {
  CoordinationAlgorithm::bind(system_ctx);
  const geometry::Rect area = config().field_area();
  switch (config().partition) {
    case PartitionShape::kSquare:
      partition_ = std::make_unique<geometry::SquarePartition>(
          geometry::SquarePartition::squares(area, config().robots));
      break;
    case PartitionShape::kHexagon:
      partition_ = std::make_unique<geometry::HexPartition>(area, config().robots);
      break;
  }
  // Identity ownership: robot i manages cell i until an adoption rewires it.
  owner_.resize(config().robots);
  for (std::size_t i = 0; i < owner_.size(); ++i) owner_[i] = i;
}

void FixedDistributedAlgorithm::initialize() {
  // Paper §3.2 init: robots move to their subarea centers, then flood their
  // location to the subarea's sensors. The repositioning is instantaneous in
  // simulation time (it precedes operation) but its motion cost is tracked.
  for (std::size_t i = 0; i < robot_count(); ++i) {
    auto& r = robot_at(i);
    const Vec2 center = partition_->center(i);
    init_motion_ += geometry::distance(r.position(), center);
    r.teleport(center);
    broadcast_location_update(r, /*init=*/true);
  }
}

std::optional<wsn::ReportTarget> FixedDistributedAlgorithm::report_target(
    const wsn::SensorNode& sensor) const {
  // Subarea membership is deployment-time configuration: every sensor knows
  // the field geometry and its own coordinates, hence its subarea index. The
  // owner map is identity until a robot death reassigns cells (adoption).
  const std::size_t cell = subarea_of(sensor.position());
  const std::size_t owner = owner_[cell];
  const NodeId robot = config().robot_id(owner);
  // Believed robot location: last flooded update, else the owner's home
  // subarea center (where it parked at initialization).
  const auto* knowledge = sensor.find_robot(robot);
  const Vec2 loc = knowledge ? knowledge->location : partition_->center(owner);
  return wsn::ReportTarget{robot, loc};
}

void FixedDistributedAlgorithm::on_location_update(wsn::SensorNode& sensor,
                                                   const Packet& pkt, NodeId from) {
  const auto& body = std::get<net::LocationUpdatePayload>(pkt.payload);
  const bool fresh = sensor.learn_robot(body.robot, body.robot_location, body.update_seq);
  const std::size_t my_cell = subarea_of(sensor.position());
  const bool owns = owner_[my_cell] == robot_index(body.robot);
  if (owns) sensor.set_myrobot(body.robot);

  // Relay rule (paper §3.2): all sensors of the subareas the robot owns
  // relay each update exactly once, remembered by sequence number. (With
  // identity ownership this is exactly the paper's "robot's own subarea".)
  if (!fresh || !owns) return;
  if (sensor.already_relayed(body.robot, body.update_seq)) return;
  if (config().efficient_broadcast && !relay_adds_coverage(sensor, from)) return;
  sensor.mark_relayed(body.robot, body.update_seq);
  sensor.relay(pkt);
}

void FixedDistributedAlgorithm::on_robot_location_update(robot::RobotNode& robot) {
  broadcast_location_update(robot);  // flood seed; subarea sensors relay
}

void FixedDistributedAlgorithm::on_robot_packet(robot::RobotNode& robot,
                                                const Packet& pkt) {
  if (pkt.type == PacketType::kOwnershipTransfer) {
    const auto& body = std::get<net::OwnershipTransferPayload>(pkt.payload);
    if (!body.ack) apply_return(robot, pkt);
    return;  // acks are pure confirmation (ownership flipped on delivery)
  }
  if (pkt.type != PacketType::kFailureReport) return;
  // Every copy is acked (the first ack may have been lost); only a fresh
  // report dispatches — a link-duplicated frame must not double-dispatch.
  const bool fresh = record_report_arrival(pkt);
  acknowledge_report(robot.router(), pkt);
  if (!fresh) return;
  const auto& body = std::get<net::FailureReportPayload>(pkt.payload);
  dispatch_to(robot, make_task(body.failed_node, body.failed_location, body.failure_id));
}

void FixedDistributedAlgorithm::on_robot_presumed_dead(std::size_t index) {
  // Election among the surviving robots (one message each, accounted): the
  // live robot with the lowest id adopts every subarea the dead one owned.
  // Nothing is charged before the adopter check — an all-dead fleet runs no
  // election (same rule as the centralized failover).
  std::optional<std::size_t> adopter;
  for (std::size_t i = 0; i < robot_count(); ++i) {
    if (i == index || robot_at(i).failed() || presumed_dead(i)) continue;
    adopter = i;
    break;
  }
  if (!adopter) {
    trace::Logger::global().logf(trace::Level::kError, ctx().simulator->now(), "fault",
                                 "robot %u presumed dead but no live robot can adopt",
                                 robot_at(index).id());
    return;
  }
  ctx().medium->account(metrics::MessageCategory::kFaultTolerance, robot_count());
  std::vector<std::size_t> adopted;
  for (std::size_t cell = 0; cell < owner_.size(); ++cell) {
    if (owner_[cell] != index) continue;
    owner_[cell] = *adopter;
    adopted.push_back(cell);
    ++fault_stats_.adoptions;
    obs::Metrics::inc(obs::Counter::kAdoptions);
    obs::FlightRecorder::note(ctx().simulator->now(), obs::FlightKind::kAdoption,
                              static_cast<std::uint32_t>(cell),
                              robot_at(*adopter).id());
  }
  if (adopted.empty()) return;  // its cells were already adopted earlier
  auto& am = robot_at(*adopter);
  trace::Logger::global().logf(trace::Level::kInfo, ctx().simulator->now(), "fault",
                               "robot %u adopts %zu subarea(s) of dead robot %u",
                               am.id(), adopted.size(), robot_at(index).id());
  if (event_log_) {
    event_log_->record({ctx().simulator->now(), trace::EventKind::kFailover, am.id(),
                        robot_at(index).id(), am.position(),
                        static_cast<double>(adopted.size())});
  }
  // Ownership flood: a network-wide control broadcast (accounted analytically
  // like the init floods — relay rules confine location updates to owned
  // cells, so ownership changes must travel as their own flood).
  ctx().medium->account(metrics::MessageCategory::kFaultTolerance,
                        1 + static_cast<std::uint64_t>(ctx().field->size()));
  // What the flood teaches the orphaned cells' sensors: who their robot is
  // now and where it last was.
  const auto seq = am.next_update_seq();
  auto& field = *ctx().field;
  const auto teach = [&](wsn::SensorNode& sensor) {
    if (!sensor.alive()) return;
    sensor.learn_robot(am.id(), am.position(), seq);
    sensor.set_myrobot(am.id());
  };
  if (config().field.spatial_index) {
    // Cells partition the sensors, so merging the adopted cells' (ascending)
    // member lists and sorting restores the exact ascending-id visit order
    // of the brute field scan below.
    std::vector<NodeId> members;
    for (const std::size_t cell : adopted) {
      const auto& m = members_of(cell);
      members.insert(members.end(), m.begin(), m.end());
    }
    std::sort(members.begin(), members.end());
    for (const NodeId s : members) teach(field.node(s));
    return;
  }
  for (std::size_t s = 0; s < field.size(); ++s) {
    auto& sensor = field.node(static_cast<NodeId>(s));
    const std::size_t cell = subarea_of(sensor.position());
    if (std::find(adopted.begin(), adopted.end(), cell) == adopted.end()) continue;
    teach(sensor);
  }
}

const std::vector<NodeId>& FixedDistributedAlgorithm::members_of(std::size_t cell) {
  if (cell_members_.empty()) {
    cell_members_.resize(owner_.size());
    auto& field = *ctx().field;
    for (std::size_t s = 0; s < field.size(); ++s) {
      const auto id = static_cast<NodeId>(s);
      cell_members_[subarea_of(field.node(id).position())].push_back(id);
    }
  }
  return cell_members_.at(cell);
}

void FixedDistributedAlgorithm::on_robot_rejoin(std::size_t index) {
  auto& r = robot_at(index);
  // Reflood the reborn robot's location so its old subarea's sensors relearn
  // it as a routing hop (they still forward to the adopter until the
  // ownership transfer lands).
  broadcast_location_update(r);
  // Each cell the robot originally owned (identity mapping: cell i <-> robot
  // i) that is currently adopted is offered back by its adopter.
  for (std::size_t cell = 0; cell < owner_.size(); ++cell) {
    if (cell != index || owner_[cell] == index) continue;
    offer_return(cell, 0);
  }
}

void FixedDistributedAlgorithm::offer_return(std::size_t cell, std::size_t attempt) {
  constexpr std::size_t kMaxAttempts = 5;
  const std::size_t original = cell;  // identity mapping
  if (owner_[cell] == original) return;        // transfer already applied
  if (robot_at(original).failed()) return;     // reborn robot died again
  auto& holder = robot_at(owner_[cell]);
  if (holder.failed()) return;  // adopter died; its own death path re-assigns
  auto& reborn = robot_at(original);
  Packet offer;
  offer.type = PacketType::kOwnershipTransfer;
  offer.dst = reborn.id();
  offer.dst_location = reborn.position();
  offer.payload = net::OwnershipTransferPayload{
      static_cast<std::uint32_t>(cell), reborn.id(), reborn.position(),
      ++transfer_seq_, false};
  holder.refresh_neighbor_table();
  holder.router().send(std::move(offer));
  // End-to-end retry: per-hop ARQ absorbs single losses, but a fully dropped
  // offer must not strand the cell at its adopter forever. Ownership flips
  // only on delivery, so duplicate offers are harmless.
  if (attempt + 1 >= kMaxAttempts) return;
  ctx().simulator->in(config().robot_faults.heartbeat_period,
                      [this, cell, attempt] { offer_return(cell, attempt + 1); });
}

void FixedDistributedAlgorithm::apply_return(robot::RobotNode& robot, const Packet& pkt) {
  const auto& body = std::get<net::OwnershipTransferPayload>(pkt.payload);
  const auto cell = static_cast<std::size_t>(body.cell);
  const std::size_t mine = robot_index(robot.id());
  if (cell >= owner_.size() || body.to_owner != robot.id()) return;
  if (owner_[cell] == mine) return;  // duplicate offer (retry raced the ack)
  owner_[cell] = mine;
  ++fault_stats_.ownership_transfers;
  obs::Metrics::inc(obs::Counter::kOwnershipTransfers);
  obs::FlightRecorder::note(ctx().simulator->now(), obs::FlightKind::kHandback,
                            robot.id(), static_cast<std::uint32_t>(cell));
  trace::Logger::global().logf(trace::Level::kInfo, ctx().simulator->now(), "fault",
                               "robot %u took subarea %zu back from robot %u",
                               robot.id(), cell, pkt.src);
  // Ownership flood for the returned cell (same analytic accounting as the
  // adoption flood) teaching its sensors who their robot is again.
  ctx().medium->account(metrics::MessageCategory::kFaultTolerance,
                        1 + static_cast<std::uint64_t>(ctx().field->size()));
  const auto seq = robot.next_update_seq();
  auto& field = *ctx().field;
  const auto teach = [&](wsn::SensorNode& sensor) {
    if (!sensor.alive()) return;
    sensor.learn_robot(robot.id(), robot.position(), seq);
    sensor.set_myrobot(robot.id());
  };
  if (config().field.spatial_index) {
    for (const NodeId s : members_of(cell)) teach(field.node(s));
  } else {
    for (std::size_t s = 0; s < field.size(); ++s) {
      auto& sensor = field.node(static_cast<NodeId>(s));
      if (subarea_of(sensor.position()) != cell) continue;
      teach(sensor);
    }
  }
  // Confirmation ack back to the adopter (real traffic; informational only —
  // the shared owner map is already consistent).
  Packet ack;
  ack.type = PacketType::kOwnershipTransfer;
  ack.dst = pkt.src;
  ack.dst_location = robot_at(robot_index(pkt.src)).position();
  ack.payload = net::OwnershipTransferPayload{body.cell, robot.id(), robot.position(),
                                              body.transfer_seq, true};
  robot.refresh_neighbor_table();
  robot.router().send(std::move(ack));
}

}  // namespace sensrep::core
