#include "core/manager_node.hpp"

#include "trace/log.hpp"

namespace sensrep::core {

using net::NodeId;
using net::Packet;

ManagerNode::ManagerNode(NodeId id, geometry::Vec2 pos, double tx_range,
                         sim::Simulator& simulator, net::Medium& medium, DeliverFn deliver)
    : id_(id), pos_(pos), tx_range_(tx_range), medium_(&medium), deliver_(std::move(deliver)) {
  routing::GeoRouter::Callbacks cb;
  cb.deliver = [this](const Packet& pkt) { deliver_(pkt); };
  cb.drop = [&simulator, id](const Packet& pkt, routing::DropReason reason) {
    trace::Logger::global().logf(trace::Level::kDebug, simulator.now(), "manager",
                                 "manager %u dropped %s: %s", id,
                                 std::string(net::to_string(pkt.type)).c_str(),
                                 std::string(to_string(reason)).c_str());
  };
  router_ = std::make_unique<routing::GeoRouter>(
      id_, medium, table_, [this] { return pos_; }, std::move(cb));
  medium_->attach(id_, pos_, tx_range_,
                  [this](const Packet& pkt, NodeId from) { on_packet(pkt, from); });
}

void ManagerNode::refresh_neighbor_table() {
  table_.clear();
  for (const NodeId n : medium_->nodes_near(pos_, tx_range_)) {
    if (n == id_) continue;
    table_.upsert(n, medium_->position_of(n));
  }
}

void ManagerNode::on_packet(const Packet& pkt, NodeId from) {
  if (failed_) return;  // dead node (the medium already drops RX; belt & braces)
  if (pkt.dst == net::kBroadcastId) return;  // sensor-side flood traffic
  refresh_neighbor_table();
  router_->on_receive(pkt, from);
}

void ManagerNode::fail() {
  if (failed_) return;
  failed_ = true;
  medium_->set_alive(id_, false);
}

void ManagerNode::repair() {
  if (!failed_) return;
  failed_ = false;
  medium_->set_alive(id_, true);
  refresh_neighbor_table();
}

}  // namespace sensrep::core
