#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace sensrep::sim {

/// Simulation time in seconds since the start of the run.
///
/// A plain double keeps the arithmetic natural for kinematics (distance /
/// speed) while the event queue guarantees deterministic ordering of
/// same-timestamp events via a monotone sequence number, so double's
/// rounding never makes runs non-reproducible.
using SimTime = double;

/// Duration in seconds.
using Duration = double;

/// Sentinel for "never" / unset timestamps.
inline constexpr SimTime kNever = std::numeric_limits<SimTime>::infinity();

/// True when `t` is a real (finite, non-negative) simulation timestamp.
[[nodiscard]] constexpr bool is_valid_time(SimTime t) noexcept {
  return t >= 0.0 && t < kNever;
}

}  // namespace sensrep::sim
