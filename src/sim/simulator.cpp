#include "sim/simulator.hpp"

namespace sensrep::sim {

bool Simulator::cancel(EventId id) noexcept {
  if (auto it = periodic_.find(id.value); it != periodic_.end()) {
    auto state = it->second;
    const bool was_live = !state->cancelled;
    state->cancelled = true;
    queue_.cancel(state->current);
    periodic_.erase(it);
    return was_live;
  }
  return queue_.cancel(id);
}

std::uint64_t Simulator::run_until(SimTime horizon) {
  std::uint64_t n = 0;
  stop_requested_ = false;
  interrupted_ = false;
  while (!queue_.empty() && !stop_requested_) {
    if (queue_.next_time() > horizon) break;
    auto ev = queue_.pop();
    now_ = ev.time;
    ev.callback();
    ++executed_;
    ++n;
    if (interrupt_ && n % interrupt_stride_ == 0 && interrupt_()) {
      interrupted_ = true;
      break;
    }
  }
  if (now_ < horizon && !stop_requested_ && !interrupted_) now_ = horizon;
  return n;
}

std::uint64_t Simulator::run_all() {
  std::uint64_t n = 0;
  stop_requested_ = false;
  interrupted_ = false;
  while (!queue_.empty() && !stop_requested_) {
    auto ev = queue_.pop();
    now_ = ev.time;
    ev.callback();
    ++executed_;
    ++n;
    if (interrupt_ && n % interrupt_stride_ == 0 && interrupt_()) {
      interrupted_ = true;
      break;
    }
  }
  return n;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto ev = queue_.pop();
  now_ = ev.time;
  ev.callback();
  ++executed_;
  return true;
}

}  // namespace sensrep::sim
