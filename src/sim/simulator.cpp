#include "sim/simulator.hpp"

#include <stdexcept>
#include <utility>

namespace sensrep::sim {

EventId Simulator::at(SimTime t, Callback cb) {
  if (t < now_) throw std::invalid_argument("Simulator::at: time in the past");
  return queue_.schedule(t, std::move(cb));
}

EventId Simulator::in(Duration delay, Callback cb) {
  if (delay < 0.0) throw std::invalid_argument("Simulator::in: negative delay");
  return queue_.schedule(now_ + delay, std::move(cb));
}

EventId Simulator::every(Duration period, std::function<void()> cb) {
  if (period <= 0.0) throw std::invalid_argument("Simulator::every: period must be positive");
  auto state = std::make_shared<PeriodicState>();
  auto body = std::make_shared<std::function<void()>>(std::move(cb));

  // Self re-arming wrapper. `arm` owns itself through the capture, living as
  // long as an occurrence is pending; cancellation drops the last reference.
  auto arm = std::make_shared<std::function<void()>>();
  *arm = [this, state, body, period, arm] {
    (*body)();
    if (state->cancelled) return;  // cancel() ran inside the callback
    state->current = queue_.schedule(now_ + period, [arm] { (*arm)(); });
  };
  state->current = queue_.schedule(now_ + period, [arm] { (*arm)(); });
  const EventId head = state->current;
  periodic_.emplace(head.value, state);
  return head;
}

bool Simulator::cancel(EventId id) noexcept {
  if (auto it = periodic_.find(id.value); it != periodic_.end()) {
    auto state = it->second;
    const bool was_live = !state->cancelled;
    state->cancelled = true;
    queue_.cancel(state->current);
    periodic_.erase(it);
    return was_live;
  }
  return queue_.cancel(id);
}

std::uint64_t Simulator::run_until(SimTime horizon) {
  std::uint64_t n = 0;
  stop_requested_ = false;
  interrupted_ = false;
  while (!queue_.empty() && !stop_requested_) {
    if (queue_.next_time() > horizon) break;
    auto ev = queue_.pop();
    now_ = ev.time;
    ev.callback();
    ++executed_;
    ++n;
    if (interrupt_ && n % interrupt_stride_ == 0 && interrupt_()) {
      interrupted_ = true;
      break;
    }
  }
  if (now_ < horizon && !stop_requested_ && !interrupted_) now_ = horizon;
  return n;
}

std::uint64_t Simulator::run_all() {
  std::uint64_t n = 0;
  stop_requested_ = false;
  interrupted_ = false;
  while (!queue_.empty() && !stop_requested_) {
    auto ev = queue_.pop();
    now_ = ev.time;
    ev.callback();
    ++executed_;
    ++n;
    if (interrupt_ && n % interrupt_stride_ == 0 && interrupt_()) {
      interrupted_ = true;
      break;
    }
  }
  return n;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto ev = queue_.pop();
  now_ = ev.time;
  ev.callback();
  ++executed_;
  return true;
}

}  // namespace sensrep::sim
