#include "sim/rng.hpp"

#include <cassert>
#include <numbers>
#include <cmath>

namespace sensrep::sim {

namespace {

// SplitMix64: expands a 64-bit seed into well-mixed state words.
std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

// FNV-1a over a component name, used to derive child-stream seeds.
std::uint64_t hash_name(std::string_view name) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : name) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept : seed_(seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
  // xoshiro's all-zero state is a fixed point; SplitMix64 cannot produce four
  // zero words from any seed, but keep the guard for safety.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

Rng Rng::fork(std::string_view component) const noexcept {
  // Mix the parent's seed with the component name; the multiplication by an
  // odd constant decorrelates sibling streams whose names share prefixes.
  const std::uint64_t child = seed_ ^ (hash_name(component) * 0x9E3779B97F4A7C15ULL);
  return Rng{child};
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform01() noexcept {
  // 53 top bits -> double in [0, 1) with full mantissa resolution.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  assert(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  assert(n > 0);
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::exponential(double mean) noexcept {
  assert(mean > 0.0);
  // Inverse CDF; 1 - u is in (0, 1] so log() never sees zero.
  return -mean * std::log(1.0 - uniform01());
}

bool Rng::chance(double p) noexcept { return uniform01() < p; }

double Rng::normal(double mean, double stddev) noexcept {
  assert(stddev >= 0.0);
  // Box–Muller, single variate per call: spares the caller spare-caching
  // state at the cost of one extra log/sqrt — irrelevant at our call rates.
  const double u1 = 1.0 - uniform01();  // (0, 1]: log never sees zero
  const double u2 = uniform01();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace sensrep::sim
