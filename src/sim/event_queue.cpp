#include "sim/event_queue.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

#include "obs/profiler.hpp"

namespace sensrep::sim {

EventId EventQueue::schedule(SimTime t, Callback cb) {
  if (!is_valid_time(t)) throw std::invalid_argument("EventQueue::schedule: invalid time");
  if (!cb) throw std::invalid_argument("EventQueue::schedule: null callback");
  const obs::ScopedTimer probe(obs::Probe::kEventPush);
  const EventId id{next_seq_++};
  heap_.push(HeapEntry{t, id.value, id});
  live_.emplace(id.value, std::move(cb));
  return id;
}

bool EventQueue::cancel(EventId id) noexcept {
  return live_.erase(id.value) > 0;
}

void EventQueue::skim() {
  while (!heap_.empty() && !live_.contains(heap_.top().id.value)) heap_.pop();
}

SimTime EventQueue::next_time() const {
  const_cast<EventQueue*>(this)->skim();
  assert(!heap_.empty());
  return heap_.top().time;
}

EventQueue::Popped EventQueue::pop() {
  const obs::ScopedTimer probe(obs::Probe::kEventPop);
  skim();
  assert(!heap_.empty());
  const HeapEntry top = heap_.top();
  heap_.pop();
  auto it = live_.find(top.id.value);
  assert(it != live_.end());
  Popped out{top.time, top.id, std::move(it->second)};
  live_.erase(it);
  return out;
}

}  // namespace sensrep::sim
