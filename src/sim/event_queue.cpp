#include "sim/event_queue.hpp"

namespace sensrep::sim {

EventQueue::~EventQueue() {
  // Destroy callables the pool still owns. kPopped slots belong to an
  // outstanding Popped handle, which must not outlive the queue (run loops
  // destroy the handle before returning, so this holds everywhere).
  // (kCancelled slots already destroyed their callable; kPopped belong to
  // the handle.)
  for (auto& chunk : chunks_) {
    for (std::uint32_t i = 0; i < kChunkSlots; ++i) {
      Slot& s = chunk[i];
      if (s.state == SlotState::kLive) s.destroy(s);
    }
  }
}

void EventQueue::set_legacy(bool legacy) {
  if (next_seq_ != 1 || !heap_times_.empty()) {
    throw std::logic_error("EventQueue::set_legacy: queue already used");
  }
  legacy_ = legacy;
}

bool EventQueue::cancel(EventId id) noexcept {
  if (!id.valid()) return false;
  if (legacy_) {
    if (live_map_.erase(id.value) == 0) return false;
  } else {
    const auto index = static_cast<std::uint32_t>(id.value >> 32);
    if (index >= pool_slots()) return false;
    Slot& s = slot_at(index);
    if (s.state != SlotState::kLive || s.gen != static_cast<std::uint32_t>(id.value)) {
      return false;
    }
    s.destroy(s);
    s.invoke = nullptr;
    s.destroy = nullptr;
    // Park the slot: its seq must stay readable while the heap entry is
    // still comparable; skim()/maybe_compact() recycle it on discard.
    s.state = SlotState::kCancelled;
    --live_count_;
  }
  obs::Metrics::inc(obs::Counter::kEventsCancelled);
  ++dead_in_heap_;
  maybe_compact();
  return true;
}

SimTime EventQueue::next_time() const {
  // Logically const: discards already-cancelled heap entries so the reported
  // time is the one the next pop() will deliver, even right after a
  // cancel-of-top.
  const_cast<EventQueue*>(this)->skim();
  assert(!heap_times_.empty());
  return heap_times_.front();
}

EventQueue::Popped EventQueue::pop() {
  const obs::ScopedTimer probe(obs::Probe::kEventPop);
  obs::Metrics::inc(obs::Counter::kEventsExecuted);
  skim();
  assert(!heap_times_.empty());
  const HeapEntry top{heap_times_.front(), heap_keys_.front()};
  heap_pop_front();
  if (legacy_) {
    auto it = live_map_.find(top.key);
    assert(it != live_map_.end());
    Callback cb = std::move(it->second);
    live_map_.erase(it);
    return Popped(top.time, EventId{top.key}, this, kNoSlot, std::move(cb));
  }
  const auto index = static_cast<std::uint32_t>(top.key >> 32);
  slot_at(index).state = SlotState::kPopped;
  --live_count_;
  return Popped(top.time, EventId{top.key}, this, index, Callback{});
}

EventQueue::Popped::~Popped() {
  if (queue_ != nullptr && slot_ != kNoSlot) queue_->release_popped(slot_);
}

void EventQueue::Popped::callback() {
  if (slot_ != kNoSlot) {
    Slot& s = queue_->slot_at(slot_);
    s.invoke(s);
  } else {
    boxed_();
  }
}

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ == kNoSlot) {
    const auto base = static_cast<std::uint32_t>(pool_slots());
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSlots));
    // Chunk growth is rare (amortized), so the occupancy gauge rides on it.
    obs::Metrics::set_gauge(obs::Gauge::kEventPoolSlots,
                            static_cast<double>(pool_slots()));
    // Thread the fresh chunk onto the free list in increasing-index order so
    // slot assignment stays deterministic.
    for (std::uint32_t i = kChunkSlots; i-- > 0;) {
      chunks_.back()[i].next_free = free_head_;
      free_head_ = base + i;
    }
  }
  const std::uint32_t index = free_head_;
  Slot& s = slot_at(index);
  free_head_ = s.next_free;
  s.next_free = kNoSlot;
  return index;
}

void EventQueue::recycle_slot(std::uint32_t index) noexcept {
  Slot& s = slot_at(index);
  s.invoke = nullptr;
  s.destroy = nullptr;
  s.seq = 0;
  if (++s.gen == 0) s.gen = 1;  // generation 0 would make EventId::value 0 (invalid)
  s.state = SlotState::kFree;
  s.next_free = free_head_;
  free_head_ = index;
}

void EventQueue::release_popped(std::uint32_t index) noexcept {
  Slot& s = slot_at(index);
  assert(s.state == SlotState::kPopped);
  s.destroy(s);
  recycle_slot(index);
}

bool EventQueue::is_live(std::uint64_t key) const noexcept {
  if (legacy_) return live_map_.contains(key);
  const auto index = static_cast<std::uint32_t>(key >> 32);
  if (index >= pool_slots()) return false;
  const Slot& s = slot_at(index);
  return s.state == SlotState::kLive && s.gen == static_cast<std::uint32_t>(key);
}

/// Recycles the parked slot backing a dead pooled heap entry (no-op for
/// legacy keys, whose map node is long gone).
void EventQueue::drop_dead_key(std::uint64_t key) noexcept {
  if (legacy_) return;
  const auto index = static_cast<std::uint32_t>(key >> 32);
  [[maybe_unused]] const Slot& s = slot_at(index);
  assert(s.state == SlotState::kCancelled &&
         s.gen == static_cast<std::uint32_t>(key));
  recycle_slot(index);
}

void EventQueue::skim() {
  while (!heap_times_.empty() && !is_live(heap_keys_.front())) {
    drop_dead_key(heap_keys_.front());
    heap_pop_front();
    --dead_in_heap_;
  }
}

void EventQueue::maybe_compact() noexcept {
  if (heap_times_.size() < kCompactFloor) return;
  if (dead_in_heap_ <= heap_times_.size() - dead_in_heap_) return;
  std::size_t keep = 0;
  const std::size_t n = heap_times_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t key = heap_keys_[i];
    if (is_live(key)) {
      heap_times_[keep] = heap_times_[i];
      heap_keys_[keep] = key;
      ++keep;
    } else {
      drop_dead_key(key);
    }
  }
  heap_times_.resize(keep);
  heap_keys_.resize(keep);
  heap_rebuild();
  dead_in_heap_ = 0;
}

void EventQueue::heap_push(const HeapEntry& e) {
  std::size_t i = heap_times_.size();
  // Placeholders; overwritten by the hole shuffle below.
  heap_times_.push_back(e.time);
  heap_keys_.push_back(e.key);
  while (i > 0) {
    const std::size_t parent = (i - 1) / kHeapArity;
    if (!pops_later(heap_times_[parent], heap_keys_[parent], e.time, e.key)) break;
    heap_times_[i] = heap_times_[parent];
    heap_keys_[i] = heap_keys_[parent];
    i = parent;
  }
  heap_times_[i] = e.time;
  heap_keys_[i] = e.key;
}

std::size_t EventQueue::heap_sift_down(std::size_t i, HeapEntry e) noexcept {
  const std::size_t n = heap_times_.size();
  for (;;) {
    const std::size_t first = kHeapArity * i + 1;
    if (first >= n) break;
    // Min-of-children scan on the dense timestamp array; keys are only
    // consulted on an exact timestamp tie.
    std::size_t best = first;
    SimTime best_t = heap_times_[first];
    const std::size_t last = std::min(first + kHeapArity, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      const SimTime ct = heap_times_[c];
      if (ct != best_t ? ct < best_t
                       : seq_of(heap_keys_[best]) > seq_of(heap_keys_[c])) {
        best = c;
        best_t = ct;
      }
    }
    if (!pops_later(e.time, e.key, best_t, heap_keys_[best])) break;
    heap_times_[i] = best_t;
    heap_keys_[i] = heap_keys_[best];
    i = best;
  }
  heap_times_[i] = e.time;
  heap_keys_[i] = e.key;
  return i;
}

void EventQueue::heap_pop_front() noexcept {
  const HeapEntry last{heap_times_.back(), heap_keys_.back()};
  heap_times_.pop_back();
  heap_keys_.pop_back();
  if (!heap_times_.empty()) (void)heap_sift_down(0, last);
}

void EventQueue::heap_rebuild() noexcept {
  if (heap_times_.size() < 2) return;
  for (std::size_t i = (heap_times_.size() - 2) / kHeapArity + 1; i-- > 0;) {
    (void)heap_sift_down(i, HeapEntry{heap_times_[i], heap_keys_[i]});
  }
}

}  // namespace sensrep::sim
