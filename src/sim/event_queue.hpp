#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace sensrep::sim {

/// Opaque handle identifying a scheduled event; usable to cancel it.
struct EventId {
  std::uint64_t value = 0;

  [[nodiscard]] bool valid() const noexcept { return value != 0; }
  friend bool operator==(EventId, EventId) = default;
};

/// Priority queue of timestamped callbacks with O(log n) schedule/pop and
/// O(1) cancellation.
///
/// Ordering invariant: events pop in nondecreasing time order; events with
/// equal timestamps pop in schedule order (monotone sequence number). This
/// makes simulation runs bit-reproducible for a fixed seed.
///
/// Cancellation is lazy: cancel() erases the callback from the live map and
/// the heap entry is skipped when it surfaces, so cancel() never needs to
/// re-heapify.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` at absolute time `t`. Requires is_valid_time(t).
  EventId schedule(SimTime t, Callback cb);

  /// Cancels a pending event. Returns false if the event already fired,
  /// was already cancelled, or the id was never issued.
  bool cancel(EventId id) noexcept;

  /// True if there is at least one live (non-cancelled) event pending.
  [[nodiscard]] bool empty() const noexcept { return live_.empty(); }

  /// Number of live pending events.
  [[nodiscard]] std::size_t size() const noexcept { return live_.size(); }

  /// Timestamp of the earliest live event. Requires !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Pops the earliest live event and returns its (time, callback).
  /// Requires !empty().
  struct Popped {
    SimTime time;
    EventId id;
    Callback callback;
  };
  Popped pop();

 private:
  struct HeapEntry {
    SimTime time;
    std::uint64_t seq;
    EventId id;
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Discards cancelled entries from the top of the heap.
  void skim();

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, Later> heap_;
  std::unordered_map<std::uint64_t, Callback> live_;
  std::uint64_t next_seq_ = 1;
};

}  // namespace sensrep::sim
