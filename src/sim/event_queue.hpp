#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <stdexcept>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics_registry.hpp"
#include "obs/profiler.hpp"
#include "sim/time.hpp"

namespace sensrep::sim {

/// Opaque handle identifying a scheduled event; usable to cancel it.
struct EventId {
  std::uint64_t value = 0;

  [[nodiscard]] bool valid() const noexcept { return value != 0; }
  friend bool operator==(EventId, EventId) = default;
};

/// Priority queue of timestamped callbacks with O(log n) schedule/pop and
/// O(1) cancellation.
///
/// Ordering invariant: events pop in nondecreasing time order; events with
/// equal timestamps pop in schedule order (monotone sequence number). This
/// makes simulation runs bit-reproducible for a fixed seed.
///
/// Storage (the default, pooled mode) is allocation-free on the hot path:
/// callbacks live in slab-allocated slots recycled through a free list, and
/// a callable whose size fits kInlineBytes — which covers every capture the
/// simulation schedules, including the medium's in-flight Packet deliveries —
/// is constructed in place, never on the heap. EventIds carry (slot index,
/// generation); a recycled slot bumps its generation so stale ids can never
/// cancel or observe a later tenant.
///
/// Cancellation is lazy: cancel() destroys the callback immediately
/// (dropping captured resources right away, exactly like the old map erase)
/// and parks the slot until the heap entry is discarded — the slot keeps the
/// sequence number a parked entry still tie-breaks with. To keep
/// lazily-cancelled entries from outnumbering live ones unboundedly under
/// cancel/reschedule churn (lease auto-tune, every() timers), the heap is
/// compacted in place whenever dead entries exceed live ones.
///
/// The legacy mode (set_legacy) retains the previous implementation —
/// boxed std::function callbacks in an unordered_map — as a differential
/// oracle: tests drive identical operation sequences through both modes and
/// require identical pop order and timestamps.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Inline storage per slot; sized so the largest hot-path capture (a
  /// Medium delivery closure holding a 160-byte Packet by value plus the
  /// collision token) still fits. Bigger callables fall back to one boxed
  /// heap allocation.
  static constexpr std::size_t kInlineBytes = 208;

  EventQueue() = default;
  ~EventQueue();

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Switches to the legacy (map + std::function) storage strategy. Only
  /// callable before the first schedule(); throws std::logic_error after.
  void set_legacy(bool legacy);
  [[nodiscard]] bool legacy() const noexcept { return legacy_; }

  /// Schedules `cb` at absolute time `t`. Requires is_valid_time(t) and, for
  /// callables testable for null (std::function, function pointers), a
  /// non-null callable.
  template <typename F>
  EventId schedule(SimTime t, F&& cb) {
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_v<Fn&>, "EventQueue callback must be invocable");
    if (!is_valid_time(t)) throw std::invalid_argument("EventQueue::schedule: invalid time");
    if constexpr (std::is_constructible_v<bool, const Fn&>) {
      if (!static_cast<bool>(cb)) {
        throw std::invalid_argument("EventQueue::schedule: null callback");
      }
    }
    const obs::ScopedTimer probe(obs::Probe::kEventPush);
    obs::Metrics::inc(obs::Counter::kEventsScheduled);
    const std::uint64_t seq = next_seq_++;
    EventId id;
    if (legacy_) {
      id.value = seq;
      live_map_.emplace(seq, Callback(std::forward<F>(cb)));
    } else {
      id.value = store(std::forward<F>(cb), seq);
    }
    heap_push(HeapEntry{t, id.value});
    return id;
  }

  /// Cancels a pending event. Returns false if the event already fired,
  /// was already cancelled, or the id was never issued. The callback (and
  /// everything it captured) is destroyed immediately; the heap entry is
  /// discarded lazily, bounded by compaction.
  bool cancel(EventId id) noexcept;

  /// True if there is at least one live (non-cancelled) event pending.
  [[nodiscard]] bool empty() const noexcept {
    return legacy_ ? live_map_.empty() : live_count_ == 0;
  }

  /// Number of live pending events.
  [[nodiscard]] std::size_t size() const noexcept {
    return legacy_ ? live_map_.size() : live_count_;
  }

  /// Timestamp of the earliest live event. Requires !empty(). Always skims
  /// cancelled entries off the top first, so the value agrees with what the
  /// next pop() will return even right after a cancel of the previous top.
  [[nodiscard]] SimTime next_time() const;

  /// Handle to the earliest live event, extracted from the queue. Invoke the
  /// callback with callback(); the pooled slot (and the captures inside it)
  /// is released when the Popped handle is destroyed, which must happen
  /// before the queue itself is destroyed.
  class Popped {
   public:
    Popped(Popped&& other) noexcept
        : time(other.time), id(other.id), queue_(other.queue_), slot_(other.slot_),
          boxed_(std::move(other.boxed_)) {
      other.queue_ = nullptr;
      other.slot_ = kNoSlot;
    }
    Popped& operator=(Popped&&) = delete;
    Popped(const Popped&) = delete;
    Popped& operator=(const Popped&) = delete;
    ~Popped();

    SimTime time = 0.0;
    EventId id{};

    /// Invokes the popped event's callback.
    void callback();

   private:
    friend class EventQueue;
    Popped(SimTime t, EventId i, EventQueue* q, std::uint32_t slot, Callback boxed)
        : time(t), id(i), queue_(q), slot_(slot), boxed_(std::move(boxed)) {}

    EventQueue* queue_ = nullptr;
    std::uint32_t slot_;
    Callback boxed_;  // legacy mode only
  };

  /// Pops the earliest live event. Requires !empty().
  Popped pop();

  // --- diagnostics (tests, regression guards) -------------------------------

  /// Heap entries currently held, live and lazily-cancelled alike. The
  /// compaction invariant keeps this <= 2 * size() + 1 between operations
  /// (beyond the small compaction floor).
  [[nodiscard]] std::size_t heap_size() const noexcept { return heap_times_.size(); }

  /// Lazily-cancelled entries still parked in the heap.
  [[nodiscard]] std::size_t dead_entries() const noexcept { return dead_in_heap_; }

  /// Slots ever materialized by the pool (0 in legacy mode). Bounded by the
  /// peak number of simultaneously pending-or-parked entries (itself bounded
  /// by compaction), not by throughput.
  [[nodiscard]] std::size_t pool_slots() const noexcept {
    return chunks_.size() * kChunkSlots;
  }

 private:
  /// An in-flight (time, key) pair being pushed or sifted. The resident heap
  /// itself is stored structure-of-arrays (heap_times_ / heap_keys_): the
  /// heap is the hot loop's biggest array (hundreds of thousands of entries)
  /// and sift comparisons only need timestamps, so keeping the times densely
  /// packed — 4 children in 32 bytes — halves the comparison traffic. Keys
  /// are touched only when an entry moves or on a timestamp tie, which
  /// jittered delivery times make rare.
  struct HeapEntry {
    SimTime time;
    std::uint64_t key;  // EventId::value (slot|gen pooled, seq legacy)
  };

  /// Schedule sequence number behind a heap key: lives in the slot (pooled)
  /// or IS the key (legacy).
  [[nodiscard]] std::uint64_t seq_of(std::uint64_t key) const noexcept {
    return legacy_ ? key : slot_at(static_cast<std::uint32_t>(key >> 32)).seq;
  }

  /// True if (ta, ka) pops after (tb, kb) (min-heap order on (time, seq)).
  /// The seq fetch is short-circuited away except on a timestamp tie.
  [[nodiscard]] bool pops_later(SimTime ta, std::uint64_t ka, SimTime tb,
                                std::uint64_t kb) const noexcept {
    if (ta != tb) return ta > tb;
    return seq_of(ka) > seq_of(kb);
  }

  /// Heap arity. (time, seq) is a strict total order, so the pop sequence is
  /// the same for any correct heap; 4-ary halves the tree depth and keeps a
  /// node's children in adjacent cache lines, which measurably cuts both
  /// sift directions at simulation-sized queues (hundreds of thousands of
  /// pending events).
  static constexpr std::size_t kHeapArity = 4;

  /// Appends `e` and sifts it up (4-ary).
  void heap_push(const HeapEntry& e);
  /// Removes heap_.front() and restores the heap property (4-ary).
  void heap_pop_front() noexcept;
  /// Sifts `e` down from index `i`; returns its final resting index.
  [[nodiscard]] std::size_t heap_sift_down(std::size_t i, HeapEntry e) noexcept;
  /// Floyd heapify of the whole vector (compaction).
  void heap_rebuild() noexcept;

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  static constexpr std::uint32_t kChunkSlots = 256;
  /// Compaction kicks in only past this many heap entries, so tiny queues
  /// never churn their heap.
  static constexpr std::size_t kCompactFloor = 64;

  /// kCancelled: callback destroyed, but the slot is parked (not on the
  /// free list) until skim/compaction drops the heap entry, keeping `seq`
  /// stable for tie-break comparisons against the parked entry.
  enum class SlotState : std::uint8_t { kFree, kLive, kPopped, kCancelled };

  struct Slot {
    alignas(std::max_align_t) unsigned char buf[kInlineBytes];
    void (*invoke)(Slot&) = nullptr;
    void (*destroy)(Slot&) = nullptr;
    std::uint64_t seq = 0;
    std::uint32_t gen = 1;
    std::uint32_t next_free = kNoSlot;
    SlotState state = SlotState::kFree;
  };

  template <typename Fn>
  struct InlineOps {
    static Fn& ref(Slot& s) noexcept {
      return *std::launder(reinterpret_cast<Fn*>(s.buf));
    }
    static void invoke(Slot& s) { ref(s)(); }
    static void destroy(Slot& s) { ref(s).~Fn(); }
  };

  template <typename Fn>
  struct BoxedOps {
    static Fn* ptr(Slot& s) noexcept {
      return *std::launder(reinterpret_cast<Fn**>(s.buf));
    }
    static void invoke(Slot& s) { (*ptr(s))(); }
    static void destroy(Slot& s) { delete ptr(s); }
  };

  [[nodiscard]] Slot& slot_at(std::uint32_t index) noexcept {
    return chunks_[index / kChunkSlots][index % kChunkSlots];
  }
  [[nodiscard]] const Slot& slot_at(std::uint32_t index) const noexcept {
    return chunks_[index / kChunkSlots][index % kChunkSlots];
  }

  /// Type-erases `cb` into a pooled slot; returns the EventId value
  /// ((slot index << 32) | generation, never 0 since generations start at 1).
  template <typename F>
  std::uint64_t store(F&& cb, std::uint64_t seq) {
    using Fn = std::decay_t<F>;
    const std::uint32_t index = acquire_slot();
    Slot& s = slot_at(index);
    constexpr bool fits_inline =
        sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t);
    try {
      if constexpr (fits_inline) {
        ::new (static_cast<void*>(s.buf)) Fn(std::forward<F>(cb));
        s.invoke = &InlineOps<Fn>::invoke;
        s.destroy = &InlineOps<Fn>::destroy;
      } else {
        Fn* boxed = new Fn(std::forward<F>(cb));
        ::new (static_cast<void*>(s.buf)) Fn*(boxed);
        s.invoke = &BoxedOps<Fn>::invoke;
        s.destroy = &BoxedOps<Fn>::destroy;
      }
    } catch (...) {
      recycle_slot(index);  // nothing constructed; just rejoin the free list
      throw;
    }
    s.seq = seq;
    s.state = SlotState::kLive;
    ++live_count_;
    return (static_cast<std::uint64_t>(index) << 32) | s.gen;
  }

  [[nodiscard]] std::uint32_t acquire_slot();
  /// Returns a slot (already destroyed / never constructed) to the free
  /// list, bumping its generation so outstanding ids go stale.
  void recycle_slot(std::uint32_t index) noexcept;
  /// Popped-handle release: destroys the callable, then recycles.
  void release_popped(std::uint32_t index) noexcept;

  [[nodiscard]] bool is_live(std::uint64_t key) const noexcept;

  /// Recycles the parked slot behind a dead pooled heap entry being
  /// discarded (no-op in legacy mode).
  void drop_dead_key(std::uint64_t key) noexcept;

  /// Discards cancelled entries from the top of the heap.
  void skim();

  /// Rebuilds the heap without its dead entries once they outnumber the
  /// live ones (the cancel/reschedule-churn bound).
  void maybe_compact() noexcept;

  bool legacy_ = false;
  // 4-ary min-heap under pops_later, structure-of-arrays: entry i is
  // (heap_times_[i], heap_keys_[i]); the two vectors move in lockstep.
  std::vector<SimTime> heap_times_;
  std::vector<std::uint64_t> heap_keys_;
  std::uint64_t next_seq_ = 1;
  std::size_t dead_in_heap_ = 0;

  // Pooled mode.
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t free_head_ = kNoSlot;
  std::size_t live_count_ = 0;

  // Legacy mode.
  std::unordered_map<std::uint64_t, Callback> live_map_;
};

}  // namespace sensrep::sim
