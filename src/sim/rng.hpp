#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace sensrep::sim {

/// Deterministic pseudo-random generator (xoshiro256**).
///
/// Satisfies std::uniform_random_bit_generator so it can drive standard
/// distributions, but the convenience members below are preferred because
/// they are bit-reproducible across standard libraries (libstdc++ and libc++
/// disagree on std::*_distribution streams, which would break golden tests).
///
/// Streams: every stochastic component of the simulator owns its own Rng,
/// derived from the run's master seed and a component name via fork().
/// This keeps components statistically independent and means adding draws in
/// one component never perturbs another — a property the reproduction's
/// regression tests rely on.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator from a 64-bit seed via SplitMix64 expansion.
  explicit Rng(std::uint64_t seed) noexcept;

  /// Derives an independent child stream from this generator's seed and a
  /// component name. Forking is a pure function of (seed, name): it does not
  /// advance this generator's state.
  [[nodiscard]] Rng fork(std::string_view component) const noexcept;

  /// Raw 64 bits of randomness.
  result_type operator()() noexcept { return next(); }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0. Unbiased (rejection).
  [[nodiscard]] std::uint64_t below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept;

  /// Exponentially distributed value with the given mean. Requires mean > 0.
  [[nodiscard]] double exponential(double mean) noexcept;

  /// Normally distributed value (Box–Muller). Requires stddev >= 0.
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  /// Bernoulli trial with success probability p in [0, 1].
  [[nodiscard]] bool chance(double p) noexcept;

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[below(i)]);
    }
  }

  /// The seed this stream was created from (stable across fork()).
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  std::uint64_t next() noexcept;

  std::uint64_t seed_;
  std::array<std::uint64_t, 4> state_;
};

}  // namespace sensrep::sim
