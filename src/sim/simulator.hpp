#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <type_traits>
#include <unordered_map>
#include <utility>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace sensrep::sim {

/// Discrete-event simulation engine.
///
/// Owns the virtual clock and the event queue. All model components schedule
/// work through this class; none keeps its own notion of time. The engine is
/// single-threaded by design — wireless protocol simulations are dominated by
/// tiny events, and determinism is worth more here than parallelism.
///
/// at/in/every accept any callable and forward it to the queue unboxed, so
/// captures that fit EventQueue::kInlineBytes are stored in pooled slots
/// without touching the heap.
class Simulator {
 public:
  using Callback = EventQueue::Callback;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time (seconds).
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Pre-run switch to the legacy event-queue storage strategy (differential
  /// testing, and the --legacy-hot-path escape hatch). Throws std::logic_error
  /// once anything has been scheduled.
  void use_legacy_queue(bool legacy) { queue_.set_legacy(legacy); }
  [[nodiscard]] bool legacy_queue() const noexcept { return queue_.legacy(); }

  /// Schedules `cb` at absolute time `t`. Requires t >= now().
  template <typename F>
  EventId at(SimTime t, F&& cb) {
    if (t < now_) throw std::invalid_argument("Simulator::at: time in the past");
    return queue_.schedule(t, std::forward<F>(cb));
  }

  /// Schedules `cb` after a delay. Requires delay >= 0.
  template <typename F>
  EventId in(Duration delay, F&& cb) {
    if (delay < 0.0) throw std::invalid_argument("Simulator::in: negative delay");
    return queue_.schedule(now_ + delay, std::forward<F>(cb));
  }

  /// Schedules `cb` every `period` seconds starting at now()+period, until
  /// the returned id is cancelled. Requires period > 0. The id returned
  /// identifies the whole series: cancelling it stops all future occurrences,
  /// including when called from inside the callback itself.
  template <typename F>
  EventId every(Duration period, F cb) {
    if (period <= 0.0) throw std::invalid_argument("Simulator::every: period must be positive");
    // The series owns itself through the Rearm capture, living as long as an
    // occurrence is pending; cancellation drops the last reference.
    struct Series {
      Simulator* sim;
      Duration period;
      std::shared_ptr<PeriodicState> state;
      std::decay_t<F> body;
    };
    auto series = std::make_shared<Series>(
        Series{this, period, std::make_shared<PeriodicState>(), std::move(cb)});
    series->state->current = queue_.schedule(now_ + period, Rearm<Series>{series});
    const EventId head = series->state->current;
    periodic_.emplace(head.value, series->state);
    return head;
  }

  /// Cancels a pending one-shot event or a periodic series.
  bool cancel(EventId id) noexcept;

  /// Runs events until the queue drains or the clock passes `horizon`.
  /// Events scheduled exactly at `horizon` still run, and the clock lands on
  /// `horizon` afterwards. Returns the number of events executed.
  std::uint64_t run_until(SimTime horizon);

  /// Runs every pending event to queue exhaustion. Returns events executed.
  std::uint64_t run_all();

  /// Executes at most one pending event. Returns false if the queue is empty.
  bool step();

  /// Requests that run_until()/run_all() return after the current event.
  void stop() noexcept { stop_requested_ = true; }

  /// Installs a cooperative interrupt probe for long advances: run_until()
  /// and run_all() evaluate `check` once every `stride` executed events and
  /// return early when it yields true, leaving the clock at the last executed
  /// event instead of jumping to the horizon. The probe must be cheap (an
  /// atomic load — the service layer passes its shutdown flag). Pass an empty
  /// function to uninstall. Unlike stop(), the probe persists across run_*
  /// calls, so an interrupted advance can be drained or resumed.
  void set_interrupt(std::function<bool()> check, std::uint64_t stride = 256) {
    interrupt_ = std::move(check);
    interrupt_stride_ = stride == 0 ? 1 : stride;
  }

  /// True when the most recent run_until()/run_all() returned early because
  /// the interrupt probe fired (reset at the start of each run_* call).
  [[nodiscard]] bool interrupted() const noexcept { return interrupted_; }

  /// Live pending events (diagnostics).
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

  /// Total events executed since construction (diagnostics).
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

  /// Timestamp of the earliest pending event. Requires pending() > 0. The
  /// sharded driver (src/shard) uses this to bound its parallel tick windows
  /// so no global event ever executes mid-window.
  [[nodiscard]] SimTime next_event_time() const { return queue_.next_time(); }

  /// Credits events executed outside the queue on the engine's behalf. The
  /// sharded driver runs per-sensor beacon ticks on tile workers and merges
  /// the counts back at its barriers, keeping executed() — and therefore
  /// StateDigest::events_executed — bitwise identical to the single-shard
  /// schedule that would have run the same ticks in-queue.
  void note_external_executed(std::uint64_t n) noexcept { executed_ += n; }

 private:
  struct PeriodicState {
    EventId current;        // id of the currently-armed occurrence
    bool cancelled = false; // set by cancel(); stops re-arming
  };

  /// One armed occurrence of an every() series: runs the body, then schedules
  /// the next occurrence. A single shared_ptr capture, so it always stores
  /// inline in the pooled queue.
  template <typename Series>
  struct Rearm {
    std::shared_ptr<Series> series;
    void operator()() const {
      series->body();
      if (series->state->cancelled) return;  // cancel() ran inside the callback
      series->state->current = series->sim->queue_.schedule(
          series->sim->now_ + series->period, Rearm{series});
    }
  };

  EventQueue queue_;
  // series-head id -> state, so cancel(head) works across re-arms
  std::unordered_map<std::uint64_t, std::shared_ptr<PeriodicState>> periodic_;
  SimTime now_ = 0.0;
  std::uint64_t executed_ = 0;
  bool stop_requested_ = false;
  std::function<bool()> interrupt_;
  std::uint64_t interrupt_stride_ = 256;
  bool interrupted_ = false;
};

}  // namespace sensrep::sim
