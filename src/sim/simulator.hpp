#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace sensrep::sim {

/// Discrete-event simulation engine.
///
/// Owns the virtual clock and the event queue. All model components schedule
/// work through this class; none keeps its own notion of time. The engine is
/// single-threaded by design — wireless protocol simulations are dominated by
/// tiny events, and determinism is worth more here than parallelism.
class Simulator {
 public:
  using Callback = EventQueue::Callback;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time (seconds).
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `cb` at absolute time `t`. Requires t >= now().
  EventId at(SimTime t, Callback cb);

  /// Schedules `cb` after a delay. Requires delay >= 0.
  EventId in(Duration delay, Callback cb);

  /// Schedules `cb` every `period` seconds starting at now()+period, until
  /// the returned id is cancelled. Requires period > 0. The id returned
  /// identifies the whole series: cancelling it stops all future occurrences,
  /// including when called from inside the callback itself.
  EventId every(Duration period, std::function<void()> cb);

  /// Cancels a pending one-shot event or a periodic series.
  bool cancel(EventId id) noexcept;

  /// Runs events until the queue drains or the clock passes `horizon`.
  /// Events scheduled exactly at `horizon` still run, and the clock lands on
  /// `horizon` afterwards. Returns the number of events executed.
  std::uint64_t run_until(SimTime horizon);

  /// Runs every pending event to queue exhaustion. Returns events executed.
  std::uint64_t run_all();

  /// Executes at most one pending event. Returns false if the queue is empty.
  bool step();

  /// Requests that run_until()/run_all() return after the current event.
  void stop() noexcept { stop_requested_ = true; }

  /// Installs a cooperative interrupt probe for long advances: run_until()
  /// and run_all() evaluate `check` once every `stride` executed events and
  /// return early when it yields true, leaving the clock at the last executed
  /// event instead of jumping to the horizon. The probe must be cheap (an
  /// atomic load — the service layer passes its shutdown flag). Pass an empty
  /// function to uninstall. Unlike stop(), the probe persists across run_*
  /// calls, so an interrupted advance can be drained or resumed.
  void set_interrupt(std::function<bool()> check, std::uint64_t stride = 256) {
    interrupt_ = std::move(check);
    interrupt_stride_ = stride == 0 ? 1 : stride;
  }

  /// True when the most recent run_until()/run_all() returned early because
  /// the interrupt probe fired (reset at the start of each run_* call).
  [[nodiscard]] bool interrupted() const noexcept { return interrupted_; }

  /// Live pending events (diagnostics).
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

  /// Total events executed since construction (diagnostics).
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct PeriodicState {
    EventId current;        // id of the currently-armed occurrence
    bool cancelled = false; // set by cancel(); stops re-arming
  };

  EventQueue queue_;
  // series-head id -> state, so cancel(head) works across re-arms
  std::unordered_map<std::uint64_t, std::shared_ptr<PeriodicState>> periodic_;
  SimTime now_ = 0.0;
  std::uint64_t executed_ = 0;
  bool stop_requested_ = false;
  std::function<bool()> interrupt_;
  std::uint64_t interrupt_stride_ = 256;
  bool interrupted_ = false;
};

}  // namespace sensrep::sim
