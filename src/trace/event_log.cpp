#include "trace/event_log.hpp"

#include <fstream>
#include <ostream>

#include "trace/format.hpp"

namespace sensrep::trace {

std::string_view to_string(EventKind k) noexcept {
  switch (k) {
    case EventKind::kFailure: return "failure";
    case EventKind::kDetection: return "detection";
    case EventKind::kReport: return "report";
    case EventKind::kDispatch: return "dispatch";
    case EventKind::kReplacement: return "replacement";
    case EventKind::kRobotMove: return "robot_move";
    case EventKind::kRobotFailure: return "robot_failure";
    case EventKind::kRobotRepair: return "robot_repair";
    case EventKind::kFailover: return "failover";
    case EventKind::kRedispatch: return "redispatch";
  }
  return "?";
}

std::vector<Event> EventLog::of_kind(EventKind k) const {
  std::vector<Event> out;
  for (const Event& e : events_) {
    if (e.kind == k) out.push_back(e);
  }
  return out;
}

std::vector<Event> EventLog::about_node(std::uint32_t node) const {
  std::vector<Event> out;
  for (const Event& e : events_) {
    if (e.node == node) out.push_back(e);
  }
  return out;
}

std::string EventLog::to_json(const Event& e) {
  std::string json = strfmt(R"({"t":%.3f,"kind":"%s","node":%u)", e.time,
                            std::string(to_string(e.kind)).c_str(), e.node);
  if (e.actor) json += strfmt(R"(,"actor":%u)", *e.actor);
  if (e.location) json += strfmt(R"(,"x":%.2f,"y":%.2f)", e.location->x, e.location->y);
  if (e.value) json += strfmt(R"(,"value":%.3f)", *e.value);
  json += "}";
  return json;
}

void EventLog::write_jsonl(std::ostream& out) const {
  for (const Event& e : events_) out << to_json(e) << '\n';
}

bool EventLog::save_jsonl(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  write_jsonl(f);
  return static_cast<bool>(f);
}

}  // namespace sensrep::trace
