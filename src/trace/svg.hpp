#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "geometry/polygon.hpp"
#include "geometry/rect.hpp"
#include "geometry/vec2.hpp"

namespace sensrep::trace {

/// Tiny SVG scene builder for field visualizations (examples/voronoi_svg).
///
/// Coordinates are in field meters; render() flips the y axis so north is up
/// and scales to the requested pixel width.
class SvgWriter {
 public:
  /// `bounds` is the field extent; `pixel_width` the output image width.
  SvgWriter(const geometry::Rect& bounds, double pixel_width = 800.0);

  void add_circle(geometry::Vec2 center, double radius_m, std::string_view fill,
                  std::string_view stroke = "none", double opacity = 1.0);

  void add_line(geometry::Vec2 a, geometry::Vec2 b, std::string_view stroke,
                double width_m = 1.0, bool dashed = false);

  void add_polyline(const std::vector<geometry::Vec2>& points, std::string_view stroke,
                    double width_m = 1.0);

  void add_polygon(const geometry::ConvexPolygon& poly, std::string_view fill,
                   std::string_view stroke, double opacity = 0.25);

  void add_text(geometry::Vec2 pos, std::string_view text, double size_m = 8.0,
                std::string_view fill = "#333");

  /// Renders the complete SVG document.
  [[nodiscard]] std::string render() const;

  /// Renders and writes to a file. Returns false on I/O failure.
  bool save(const std::string& path) const;

 private:
  [[nodiscard]] geometry::Vec2 to_px(geometry::Vec2 p) const noexcept;
  [[nodiscard]] double scale() const noexcept;

  geometry::Rect bounds_;
  double pixel_width_;
  std::vector<std::string> elements_;
};

}  // namespace sensrep::trace
