#include "trace/svg.hpp"

#include <fstream>
#include <sstream>

#include "trace/format.hpp"

namespace sensrep::trace {

using geometry::ConvexPolygon;
using geometry::Rect;
using geometry::Vec2;

SvgWriter::SvgWriter(const Rect& bounds, double pixel_width)
    : bounds_(bounds), pixel_width_(pixel_width) {}

double SvgWriter::scale() const noexcept { return pixel_width_ / bounds_.width(); }

Vec2 SvgWriter::to_px(Vec2 p) const noexcept {
  // Flip y so that larger field-y draws toward the top of the image.
  return {(p.x - bounds_.min.x) * scale(), (bounds_.max.y - p.y) * scale()};
}

void SvgWriter::add_circle(Vec2 center, double radius_m, std::string_view fill,
                           std::string_view stroke, double opacity) {
  const Vec2 c = to_px(center);
  elements_.push_back(strfmt(
      R"(<circle cx="%.2f" cy="%.2f" r="%.2f" fill="%s" stroke="%s" opacity="%.3f"/>)",
      c.x, c.y, radius_m * scale(), std::string(fill).c_str(), std::string(stroke).c_str(),
      opacity));
}

void SvgWriter::add_line(Vec2 a, Vec2 b, std::string_view stroke, double width_m,
                         bool dashed) {
  const Vec2 pa = to_px(a);
  const Vec2 pb = to_px(b);
  elements_.push_back(strfmt(
      R"(<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="%s" stroke-width="%.2f"%s/>)",
      pa.x, pa.y, pb.x, pb.y, std::string(stroke).c_str(), width_m * scale(),
      dashed ? R"( stroke-dasharray="6 4")" : ""));
}

void SvgWriter::add_polyline(const std::vector<Vec2>& points, std::string_view stroke,
                             double width_m) {
  if (points.size() < 2) return;
  std::string pts;
  for (const Vec2 p : points) {
    const Vec2 px = to_px(p);
    pts += strfmt("%.2f,%.2f ", px.x, px.y);
  }
  elements_.push_back(
      strfmt(R"(<polyline points="%s" fill="none" stroke="%s" stroke-width="%.2f"/>)",
             pts.c_str(), std::string(stroke).c_str(), width_m * scale()));
}

void SvgWriter::add_polygon(const ConvexPolygon& poly, std::string_view fill,
                            std::string_view stroke, double opacity) {
  if (poly.empty()) return;
  std::string pts;
  for (const Vec2 p : poly.vertices()) {
    const Vec2 px = to_px(p);
    pts += strfmt("%.2f,%.2f ", px.x, px.y);
  }
  elements_.push_back(
      strfmt(R"(<polygon points="%s" fill="%s" stroke="%s" fill-opacity="%.3f"/>)",
             pts.c_str(), std::string(fill).c_str(), std::string(stroke).c_str(), opacity));
}

void SvgWriter::add_text(Vec2 pos, std::string_view text, double size_m,
                         std::string_view fill) {
  const Vec2 p = to_px(pos);
  elements_.push_back(strfmt(
      R"(<text x="%.2f" y="%.2f" font-size="%.1f" fill="%s" font-family="sans-serif">%s</text>)",
      p.x, p.y, size_m * scale(), std::string(fill).c_str(), std::string(text).c_str()));
}

std::string SvgWriter::render() const {
  const double height = bounds_.height() * scale();
  std::ostringstream out;
  out << strfmt(
      R"(<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">)",
      pixel_width_, height, pixel_width_, height);
  out << "\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  for (const auto& e : elements_) out << e << '\n';
  out << "</svg>\n";
  return out.str();
}

bool SvgWriter::save(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << render();
  return static_cast<bool>(f);
}

}  // namespace sensrep::trace
