#include "trace/log.hpp"

#include <iostream>

namespace sensrep::trace {

std::string_view to_string(Level level) noexcept {
  switch (level) {
    case Level::kTrace: return "TRACE";
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO";
    case Level::kWarn: return "WARN";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF";
  }
  return "?";
}

void Logger::log(Level level, sim::SimTime now, std::string_view component,
                 std::string_view message) {
  if (!enabled(level)) return;
  const std::lock_guard lock(write_mu_);
  (*out_) << strfmt("[%10.3fs] %-5s %.*s: %.*s\n", now,
                    std::string(to_string(level)).c_str(),
                    static_cast<int>(component.size()), component.data(),
                    static_cast<int>(message.size()), message.data());
}

Logger& Logger::global() {
  static Logger logger{std::clog, Level::kWarn};
  return logger;
}

}  // namespace sensrep::trace
