#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "geometry/vec2.hpp"
#include "sim/time.hpp"

namespace sensrep::trace {

/// Kinds of system-level events worth persisting for offline analysis.
enum class EventKind : std::uint8_t {
  kFailure,      // a sensor unit died
  kDetection,    // a guardian declared it dead
  kReport,       // the report reached a manager
  kDispatch,     // a robot was tasked
  kReplacement,  // the replacement unit powered on
  kRobotMove,    // a robot finished one movement leg
  kRobotFailure, // a robot died (fault injection ground truth)
  kRobotRepair,  // a robot was repaired and rejoined service (MTTR)
  kFailover,     // manager failover / subarea adoption / role handback
  kRedispatch,   // an orphaned in-flight task was re-sent to another robot
};

[[nodiscard]] std::string_view to_string(EventKind k) noexcept;

/// One trace record. Field use depends on the kind; unused ids are 0-value.
struct Event {
  sim::SimTime time = 0.0;
  EventKind kind = EventKind::kFailure;
  std::uint32_t node = 0;                 // sensor slot or robot id
  std::optional<std::uint32_t> actor;     // robot/guardian involved, if any
  std::optional<geometry::Vec2> location;
  std::optional<double> value;            // kind-specific scalar (hops, meters)
};

/// Append-only, queryable event log with JSON-lines export.
///
/// The simulation pushes system events here (opt-in; see
/// Simulation::attach_event_log); examples and the CLI dump the log for
/// offline plotting, and tests assert on event sequences instead of poking
/// internals.
class EventLog {
 public:
  void record(Event e) { events_.push_back(e); }

  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] const std::vector<Event>& events() const noexcept { return events_; }

  /// Events of one kind, in record order.
  [[nodiscard]] std::vector<Event> of_kind(EventKind k) const;

  /// Events concerning a node (as subject), in record order.
  [[nodiscard]] std::vector<Event> about_node(std::uint32_t node) const;

  /// Serializes one event as a single JSON object (no trailing newline).
  [[nodiscard]] static std::string to_json(const Event& e);

  /// Writes the whole log as JSON lines.
  void write_jsonl(std::ostream& out) const;

  /// Writes to a file; returns false on I/O failure.
  [[nodiscard]] bool save_jsonl(const std::string& path) const;

  void clear() { events_.clear(); }

 private:
  std::vector<Event> events_;
};

}  // namespace sensrep::trace
