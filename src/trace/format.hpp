#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>

namespace sensrep::trace {

/// printf-style formatting into a std::string.
///
/// The toolchain here (GCC 12) predates <format>, so this thin vsnprintf
/// wrapper is the project-wide formatting primitive. The attribute gives the
/// same compile-time argument checking printf gets.
[[gnu::format(printf, 1, 2)]]
inline std::string strfmt(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    // +1: vsnprintf writes the terminator; std::string guarantees data()[n]
    // is writable storage for it since C++11.
    std::vsnprintf(out.data(), static_cast<std::size_t>(n) + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

}  // namespace sensrep::trace
