#pragma once

#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>

#include "sim/time.hpp"
#include "trace/format.hpp"

namespace sensrep::trace {

enum class Level : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

[[nodiscard]] std::string_view to_string(Level level) noexcept;

/// Simulation-aware leveled logger.
///
/// Each line is prefixed with the virtual timestamp of the simulation that
/// emitted it, which makes traces directly comparable across algorithms and
/// seeds. Disabled levels cost one branch (formatting is skipped by callers
/// via enabled()).
///
/// log() is thread-safe: each simulation is single-threaded, but the runner
/// executes many simulations concurrently and they all share global().
/// Threshold changes are not synchronized — set the level before a batch.
class Logger {
 public:
  /// Logs to `out` (typically std::clog); the stream must outlive the logger.
  explicit Logger(std::ostream& out, Level threshold = Level::kWarn)
      : out_(&out), threshold_(threshold) {}

  void set_threshold(Level level) noexcept { threshold_ = level; }
  [[nodiscard]] Level threshold() const noexcept { return threshold_; }

  [[nodiscard]] bool enabled(Level level) const noexcept {
    return level >= threshold_ && threshold_ != Level::kOff;
  }

  /// Logs a pre-formatted message at virtual time `now`.
  void log(Level level, sim::SimTime now, std::string_view component,
           std::string_view message);

  /// Logs with printf semantics: logf(level, now, "net", "drop seq=%u", s).
  template <typename... Args>
  void logf(Level level, sim::SimTime now, std::string_view component, const char* fmt,
            Args&&... args) {
    if (!enabled(level)) return;
    log(level, now, component, strfmt(fmt, std::forward<Args>(args)...));
  }

  /// Process-wide default logger (stderr, kWarn). Components that are not
  /// handed a logger explicitly fall back to this one.
  [[nodiscard]] static Logger& global();

 private:
  std::ostream* out_;
  Level threshold_;
  std::mutex write_mu_;  // keeps concurrent simulations' lines whole
};

}  // namespace sensrep::trace
