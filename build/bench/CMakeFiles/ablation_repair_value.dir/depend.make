# Empty dependencies file for ablation_repair_value.
# This may be replaced when dependencies are built.
