file(REMOVE_RECURSE
  "CMakeFiles/ablation_repair_value.dir/ablation_repair_value.cpp.o"
  "CMakeFiles/ablation_repair_value.dir/ablation_repair_value.cpp.o.d"
  "ablation_repair_value"
  "ablation_repair_value.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_repair_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
