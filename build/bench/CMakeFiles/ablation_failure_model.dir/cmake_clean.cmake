file(REMOVE_RECURSE
  "CMakeFiles/ablation_failure_model.dir/ablation_failure_model.cpp.o"
  "CMakeFiles/ablation_failure_model.dir/ablation_failure_model.cpp.o.d"
  "ablation_failure_model"
  "ablation_failure_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_failure_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
