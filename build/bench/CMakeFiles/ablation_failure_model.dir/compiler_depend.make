# Empty compiler generated dependencies file for ablation_failure_model.
# This may be replaced when dependencies are built.
