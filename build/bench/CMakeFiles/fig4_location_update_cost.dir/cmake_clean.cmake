file(REMOVE_RECURSE
  "CMakeFiles/fig4_location_update_cost.dir/fig4_location_update_cost.cpp.o"
  "CMakeFiles/fig4_location_update_cost.dir/fig4_location_update_cost.cpp.o.d"
  "fig4_location_update_cost"
  "fig4_location_update_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_location_update_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
