# Empty dependencies file for fig4_location_update_cost.
# This may be replaced when dependencies are built.
