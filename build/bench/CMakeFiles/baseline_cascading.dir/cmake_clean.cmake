file(REMOVE_RECURSE
  "CMakeFiles/baseline_cascading.dir/baseline_cascading.cpp.o"
  "CMakeFiles/baseline_cascading.dir/baseline_cascading.cpp.o.d"
  "baseline_cascading"
  "baseline_cascading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_cascading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
