# Empty compiler generated dependencies file for baseline_cascading.
# This may be replaced when dependencies are built.
