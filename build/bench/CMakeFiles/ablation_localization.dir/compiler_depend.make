# Empty compiler generated dependencies file for ablation_localization.
# This may be replaced when dependencies are built.
