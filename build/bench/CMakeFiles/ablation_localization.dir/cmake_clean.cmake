file(REMOVE_RECURSE
  "CMakeFiles/ablation_localization.dir/ablation_localization.cpp.o"
  "CMakeFiles/ablation_localization.dir/ablation_localization.cpp.o.d"
  "ablation_localization"
  "ablation_localization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_localization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
