file(REMOVE_RECURSE
  "CMakeFiles/fig3_report_hops.dir/fig3_report_hops.cpp.o"
  "CMakeFiles/fig3_report_hops.dir/fig3_report_hops.cpp.o.d"
  "fig3_report_hops"
  "fig3_report_hops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_report_hops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
