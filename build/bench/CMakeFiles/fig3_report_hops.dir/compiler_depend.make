# Empty compiler generated dependencies file for fig3_report_hops.
# This may be replaced when dependencies are built.
