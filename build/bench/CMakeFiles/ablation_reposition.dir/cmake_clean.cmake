file(REMOVE_RECURSE
  "CMakeFiles/ablation_reposition.dir/ablation_reposition.cpp.o"
  "CMakeFiles/ablation_reposition.dir/ablation_reposition.cpp.o.d"
  "ablation_reposition"
  "ablation_reposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
