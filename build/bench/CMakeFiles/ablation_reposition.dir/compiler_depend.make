# Empty compiler generated dependencies file for ablation_reposition.
# This may be replaced when dependencies are built.
