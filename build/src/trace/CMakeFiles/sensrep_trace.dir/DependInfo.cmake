
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/event_log.cpp" "src/trace/CMakeFiles/sensrep_trace.dir/event_log.cpp.o" "gcc" "src/trace/CMakeFiles/sensrep_trace.dir/event_log.cpp.o.d"
  "/root/repo/src/trace/log.cpp" "src/trace/CMakeFiles/sensrep_trace.dir/log.cpp.o" "gcc" "src/trace/CMakeFiles/sensrep_trace.dir/log.cpp.o.d"
  "/root/repo/src/trace/svg.cpp" "src/trace/CMakeFiles/sensrep_trace.dir/svg.cpp.o" "gcc" "src/trace/CMakeFiles/sensrep_trace.dir/svg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sensrep_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/sensrep_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
