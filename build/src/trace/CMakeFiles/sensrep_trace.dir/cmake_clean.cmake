file(REMOVE_RECURSE
  "CMakeFiles/sensrep_trace.dir/event_log.cpp.o"
  "CMakeFiles/sensrep_trace.dir/event_log.cpp.o.d"
  "CMakeFiles/sensrep_trace.dir/log.cpp.o"
  "CMakeFiles/sensrep_trace.dir/log.cpp.o.d"
  "CMakeFiles/sensrep_trace.dir/svg.cpp.o"
  "CMakeFiles/sensrep_trace.dir/svg.cpp.o.d"
  "libsensrep_trace.a"
  "libsensrep_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensrep_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
