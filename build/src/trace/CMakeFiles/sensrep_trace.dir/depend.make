# Empty dependencies file for sensrep_trace.
# This may be replaced when dependencies are built.
