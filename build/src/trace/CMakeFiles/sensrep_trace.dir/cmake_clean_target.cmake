file(REMOVE_RECURSE
  "libsensrep_trace.a"
)
