file(REMOVE_RECURSE
  "libsensrep_robot.a"
)
