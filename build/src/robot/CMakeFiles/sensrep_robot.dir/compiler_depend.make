# Empty compiler generated dependencies file for sensrep_robot.
# This may be replaced when dependencies are built.
