file(REMOVE_RECURSE
  "CMakeFiles/sensrep_robot.dir/robot.cpp.o"
  "CMakeFiles/sensrep_robot.dir/robot.cpp.o.d"
  "CMakeFiles/sensrep_robot.dir/task_queue.cpp.o"
  "CMakeFiles/sensrep_robot.dir/task_queue.cpp.o.d"
  "libsensrep_robot.a"
  "libsensrep_robot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensrep_robot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
