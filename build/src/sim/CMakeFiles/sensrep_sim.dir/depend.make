# Empty dependencies file for sensrep_sim.
# This may be replaced when dependencies are built.
