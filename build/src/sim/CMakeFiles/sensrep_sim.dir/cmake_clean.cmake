file(REMOVE_RECURSE
  "CMakeFiles/sensrep_sim.dir/event_queue.cpp.o"
  "CMakeFiles/sensrep_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/sensrep_sim.dir/rng.cpp.o"
  "CMakeFiles/sensrep_sim.dir/rng.cpp.o.d"
  "CMakeFiles/sensrep_sim.dir/simulator.cpp.o"
  "CMakeFiles/sensrep_sim.dir/simulator.cpp.o.d"
  "libsensrep_sim.a"
  "libsensrep_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensrep_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
