file(REMOVE_RECURSE
  "libsensrep_sim.a"
)
