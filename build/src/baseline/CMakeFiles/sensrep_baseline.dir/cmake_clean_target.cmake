file(REMOVE_RECURSE
  "libsensrep_baseline.a"
)
