# Empty compiler generated dependencies file for sensrep_baseline.
# This may be replaced when dependencies are built.
