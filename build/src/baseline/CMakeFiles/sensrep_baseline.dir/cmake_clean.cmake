file(REMOVE_RECURSE
  "CMakeFiles/sensrep_baseline.dir/cascading_relocation.cpp.o"
  "CMakeFiles/sensrep_baseline.dir/cascading_relocation.cpp.o.d"
  "libsensrep_baseline.a"
  "libsensrep_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensrep_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
