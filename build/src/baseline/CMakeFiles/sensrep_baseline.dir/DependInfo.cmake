
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/cascading_relocation.cpp" "src/baseline/CMakeFiles/sensrep_baseline.dir/cascading_relocation.cpp.o" "gcc" "src/baseline/CMakeFiles/sensrep_baseline.dir/cascading_relocation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geometry/CMakeFiles/sensrep_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sensrep_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
