file(REMOVE_RECURSE
  "libsensrep_routing.a"
)
