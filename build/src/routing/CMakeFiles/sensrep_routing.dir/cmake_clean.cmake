file(REMOVE_RECURSE
  "CMakeFiles/sensrep_routing.dir/face_routing.cpp.o"
  "CMakeFiles/sensrep_routing.dir/face_routing.cpp.o.d"
  "CMakeFiles/sensrep_routing.dir/geo_router.cpp.o"
  "CMakeFiles/sensrep_routing.dir/geo_router.cpp.o.d"
  "CMakeFiles/sensrep_routing.dir/neighbor_table.cpp.o"
  "CMakeFiles/sensrep_routing.dir/neighbor_table.cpp.o.d"
  "CMakeFiles/sensrep_routing.dir/planarizer.cpp.o"
  "CMakeFiles/sensrep_routing.dir/planarizer.cpp.o.d"
  "libsensrep_routing.a"
  "libsensrep_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensrep_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
