# Empty compiler generated dependencies file for sensrep_routing.
# This may be replaced when dependencies are built.
