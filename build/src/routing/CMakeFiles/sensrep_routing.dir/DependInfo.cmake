
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/face_routing.cpp" "src/routing/CMakeFiles/sensrep_routing.dir/face_routing.cpp.o" "gcc" "src/routing/CMakeFiles/sensrep_routing.dir/face_routing.cpp.o.d"
  "/root/repo/src/routing/geo_router.cpp" "src/routing/CMakeFiles/sensrep_routing.dir/geo_router.cpp.o" "gcc" "src/routing/CMakeFiles/sensrep_routing.dir/geo_router.cpp.o.d"
  "/root/repo/src/routing/neighbor_table.cpp" "src/routing/CMakeFiles/sensrep_routing.dir/neighbor_table.cpp.o" "gcc" "src/routing/CMakeFiles/sensrep_routing.dir/neighbor_table.cpp.o.d"
  "/root/repo/src/routing/planarizer.cpp" "src/routing/CMakeFiles/sensrep_routing.dir/planarizer.cpp.o" "gcc" "src/routing/CMakeFiles/sensrep_routing.dir/planarizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/sensrep_net.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/sensrep_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/sensrep_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sensrep_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
