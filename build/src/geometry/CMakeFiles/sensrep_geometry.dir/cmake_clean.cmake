file(REMOVE_RECURSE
  "CMakeFiles/sensrep_geometry.dir/coverage.cpp.o"
  "CMakeFiles/sensrep_geometry.dir/coverage.cpp.o.d"
  "CMakeFiles/sensrep_geometry.dir/graph_analysis.cpp.o"
  "CMakeFiles/sensrep_geometry.dir/graph_analysis.cpp.o.d"
  "CMakeFiles/sensrep_geometry.dir/localization.cpp.o"
  "CMakeFiles/sensrep_geometry.dir/localization.cpp.o.d"
  "CMakeFiles/sensrep_geometry.dir/partition.cpp.o"
  "CMakeFiles/sensrep_geometry.dir/partition.cpp.o.d"
  "CMakeFiles/sensrep_geometry.dir/polygon.cpp.o"
  "CMakeFiles/sensrep_geometry.dir/polygon.cpp.o.d"
  "CMakeFiles/sensrep_geometry.dir/segment.cpp.o"
  "CMakeFiles/sensrep_geometry.dir/segment.cpp.o.d"
  "CMakeFiles/sensrep_geometry.dir/spatial_hash.cpp.o"
  "CMakeFiles/sensrep_geometry.dir/spatial_hash.cpp.o.d"
  "CMakeFiles/sensrep_geometry.dir/voronoi.cpp.o"
  "CMakeFiles/sensrep_geometry.dir/voronoi.cpp.o.d"
  "libsensrep_geometry.a"
  "libsensrep_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensrep_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
