# Empty dependencies file for sensrep_geometry.
# This may be replaced when dependencies are built.
