
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/coverage.cpp" "src/geometry/CMakeFiles/sensrep_geometry.dir/coverage.cpp.o" "gcc" "src/geometry/CMakeFiles/sensrep_geometry.dir/coverage.cpp.o.d"
  "/root/repo/src/geometry/graph_analysis.cpp" "src/geometry/CMakeFiles/sensrep_geometry.dir/graph_analysis.cpp.o" "gcc" "src/geometry/CMakeFiles/sensrep_geometry.dir/graph_analysis.cpp.o.d"
  "/root/repo/src/geometry/localization.cpp" "src/geometry/CMakeFiles/sensrep_geometry.dir/localization.cpp.o" "gcc" "src/geometry/CMakeFiles/sensrep_geometry.dir/localization.cpp.o.d"
  "/root/repo/src/geometry/partition.cpp" "src/geometry/CMakeFiles/sensrep_geometry.dir/partition.cpp.o" "gcc" "src/geometry/CMakeFiles/sensrep_geometry.dir/partition.cpp.o.d"
  "/root/repo/src/geometry/polygon.cpp" "src/geometry/CMakeFiles/sensrep_geometry.dir/polygon.cpp.o" "gcc" "src/geometry/CMakeFiles/sensrep_geometry.dir/polygon.cpp.o.d"
  "/root/repo/src/geometry/segment.cpp" "src/geometry/CMakeFiles/sensrep_geometry.dir/segment.cpp.o" "gcc" "src/geometry/CMakeFiles/sensrep_geometry.dir/segment.cpp.o.d"
  "/root/repo/src/geometry/spatial_hash.cpp" "src/geometry/CMakeFiles/sensrep_geometry.dir/spatial_hash.cpp.o" "gcc" "src/geometry/CMakeFiles/sensrep_geometry.dir/spatial_hash.cpp.o.d"
  "/root/repo/src/geometry/voronoi.cpp" "src/geometry/CMakeFiles/sensrep_geometry.dir/voronoi.cpp.o" "gcc" "src/geometry/CMakeFiles/sensrep_geometry.dir/voronoi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sensrep_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
