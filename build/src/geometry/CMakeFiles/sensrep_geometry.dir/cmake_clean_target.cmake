file(REMOVE_RECURSE
  "libsensrep_geometry.a"
)
