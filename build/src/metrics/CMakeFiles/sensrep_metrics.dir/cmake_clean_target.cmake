file(REMOVE_RECURSE
  "libsensrep_metrics.a"
)
