# Empty dependencies file for sensrep_metrics.
# This may be replaced when dependencies are built.
