
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/counters.cpp" "src/metrics/CMakeFiles/sensrep_metrics.dir/counters.cpp.o" "gcc" "src/metrics/CMakeFiles/sensrep_metrics.dir/counters.cpp.o.d"
  "/root/repo/src/metrics/csv.cpp" "src/metrics/CMakeFiles/sensrep_metrics.dir/csv.cpp.o" "gcc" "src/metrics/CMakeFiles/sensrep_metrics.dir/csv.cpp.o.d"
  "/root/repo/src/metrics/failure_log.cpp" "src/metrics/CMakeFiles/sensrep_metrics.dir/failure_log.cpp.o" "gcc" "src/metrics/CMakeFiles/sensrep_metrics.dir/failure_log.cpp.o.d"
  "/root/repo/src/metrics/histogram.cpp" "src/metrics/CMakeFiles/sensrep_metrics.dir/histogram.cpp.o" "gcc" "src/metrics/CMakeFiles/sensrep_metrics.dir/histogram.cpp.o.d"
  "/root/repo/src/metrics/summary.cpp" "src/metrics/CMakeFiles/sensrep_metrics.dir/summary.cpp.o" "gcc" "src/metrics/CMakeFiles/sensrep_metrics.dir/summary.cpp.o.d"
  "/root/repo/src/metrics/timeline.cpp" "src/metrics/CMakeFiles/sensrep_metrics.dir/timeline.cpp.o" "gcc" "src/metrics/CMakeFiles/sensrep_metrics.dir/timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sensrep_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
