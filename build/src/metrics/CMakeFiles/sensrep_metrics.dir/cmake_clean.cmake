file(REMOVE_RECURSE
  "CMakeFiles/sensrep_metrics.dir/counters.cpp.o"
  "CMakeFiles/sensrep_metrics.dir/counters.cpp.o.d"
  "CMakeFiles/sensrep_metrics.dir/csv.cpp.o"
  "CMakeFiles/sensrep_metrics.dir/csv.cpp.o.d"
  "CMakeFiles/sensrep_metrics.dir/failure_log.cpp.o"
  "CMakeFiles/sensrep_metrics.dir/failure_log.cpp.o.d"
  "CMakeFiles/sensrep_metrics.dir/histogram.cpp.o"
  "CMakeFiles/sensrep_metrics.dir/histogram.cpp.o.d"
  "CMakeFiles/sensrep_metrics.dir/summary.cpp.o"
  "CMakeFiles/sensrep_metrics.dir/summary.cpp.o.d"
  "CMakeFiles/sensrep_metrics.dir/timeline.cpp.o"
  "CMakeFiles/sensrep_metrics.dir/timeline.cpp.o.d"
  "libsensrep_metrics.a"
  "libsensrep_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensrep_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
