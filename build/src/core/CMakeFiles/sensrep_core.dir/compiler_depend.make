# Empty compiler generated dependencies file for sensrep_core.
# This may be replaced when dependencies are built.
