file(REMOVE_RECURSE
  "CMakeFiles/sensrep_core.dir/centralized.cpp.o"
  "CMakeFiles/sensrep_core.dir/centralized.cpp.o.d"
  "CMakeFiles/sensrep_core.dir/config.cpp.o"
  "CMakeFiles/sensrep_core.dir/config.cpp.o.d"
  "CMakeFiles/sensrep_core.dir/coordination.cpp.o"
  "CMakeFiles/sensrep_core.dir/coordination.cpp.o.d"
  "CMakeFiles/sensrep_core.dir/data_collection.cpp.o"
  "CMakeFiles/sensrep_core.dir/data_collection.cpp.o.d"
  "CMakeFiles/sensrep_core.dir/dynamic_distributed.cpp.o"
  "CMakeFiles/sensrep_core.dir/dynamic_distributed.cpp.o.d"
  "CMakeFiles/sensrep_core.dir/fixed_distributed.cpp.o"
  "CMakeFiles/sensrep_core.dir/fixed_distributed.cpp.o.d"
  "CMakeFiles/sensrep_core.dir/manager_node.cpp.o"
  "CMakeFiles/sensrep_core.dir/manager_node.cpp.o.d"
  "CMakeFiles/sensrep_core.dir/replication.cpp.o"
  "CMakeFiles/sensrep_core.dir/replication.cpp.o.d"
  "CMakeFiles/sensrep_core.dir/simulation.cpp.o"
  "CMakeFiles/sensrep_core.dir/simulation.cpp.o.d"
  "libsensrep_core.a"
  "libsensrep_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensrep_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
