file(REMOVE_RECURSE
  "libsensrep_core.a"
)
