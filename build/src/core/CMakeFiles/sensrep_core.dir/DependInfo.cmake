
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/centralized.cpp" "src/core/CMakeFiles/sensrep_core.dir/centralized.cpp.o" "gcc" "src/core/CMakeFiles/sensrep_core.dir/centralized.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/core/CMakeFiles/sensrep_core.dir/config.cpp.o" "gcc" "src/core/CMakeFiles/sensrep_core.dir/config.cpp.o.d"
  "/root/repo/src/core/coordination.cpp" "src/core/CMakeFiles/sensrep_core.dir/coordination.cpp.o" "gcc" "src/core/CMakeFiles/sensrep_core.dir/coordination.cpp.o.d"
  "/root/repo/src/core/data_collection.cpp" "src/core/CMakeFiles/sensrep_core.dir/data_collection.cpp.o" "gcc" "src/core/CMakeFiles/sensrep_core.dir/data_collection.cpp.o.d"
  "/root/repo/src/core/dynamic_distributed.cpp" "src/core/CMakeFiles/sensrep_core.dir/dynamic_distributed.cpp.o" "gcc" "src/core/CMakeFiles/sensrep_core.dir/dynamic_distributed.cpp.o.d"
  "/root/repo/src/core/fixed_distributed.cpp" "src/core/CMakeFiles/sensrep_core.dir/fixed_distributed.cpp.o" "gcc" "src/core/CMakeFiles/sensrep_core.dir/fixed_distributed.cpp.o.d"
  "/root/repo/src/core/manager_node.cpp" "src/core/CMakeFiles/sensrep_core.dir/manager_node.cpp.o" "gcc" "src/core/CMakeFiles/sensrep_core.dir/manager_node.cpp.o.d"
  "/root/repo/src/core/replication.cpp" "src/core/CMakeFiles/sensrep_core.dir/replication.cpp.o" "gcc" "src/core/CMakeFiles/sensrep_core.dir/replication.cpp.o.d"
  "/root/repo/src/core/simulation.cpp" "src/core/CMakeFiles/sensrep_core.dir/simulation.cpp.o" "gcc" "src/core/CMakeFiles/sensrep_core.dir/simulation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/robot/CMakeFiles/sensrep_robot.dir/DependInfo.cmake"
  "/root/repo/build/src/wsn/CMakeFiles/sensrep_wsn.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sensrep_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/sensrep_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sensrep_net.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/sensrep_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/sensrep_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sensrep_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
