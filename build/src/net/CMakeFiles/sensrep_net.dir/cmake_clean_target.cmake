file(REMOVE_RECURSE
  "libsensrep_net.a"
)
