# Empty compiler generated dependencies file for sensrep_net.
# This may be replaced when dependencies are built.
