file(REMOVE_RECURSE
  "CMakeFiles/sensrep_net.dir/medium.cpp.o"
  "CMakeFiles/sensrep_net.dir/medium.cpp.o.d"
  "CMakeFiles/sensrep_net.dir/packet.cpp.o"
  "CMakeFiles/sensrep_net.dir/packet.cpp.o.d"
  "libsensrep_net.a"
  "libsensrep_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensrep_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
