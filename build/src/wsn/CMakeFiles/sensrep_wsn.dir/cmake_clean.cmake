file(REMOVE_RECURSE
  "CMakeFiles/sensrep_wsn.dir/deployment.cpp.o"
  "CMakeFiles/sensrep_wsn.dir/deployment.cpp.o.d"
  "CMakeFiles/sensrep_wsn.dir/failure_model.cpp.o"
  "CMakeFiles/sensrep_wsn.dir/failure_model.cpp.o.d"
  "CMakeFiles/sensrep_wsn.dir/sensor_field.cpp.o"
  "CMakeFiles/sensrep_wsn.dir/sensor_field.cpp.o.d"
  "CMakeFiles/sensrep_wsn.dir/sensor_node.cpp.o"
  "CMakeFiles/sensrep_wsn.dir/sensor_node.cpp.o.d"
  "libsensrep_wsn.a"
  "libsensrep_wsn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensrep_wsn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
