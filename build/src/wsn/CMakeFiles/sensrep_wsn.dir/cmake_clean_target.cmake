file(REMOVE_RECURSE
  "libsensrep_wsn.a"
)
