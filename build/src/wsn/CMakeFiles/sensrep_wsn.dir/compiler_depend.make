# Empty compiler generated dependencies file for sensrep_wsn.
# This may be replaced when dependencies are built.
