file(REMOVE_RECURSE
  "CMakeFiles/sensrep_cli.dir/sensrep_cli.cpp.o"
  "CMakeFiles/sensrep_cli.dir/sensrep_cli.cpp.o.d"
  "sensrep_cli"
  "sensrep_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensrep_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
