# Empty dependencies file for sensrep_cli.
# This may be replaced when dependencies are built.
