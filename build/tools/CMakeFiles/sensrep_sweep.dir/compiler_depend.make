# Empty compiler generated dependencies file for sensrep_sweep.
# This may be replaced when dependencies are built.
