file(REMOVE_RECURSE
  "CMakeFiles/sensrep_sweep.dir/sensrep_sweep.cpp.o"
  "CMakeFiles/sensrep_sweep.dir/sensrep_sweep.cpp.o.d"
  "sensrep_sweep"
  "sensrep_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensrep_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
