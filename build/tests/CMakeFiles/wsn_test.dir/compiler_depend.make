# Empty compiler generated dependencies file for wsn_test.
# This may be replaced when dependencies are built.
