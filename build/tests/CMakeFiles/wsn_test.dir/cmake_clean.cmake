file(REMOVE_RECURSE
  "CMakeFiles/wsn_test.dir/wsn_test.cpp.o"
  "CMakeFiles/wsn_test.dir/wsn_test.cpp.o.d"
  "wsn_test"
  "wsn_test.pdb"
  "wsn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
