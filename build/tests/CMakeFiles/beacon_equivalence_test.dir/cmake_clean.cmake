file(REMOVE_RECURSE
  "CMakeFiles/beacon_equivalence_test.dir/beacon_equivalence_test.cpp.o"
  "CMakeFiles/beacon_equivalence_test.dir/beacon_equivalence_test.cpp.o.d"
  "beacon_equivalence_test"
  "beacon_equivalence_test.pdb"
  "beacon_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beacon_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
