# Empty dependencies file for beacon_equivalence_test.
# This may be replaced when dependencies are built.
