# Empty dependencies file for data_collection_test.
# This may be replaced when dependencies are built.
