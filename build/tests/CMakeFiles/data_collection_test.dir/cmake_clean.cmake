file(REMOVE_RECURSE
  "CMakeFiles/data_collection_test.dir/data_collection_test.cpp.o"
  "CMakeFiles/data_collection_test.dir/data_collection_test.cpp.o.d"
  "data_collection_test"
  "data_collection_test.pdb"
  "data_collection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_collection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
