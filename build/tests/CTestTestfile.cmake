# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/geometry_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/routing_test[1]_include.cmake")
include("/root/repo/build/tests/wsn_test[1]_include.cmake")
include("/root/repo/build/tests/robot_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/replication_test[1]_include.cmake")
include("/root/repo/build/tests/localization_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/graph_analysis_test[1]_include.cmake")
include("/root/repo/build/tests/regression_test[1]_include.cmake")
include("/root/repo/build/tests/data_collection_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
include("/root/repo/build/tests/args_test[1]_include.cmake")
include("/root/repo/build/tests/beacon_equivalence_test[1]_include.cmake")
