# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "4" "2000" "1")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_network_health "/root/repo/build/examples/network_health" "150" "300" "2")
set_tests_properties(example_network_health PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_voronoi_svg "/root/repo/build/examples/voronoi_svg" "/root/repo/build/examples/field.svg" "3")
set_tests_properties(example_voronoi_svg PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
