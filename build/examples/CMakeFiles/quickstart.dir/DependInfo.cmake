
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sensrep_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/sensrep_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sensrep_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/robot/CMakeFiles/sensrep_robot.dir/DependInfo.cmake"
  "/root/repo/build/src/wsn/CMakeFiles/sensrep_wsn.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/sensrep_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sensrep_net.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/sensrep_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/sensrep_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sensrep_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
