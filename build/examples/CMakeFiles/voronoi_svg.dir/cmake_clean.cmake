file(REMOVE_RECURSE
  "CMakeFiles/voronoi_svg.dir/voronoi_svg.cpp.o"
  "CMakeFiles/voronoi_svg.dir/voronoi_svg.cpp.o.d"
  "voronoi_svg"
  "voronoi_svg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voronoi_svg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
