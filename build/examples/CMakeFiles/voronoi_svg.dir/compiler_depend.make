# Empty compiler generated dependencies file for voronoi_svg.
# This may be replaced when dependencies are built.
