file(REMOVE_RECURSE
  "CMakeFiles/data_yield.dir/data_yield.cpp.o"
  "CMakeFiles/data_yield.dir/data_yield.cpp.o.d"
  "data_yield"
  "data_yield.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_yield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
