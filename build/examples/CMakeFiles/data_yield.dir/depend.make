# Empty dependencies file for data_yield.
# This may be replaced when dependencies are built.
