// Infrastructure microbenchmarks: event-queue and medium throughput.
//
// Not a paper artifact — this bench guards the substrate's performance so
// the figure benches stay tractable (a 16-robot, 64000 s run executes tens
// of millions of events).

#include <benchmark/benchmark.h>

#include "geometry/spatial_hash.hpp"
#include "metrics/counters.hpp"
#include "net/medium.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace {

using sensrep::geometry::SpatialHash;
using sensrep::geometry::Vec2;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sensrep::sim::Simulator sim;
    long long sum = 0;
    for (int i = 0; i < n; ++i) {
      sim.at(static_cast<double>(i % 97), [&sum, i] { sum += i; });
    }
    sim.run_all();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

void BM_PeriodicTimers(benchmark::State& state) {
  const auto timers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sensrep::sim::Simulator sim;
    long long ticks = 0;
    for (int i = 0; i < timers; ++i) {
      sim.every(10.0, [&ticks] { ++ticks; });
    }
    sim.run_until(1000.0);
    benchmark::DoNotOptimize(ticks);
  }
  state.SetItemsProcessed(state.iterations() * timers * 100);
}
BENCHMARK(BM_PeriodicTimers)->Arg(100)->Arg(800);

void BM_SpatialHashQuery(benchmark::State& state) {
  sensrep::sim::Rng rng(1);
  SpatialHash hash(63.0);
  for (std::uint32_t i = 0; i < 800; ++i) {
    hash.upsert(i, {rng.uniform(0, 800), rng.uniform(0, 800)});
  }
  std::size_t total = 0;
  for (auto _ : state) {
    const Vec2 q{rng.uniform(0, 800), rng.uniform(0, 800)};
    total += hash.query_ball(q, 63.0).size();
  }
  benchmark::DoNotOptimize(total);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpatialHashQuery);

void BM_MediumBroadcast(benchmark::State& state) {
  sensrep::sim::Simulator sim;
  sensrep::metrics::TransmissionCounters counters;
  sensrep::net::Medium medium(sim, sensrep::sim::Rng(2), {}, counters, 63.0);
  sensrep::sim::Rng rng(3);
  int delivered = 0;
  for (sensrep::net::NodeId i = 0; i < 400; ++i) {
    medium.attach(i, {rng.uniform(0, 400), rng.uniform(0, 400)}, 63.0,
                  [&delivered](const sensrep::net::Packet&, sensrep::net::NodeId) {
                    ++delivered;
                  });
  }
  sensrep::net::Packet pkt;
  pkt.type = sensrep::net::PacketType::kBeacon;
  pkt.dst = sensrep::net::kBroadcastId;
  sensrep::net::NodeId sender = 0;
  for (auto _ : state) {
    medium.broadcast(sender, pkt);
    sender = (sender + 1) % 400;
    sim.run_all();
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MediumBroadcast);

}  // namespace

BENCHMARK_MAIN();
