// Infrastructure microbenchmarks: event-queue and medium throughput.
//
// Not a paper artifact — this bench guards the substrate's performance so
// the figure benches stay tractable (a 16-robot, 64000 s run executes tens
// of millions of events).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <memory>
#include <optional>
#include <vector>

#include "core/simulation.hpp"
#include "geometry/rect.hpp"
#include "geometry/spatial_hash.hpp"
#include "metrics/counters.hpp"
#include "net/medium.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics_registry.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "spatial/uniform_grid.hpp"

namespace {

using sensrep::geometry::Rect;
using sensrep::geometry::SpatialHash;
using sensrep::geometry::Vec2;
using sensrep::spatial::UniformGrid2D;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sensrep::sim::Simulator sim;
    long long sum = 0;
    for (int i = 0; i < n; ++i) {
      sim.at(static_cast<double>(i % 97), [&sum, i] { sum += i; });
    }
    sim.run_all();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

void BM_PeriodicTimers(benchmark::State& state) {
  const auto timers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sensrep::sim::Simulator sim;
    long long ticks = 0;
    for (int i = 0; i < timers; ++i) {
      sim.every(10.0, [&ticks] { ++ticks; });
    }
    sim.run_until(1000.0);
    benchmark::DoNotOptimize(ticks);
  }
  state.SetItemsProcessed(state.iterations() * timers * 100);
}
BENCHMARK(BM_PeriodicTimers)->Arg(100)->Arg(800);

void BM_SpatialHashQuery(benchmark::State& state) {
  sensrep::sim::Rng rng(1);
  SpatialHash hash(63.0);
  for (std::uint32_t i = 0; i < 800; ++i) {
    hash.upsert(i, {rng.uniform(0, 800), rng.uniform(0, 800)});
  }
  std::size_t total = 0;
  for (auto _ : state) {
    const Vec2 q{rng.uniform(0, 800), rng.uniform(0, 800)};
    total += hash.query_ball(q, 63.0).size();
  }
  benchmark::DoNotOptimize(total);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpatialHashQuery);

// --- spatial index vs brute force (E16) --------------------------------------
//
// The simulator's hot proximity queries, benchmarked both ways at the fleet
// and field sizes the experiments use. The default field geometry assigns
// each robot 200x200 m^2, so the side grows as 200 * sqrt(robots); sensors
// deploy 50 per robot at the same density.

/// Fleet scattered over a field sized for `n` robots (paper density).
std::vector<Vec2> scatter(std::size_t n, double side, std::uint64_t seed) {
  sensrep::sim::Rng rng(seed);
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0, side), rng.uniform(0, side)});
  }
  return pts;
}

/// Stand-in for a heap-allocated RobotNode: closest_live_robot's brute scan
/// walks `vector<unique_ptr<RobotNode>>`, touching one scattered cache line
/// per robot just to read its position, and tests the presumed-dead bit.
/// The pad matches RobotNode's order of magnitude (router tables, task
/// queue, kinematics state).
struct FleetRobot {
  Vec2 pos;
  char pad[360];
};

std::vector<std::unique_ptr<FleetRobot>> make_fleet(const std::vector<Vec2>& pts) {
  std::vector<std::unique_ptr<FleetRobot>> fleet;
  fleet.reserve(pts.size());
  for (const Vec2 p : pts) {
    fleet.push_back(std::make_unique<FleetRobot>());
    fleet.back()->pos = p;
  }
  return fleet;
}

void BM_NearestRobotBrute(benchmark::State& state) {
  const auto robots = static_cast<std::size_t>(state.range(0));
  const double side = 200.0 * std::sqrt(static_cast<double>(robots));
  const auto fleet = make_fleet(scatter(robots, side, 11));
  const std::vector<bool> presumed_dead(robots, false);
  sensrep::sim::Rng rng(12);
  std::size_t picked = 0;
  for (auto _ : state) {
    const Vec2 q{rng.uniform(0, side), rng.uniform(0, side)};
    std::optional<std::size_t> best;
    double best_d = 0.0;
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      if (presumed_dead[i]) continue;
      const double d = sensrep::geometry::distance(fleet[i]->pos, q);
      if (!best || d < best_d) {
        best = i;
        best_d = d;
      }
    }
    picked += *best;
  }
  benchmark::DoNotOptimize(picked);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NearestRobotBrute)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_NearestRobotGrid(benchmark::State& state) {
  const auto robots = static_cast<std::size_t>(state.range(0));
  const double side = 200.0 * std::sqrt(static_cast<double>(robots));
  const auto pts = scatter(robots, side, 11);
  const std::vector<bool> presumed_dead(robots, false);
  UniformGrid2D<std::uint32_t> grid({{0, 0}, {side, side}}, 200.0);
  for (std::uint32_t i = 0; i < pts.size(); ++i) grid.insert(i, pts[i]);
  sensrep::sim::Rng rng(12);
  std::size_t picked = 0;
  for (auto _ : state) {
    const Vec2 q{rng.uniform(0, side), rng.uniform(0, side)};
    picked += *grid.nearest_euclid(
        q, [&presumed_dead](std::uint32_t i) { return !presumed_dead[i]; });
  }
  benchmark::DoNotOptimize(picked);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NearestRobotGrid)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_SensorRangeBrute(benchmark::State& state) {
  const auto sensors = static_cast<std::size_t>(state.range(0));
  const double side = 200.0 * std::sqrt(static_cast<double>(sensors) / 50.0);
  const auto field = scatter(sensors, side, 13);
  sensrep::sim::Rng rng(14);
  std::size_t total = 0;
  const double r = 63.0;
  for (auto _ : state) {
    const Vec2 q{rng.uniform(0, side), rng.uniform(0, side)};
    for (std::size_t i = 0; i < field.size(); ++i) {
      if (sensrep::geometry::distance2(field[i], q) <= r * r) ++total;
    }
  }
  benchmark::DoNotOptimize(total);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SensorRangeBrute)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_SensorRangeGrid(benchmark::State& state) {
  const auto sensors = static_cast<std::size_t>(state.range(0));
  const double side = 200.0 * std::sqrt(static_cast<double>(sensors) / 50.0);
  const auto field = scatter(sensors, side, 13);
  UniformGrid2D<std::uint32_t> grid({{0, 0}, {side, side}}, 63.0);
  for (std::uint32_t i = 0; i < field.size(); ++i) grid.insert(i, field[i]);
  sensrep::sim::Rng rng(14);
  std::size_t total = 0;
  for (auto _ : state) {
    const Vec2 q{rng.uniform(0, side), rng.uniform(0, side)};
    total += grid.within_radius(q, 63.0).size();
  }
  benchmark::DoNotOptimize(total);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SensorRangeGrid)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_SensorNearestBrute(benchmark::State& state) {
  const auto sensors = static_cast<std::size_t>(state.range(0));
  const double side = 200.0 * std::sqrt(static_cast<double>(sensors) / 50.0);
  const auto field = scatter(sensors, side, 15);
  sensrep::sim::Rng rng(16);
  std::size_t picked = 0;
  for (auto _ : state) {
    const Vec2 q{rng.uniform(0, side), rng.uniform(0, side)};
    std::optional<std::size_t> best;
    double best_d2 = 0.0;
    for (std::size_t i = 0; i < field.size(); ++i) {
      const double d2 = sensrep::geometry::distance2(field[i], q);
      if (!best || d2 < best_d2) {
        best = i;
        best_d2 = d2;
      }
    }
    picked += *best;
  }
  benchmark::DoNotOptimize(picked);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SensorNearestBrute)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_SensorNearestGrid(benchmark::State& state) {
  const auto sensors = static_cast<std::size_t>(state.range(0));
  const double side = 200.0 * std::sqrt(static_cast<double>(sensors) / 50.0);
  const auto field = scatter(sensors, side, 15);
  UniformGrid2D<std::uint32_t> grid({{0, 0}, {side, side}}, 63.0);
  for (std::uint32_t i = 0; i < field.size(); ++i) grid.insert(i, field[i]);
  sensrep::sim::Rng rng(16);
  std::size_t picked = 0;
  for (auto _ : state) {
    const Vec2 q{rng.uniform(0, side), rng.uniform(0, side)};
    picked += *grid.nearest(q);
  }
  benchmark::DoNotOptimize(picked);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SensorNearestGrid)->Arg(1000)->Arg(10000)->Arg(100000);

// --- end-to-end ticks/sec: data-oriented vs legacy hot path (E19) ------------
//
// Whole simulations at scale, measuring executed events per wall second —
// the number every figure bench's runtime divides by. Args are
// (sensors, data_oriented); CI runs the 100000-sensor pair and feeds
// items_per_second into tools/check_ticks_regression.sh, which fails the job
// on a >15% regression of the pooled/SoA path against the committed
// baseline. Construction (deployment, discovery floods) is excluded via
// manual timing: the hot loop is what PR 8 restructured.
//
// Horizons shrink as the field grows so the 1M-sensor point stays tractable
// on a laptop; ticks/sec is a rate, so the horizon only sets how much signal
// is averaged.

void BM_EndToEndTicks(benchmark::State& state) {
  const auto sensors = static_cast<std::size_t>(state.range(0));
  const bool data_oriented = state.range(1) != 0;
  sensrep::core::SimulationConfig cfg;
  cfg.algorithm = sensrep::core::Algorithm::kFixedDistributed;  // no manager hub
  cfg.robots = sensors / 50;  // paper density: 50 sensors per robot
  cfg.seed = 2026;
  cfg.sim_duration = sensors >= 1000000 ? 20.0 : sensors >= 100000 ? 100.0 : 400.0;
  cfg.field.data_oriented = data_oriented;
  std::uint64_t events = 0;
  for (auto _ : state) {
    sensrep::core::Simulation sim(cfg);
    const auto start = std::chrono::steady_clock::now();
    sim.run();
    const auto stop = std::chrono::steady_clock::now();
    state.SetIterationTime(std::chrono::duration<double>(stop - start).count());
    events += sim.simulator().executed();
  }
  benchmark::DoNotOptimize(events);
  // items_per_second == executed events / timed wall seconds == ticks/sec.
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_EndToEndTicks)
    ->ArgsProduct({{10000, 100000, 1000000}, {0, 1}})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

// --- sharded ticks/sec scaling (E21) -----------------------------------------
//
// The same end-to-end run as BM_EndToEndTicks, executed through the spatially
// sharded schedule at 1, 2 and 4 tiles (args: sensors, shards). shards=1 is
// the sequential baseline; the bitwise equivalence oracle in
// tests/shard_test.cpp guarantees every row computes the identical
// simulation, so the /1 vs /2 vs /4 spread is pure scheduling overhead or
// speedup. The beacon tick sweeps dominate the event mix at these scales,
// and those are exactly what the tile workers parallelize; everything else
// (deliveries, repairs) stays serial at the barriers, so this is an Amdahl
// curve, not a linear one. Run on a multi-core box — a 1-core container
// serializes the pool and reports the barrier overhead alone.

void BM_ShardedTicks(benchmark::State& state) {
  const auto sensors = static_cast<std::size_t>(state.range(0));
  const auto shards = static_cast<std::size_t>(state.range(1));
  sensrep::core::SimulationConfig cfg;
  cfg.algorithm = sensrep::core::Algorithm::kFixedDistributed;  // no manager hub
  cfg.robots = sensors / 50;  // paper density: 50 sensors per robot
  cfg.seed = 2026;
  cfg.sim_duration = sensors >= 1000000 ? 20.0 : sensors >= 100000 ? 100.0 : 400.0;
  cfg.field.shards = shards;
  std::uint64_t events = 0;
  for (auto _ : state) {
    sensrep::core::Simulation sim(cfg);
    const auto start = std::chrono::steady_clock::now();
    sim.run();
    const auto stop = std::chrono::steady_clock::now();
    state.SetIterationTime(std::chrono::duration<double>(stop - start).count());
    events += sim.simulator().executed();
  }
  benchmark::DoNotOptimize(events);
  // items_per_second == executed-equivalent events / wall second; identical
  // event counts across shard counts (the oracle pins them), so rates are
  // directly comparable.
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_ShardedTicks)
    ->ArgsProduct({{100000, 1000000}, {1, 2, 4}})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

// --- metrics-plane overhead ablation (E20) -----------------------------------
//
// The same end-to-end run as BM_EndToEndTicks (pooled hot path), with the
// observability plane in its three states: 0 = registry disabled (the
// default), 1 = registry enabled, 2 = registry + flight recorder. Every
// instrumentation site is compiled in unconditionally — disabled mode pays
// exactly one relaxed load per site — so the /0 vs /1 vs /2 spread IS the
// runtime cost of the plane. tools/check_metrics_overhead.sh feeds the
// repetition medians through a <3% guard. Deliberately a separate benchmark:
// check_ticks_regression.sh greps BM_EndToEndTicks and must keep seeing the
// registry-off numbers it has always seen.

void BM_MetricsOverhead(benchmark::State& state) {
  const auto sensors = static_cast<std::size_t>(state.range(0));
  const auto mode = static_cast<int>(state.range(1));
  sensrep::core::SimulationConfig cfg;
  cfg.algorithm = sensrep::core::Algorithm::kFixedDistributed;
  cfg.robots = sensors / 50;
  cfg.seed = 2026;
  cfg.sim_duration = sensors >= 1000000 ? 20.0 : sensors >= 100000 ? 100.0 : 400.0;
  cfg.field.data_oriented = true;
  sensrep::obs::Metrics::reset();
  sensrep::obs::Metrics::enable(mode >= 1);
  if (mode >= 2) {
    sensrep::obs::FlightRecorder::enable();
    sensrep::obs::FlightRecorder::reset();
  } else {
    sensrep::obs::FlightRecorder::disable();
  }
  std::uint64_t events = 0;
  for (auto _ : state) {
    sensrep::core::Simulation sim(cfg);
    const auto start = std::chrono::steady_clock::now();
    sim.run();
    const auto stop = std::chrono::steady_clock::now();
    state.SetIterationTime(std::chrono::duration<double>(stop - start).count());
    events += sim.simulator().executed();
  }
  benchmark::DoNotOptimize(events);
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  sensrep::obs::Metrics::enable(false);
  sensrep::obs::Metrics::reset();
  sensrep::obs::FlightRecorder::disable();
}
BENCHMARK(BM_MetricsOverhead)
    ->ArgsProduct({{100000}, {0, 1, 2}})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

void BM_MediumBroadcast(benchmark::State& state) {
  sensrep::sim::Simulator sim;
  sensrep::metrics::TransmissionCounters counters;
  sensrep::net::Medium medium(sim, sensrep::sim::Rng(2), {}, counters, 63.0);
  sensrep::sim::Rng rng(3);
  int delivered = 0;
  for (sensrep::net::NodeId i = 0; i < 400; ++i) {
    medium.attach(i, {rng.uniform(0, 400), rng.uniform(0, 400)}, 63.0,
                  [&delivered](const sensrep::net::Packet&, sensrep::net::NodeId) {
                    ++delivered;
                  });
  }
  sensrep::net::Packet pkt;
  pkt.type = sensrep::net::PacketType::kBeacon;
  pkt.dst = sensrep::net::kBroadcastId;
  sensrep::net::NodeId sender = 0;
  for (auto _ : state) {
    medium.broadcast(sender, pkt);
    sender = (sender + 1) % 400;
    sim.run_all();
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MediumBroadcast);

}  // namespace

BENCHMARK_MAIN();
