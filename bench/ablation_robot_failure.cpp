// E13/E14 — robot fault tolerance under spontaneous robot failures.
//
// The paper assumes maintenance robots never fail. This ablation drops that
// assumption: robots draw exponential times-to-failure at a swept MTBF, the
// lease-based detection machinery presumes silent robots dead, and each
// algorithm runs its recovery path (centralized re-dispatch, fixed subarea
// adoption, dynamic re-flooding). The MTTR rows (E14) add repair/return:
// failed robots resurrect after an exponential time-to-repair and rejoin
// service, cycling the fleet toward MTBF / (MTBF + MTTR) availability.
// Watched: how gracefully repair completion and latency degrade as the fleet
// decays, and how much of that degradation a finite MTTR buys back. Results
// land in the table below and e13_robot_failure.csv.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <tuple>

#include "core/simulation.hpp"

namespace {

using sensrep::core::Algorithm;
using sensrep::core::ExperimentResult;
using sensrep::core::SimulationConfig;

constexpr double kInf = std::numeric_limits<double>::infinity();

// Sweep axis: expected robot lifetime relative to the 32000 s horizon
// (inf = the paper's fault-free fleet; 8000 s ~ the whole fleet dies), then
// the E14 availability pairs: the harshest MTBF with progressively faster
// repair (availability 0.67 and 0.89 in steady state).
struct SweepPoint {
  double mtbf;
  double mttr;
};
constexpr SweepPoint kSweep[] = {
    {kInf, kInf},     {32000.0, kInf}, {16000.0, kInf},
    {8000.0, kInf},   {8000.0, 4000.0}, {8000.0, 1000.0},
};
constexpr std::size_t kSweepSize = sizeof(kSweep) / sizeof(kSweep[0]);

const ExperimentResult& run_cached(Algorithm algo, SweepPoint p) {
  static std::map<std::tuple<Algorithm, double, double>, ExperimentResult> cache;
  const auto key = std::make_tuple(algo, p.mtbf, p.mttr);
  auto it = cache.find(key);
  if (it == cache.end()) {
    SimulationConfig cfg;
    cfg.algorithm = algo;
    cfg.robots = 4;
    cfg.seed = 1;
    cfg.sim_duration = 32000.0;
    cfg.robot_faults.mtbf = p.mtbf;
    cfg.robot_faults.mttr = p.mttr;
    sensrep::core::Simulation sim(cfg);
    sim.run();
    it = cache.emplace(key, sim.result()).first;
  }
  return it->second;
}

double repaired_frac(const ExperimentResult& r) {
  return r.failures == 0
             ? 1.0
             : static_cast<double>(r.repaired) / static_cast<double>(r.failures);
}

// Steady-state fleet availability implied by the fault model (1.0 when
// repairs are disabled and the fleet just decays).
double steady_availability(SweepPoint p) {
  if (!std::isfinite(p.mtbf)) return 1.0;
  if (!std::isfinite(p.mttr)) return 0.0;  // pure decay: no steady state
  return p.mtbf / (p.mtbf + p.mttr);
}

void BM_RobotFailure(benchmark::State& state, Algorithm algo) {
  const SweepPoint p = kSweep[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    const auto& r = run_cached(algo, p);
    state.counters["robot_failures"] = static_cast<double>(r.robot_failures);
    state.counters["robot_repairs"] = static_cast<double>(r.robot_repairs);
    state.counters["repaired_frac"] = repaired_frac(r);
    state.counters["repair_latency_s"] = r.avg_repair_latency;
  }
}

void print_figure() {
  std::puts(
      "\n=== E13/E14: repair service under robot failures (4 robots, 32000 s) ===");
  std::puts(
      "algorithm    mtbf_s  mttr_s  dead  back  repaired/fail  latency_s  lost  "
      "redisp  failover  adopt");
  FILE* csv = std::fopen("e13_robot_failure.csv", "w");
  if (csv) {
    std::fprintf(csv,
                 "algorithm,mtbf_s,mttr_s,steady_availability,robot_failures,"
                 "robot_repairs,failures,repaired,repaired_frac,repair_latency_s,"
                 "tasks_lost,orphaned_tasks,redispatches,failover_events,adoptions,"
                 "ownership_transfers\n");
  }
  for (const auto algo : {Algorithm::kCentralized, Algorithm::kFixedDistributed,
                          Algorithm::kDynamicDistributed}) {
    for (const SweepPoint p : kSweep) {
      const auto& r = run_cached(algo, p);
      std::printf(
          "%-11s  %6.0f  %6.0f  %4zu  %4zu  %13.4f  %9.1f  %4zu  %6zu  %8zu  %5zu\n",
          std::string(to_string(algo)).c_str(), p.mtbf, p.mttr, r.robot_failures,
          r.robot_repairs, repaired_frac(r), r.avg_repair_latency, r.tasks_lost,
          r.redispatches, r.failover_events, r.adoptions);
      if (csv) {
        std::fprintf(csv, "%s,%g,%g,%.4f,%zu,%zu,%zu,%zu,%.6f,%.3f,%zu,%zu,%zu,%zu,%zu,%zu\n",
                     std::string(to_string(algo)).c_str(), p.mtbf, p.mttr,
                     steady_availability(p), r.robot_failures, r.robot_repairs,
                     r.failures, r.repaired, repaired_frac(r), r.avg_repair_latency,
                     r.tasks_lost, r.orphaned_tasks, r.redispatches, r.failover_events,
                     r.adoptions, r.ownership_transfers);
      }
    }
  }
  if (csv) {
    std::fclose(csv);
    std::puts("wrote e13_robot_failure.csv");
  }
  std::puts(
      "expectation: repair completion degrades gracefully with fleet decay instead of\n"
      "collapsing — leases hand orphaned work to survivors; the surviving robots'\n"
      "longer legs show up as repair latency, not as permanently lost failures.\n"
      "E14 (finite MTTR): resurrections claw the completion fraction and latency\n"
      "back toward the fault-free line as availability MTBF/(MTBF+MTTR) rises");
}

}  // namespace

BENCHMARK_CAPTURE(BM_RobotFailure, centralized, Algorithm::kCentralized)
    ->DenseRange(0, static_cast<int>(kSweepSize) - 1)->Iterations(1)
    ->Unit(benchmark::kSecond);
BENCHMARK_CAPTURE(BM_RobotFailure, fixed, Algorithm::kFixedDistributed)
    ->DenseRange(0, static_cast<int>(kSweepSize) - 1)->Iterations(1)
    ->Unit(benchmark::kSecond);
BENCHMARK_CAPTURE(BM_RobotFailure, dynamic, Algorithm::kDynamicDistributed)
    ->DenseRange(0, static_cast<int>(kSweepSize) - 1)->Iterations(1)
    ->Unit(benchmark::kSecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_figure();
  return 0;
}
