// E13 — robot fault tolerance under spontaneous robot failures.
//
// The paper assumes maintenance robots never fail. This ablation drops that
// assumption: robots draw exponential times-to-failure at a swept MTBF, the
// lease-based detection machinery presumes silent robots dead, and each
// algorithm runs its recovery path (centralized re-dispatch, fixed subarea
// adoption, dynamic re-flooding). Watched: how gracefully repair completion
// and latency degrade as the fleet decays, and what the recovery machinery
// actually did. Results land in the table below and e13_robot_failure.csv.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <limits>
#include <map>

#include "core/simulation.hpp"

namespace {

using sensrep::core::Algorithm;
using sensrep::core::ExperimentResult;
using sensrep::core::SimulationConfig;

constexpr double kInf = std::numeric_limits<double>::infinity();

// Sweep axis: expected robot lifetime relative to the 32000 s horizon
// (inf = the paper's fault-free fleet; 8000 s ~ the whole fleet dies).
constexpr double kMtbfSweep[] = {kInf, 32000.0, 16000.0, 8000.0};

const ExperimentResult& run_cached(Algorithm algo, double mtbf) {
  static std::map<std::pair<Algorithm, double>, ExperimentResult> cache;
  const auto key = std::make_pair(algo, mtbf);
  auto it = cache.find(key);
  if (it == cache.end()) {
    SimulationConfig cfg;
    cfg.algorithm = algo;
    cfg.robots = 4;
    cfg.seed = 1;
    cfg.sim_duration = 32000.0;
    cfg.robot_faults.mtbf = mtbf;
    sensrep::core::Simulation sim(cfg);
    sim.run();
    it = cache.emplace(key, sim.result()).first;
  }
  return it->second;
}

double repaired_frac(const ExperimentResult& r) {
  return r.failures == 0
             ? 1.0
             : static_cast<double>(r.repaired) / static_cast<double>(r.failures);
}

void BM_RobotFailure(benchmark::State& state, Algorithm algo) {
  const double mtbf = kMtbfSweep[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    const auto& r = run_cached(algo, mtbf);
    state.counters["robot_failures"] = static_cast<double>(r.robot_failures);
    state.counters["repaired_frac"] = repaired_frac(r);
    state.counters["repair_latency_s"] = r.avg_repair_latency;
  }
}

void print_figure() {
  std::puts("\n=== E13: repair service under robot failures (4 robots, 32000 s) ===");
  std::puts(
      "algorithm    mtbf_s  dead  repaired/fail  latency_s  lost  redisp  failover  adopt");
  FILE* csv = std::fopen("e13_robot_failure.csv", "w");
  if (csv) {
    std::fprintf(csv,
                 "algorithm,mtbf_s,robot_failures,failures,repaired,repaired_frac,"
                 "repair_latency_s,tasks_lost,orphaned_tasks,redispatches,"
                 "failover_events,adoptions\n");
  }
  for (const auto algo : {Algorithm::kCentralized, Algorithm::kFixedDistributed,
                          Algorithm::kDynamicDistributed}) {
    for (const double mtbf : kMtbfSweep) {
      const auto& r = run_cached(algo, mtbf);
      std::printf("%-11s  %6.0f  %4zu  %13.4f  %9.1f  %4zu  %6zu  %8zu  %5zu\n",
                  std::string(to_string(algo)).c_str(), mtbf, r.robot_failures,
                  repaired_frac(r), r.avg_repair_latency, r.tasks_lost, r.redispatches,
                  r.failover_events, r.adoptions);
      if (csv) {
        std::fprintf(csv, "%s,%g,%zu,%zu,%zu,%.6f,%.3f,%zu,%zu,%zu,%zu,%zu\n",
                     std::string(to_string(algo)).c_str(), mtbf, r.robot_failures,
                     r.failures, r.repaired, repaired_frac(r), r.avg_repair_latency,
                     r.tasks_lost, r.orphaned_tasks, r.redispatches, r.failover_events,
                     r.adoptions);
      }
    }
  }
  if (csv) {
    std::fclose(csv);
    std::puts("wrote e13_robot_failure.csv");
  }
  std::puts(
      "expectation: repair completion degrades gracefully with fleet decay instead of\n"
      "collapsing — leases hand orphaned work to survivors; the surviving robots'\n"
      "longer legs show up as repair latency, not as permanently lost failures");
}

}  // namespace

BENCHMARK_CAPTURE(BM_RobotFailure, centralized, Algorithm::kCentralized)
    ->DenseRange(0, 3)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK_CAPTURE(BM_RobotFailure, fixed, Algorithm::kFixedDistributed)
    ->DenseRange(0, 3)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK_CAPTURE(BM_RobotFailure, dynamic, Algorithm::kDynamicDistributed)
    ->DenseRange(0, 3)->Iterations(1)->Unit(benchmark::kSecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_figure();
  return 0;
}
