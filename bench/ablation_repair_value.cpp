// E11 — what replacement buys: sensing-data yield over a full mission.
//
// The paper's premise (§1) is that replacing failed nodes keeps the sensing
// service alive, but its evaluation measures only the maintenance machinery.
// This bench measures the service: every sensor owes the sink one sample per
// minute; yield = delivered samples / owed samples. Three fleets compete on
// the same failure process — no repairs (robots without spares), the paper's
// dynamic fleet, and an oversized fleet — over the full 64 000 s horizon.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "core/data_collection.hpp"
#include "trace/log.hpp"

namespace {

using sensrep::core::Algorithm;
using sensrep::core::DataCollection;
using sensrep::core::Simulation;
using sensrep::core::SimulationConfig;

struct Scenario {
  const char* name;
  std::size_t robots;
  bool spares;  // false: robots carry nothing, repairs never happen
};

constexpr Scenario kScenarios[] = {
    {"no_repair", 4, false},
    {"paper_fleet_4", 4, true},
    {"double_fleet_8", 8, true},
};

struct Outcome {
  double yield = 0.0;
  double final_window_yield = 0.0;
  std::size_t failures = 0;
  std::size_t repaired = 0;
};

const Outcome& run_cached(std::size_t scenario) {
  static std::map<std::size_t, Outcome> cache;
  auto it = cache.find(scenario);
  if (it != cache.end()) return it->second;

  const Scenario& sc = kScenarios[scenario];
  SimulationConfig cfg;
  cfg.algorithm = Algorithm::kDynamicDistributed;
  cfg.robots = sc.robots;
  cfg.sensors_per_robot = 200 / sc.robots;  // same 200-sensor field everywhere
  cfg.area_per_robot = 160000.0 / static_cast<double>(sc.robots);  // 400x400 m
  cfg.seed = 1;
  cfg.sim_duration = 64000.0;

  // A fleet with empty racks and no depot: detection and dispatch still run,
  // but no replacement ever lands — the no-maintenance baseline.
  if (!sc.spares) cfg.robot_spares = 0;

  Simulation sim(cfg);
  DataCollection data(sim, {});
  data.sample_yield_every(2000.0);
  sim.run();

  Outcome out;
  out.yield = data.yield();
  out.final_window_yield = data.yield_timeline().empty()
                               ? data.yield()
                               : data.yield_timeline().points().back().second;
  const auto r = sim.result();
  out.failures = r.failures;
  out.repaired = r.repaired;
  return cache.emplace(scenario, out).first->second;
}

void BM_RepairValue(benchmark::State& state) {
  const auto scenario = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto& o = run_cached(scenario);
    state.counters["yield"] = o.yield;
    state.counters["final_window_yield"] = o.final_window_yield;
  }
  state.SetLabel(kScenarios[scenario].name);
}

void print_figure() {
  std::puts("\n=== E11: sensing-data yield over 64000 s (200 sensors, Exp(16000 s)) ===");
  std::puts("scenario         failures  repaired  mission_yield  final_window_yield");
  for (std::size_t s = 0; s < std::size(kScenarios); ++s) {
    const auto& o = run_cached(s);
    std::printf("%-15s  %8zu  %8zu  %13.4f  %18.4f\n", kScenarios[s].name, o.failures,
                o.repaired, o.yield, o.final_window_yield);
  }
  std::puts(
      "without repair the field decays toward zero yield (4 mean lifetimes elapse);\n"
      "the paper's small fleet holds the service near 100%");
}

}  // namespace

BENCHMARK(BM_RepairValue)->DenseRange(0, 2)->Iterations(1)->Unit(benchmark::kSecond);

int main(int argc, char** argv) {
  // The no-repair scenario drops every task by design; silence the warnings.
  sensrep::trace::Logger::global().set_threshold(sensrep::trace::Level::kError);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_figure();
  return 0;
}
