// E5 — robots-based replacement vs the mobile-sensor relocation baseline
// (Wang et al., INFOCOM'05), the related-work approach the paper's
// introduction argues against.
//
// The comparison replays the *same* failure workload (sites and order) the
// robot simulation served, through direct and cascading mobile-sensor
// relocation, and reports total motion energy (meters driven), worst
// single-node move, and healing makespan. Robots need fewer mobile units
// (the paper's cost argument); cascading keeps per-sensor moves small at a
// comparable total.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <vector>

#include "baseline/cascading_relocation.hpp"
#include "core/simulation.hpp"
#include "wsn/deployment.hpp"

namespace {

using sensrep::baseline::CascadingRelocation;
using sensrep::core::Algorithm;
using sensrep::core::SimulationConfig;

struct Comparison {
  double robot_total = 0.0;          // meters all robots drove (incl. queue legs)
  std::size_t robot_units = 0;       // mobile units needed (robots)
  CascadingRelocation::Totals direct;
  CascadingRelocation::Totals cascade;
  std::size_t mobile_units = 0;      // mobile units needed (every sensor)
  std::size_t failures = 0;
};

const Comparison& run_cached(std::size_t robots) {
  static std::map<std::size_t, Comparison> cache;
  auto it = cache.find(robots);
  if (it != cache.end()) return it->second;

  SimulationConfig cfg;
  cfg.algorithm = Algorithm::kDynamicDistributed;
  cfg.robots = robots;
  cfg.seed = 1;
  cfg.sim_duration = 64000.0;
  sensrep::core::Simulation sim(cfg);
  sim.run();
  const auto result = sim.result();

  // The exact workload the robots served, in failure order.
  std::vector<std::size_t> workload;
  for (const auto& rec : sim.failure_log().records()) {
    workload.push_back(rec.node_id);
  }

  // Same field layout; mobile-sensor network holds an extra 10% redundant
  // nodes to draw replacements from (Wang et al.'s setting).
  sensrep::sim::Rng layout_rng(cfg.seed);
  auto deploy_rng = layout_rng.fork("sensor-deploy");
  const auto positions =
      sensrep::wsn::uniform_deployment(deploy_rng, cfg.field_area(), cfg.sensor_count());

  CascadingRelocation::Config bcfg;
  bcfg.max_link = cfg.field.sensor_tx_range;
  bcfg.speed = cfg.robot_speed;

  Comparison cmp;
  cmp.robot_total = result.total_robot_distance;
  cmp.robot_units = robots;
  cmp.mobile_units = cfg.sensor_count() + cfg.sensor_count() / 10;
  cmp.failures = result.failures;

  // 10% of the network is redundant (Wang et al.'s setting). The mobile-
  // sensor scheme can only heal until the spare pool is exhausted — robots,
  // by contrast, carry (replenishable) spares and heal every failure. The
  // comparison is therefore normalized per healed hole.
  const std::size_t spares = cfg.sensor_count() / 10;

  CascadingRelocation direct_sim(positions, bcfg, sensrep::sim::Rng(7));
  direct_sim.designate_redundant(spares);
  cmp.direct = direct_sim.run_workload(workload, CascadingRelocation::Strategy::kDirect);

  CascadingRelocation cascade_sim(positions, bcfg, sensrep::sim::Rng(7));
  cascade_sim.designate_redundant(spares);
  cmp.cascade =
      cascade_sim.run_workload(workload, CascadingRelocation::Strategy::kCascading);

  return cache.emplace(robots, cmp).first->second;
}

void BM_Baseline(benchmark::State& state) {
  const auto robots = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto& c = run_cached(robots);
    state.counters["robot_total_m"] = c.robot_total;
    state.counters["mobile_direct_m"] = c.direct.total_distance;
    state.counters["mobile_cascade_m"] = c.cascade.total_distance;
  }
}

void print_figure() {
  std::puts("\n=== E5: robot replacement vs mobile-sensor relocation (10% redundancy) ===");
  std::puts(
      "robots  failures  robots:healed  robots:m/heal  direct:healed  direct:m/heal  "
      "cascade:m/heal  cascade:max-leg  mobile-units");
  for (const std::size_t robots : {4u, 9u, 16u}) {
    const auto& c = run_cached(robots);
    const auto per = [](double total, std::size_t n) {
      return n == 0 ? 0.0 : total / static_cast<double>(n);
    };
    std::printf("%6zu  %8zu  %13zu  %13.1f  %13zu  %13.1f  %14.1f  %15.1f  %12zu\n",
                robots, c.failures, c.failures, per(c.robot_total, c.failures),
                c.direct.healed, per(c.direct.total_distance, c.direct.healed),
                per(c.cascade.total_distance, c.cascade.healed), c.cascade.max_leg,
                c.mobile_units);
  }
  std::puts(
      "takeaway: robots heal EVERY failure with a handful of mobility-equipped units;\n"
      "the mobile-sensor scheme stops when its spare pool (10%) is exhausted, needs all\n"
      "nodes mobile, and cascading's value is bounding the per-node move (max-leg)");
}

}  // namespace

BENCHMARK(BM_Baseline)->Arg(4)->Arg(9)->Arg(16)->Iterations(1)->Unit(benchmark::kSecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_figure();
  return 0;
}
