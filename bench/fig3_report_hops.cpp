// Figure 3 — "The average message passing hops per failure" (paper §4.3.2).
//
// Paper expectation: the fixed and dynamic algorithms report to a robot
// ~100 m away, a flat ~2 hops regardless of network size (geographic routing
// with 63 m sensor radios). The centralized algorithm's failure reports grow
// with the field because the manager sits at the center; its repair requests
// take fewer hops than its reports because the manager's first hop rides the
// 250 m robot-class radio (TX-range asymmetry).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"

namespace {

using sensrep::bench::kRobotSweep;
using sensrep::bench::run_cached;
using sensrep::core::Algorithm;

void BM_Fig3(benchmark::State& state, Algorithm algorithm) {
  const auto robots = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto& r = run_cached(algorithm, robots);
    state.counters["report_hops"] = r.avg_report_hops;
    if (algorithm == Algorithm::kCentralized) {
      state.counters["request_hops"] = r.avg_request_hops;
    }
  }
}

void print_figure() {
  std::puts("\n=== Figure 3: average message passing hops per failure ===");
  std::puts(
      "robots  centralized:report  centralized:request  dynamic:report  fixed:report");
  for (const std::size_t robots : kRobotSweep) {
    const auto& c = run_cached(Algorithm::kCentralized, robots);
    const auto& f = run_cached(Algorithm::kFixedDistributed, robots);
    const auto& d = run_cached(Algorithm::kDynamicDistributed, robots);
    std::printf("%6zu  %18.2f  %19.2f  %14.2f  %12.2f\n", robots, c.avg_report_hops,
                c.avg_request_hops, d.avg_report_hops, f.avg_report_hops);
  }
  std::puts(
      "paper: fixed/dynamic flat ~2 hops; centralized grows with area, "
      "reports > requests (sensor 63m vs robot 250m radios)");
}

}  // namespace

BENCHMARK_CAPTURE(BM_Fig3, centralized, Algorithm::kCentralized)
    ->Arg(4)->Arg(9)->Arg(16)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK_CAPTURE(BM_Fig3, fixed, Algorithm::kFixedDistributed)
    ->Arg(4)->Arg(9)->Arg(16)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK_CAPTURE(BM_Fig3, dynamic, Algorithm::kDynamicDistributed)
    ->Arg(4)->Arg(9)->Arg(16)->Iterations(1)->Unit(benchmark::kSecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  // Fill the simulation cache across all cores before the timed section.
  sensrep::bench::warm_paper_grid();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_figure();
  return 0;
}
