// E12 — anticipatory repositioning (beyond the paper).
//
// The paper's on-demand mobility model parks a robot wherever its last
// repair ended (§4.1). Repositioning to the region centroid while idle
// trades return-trip motion (energy) for shorter dispatch legs (repair
// latency). This bench quantifies the trade for all three algorithms.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "core/simulation.hpp"

namespace {

using sensrep::core::Algorithm;
using sensrep::core::ExperimentResult;
using sensrep::core::SimulationConfig;

const ExperimentResult& run_cached(Algorithm algo, bool reposition) {
  static std::map<std::pair<Algorithm, bool>, ExperimentResult> cache;
  const auto key = std::make_pair(algo, reposition);
  auto it = cache.find(key);
  if (it == cache.end()) {
    SimulationConfig cfg;
    cfg.algorithm = algo;
    cfg.robots = 9;
    cfg.seed = 1;
    cfg.sim_duration = 32000.0;
    cfg.idle_reposition = reposition;
    sensrep::core::Simulation sim(cfg);
    sim.run();
    it = cache.emplace(key, sim.result()).first;
  }
  return it->second;
}

void BM_Reposition(benchmark::State& state, Algorithm algo, bool reposition) {
  for (auto _ : state) {
    const auto& r = run_cached(algo, reposition);
    state.counters["dispatch_travel_m"] = r.avg_travel_per_repair;
    state.counters["total_motion_m"] = r.total_robot_distance;
    state.counters["latency_avg_s"] = r.avg_repair_latency;
  }
}

void print_figure() {
  std::puts("\n=== E12: park-in-place (paper) vs idle repositioning, 9 robots ===");
  std::puts(
      "algorithm    idle-policy  dispatch_m/failure  latency_avg(s)  total_motion(m)  "
      "motion_kJ");
  for (const auto algo : {Algorithm::kCentralized, Algorithm::kFixedDistributed,
                          Algorithm::kDynamicDistributed}) {
    for (const bool reposition : {false, true}) {
      const auto& r = run_cached(algo, reposition);
      std::printf("%-11s  %-11s  %18.2f  %14.1f  %15.0f  %9.0f\n",
                  std::string(to_string(algo)).c_str(),
                  reposition ? "reposition" : "park",
                  r.avg_travel_per_repair, r.avg_repair_latency, r.total_robot_distance,
                  r.motion_energy_j / 1000.0);
    }
  }
  std::puts(
      "repositioning shortens the dispatch leg (and repair latency) at the price of\n"
      "return-trip motion — worthwhile when response time matters more than battery");
}

}  // namespace

BENCHMARK_CAPTURE(BM_Reposition, centralized_park, Algorithm::kCentralized, false)
    ->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK_CAPTURE(BM_Reposition, centralized_repo, Algorithm::kCentralized, true)
    ->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK_CAPTURE(BM_Reposition, fixed_park, Algorithm::kFixedDistributed, false)
    ->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK_CAPTURE(BM_Reposition, fixed_repo, Algorithm::kFixedDistributed, true)
    ->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK_CAPTURE(BM_Reposition, dynamic_park, Algorithm::kDynamicDistributed, false)
    ->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK_CAPTURE(BM_Reposition, dynamic_repo, Algorithm::kDynamicDistributed, true)
    ->Iterations(1)->Unit(benchmark::kSecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_figure();
  return 0;
}
