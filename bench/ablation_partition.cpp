// E4 — partition-shape ablation for the fixed distributed algorithm.
//
// Paper §4.3.1: "we only show the results for the square partition method,
// as other partition methods (e.g., hexagon partition) show negligible
// difference in the overheads." This bench checks that claim: square vs
// hexagon subareas at each robot count, motion + messaging side by side.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "core/simulation.hpp"

namespace {

using sensrep::core::Algorithm;
using sensrep::core::ExperimentResult;
using sensrep::core::PartitionShape;
using sensrep::core::SimulationConfig;

const ExperimentResult& run_cached(PartitionShape shape, std::size_t robots) {
  static std::map<std::pair<PartitionShape, std::size_t>, ExperimentResult> cache;
  const auto key = std::make_pair(shape, robots);
  auto it = cache.find(key);
  if (it == cache.end()) {
    SimulationConfig cfg;
    cfg.algorithm = Algorithm::kFixedDistributed;
    cfg.partition = shape;
    cfg.robots = robots;
    cfg.seed = 1;
    cfg.sim_duration = 64000.0;
    sensrep::core::Simulation sim(cfg);
    sim.run();
    it = cache.emplace(key, sim.result()).first;
  }
  return it->second;
}

void BM_Partition(benchmark::State& state, PartitionShape shape) {
  const auto robots = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto& r = run_cached(shape, robots);
    state.counters["travel_m_per_failure"] = r.avg_travel_per_repair;
    state.counters["update_tx_per_failure"] = r.location_update_tx_per_repair;
  }
}

void print_figure() {
  std::puts("\n=== E4: fixed algorithm, square vs hexagon subareas ===");
  std::puts("robots   square:travel  hex:travel   square:updtx  hex:updtx");
  for (const std::size_t robots : {4u, 9u, 16u}) {
    const auto& s = run_cached(PartitionShape::kSquare, robots);
    const auto& h = run_cached(PartitionShape::kHexagon, robots);
    std::printf("%6zu  %14.2f  %10.2f  %13.2f  %9.2f\n", robots,
                s.avg_travel_per_repair, h.avg_travel_per_repair,
                s.location_update_tx_per_repair, h.location_update_tx_per_repair);
  }
  std::puts("paper: negligible difference between partition shapes");
}

}  // namespace

BENCHMARK_CAPTURE(BM_Partition, square, PartitionShape::kSquare)
    ->Arg(4)->Arg(9)->Arg(16)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK_CAPTURE(BM_Partition, hexagon, PartitionShape::kHexagon)
    ->Arg(4)->Arg(9)->Arg(16)->Iterations(1)->Unit(benchmark::kSecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_figure();
  return 0;
}
