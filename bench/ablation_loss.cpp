// E7 — robustness under packet loss.
//
// The paper reports a 100% delivery ratio "due to the high density of sensor
// nodes and low traffic load" (§4.3.2) and builds on that for every other
// number. This bench stresses the assumption: Bernoulli per-reception loss
// with 802.11-style unicast ARQ, sweeping the loss probability and watching
// delivery ratio, repair completion, and messaging inflation.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "core/simulation.hpp"

namespace {

using sensrep::core::Algorithm;
using sensrep::core::ExperimentResult;
using sensrep::core::SimulationConfig;

const ExperimentResult& run_cached(Algorithm algo, int loss_pct) {
  static std::map<std::pair<Algorithm, int>, ExperimentResult> cache;
  const auto key = std::make_pair(algo, loss_pct);
  auto it = cache.find(key);
  if (it == cache.end()) {
    SimulationConfig cfg;
    cfg.algorithm = algo;
    cfg.robots = 4;
    cfg.seed = 1;
    cfg.sim_duration = 32000.0;
    cfg.radio.loss_probability = static_cast<double>(loss_pct) / 100.0;
    sensrep::core::Simulation sim(cfg);
    sim.run();
    it = cache.emplace(key, sim.result()).first;
  }
  return it->second;
}

void BM_Loss(benchmark::State& state, Algorithm algo) {
  const int loss_pct = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto& r = run_cached(algo, loss_pct);
    state.counters["delivery_ratio"] = r.delivery_ratio;
    state.counters["repaired_frac"] =
        r.failures == 0 ? 1.0
                        : static_cast<double>(r.repaired) / static_cast<double>(r.failures);
  }
}

void print_figure() {
  std::puts("\n=== E7: robustness under per-reception packet loss (4 robots) ===");
  std::puts("algorithm    loss%  delivery  repaired/failures  report_tx/failure");
  for (const auto algo : {Algorithm::kCentralized, Algorithm::kDynamicDistributed}) {
    for (const int loss : {0, 1, 5, 10}) {
      const auto& r = run_cached(algo, loss);
      const double report_tx =
          r.failures == 0
              ? 0.0
              : static_cast<double>(r.tx(sensrep::metrics::MessageCategory::kFailureReport)) /
                    static_cast<double>(r.failures);
      std::printf("%-11s  %5d  %8.4f  %17.4f  %17.2f\n",
                  std::string(to_string(algo)).c_str(), loss, r.delivery_ratio,
                  static_cast<double>(r.repaired) / static_cast<double>(r.failures),
                  report_tx);
    }
  }
  std::puts(
      "paper assumption: ~100% delivery at zero loss; ARQ keeps the pipeline alive under\n"
      "moderate loss at the cost of extra transmissions");
}

}  // namespace

BENCHMARK_CAPTURE(BM_Loss, centralized, Algorithm::kCentralized)
    ->Arg(0)->Arg(1)->Arg(5)->Arg(10)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK_CAPTURE(BM_Loss, dynamic, Algorithm::kDynamicDistributed)
    ->Arg(0)->Arg(1)->Arg(5)->Arg(10)->Iterations(1)->Unit(benchmark::kSecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_figure();
  return 0;
}
