// E10 — localization-error sensitivity (tests the paper's §2a assumption).
//
// The paper assumes perfect self-localization. Real deployments localize a
// 90% majority of nodes by multilaterating noisy ranges to a 10% anchor
// population, and geographic routing then runs on *estimated* coordinates
// while radio reachability is governed by *true* positions. This bench
// sweeps ranging noise and measures what survives: report delivery ratio
// and hop stretch over a paper-scale field.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "geometry/localization.hpp"
#include "metrics/counters.hpp"
#include "net/medium.hpp"
#include "routing/geo_router.hpp"
#include "wsn/deployment.hpp"

namespace {

using sensrep::geometry::LocalizationConfig;
using sensrep::geometry::Rect;
using sensrep::geometry::Vec2;
using sensrep::net::NodeId;
using sensrep::net::Packet;

struct Outcome {
  double delivery_ratio = 0.0;
  double avg_hops = 0.0;
  double mean_position_error = 0.0;
};

/// Routes 300 random sensor->sensor reports over a 450-node, 600x600 m field
/// (the paper's 9-robot density) with positions estimated at the given
/// ranging noise. Radio truth vs routing belief are kept separate.
Outcome run_noise(double range_noise) {
  static std::map<long long, Outcome> cache;
  const auto key = static_cast<long long>(range_noise * 100);
  if (auto it = cache.find(key); it != cache.end()) return it->second;

  const std::size_t n = 450;
  const double range = 63.0;
  sensrep::sim::Rng deploy_rng(1);
  const auto truth =
      sensrep::wsn::uniform_deployment(deploy_rng, Rect::sized(600, 600), n);

  LocalizationConfig lcfg;
  lcfg.range_noise_stddev = range_noise;
  sensrep::sim::Rng loc_rng(2);
  const auto loc = localize_field(truth, lcfg, loc_rng);

  sensrep::sim::Simulator simulator;
  sensrep::metrics::TransmissionCounters counters;
  sensrep::net::Medium medium(simulator, sensrep::sim::Rng(3), {}, counters, range);

  struct Node {
    Vec2 believed;
    sensrep::routing::NeighborTable table;
    std::unique_ptr<sensrep::routing::GeoRouter> router;
    std::size_t delivered = 0;
    std::uint64_t hops = 0;
  };
  std::vector<std::unique_ptr<Node>> nodes;
  for (NodeId i = 0; i < n; ++i) {
    auto node = std::make_unique<Node>();
    node->believed = loc.estimated[i];
    Node* raw = node.get();
    sensrep::routing::GeoRouter::Callbacks cb;
    cb.deliver = [raw](const Packet& pkt) {
      ++raw->delivered;
      raw->hops += pkt.hops;
    };
    node->router = std::make_unique<sensrep::routing::GeoRouter>(
        i, medium, node->table, [raw] { return raw->believed; }, std::move(cb));
    // Radio truth: attached at the TRUE position.
    medium.attach(i, truth[i], range, [raw](const Packet& pkt, NodeId from) {
      raw->router->on_receive(pkt, from);
    });
    nodes.push_back(std::move(node));
  }
  // Tables carry believed coordinates of truly-in-range neighbors (what
  // location announcements would deliver).
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && distance(truth[i], truth[j]) <= range) {
        nodes[i]->table.upsert(static_cast<NodeId>(j), loc.estimated[j]);
      }
    }
  }

  sensrep::sim::Rng pick(4);
  std::size_t sent = 0, delivered_total = 0;
  std::uint64_t hops_total = 0;
  for (int t = 0; t < 300; ++t) {
    const auto src = static_cast<std::size_t>(pick.below(n));
    const auto dst = static_cast<std::size_t>(pick.below(n));
    if (src == dst) continue;
    Packet pkt;
    pkt.type = sensrep::net::PacketType::kFailureReport;
    pkt.payload = sensrep::net::FailureReportPayload{};
    pkt.dst = static_cast<NodeId>(dst);
    pkt.dst_location = loc.estimated[dst];  // believed target position
    pkt.ttl = 256;
    const auto before = nodes[dst]->delivered;
    const auto hops_before = nodes[dst]->hops;
    nodes[src]->router->send(std::move(pkt));
    simulator.run_all();
    ++sent;
    if (nodes[dst]->delivered > before) {
      ++delivered_total;
      hops_total += nodes[dst]->hops - hops_before;
    }
  }

  Outcome out;
  out.delivery_ratio = static_cast<double>(delivered_total) / static_cast<double>(sent);
  out.avg_hops = delivered_total == 0
                     ? 0.0
                     : static_cast<double>(hops_total) / static_cast<double>(delivered_total);
  out.mean_position_error = loc.mean_error;
  cache[key] = out;
  return out;
}

void BM_Localization(benchmark::State& state) {
  const double noise = static_cast<double>(state.range(0));
  for (auto _ : state) {
    const auto o = run_noise(noise);
    state.counters["delivery_ratio"] = o.delivery_ratio;
    state.counters["avg_hops"] = o.avg_hops;
    state.counters["pos_error_m"] = o.mean_position_error;
  }
}

void print_figure() {
  std::puts("\n=== E10: geographic routing vs localization error (450 nodes, 10% anchors) ===");
  std::puts("range_noise(m)  pos_error(m)  delivery  avg_hops");
  for (const double noise : {0.0, 2.0, 5.0, 10.0, 20.0}) {
    const auto o = run_noise(noise);
    std::printf("%14.0f  %12.2f  %8.3f  %8.2f\n", noise, o.mean_position_error,
                o.delivery_ratio, o.avg_hops);
  }
  std::puts(
      "greedy+face routing degrades gracefully: position errors well below the 63 m\n"
      "radio range cost a little stretch; errors comparable to the range break the\n"
      "paper's location-service assumption");
}

}  // namespace

BENCHMARK(BM_Localization)->Arg(0)->Arg(2)->Arg(5)->Arg(10)->Arg(20)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_figure();
  return 0;
}
