// E18 — bursty loss vs uniform loss at the same average rate.
//
// E7 established that Bernoulli loss barely dents the repair pipeline: ARQ
// absorbs independent drops. Real interference is not independent — losses
// cluster. This bench holds the *average* loss rate fixed and moves it from
// a uniform Bernoulli process into a Gilbert-Elliott two-state chain
// (stationary bad share 25%, in-burst loss 4x the average), asking whether
// the three coordination algorithms care about the loss *distribution* or
// only its mean. Bursts defeat back-to-back ARQ retries — the retry lands
// in the same bad state that ate the original — so report delivery, not
// raw transmission count, is where the difference shows.
//
// Chain parameters: p_enter=0.05, p_exit=0.15 -> bad share
// 0.05/(0.05+0.15) = 0.25, E[burst length] = 1/0.15 ~ 6.7 receptions.
// loss_bad = 4 * average (loss_good = 0) keeps the stationary mean equal
// to the Bernoulli arm at every sweep point.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>
#include <tuple>

#include "core/simulation.hpp"

namespace {

using sensrep::core::Algorithm;
using sensrep::core::ExperimentResult;
using sensrep::core::SimulationConfig;

const ExperimentResult& run_cached(Algorithm algo, int loss_pct, bool bursty) {
  static std::map<std::tuple<Algorithm, int, bool>, ExperimentResult> cache;
  const auto key = std::make_tuple(algo, loss_pct, bursty);
  auto it = cache.find(key);
  if (it == cache.end()) {
    SimulationConfig cfg;
    cfg.algorithm = algo;
    cfg.robots = 4;
    cfg.seed = 1;
    cfg.sim_duration = 32000.0;
    const double avg = static_cast<double>(loss_pct) / 100.0;
    if (bursty) {
      cfg.radio.chaos.burst.enabled = true;
      cfg.radio.chaos.burst.p_enter_bad = 0.05;
      cfg.radio.chaos.burst.p_exit_bad = 0.15;
      cfg.radio.chaos.burst.loss_bad = 4.0 * avg;  // stationary mean == avg
      cfg.radio.chaos.burst.loss_good = 0.0;
    } else {
      cfg.radio.loss_probability = avg;
    }
    sensrep::core::Simulation sim(cfg);
    sim.run();
    it = cache.emplace(key, sim.result()).first;
  }
  return it->second;
}

void BM_BurstLoss(benchmark::State& state, Algorithm algo, bool bursty) {
  const int loss_pct = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto& r = run_cached(algo, loss_pct, bursty);
    state.counters["delivery_ratio"] = r.delivery_ratio;
    state.counters["repaired_frac"] =
        r.failures == 0 ? 1.0
                        : static_cast<double>(r.repaired) / static_cast<double>(r.failures);
  }
}

void print_figure() {
  std::puts("\n=== E18: bursty (Gilbert-Elliott) vs uniform loss, equal average rate ===");
  std::puts("algorithm    avg%  shape     delivery  repaired/failures  repair_lat_s");
  for (const auto algo : {Algorithm::kCentralized, Algorithm::kFixedDistributed,
                          Algorithm::kDynamicDistributed}) {
    for (const int loss : {2, 5, 10}) {
      for (const bool bursty : {false, true}) {
        const auto& r = run_cached(algo, loss, bursty);
        std::printf("%-11s  %4d  %-8s  %8.4f  %17.4f  %12.1f\n",
                    std::string(to_string(algo)).c_str(), loss,
                    bursty ? "burst" : "uniform", r.delivery_ratio,
                    static_cast<double>(r.repaired) / static_cast<double>(r.failures),
                    r.avg_repair_latency);
      }
    }
  }
  std::puts(
      "same mean, different distribution: burst-clustered drops defeat consecutive ARQ\n"
      "retries, so delivery sags faster than the Bernoulli arm at equal average loss");
}

}  // namespace

BENCHMARK_CAPTURE(BM_BurstLoss, centralized_uniform, Algorithm::kCentralized, false)
    ->Arg(2)->Arg(5)->Arg(10)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK_CAPTURE(BM_BurstLoss, centralized_burst, Algorithm::kCentralized, true)
    ->Arg(2)->Arg(5)->Arg(10)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK_CAPTURE(BM_BurstLoss, fixed_uniform, Algorithm::kFixedDistributed, false)
    ->Arg(2)->Arg(5)->Arg(10)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK_CAPTURE(BM_BurstLoss, fixed_burst, Algorithm::kFixedDistributed, true)
    ->Arg(2)->Arg(5)->Arg(10)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK_CAPTURE(BM_BurstLoss, dynamic_uniform, Algorithm::kDynamicDistributed, false)
    ->Arg(2)->Arg(5)->Arg(10)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK_CAPTURE(BM_BurstLoss, dynamic_burst, Algorithm::kDynamicDistributed, true)
    ->Arg(2)->Arg(5)->Arg(10)->Iterations(1)->Unit(benchmark::kSecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_figure();
  return 0;
}
