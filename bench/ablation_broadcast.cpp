// E6 — efficient-broadcast ablation (paper §4.3.2 / §6 future work).
//
// The paper notes the distributed algorithms' location-update cost "can be
// reduced by using more efficient broadcast schemes (e.g. [12]) which
// require only a subset of the sensors in each subarea to relay". This
// bench turns on a Wu-Li style self-pruning relay (a sensor relays only if
// one of its neighbors was not covered by the transmission it heard) and
// also sweeps the dynamic algorithm's relay fringe.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <tuple>

#include "core/simulation.hpp"

namespace {

using sensrep::core::Algorithm;
using sensrep::core::ExperimentResult;
using sensrep::core::SimulationConfig;

const ExperimentResult& run_cached(Algorithm algo, bool efficient, double fringe) {
  static std::map<std::tuple<Algorithm, bool, long long>, ExperimentResult> cache;
  const auto key = std::make_tuple(algo, efficient, static_cast<long long>(fringe));
  auto it = cache.find(key);
  if (it == cache.end()) {
    SimulationConfig cfg;
    cfg.algorithm = algo;
    cfg.robots = 9;
    cfg.seed = 1;
    cfg.sim_duration = 64000.0;
    cfg.efficient_broadcast = efficient;
    cfg.dynamic_fringe = fringe;
    sensrep::core::Simulation sim(cfg);
    sim.run();
    it = cache.emplace(key, sim.result()).first;
  }
  return it->second;
}

void BM_Broadcast(benchmark::State& state, Algorithm algo, bool efficient) {
  for (auto _ : state) {
    const auto& r = run_cached(algo, efficient, 20.0);
    state.counters["update_tx_per_failure"] = r.location_update_tx_per_repair;
    state.counters["delivery_ratio"] = r.delivery_ratio;
  }
}

void print_figure() {
  std::puts("\n=== E6: location-update transmissions per failure, 9 robots ===");
  std::puts("algorithm  relay-scheme      update_tx/failure  delivery_ratio");
  for (const auto algo : {Algorithm::kFixedDistributed, Algorithm::kDynamicDistributed}) {
    for (const bool efficient : {false, true}) {
      const auto& r = run_cached(algo, efficient, 20.0);
      std::printf("%-9s  %-16s  %17.2f  %14.4f\n",
                  std::string(to_string(algo)).c_str(),
                  efficient ? "self-pruning" : "blind-flood",
                  r.location_update_tx_per_repair, r.delivery_ratio);
    }
  }
  std::puts("\n--- dynamic fringe sweep (blind flood) ---");
  std::puts("fringe_m  update_tx/failure  delivery_ratio  travel_m");
  for (const double fringe : {0.0, 20.0, 63.0}) {
    const auto& r = run_cached(Algorithm::kDynamicDistributed, false, fringe);
    std::printf("%8.0f  %17.2f  %14.4f  %8.2f\n", fringe,
                r.location_update_tx_per_repair, r.delivery_ratio,
                r.avg_travel_per_repair);
  }
  std::puts(
      "paper: a relay subset cuts distributed update cost without hurting delivery");
}

}  // namespace

BENCHMARK_CAPTURE(BM_Broadcast, fixed_blind, Algorithm::kFixedDistributed, false)
    ->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK_CAPTURE(BM_Broadcast, fixed_pruned, Algorithm::kFixedDistributed, true)
    ->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK_CAPTURE(BM_Broadcast, dynamic_blind, Algorithm::kDynamicDistributed, false)
    ->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK_CAPTURE(BM_Broadcast, dynamic_pruned, Algorithm::kDynamicDistributed, true)
    ->Iterations(1)->Unit(benchmark::kSecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_figure();
  return 0;
}
