// E9 — dispatch-policy ablation (beyond the paper).
//
// The paper's centralized manager always picks the geometrically closest
// robot (§3.1) and robots serve FCFS. Under load (short lifetimes, bursty
// Weibull wear-out) that piles tasks onto whichever robot sits nearest a
// failure cluster while others idle. Queue-aware dispatch charges each
// outstanding task one expected service leg; robots piggyback their backlog
// on location updates. This bench compares repair latency under increasing
// pressure.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "core/simulation.hpp"

namespace {

using sensrep::core::Algorithm;
using sensrep::core::ExperimentResult;
using sensrep::core::SimulationConfig;

const ExperimentResult& run_cached(bool queue_aware, double mean_lifetime) {
  static std::map<std::pair<bool, long long>, ExperimentResult> cache;
  const auto key = std::make_pair(queue_aware, static_cast<long long>(mean_lifetime));
  auto it = cache.find(key);
  if (it == cache.end()) {
    SimulationConfig cfg;
    cfg.algorithm = Algorithm::kCentralized;
    cfg.robots = 9;
    cfg.seed = 1;
    cfg.sim_duration = 32000.0;
    cfg.field.lifetime.mean = mean_lifetime;
    cfg.queue_aware_dispatch = queue_aware;
    sensrep::core::Simulation sim(cfg);
    sim.run();
    it = cache.emplace(key, sim.result()).first;
  }
  return it->second;
}

void BM_Dispatch(benchmark::State& state, bool queue_aware) {
  const auto lifetime = static_cast<double>(state.range(0));
  for (auto _ : state) {
    const auto& r = run_cached(queue_aware, lifetime);
    state.counters["latency_p95_s"] = r.p95_repair_latency;
    state.counters["latency_avg_s"] = r.avg_repair_latency;
  }
}

void print_figure() {
  std::puts("\n=== E9: closest-robot FCFS vs queue-aware dispatch (centralized, 9 robots) ===");
  std::puts(
      "mean_lifetime(s)  policy       repaired  latency_avg(s)  latency_p95(s)  travel(m)");
  for (const double lifetime : {16000.0, 8000.0, 4000.0}) {
    for (const bool qa : {false, true}) {
      const auto& r = run_cached(qa, lifetime);
      std::printf("%16.0f  %-11s  %8zu  %14.1f  %14.1f  %9.2f\n", lifetime,
                  qa ? "queue-aware" : "closest", r.repaired, r.avg_repair_latency,
                  r.p95_repair_latency, r.avg_travel_per_repair);
    }
  }
  std::puts(
      "finding: below saturation queue-aware cuts the latency tail (p95) markedly for\n"
      "the same travel; past saturation (4000 s lifetimes) it backfires — distance\n"
      "efficiency, not balance, bounds throughput when every robot is always busy");
}

}  // namespace

BENCHMARK_CAPTURE(BM_Dispatch, closest, false)
    ->Arg(16000)->Arg(8000)->Arg(4000)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK_CAPTURE(BM_Dispatch, queue_aware, true)
    ->Arg(16000)->Arg(8000)->Arg(4000)->Iterations(1)->Unit(benchmark::kSecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_figure();
  return 0;
}
