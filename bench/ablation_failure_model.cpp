// E8 — lifetime-distribution ablation (beyond the paper).
//
// The paper assumes Exp(T) sensor lifetimes, which makes failures a steady
// memoryless stream — the friendliest case for a small robot fleet. Real
// hardware wears out (Weibull, shape > 1) or drains same-batch batteries
// near-simultaneously: failures then arrive in bursts, robot queues build,
// and repair latency degrades even at the same *mean* failure rate. This
// bench holds E[lifetime] fixed and sweeps the distribution.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "core/simulation.hpp"

namespace {

using sensrep::core::Algorithm;
using sensrep::core::ExperimentResult;
using sensrep::core::SimulationConfig;
using sensrep::wsn::LifetimeDistribution;

struct Variant {
  const char* name;
  LifetimeDistribution distribution;
  double shape_or_jitter;
};

constexpr Variant kVariants[] = {
    {"exponential", LifetimeDistribution::kExponential, 0.0},
    {"weibull_k3", LifetimeDistribution::kWeibull, 3.0},
    {"weibull_k6", LifetimeDistribution::kWeibull, 6.0},
    {"battery_10pct", LifetimeDistribution::kBatteryLinear, 0.1},
};

const ExperimentResult& run_cached(std::size_t variant) {
  static std::map<std::size_t, ExperimentResult> cache;
  auto it = cache.find(variant);
  if (it == cache.end()) {
    const Variant& v = kVariants[variant];
    SimulationConfig cfg;
    cfg.algorithm = Algorithm::kDynamicDistributed;
    cfg.robots = 9;
    cfg.seed = 1;
    cfg.sim_duration = 64000.0;
    cfg.field.lifetime.distribution = v.distribution;
    if (v.distribution == LifetimeDistribution::kWeibull) {
      cfg.field.lifetime.weibull_shape = v.shape_or_jitter;
    } else if (v.distribution == LifetimeDistribution::kBatteryLinear) {
      cfg.field.lifetime.battery_jitter = v.shape_or_jitter;
    }
    sensrep::core::Simulation sim(cfg);
    sim.run();
    it = cache.emplace(variant, sim.result()).first;
  }
  return it->second;
}

void BM_FailureModel(benchmark::State& state) {
  const auto variant = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto& r = run_cached(variant);
    state.counters["repair_latency_avg_s"] = r.avg_repair_latency;
    state.counters["repair_latency_p95_s"] = r.p95_repair_latency;
  }
  state.SetLabel(kVariants[variant].name);
}

void print_figure() {
  std::puts("\n=== E8: lifetime distribution vs repair pipeline (dynamic, 9 robots) ===");
  std::puts(
      "distribution    failures  repaired  latency_avg(s)  latency_p95(s)  travel(m)");
  for (std::size_t v = 0; v < std::size(kVariants); ++v) {
    const auto& r = run_cached(v);
    std::printf("%-14s  %8zu  %8zu  %14.1f  %14.1f  %9.2f\n", kVariants[v].name,
                r.failures, r.repaired, r.avg_repair_latency, r.p95_repair_latency,
                r.avg_travel_per_repair);
  }
  std::puts(
      "same mean lifetime everywhere; tighter distributions synchronize failures into\n"
      "bursts that queue the robots (p95 latency is the tell)");
}

}  // namespace

BENCHMARK(BM_FailureModel)->DenseRange(0, 3)->Iterations(1)->Unit(benchmark::kSecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_figure();
  return 0;
}
