// Figure 2 — "The average robot traveling distance as a function of the
// number of robots" (paper §4.3.1, motion overhead).
//
// Paper expectation: the dynamic and centralized algorithms track each other
// closely; the fixed algorithm travels farther because a failure is served
// by the subarea's robot even when a neighbor subarea's robot is closer
// (~10.8% dynamic saving at 16 robots in the paper).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"

namespace {

using sensrep::bench::kRobotSweep;
using sensrep::bench::run_cached;
using sensrep::core::Algorithm;

void BM_Fig2(benchmark::State& state, Algorithm algorithm) {
  const auto robots = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto& r = run_cached(algorithm, robots);
    state.counters["travel_m_per_failure"] = r.avg_travel_per_repair;
    state.counters["failures"] = static_cast<double>(r.failures);
    state.counters["repaired"] = static_cast<double>(r.repaired);
  }
}

void print_figure() {
  std::puts("\n=== Figure 2: average robot traveling distance per failure (m) ===");
  std::puts("robots  centralized     fixed   dynamic   dyn-vs-fixed");
  for (const std::size_t robots : kRobotSweep) {
    const double c = run_cached(Algorithm::kCentralized, robots).avg_travel_per_repair;
    const double f = run_cached(Algorithm::kFixedDistributed, robots).avg_travel_per_repair;
    const double d = run_cached(Algorithm::kDynamicDistributed, robots).avg_travel_per_repair;
    std::printf("%6zu  %11.2f  %8.2f  %8.2f   %+9.1f%%\n", robots, c, f, d,
                (d - f) / f * 100.0);
  }
  std::puts("paper: dynamic ~= centralized < fixed (dynamic saves ~10.8% vs fixed @16)");
}

}  // namespace

BENCHMARK_CAPTURE(BM_Fig2, centralized, Algorithm::kCentralized)
    ->Arg(4)->Arg(9)->Arg(16)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK_CAPTURE(BM_Fig2, fixed, Algorithm::kFixedDistributed)
    ->Arg(4)->Arg(9)->Arg(16)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK_CAPTURE(BM_Fig2, dynamic, Algorithm::kDynamicDistributed)
    ->Arg(4)->Arg(9)->Arg(16)->Iterations(1)->Unit(benchmark::kSecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  // Fill the simulation cache across all cores before the timed section.
  sensrep::bench::warm_paper_grid();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_figure();
  return 0;
}
