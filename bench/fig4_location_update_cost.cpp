// Figure 4 — "The average number of transmissions for location update per
// failure" (paper §4.3.2, messaging overhead of robot location updates).
//
// Paper expectation: the centralized algorithm is cheap (a geo-routed
// unicast to the manager plus a one-hop broadcast per 20 m leg); the two
// distributed algorithms flood each update through the robot's subarea /
// Voronoi cell, costing two orders of magnitude more, with dynamic slightly
// above fixed (potential myrobot switchers in neighbor cells also relay).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"

namespace {

using sensrep::bench::kRobotSweep;
using sensrep::bench::run_cached;
using sensrep::core::Algorithm;

void BM_Fig4(benchmark::State& state, Algorithm algorithm) {
  const auto robots = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto& r = run_cached(algorithm, robots);
    state.counters["update_tx_per_failure"] = r.location_update_tx_per_repair;
    state.counters["update_tx_total"] = static_cast<double>(
        r.tx(sensrep::metrics::MessageCategory::kLocationUpdate));
  }
}

void print_figure() {
  std::puts(
      "\n=== Figure 4: average number of transmissions for location update per failure ===");
  std::puts("robots     dynamic       fixed  centralized");
  for (const std::size_t robots : kRobotSweep) {
    const auto& c = run_cached(Algorithm::kCentralized, robots);
    const auto& f = run_cached(Algorithm::kFixedDistributed, robots);
    const auto& d = run_cached(Algorithm::kDynamicDistributed, robots);
    std::printf("%6zu  %10.2f  %10.2f  %11.2f\n", robots,
                d.location_update_tx_per_repair, f.location_update_tx_per_repair,
                c.location_update_tx_per_repair);
  }
  std::puts("paper: dynamic >= fixed >> centralized");
}

}  // namespace

BENCHMARK_CAPTURE(BM_Fig4, centralized, Algorithm::kCentralized)
    ->Arg(4)->Arg(9)->Arg(16)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK_CAPTURE(BM_Fig4, fixed, Algorithm::kFixedDistributed)
    ->Arg(4)->Arg(9)->Arg(16)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK_CAPTURE(BM_Fig4, dynamic, Algorithm::kDynamicDistributed)
    ->Arg(4)->Arg(9)->Arg(16)->Iterations(1)->Unit(benchmark::kSecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  // Fill the simulation cache across all cores before the timed section.
  sensrep::bench::warm_paper_grid();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_figure();
  return 0;
}
