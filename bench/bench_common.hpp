#pragma once

// Shared helpers for the figure-regeneration benches.
//
// Every bench binary reproduces one artifact of the paper's evaluation
// (§4.3): it sweeps the robot counts of the x-axis, runs the full
// packet-level simulation at the paper's parameters, and prints the series
// the figure plots, next to the paper's qualitative expectation. Absolute
// numbers differ from the paper's GloMoSim testbed; the orderings and trends
// are the reproduction target (see EXPERIMENTS.md).

#include <map>
#include <tuple>

#include "core/simulation.hpp"

namespace sensrep::bench {

/// Paper §4.1 sweep: k^2 maintenance robots.
inline constexpr std::size_t kRobotSweep[] = {4, 9, 16};

/// One full paper-parameter run, memoized so the figure table and the
/// google-benchmark timings reuse the same simulation.
inline const core::ExperimentResult& run_cached(core::Algorithm algorithm,
                                                std::size_t robots,
                                                std::uint64_t seed = 1,
                                                double duration = 64000.0) {
  using Key = std::tuple<core::Algorithm, std::size_t, std::uint64_t, long long>;
  static std::map<Key, core::ExperimentResult> cache;
  const Key key{algorithm, robots, seed, static_cast<long long>(duration)};
  auto it = cache.find(key);
  if (it == cache.end()) {
    core::SimulationConfig cfg;
    cfg.algorithm = algorithm;
    cfg.robots = robots;
    cfg.seed = seed;
    cfg.sim_duration = duration;
    core::Simulation sim(cfg);
    sim.run();
    it = cache.emplace(key, sim.result()).first;
  }
  return it->second;
}

}  // namespace sensrep::bench
