#pragma once

// Shared helpers for the figure-regeneration benches.
//
// Every bench binary reproduces one artifact of the paper's evaluation
// (§4.3): it sweeps the robot counts of the x-axis, runs the full
// packet-level simulation at the paper's parameters, and prints the series
// the figure plots, next to the paper's qualitative expectation. Absolute
// numbers differ from the paper's GloMoSim testbed; the orderings and trends
// are the reproduction target (see EXPERIMENTS.md).

#include <bit>
#include <cstdint>
#include <map>
#include <mutex>
#include <tuple>
#include <vector>

#include "core/simulation.hpp"
#include "runner/executor.hpp"
#include "trace/format.hpp"

namespace sensrep::bench {

/// Paper §4.1 sweep: k^2 maintenance robots.
inline constexpr std::size_t kRobotSweep[] = {4, 9, 16};

namespace detail {

// Duration is keyed on its exact bit pattern — truncating to an integer
// would collide e.g. 8000.2 and 8000.9 into one cache slot.
using CacheKey = std::tuple<core::Algorithm, std::size_t, std::uint64_t, std::uint64_t>;

inline CacheKey make_key(core::Algorithm algorithm, std::size_t robots,
                         std::uint64_t seed, double duration) {
  return {algorithm, robots, seed, std::bit_cast<std::uint64_t>(duration)};
}

inline core::SimulationConfig make_config(core::Algorithm algorithm, std::size_t robots,
                                          std::uint64_t seed, double duration) {
  core::SimulationConfig cfg;
  cfg.algorithm = algorithm;
  cfg.robots = robots;
  cfg.seed = seed;
  cfg.sim_duration = duration;
  return cfg;
}

// std::map keeps node addresses stable across inserts, so run_cached can
// hand out references that outlive later fills.
inline std::map<CacheKey, core::ExperimentResult>& cache() {
  static std::map<CacheKey, core::ExperimentResult> c;
  return c;
}

inline std::mutex& cache_mu() {
  static std::mutex mu;
  return mu;
}

}  // namespace detail

/// One full paper-parameter run, memoized so the figure table and the
/// google-benchmark timings reuse the same simulation. Thread-safe; a miss
/// runs outside the lock (two concurrent misses on the same key both run,
/// deterministically, and the first insert wins).
inline const core::ExperimentResult& run_cached(core::Algorithm algorithm,
                                                std::size_t robots,
                                                std::uint64_t seed = 1,
                                                double duration = 64000.0) {
  const auto key = detail::make_key(algorithm, robots, seed, duration);
  {
    const std::lock_guard lock(detail::cache_mu());
    const auto it = detail::cache().find(key);
    if (it != detail::cache().end()) return it->second;
  }
  core::Simulation sim(detail::make_config(algorithm, robots, seed, duration));
  sim.run();
  auto result = sim.result();
  const std::lock_guard lock(detail::cache_mu());
  return detail::cache().emplace(key, std::move(result)).first->second;
}

/// One cache cell to prefill.
struct CacheEntry {
  core::Algorithm algorithm = core::Algorithm::kCentralized;
  std::size_t robots = 4;
  std::uint64_t seed = 1;
  double duration = 64000.0;
};

/// Fills the memo cache for `entries` through the runner executor
/// (jobs = 0 means hardware concurrency), skipping cells already cached.
/// Figure benches call this before the timed section so the expensive cache
/// fill uses every core; a cell that fails to run is left uncached and will
/// surface its exception from the serial run_cached path instead.
inline void warm_cache(const std::vector<CacheEntry>& entries, std::size_t jobs = 0) {
  std::vector<runner::Job> pending;
  std::vector<detail::CacheKey> keys;
  for (const auto& e : entries) {
    const auto key = detail::make_key(e.algorithm, e.robots, e.seed, e.duration);
    {
      const std::lock_guard lock(detail::cache_mu());
      if (detail::cache().contains(key)) continue;
    }
    runner::Job job;
    job.index = pending.size();
    job.label = trace::strfmt("%s r=%zu seed=%llu",
                              std::string(core::to_string(e.algorithm)).c_str(),
                              e.robots, static_cast<unsigned long long>(e.seed));
    job.config = detail::make_config(e.algorithm, e.robots, e.seed, e.duration);
    pending.push_back(std::move(job));
    keys.push_back(key);
  }
  if (pending.empty()) return;

  runner::ExecutorOptions options;
  options.jobs = jobs;
  runner::Executor executor(options);
  auto batch = executor.run(pending, &runner::Executor::run_simulation);

  const std::lock_guard lock(detail::cache_mu());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (batch.results[i]) {
      detail::cache().emplace(keys[i], std::move(*batch.results[i]));
    }
  }
}

/// Prefills the paper's full §4.3 grid: every algorithm x kRobotSweep cell
/// at the default seed and horizon.
inline void warm_paper_grid(std::size_t jobs = 0) {
  std::vector<CacheEntry> entries;
  for (const auto algorithm :
       {core::Algorithm::kCentralized, core::Algorithm::kFixedDistributed,
        core::Algorithm::kDynamicDistributed}) {
    for (const std::size_t robots : kRobotSweep) {
      entries.push_back({algorithm, robots, 1, 64000.0});
    }
  }
  warm_cache(entries, jobs);
}

}  // namespace sensrep::bench
