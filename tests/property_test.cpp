// Property-based suites (parameterized gtest): invariants that must hold
// across randomized topologies, seeds, densities and algorithms —
// the GFG delivery guarantee, Voronoi tiling, failure-record timeline
// monotonicity, transmission-accounting conservation, and replay determinism.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/simulation.hpp"
#include "geometry/voronoi.hpp"
#include "net/medium.hpp"
#include "routing/geo_router.hpp"
#include "routing/planarizer.hpp"
#include "sim/rng.hpp"
#include "wsn/deployment.hpp"

namespace sensrep {
namespace {

using geometry::Rect;
using geometry::Vec2;
using net::NodeId;
using net::Packet;

// --- GFG delivery guarantee across densities and seeds -----------------------------

struct TopologyParam {
  std::uint64_t seed;
  std::size_t nodes;
  double range;
};

class GeoRoutingProperty : public ::testing::TestWithParam<TopologyParam> {};

/// Union-find over the unit-disk graph to know ground-truth connectivity.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) x = parent_[x] = parent_[parent_[x]];
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

TEST_P(GeoRoutingProperty, DeliversIffConnected) {
  const auto p = GetParam();
  sim::Rng rng(p.seed);
  const Rect area = Rect::sized(300, 300);
  const auto pts = wsn::uniform_deployment(rng, area, p.nodes);

  UnionFind uf(p.nodes);
  for (std::size_t i = 0; i < p.nodes; ++i) {
    for (std::size_t j = i + 1; j < p.nodes; ++j) {
      if (geometry::distance(pts[i], pts[j]) <= p.range) uf.unite(i, j);
    }
  }

  sim::Simulator simulator;
  metrics::TransmissionCounters counters;
  net::Medium medium(simulator, sim::Rng(p.seed + 1), {}, counters, p.range);

  struct Node {
    Vec2 pos;
    routing::NeighborTable table;
    std::unique_ptr<routing::GeoRouter> router;
    std::size_t delivered = 0;
  };
  std::vector<std::unique_ptr<Node>> nodes;
  for (NodeId i = 0; i < p.nodes; ++i) {
    auto n = std::make_unique<Node>();
    n->pos = pts[i];
    Node* raw = n.get();
    routing::GeoRouter::Callbacks cb;
    cb.deliver = [raw](const Packet&) { ++raw->delivered; };
    n->router = std::make_unique<routing::GeoRouter>(
        i, medium, n->table, [raw] { return raw->pos; }, std::move(cb));
    medium.attach(i, pts[i], p.range, [raw](const Packet& pkt, NodeId from) {
      raw->router->on_receive(pkt, from);
    });
    nodes.push_back(std::move(n));
  }
  for (std::size_t i = 0; i < p.nodes; ++i) {
    for (std::size_t j = 0; j < p.nodes; ++j) {
      if (i != j && geometry::distance(pts[i], pts[j]) <= p.range) {
        nodes[i]->table.upsert(static_cast<NodeId>(j), pts[j]);
      }
    }
  }

  // Sample src/dst pairs; every *connected* pair must deliver (GFG
  // guarantee on the Gabriel-planarized unit-disk graph); disconnected
  // pairs must not.
  sim::Rng pick(p.seed + 2);
  std::size_t expected = 0, attempted = 0;
  std::vector<std::size_t> before(p.nodes);
  for (int trial = 0; trial < 40; ++trial) {
    const auto src = static_cast<std::size_t>(pick.below(p.nodes));
    const auto dst = static_cast<std::size_t>(pick.below(p.nodes));
    if (src == dst) continue;
    Packet pkt;
    pkt.type = net::PacketType::kFailureReport;
    pkt.payload = net::FailureReportPayload{};
    pkt.dst = static_cast<NodeId>(dst);
    pkt.dst_location = pts[dst];
    pkt.ttl = 4 * static_cast<std::uint32_t>(p.nodes);
    before[dst] = nodes[dst]->delivered;
    nodes[src]->router->send(std::move(pkt));
    simulator.run_all();
    const bool connected = uf.find(src) == uf.find(dst);
    const bool delivered = nodes[dst]->delivered > before[dst];
    EXPECT_EQ(delivered, connected)
        << "src=" << src << " dst=" << dst << " seed=" << p.seed;
    ++attempted;
    expected += connected ? 1 : 0;
  }
  ASSERT_GT(attempted, 0);
  (void)expected;
}

INSTANTIATE_TEST_SUITE_P(
    DensitiesAndSeeds, GeoRoutingProperty,
    ::testing::Values(TopologyParam{1, 40, 40.0},   // sparse: perimeter-heavy
                      TopologyParam{2, 40, 40.0},
                      TopologyParam{3, 80, 40.0},   // medium
                      TopologyParam{4, 80, 40.0},
                      TopologyParam{5, 150, 40.0},  // dense: mostly greedy
                      TopologyParam{6, 60, 30.0},   // likely partitioned
                      TopologyParam{7, 60, 30.0}),
    [](const ::testing::TestParamInfo<TopologyParam>& param_info) {
      return "seed" + std::to_string(param_info.param.seed) + "_n" +
             std::to_string(param_info.param.nodes) + "_r" +
             std::to_string(static_cast<int>(param_info.param.range));
    });

// --- Gabriel planarization preserves connectivity -----------------------------------

class PlanarConnectivity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlanarConnectivity, GabrielSubgraphStaysConnected) {
  sim::Rng rng(GetParam());
  const std::size_t n = 80;
  const double range = 45.0;
  const auto pts = wsn::uniform_deployment(rng, Rect::sized(300, 300), n);

  // Full unit-disk graph components.
  UnionFind full(n);
  // Gabriel subgraph components (symmetric local test at each endpoint).
  UnionFind gabriel(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<routing::NeighborEntry> witnesses;
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && geometry::distance(pts[i], pts[j]) <= range) {
        witnesses.push_back({static_cast<NodeId>(j), pts[j]});
      }
    }
    for (const auto& w : witnesses) {
      full.unite(i, w.id);
      if (routing::edge_survives(routing::PlanarGraph::kGabriel, pts[i], w, witnesses)) {
        gabriel.unite(i, w.id);
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (full.find(i) == full.find(j)) {
        EXPECT_EQ(gabriel.find(i), gabriel.find(j))
            << "Gabriel planarization disconnected " << i << " and " << j;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanarConnectivity,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u));

// --- Voronoi tiling across random site sets ----------------------------------------

class VoronoiProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VoronoiProperty, CellsTileAndAgreeWithNearestSite) {
  sim::Rng rng(GetParam());
  const Rect bounds = Rect::sized(500, 400);
  std::vector<Vec2> sites;
  const auto count = 2 + rng.below(14);
  for (std::uint64_t i = 0; i < count; ++i) {
    sites.push_back({rng.uniform(0, 500), rng.uniform(0, 400)});
  }
  const geometry::VoronoiDiagram vd(sites, bounds);

  double total = 0.0;
  for (std::size_t i = 0; i < vd.site_count(); ++i) total += vd.cell(i).area();
  EXPECT_NEAR(total, bounds.area(), 1e-6);

  for (int t = 0; t < 200; ++t) {
    const Vec2 p{rng.uniform(0, 500), rng.uniform(0, 400)};
    EXPECT_TRUE(vd.in_cell(vd.nearest_site(p), p));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VoronoiProperty,
                         ::testing::Values(21u, 22u, 23u, 24u, 25u, 26u));

// --- Failure-record timeline monotonicity across full runs ---------------------------

struct RunParam {
  core::Algorithm algorithm;
  std::uint64_t seed;
};

class TimelineProperty : public ::testing::TestWithParam<RunParam> {};

TEST_P(TimelineProperty, RecordsAreChronologicallyConsistent) {
  core::SimulationConfig cfg;
  cfg.algorithm = GetParam().algorithm;
  cfg.robots = 4;
  cfg.seed = GetParam().seed;
  cfg.sim_duration = 6000.0;
  core::Simulation s(cfg);
  s.run();

  for (const auto& rec : s.failure_log().records()) {
    EXPECT_TRUE(sim::is_valid_time(rec.failed_at));
    if (rec.detected()) {
      EXPECT_GE(rec.detected_at, rec.failed_at);
    }
    if (sim::is_valid_time(rec.reported_at)) {
      EXPECT_TRUE(rec.detected());
      EXPECT_GE(rec.reported_at, rec.detected_at);
    }
    if (sim::is_valid_time(rec.dispatched_at)) {
      EXPECT_GE(rec.dispatched_at, rec.reported_at - 1e-9);
    }
    if (rec.repaired()) {
      EXPECT_TRUE(sim::is_valid_time(rec.dispatched_at));
      EXPECT_GE(rec.repaired_at, rec.dispatched_at);
      EXPECT_GE(rec.travel_distance, 0.0);
      ASSERT_TRUE(rec.robot_id.has_value());
      EXPECT_GE(*rec.robot_id, s.config().robot_base_id());
    }
  }
}

TEST_P(TimelineProperty, TransmissionAccountingIsConserved) {
  core::SimulationConfig cfg;
  cfg.algorithm = GetParam().algorithm;
  cfg.robots = 4;
  cfg.seed = GetParam().seed;
  cfg.sim_duration = 6000.0;
  core::Simulation s(cfg);
  s.run();

  const auto& c = s.counters();
  // Beacons dominate: ~200 sensors x 600 periods, minus dead time.
  const auto beacons = c.get(metrics::MessageCategory::kBeacon);
  EXPECT_GT(beacons, 80000u);
  EXPECT_LT(beacons, 121000u);
  // Every category the run uses must be represented; nothing in kOther.
  EXPECT_EQ(c.get(metrics::MessageCategory::kOther), 0u);
  EXPECT_GT(c.get(metrics::MessageCategory::kInitialization), 0u);
  EXPECT_GT(c.get(metrics::MessageCategory::kGuardianConfirm), 0u);
  if (!s.failure_log().records().empty()) {
    EXPECT_GT(c.get(metrics::MessageCategory::kFailureReport), 0u);
    EXPECT_GT(c.get(metrics::MessageCategory::kLocationUpdate), 0u);
    EXPECT_GT(c.get(metrics::MessageCategory::kReplacement), 0u);
  }
  // Repair requests exist iff centralized.
  if (GetParam().algorithm == core::Algorithm::kCentralized) {
    EXPECT_GT(c.get(metrics::MessageCategory::kRepairRequest), 0u);
  } else {
    EXPECT_EQ(c.get(metrics::MessageCategory::kRepairRequest), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsAndSeeds, TimelineProperty,
    ::testing::Values(RunParam{core::Algorithm::kCentralized, 31},
                      RunParam{core::Algorithm::kFixedDistributed, 32},
                      RunParam{core::Algorithm::kDynamicDistributed, 33},
                      RunParam{core::Algorithm::kCentralized, 34},
                      RunParam{core::Algorithm::kFixedDistributed, 35},
                      RunParam{core::Algorithm::kDynamicDistributed, 36}),
    [](const ::testing::TestParamInfo<RunParam>& param_info) {
      return std::string(to_string(param_info.param.algorithm)) + "_seed" +
             std::to_string(param_info.param.seed);
    });

// --- Reliable reports: eventual delivery under Bernoulli loss ------------------------

class ReliableDeliveryProperty : public ::testing::TestWithParam<RunParam> {};

TEST_P(ReliableDeliveryProperty, EveryDetectedFailureIsEventuallyReported) {
  // With end-to-end acks and a retry budget that outlasts the loss process,
  // every detected failure's report must eventually reach a manager — the
  // whole point of the reliable_reports extension. Failures detected in the
  // final retry-horizon of the run are excluded: their retransmission window
  // is cut short by the simulation end, not by the protocol.
  core::SimulationConfig cfg;
  cfg.algorithm = GetParam().algorithm;
  cfg.robots = 4;
  cfg.seed = GetParam().seed;
  cfg.sim_duration = 8000.0;
  cfg.radio.loss_probability = 0.15;
  cfg.field.reliable_reports = true;
  cfg.field.report_retries = 50;  // retry budget >> E[attempts to succeed]
  core::Simulation s(cfg);
  s.run();

  const double grace =
      (cfg.field.report_retries + 1) * cfg.field.report_retry_timeout;
  std::size_t checked = 0;
  for (const auto& rec : s.failure_log().records()) {
    if (!rec.detected() || rec.detected_at > cfg.sim_duration - grace) continue;
    ++checked;
    EXPECT_TRUE(sim::is_valid_time(rec.reported_at))
        << "slot " << rec.node_id << " detected at " << rec.detected_at
        << " but its report never got through";
  }
  ASSERT_GT(checked, 10u);  // the property was actually exercised
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsAndSeeds, ReliableDeliveryProperty,
    ::testing::Values(RunParam{core::Algorithm::kCentralized, 51},
                      RunParam{core::Algorithm::kFixedDistributed, 52},
                      RunParam{core::Algorithm::kDynamicDistributed, 53},
                      RunParam{core::Algorithm::kDynamicDistributed, 54}),
    [](const ::testing::TestParamInfo<RunParam>& param_info) {
      return std::string(to_string(param_info.param.algorithm)) + "_seed" +
             std::to_string(param_info.param.seed);
    });

// --- Per-robot bookkeeping consistency -----------------------------------------------

TEST(BookkeepingProperty, OdometerCoversAttributedTravel) {
  for (const auto algo :
       {core::Algorithm::kCentralized, core::Algorithm::kFixedDistributed,
        core::Algorithm::kDynamicDistributed}) {
    core::SimulationConfig cfg;
    cfg.algorithm = algo;
    cfg.robots = 9;
    cfg.seed = 41;
    cfg.sim_duration = 6000.0;
    core::Simulation s(cfg);
    s.run();

    std::map<NodeId, double> attributed;
    for (const auto& rec : s.failure_log().records()) {
      if (rec.repaired()) attributed[*rec.robot_id] += rec.travel_distance;
    }
    for (const auto& robot : s.robots()) {
      // A robot's odometer includes unfinished drives, so >= attributed sum.
      EXPECT_GE(robot->odometer() + 1e-6, attributed[robot->id()])
          << to_string(algo) << " robot " << robot->id();
    }
  }
}

}  // namespace
}  // namespace sensrep
