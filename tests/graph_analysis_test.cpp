// Tests for the unit-disk graph analysis: components, articulation points,
// post-failure component sizes — on crafted topologies and random fields.

#include <gtest/gtest.h>

#include "geometry/graph_analysis.hpp"
#include "geometry/rect.hpp"
#include "sim/rng.hpp"
#include "wsn/deployment.hpp"

namespace sensrep::geometry {
namespace {

TEST(UnitDiskGraphTest, AdjacencyFromRadius) {
  // Line 0-1-2 with spacing 10, radius 12: consecutive nodes connect only.
  const UnitDiskGraph g({{0, 0}, {10, 0}, {20, 0}}, 12.0);
  EXPECT_EQ(g.size(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.neighbors(1).size(), 2u);
  EXPECT_EQ(g.neighbors(0).size(), 1u);
  EXPECT_DOUBLE_EQ(g.mean_degree(), 4.0 / 3.0);
}

TEST(UnitDiskGraphTest, ComponentsOfSplitField) {
  const UnitDiskGraph g({{0, 0}, {10, 0}, {500, 0}, {510, 0}, {1000, 1000}}, 15.0);
  const auto comps = g.connected_components();
  EXPECT_EQ(comps.count, 3u);
  EXPECT_EQ(comps.id[0], comps.id[1]);
  EXPECT_EQ(comps.id[2], comps.id[3]);
  EXPECT_NE(comps.id[0], comps.id[2]);
  EXPECT_NE(comps.id[2], comps.id[4]);
  EXPECT_FALSE(g.connected());
}

TEST(UnitDiskGraphTest, ChainInteriorIsArticulation) {
  // 0-1-2-3-4 chain: nodes 1, 2, 3 are cut vertices.
  std::vector<Vec2> pts;
  for (int i = 0; i < 5; ++i) pts.push_back({static_cast<double>(i) * 10.0, 0});
  const UnitDiskGraph g(pts, 12.0);
  EXPECT_EQ(g.articulation_points(), (std::vector<std::size_t>{1, 2, 3}));
}

TEST(UnitDiskGraphTest, CycleHasNoArticulation) {
  // Square cycle with radius covering adjacent corners but not diagonals.
  const UnitDiskGraph g({{0, 0}, {10, 0}, {10, 10}, {0, 10}}, 11.0);
  EXPECT_TRUE(g.articulation_points().empty());
}

TEST(UnitDiskGraphTest, BowTieCenterIsArticulation) {
  // Two triangles sharing only the center vertex 2.
  const UnitDiskGraph g(
      {{0, 0}, {0, 8}, {10, 4}, {20, 0}, {20, 8}}, 11.0);
  const auto cuts = g.articulation_points();
  ASSERT_EQ(cuts.size(), 1u);
  EXPECT_EQ(cuts[0], 2u);
  // Removing it strands one triangle: largest remaining component is 2.
  EXPECT_EQ(g.largest_component_without(2), 2u);
  // Removing a leaf-side vertex keeps the rest intact.
  EXPECT_EQ(g.largest_component_without(0), 4u);
}

TEST(UnitDiskGraphTest, ArticulationRemovalMatchesComponentDefinition) {
  // Property: for every vertex v of a connected random graph, v is an
  // articulation point iff removing it splits the rest into >1 component
  // (checked via largest_component_without).
  sim::Rng rng(77);
  const auto pts = wsn::uniform_deployment(rng, Rect::sized(200, 200), 60);
  const UnitDiskGraph g(pts, 45.0);
  if (!g.connected()) GTEST_SKIP() << "random field disconnected for this seed";
  const auto cuts = g.articulation_points();
  for (std::size_t v = 0; v < g.size(); ++v) {
    const bool is_cut =
        std::find(cuts.begin(), cuts.end(), v) != cuts.end();
    const bool splits = g.largest_component_without(v) < g.size() - 1;
    EXPECT_EQ(is_cut, splits) << "vertex " << v;
  }
}

TEST(UnitDiskGraphTest, PaperDensityIsRobustlyConnected) {
  // The paper's density (50 sensors per 200x200 at 63 m range) yields a
  // connected graph with few articulation points — the premise behind its
  // 100% report delivery.
  sim::Rng rng(5);
  const auto pts = wsn::uniform_deployment(rng, Rect::sized(400, 400), 200);
  const UnitDiskGraph g(pts, 63.0);
  EXPECT_TRUE(g.connected());
  EXPECT_GT(g.mean_degree(), 8.0);
  EXPECT_LT(g.articulation_points().size(), g.size() / 20);
}

TEST(UnitDiskGraphTest, RejectsBadRadius) {
  EXPECT_THROW(UnitDiskGraph({{0, 0}}, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace sensrep::geometry
