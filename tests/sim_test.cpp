// Unit tests for the discrete-event kernel: event queue ordering and
// cancellation, simulator clock semantics, periodic timers, RNG streams.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace sensrep::sim {
namespace {

// --- EventQueue --------------------------------------------------------------

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimesPopInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().callback();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule(1.0, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelTwiceReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, CancelledEventSkippedByNextTime) {
  EventQueue q;
  const EventId early = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_TRUE(q.cancel(early));
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(EventQueueTest, SizeCountsLiveEventsOnly) {
  EventQueue q;
  const EventId a = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, RejectsInvalidTimeAndNullCallback) {
  EventQueue q;
  EXPECT_THROW(q.schedule(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(q.schedule(kNever, [] {}), std::invalid_argument);
  EXPECT_THROW(q.schedule(1.0, EventQueue::Callback{}), std::invalid_argument);
}

// Regression: cancel() used to leave its HeapEntry behind forever, so a
// workload that perpetually reschedules (cancel + schedule, like lease
// supervision re-arming) grew the heap without bound. The queue must now
// compact once dead entries outnumber live ones.
TEST(EventQueueTest, HeapStaysBoundedUnderCancelRescheduleChurn) {
  EventQueue q;
  const EventId keep = q.schedule(1e9, [] {});  // one long-lived anchor event
  EventId current = q.schedule(1.0, [] {});
  for (int i = 0; i < 100000; ++i) {
    EXPECT_TRUE(q.cancel(current));
    current = q.schedule(2.0 + i, [] {});
  }
  EXPECT_EQ(q.size(), 2u);
  // 2 live events; anything O(live) is fine, 100k dead entries is the bug.
  EXPECT_LE(q.heap_size(), 64u);
  EXPECT_TRUE(q.cancel(keep));
  EXPECT_TRUE(q.cancel(current));
  EXPECT_TRUE(q.empty());
}

// Audit: next_time()/empty() must agree after any interleaving of cancel and
// pop, including cancelling the current top-of-heap.
TEST(EventQueueTest, CancelOfTopKeepsNextTimeConsistent) {
  EventQueue q;
  const EventId top = q.schedule(1.0, [] {});
  q.schedule(3.0, [] {});
  const EventId mid = q.schedule(2.0, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 1.0);
  EXPECT_TRUE(q.cancel(top));       // dead entry is now the heap top
  EXPECT_FALSE(q.empty());
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
  EXPECT_TRUE(q.cancel(mid));       // next-in-line dies too
  EXPECT_FALSE(q.empty());
  EXPECT_DOUBLE_EQ(q.next_time(), 3.0);
  auto ev = q.pop();
  EXPECT_DOUBLE_EQ(ev.time, 3.0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, InterleavedCancelPopNeverDesyncs) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 32; ++i) {
    ids.push_back(q.schedule(static_cast<double>(i), [] {}));
  }
  // Cancel every even event, then alternate pop / cancel-ahead.
  for (std::size_t i = 0; i < ids.size(); i += 2) EXPECT_TRUE(q.cancel(ids[i]));
  double last = -1.0;
  while (!q.empty()) {
    const double next = q.next_time();
    auto ev = q.pop();
    EXPECT_DOUBLE_EQ(ev.time, next);  // next_time() promised this pop
    EXPECT_GT(ev.time, last);
    last = ev.time;
  }
  EXPECT_EQ(q.size(), 0u);
}

// EventIds stay unique across slot reuse: a stale id from a popped event
// must not cancel the event that recycled its slot.
TEST(EventQueueTest, StaleIdCannotCancelRecycledSlot) {
  EventQueue q;
  const EventId first = q.schedule(1.0, [] {});
  q.pop().callback();
  bool ran = false;
  q.schedule(2.0, [&] { ran = true; });  // very likely reuses first's slot
  EXPECT_FALSE(q.cancel(first));
  q.pop().callback();
  EXPECT_TRUE(ran);
}

// --- Simulator -----------------------------------------------------------------

TEST(SimulatorTest, ClockAdvancesToEventTimes) {
  Simulator s;
  std::vector<double> seen;
  s.at(1.5, [&] { seen.push_back(s.now()); });
  s.at(4.0, [&] { seen.push_back(s.now()); });
  s.run_all();
  EXPECT_EQ(seen, (std::vector<double>{1.5, 4.0}));
}

TEST(SimulatorTest, InSchedulesRelativeToNow) {
  Simulator s;
  double fired_at = -1.0;
  s.at(10.0, [&] { s.in(5.0, [&] { fired_at = s.now(); }); });
  s.run_all();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(SimulatorTest, RunUntilStopsAtHorizonAndLandsClockThere) {
  Simulator s;
  int count = 0;
  s.at(1.0, [&] { ++count; });
  s.at(2.0, [&] { ++count; });
  s.at(10.0, [&] { ++count; });
  s.run_until(5.0);
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(s.now(), 5.0);
  s.run_until(20.0);
  EXPECT_EQ(count, 3);
}

TEST(SimulatorTest, EventExactlyAtHorizonRuns) {
  Simulator s;
  bool ran = false;
  s.at(5.0, [&] { ran = true; });
  s.run_until(5.0);
  EXPECT_TRUE(ran);
}

TEST(SimulatorTest, RejectsPastScheduling) {
  Simulator s;
  s.at(5.0, [] {});
  s.run_all();
  EXPECT_THROW(s.at(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(s.in(-1.0, [] {}), std::invalid_argument);
}

TEST(SimulatorTest, PeriodicFiresAtMultiples) {
  Simulator s;
  std::vector<double> times;
  const EventId series = s.every(2.0, [&] { times.push_back(s.now()); });
  s.run_until(7.0);
  s.cancel(series);
  EXPECT_EQ(times, (std::vector<double>{2.0, 4.0, 6.0}));
}

TEST(SimulatorTest, CancelPeriodicStopsSeries) {
  Simulator s;
  int count = 0;
  const EventId series = s.every(1.0, [&] { ++count; });
  s.run_until(3.5);
  EXPECT_EQ(count, 3);
  EXPECT_TRUE(s.cancel(series));
  s.run_until(10.0);
  EXPECT_EQ(count, 3);
}

TEST(SimulatorTest, CancelPeriodicFromInsideItsOwnCallback) {
  Simulator s;
  int count = 0;
  EventId series{};
  series = s.every(1.0, [&] {
    ++count;
    if (count == 2) s.cancel(series);
  });
  s.run_until(10.0);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(SimulatorTest, StopAbortsRun) {
  Simulator s;
  int count = 0;
  s.every(1.0, [&] {
    ++count;
    if (count == 5) s.stop();
  });
  s.run_until(100.0);
  EXPECT_EQ(count, 5);
}

TEST(SimulatorTest, StepExecutesOneEvent) {
  Simulator s;
  int count = 0;
  s.at(1.0, [&] { ++count; });
  s.at(2.0, [&] { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
  EXPECT_EQ(count, 2);
}

TEST(SimulatorTest, ExecutedCounterAccumulates) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.at(static_cast<double>(i), [] {});
  s.run_all();
  EXPECT_EQ(s.executed(), 7u);
}

// --- Rng ------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(RngTest, Uniform01InRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 9.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 9.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng r(99);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BelowStaysBelow) {
  Rng r(5);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(RngTest, BelowCoversAllResidues) {
  Rng r(5);
  std::vector<int> hits(5, 0);
  for (int i = 0; i < 5000; ++i) ++hits[r.below(5)];
  for (const int h : hits) EXPECT_GT(h, 800);  // ~1000 expected each
}

TEST(RngTest, BetweenInclusive) {
  Rng r(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng r(13);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(16000.0);
  EXPECT_NEAR(sum / n, 16000.0, 16000.0 * 0.02);
}

TEST(RngTest, ExponentialAlwaysPositive) {
  Rng r(13);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(r.exponential(1.0), 0.0);
}

TEST(RngTest, ChanceExtremes) {
  Rng r(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(RngTest, ChanceFrequencyTracksP) {
  Rng r(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ForkIsDeterministicAndIndependent) {
  const Rng parent(42);
  Rng a = parent.fork("medium");
  Rng b = parent.fork("medium");
  Rng c = parent.fork("field");
  EXPECT_EQ(a(), b());      // same name -> same stream
  Rng a2 = parent.fork("medium");
  EXPECT_NE(a2(), c());     // different names -> different streams
}

TEST(RngTest, ForkDoesNotAdvanceParent) {
  Rng p1(42), p2(42);
  (void)p1.fork("x");
  (void)p1.fork("y");
  EXPECT_EQ(p1(), p2());
}

TEST(RngTest, ShufflePreservesElements) {
  Rng r(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng r(3);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  const auto before = v;
  r.shuffle(v);
  EXPECT_NE(v, before);
}

}  // namespace
}  // namespace sensrep::sim
