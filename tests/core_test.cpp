// Unit tests for the coordination layer: configuration, and the three
// algorithms' decision logic exercised through small end-to-end simulations
// with injected failures (spontaneous lifetimes disabled for determinism).

#include <gtest/gtest.h>

#include <memory>

#include "core/centralized.hpp"
#include "core/config.hpp"
#include "core/dynamic_distributed.hpp"
#include "core/fixed_distributed.hpp"
#include "core/simulation.hpp"

namespace sensrep::core {
namespace {

using geometry::Vec2;
using net::NodeId;

// --- SimulationConfig ---------------------------------------------------------

TEST(ConfigTest, DerivedQuantities) {
  SimulationConfig cfg;
  cfg.robots = 16;
  EXPECT_EQ(cfg.sensor_count(), 800u);
  EXPECT_EQ(cfg.robot_base_id(), 800u);
  EXPECT_EQ(cfg.robot_id(0), 800u);
  EXPECT_EQ(cfg.robot_id(15), 815u);
  EXPECT_EQ(cfg.manager_id(), 816u);
  const auto area = cfg.field_area();
  EXPECT_NEAR(area.width(), 800.0, 1e-9);
  EXPECT_NEAR(area.height(), 800.0, 1e-9);
}

TEST(ConfigTest, PaperDefaults) {
  const SimulationConfig cfg;
  EXPECT_DOUBLE_EQ(cfg.robot_speed, 1.0);
  EXPECT_DOUBLE_EQ(cfg.robot_tx_range, 250.0);
  EXPECT_DOUBLE_EQ(cfg.field.sensor_tx_range, 63.0);
  EXPECT_DOUBLE_EQ(cfg.field.beacon_period, 10.0);
  EXPECT_EQ(cfg.field.stale_beacon_count, 3);
  EXPECT_DOUBLE_EQ(cfg.field.lifetime.mean, 16000.0);
  EXPECT_EQ(cfg.field.lifetime.distribution, wsn::LifetimeDistribution::kExponential);
  EXPECT_DOUBLE_EQ(cfg.sim_duration, 64000.0);
  EXPECT_DOUBLE_EQ(cfg.update_threshold, 20.0);
  EXPECT_EQ(cfg.sensors_per_robot, 50u);
  EXPECT_DOUBLE_EQ(cfg.area_per_robot, 40000.0);
}

TEST(ConfigTest, ValidateRejectsBadValues) {
  SimulationConfig cfg;
  cfg.robots = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.update_threshold = 40.0;  // >= sensor range / 2
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.robot_speed = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ConfigTest, AlgorithmNames) {
  EXPECT_EQ(to_string(Algorithm::kCentralized), "centralized");
  EXPECT_EQ(to_string(Algorithm::kFixedDistributed), "fixed");
  EXPECT_EQ(to_string(Algorithm::kDynamicDistributed), "dynamic");
  EXPECT_EQ(to_string(PartitionShape::kSquare), "square");
  EXPECT_EQ(to_string(PartitionShape::kHexagon), "hexagon");
}

// --- Shared fixture ---------------------------------------------------------------

SimulationConfig small_config(Algorithm algo, std::uint64_t seed = 11) {
  SimulationConfig cfg;
  cfg.algorithm = algo;
  cfg.robots = 4;
  cfg.seed = seed;
  cfg.sim_duration = 4000.0;
  cfg.field.spontaneous_failures = false;  // injected failures only
  return cfg;
}

/// Fails `slot` and runs long enough for detection, dispatch and repair.
void fail_and_settle(Simulation& s, NodeId slot, double settle = 1200.0) {
  s.field().fail_slot(slot);
  s.run_until(s.simulator().now() + settle);
}

// --- Centralized -------------------------------------------------------------------

TEST(CentralizedTest, ManagerSitsAtFieldCenter) {
  Simulation s(small_config(Algorithm::kCentralized));
  auto& algo = dynamic_cast<CentralizedAlgorithm&>(s.algorithm());
  EXPECT_EQ(algo.manager().position(), s.config().field_area().center());
  EXPECT_EQ(algo.manager().id(), s.config().manager_id());
}

TEST(CentralizedTest, ManagerTracksEveryRobotAfterInit) {
  Simulation s(small_config(Algorithm::kCentralized));
  s.run_until(5.0);
  const auto& algo = dynamic_cast<const CentralizedAlgorithm&>(s.algorithm());
  EXPECT_EQ(algo.tracked_robots().size(), 4u);
}

TEST(CentralizedTest, FailureIsRepairedViaRepairRequest) {
  Simulation s(small_config(Algorithm::kCentralized));
  s.run_until(1.0);
  fail_and_settle(s, 0);
  const auto& rec = s.failure_log().at(0);
  EXPECT_TRUE(rec.detected());
  EXPECT_TRUE(sim::is_valid_time(rec.reported_at));
  EXPECT_TRUE(rec.repaired());
  EXPECT_GT(rec.report_hops, 0u);
  EXPECT_GT(rec.request_hops, 0u);  // the forwarding leg exists
}

TEST(CentralizedTest, ClosestRobotIsDispatched) {
  Simulation s(small_config(Algorithm::kCentralized));
  s.run_until(1.0);
  // Pick the failure next to robot 0's position; that robot must serve it.
  const Vec2 r0 = s.robots()[0]->position();
  NodeId slot = 0;
  double best = 1e18;
  for (NodeId id = 0; id < s.field().size(); ++id) {
    const double d = geometry::distance(s.field().node(id).position(), r0);
    if (d < best) {
      best = d;
      slot = id;
    }
  }
  fail_and_settle(s, slot);
  const auto& rec = s.failure_log().at(0);
  ASSERT_TRUE(rec.repaired());
  EXPECT_EQ(*rec.robot_id, s.robots()[0]->id());
}

TEST(CentralizedTest, RobotsDoNotRelayIntoFloods) {
  Simulation s(small_config(Algorithm::kCentralized));
  s.run_until(1.0);
  fail_and_settle(s, 0);
  // Location updates in centralized mode: unicast hops to the manager plus
  // one-hop announces; far fewer than any subarea flood would produce.
  const auto r = s.result();
  EXPECT_GT(r.tx(metrics::MessageCategory::kLocationUpdate), 0u);
  EXPECT_LT(r.location_update_tx_per_repair, 60.0);
}

TEST(CentralizedTest, QueueAwareDispatchSpreadsBackToBackFailures) {
  // Two failures in quick succession near the same robot: the plain paper
  // policy sends both to that robot; queue-aware sends the second one to a
  // different robot (the first is charged one expected service leg).
  // The penalty per queued task is 0.5*sqrt(area_per_robot) = 100 m, so the
  // split shows up for a "contested" sensor: closest to robot A, but with
  // another robot within (d_A + 100) m. Margins absorb the <= 20 m location
  // staleness of a dispatched, moving robot A.
  for (const bool queue_aware : {false, true}) {
    auto cfg = small_config(Algorithm::kCentralized);
    cfg.queue_aware_dispatch = queue_aware;
    Simulation s(cfg);
    s.run_until(1.0);

    const auto dist_to_robot = [&](NodeId sensor, std::size_t robot) {
      return geometry::distance(s.field().node(sensor).position(),
                                s.robots()[robot]->position());
    };
    // first: any sensor clearly closest to robot 0. second: contested —
    // robot 0 closest, another robot inside the penalty band.
    NodeId first = net::kNoNode, second = net::kNoNode;
    for (NodeId id = 0; id < s.field().size(); ++id) {
      double d0 = dist_to_robot(id, 0);
      double best_other = 1e18;
      for (std::size_t r = 1; r < s.robots().size(); ++r) {
        best_other = std::min(best_other, dist_to_robot(id, r));
      }
      if (first == net::kNoNode && d0 + 60.0 < best_other) first = id;
      if (second == net::kNoNode && d0 + 30.0 < best_other &&
          best_other + 30.0 < d0 + 100.0) {
        second = id;
      }
    }
    if (first == net::kNoNode || second == net::kNoNode || first == second) {
      GTEST_SKIP() << "deployment lacks a contested sensor for this seed";
    }
    s.field().fail_slot(first);
    s.field().fail_slot(second);
    s.run_until(s.simulator().now() + 1500.0);
    ASSERT_EQ(s.failure_log().size(), 2u);
    const auto& a = s.failure_log().at(0);
    const auto& b = s.failure_log().at(1);
    ASSERT_TRUE(a.repaired());
    ASSERT_TRUE(b.repaired());
    if (queue_aware) {
      EXPECT_NE(*a.robot_id, *b.robot_id) << "queue-aware should split the pair";
    } else {
      EXPECT_EQ(*a.robot_id, *b.robot_id) << "paper policy: both to the closest";
      EXPECT_EQ(*a.robot_id, s.robots()[0]->id());
    }
  }
}

// --- Fixed distributed -----------------------------------------------------------

TEST(FixedTest, RobotsParkAtSubareaCenters) {
  Simulation s(small_config(Algorithm::kFixedDistributed));
  const auto& algo = dynamic_cast<const FixedDistributedAlgorithm&>(s.algorithm());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(s.robots()[i]->position(), algo.partition().center(i)) << "robot " << i;
  }
  EXPECT_GT(s.algorithm().init_motion(), 0.0);
}

TEST(FixedTest, SubareaRobotHandlesItsOwnFailures) {
  Simulation s(small_config(Algorithm::kFixedDistributed));
  s.run_until(1.0);
  const auto& algo = dynamic_cast<const FixedDistributedAlgorithm&>(s.algorithm());
  // Fail a sensor in subarea 2; robot 2 must be the maintainer even if
  // another robot is closer.
  NodeId slot = net::kNoNode;
  for (NodeId id = 0; id < s.field().size(); ++id) {
    if (algo.partition().cell_of(s.field().node(id).position()) == 2) {
      slot = id;
      break;
    }
  }
  ASSERT_NE(slot, net::kNoNode);
  fail_and_settle(s, slot);
  const auto& rec = s.failure_log().at(0);
  ASSERT_TRUE(rec.repaired());
  EXPECT_EQ(*rec.robot_id, s.config().robot_id(2));
  EXPECT_EQ(rec.request_hops, 0u);  // no manager->robot forwarding leg
}

TEST(FixedTest, HexPartitionAlsoWorks) {
  auto cfg = small_config(Algorithm::kFixedDistributed);
  cfg.partition = PartitionShape::kHexagon;
  Simulation s(cfg);
  s.run_until(1.0);
  fail_and_settle(s, 7);
  EXPECT_TRUE(s.failure_log().at(0).repaired());
}

TEST(FixedTest, SensorsKnowTheirSubareaRobotAfterInit) {
  Simulation s(small_config(Algorithm::kFixedDistributed));
  s.run_until(5.0);
  const auto& algo = dynamic_cast<const FixedDistributedAlgorithm&>(s.algorithm());
  std::size_t informed = 0;
  for (NodeId id = 0; id < s.field().size(); ++id) {
    const auto& n = s.field().node(id);
    const NodeId expected =
        s.config().robot_id(algo.partition().cell_of(n.position()));
    if (n.myrobot() == expected) ++informed;
  }
  // The init flood should have reached (essentially) every sensor.
  EXPECT_GE(informed, s.field().size() * 9 / 10);
}

// --- Dynamic distributed ------------------------------------------------------------

TEST(DynamicTest, SensorsAdoptClosestRobotAfterInit) {
  Simulation s(small_config(Algorithm::kDynamicDistributed));
  s.run_until(10.0);  // init floods + fallback sweep at t=5
  std::size_t correct = 0;
  for (NodeId id = 0; id < s.field().size(); ++id) {
    const auto& n = s.field().node(id);
    ASSERT_NE(n.myrobot(), net::kNoNode) << "sensor " << id << " has no myrobot";
    // Verify it is the truly closest robot.
    NodeId best = net::kNoNode;
    double best_d = 1e18;
    for (const auto& r : s.robots()) {
      const double d = geometry::distance(n.position(), r->position());
      if (d < best_d) {
        best_d = d;
        best = r->id();
      }
    }
    if (n.myrobot() == best) ++correct;
  }
  EXPECT_GE(correct, s.field().size() * 9 / 10);
}

TEST(DynamicTest, ClosestRobotRepairsAndNoRequestLeg) {
  Simulation s(small_config(Algorithm::kDynamicDistributed));
  s.run_until(10.0);
  fail_and_settle(s, 3);
  const auto& rec = s.failure_log().at(0);
  ASSERT_TRUE(rec.repaired());
  EXPECT_EQ(rec.request_hops, 0u);  // the report's receiver is the maintainer
  // The maintainer was the failed sensor's myrobot: the closest robot at
  // init time (nobody moved before this failure).
  const Vec2 failed_pos = s.field().node(3).position();
  NodeId closest = net::kNoNode;
  double best_d = 1e18;
  for (const auto& r : s.robots()) {
    // Robots move to repair; use where they started, recoverable from the
    // deployment being deterministic: the repairing robot is at failed_pos.
    const Vec2 pos = (r->id() == *rec.robot_id) ? failed_pos : r->position();
    const double d = geometry::distance(failed_pos, pos);
    if (d < best_d) {
      best_d = d;
      closest = r->id();
    }
  }
  EXPECT_EQ(closest, *rec.robot_id);
}

TEST(DynamicTest, MyRobotSwitchesWhenRobotMovesAway) {
  auto cfg = small_config(Algorithm::kDynamicDistributed);
  Simulation s(cfg);
  s.run_until(10.0);
  // Drive robot 0 far away; sensors that had it must eventually re-adopt
  // whichever robot is now closest, via the movement's update floods.
  auto& r0 = *s.robots()[0];
  NodeId watcher = net::kNoNode;
  for (NodeId id = 0; id < s.field().size(); ++id) {
    if (s.field().node(id).myrobot() == r0.id() &&
        geometry::distance(s.field().node(id).position(), r0.position()) > 120.0) {
      watcher = id;
      break;
    }
  }
  if (watcher == net::kNoNode) GTEST_SKIP() << "no distant member in robot 0's cell";
  const Vec2 far_corner =
      geometry::distance(r0.position(), s.config().field_area().min) >
              geometry::distance(r0.position(), s.config().field_area().max)
          ? s.config().field_area().min
          : s.config().field_area().max;
  r0.drive_to(far_corner);
  s.run_until(s.simulator().now() + 600.0);
  // The watcher heard the floods (it was in the old cell) and re-evaluated.
  const auto& n = s.field().node(watcher);
  NodeId best = net::kNoNode;
  double best_d = 1e18;
  for (const auto& r : s.robots()) {
    const double d = geometry::distance(n.position(), r->position());
    if (d < best_d) {
      best_d = d;
      best = r->id();
    }
  }
  EXPECT_EQ(n.myrobot(), best);
}

TEST(DynamicTest, FloodDedupKeepsUpdateCostBounded) {
  Simulation s(small_config(Algorithm::kDynamicDistributed));
  s.run_until(10.0);
  const auto before = s.counters().get(metrics::MessageCategory::kLocationUpdate);
  s.field().fail_slot(42);
  s.run_until(s.simulator().now() + 800.0);
  const auto after = s.counters().get(metrics::MessageCategory::kLocationUpdate);
  const auto per_failure = after - before;
  // One repair drive of <= ~300 m emits <= ~15 update floods; each flood is
  // relayed at most once per sensor (200 sensors total).
  EXPECT_GT(per_failure, 0u);
  EXPECT_LT(per_failure, 15u * 200u);
}

// --- Flood scope per algorithm (the Fig. 4 mechanism, measured directly) ---------

std::uint64_t one_update_cost(Algorithm algo) {
  auto cfg = small_config(algo, 15);
  Simulation s(cfg);
  s.run_until(20.0);  // init floods settled
  const auto before = s.counters().get(metrics::MessageCategory::kLocationUpdate);
  s.algorithm().on_robot_location_update(*s.robots()[0]);
  s.run_until(30.0);  // let the relays cascade
  return s.counters().get(metrics::MessageCategory::kLocationUpdate) - before;
}

TEST(FloodScopeTest, CentralizedUpdateIsAFewTransmissions) {
  // One broadcast + a geo-routed unicast to the manager: single digits.
  const auto cost = one_update_cost(Algorithm::kCentralized);
  EXPECT_GE(cost, 2u);
  EXPECT_LE(cost, 10u);
}

TEST(FloodScopeTest, FixedUpdateFloodsRoughlyTheSubarea) {
  // ~50 sensors per subarea each relay once (plus the seed broadcast).
  const auto cost = one_update_cost(Algorithm::kFixedDistributed);
  EXPECT_GE(cost, 25u);
  EXPECT_LE(cost, 80u);
}

TEST(FloodScopeTest, DynamicUpdateFloodsCellPlusFringe) {
  const auto fixed_cost = one_update_cost(Algorithm::kFixedDistributed);
  const auto dynamic_cost = one_update_cost(Algorithm::kDynamicDistributed);
  // The dynamic scope adds the boundary fringe: at or above fixed's, but
  // nowhere near a network-wide flood (200 sensors).
  EXPECT_GE(dynamic_cost + 10u, fixed_cost);
  EXPECT_LE(dynamic_cost, 150u);
}

// --- Idle repositioning (E12) --------------------------------------------------------

TEST(RepositionTest, IdleRobotReturnsToSubareaCenter) {
  auto cfg = small_config(Algorithm::kFixedDistributed);
  cfg.idle_reposition = true;
  Simulation s(cfg);
  s.run_until(1.0);
  const auto& algo = dynamic_cast<const FixedDistributedAlgorithm&>(s.algorithm());
  // Fail a sensor far from its subarea's center; after the repair the robot
  // must drive back near the center instead of parking at the failure.
  const Vec2 center0 = algo.partition().center(0);
  NodeId slot = net::kNoNode;
  for (NodeId id = 0; id < s.field().size(); ++id) {
    const auto& n = s.field().node(id);
    if (algo.partition().cell_of(n.position()) == 0 &&
        geometry::distance(n.position(), center0) > 80.0) {
      slot = id;
      break;
    }
  }
  ASSERT_NE(slot, net::kNoNode);
  fail_and_settle(s, slot, 1500.0);
  ASSERT_TRUE(s.failure_log().at(0).repaired());
  EXPECT_LE(geometry::distance(s.robots()[0]->position(), center0),
            s.config().update_threshold + 1.0);
}

TEST(RepositionTest, PaperModeParksAtTheFailure) {
  auto cfg = small_config(Algorithm::kFixedDistributed);
  cfg.idle_reposition = false;  // the paper's on-demand mobility
  Simulation s(cfg);
  s.run_until(1.0);
  fail_and_settle(s, 7, 1500.0);
  const auto& rec = s.failure_log().at(0);
  ASSERT_TRUE(rec.repaired());
  const auto& maintainer = *s.robots()[rec.robot_id.value() - s.config().robot_base_id()];
  EXPECT_LE(geometry::distance(maintainer.position(), s.field().node(7).position()),
            1e-6);
}

// --- Cross-algorithm properties --------------------------------------------------------

TEST(DeterminismTest, SameSeedSameResult) {
  for (const auto algo : {Algorithm::kCentralized, Algorithm::kFixedDistributed,
                          Algorithm::kDynamicDistributed}) {
    auto cfg = small_config(algo, 77);
    cfg.field.spontaneous_failures = true;
    cfg.sim_duration = 2000.0;
    Simulation a(cfg);
    a.run();
    Simulation b(cfg);
    b.run();
    const auto ra = a.result();
    const auto rb = b.result();
    EXPECT_EQ(ra.failures, rb.failures);
    EXPECT_EQ(ra.repaired, rb.repaired);
    EXPECT_DOUBLE_EQ(ra.avg_travel_per_repair, rb.avg_travel_per_repair);
    EXPECT_DOUBLE_EQ(ra.total_robot_distance, rb.total_robot_distance);
    EXPECT_EQ(ra.tx(metrics::MessageCategory::kLocationUpdate),
              rb.tx(metrics::MessageCategory::kLocationUpdate));
  }
}

TEST(DeterminismTest, DifferentSeedsDiffer) {
  auto cfg = small_config(Algorithm::kCentralized, 1);
  cfg.field.spontaneous_failures = true;
  cfg.sim_duration = 2000.0;
  Simulation a(cfg);
  a.run();
  cfg.seed = 2;
  Simulation b(cfg);
  b.run();
  EXPECT_NE(a.result().total_robot_distance, b.result().total_robot_distance);
}

TEST(SimulationTest, RunUntilIsResumableAndMetricsAreMonotone) {
  auto cfg = small_config(Algorithm::kDynamicDistributed);
  cfg.field.spontaneous_failures = true;
  cfg.sim_duration = 4000.0;
  Simulation s(cfg);
  s.run_until(1000.0);
  const auto mid = s.result();
  s.run();  // continues to 4000 s, not a restart
  const auto end = s.result();
  EXPECT_GE(end.failures, mid.failures);
  EXPECT_GE(end.repaired, mid.repaired);
  EXPECT_GE(end.total_robot_distance, mid.total_robot_distance);
  EXPECT_GE(end.tx(metrics::MessageCategory::kBeacon),
            mid.tx(metrics::MessageCategory::kBeacon));
  EXPECT_DOUBLE_EQ(s.simulator().now(), 4000.0);
}

TEST(SimulationTest, EnergyAccountingMatchesModelIdentity) {
  auto cfg = small_config(Algorithm::kFixedDistributed);
  cfg.field.spontaneous_failures = true;
  cfg.sim_duration = 4000.0;
  Simulation s(cfg);
  s.run();
  const auto r = s.result();
  // mission = idle floor for the whole fleet + marginal motion energy.
  const double idle_floor =
      cfg.energy.idle_power_w * 4000.0 * static_cast<double>(cfg.robots);
  EXPECT_NEAR(r.mission_energy_j, idle_floor + r.motion_energy_j, 1e-6);
  EXPECT_NEAR(r.motion_energy_j,
              cfg.energy.motion_energy_j(r.total_robot_distance), 1e-6);
}

TEST(ResultTest, SummaryMentionsKeyNumbers) {
  Simulation s(small_config(Algorithm::kCentralized));
  s.run_until(1.0);
  fail_and_settle(s, 0);
  const auto text = s.result().summary();
  EXPECT_NE(text.find("centralized"), std::string::npos);
  EXPECT_NE(text.find("fig2"), std::string::npos);
  EXPECT_NE(text.find("fig4"), std::string::npos);
}

}  // namespace
}  // namespace sensrep::core
