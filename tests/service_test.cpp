// Service-mode tests: protocol parsing, signal flag, cooperative interrupt,
// stepped-run determinism, daemon command handling, telemetry, the JSONL
// sink's threading, snapshot round-trips, and the kill-and-restore
// differential that proves a restored daemon reconverges bit-for-bit on the
// uninterrupted run (docs/SERVICE.md §6).

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/simulation.hpp"
#include "metrics/timeline.hpp"
#include "obs/tracer.hpp"
#include "runner/executor.hpp"
#include "service/daemon.hpp"
#include "service/protocol.hpp"
#include "service/signal.hpp"
#include "service/snapshot.hpp"
#include "service/telemetry.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace sensrep;

// --- protocol ---------------------------------------------------------------

TEST(Protocol, ParsesEveryCommandAndRoundTripsCanonicalForm) {
  const std::vector<std::string> lines = {
      "fail 42", "crash-robot 1", "repair-robot 0", "advance 120.5",
      "status", "telemetry", "snapshot /tmp/x.snap", "quit",
  };
  for (const auto& line : lines) {
    const auto cmd = service::parse_command(line);
    ASSERT_TRUE(cmd.has_value()) << line;
    const auto again = service::parse_command(service::format_command(*cmd));
    ASSERT_TRUE(again.has_value()) << line;
    EXPECT_EQ(*cmd, *again) << line;
  }
}

TEST(Protocol, SkipsBlanksAndComments) {
  EXPECT_FALSE(service::parse_command("").has_value());
  EXPECT_FALSE(service::parse_command("   \t ").has_value());
  EXPECT_FALSE(service::parse_command("# a comment").has_value());
  EXPECT_FALSE(service::parse_command("  #indented").has_value());
}

TEST(Protocol, RejectsMalformedInput) {
  EXPECT_THROW(service::parse_command("explode"), std::invalid_argument);
  EXPECT_THROW(service::parse_command("fail"), std::invalid_argument);
  EXPECT_THROW(service::parse_command("fail 1 2"), std::invalid_argument);
  EXPECT_THROW(service::parse_command("fail -3"), std::invalid_argument);
  EXPECT_THROW(service::parse_command("fail x"), std::invalid_argument);
  EXPECT_THROW(service::parse_command("advance nope"), std::invalid_argument);
  EXPECT_THROW(service::parse_command("status now"), std::invalid_argument);
}

// `advance 0` would run events at the current instant that a snapshot replay
// cannot reproduce — the parser is where that door stays shut.
TEST(Protocol, RejectsNonPositiveAdvance) {
  EXPECT_THROW(service::parse_command("advance 0"), std::invalid_argument);
  EXPECT_THROW(service::parse_command("advance -5"), std::invalid_argument);
  EXPECT_THROW(service::parse_command("advance inf"), std::invalid_argument);
  EXPECT_THROW(service::parse_command("advance nan"), std::invalid_argument);
}

TEST(Protocol, MutationClassification) {
  EXPECT_TRUE(service::is_mutation(service::CommandKind::kFail));
  EXPECT_TRUE(service::is_mutation(service::CommandKind::kAdvance));
  EXPECT_TRUE(service::is_mutation(service::CommandKind::kCrashRobot));
  EXPECT_TRUE(service::is_mutation(service::CommandKind::kRepairRobot));
  EXPECT_FALSE(service::is_mutation(service::CommandKind::kStatus));
  EXPECT_FALSE(service::is_mutation(service::CommandKind::kTelemetry));
  EXPECT_FALSE(service::is_mutation(service::CommandKind::kSnapshot));
  EXPECT_FALSE(service::is_mutation(service::CommandKind::kQuit));
}

TEST(Protocol, AdvanceSecondsRoundTripBitwise) {
  service::Command c;
  c.kind = service::CommandKind::kAdvance;
  c.seconds = 0.1 + 0.2;  // not representable prettily: %.17g must round-trip
  const auto again = service::parse_command(service::format_command(c));
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(c.seconds, again->seconds);
}

// --- signal flag ------------------------------------------------------------

TEST(Signal, FlagSetAndResetProgrammatically) {
  service::reset_shutdown();
  EXPECT_FALSE(service::shutdown_requested());
  service::request_shutdown();
  EXPECT_TRUE(service::shutdown_requested());
  service::reset_shutdown();
  EXPECT_FALSE(service::shutdown_requested());
}

TEST(Signal, SigintSetsTheFlag) {
  service::install_signal_handlers();
  service::reset_shutdown();
  std::raise(SIGINT);
  EXPECT_TRUE(service::shutdown_requested());
  service::reset_shutdown();
}

// --- simulator interrupt ----------------------------------------------------

TEST(SimulatorInterrupt, ProbeStopsTheLoopAndLeavesClockAtLastEvent) {
  sim::Simulator simulator;
  std::atomic<int> executed{0};
  for (int i = 1; i <= 1000; ++i) {
    simulator.at(static_cast<double>(i), [&executed] { ++executed; });
  }
  bool stop = false;
  simulator.set_interrupt([&stop] { return stop; }, /*stride=*/1);
  simulator.at(250.5, [&stop] { stop = true; });
  simulator.run_until(1000.0);
  EXPECT_TRUE(simulator.interrupted());
  // The probe fires on the first check at or after the flag flips; the clock
  // must NOT have jumped to the horizon.
  EXPECT_LT(simulator.now(), 1000.0);
  EXPECT_LT(executed.load(), 1000);
  // Clearing the probe and re-running finishes the remainder.
  simulator.set_interrupt({});
  simulator.run_until(1000.0);
  EXPECT_FALSE(simulator.interrupted());
  EXPECT_EQ(executed.load(), 1000);
  EXPECT_EQ(simulator.now(), 1000.0);
}

TEST(SimulatorInterrupt, NoProbeMeansNoOverheadPathChanges) {
  sim::Simulator simulator;
  int runs = 0;
  simulator.at(1.0, [&runs] { ++runs; });
  simulator.run_until(10.0);
  EXPECT_FALSE(simulator.interrupted());
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(simulator.now(), 10.0);
}

// --- stepped run_until == single run (satellite regression) -----------------

core::SimulationConfig stepped_config(core::Algorithm algorithm, bool chaos) {
  core::SimulationConfig cfg;
  cfg.algorithm = algorithm;
  cfg.robots = 4;
  cfg.seed = 77;
  cfg.sim_duration = 8000.0;
  if (chaos) {
    cfg.robot_faults.mtbf = 1200.0;
    cfg.robot_faults.mttr = 600.0;
    cfg.robot_faults.heartbeat_period = 40.0;
    cfg.radio.loss_probability = 0.05;
  }
  return cfg;
}

void expect_identical(const core::ExperimentResult& a, const core::ExperimentResult& b) {
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.reported, b.reported);
  EXPECT_EQ(a.repaired, b.repaired);
  EXPECT_EQ(a.unreported, b.unreported);
  EXPECT_EQ(a.router_drops, b.router_drops);
  // Bitwise, not NEAR: stepping the clock must not reorder or re-draw
  // anything; any ULP of drift means the service's advance loop diverges
  // from batch runs.
  EXPECT_EQ(a.avg_travel_per_repair, b.avg_travel_per_repair);
  EXPECT_EQ(a.avg_report_hops, b.avg_report_hops);
  EXPECT_EQ(a.avg_request_hops, b.avg_request_hops);
  EXPECT_EQ(a.location_update_tx_per_repair, b.location_update_tx_per_repair);
  EXPECT_EQ(a.avg_detection_latency, b.avg_detection_latency);
  EXPECT_EQ(a.avg_repair_latency, b.avg_repair_latency);
  EXPECT_EQ(a.p95_repair_latency, b.p95_repair_latency);
  EXPECT_EQ(a.total_robot_distance, b.total_robot_distance);
  EXPECT_EQ(a.motion_energy_j, b.motion_energy_j);
  EXPECT_EQ(a.robot_failures, b.robot_failures);
  EXPECT_EQ(a.tasks_lost, b.tasks_lost);
  EXPECT_EQ(a.redispatches, b.redispatches);
  EXPECT_EQ(a.failover_events, b.failover_events);
  EXPECT_EQ(a.adoptions, b.adoptions);
  EXPECT_EQ(a.robot_repairs, b.robot_repairs);
  EXPECT_EQ(a.elections, b.elections);
  EXPECT_EQ(a.handbacks, b.handbacks);
  EXPECT_EQ(a.ownership_transfers, b.ownership_transfers);
  EXPECT_EQ(a.transmissions, b.transmissions);
}

class SteppedEquivalence : public ::testing::TestWithParam<core::Algorithm> {};

TEST_P(SteppedEquivalence, ManyRunUntilStepsMatchOneRunBitwise) {
  const auto cfg = stepped_config(GetParam(), /*chaos=*/false);
  core::Simulation whole(cfg);
  whole.run();

  core::Simulation stepped(cfg);
  // Deliberately uneven steps, a repeated horizon (no-op run_until), and a
  // final run() — the exact call pattern a daemon's advance loop produces.
  for (const double t : {500.0, 501.25, 2000.0, 2000.0, 6400.0, 7999.5}) {
    stepped.run_until(t);
  }
  stepped.run();
  expect_identical(whole.result(), stepped.result());
}

TEST_P(SteppedEquivalence, SteppingUnderFaultChaosMatchesBitwise) {
  const auto cfg = stepped_config(GetParam(), /*chaos=*/true);
  core::Simulation whole(cfg);
  whole.run();

  core::Simulation stepped(cfg);
  for (int i = 1; i <= 16; ++i) {
    stepped.run_until(cfg.sim_duration * static_cast<double>(i) / 16.0);
  }
  stepped.run();
  expect_identical(whole.result(), stepped.result());
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, SteppedEquivalence,
                         ::testing::Values(core::Algorithm::kCentralized,
                                           core::Algorithm::kFixedDistributed,
                                           core::Algorithm::kDynamicDistributed),
                         [](const ::testing::TestParamInfo<core::Algorithm>& tpi) {
                           return std::string(core::to_string(tpi.param));
                         });

// --- daemon -----------------------------------------------------------------

service::DaemonOptions daemon_options(core::Algorithm algorithm) {
  service::DaemonOptions opts;
  opts.algorithm = algorithm;
  opts.robots = 4;
  opts.seed = 11;
  opts.telemetry_period = 100.0;
  return opts;
}

TEST(Daemon, CommandRepliesAndIdempotenceErrors) {
  service::reset_shutdown();
  service::Daemon daemon(daemon_options(core::Algorithm::kCentralized));
  EXPECT_FALSE(daemon.handle_line("").has_value());
  EXPECT_FALSE(daemon.handle_line("# comment").has_value());

  auto reply = daemon.handle_line("fail 3");
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(*reply, "ok fail 3");
  // Same slot again: already dead, a benign no-op — and NOT journaled.
  reply = daemon.handle_line("fail 3");
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(*reply, "err sensor 3 already dead");
  EXPECT_EQ(daemon.journal().size(), 1u);

  EXPECT_EQ(daemon.handle_line("repair-robot 0").value(), "err robot 0 already alive");
  EXPECT_EQ(daemon.handle_line("crash-robot 2").value(), "ok crash-robot 2");
  EXPECT_EQ(daemon.handle_line("crash-robot 2").value(), "err robot 2 already dead");
  EXPECT_EQ(daemon.handle_line("repair-robot 2").value(), "ok repair-robot 2");

  // Out-of-range operands become err replies, not exceptions.
  const auto bad = daemon.handle_line("crash-robot 99");
  ASSERT_TRUE(bad.has_value());
  EXPECT_EQ(bad->rfind("err ", 0), 0u) << *bad;
  const auto bad_sensor = daemon.handle_line("fail 999999");
  ASSERT_TRUE(bad_sensor.has_value());
  EXPECT_EQ(bad_sensor->rfind("err ", 0), 0u) << *bad_sensor;

  const auto advance = daemon.handle_line("advance 50");
  ASSERT_TRUE(advance.has_value());
  EXPECT_EQ(*advance, "ok advance 50");
  EXPECT_EQ(daemon.simulation().simulator().now(), 50.0);

  const auto status = daemon.handle_line("status");
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->rfind("ok clock=50 ", 0), 0u) << *status;

  EXPECT_EQ(daemon.handle_line("bogus cmd").value().rfind("err ", 0), 0u);
  EXPECT_FALSE(daemon.quit_requested());
  EXPECT_EQ(daemon.handle_line("quit").value(), "ok quit");
  EXPECT_TRUE(daemon.quit_requested());
}

TEST(Daemon, AdvanceBeyondHorizonIsRejected) {
  service::reset_shutdown();
  auto opts = daemon_options(core::Algorithm::kDynamicDistributed);
  opts.horizon = 1000.0;
  service::Daemon daemon(opts);
  EXPECT_EQ(daemon.handle_line("advance 999").value(), "ok advance 999");
  const auto reply = daemon.handle_line("advance 2");
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->rfind("err advance", 0), 0u) << *reply;
  // The rejected advance must not have moved the clock or journaled.
  EXPECT_EQ(daemon.simulation().simulator().now(), 999.0);
  EXPECT_EQ(daemon.journal().back().command.kind, service::CommandKind::kAdvance);
  EXPECT_EQ(daemon.journal().back().t, 999.0);
}

TEST(Daemon, ServeScriptIsDeterministic) {
  service::reset_shutdown();
  const std::string script =
      "status\nfail 5\nadvance 250\ncrash-robot 0\nadvance 250\n"
      "repair-robot 0\nadvance 100\nstatus\nquit\n";
  auto transcript = [&script] {
    service::Daemon daemon(daemon_options(core::Algorithm::kFixedDistributed));
    std::istringstream in(script);
    std::ostringstream out;
    daemon.serve(in, out);
    return out.str();
  };
  const std::string first = transcript();
  const std::string second = transcript();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("ok fail 5"), std::string::npos);
  EXPECT_NE(first.find("telemetry t=100.000 "), std::string::npos);
  EXPECT_NE(first.find("bye clock=600 "), std::string::npos);
}

TEST(Daemon, TelemetryCommandSamplesWithoutPerturbingTheStream) {
  service::reset_shutdown();
  service::Daemon daemon(daemon_options(core::Algorithm::kCentralized));
  std::vector<std::string> stream;
  daemon.exporter()->set_line_sink([&stream](const std::string& s) { stream.push_back(s); });
  daemon.handle_line("advance 150");
  const auto one = daemon.handle_line("telemetry");
  ASSERT_TRUE(one.has_value());
  EXPECT_EQ(one->rfind("telemetry t=150.000 ", 0), 0u) << *one;
  EXPECT_NE(one->find("\nok telemetry"), std::string::npos);
  daemon.handle_line("advance 150");
  ASSERT_EQ(stream.size(), 3u);  // ticks at 100, 200, 300 — the read didn't tick
  EXPECT_EQ(stream[0].rfind("telemetry t=100.000 ", 0), 0u);
  EXPECT_EQ(stream[2].rfind("telemetry t=300.000 ", 0), 0u);
}

TEST(Daemon, TelemetryDisabledYieldsErr) {
  service::reset_shutdown();
  auto opts = daemon_options(core::Algorithm::kCentralized);
  opts.telemetry_period = 0.0;
  service::Daemon daemon(opts);
  EXPECT_EQ(daemon.exporter(), nullptr);
  const auto reply = daemon.handle_line("telemetry");
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->rfind("err ", 0), 0u) << *reply;
}

// --- JSONL sink (threading; TSan runs this in CI) ---------------------------

TEST(JsonlSink, ConcurrentProducersAllLinesArriveExactlyOnce) {
  std::ostringstream out;
  {
    service::JsonlSink sink(out, /*capacity=*/64);  // small: force backpressure
    std::vector<std::thread> producers;
    for (int p = 0; p < 4; ++p) {
      producers.emplace_back([&sink, p] {
        for (int i = 0; i < 500; ++i) {
          sink.push("{\"p\":" + std::to_string(p) + ",\"i\":" + std::to_string(i) + "}");
        }
      });
    }
    for (auto& t : producers) t.join();
    sink.close();
    EXPECT_EQ(sink.written(), 2000u);
  }
  std::istringstream lines(out.str());
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++n;
  }
  EXPECT_EQ(n, 2000u);
}

TEST(JsonlSink, CloseIsIdempotentAndDropsLatePushes) {
  std::ostringstream out;
  service::JsonlSink sink(out);
  sink.push("{\"a\":1}");
  sink.close();
  sink.push("{\"late\":true}");  // dropped, not crashed
  sink.close();
  EXPECT_EQ(sink.written(), 1u);
}

// --- retention primitives ---------------------------------------------------

TEST(TracerCompact, RetiresOldClosedSpansKeepsOpenOnes) {
  obs::Tracer tracer;
  tracer.open(1, obs::Stage::kRepair, 10.0, 5);
  tracer.close(1, obs::Stage::kRepair, 20.0);
  tracer.open(2, obs::Stage::kRepair, 30.0, 6);
  tracer.close(2, obs::Stage::kRepair, 90.0);
  tracer.open(3, obs::Stage::kTravel, 15.0, 7);  // ancient but still open

  tracer.compact(/*before=*/50.0);
  EXPECT_EQ(tracer.retired(), 1u);            // span 1 (ended 20) retired
  EXPECT_EQ(tracer.opened(), 2u);             // span 2 + the open span 3
  EXPECT_EQ(tracer.closed_count(), 1u);
  EXPECT_TRUE(tracer.is_open(3, obs::Stage::kTravel));
  ASSERT_EQ(tracer.stage_durations(obs::Stage::kRepair).size(), 1u);
  EXPECT_EQ(tracer.stage_durations(obs::Stage::kRepair)[0], 60.0);

  // The open span survived with working bookkeeping: closing it after the
  // compaction must land on the right span.
  tracer.close(3, obs::Stage::kTravel, 100.0);
  EXPECT_EQ(tracer.stray_closes(), 0u);
  ASSERT_EQ(tracer.stage_durations(obs::Stage::kTravel).size(), 1u);
  EXPECT_EQ(tracer.stage_durations(obs::Stage::kTravel)[0], 85.0);

  tracer.compact(/*before=*/500.0);
  EXPECT_EQ(tracer.retired(), 3u);
  EXPECT_EQ(tracer.opened(), 0u);
}

TEST(TimeSeriesDropBefore, KeepsTheSampleInForceAtTheCutoff) {
  metrics::TimeSeries series;
  for (int i = 0; i <= 10; ++i) series.add(i * 10.0, static_cast<double>(i));
  series.drop_before(35.0);
  EXPECT_EQ(series.dropped(), 3u);  // t=0,10,20 dropped; t=30 is in force at 35
  EXPECT_EQ(series.size(), 8u);
  EXPECT_EQ(series.value_at(35.0), 3.0);
  EXPECT_EQ(series.value_at(100.0), 10.0);
  series.drop_before(1000.0);  // far future: everything but the last sample
  EXPECT_EQ(series.size(), 1u);
  EXPECT_EQ(series.value_at(1000.0), 10.0);
  series.drop_before(2000.0);  // idempotent on a single sample
  EXPECT_EQ(series.size(), 1u);
}

TEST(TelemetryExporter, RetentionWindowBoundsSeriesAndTracer) {
  service::reset_shutdown();
  auto opts = daemon_options(core::Algorithm::kDynamicDistributed);
  opts.telemetry_period = 50.0;
  opts.retention_window = 200.0;
  opts.trace_stages = true;
  service::Daemon daemon(opts);
  daemon.handle_line("advance 2000");
  const auto& availability = daemon.exporter()->availability_series();
  ASSERT_FALSE(availability.empty());
  // 40 ticks happened; the window keeps ~200s/50s = 4-5 of them.
  EXPECT_LE(availability.size(), 6u);
  EXPECT_GE(availability.points().front().first, 1750.0);
  EXPECT_EQ(daemon.exporter()->samples_taken(), 40u);
}

// --- snapshot ---------------------------------------------------------------

TEST(Snapshot, TextRoundTripPreservesEverything) {
  service::reset_shutdown();
  auto opts = daemon_options(core::Algorithm::kFixedDistributed);
  opts.retention_window = 500.0;
  opts.trace_stages = true;
  service::Daemon daemon(opts);
  daemon.handle_line("fail 9");
  daemon.handle_line("advance 333.125");
  daemon.handle_line("crash-robot 1");
  daemon.handle_line("advance 100.5");

  const service::Snapshot snap = daemon.make_snapshot();
  std::stringstream text;
  snap.write(text);
  const service::Snapshot loaded = service::Snapshot::read(text);

  EXPECT_EQ(loaded.options.algorithm, snap.options.algorithm);
  EXPECT_EQ(loaded.options.robots, snap.options.robots);
  EXPECT_EQ(loaded.options.seed, snap.options.seed);
  EXPECT_EQ(loaded.options.horizon, snap.options.horizon);
  EXPECT_EQ(loaded.options.mean_lifetime, snap.options.mean_lifetime);
  EXPECT_EQ(loaded.options.spontaneous_failures, snap.options.spontaneous_failures);
  EXPECT_EQ(loaded.options.telemetry_period, snap.options.telemetry_period);
  EXPECT_EQ(loaded.options.retention_window, snap.options.retention_window);
  EXPECT_EQ(loaded.options.trace_stages, snap.options.trace_stages);
  EXPECT_EQ(loaded.clock, snap.clock);
  EXPECT_EQ(loaded.journal, snap.journal);
  EXPECT_TRUE(loaded.digest == snap.digest);
}

TEST(Snapshot, RejectsGarbage) {
  {
    std::istringstream in("not a snapshot\n");
    EXPECT_THROW(service::Snapshot::read(in), std::runtime_error);
  }
  {
    std::istringstream in("sensrep-snapshot v1\nfrobnicate 3\nend\n");
    EXPECT_THROW(service::Snapshot::read(in), std::runtime_error);
  }
  {
    // Truncated: no digest/end.
    std::istringstream in("sensrep-snapshot v1\nrobots 4\n");
    EXPECT_THROW(service::Snapshot::read(in), std::runtime_error);
  }
}

TEST(Snapshot, RestoreVerifiesTheDigestAndThrowsOnMismatch) {
  service::reset_shutdown();
  service::Daemon daemon(daemon_options(core::Algorithm::kCentralized));
  daemon.handle_line("fail 4");
  daemon.handle_line("advance 200");
  service::Snapshot snap = daemon.make_snapshot();
  snap.digest.transmissions += 1;  // tamper
  EXPECT_THROW({ service::Daemon restored(snap); }, std::runtime_error);
}

// --- the kill-and-restore differential --------------------------------------

class RestoreDifferential : public ::testing::TestWithParam<core::Algorithm> {};

TEST_P(RestoreDifferential, RestoredDaemonMatchesUninterruptedRunBitwise) {
  service::reset_shutdown();
  const auto opts = daemon_options(GetParam());

  // Daemon A runs prefix + suffix uninterrupted, collecting telemetry.
  service::Daemon a(opts);
  std::vector<std::string> tel_a;
  a.exporter()->set_line_sink([&tel_a](const std::string& s) { tel_a.push_back(s); });

  const std::vector<std::string> prefix = {"fail 3", "advance 400", "crash-robot 1",
                                           "advance 333.25"};
  const std::vector<std::string> suffix = {"repair-robot 1", "advance 500", "fail 7",
                                           "advance 766.75"};
  for (const auto& line : prefix) {
    const auto r = a.handle_line(line);
    ASSERT_TRUE(r.has_value() && r->rfind("ok", 0) == 0) << line << " -> " << *r;
  }

  // "Kill" A here: snapshot through the text format, like the real file.
  std::stringstream text;
  a.make_snapshot().write(text);
  const std::size_t tel_mark = tel_a.size();

  // Daemon B restores and both run the identical suffix.
  service::Daemon b(service::Snapshot::read(text));
  EXPECT_EQ(b.status_line(), a.status_line());
  EXPECT_EQ(b.journal().size(), a.journal().size());
  std::vector<std::string> tel_b;
  b.exporter()->set_line_sink([&tel_b](const std::string& s) { tel_b.push_back(s); });

  for (const auto& line : suffix) {
    const auto ra = a.handle_line(line);
    const auto rb = b.handle_line(line);
    ASSERT_TRUE(ra.has_value() && rb.has_value()) << line;
    EXPECT_EQ(*ra, *rb) << line;
  }

  // Digest, full metrics, and the telemetry tail all match bitwise.
  EXPECT_EQ(a.status_line(), b.status_line());
  expect_identical(a.simulation().result(), b.simulation().result());
  const std::vector<std::string> tail_a(tel_a.begin() + static_cast<std::ptrdiff_t>(tel_mark),
                                        tel_a.end());
  EXPECT_FALSE(tail_a.empty());
  EXPECT_EQ(tail_a, tel_b);

  // A later snapshot taken from the *restored* daemon restores again: the
  // journal is preserved from genesis, not since the last restore.
  std::stringstream text2;
  b.make_snapshot().write(text2);
  service::Daemon c(service::Snapshot::read(text2));
  EXPECT_EQ(c.status_line(), b.status_line());
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, RestoreDifferential,
                         ::testing::Values(core::Algorithm::kCentralized,
                                           core::Algorithm::kFixedDistributed,
                                           core::Algorithm::kDynamicDistributed),
                         [](const ::testing::TestParamInfo<core::Algorithm>& tpi) {
                           return std::string(core::to_string(tpi.param));
                         });

// --- executor cancellation --------------------------------------------------

TEST(ExecutorCancellation, CancelledBatchRecordsCancelledFailures) {
  runner::ParameterGrid grid;
  grid.algorithms = {core::Algorithm::kCentralized};
  grid.robot_counts = {4};
  grid.seeds = 2;
  grid.base.sim_duration = 4000.0;
  runner::ExecutorOptions options;
  options.jobs = 2;
  options.cancelled = [] { return true; };  // cancelled before anything runs
  runner::Executor executor(options);
  const auto batch = executor.run(grid, nullptr);
  EXPECT_EQ(batch.completed(), 0u);
  ASSERT_EQ(batch.failures.size(), grid.size());
  for (const auto& f : batch.failures) EXPECT_EQ(f.error, "cancelled");
}

TEST(ExecutorCancellation, MidRunCancellationKeepsFinishedRowsAndStopsTheRest) {
  runner::ParameterGrid grid;
  grid.algorithms = {core::Algorithm::kCentralized};
  grid.robot_counts = {4};
  grid.seeds = 4;
  grid.base.sim_duration = 8000.0;
  std::atomic<bool> cancel{false};
  runner::ExecutorOptions options;
  options.jobs = 1;  // serial: the first job finishes, then we cancel
  options.cancelled = [&cancel] { return cancel.load(); };
  runner::Executor executor(options);

  class CancelAfterFirst : public runner::ResultSink {
   public:
    explicit CancelAfterFirst(std::atomic<bool>& flag) : flag_(flag) {}
    void accept(const runner::Job&, const core::ExperimentResult&) override {
      ++rows_;
      flag_.store(true);
    }
    std::size_t rows_ = 0;

   private:
    std::atomic<bool>& flag_;
  } sink(cancel);

  const auto batch = executor.run(grid, &sink);
  EXPECT_GE(sink.rows_, 1u);
  EXPECT_LT(sink.rows_, grid.size());
  EXPECT_EQ(batch.completed() + batch.failures.size(), grid.size());
  for (const auto& f : batch.failures) EXPECT_EQ(f.error, "cancelled");
}

}  // namespace
