// Tests for the localization substrate: Gauss-Newton multilateration on
// crafted geometries, field-level anchor localization accuracy, and the
// Rng::normal primitive it relies on.

#include <gtest/gtest.h>

#include <cmath>

#include "geometry/localization.hpp"
#include "geometry/rect.hpp"
#include "sim/rng.hpp"
#include "wsn/deployment.hpp"

namespace sensrep::geometry {
namespace {

TEST(RngNormalTest, MomentsMatch) {
  sim::Rng rng(1);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 3.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(RngNormalTest, ZeroStddevIsDeterministic) {
  sim::Rng rng(1);
  EXPECT_DOUBLE_EQ(rng.normal(7.0, 0.0), 7.0);
}

TEST(MultilaterateTest, ExactRangesRecoverThePoint) {
  const Vec2 truth{30.0, 40.0};
  std::vector<RangeMeasurement> ranges;
  for (const Vec2 anchor : {Vec2{0, 0}, Vec2{100, 0}, Vec2{0, 100}}) {
    ranges.push_back({anchor, distance(truth, anchor)});
  }
  const auto fix = multilaterate(ranges, {50, 50});
  ASSERT_TRUE(fix.has_value());
  EXPECT_TRUE(almost_equal(*fix, truth, 1e-6));
}

TEST(MultilaterateTest, OverdeterminedNoisyFitStaysClose) {
  sim::Rng rng(3);
  const Vec2 truth{123.0, 77.0};
  std::vector<RangeMeasurement> ranges;
  for (int i = 0; i < 8; ++i) {
    const Vec2 anchor{rng.uniform(0, 300), rng.uniform(0, 300)};
    ranges.push_back({anchor, distance(truth, anchor) + rng.normal(0.0, 2.0)});
  }
  const auto fix = multilaterate(ranges, {150, 150});
  ASSERT_TRUE(fix.has_value());
  EXPECT_LT(distance(*fix, truth), 5.0);
}

TEST(MultilaterateTest, TooFewMeasurementsRejected) {
  std::vector<RangeMeasurement> two{{{0, 0}, 10.0}, {{20, 0}, 10.0}};
  EXPECT_FALSE(multilaterate(two, {10, 0}).has_value());
}

TEST(MultilaterateTest, CollinearAnchorsRejected) {
  // Three anchors on a line cannot resolve the mirror ambiguity; the normal
  // matrix is singular at the symmetric initial guess.
  std::vector<RangeMeasurement> ranges{
      {{0, 0}, 50.0}, {{100, 0}, 50.0}, {{200, 0}, 111.8}};
  EXPECT_FALSE(multilaterate(ranges, {50, 0}).has_value());
}

TEST(LocalizeFieldTest, AnchorsKeepTruth) {
  sim::Rng deploy_rng(5);
  const auto truth =
      wsn::uniform_deployment(deploy_rng, Rect::sized(400, 400), 200);
  LocalizationConfig cfg;
  sim::Rng rng(6);
  const auto result = localize_field(truth, cfg, rng);
  ASSERT_EQ(result.estimated.size(), truth.size());
  std::size_t anchors = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (result.is_anchor[i]) {
      ++anchors;
      EXPECT_EQ(result.estimated[i], truth[i]);
    }
  }
  EXPECT_EQ(anchors, 20u);  // 10% of 200
}

TEST(LocalizeFieldTest, ErrorScalesWithRangingNoise) {
  sim::Rng deploy_rng(5);
  const auto truth =
      wsn::uniform_deployment(deploy_rng, Rect::sized(400, 400), 200);
  const auto error_at = [&](double noise) {
    LocalizationConfig cfg;
    cfg.range_noise_stddev = noise;
    sim::Rng rng(7);
    return localize_field(truth, cfg, rng).mean_error;
  };
  const double quiet = error_at(0.5);
  const double noisy = error_at(8.0);
  EXPECT_LT(quiet, 2.0);
  EXPECT_GT(noisy, quiet * 3.0);
}

TEST(LocalizeFieldTest, PerfectRangingIsNearExact) {
  sim::Rng deploy_rng(8);
  const auto truth =
      wsn::uniform_deployment(deploy_rng, Rect::sized(300, 300), 120);
  LocalizationConfig cfg;
  cfg.range_noise_stddev = 0.0;
  sim::Rng rng(9);
  const auto result = localize_field(truth, cfg, rng);
  EXPECT_LT(result.mean_error, 1e-3);
}

TEST(LocalizeFieldTest, ValidatesConfig) {
  sim::Rng rng(1);
  const std::vector<Vec2> pts{{0, 0}, {1, 1}, {2, 2}, {3, 3}};
  LocalizationConfig cfg;
  cfg.anchor_fraction = 0.0;
  EXPECT_THROW((void)localize_field(pts, cfg, rng), std::invalid_argument);
  cfg = {};
  cfg.min_anchors = 2;
  EXPECT_THROW((void)localize_field(pts, cfg, rng), std::invalid_argument);
}

TEST(LocalizeFieldTest, SparseAnchorsFallBackToNearest) {
  // All anchors far from some nodes (beyond max ranging distance): the
  // DV-distance fallback must still produce finite estimates for everyone.
  sim::Rng deploy_rng(11);
  const auto truth =
      wsn::uniform_deployment(deploy_rng, Rect::sized(1000, 1000), 150);
  LocalizationConfig cfg;
  cfg.anchor_fraction = 0.03;
  cfg.max_ranging_distance = 80.0;
  sim::Rng rng(12);
  const auto result = localize_field(truth, cfg, rng);
  for (const Vec2 p : result.estimated) {
    EXPECT_TRUE(std::isfinite(p.x));
    EXPECT_TRUE(std::isfinite(p.y));
  }
}

}  // namespace
}  // namespace sensrep::geometry
