// Unit tests for the robot substrate: FCFS task queue, kinematic movement,
// threshold-triggered location updates, spares/depot logic.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "metrics/counters.hpp"
#include "metrics/failure_log.hpp"
#include "net/medium.hpp"
#include "robot/energy.hpp"
#include "robot/robot.hpp"
#include "robot/task_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "wsn/sensor_field.hpp"

namespace sensrep::robot {
namespace {

using geometry::Vec2;
using net::NodeId;
using net::Packet;

// --- TaskQueue --------------------------------------------------------------

TEST(TaskQueueTest, FifoOrder) {
  TaskQueue q;
  q.push({1, {0, 0}, 0, 0.0});
  q.push({2, {0, 0}, 0, 0.0});
  q.push({3, {0, 0}, 0, 0.0});
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop()->slot, 1u);
  EXPECT_EQ(q.pop()->slot, 2u);
  EXPECT_EQ(q.pop()->slot, 3u);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(TaskQueueTest, FrontPeeksWithoutRemoval) {
  TaskQueue q;
  EXPECT_FALSE(q.front().has_value());
  q.push({7, {1, 2}, 0, 0.0});
  EXPECT_EQ(q.front()->slot, 7u);
  EXPECT_EQ(q.size(), 1u);
}

TEST(TaskQueueTest, ContainsSlot) {
  TaskQueue q;
  q.push({7, {1, 2}, 0, 0.0});
  EXPECT_TRUE(q.contains_slot(7));
  EXPECT_FALSE(q.contains_slot(8));
}

// --- EnergyModel -------------------------------------------------------------

TEST(EnergyModelTest, MotionEnergyScalesWithDistance) {
  const EnergyModel m;
  EXPECT_DOUBLE_EQ(m.motion_energy_j(0.0), 0.0);
  EXPECT_DOUBLE_EQ(m.motion_energy_j(100.0), (21.0 - 6.0) * 100.0);
  EXPECT_DOUBLE_EQ(m.motion_energy_j(200.0), 2.0 * m.motion_energy_j(100.0));
}

TEST(EnergyModelTest, MissionEnergyHasIdleFloor) {
  const EnergyModel m;
  // Parked the whole mission: pure idle draw.
  EXPECT_DOUBLE_EQ(m.mission_energy_j(0.0, 1000.0), 6.0 * 1000.0);
  // Driving swaps idle seconds for drive seconds.
  EXPECT_DOUBLE_EQ(m.mission_energy_j(100.0, 1000.0),
                   21.0 * 100.0 + 6.0 * 900.0);
  // Identity: mission == idle floor + marginal motion energy.
  EXPECT_DOUBLE_EQ(m.mission_energy_j(100.0, 1000.0),
                   6.0 * 1000.0 + m.motion_energy_j(100.0));
}

TEST(EnergyModelTest, FasterRobotSpendsLessTimeEnergy) {
  EnergyModel fast;
  fast.speed_m_per_s = 2.0;
  const EnergyModel slow;
  EXPECT_LT(fast.motion_energy_j(100.0), slow.motion_energy_j(100.0));
}

// --- RobotNode -----------------------------------------------------------------

/// Policy stub: counts update events and delivered packets.
class StubRobotPolicy : public RobotPolicy {
 public:
  void on_robot_location_update(RobotNode&) override { ++updates; }
  void on_robot_packet(RobotNode&, const Packet& pkt) override { delivered.push_back(pkt); }

  int updates = 0;
  std::vector<Packet> delivered;
};

/// Sensor policy stub for the field the robot repairs into.
class NullSensorPolicy : public wsn::SensorPolicy {
 public:
  std::optional<wsn::ReportTarget> report_target(const wsn::SensorNode&) const override {
    return std::nullopt;
  }
  void on_location_update(wsn::SensorNode&, const Packet&, NodeId) override {}
};

class RobotFixture : public ::testing::Test {
 protected:
  RobotFixture() : medium_(sim_, sim::Rng(3), net::RadioConfig{}, counters_, 63.0) {
    wsn::FieldConfig fc;
    fc.spontaneous_failures = false;
    field_ = std::make_unique<wsn::SensorField>(sim_, medium_, sensor_policy_, log_, fc,
                                                sim::Rng(5));
    field_->deploy({{0, 0}, {40, 0}, {80, 0}, {120, 0}, {160, 0}});
    field_->initialize();
    field_->start();
  }

  RobotNode& make_robot(Vec2 pos, RobotNode::Config cfg = {}) {
    const NodeId id = 100 + static_cast<NodeId>(robots_.size());
    robots_.push_back(
        std::make_unique<RobotNode>(id, pos, cfg, sim_, medium_, *field_, policy_));
    return *robots_.back();
  }

  /// Fails a slot and returns the metrics failure id tag (record id + 1).
  std::uint64_t fail(NodeId slot) {
    field_->fail_slot(slot);
    return *field_->open_failure(slot) + 1;
  }

  sim::Simulator sim_;
  metrics::TransmissionCounters counters_;
  net::Medium medium_;
  NullSensorPolicy sensor_policy_;
  metrics::FailureLog log_;
  std::unique_ptr<wsn::SensorField> field_;
  StubRobotPolicy policy_;
  std::vector<std::unique_ptr<RobotNode>> robots_;
};

TEST_F(RobotFixture, DrivesAtConfiguredSpeedAndReplaces) {
  auto& r = make_robot({0, 100});  // 100 m from slot 0
  const auto fid = fail(0);
  r.enqueue({0, {0, 0}, fid, sim_.now()});
  EXPECT_TRUE(r.busy());
  sim_.run_until(99.0);
  EXPECT_FALSE(field_->node(0).alive());  // not there yet at 1 m/s
  sim_.run_until(101.0);
  EXPECT_TRUE(field_->node(0).alive());
  EXPECT_FALSE(r.busy());
  EXPECT_NEAR(r.odometer(), 100.0, 1e-6);
  EXPECT_EQ(r.repairs_done(), 1u);
  EXPECT_NEAR(log_.at(fid - 1).travel_distance, 100.0, 1e-6);
}

TEST_F(RobotFixture, EmitsUpdateEveryThresholdLeg) {
  RobotNode::Config cfg;
  cfg.update_threshold = 20.0;
  auto& r = make_robot({0, 100}, cfg);
  const auto fid = fail(0);
  r.enqueue({0, {0, 0}, fid, sim_.now()});
  sim_.run_until(200.0);
  EXPECT_EQ(policy_.updates, 5);  // 100 m / 20 m per leg
}

TEST_F(RobotFixture, PartialFinalLegStillUpdatesOnArrival) {
  RobotNode::Config cfg;
  cfg.update_threshold = 30.0;
  auto& r = make_robot({0, 70}, cfg);
  const auto fid = fail(0);
  r.enqueue({0, {0, 0}, fid, sim_.now()});
  sim_.run_until(200.0);
  EXPECT_EQ(policy_.updates, 3);  // 30 + 30 + 10
  EXPECT_NEAR(r.odometer(), 70.0, 1e-6);
}

TEST_F(RobotFixture, QueueServedFcfsWhileBusy) {
  auto& r = make_robot({0, 50});
  const auto f0 = fail(0);
  const auto f2 = fail(2);
  const auto f4 = fail(4);
  r.enqueue({0, {0, 0}, f0, sim_.now()});
  r.enqueue({2, {80, 0}, f2, sim_.now()});
  r.enqueue({4, {160, 0}, f4, sim_.now()});
  EXPECT_EQ(r.queue().size(), 2u);  // first task already started
  sim_.run_until(1000.0);
  EXPECT_EQ(r.repairs_done(), 3u);
  // Legs: 50 (to slot0) + 80 (to slot2) + 80 (to slot4).
  EXPECT_NEAR(r.odometer(), 210.0, 1e-6);
  // Per-failure travel excludes the other legs.
  EXPECT_NEAR(log_.at(f2 - 1).travel_distance, 80.0, 1e-6);
  EXPECT_NEAR(log_.at(f4 - 1).travel_distance, 80.0, 1e-6);
}

TEST_F(RobotFixture, DuplicateSlotEnqueueIgnored) {
  auto& r = make_robot({0, 50});
  const auto f0 = fail(0);
  r.enqueue({0, {0, 0}, f0, sim_.now()});
  r.enqueue({0, {0, 0}, f0, sim_.now()});  // duplicate of the active task
  EXPECT_EQ(r.queue().size(), 0u);
  sim_.run_until(100.0);
  EXPECT_EQ(r.repairs_done(), 1u);
}

TEST_F(RobotFixture, DispatchTimeRecordedOnEnqueue) {
  auto& r = make_robot({0, 50});
  sim_.run_until(5.0);
  const auto fid = fail(0);
  r.enqueue({0, {0, 0}, fid, sim_.now()});
  EXPECT_DOUBLE_EQ(log_.at(fid - 1).dispatched_at, 5.0);
}

TEST_F(RobotFixture, TeleportOnlyWhenIdle) {
  auto& r = make_robot({0, 50});
  r.teleport({10, 10});
  EXPECT_EQ(r.position(), (Vec2{10, 10}));
  const auto fid = fail(0);
  r.enqueue({0, {0, 0}, fid, sim_.now()});
  EXPECT_THROW(r.teleport({0, 0}), std::logic_error);
}

TEST_F(RobotFixture, DriveToMovesWithoutReplacing) {
  auto& r = make_robot({0, 60});
  r.drive_to({0, 0});
  EXPECT_TRUE(r.busy());
  sim_.run_until(100.0);
  EXPECT_FALSE(r.busy());
  EXPECT_NEAR(r.odometer(), 60.0, 1e-6);
  EXPECT_EQ(r.repairs_done(), 0u);
}

TEST_F(RobotFixture, FiniteSparesWithDepotReloads) {
  RobotNode::Config cfg;
  cfg.spares = 1;
  cfg.depot = Vec2{0, 200};
  auto& r = make_robot({0, 100}, cfg);
  const auto f0 = fail(0);
  const auto f2 = fail(2);
  r.enqueue({0, {0, 0}, f0, sim_.now()});
  r.enqueue({2, {80, 0}, f2, sim_.now()});
  sim_.run_until(2000.0);
  EXPECT_EQ(r.repairs_done(), 2u);
  EXPECT_TRUE(field_->node(2).alive());
  // Leg 1: 100 m to slot0 (uses the only spare). Task 2: depot run
  // (0,0)->(0,200) = 200 m, then (0,200)->(80,0) = sqrt(80^2+200^2).
  const double expected = 100.0 + 200.0 + std::hypot(80.0, 200.0);
  EXPECT_NEAR(r.odometer(), expected, 1e-6);
  EXPECT_EQ(r.spares_left(), 0u);
}

TEST_F(RobotFixture, NoSparesNoDepotSkipsTask) {
  RobotNode::Config cfg;
  cfg.spares = 0;
  auto& r = make_robot({0, 50}, cfg);
  const auto f0 = fail(0);
  r.enqueue({0, {0, 0}, f0, sim_.now()});
  sim_.run_until(500.0);
  EXPECT_EQ(r.repairs_done(), 0u);
  EXPECT_FALSE(field_->node(0).alive());
}

TEST_F(RobotFixture, SpeedScalesTravelTime) {
  RobotNode::Config cfg;
  cfg.speed = 2.0;
  auto& r = make_robot({0, 100}, cfg);
  const auto fid = fail(0);
  r.enqueue({0, {0, 0}, fid, sim_.now()});
  sim_.run_until(51.0);  // 100 m at 2 m/s = 50 s
  EXPECT_TRUE(field_->node(0).alive());
  EXPECT_FALSE(r.busy());
}

TEST_F(RobotFixture, RefreshNeighborTableSeesNearbyAliveNodes) {
  auto& r = make_robot({0, 10});
  r.refresh_neighbor_table();
  EXPECT_TRUE(r.table().contains(0));   // 10 m away
  EXPECT_TRUE(r.table().contains(4));   // 160 m away, within 250 m robot range
  field_->fail_slot(0);
  r.refresh_neighbor_table();
  EXPECT_FALSE(r.table().contains(0));  // dead nodes are not neighbors
}

TEST_F(RobotFixture, EnqueueWhileDrivingExtendsRoute) {
  auto& r = make_robot({0, 100});
  const auto f0 = fail(0);
  r.enqueue({0, {0, 0}, f0, sim_.now()});
  sim_.run_until(50.0);  // halfway to slot 0
  const auto f4 = fail(4);
  r.enqueue({4, {160, 0}, f4, sim_.now()});
  EXPECT_EQ(r.queue().size(), 1u);
  sim_.run_until(1000.0);
  EXPECT_EQ(r.repairs_done(), 2u);
}

}  // namespace
}  // namespace sensrep::robot
