// Differential equivalence suite for the spatial-index subsystem.
//
// The UniformGrid2D exists to make proximity queries cheap, not to change
// behavior: every grid-backed answer must be *identical* — not merely close —
// to the brute-force scan it replaces, including floating-point tie-breaking.
// This file proves that three ways:
//
//  1. unit tests of the grid's own contract (iteration order, incremental
//     move semantics, loud failure on index desync);
//  2. a randomized property suite (1000 trials) comparing every query kind
//     against an independent brute-force reference, and a fuzz-style
//     interleaving of insert/move/remove against a naive position map
//     (run under ASAN in CI);
//  3. end-to-end: full simulations with the index on and off must produce
//     bit-identical results for all three algorithms, with and without the
//     robot fault/repair chaos, and stay byte-identical across runner
//     worker counts (run under TSAN in CI).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "core/simulation.hpp"
#include "runner/executor.hpp"
#include "runner/sink.hpp"
#include "sim/rng.hpp"
#include "spatial/uniform_grid.hpp"

namespace sensrep::spatial {
namespace {

using geometry::Rect;
using geometry::Vec2;

constexpr Rect kField{{0.0, 0.0}, {400.0, 400.0}};

// --- grid contract ----------------------------------------------------------

TEST(UniformGrid, SizingCoversTheBounds) {
  const UniformGrid2D<int> g(kField, 63.0);
  EXPECT_EQ(g.cols(), 7u);  // ceil(400 / 63)
  EXPECT_EQ(g.rows(), 7u);
  EXPECT_TRUE(g.empty());
  EXPECT_EQ(g.size(), 0u);
}

TEST(UniformGrid, RejectsNonPositiveCellSize) {
  EXPECT_THROW(UniformGrid2D<int>(kField, 0.0), std::invalid_argument);
  EXPECT_THROW(UniformGrid2D<int>(kField, -1.0), std::invalid_argument);
}

TEST(UniformGrid, DegenerateBoundsStillGetOneCell) {
  const UniformGrid2D<int> g({{5.0, 5.0}, {5.0, 5.0}}, 10.0);
  EXPECT_EQ(g.cols(), 1u);
  EXPECT_EQ(g.rows(), 1u);
}

TEST(UniformGrid, InsertRemoveContains) {
  UniformGrid2D<int> g(kField, 50.0);
  g.insert(3, {10, 10});
  EXPECT_TRUE(g.contains(3));
  EXPECT_EQ(g.position(3), (Vec2{10, 10}));
  EXPECT_THROW(g.insert(3, {20, 20}), std::logic_error);  // duplicate id
  g.remove(3);
  EXPECT_FALSE(g.contains(3));
  g.remove(3);  // absent: no-op by contract
  EXPECT_THROW(static_cast<void>(g.position(3)), std::out_of_range);
}

TEST(UniformGrid, MoveUnknownIdThrows) {
  UniformGrid2D<int> g(kField, 50.0);
  EXPECT_THROW(g.move(1, {0, 0}), std::out_of_range);
}

TEST(UniformGrid, CheckedMoveDetectsIndexDesync) {
  UniformGrid2D<int> g(kField, 50.0);
  g.insert(1, {10, 10});
  EXPECT_NO_THROW(g.move(1, {10, 10}, {200, 200}));
  // A caller whose belief of the old position is stale forgot an update
  // somewhere; the grid fails loudly instead of silently fragmenting.
  EXPECT_THROW(g.move(1, {10, 10}, {30, 30}), std::logic_error);
  EXPECT_EQ(g.position(1), (Vec2{200, 200}));
}

TEST(UniformGrid, OutOfBoundsPointsClampIntoBorderCellsButKeepTruePositions) {
  UniformGrid2D<int> g(kField, 50.0);
  g.insert(1, {-100, -100});
  g.insert(2, {900, 900});
  EXPECT_EQ(g.position(1), (Vec2{-100, -100}));
  // Queries still use exact stored positions, so the nearest answer is
  // correct even though both points live in (clamped) border cells.
  EXPECT_EQ(g.nearest({0, 0}).value(), 1);
  // From the field center both are outside, but 1 is nearer; from (400,400)
  // they would be exactly equidistant (tie to 1) — query off-center instead.
  EXPECT_EQ(g.nearest({410, 410}).value(), 2);
  EXPECT_EQ(g.within_radius({-100, -100}, 1.0), std::vector<int>{1});
}

TEST(UniformGrid, ForEachIsCellMajorThenInsertionOrder) {
  UniformGrid2D<int> g(kField, 100.0);  // 4x4 cells
  g.insert(9, {350, 350});  // last cell
  g.insert(5, {10, 10});    // first cell, first
  g.insert(7, {20, 20});    // first cell, second
  g.insert(1, {10, 150});   // row 1
  std::vector<int> order;
  g.for_each([&](int id, Vec2) { order.push_back(id); });
  EXPECT_EQ(order, (std::vector<int>{5, 7, 1, 9}));
}

TEST(UniformGrid, SameCellMovePreservesInsertionOrder) {
  UniformGrid2D<int> g(kField, 100.0);
  g.insert(5, {10, 10});
  g.insert(7, {20, 20});
  g.move(5, {30, 30});  // stays in cell (0,0); must not re-append
  std::vector<int> order;
  g.for_each([&](int id, Vec2) { order.push_back(id); });
  EXPECT_EQ(order, (std::vector<int>{5, 7}));
  EXPECT_EQ(g.position(5), (Vec2{30, 30}));
}

TEST(UniformGrid, NearestBreaksDistanceTiesByLowestId) {
  UniformGrid2D<int> g(kField, 50.0);
  // Exactly equidistant from the origin (3-4-5 triangles): d = 50 both ways.
  g.insert(8, {30, 40});
  g.insert(2, {40, 30});
  EXPECT_EQ(g.nearest({0, 0}).value(), 2);
  EXPECT_EQ(g.nearest_euclid({0, 0}, [](int) { return true; }).value(), 2);
  // The filter resolves the tie the other way once 2 is unacceptable.
  EXPECT_EQ(g.nearest({0, 0}, [](int id) { return id != 2; }).value(), 8);
}

TEST(UniformGrid, NearestOnEmptyOrFullyFilteredGridIsNullopt) {
  UniformGrid2D<int> g(kField, 50.0);
  EXPECT_FALSE(g.nearest({0, 0}).has_value());
  g.insert(1, {10, 10});
  EXPECT_FALSE(g.nearest({0, 0}, [](int) { return false; }).has_value());
}

TEST(UniformGrid, NearestCrossesManyEmptyRings) {
  // One point in the far corner: the ring search must expand all the way
  // across the grid instead of giving up on empty rings.
  UniformGrid2D<int> g(kField, 10.0);  // 40x40 cells
  g.insert(42, {399, 399});
  EXPECT_EQ(g.nearest({0, 0}).value(), 42);
}

TEST(UniformGrid, InRectIsClosedAndAscending) {
  UniformGrid2D<int> g(kField, 50.0);
  g.insert(3, {100, 100});  // on the min corner: included (closed)
  g.insert(1, {150, 150});  // on the max corner: included (closed)
  g.insert(2, {99, 100});   // just outside
  EXPECT_EQ(g.in_rect({{100, 100}, {150, 150}}), (std::vector<int>{1, 3}));
}

// --- randomized property suite: grid vs brute force -------------------------

/// Independent reference: the scans the simulator used before the index.
struct BruteRef {
  std::vector<std::pair<int, Vec2>> pts;  // ascending id

  /// d2 comparator, first-wins over ascending ids == ties to the lowest id.
  template <typename Filter>
  [[nodiscard]] std::optional<int> nearest_d2(Vec2 p, Filter accept) const {
    std::optional<int> best;
    double best_d2 = std::numeric_limits<double>::infinity();
    for (const auto& [id, pos] : pts) {
      if (!accept(id)) continue;
      const double d2 = geometry::distance2(pos, p);
      if (!best || d2 < best_d2) {
        best = id;
        best_d2 = d2;
      }
    }
    return best;
  }

  /// fl(sqrt(d2)) comparator — what brute scans using geometry::distance
  /// compare. sqrt rounding can merge distinct d2 keys, so this and
  /// nearest_d2 can legitimately disagree; each must match its grid twin.
  template <typename Filter>
  [[nodiscard]] std::optional<int> nearest_euclid(Vec2 p, Filter accept) const {
    std::optional<int> best;
    double best_d = std::numeric_limits<double>::infinity();
    for (const auto& [id, pos] : pts) {
      if (!accept(id)) continue;
      const double d = geometry::distance(pos, p);
      if (!best || d < best_d) {
        best = id;
        best_d = d;
      }
    }
    return best;
  }

  [[nodiscard]] std::vector<int> within_radius(Vec2 p, double r) const {
    std::vector<int> out;
    for (const auto& [id, pos] : pts) {
      if (geometry::distance2(pos, p) <= r * r) out.push_back(id);
    }
    return out;
  }

  [[nodiscard]] std::vector<int> in_rect(const Rect& r) const {
    std::vector<int> out;
    for (const auto& [id, pos] : pts) {
      if (r.contains(pos)) out.push_back(id);
    }
    return out;
  }
};

TEST(UniformGridProperty, AllQueriesMatchBruteForceOverRandomizedTrials) {
  sim::Rng rng(20260805);
  for (int trial = 0; trial < 1000; ++trial) {
    // Vary the geometry every trial: cell sizes from "everything in one
    // cell" to "one point per cell", point counts from sparse to dense,
    // and a few points pushed outside the bounds (clamped border cells).
    const double cell = 5.0 + rng.uniform01() * 200.0;
    const int n = 1 + static_cast<int>(rng.uniform01() * 60.0);
    UniformGrid2D<int> grid(kField, cell);
    BruteRef brute;
    for (int id = 0; id < n; ++id) {
      Vec2 p{rng.uniform01() * 440.0 - 20.0, rng.uniform01() * 440.0 - 20.0};
      if (rng.uniform01() < 0.1) p = {p.x * 10.0 - 1000.0, p.y};  // far outside
      grid.insert(id, p);
      brute.pts.emplace_back(id, p);
    }
    // Duplicate positions force genuine distance ties.
    if (n >= 2) {
      grid.move(n - 1, brute.pts[0].second);
      brute.pts[n - 1].second = brute.pts[0].second;
    }

    const Vec2 q{rng.uniform01() * 480.0 - 40.0, rng.uniform01() * 480.0 - 40.0};
    const auto accept_all = [](int) { return true; };
    const auto accept_even = [](int id) { return id % 2 == 0; };

    EXPECT_EQ(grid.nearest(q), brute.nearest_d2(q, accept_all)) << "trial " << trial;
    EXPECT_EQ(grid.nearest(q, accept_even), brute.nearest_d2(q, accept_even))
        << "trial " << trial;
    EXPECT_EQ(grid.nearest_euclid(q, accept_all), brute.nearest_euclid(q, accept_all))
        << "trial " << trial;
    EXPECT_EQ(grid.nearest_euclid(q, accept_even), brute.nearest_euclid(q, accept_even))
        << "trial " << trial;

    const double r = rng.uniform01() * 150.0;
    EXPECT_EQ(grid.within_radius(q, r), brute.within_radius(q, r)) << "trial " << trial;

    const Vec2 a{rng.uniform01() * 400.0, rng.uniform01() * 400.0};
    const Vec2 b{rng.uniform01() * 400.0, rng.uniform01() * 400.0};
    const Rect rect{{std::min(a.x, b.x), std::min(a.y, b.y)},
                    {std::max(a.x, b.x), std::max(a.y, b.y)}};
    EXPECT_EQ(grid.in_rect(rect), brute.in_rect(rect)) << "trial " << trial;
  }
}

// --- fuzz: incremental mutation vs a naive reference ------------------------

// Random interleavings of insert / move / checked-move / remove, with the
// grid's full contents and query answers checked against a std::map of
// positions after every operation. ASAN (CI) turns any bucket bookkeeping
// slip — double erase, stale Entry, leaked cell slot — into a hard fault.
TEST(UniformGridFuzz, IncrementalMutationsNeverDesyncFromNaiveReference) {
  sim::Rng rng(77);
  for (int round = 0; round < 40; ++round) {
    const double cell = 10.0 + rng.uniform01() * 120.0;
    UniformGrid2D<int> grid(kField, cell);
    std::map<int, Vec2> ref;
    int next_id = 0;

    for (int op = 0; op < 400; ++op) {
      const double roll = rng.uniform01();
      const Vec2 p{rng.uniform01() * 500.0 - 50.0, rng.uniform01() * 500.0 - 50.0};
      if (roll < 0.4 || ref.empty()) {
        grid.insert(next_id, p);
        ref.emplace(next_id, p);
        ++next_id;
      } else {
        // Pick an existing id, biased toward the low end like robot fleets.
        auto it = ref.lower_bound(static_cast<int>(rng.uniform01() * next_id));
        if (it == ref.end()) it = ref.begin();
        if (roll < 0.65) {
          grid.move(it->first, p);
          it->second = p;
        } else if (roll < 0.85) {
          grid.move(it->first, it->second, p);  // checked move (robot path)
          it->second = p;
        } else {
          grid.remove(it->first);
          ref.erase(it);
        }
      }

      ASSERT_EQ(grid.size(), ref.size());
      if (op % 20 != 0) continue;  // full audits are O(n); sample them
      std::vector<std::pair<int, Vec2>> seen;
      grid.for_each([&](int id, Vec2 pos) { seen.emplace_back(id, pos); });
      ASSERT_EQ(seen.size(), ref.size());
      std::sort(seen.begin(), seen.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      auto rit = ref.begin();
      for (const auto& [id, pos] : seen) {
        ASSERT_EQ(id, rit->first);
        ASSERT_EQ(pos, rit->second);
        ++rit;
      }
      // And a spot query: the naive nearest must agree.
      const Vec2 q{rng.uniform01() * 400.0, rng.uniform01() * 400.0};
      std::optional<int> naive;
      double naive_d2 = std::numeric_limits<double>::infinity();
      for (const auto& [id, pos] : ref) {
        const double d2 = geometry::distance2(pos, q);
        if (!naive || d2 < naive_d2) {
          naive = id;
          naive_d2 = d2;
        }
      }
      ASSERT_EQ(grid.nearest(q), naive);
    }
  }
}

// --- end to end: the index must change nothing but speed --------------------

core::ExperimentResult run_mode(bool spatial, core::Algorithm algo, bool chaos) {
  core::SimulationConfig cfg;
  cfg.algorithm = algo;
  cfg.robots = 4;
  cfg.seed = 2026;
  cfg.sim_duration = chaos ? 4000.0 : 8000.0;
  cfg.field.spatial_index = spatial;
  if (chaos) {
    // Deaths, MTTR resurrections, auto-tuned leases, and packet loss: every
    // fault-tolerance path the index touches (supervision sweeps, adoption
    // floods, failover nearest-robot picks) runs several times.
    cfg.robot_faults.mtbf = 1200.0;
    cfg.robot_faults.mttr = 600.0;
    cfg.robot_faults.heartbeat_period = 40.0;
    cfg.robot_faults.lease_auto_tune = true;
    cfg.radio.loss_probability = 0.05;
  }
  core::Simulation s(cfg);
  s.run();
  return s.result();
}

void expect_identical(const core::ExperimentResult& a, const core::ExperimentResult& b) {
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.reported, b.reported);
  EXPECT_EQ(a.repaired, b.repaired);
  EXPECT_EQ(a.unreported, b.unreported);
  EXPECT_EQ(a.router_drops, b.router_drops);
  // Bitwise, not NEAR: the index replaces scans with scans over the same
  // doubles in an equivalent order; any ULP of drift is a bug.
  EXPECT_EQ(a.avg_travel_per_repair, b.avg_travel_per_repair);
  EXPECT_EQ(a.avg_report_hops, b.avg_report_hops);
  EXPECT_EQ(a.avg_request_hops, b.avg_request_hops);
  EXPECT_EQ(a.location_update_tx_per_repair, b.location_update_tx_per_repair);
  EXPECT_EQ(a.avg_detection_latency, b.avg_detection_latency);
  EXPECT_EQ(a.avg_repair_latency, b.avg_repair_latency);
  EXPECT_EQ(a.p95_repair_latency, b.p95_repair_latency);
  EXPECT_EQ(a.total_robot_distance, b.total_robot_distance);
  EXPECT_EQ(a.motion_energy_j, b.motion_energy_j);
  EXPECT_EQ(a.robot_failures, b.robot_failures);
  EXPECT_EQ(a.tasks_lost, b.tasks_lost);
  EXPECT_EQ(a.redispatches, b.redispatches);
  EXPECT_EQ(a.failover_events, b.failover_events);
  EXPECT_EQ(a.adoptions, b.adoptions);
  EXPECT_EQ(a.robot_repairs, b.robot_repairs);
  EXPECT_EQ(a.elections, b.elections);
  EXPECT_EQ(a.handbacks, b.handbacks);
  EXPECT_EQ(a.ownership_transfers, b.ownership_transfers);
  EXPECT_EQ(a.transmissions, b.transmissions);
}

class SpatialEquivalence : public ::testing::TestWithParam<core::Algorithm> {};

TEST_P(SpatialEquivalence, DefaultRunIsBitIdenticalWithIndexOnAndOff) {
  expect_identical(run_mode(true, GetParam(), /*chaos=*/false),
                   run_mode(false, GetParam(), /*chaos=*/false));
}

TEST_P(SpatialEquivalence, FaultChaosRunIsBitIdenticalWithIndexOnAndOff) {
  expect_identical(run_mode(true, GetParam(), /*chaos=*/true),
                   run_mode(false, GetParam(), /*chaos=*/true));
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, SpatialEquivalence,
                         ::testing::Values(core::Algorithm::kCentralized,
                                           core::Algorithm::kFixedDistributed,
                                           core::Algorithm::kDynamicDistributed),
                         [](const ::testing::TestParamInfo<core::Algorithm>& tpi) {
                           return std::string(core::to_string(tpi.param));
                         });

// With the index on (the default), the parallel runner must keep its
// byte-identical-across-worker-counts guarantee: the grid is per-simulation
// state, so workers must never share one. TSAN runs this in CI.
TEST(SpatialRunnerDeterminism, CsvIsByteIdenticalAcrossWorkerCountsWithIndexOn) {
  runner::ParameterGrid grid;
  grid.algorithms = {core::Algorithm::kCentralized, core::Algorithm::kFixedDistributed,
                     core::Algorithm::kDynamicDistributed};
  grid.robot_counts = {4};
  grid.seeds = 2;
  grid.base.sim_duration = 800.0;
  grid.base.field.spatial_index = true;
  grid.base.robot_faults.mtbf = 400.0;  // exercise supervision in every job
  grid.base.robot_faults.mttr = 200.0;

  const auto run_with = [&grid](std::size_t workers) {
    std::ostringstream out;
    runner::CsvSink sink(out);
    runner::ExecutorOptions options;
    options.jobs = workers;
    runner::Executor exec(options);
    const auto batch = exec.run(grid, &sink);
    EXPECT_TRUE(batch.ok());
    return out.str();
  };

  const std::string serial = run_with(1);
  const std::string parallel = run_with(4);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace sensrep::spatial
