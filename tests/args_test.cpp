// Tests for the CLI flag parser.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "tools/args.hpp"

namespace sensrep::tools {
namespace {

Args make(std::initializer_list<const char*> argv_tail) {
  static std::vector<std::string> storage;
  storage.clear();
  storage.emplace_back("prog");
  for (const char* a : argv_tail) storage.emplace_back(a);
  static std::vector<char*> ptrs;
  ptrs.clear();
  for (auto& s : storage) ptrs.push_back(s.data());
  return Args(static_cast<int>(ptrs.size()), ptrs.data());
}

TEST(ArgsTest, EqualsForm) {
  auto args = make({"--robots=9", "--algorithm=dynamic"});
  EXPECT_EQ(args.get_u64("robots", 0), 9u);
  EXPECT_EQ(args.get_string("algorithm", ""), "dynamic");
}

TEST(ArgsTest, SpaceForm) {
  auto args = make({"--robots", "16", "--duration", "32000"});
  EXPECT_EQ(args.get_u64("robots", 0), 16u);
  EXPECT_DOUBLE_EQ(args.get_double("duration", 0.0), 32000.0);
}

TEST(ArgsTest, BooleanFlags) {
  auto args = make({"--quiet", "--queue-aware", "--robots=4"});
  EXPECT_TRUE(args.has("quiet"));
  EXPECT_TRUE(args.has("queue-aware"));
  EXPECT_FALSE(args.has("verbose"));
}

TEST(ArgsTest, BooleanFollowedByFlagDoesNotSwallow) {
  auto args = make({"--quiet", "--robots=4"});
  EXPECT_TRUE(args.has("quiet"));
  EXPECT_EQ(args.get_string("quiet", "x"), "");
  EXPECT_EQ(args.get_u64("robots", 0), 4u);
}

TEST(ArgsTest, DefaultsWhenAbsent) {
  auto args = make({});
  EXPECT_EQ(args.get_u64("robots", 4), 4u);
  EXPECT_DOUBLE_EQ(args.get_double("loss", 0.25), 0.25);
  EXPECT_EQ(args.get_string("algorithm", "dynamic"), "dynamic");
}

TEST(ArgsTest, PositionalArguments) {
  auto args = make({"first", "--robots=4", "second"});
  EXPECT_EQ(args.positional(), (std::vector<std::string>{"first", "second"}));
}

TEST(ArgsTest, BadNumbersThrow) {
  auto args = make({"--robots=many", "--loss=often"});
  EXPECT_THROW((void)args.get_u64("robots", 0), std::invalid_argument);
  EXPECT_THROW((void)args.get_double("loss", 0.0), std::invalid_argument);
}

TEST(ArgsTest, RangeCheckedDoublesAcceptInBoundsValues) {
  auto args = make({"--loss=0.25", "--heartbeat=60"});
  EXPECT_DOUBLE_EQ(args.get_double_in("loss", 0.0, 0.0, 1.0), 0.25);
  EXPECT_DOUBLE_EQ(args.get_double_in("heartbeat", 60.0, 1.0, 1e9), 60.0);
  // Fallback used when absent — and the fallback itself is range-checked.
  EXPECT_DOUBLE_EQ(args.get_double_in("lease-multiplier", 3.0, 1.0, 100.0), 3.0);
}

TEST(ArgsTest, RangeCheckedDoublesRejectOutOfBounds) {
  auto args = make({"--loss=1.5", "--heartbeat=0"});
  EXPECT_THROW((void)args.get_double_in("loss", 0.0, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)args.get_double_in("heartbeat", 60.0, 1.0, 1e9),
               std::invalid_argument);
}

TEST(ArgsTest, RangeCheckedDoublesHandleInfinityAndNan) {
  const double inf = std::numeric_limits<double>::infinity();
  auto args = make({"--robot-mtbf=inf", "--bad=nan"});
  // "inf" parses and is in range when the upper bound is infinite — the
  // --robot-mtbf "disabled" spelling.
  EXPECT_TRUE(std::isinf(args.get_double_in("robot-mtbf", inf, 1.0, inf)));
  // NaN is never in any range.
  EXPECT_THROW((void)args.get_double_in("bad", 0.0, 0.0, inf), std::invalid_argument);
}

TEST(ArgsTest, RejectUnknownCatchesTypos) {
  auto args = make({"--robbots=4"});
  (void)args.get_u64("robots", 4);
  EXPECT_THROW(args.reject_unknown(), std::invalid_argument);
}

TEST(ArgsTest, RejectUnknownPassesWhenAllDeclared) {
  auto args = make({"--robots=4", "--quiet"});
  (void)args.get_u64("robots", 0);
  (void)args.has("quiet");
  EXPECT_NO_THROW(args.reject_unknown());
}

TEST(ValidateCrashTimes, RejectsEventsAtOrPastDuration) {
  // A crash or repair scheduled at t >= duration silently never fires; the
  // shared validator turns that misconfiguration into a hard error.
  EXPECT_THROW(validate_crash_times("robot-crash", {100.0, 8000.0}, 8000.0),
               std::invalid_argument);
  EXPECT_THROW(validate_crash_times("manager-crash", {9000.0}, 8000.0),
               std::invalid_argument);
  try {
    validate_crash_times("robot-repair", {8500.0}, 8000.0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The message names the offending flag so the user can find it.
    EXPECT_NE(std::string(e.what()).find("robot-repair"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("duration"), std::string::npos);
  }
}

TEST(ValidateCrashTimes, AcceptsInRangeAndEmpty) {
  EXPECT_NO_THROW(validate_crash_times("robot-crash", {}, 8000.0));
  EXPECT_NO_THROW(validate_crash_times("robot-crash", {0.0, 100.0, 7999.9}, 8000.0));
}

}  // namespace
}  // namespace sensrep::tools
