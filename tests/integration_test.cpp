// Integration tests: full paper-parameter simulations (shortened horizons)
// checking pipeline health and the qualitative relationships behind the
// paper's Figures 2-4, across seeds via parameterized suites.

#include <gtest/gtest.h>

#include "core/simulation.hpp"

namespace sensrep::core {
namespace {

SimulationConfig paper_config(Algorithm algo, std::size_t robots, std::uint64_t seed,
                              double duration) {
  SimulationConfig cfg;
  cfg.algorithm = algo;
  cfg.robots = robots;
  cfg.seed = seed;
  cfg.sim_duration = duration;
  return cfg;
}

ExperimentResult run(Algorithm algo, std::size_t robots, std::uint64_t seed,
                     double duration = 8000.0) {
  Simulation s(paper_config(algo, robots, seed, duration));
  s.run();
  return s.result();
}

// --- Pipeline health, parameterized over (algorithm, seed) ----------------------

struct HealthParam {
  Algorithm algorithm;
  std::uint64_t seed;
};

class PipelineHealth : public ::testing::TestWithParam<HealthParam> {};

TEST_P(PipelineHealth, FailuresAreDetectedReportedAndRepaired) {
  const auto result = run(GetParam().algorithm, 4, GetParam().seed);
  // ~50 failures expected in 8000 s over 200 sensors with T=16000 s.
  EXPECT_GT(result.failures, 20u);
  // Everything detected (modulo the guardian-died-too race the paper calls
  // negligible) and essentially everything reported & repaired (tail
  // failures may still be in service when the horizon hits).
  EXPECT_GE(result.detected, result.failures * 9 / 10);
  EXPECT_GE(result.delivery_ratio, 0.95);
  EXPECT_GE(result.repaired, result.reported * 8 / 10);
  EXPECT_EQ(result.unreported, 0u);
}

TEST_P(PipelineHealth, DetectionLatencyAveragesThreeBeaconPeriods) {
  // Staleness runs from the *last heard beacon*, up to one period before the
  // failure; the guardian's check tick adds up to one period after. The
  // latency is therefore 30 - U(0,10) + V(0,10): range [20, 40], mean 30.
  const auto result = run(GetParam().algorithm, 4, GetParam().seed);
  EXPECT_GE(result.avg_detection_latency, 26.0);
  EXPECT_LE(result.avg_detection_latency, 34.0);
}

TEST_P(PipelineHealth, TravelMatchesOdometers) {
  const auto result = run(GetParam().algorithm, 4, GetParam().seed);
  // Total odometer >= sum of per-repair travel (queued detours only add).
  EXPECT_GE(result.total_robot_distance + 1e-6,
            result.avg_travel_per_repair * static_cast<double>(result.repaired));
  EXPECT_GT(result.avg_travel_per_repair, 30.0);   // sanity: not teleporting
  EXPECT_LT(result.avg_travel_per_repair, 250.0);  // sanity: not lost
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsAndSeeds, PipelineHealth,
    ::testing::Values(HealthParam{Algorithm::kCentralized, 1},
                      HealthParam{Algorithm::kCentralized, 2},
                      HealthParam{Algorithm::kFixedDistributed, 1},
                      HealthParam{Algorithm::kFixedDistributed, 2},
                      HealthParam{Algorithm::kDynamicDistributed, 1},
                      HealthParam{Algorithm::kDynamicDistributed, 2}),
    [](const ::testing::TestParamInfo<HealthParam>& param_info) {
      return std::string(to_string(param_info.param.algorithm)) + "_seed" +
             std::to_string(param_info.param.seed);
    });

// --- Figure-shape assertions ---------------------------------------------------

class FigureShapes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FigureShapes, Fig3ReportHopsCentralizedAboveDistributed) {
  const auto c = run(Algorithm::kCentralized, 9, GetParam());
  const auto f = run(Algorithm::kFixedDistributed, 9, GetParam());
  const auto d = run(Algorithm::kDynamicDistributed, 9, GetParam());
  // Distributed reports go ~100 m (about 2 hops); centralized reports cross
  // half the field to the center.
  EXPECT_GT(c.avg_report_hops, f.avg_report_hops);
  EXPECT_GT(c.avg_report_hops, d.avg_report_hops);
  EXPECT_NEAR(f.avg_report_hops, 2.0, 1.0);
  EXPECT_NEAR(d.avg_report_hops, 2.0, 1.0);
  // Repair requests ride the manager's 250 m radio: fewer hops than reports.
  EXPECT_GT(c.avg_request_hops, 0.0);
  EXPECT_LT(c.avg_request_hops, c.avg_report_hops);
}

TEST_P(FigureShapes, Fig4UpdateCostCentralizedFarBelowDistributed) {
  const auto c = run(Algorithm::kCentralized, 4, GetParam());
  const auto f = run(Algorithm::kFixedDistributed, 4, GetParam());
  const auto d = run(Algorithm::kDynamicDistributed, 4, GetParam());
  EXPECT_LT(c.location_update_tx_per_repair, f.location_update_tx_per_repair / 3.0);
  // Dynamic floods the shifted cell + fringe: at or above fixed's cost.
  EXPECT_GE(d.location_update_tx_per_repair, f.location_update_tx_per_repair * 0.9);
}

TEST_P(FigureShapes, Fig2TravelDistancesInTheSameBand) {
  // At small robot counts the three algorithms travel similarly (paper
  // Fig. 2); the fixed-vs-dynamic gap is asserted at 16 robots by the bench,
  // not here, to keep test time sane. Here: same ~100 m band.
  const auto c = run(Algorithm::kCentralized, 4, GetParam());
  const auto f = run(Algorithm::kFixedDistributed, 4, GetParam());
  const auto d = run(Algorithm::kDynamicDistributed, 4, GetParam());
  for (const double v :
       {c.avg_travel_per_repair, f.avg_travel_per_repair, d.avg_travel_per_repair}) {
    EXPECT_GT(v, 50.0);
    EXPECT_LT(v, 180.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FigureShapes, ::testing::Values(3u, 5u),
                         [](const ::testing::TestParamInfo<std::uint64_t>& param_info) {
                           return "seed" + std::to_string(param_info.param);
                         });

// --- Robustness under packet loss (E7) ---------------------------------------------

TEST(LossRobustness, ModerateLossStillDeliversMostReports) {
  auto cfg = paper_config(Algorithm::kDynamicDistributed, 4, 13, 8000.0);
  cfg.radio.loss_probability = 0.05;
  Simulation s(cfg);
  s.run();
  const auto r = s.result();
  EXPECT_GE(r.delivery_ratio, 0.85);
  EXPECT_GE(r.repaired, r.failures / 2);
}

TEST(ReliableReports, NoHarmUnderLossAndAcksFlow) {
  // Under per-reception loss the router's path diversity (link-failure
  // eviction + re-route) already salvages most reports; end-to-end acks must
  // never make things worse, and the ack traffic itself must be present.
  auto cfg = paper_config(Algorithm::kDynamicDistributed, 4, 29, 8000.0);
  cfg.radio.loss_probability = 0.30;
  cfg.radio.unicast_retries = 0;

  Simulation plain(cfg);
  plain.run();
  cfg.field.reliable_reports = true;
  Simulation reliable(cfg);
  reliable.run();

  const auto p = plain.result();
  const auto r = reliable.result();
  EXPECT_GE(r.delivery_ratio, p.delivery_ratio - 0.03);
  EXPECT_GE(r.repaired + 5, p.repaired);
  // Ack + retry transmissions ride the failure-report category: clearly
  // more traffic there than the plain run (under loss some acks die before
  // their first hop, so the premium is below the clean-channel ~2x).
  EXPECT_GT(r.tx(metrics::MessageCategory::kFailureReport),
            p.tx(metrics::MessageCategory::kFailureReport) * 5 / 4);
}

TEST(ReliableReports, CleanChannelBehaviorUnchanged) {
  auto cfg = paper_config(Algorithm::kFixedDistributed, 4, 31, 8000.0);
  cfg.field.reliable_reports = true;
  Simulation s(cfg);
  s.run();
  const auto r = s.result();
  EXPECT_GE(r.delivery_ratio, 0.98);
  EXPECT_GE(r.repaired, r.reported * 9 / 10);
  // Exactly one repair per repaired failure: acks never duplicate work.
  std::size_t robot_repairs = 0;
  for (const auto& robot : s.robots()) robot_repairs += robot->repairs_done();
  EXPECT_EQ(robot_repairs, r.repaired);
}

TEST(CollisionRobustness, ProtocolSurvivesContentionModeling) {
  // Paper §4.1 uses a full 802.11 model; ours abstracts contention to
  // backoff jitter by default. With explicit broadcast collisions switched
  // on, the flood redundancy of the distributed algorithms must still carry
  // the protocol (the paper's low-traffic-load claim, checked).
  auto cfg = paper_config(Algorithm::kDynamicDistributed, 4, 23, 8000.0);
  cfg.radio.model_collisions = true;
  Simulation s(cfg);
  s.run();
  const auto r = s.result();
  EXPECT_GE(r.delivery_ratio, 0.95);
  EXPECT_GE(r.repaired, r.failures * 8 / 10);
  EXPECT_GT(s.medium().collisions(), 0u);  // the model is actually active
}

// --- Correlated (disaster) failures and the neighborhood-watch extension ---------

namespace disaster {

/// Kills every sensor within `radius` of the field's 30% point at t=500 s,
/// runs 5000 s more, returns (blast size, repaired count).
std::pair<std::size_t, std::size_t> blast(bool neighborhood_watch) {
  SimulationConfig cfg = paper_config(Algorithm::kDynamicDistributed, 4, 7, 5500.0);
  cfg.field.spontaneous_failures = false;
  cfg.field.neighborhood_watch = neighborhood_watch;
  Simulation s(cfg);
  const auto hotspot = geometry::lerp(cfg.field_area().min, cfg.field_area().max, 0.3);
  s.run_until(500.0);
  std::size_t killed = 0;
  for (net::NodeId id = 0; id < s.field().size(); ++id) {
    if (geometry::distance(s.field().node(id).position(), hotspot) <= 120.0) {
      s.field().fail_slot(id);
      ++killed;
    }
  }
  s.run();
  return {killed, s.result().repaired};
}

}  // namespace disaster

TEST(NeighborhoodWatch, GuardianSchemeStallsOnCorrelatedFailure) {
  // The paper's assumption ("a guardian and a corresponding guardee fail
  // close in time ... is small and negligible") breaks under a blast: only
  // the rim, whose watchers survived, gets repaired.
  const auto [killed, repaired] = disaster::blast(false);
  ASSERT_GT(killed, 20u);
  EXPECT_LT(repaired, killed / 2);
}

TEST(NeighborhoodWatch, WatchModeHealsTheHoleInward) {
  const auto [killed, repaired] = disaster::blast(true);
  ASSERT_GT(killed, 20u);
  EXPECT_GE(repaired, killed * 9 / 10);
}

TEST(NeighborhoodWatch, NoDuplicateRepairsUnderIndependentFailures) {
  // Watch mode multiplies *reports*, not repairs: with robots deduplicating
  // tasks, every failure is still replaced exactly once.
  auto cfg = paper_config(Algorithm::kFixedDistributed, 4, 19, 6000.0);
  cfg.field.neighborhood_watch = true;
  Simulation s(cfg);
  s.run();
  const auto r = s.result();
  std::size_t robot_repairs = 0;
  for (const auto& robot : s.robots()) robot_repairs += robot->repairs_done();
  EXPECT_EQ(robot_repairs, r.repaired);  // no wasted unloads
  EXPECT_GE(r.repaired, r.failures * 8 / 10);
}

// --- Longer horizon, paper scale (kept single to bound test time) ----------------

TEST(PaperScale, SixteenRobotsQuarterHorizon) {
  const auto r = run(Algorithm::kDynamicDistributed, 16, 17, 16000.0);
  EXPECT_GT(r.failures, 400u);  // 800 sensors, ~1 lifetime each
  EXPECT_GE(r.delivery_ratio, 0.95);
  EXPECT_NEAR(r.avg_report_hops, 2.0, 1.0);   // scale-free (paper's point)
  EXPECT_GT(r.avg_travel_per_repair, 40.0);
  EXPECT_LT(r.avg_travel_per_repair, 200.0);
}

}  // namespace
}  // namespace sensrep::core
