// Tests for the parallel experiment-execution subsystem (src/runner).
//
// The two load-bearing guarantees:
//   1. determinism — batch output (results, sink order, CSV bytes) is
//      identical for 1 and N worker threads;
//   2. crash isolation — a throwing job is retried as configured and then
//      surfaces as a JobFailure record, never taking sibling jobs down.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runner/executor.hpp"
#include "runner/grid.hpp"
#include "runner/progress.hpp"
#include "runner/sink.hpp"
#include "runner/thread_pool.hpp"

namespace {

using namespace sensrep;
using core::Algorithm;

runner::ParameterGrid small_grid() {
  runner::ParameterGrid grid;
  grid.algorithms = {Algorithm::kCentralized, Algorithm::kDynamicDistributed};
  grid.robot_counts = {4};
  grid.seeds = 2;
  grid.base.sim_duration = 800.0;  // short horizon keeps the test fast
  return grid;
}

/// Trivial jobs for executor-mechanics tests (no real simulation).
std::vector<runner::Job> fake_jobs(std::size_t n) {
  std::vector<runner::Job> jobs(n);
  for (std::size_t i = 0; i < n; ++i) {
    jobs[i].index = i;
    jobs[i].label = "fake-" + std::to_string(i);
    jobs[i].config.seed = i + 1;
  }
  return jobs;
}

/// RunFn whose result is a pure function of the job (seed echoed back).
core::ExperimentResult echo_seed(const runner::Job& job) {
  core::ExperimentResult r;
  r.seed = job.config.seed;
  return r;
}

TEST(ParameterGridTest, ExpandsAlgorithmMajorWithDenseIndices) {
  runner::ParameterGrid grid;
  grid.algorithms = {Algorithm::kCentralized, Algorithm::kFixedDistributed};
  grid.robot_counts = {4, 9};
  grid.first_seed = 7;
  grid.seeds = 3;
  ASSERT_EQ(grid.size(), 12u);

  const auto jobs = grid.expand();
  ASSERT_EQ(jobs.size(), 12u);
  for (std::size_t i = 0; i < jobs.size(); ++i) EXPECT_EQ(jobs[i].index, i);

  // Triple-nested-loop order: algorithm-major, then robots, then seed.
  EXPECT_EQ(jobs[0].config.algorithm, Algorithm::kCentralized);
  EXPECT_EQ(jobs[0].config.robots, 4u);
  EXPECT_EQ(jobs[0].config.seed, 7u);
  EXPECT_EQ(jobs[2].config.seed, 9u);
  EXPECT_EQ(jobs[3].config.robots, 9u);
  EXPECT_EQ(jobs[6].config.algorithm, Algorithm::kFixedDistributed);
  EXPECT_EQ(jobs[11].config.seed, 9u);
  EXPECT_EQ(jobs[0].label, "centralized r=4 seed=7");
}

TEST(ParameterGridTest, BaseConfigPropagatesToEveryCell) {
  auto grid = small_grid();
  grid.base.dynamic_fringe = 35.0;
  for (const auto& job : grid.expand()) {
    EXPECT_DOUBLE_EQ(job.config.sim_duration, 800.0);
    EXPECT_DOUBLE_EQ(job.config.dynamic_fringe, 35.0);
  }
}

TEST(ThreadPoolTest, RunsEverySubmittedTaskExactlyOnce) {
  runner::ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadRequestStillGetsAWorker) {
  runner::ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(ExecutorTest, ResultsAreIndexAlignedRegardlessOfCompletionOrder) {
  const auto jobs = fake_jobs(16);
  runner::ExecutorOptions options;
  options.jobs = 4;
  runner::Executor exec(options);
  // Early indices sleep longest, so completion order inverts grid order.
  const auto batch = exec.run(jobs, [&jobs](const runner::Job& job) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(2 * (jobs.size() - job.index)));
    return echo_seed(job);
  });
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch.results.size(), 16u);
  for (std::size_t i = 0; i < batch.results.size(); ++i) {
    ASSERT_TRUE(batch.results[i].has_value());
    EXPECT_EQ(batch.results[i]->seed, i + 1);
  }
}

TEST(ExecutorTest, SinkSeesAscendingIndicesUnderContention) {
  const auto jobs = fake_jobs(24);
  runner::VectorSink sink;
  runner::ExecutorOptions options;
  options.jobs = 8;
  runner::Executor exec(options);
  const auto batch = exec.run(
      jobs,
      [&jobs](const runner::Job& job) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds((jobs.size() - job.index) % 7));
        return echo_seed(job);
      },
      &sink);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(sink.entries().size(), 24u);
  for (std::size_t i = 0; i < sink.entries().size(); ++i) {
    EXPECT_EQ(sink.entries()[i].index, i) << "sink saw out-of-order emission";
  }
}

TEST(ExecutorTest, ThrowingJobIsRetriedThenRecordedWithoutLosingSiblings) {
  const auto jobs = fake_jobs(8);
  std::atomic<int> attempts_on_bad{0};
  std::atomic<int> total_calls{0};
  runner::ExecutorOptions options;
  options.jobs = 4;
  options.retries = 2;  // 3 attempts total
  runner::Executor exec(options);
  const auto batch = exec.run(jobs, [&](const runner::Job& job) {
    total_calls.fetch_add(1);
    if (job.index == 3) {
      attempts_on_bad.fetch_add(1);
      throw std::runtime_error("injected fault");
    }
    return echo_seed(job);
  });

  EXPECT_EQ(attempts_on_bad.load(), 3);
  EXPECT_EQ(total_calls.load(), 7 + 3);
  ASSERT_EQ(batch.failures.size(), 1u);
  EXPECT_EQ(batch.failures[0].index, 3u);
  EXPECT_EQ(batch.failures[0].label, "fake-3");
  EXPECT_EQ(batch.failures[0].attempts, 3u);
  EXPECT_EQ(batch.failures[0].error, "injected fault");
  EXPECT_FALSE(batch.results[3].has_value());
  EXPECT_EQ(batch.completed(), 7u);
  for (std::size_t i = 0; i < batch.results.size(); ++i) {
    if (i != 3) {
      EXPECT_TRUE(batch.results[i].has_value()) << "sibling " << i << " lost";
    }
  }
}

TEST(ExecutorTest, TransientFaultSucceedsWithinRetryBudget) {
  const auto jobs = fake_jobs(4);
  std::atomic<int> calls_on_flaky{0};
  runner::ExecutorOptions options;
  options.jobs = 2;
  options.retries = 1;
  runner::Executor exec(options);
  const auto batch = exec.run(jobs, [&](const runner::Job& job) {
    if (job.index == 2 && calls_on_flaky.fetch_add(1) == 0) {
      throw std::runtime_error("transient");
    }
    return echo_seed(job);
  });
  EXPECT_TRUE(batch.ok());
  EXPECT_EQ(calls_on_flaky.load(), 2);
  ASSERT_TRUE(batch.results[2].has_value());
  EXPECT_EQ(batch.results[2]->seed, 3u);
}

TEST(ExecutorTest, FailedJobsAreSkippedBySinkButOrderIsKept) {
  const auto jobs = fake_jobs(6);
  runner::VectorSink sink;
  runner::ExecutorOptions options;
  options.jobs = 3;
  runner::Executor exec(options);
  const auto batch = exec.run(
      jobs,
      [](const runner::Job& job) {
        if (job.index % 2 == 1) throw std::runtime_error("odd jobs fail");
        return echo_seed(job);
      },
      &sink);
  EXPECT_EQ(batch.failures.size(), 3u);
  ASSERT_EQ(sink.entries().size(), 3u);
  EXPECT_EQ(sink.entries()[0].index, 0u);
  EXPECT_EQ(sink.entries()[1].index, 2u);
  EXPECT_EQ(sink.entries()[2].index, 4u);
  // Failure records also come out in ascending index order.
  EXPECT_EQ(batch.failures[0].index, 1u);
  EXPECT_EQ(batch.failures[1].index, 3u);
  EXPECT_EQ(batch.failures[2].index, 5u);
}

TEST(ExecutorTest, ProgressMeterCountsEveryOutcome) {
  const auto jobs = fake_jobs(10);
  runner::ProgressMeter progress(jobs.size());  // silent
  runner::ExecutorOptions options;
  options.jobs = 4;
  options.progress = &progress;
  runner::Executor exec(options);
  const auto batch = exec.run(jobs, [](const runner::Job& job) {
    if (job.index == 5) throw std::runtime_error("boom");  // failures tick too
    return echo_seed(job);
  });
  EXPECT_EQ(batch.completed(), 9u);
  EXPECT_EQ(progress.completed(), 10u);
  EXPECT_NE(progress.render().find("10/10"), std::string::npos);
}

// The headline guarantee: real simulations produce byte-identical CSV and
// identical results for 1 and 4 workers.
TEST(ExecutorDeterminismTest, CsvIsByteIdenticalAcrossWorkerCounts) {
  const auto grid = small_grid();

  const auto run_with = [&grid](std::size_t workers) {
    std::ostringstream out;
    runner::CsvSink sink(out);
    runner::ExecutorOptions options;
    options.jobs = workers;
    runner::Executor exec(options);
    const auto batch = exec.run(grid, &sink);
    EXPECT_TRUE(batch.ok());
    return out.str();
  };

  const std::string serial = run_with(1);
  const std::string parallel = run_with(4);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

// Same guarantee with the full fault/repair machinery running: deaths,
// MTTR resurrections, and the rejoin traffic must replay identically no
// matter how jobs are spread across workers.
TEST(ExecutorDeterminismTest, CsvIsByteIdenticalWithRobotFaultsAndRepairs) {
  auto grid = small_grid();
  grid.base.robot_faults.mtbf = 1200.0;  // several deaths inside the horizon
  grid.base.robot_faults.mttr = 300.0;   // and several resurrections

  const auto run_with = [&grid](std::size_t workers) {
    std::ostringstream out;
    runner::CsvSink sink(out);
    runner::ExecutorOptions options;
    options.jobs = workers;
    runner::Executor exec(options);
    const auto batch = exec.run(grid, &sink);
    EXPECT_TRUE(batch.ok());
    return out.str();
  };

  const std::string serial = run_with(1);
  const std::string parallel = run_with(4);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

// And with spatially sharded cells: every job spins up its own tile-worker
// pool inside an executor worker, so this doubles as a nested-thread-pool
// determinism check — the CSV must not care how either layer schedules.
TEST(ExecutorDeterminismTest, CsvIsByteIdenticalAcrossWorkerCountsWithShardedCells) {
  auto grid = small_grid();
  grid.base.field.shards = 4;
  grid.base.robot_faults.mtbf = 1200.0;  // tick disarm/revival churn per cell
  grid.base.robot_faults.mttr = 300.0;

  const auto run_with = [&grid](std::size_t workers) {
    std::ostringstream out;
    runner::CsvSink sink(out);
    runner::ExecutorOptions options;
    options.jobs = workers;
    runner::Executor exec(options);
    const auto batch = exec.run(grid, &sink);
    EXPECT_TRUE(batch.ok());
    return out.str();
  };

  const std::string serial = run_with(1);
  const std::string parallel = run_with(4);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

TEST(ExecutorDeterminismTest, ResultsMatchDirectSimulationRuns) {
  const auto grid = small_grid();
  const auto jobs = grid.expand();

  runner::ExecutorOptions options;
  options.jobs = 4;
  runner::Executor exec(options);
  const auto batch = exec.run(grid);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch.results.size(), jobs.size());

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    core::Simulation sim(jobs[i].config);
    sim.run();
    const auto expected = sim.result();
    const auto& got = *batch.results[i];
    EXPECT_EQ(got.seed, expected.seed);
    EXPECT_EQ(got.failures, expected.failures);
    EXPECT_EQ(got.repaired, expected.repaired);
    EXPECT_DOUBLE_EQ(got.avg_travel_per_repair, expected.avg_travel_per_repair);
    EXPECT_DOUBLE_EQ(got.avg_repair_latency, expected.avg_repair_latency);
  }
}

TEST(RunReplicatedTest, ParallelMatchesSerialAggregation) {
  core::SimulationConfig cfg;
  cfg.algorithm = Algorithm::kDynamicDistributed;
  cfg.robots = 4;
  cfg.sim_duration = 800.0;
  cfg.seed = 3;

  const auto serial = core::run_replicated(cfg, 3);
  runner::ExecutorOptions options;
  options.jobs = 3;
  const auto parallel = runner::run_replicated(cfg, 3, options);

  ASSERT_EQ(serial.seeds, parallel.seeds);
  EXPECT_DOUBLE_EQ(serial.travel_per_repair.mean, parallel.travel_per_repair.mean);
  EXPECT_DOUBLE_EQ(serial.repair_latency.mean, parallel.repair_latency.mean);
  EXPECT_DOUBLE_EQ(serial.failures.mean, parallel.failures.mean);
  EXPECT_EQ(serial.summary(), parallel.summary());
}

}  // namespace
