// Unit tests for the wireless medium: attachment rules, asymmetric ranges,
// broadcast/unicast delivery, liveness filtering, loss + ARQ, accounting.

#include <gtest/gtest.h>

#include <vector>

#include "metrics/counters.hpp"
#include "net/medium.hpp"
#include "net/packet.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace sensrep::net {
namespace {

using geometry::Vec2;
using metrics::MessageCategory;

struct Rx {
  std::vector<std::pair<Packet, NodeId>> got;
  Medium::ReceiveFn fn() {
    return [this](const Packet& p, NodeId from) { got.emplace_back(p, from); };
  }
};

class MediumTest : public ::testing::Test {
 protected:
  MediumTest() : medium_(sim_, sim::Rng(1), RadioConfig{}, counters_, 50.0) {}

  Packet beacon(NodeId src) {
    Packet p;
    p.type = PacketType::kBeacon;
    p.src = src;
    p.dst = kBroadcastId;
    return p;
  }

  sim::Simulator sim_;
  metrics::TransmissionCounters counters_;
  Medium medium_;
};

TEST_F(MediumTest, AttachRejectsDuplicatesAndReservedIds) {
  Rx rx;
  medium_.attach(1, {0, 0}, 50.0, rx.fn());
  EXPECT_THROW(medium_.attach(1, {0, 0}, 50.0, rx.fn()), std::invalid_argument);
  EXPECT_THROW(medium_.attach(kNoNode, {0, 0}, 50.0, rx.fn()), std::invalid_argument);
  EXPECT_THROW(medium_.attach(kBroadcastId, {0, 0}, 50.0, rx.fn()), std::invalid_argument);
  EXPECT_THROW(medium_.attach(2, {0, 0}, 0.0, rx.fn()), std::invalid_argument);
}

TEST_F(MediumTest, BroadcastReachesOnlyNodesInSenderRange) {
  Rx near, far;
  medium_.attach(1, {0, 0}, 50.0, {});
  medium_.attach(2, {30, 0}, 50.0, near.fn());
  medium_.attach(3, {80, 0}, 50.0, far.fn());
  medium_.broadcast(1, beacon(1));
  sim_.run_all();
  EXPECT_EQ(near.got.size(), 1u);
  EXPECT_TRUE(far.got.empty());
}

TEST_F(MediumTest, AsymmetricRangesAreTransmitterBased) {
  // Robot (range 250) and sensor (range 63) 100 m apart: the robot reaches
  // the sensor, the sensor cannot reach the robot — exactly the paper's
  // asymmetry behind Fig. 3's report-vs-request hop difference.
  Rx robot_rx, sensor_rx;
  medium_.attach(10, {0, 0}, 250.0, robot_rx.fn());
  medium_.attach(20, {100, 0}, 63.0, sensor_rx.fn());
  EXPECT_TRUE(medium_.in_range(10, 20));
  EXPECT_FALSE(medium_.in_range(20, 10));

  medium_.broadcast(10, beacon(10));
  medium_.broadcast(20, beacon(20));
  sim_.run_all();
  EXPECT_EQ(sensor_rx.got.size(), 1u);
  EXPECT_TRUE(robot_rx.got.empty());
}

TEST_F(MediumTest, DeadNodesNeitherReceiveNorAppearAsNeighbors) {
  Rx rx;
  medium_.attach(1, {0, 0}, 50.0, {});
  medium_.attach(2, {10, 0}, 50.0, rx.fn());
  medium_.set_alive(2, false);
  medium_.broadcast(1, beacon(1));
  sim_.run_all();
  EXPECT_TRUE(rx.got.empty());
  EXPECT_TRUE(medium_.neighbors_of(1).empty());
  medium_.set_alive(2, true);
  EXPECT_EQ(medium_.neighbors_of(1), (std::vector<NodeId>{2}));
}

TEST_F(MediumTest, NodeDyingInFlightMissesDelivery) {
  Rx rx;
  medium_.attach(1, {0, 0}, 50.0, {});
  medium_.attach(2, {10, 0}, 50.0, rx.fn());
  medium_.broadcast(1, beacon(1));
  medium_.set_alive(2, false);  // dies before the frame lands
  sim_.run_all();
  EXPECT_TRUE(rx.got.empty());
}

TEST_F(MediumTest, UnicastDeliversOnlyToTarget) {
  Rx target, bystander;
  medium_.attach(1, {0, 0}, 50.0, {});
  medium_.attach(2, {10, 0}, 50.0, target.fn());
  medium_.attach(3, {10, 5}, 50.0, bystander.fn());
  EXPECT_TRUE(medium_.unicast(1, 2, beacon(1)));
  sim_.run_all();
  EXPECT_EQ(target.got.size(), 1u);
  EXPECT_TRUE(bystander.got.empty());
}

TEST_F(MediumTest, UnicastFailsOutOfRangeOrDead) {
  Rx rx;
  medium_.attach(1, {0, 0}, 50.0, {});
  medium_.attach(2, {100, 0}, 50.0, rx.fn());
  EXPECT_FALSE(medium_.unicast(1, 2, beacon(1)));  // out of range
  medium_.attach(3, {10, 0}, 50.0, rx.fn());
  medium_.set_alive(3, false);
  EXPECT_FALSE(medium_.unicast(1, 3, beacon(1)));  // dead
  sim_.run_all();
  EXPECT_TRUE(rx.got.empty());
}

TEST_F(MediumTest, HopsIncrementOnDelivery) {
  Rx rx;
  medium_.attach(1, {0, 0}, 50.0, {});
  medium_.attach(2, {10, 0}, 50.0, rx.fn());
  Packet p = beacon(1);
  p.hops = 3;
  medium_.unicast(1, 2, p);
  sim_.run_all();
  ASSERT_EQ(rx.got.size(), 1u);
  EXPECT_EQ(rx.got[0].first.hops, 4u);
  EXPECT_EQ(rx.got[0].second, 1u);  // link-layer sender
}

TEST_F(MediumTest, TransmissionsCountedByCategory) {
  medium_.attach(1, {0, 0}, 50.0, {});
  medium_.attach(2, {10, 0}, 50.0, {});
  medium_.broadcast(1, beacon(1));
  Packet report = beacon(1);
  report.type = PacketType::kFailureReport;
  report.payload = FailureReportPayload{};
  medium_.unicast(1, 2, report);
  EXPECT_EQ(counters_.get(MessageCategory::kBeacon), 1u);
  EXPECT_EQ(counters_.get(MessageCategory::kFailureReport), 1u);
}

TEST_F(MediumTest, CategoryOverrideRedirectsAccounting) {
  medium_.attach(1, {0, 0}, 50.0, {});
  Packet p = beacon(1);
  p.type = PacketType::kLocationUpdate;
  p.payload = LocationUpdatePayload{};
  p.category_override = MessageCategory::kInitialization;
  medium_.broadcast(1, p);
  EXPECT_EQ(counters_.get(MessageCategory::kLocationUpdate), 0u);
  EXPECT_EQ(counters_.get(MessageCategory::kInitialization), 1u);
}

TEST_F(MediumTest, DeliveryDelayIsPositiveAndBounded) {
  Rx rx;
  medium_.attach(1, {0, 0}, 50.0, {});
  medium_.attach(2, {10, 0}, 50.0, rx.fn());
  medium_.broadcast(1, beacon(1));
  EXPECT_TRUE(rx.got.empty());  // nothing delivered synchronously
  sim_.run_until(0.01);         // serialization + max 2 ms backoff
  EXPECT_EQ(rx.got.size(), 1u);
}

TEST_F(MediumTest, NeighborsSortedById) {
  medium_.attach(5, {0, 0}, 100.0, {});
  medium_.attach(9, {10, 0}, 50.0, {});
  medium_.attach(2, {20, 0}, 50.0, {});
  medium_.attach(7, {30, 0}, 50.0, {});
  EXPECT_EQ(medium_.neighbors_of(5), (std::vector<NodeId>{2, 7, 9}));
}

TEST_F(MediumTest, MovedNodeChangesNeighborhoods) {
  medium_.attach(1, {0, 0}, 50.0, {});
  medium_.attach(2, {200, 0}, 50.0, {});
  EXPECT_TRUE(medium_.neighbors_of(1).empty());
  medium_.set_position(2, {25, 0});
  EXPECT_EQ(medium_.neighbors_of(1), (std::vector<NodeId>{2}));
  EXPECT_EQ(medium_.position_of(2), (Vec2{25, 0}));
}

TEST_F(MediumTest, DetachRemovesCompletely) {
  medium_.attach(1, {0, 0}, 50.0, {});
  medium_.attach(2, {10, 0}, 50.0, {});
  medium_.detach(2);
  EXPECT_FALSE(medium_.attached(2));
  EXPECT_TRUE(medium_.neighbors_of(1).empty());
  EXPECT_THROW((void)medium_.position_of(2), std::out_of_range);
}

TEST_F(MediumTest, NodesNearQueriesArbitraryPositions) {
  medium_.attach(1, {0, 0}, 50.0, {});
  medium_.attach(2, {100, 0}, 50.0, {});
  medium_.attach(3, {105, 0}, 50.0, {});
  medium_.set_alive(3, false);
  EXPECT_EQ(medium_.nodes_near({100, 0}, 10.0), (std::vector<NodeId>{2}));
  EXPECT_EQ(medium_.nodes_near({50, 0}, 200.0), (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(medium_.tx_range_of(1), 50.0);
}

TEST_F(MediumTest, AccountBooksWithoutDelivering) {
  medium_.attach(1, {0, 0}, 50.0, {});
  medium_.account(MessageCategory::kBeacon, 41);
  EXPECT_EQ(counters_.get(MessageCategory::kBeacon), 41u);
  EXPECT_EQ(medium_.deliveries(), 0u);
}

TEST_F(MediumTest, SerializationDelayGrowsWithPacketSize) {
  // A data packet (80 B) serializes slower than a beacon (40 B) at 11 Mbps;
  // with zero backoff the delivery times expose exactly that difference.
  sim::Simulator sim;
  metrics::TransmissionCounters counters;
  RadioConfig cfg;
  cfg.max_backoff_s = 0.0;
  cfg.propagation_s = 0.0;
  Medium medium(sim, sim::Rng(1), cfg, counters, 50.0);
  medium.attach(1, {0, 0}, 50.0, {});
  std::vector<double> arrival;
  medium.attach(2, {10, 0}, 50.0,
                [&](const Packet&, NodeId) { arrival.push_back(sim.now()); });
  Packet small;
  small.type = PacketType::kBeacon;
  small.dst = 2;
  Packet big;
  big.type = PacketType::kData;
  big.payload = DataPayload{};
  big.dst = 2;
  medium.unicast(1, 2, small);
  sim.run_all();
  medium.unicast(1, 2, big);
  sim.run_all();
  ASSERT_EQ(arrival.size(), 2u);
  const double small_delay = arrival[0];
  const double big_delay = arrival[1] - arrival[0];
  EXPECT_NEAR(small_delay, static_cast<double>(small.size_bytes()) * 8.0 / 11e6, 1e-12);
  EXPECT_NEAR(big_delay, static_cast<double>(big.size_bytes()) * 8.0 / 11e6, 1e-12);
  EXPECT_GT(big_delay, small_delay);
}

// --- Loss model ---------------------------------------------------------------

TEST(MediumLossTest, UnicastArqRetriesUntilSuccess) {
  sim::Simulator sim;
  metrics::TransmissionCounters counters;
  RadioConfig cfg;
  cfg.loss_probability = 0.5;
  cfg.unicast_retries = 10;
  Medium medium(sim, sim::Rng(3), cfg, counters, 50.0);
  int delivered = 0;
  medium.attach(1, {0, 0}, 50.0, {});
  medium.attach(2, {10, 0}, 50.0, [&](const Packet&, NodeId) { ++delivered; });

  int acked = 0;
  const int kTries = 200;
  Packet p;
  p.type = PacketType::kBeacon;
  p.dst = 2;
  for (int i = 0; i < kTries; ++i) acked += medium.unicast(1, 2, p) ? 1 : 0;
  sim.run_all();
  // With 11 attempts at 50% loss, failure odds are ~0.05%: all should ack.
  EXPECT_EQ(acked, kTries);
  EXPECT_EQ(delivered, kTries);
  // And retries must have cost extra transmissions (~2x on average).
  EXPECT_GT(counters.get(MessageCategory::kBeacon), static_cast<std::uint64_t>(kTries) * 3 / 2);
}

TEST(MediumLossTest, BroadcastLosesSomeReceivers) {
  sim::Simulator sim;
  metrics::TransmissionCounters counters;
  RadioConfig cfg;
  cfg.loss_probability = 0.4;
  Medium medium(sim, sim::Rng(9), cfg, counters, 50.0);
  medium.attach(1, {0, 0}, 50.0, {});
  int delivered = 0;
  for (NodeId n = 2; n < 42; ++n) {
    medium.attach(n, {10, static_cast<double>(n)}, 50.0,
                  [&](const Packet&, NodeId) { ++delivered; });
  }
  Packet p;
  p.type = PacketType::kBeacon;
  p.dst = kBroadcastId;
  for (int i = 0; i < 25; ++i) medium.broadcast(1, p);
  sim.run_all();
  const int expected = 25 * 40 * 6 / 10;  // 60% of 1000
  EXPECT_NEAR(delivered, expected, 60);
}

// Pins the ARQ accounting contract: exactly one counted transmission per
// attempt, and the futile-retry early-out when the channel is lossless.
// Regression guard — downstream metrics (Fig. 3/4 overhead) depend on it.
TEST(MediumLossTest, UnicastCountsOneTransmissionPerAttempt) {
  sim::Simulator sim;
  metrics::TransmissionCounters counters;
  RadioConfig cfg;
  cfg.loss_probability = 1.0;  // every attempt lost
  cfg.unicast_retries = 4;
  Medium medium(sim, sim::Rng(3), cfg, counters, 50.0);
  medium.attach(1, {0, 0}, 50.0, {});
  int delivered = 0;
  medium.attach(2, {10, 0}, 50.0, [&](const Packet&, NodeId) { ++delivered; });
  Packet p;
  p.type = PacketType::kBeacon;
  p.dst = 2;
  EXPECT_FALSE(medium.unicast(1, 2, p));
  sim.run_all();
  EXPECT_EQ(delivered, 0);
  // Initial attempt + 4 retries, each on air and counted.
  EXPECT_EQ(counters.get(MessageCategory::kBeacon), 5u);
}

TEST(MediumLossTest, LosslessUnreachableUnicastFailsAfterOneTransmission) {
  sim::Simulator sim;
  metrics::TransmissionCounters counters;
  RadioConfig cfg;
  cfg.unicast_retries = 7;  // must NOT be burned: retrying is futile at loss=0
  Medium medium(sim, sim::Rng(3), cfg, counters, 50.0);
  medium.attach(1, {0, 0}, 50.0, {});
  medium.attach(2, {200, 0}, 50.0, {});  // out of range
  Packet p;
  p.type = PacketType::kBeacon;
  p.dst = 2;
  EXPECT_FALSE(medium.unicast(1, 2, p));
  EXPECT_EQ(counters.get(MessageCategory::kBeacon), 1u);
}

// --- Collision model -------------------------------------------------------------

TEST(MediumCollisionTest, OverlappingBroadcastsCorruptEachOther) {
  sim::Simulator sim;
  metrics::TransmissionCounters counters;
  RadioConfig cfg;
  cfg.model_collisions = true;
  cfg.max_backoff_s = 0.0;  // no jitter: frames overlap deterministically
  Medium medium(sim, sim::Rng(1), cfg, counters, 50.0);
  int delivered = 0;
  medium.attach(1, {0, 0}, 50.0, {});
  medium.attach(2, {20, 0}, 50.0, {});
  medium.attach(3, {10, 0}, 50.0, [&](const Packet&, NodeId) { ++delivered; });

  Packet p;
  p.type = PacketType::kBeacon;
  p.dst = kBroadcastId;
  medium.broadcast(1, p);  // same instant, zero backoff: guaranteed overlap
  medium.broadcast(2, p);
  sim.run_all();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(medium.collisions(), 2u);
}

TEST(MediumCollisionTest, SeparatedBroadcastsBothArrive) {
  sim::Simulator sim;
  metrics::TransmissionCounters counters;
  RadioConfig cfg;
  cfg.model_collisions = true;
  cfg.max_backoff_s = 0.0;
  Medium medium(sim, sim::Rng(1), cfg, counters, 50.0);
  int delivered = 0;
  medium.attach(1, {0, 0}, 50.0, {});
  medium.attach(2, {20, 0}, 50.0, {});
  medium.attach(3, {10, 0}, 50.0, [&](const Packet&, NodeId) { ++delivered; });

  Packet p;
  p.type = PacketType::kBeacon;
  p.dst = kBroadcastId;
  medium.broadcast(1, p);
  sim.run_until(1.0);  // first frame long gone
  medium.broadcast(2, p);
  sim.run_all();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(medium.collisions(), 0u);
}

TEST(MediumCollisionTest, BackoffJitterMostlySeparatesContenders) {
  // With the default 2 ms backoff and ~46 us frames, two contending
  // broadcasts collide rarely — the CSMA stand-in works.
  sim::Simulator sim;
  metrics::TransmissionCounters counters;
  RadioConfig cfg;
  cfg.model_collisions = true;
  Medium medium(sim, sim::Rng(5), cfg, counters, 50.0);
  int delivered = 0;
  medium.attach(1, {0, 0}, 50.0, {});
  medium.attach(2, {20, 0}, 50.0, {});
  medium.attach(3, {10, 0}, 50.0, [&](const Packet&, NodeId) { ++delivered; });
  Packet p;
  p.type = PacketType::kBeacon;
  p.dst = kBroadcastId;
  for (int round = 0; round < 100; ++round) {
    medium.broadcast(1, p);
    medium.broadcast(2, p);
    sim.run_all();
  }
  // 200 frames sent to node 3; expect >85% to survive the contention.
  EXPECT_GT(delivered, 170);
  EXPECT_LT(medium.collisions(), 60u);
}

TEST(MediumCollisionTest, UnicastsAreProtected) {
  sim::Simulator sim;
  metrics::TransmissionCounters counters;
  RadioConfig cfg;
  cfg.model_collisions = true;
  cfg.max_backoff_s = 0.0;
  Medium medium(sim, sim::Rng(1), cfg, counters, 50.0);
  int delivered = 0;
  medium.attach(1, {0, 0}, 50.0, {});
  medium.attach(2, {20, 0}, 50.0, {});
  medium.attach(3, {10, 0}, 50.0, [&](const Packet&, NodeId) { ++delivered; });
  Packet p;
  p.type = PacketType::kBeacon;
  p.dst = 3;
  EXPECT_TRUE(medium.unicast(1, 3, p));  // RTS/CTS-protected: no collision
  EXPECT_TRUE(medium.unicast(2, 3, p));
  sim.run_all();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(medium.collisions(), 0u);
}

// --- Packet ------------------------------------------------------------------------

TEST(PacketTest, SizeDependsOnType) {
  Packet a, b;
  a.type = PacketType::kBeacon;
  b.type = PacketType::kFailureReport;
  EXPECT_GT(b.size_bytes(), a.size_bytes());
  EXPECT_GE(a.size_bytes(), 32u);  // at least the IP + option headers
}

TEST(PacketTest, CategoryMappingCoversAllTypes) {
  EXPECT_EQ(category_of(PacketType::kBeacon), MessageCategory::kBeacon);
  EXPECT_EQ(category_of(PacketType::kLocationAnnounce), MessageCategory::kInitialization);
  EXPECT_EQ(category_of(PacketType::kGuardianConfirm), MessageCategory::kGuardianConfirm);
  EXPECT_EQ(category_of(PacketType::kFailureReport), MessageCategory::kFailureReport);
  EXPECT_EQ(category_of(PacketType::kRepairRequest), MessageCategory::kRepairRequest);
  EXPECT_EQ(category_of(PacketType::kLocationUpdate), MessageCategory::kLocationUpdate);
  EXPECT_EQ(category_of(PacketType::kReplacementAnnounce), MessageCategory::kReplacement);
}

TEST(PacketTest, NodeIdPredicates) {
  EXPECT_TRUE(is_real_node(0));
  EXPECT_TRUE(is_real_node(12345));
  EXPECT_FALSE(is_real_node(kNoNode));
  EXPECT_FALSE(is_real_node(kBroadcastId));
}

}  // namespace
}  // namespace sensrep::net
