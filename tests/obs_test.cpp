// Observability subsystem: repair-lifecycle span tracing and the hot-path
// wall-clock profiler.
//
// The integration suites assert the instrumentation invariants end to end:
// every repaired failure carries a complete detect->report->dispatch->queue->
// travel->repair span chain, spans close exactly once even under packet loss
// and robot crashes (stray_closes() == 0), orphaned work is flagged as open
// or kOrphan spans, and neither the tracer nor the profiler perturbs any
// simulation result.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "obs/profiler.hpp"
#include "obs/tracer.hpp"

namespace sensrep::obs {
namespace {

using core::Algorithm;
using core::Simulation;
using core::SimulationConfig;

SimulationConfig base_config(Algorithm algo, std::uint64_t seed, double duration) {
  SimulationConfig cfg;
  cfg.algorithm = algo;
  cfg.robots = 4;
  cfg.seed = seed;
  cfg.sim_duration = duration;
  return cfg;
}

// --- Tracer unit tests -----------------------------------------------------------

TEST(Tracer, OpenCloseAccounting) {
  Tracer t;
  t.open(1, Stage::kDetect, 10.0, 7);
  EXPECT_TRUE(t.is_open(1, Stage::kDetect));
  EXPECT_EQ(t.opened(), 1u);
  EXPECT_EQ(t.open_count(), 1u);

  t.close(1, Stage::kDetect, 25.0, 15.0, 3);
  EXPECT_FALSE(t.is_open(1, Stage::kDetect));
  EXPECT_EQ(t.closed_count(), 1u);
  EXPECT_EQ(t.open_count(), 0u);
  EXPECT_EQ(t.stray_closes(), 0u);

  const auto& s = t.spans().front();
  EXPECT_EQ(s.trace_id, 1u);
  EXPECT_EQ(s.node, 7u);
  EXPECT_DOUBLE_EQ(s.start, 10.0);
  EXPECT_DOUBLE_EQ(s.end, 25.0);
  EXPECT_DOUBLE_EQ(s.duration(), 15.0);
  ASSERT_TRUE(s.value.has_value());
  EXPECT_DOUBLE_EQ(*s.value, 15.0);
  ASSERT_TRUE(s.actor.has_value());
  EXPECT_EQ(*s.actor, 3u);
}

TEST(Tracer, DuplicateOpenIsIgnoredAndCounted) {
  Tracer t;
  t.open(5, Stage::kQueue, 1.0, 2);
  t.open(5, Stage::kQueue, 2.0, 2);  // same (trace, stage) while open
  EXPECT_EQ(t.opened(), 1u);
  EXPECT_EQ(t.duplicate_opens(), 1u);
  t.close(5, Stage::kQueue, 3.0);
  EXPECT_DOUBLE_EQ(t.spans().front().start, 1.0);  // first open wins

  // After closing, the same (trace, stage) may open a fresh instance.
  t.open(5, Stage::kQueue, 4.0, 2);
  EXPECT_EQ(t.opened(), 2u);
  EXPECT_EQ(t.duplicate_opens(), 1u);
}

TEST(Tracer, StrayCloseIsCountedNoop) {
  Tracer t;
  t.close(9, Stage::kTravel, 1.0);
  EXPECT_EQ(t.stray_closes(), 1u);
  EXPECT_TRUE(t.spans().empty());

  t.open(9, Stage::kTravel, 2.0, 1);
  t.close(9, Stage::kTravel, 3.0);
  t.close(9, Stage::kTravel, 4.0);  // already closed
  EXPECT_EQ(t.stray_closes(), 2u);
  EXPECT_DOUBLE_EQ(t.spans().front().end, 3.0);  // closed spans are immutable
}

TEST(Tracer, CloseIfOpenToleratesMissingSpanSilently) {
  Tracer t;
  t.close_if_open(3, Stage::kDispatch, 1.0);
  EXPECT_EQ(t.stray_closes(), 0u);

  t.open(3, Stage::kDispatch, 2.0, 4);
  t.close_if_open(3, Stage::kDispatch, 5.0);
  t.close_if_open(3, Stage::kDispatch, 6.0);
  EXPECT_EQ(t.stray_closes(), 0u);
  EXPECT_EQ(t.closed_count(), 1u);
  EXPECT_DOUBLE_EQ(t.spans().front().end, 5.0);
}

TEST(Tracer, HasCompleteChainRequiresEveryCoreStageClosed) {
  Tracer t;
  const std::uint64_t tid = 42;
  const std::vector<Stage> core_stages = {Stage::kDetect, Stage::kReport,
                                          Stage::kDispatch, Stage::kQueue,
                                          Stage::kTravel};
  t.open(tid, Stage::kRepair, 0.0, 1);
  double now = 0.0;
  for (const Stage st : core_stages) {
    t.open(tid, st, now, 1);
    EXPECT_FALSE(t.has_complete_chain(tid));
    t.close(tid, st, now + 1.0);
    now += 1.0;
  }
  EXPECT_FALSE(t.has_complete_chain(tid));  // root still open
  t.close(tid, Stage::kRepair, now);
  EXPECT_TRUE(t.has_complete_chain(tid));
  EXPECT_FALSE(t.has_complete_chain(tid + 1));
}

TEST(Tracer, SpansOfAndStageDurationsSelectClosedSpans) {
  Tracer t;
  t.open(1, Stage::kTravel, 0.0, 1);
  t.close(1, Stage::kTravel, 4.0);
  t.open(2, Stage::kTravel, 0.0, 2);
  t.close(2, Stage::kTravel, 6.0);
  t.open(3, Stage::kTravel, 0.0, 3);  // stays open

  const auto durations = t.stage_durations(Stage::kTravel);
  ASSERT_EQ(durations.size(), 2u);
  EXPECT_DOUBLE_EQ(durations[0], 4.0);
  EXPECT_DOUBLE_EQ(durations[1], 6.0);

  EXPECT_EQ(t.spans_of(2).size(), 1u);
  EXPECT_EQ(t.spans_of(7).size(), 0u);
}

TEST(Tracer, JsonlExportFlagsOpenSpans) {
  Tracer t;
  t.open(1, Stage::kDetect, 1.5, 9, 4);
  t.close(1, Stage::kDetect, 2.5, 1.0);
  t.open(2, Stage::kTravel, 3.0, 8);

  std::ostringstream out;
  t.write_jsonl(out);
  std::istringstream lines(out.str());
  std::string line;
  std::vector<std::string> all;
  while (std::getline(lines, line)) all.push_back(line);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_NE(all[0].find(R"("stage":"detect")"), std::string::npos);
  EXPECT_NE(all[0].find(R"("end":)"), std::string::npos);
  EXPECT_EQ(all[0].find(R"("open":true)"), std::string::npos);
  EXPECT_NE(all[1].find(R"("stage":"travel")"), std::string::npos);
  EXPECT_NE(all[1].find(R"("open":true)"), std::string::npos);
  for (const auto& l : all) {
    EXPECT_EQ(l.front(), '{');
    EXPECT_EQ(l.back(), '}');
  }
}

TEST(Tracer, ChromeTraceExportIsStructurallyValid) {
  Tracer t;
  t.open(1, Stage::kRepair, 0.0, 5);
  t.open(1, Stage::kDetect, 0.0, 5);
  t.close(1, Stage::kDetect, 30.0, 30.0);
  t.close(1, Stage::kRepair, 120.0, 120.0, 2);
  t.open(2, Stage::kDetect, 50.0, 6);  // open at export time

  std::ostringstream out;
  t.write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find(R"("ph":"X")"), std::string::npos);   // closed spans
  EXPECT_NE(json.find(R"("ph":"B")"), std::string::npos);   // the open span
  EXPECT_NE(json.find(R"("displayTimeUnit":"ms")"), std::string::npos);
  const auto last = json.find_last_not_of('\n');
  ASSERT_NE(last, std::string::npos);
  EXPECT_EQ(json[last], '}');
  // Balanced braces/brackets outside string literals.
  int depth = 0;
  bool in_string = false, escaped = false;
  for (const char c : json) {
    if (escaped) {
      escaped = false;
    } else if (c == '\\') {
      escaped = in_string;
    } else if (c == '"') {
      in_string = !in_string;
    } else if (!in_string && (c == '{' || c == '[')) {
      ++depth;
    } else if (!in_string && (c == '}' || c == ']')) {
      --depth;
      ASSERT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(Tracer, ClearResetsEverything) {
  Tracer t;
  t.open(1, Stage::kDetect, 0.0, 1);
  t.open(1, Stage::kDetect, 1.0, 1);
  t.close(2, Stage::kDetect, 1.0);
  t.clear();
  EXPECT_EQ(t.opened(), 0u);
  EXPECT_EQ(t.closed_count(), 0u);
  EXPECT_EQ(t.duplicate_opens(), 0u);
  EXPECT_EQ(t.stray_closes(), 0u);
  EXPECT_FALSE(t.is_open(1, Stage::kDetect));
}

// --- Profiler unit tests ---------------------------------------------------------

TEST(Profiler, DisabledTimersRecordNothing) {
  Profiler::reset();
  Profiler::enable(false);
  { const ScopedTimer probe(Probe::kPlanarizer); }
  EXPECT_EQ(Profiler::snapshot(Probe::kPlanarizer).count, 0u);
}

TEST(Profiler, EnabledTimersAccumulate) {
  Profiler::reset();
  Profiler::enable(true);
  { const ScopedTimer probe(Probe::kPlanarizer); }
  { const ScopedTimer probe(Probe::kPlanarizer); }
  Profiler::enable(false);
  const auto snap = Profiler::snapshot(Probe::kPlanarizer);
  EXPECT_EQ(snap.count, 2u);

  const std::string report = Profiler::report();
  EXPECT_NE(report.find("planarizer"), std::string::npos);

  Profiler::reset();
  EXPECT_EQ(Profiler::snapshot(Probe::kPlanarizer).count, 0u);
}

// --- Integration: traced simulations ---------------------------------------------

class TracedRun : public ::testing::TestWithParam<Algorithm> {};

TEST_P(TracedRun, EveryRepairedFailureHasACompleteSpanChain) {
  auto cfg = base_config(GetParam(), 7, 8000.0);
  Simulation s(cfg);
  Tracer tracer;
  s.attach_tracer(tracer);
  s.run();

  const auto r = s.result();
  ASSERT_GT(r.repaired, 0u);
  EXPECT_EQ(tracer.stray_closes(), 0u);
  EXPECT_GT(tracer.opened(), 0u);

  std::size_t complete = 0;
  const auto& records = s.failure_log().records();
  for (std::size_t i = 0; i < records.size(); ++i) {
    const std::uint64_t tid = i + 1;  // failure id convention: index + 1
    if (records[i].repaired()) {
      EXPECT_TRUE(tracer.has_complete_chain(tid)) << "failure " << tid;
      ++complete;
    } else {
      // Unrepaired failures must leave their root span open — flagged, not
      // silently dropped.
      EXPECT_TRUE(tracer.is_open(tid, Stage::kRepair)) << "failure " << tid;
    }
  }
  EXPECT_EQ(complete, r.repaired);

  // Travel spans carry the per-task travel distance as their value.
  for (const auto& span : tracer.spans()) {
    if (span.stage == Stage::kTravel && span.closed()) {
      ASSERT_TRUE(span.value.has_value());
      EXPECT_GE(*span.value, 0.0);
    }
  }
}

TEST_P(TracedRun, SpanPairingSurvivesPacketLoss) {
  // Lossy radio: reports need retransmission, robots re-learn positions.
  // Whatever the retry machinery does, spans still close exactly once.
  auto cfg = base_config(GetParam(), 11, 8000.0);
  cfg.radio.loss_probability = 0.1;
  cfg.field.reliable_reports = true;
  Simulation s(cfg);
  Tracer tracer;
  s.attach_tracer(tracer);
  s.run();

  const auto r = s.result();
  ASSERT_GT(r.repaired, 0u);
  EXPECT_EQ(tracer.stray_closes(), 0u);
  const auto& records = s.failure_log().records();
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].repaired()) {
      EXPECT_TRUE(tracer.has_complete_chain(i + 1)) << "failure " << i + 1;
    }
  }
}

TEST_P(TracedRun, RobotCrashesProduceOrphanSpansAndClosedRoots) {
  // Two of four robots die mid-run; their in-flight and queued tasks orphan,
  // and the fault-tolerance machinery redispatches them. Traces must show the
  // orphan stage, never double-close, and close the root span of every
  // repaired failure. Chain completeness is weaker than in the fault-free
  // suite: a failure repaired by a robot still carrying a *stale* task (from
  // an earlier failure of the same slot, redispatched around a crash) gets
  // its travel attributed to that older trace — an artifact the tracer is
  // meant to surface, not hide — so only most chains are complete.
  auto cfg = base_config(GetParam(), 11, 16000.0);
  cfg.robot_faults.crashes = {{0, 1200.0}, {1, 2400.0}};
  Simulation s(cfg);
  Tracer tracer;
  s.attach_tracer(tracer);
  s.run();

  const auto r = s.result();
  EXPECT_EQ(r.robot_failures, 2u);
  ASSERT_GT(r.repaired, 0u);
  EXPECT_EQ(tracer.stray_closes(), 0u);

  if (r.orphaned_tasks > 0) {
    const bool any_orphan_span =
        std::any_of(tracer.spans().begin(), tracer.spans().end(),
                    [](const Span& sp) { return sp.stage == Stage::kOrphan; });
    EXPECT_TRUE(any_orphan_span) << r.orphaned_tasks << " orphaned tasks, no spans";
  }

  std::size_t complete = 0, repaired = 0;
  const auto& records = s.failure_log().records();
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (!records[i].repaired()) continue;
    ++repaired;
    const std::uint64_t tid = i + 1;
    const auto spans = tracer.spans_of(tid);
    const bool root_closed =
        std::any_of(spans.begin(), spans.end(), [](const Span& sp) {
          return sp.stage == Stage::kRepair && sp.closed();
        });
    EXPECT_TRUE(root_closed) << "failure " << tid << " repaired, root span open";
    if (tracer.has_complete_chain(tid)) ++complete;
  }
  EXPECT_GE(complete * 10, repaired * 9)
      << complete << " complete chains of " << repaired << " repaired failures";
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, TracedRun,
                         ::testing::Values(Algorithm::kCentralized,
                                           Algorithm::kFixedDistributed,
                                           Algorithm::kDynamicDistributed),
                         [](const ::testing::TestParamInfo<Algorithm>& param_info) {
                           return std::string(core::to_string(param_info.param));
                         });

// --- Integration: observability must not perturb results -------------------------

TEST(ObservabilityDeterminism, TracerAndProfilerLeaveResultsByteIdentical) {
  const auto cfg = base_config(Algorithm::kCentralized, 3, 8000.0);

  Simulation plain(cfg);
  plain.run();
  const std::string baseline = plain.result().summary();

  Profiler::reset();
  Profiler::enable(true);
  Simulation observed(cfg);
  Tracer tracer;
  observed.attach_tracer(tracer);
  observed.run();
  Profiler::enable(false);
  const std::string instrumented = observed.result().summary();

  EXPECT_EQ(baseline, instrumented);
  EXPECT_GT(tracer.opened(), 0u);
  // The profiled run actually exercised the probes.
  EXPECT_GT(Profiler::snapshot(Probe::kEventPop).count, 0u);
  Profiler::reset();
}

}  // namespace
}  // namespace sensrep::obs
