// Robot fault tolerance: failure injection, lease-based dead-robot
// detection, task reassignment, and manager failover.
//
// The chaos suite is the tentpole check: with staggered robot crashes and a
// surviving robot holding spares, every injected sensor failure must still
// be repaired eventually, for all three coordination algorithms.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/centralized.hpp"
#include "core/fixed_distributed.hpp"
#include "core/simulation.hpp"
#include "robot/fault.hpp"

namespace sensrep::core {
namespace {

SimulationConfig base_config(Algorithm algo, std::uint64_t seed, double duration) {
  SimulationConfig cfg;
  cfg.algorithm = algo;
  cfg.robots = 4;
  cfg.seed = seed;
  cfg.sim_duration = duration;
  return cfg;
}

// --- FaultConfig unit tests ------------------------------------------------------

TEST(FaultConfig, DisabledByDefault) {
  robot::FaultConfig f;
  EXPECT_FALSE(f.spontaneous());
  EXPECT_FALSE(f.enabled());
  EXPECT_NO_THROW(f.validate());
}

TEST(FaultConfig, AnyFaultSourceEnablesTheSubsystem) {
  robot::FaultConfig f;
  f.mtbf = 16000.0;
  EXPECT_TRUE(f.spontaneous());
  EXPECT_TRUE(f.enabled());

  robot::FaultConfig crashes;
  crashes.crashes.push_back({0, 100.0});
  EXPECT_FALSE(crashes.spontaneous());
  EXPECT_TRUE(crashes.enabled());

  robot::FaultConfig mgr;
  mgr.manager_crash_at = 100.0;
  EXPECT_TRUE(mgr.enabled());
}

TEST(FaultConfig, LeaseWindowIsMultiplierTimesHeartbeat) {
  robot::FaultConfig f;
  EXPECT_DOUBLE_EQ(f.lease_window(), 180.0);  // 3 x 60 s defaults
  f.heartbeat_period = 30.0;
  f.lease_multiplier = 4.0;
  EXPECT_DOUBLE_EQ(f.lease_window(), 120.0);
}

TEST(FaultConfig, ValidateRejectsBadParameters) {
  robot::FaultConfig f;
  f.mtbf = 0.0;
  EXPECT_THROW(f.validate(), std::invalid_argument);
  f.mtbf = std::nan("");
  EXPECT_THROW(f.validate(), std::invalid_argument);
  f.mtbf = 16000.0;
  f.weibull_shape = -1.0;
  f.distribution = robot::FaultDistribution::kWeibull;
  EXPECT_THROW(f.validate(), std::invalid_argument);
  f.weibull_shape = 3.0;
  EXPECT_NO_THROW(f.validate());
  f.lease_multiplier = 0.5;
  EXPECT_THROW(f.validate(), std::invalid_argument);
}

TEST(FaultConfig, DrawMeansMatchMtbfForBothDistributions) {
  for (const auto dist :
       {robot::FaultDistribution::kExponential, robot::FaultDistribution::kWeibull}) {
    robot::FaultConfig f;
    f.distribution = dist;
    f.mtbf = 16000.0;
    sim::Rng rng(99);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += f.draw(rng);
    EXPECT_NEAR(sum / n, f.mtbf, f.mtbf * 0.05) << to_string(dist);
  }
}

TEST(FaultConfig, SimulationConfigCrossValidation) {
  auto cfg = base_config(Algorithm::kDynamicDistributed, 1, 1000.0);
  cfg.robot_faults.crashes.push_back({cfg.robots, 100.0});  // index out of range
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.robot_faults.crashes.clear();
  cfg.robot_faults.manager_crash_at = 100.0;  // needs the centralized algorithm
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.algorithm = Algorithm::kCentralized;
  EXPECT_NO_THROW(cfg.validate());
}

// --- FaultConfig: repair / return (MTTR) -----------------------------------------

TEST(FaultConfig, RepairsDisabledByDefault) {
  robot::FaultConfig f;
  EXPECT_FALSE(f.repairs_enabled());
  f.mtbf = 16000.0;  // pure-decay fault model: deaths without resurrections
  EXPECT_TRUE(f.enabled());
  EXPECT_FALSE(f.repairs_enabled());
}

TEST(FaultConfig, AnyRepairSourceEnablesRepairsAndTheSubsystem) {
  robot::FaultConfig mttr;
  mttr.mtbf = 16000.0;
  mttr.mttr = 2000.0;
  EXPECT_TRUE(mttr.repairs_enabled());
  EXPECT_TRUE(mttr.enabled());

  robot::FaultConfig scheduled;
  scheduled.repairs.push_back({0, 500.0});
  EXPECT_TRUE(scheduled.repairs_enabled());
  EXPECT_TRUE(scheduled.enabled());  // a repair schedule arms the machinery too

  robot::FaultConfig mgr;
  mgr.manager_crash_at = 100.0;
  mgr.manager_repair_at = 500.0;
  EXPECT_TRUE(mgr.repairs_enabled());
  EXPECT_NO_THROW(mgr.validate());
}

TEST(FaultConfig, ValidateRejectsBadRepairParameters) {
  robot::FaultConfig f;
  f.mttr = 0.0;  // zero repair time is degenerate, not "disabled"
  EXPECT_THROW(f.validate(), std::invalid_argument);
  f.mttr = std::nan("");
  EXPECT_THROW(f.validate(), std::invalid_argument);
  f.mttr = std::numeric_limits<double>::infinity();  // the "disabled" spelling
  EXPECT_NO_THROW(f.validate());

  f.mttr = 2000.0;
  f.repair_distribution = robot::FaultDistribution::kWeibull;
  f.repair_weibull_shape = 0.0;
  EXPECT_THROW(f.validate(), std::invalid_argument);
  f.repair_weibull_shape = 3.0;
  EXPECT_NO_THROW(f.validate());

  f.repairs.push_back({0, -1.0});  // repairs before t=0 cannot fire
  EXPECT_THROW(f.validate(), std::invalid_argument);
  f.repairs.clear();

  f.manager_repair_at = 500.0;  // a manager repair needs a manager crash...
  EXPECT_THROW(f.validate(), std::invalid_argument);
  f.manager_crash_at = 1000.0;  // ...and must come after it
  EXPECT_THROW(f.validate(), std::invalid_argument);
  f.manager_crash_at = 100.0;
  EXPECT_NO_THROW(f.validate());
}

TEST(FaultConfig, DrawRepairMeansMatchMttrForBothDistributions) {
  for (const auto dist :
       {robot::FaultDistribution::kExponential, robot::FaultDistribution::kWeibull}) {
    robot::FaultConfig f;
    f.repair_distribution = dist;
    f.mttr = 2000.0;
    sim::Rng rng(123);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += f.draw_repair(rng);
    EXPECT_NEAR(sum / n, f.mttr, f.mttr * 0.05) << to_string(dist);
  }
}

TEST(FaultConfig, SimulationConfigCrossValidatesRepairs) {
  auto cfg = base_config(Algorithm::kDynamicDistributed, 1, 1000.0);
  cfg.robot_faults.repairs.push_back({cfg.robots, 100.0});  // index out of range
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.robot_faults.repairs.clear();
  cfg.robot_faults.manager_crash_at = 100.0;
  cfg.robot_faults.manager_repair_at = 500.0;  // centralized-only pair
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.algorithm = Algorithm::kCentralized;
  EXPECT_NO_THROW(cfg.validate());
}

// --- Opt-in gating ---------------------------------------------------------------

TEST(FaultGating, DefaultConfigRunsWithZeroFaultActivity) {
  // The regression suite pins the golden traces byte-for-byte; this asserts
  // the observable invariant behind it: no fault model, no fault traffic.
  Simulation s(base_config(Algorithm::kCentralized, 1, 4000.0));
  s.run();
  const auto r = s.result();
  EXPECT_EQ(r.robot_failures, 0u);
  EXPECT_EQ(r.tasks_lost, 0u);
  EXPECT_EQ(r.orphaned_tasks, 0u);
  EXPECT_EQ(r.redispatches, 0u);
  EXPECT_EQ(r.failover_events, 0u);
  EXPECT_EQ(r.adoptions, 0u);
  EXPECT_EQ(r.tx(metrics::MessageCategory::kFaultTolerance), 0u);
  EXPECT_EQ(r.summary().find("faults"), std::string::npos);
}

TEST(FaultGating, ScheduledCrashKillsExactlyThatRobot) {
  auto cfg = base_config(Algorithm::kDynamicDistributed, 1, 4000.0);
  cfg.robot_faults.crashes.push_back({2, 1000.0});
  Simulation s(cfg);
  s.run_until(999.0);
  EXPECT_FALSE(s.robots()[2]->failed());
  s.run_until(1001.0);
  EXPECT_TRUE(s.robots()[2]->failed());
  const double odo_at_death = s.robots()[2]->odometer();
  s.run();
  EXPECT_DOUBLE_EQ(s.robots()[2]->odometer(), odo_at_death);  // dead robots park
  const auto r = s.result();
  EXPECT_EQ(r.robot_failures, 1u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(s.robots()[i]->failed(), i == 2) << "robot " << i;
  }
}

TEST(FaultGating, SpontaneousMtbfKillsRobotsOverTime) {
  auto cfg = base_config(Algorithm::kDynamicDistributed, 5, 8000.0);
  cfg.robot_faults.mtbf = 4000.0;  // E[deaths by 8000 s] = 4 * (1 - e^-2) ~ 3.5
  Simulation s(cfg);
  s.run();
  const auto r = s.result();
  EXPECT_GE(r.robot_failures, 1u);
  EXPECT_LE(r.robot_failures, 4u);
  EXPECT_NE(r.summary().find("faults"), std::string::npos);
}

// --- Chaos: every failure repaired while one robot with spares survives ----------

class ChaosRecovery : public ::testing::TestWithParam<Algorithm> {};

TEST_P(ChaosRecovery, EveryFailureRepairedDespiteRobotDeaths) {
  // Three of four robots die in a staggered sequence while sensor failures
  // are injected; the fleet's remaining robot holds unlimited spares. The
  // recovery machinery (leases + re-reports + per-algorithm reassignment)
  // must eventually repair every single failure.
  auto cfg = base_config(GetParam(), 11, 16000.0);
  cfg.field.spontaneous_failures = false;  // injected failures only
  cfg.robot_faults.crashes = {{0, 1200.0}, {1, 2400.0}, {2, 3600.0}};
  Simulation s(cfg);

  // Victims spaced farther apart than the sensor radio range, so no victim
  // can be another victim's guardian — detection never races the injection.
  std::vector<net::NodeId> victims;
  for (net::NodeId id = 0; id < s.field().size() && victims.size() < 12; ++id) {
    const auto p = s.field().node(id).position();
    bool spread = true;
    for (const auto v : victims) {
      spread = spread && geometry::distance(p, s.field().node(v).position()) >
                             cfg.field.sensor_tx_range;
    }
    if (spread) victims.push_back(id);
  }
  ASSERT_GE(victims.size(), 8u);

  // Two injection waves bracketing the robot deaths: wave one lands while
  // the full fleet is up (tasks die with their robots), wave two lands when
  // sensors still hold stale knowledge of dead robots.
  s.run_until(600.0);
  for (std::size_t i = 0; i < victims.size() / 2; ++i) s.field().fail_slot(victims[i]);
  s.run_until(2600.0);
  for (std::size_t i = victims.size() / 2; i < victims.size(); ++i) {
    s.field().fail_slot(victims[i]);
  }
  s.run();

  const auto r = s.result();
  EXPECT_EQ(r.robot_failures, 3u);
  ASSERT_EQ(r.failures, victims.size());
  EXPECT_EQ(r.detected, r.failures);
  EXPECT_EQ(r.repaired, r.failures)
      << "unrepaired failures survived the recovery machinery";
  // The last robot standing did work after the rest of the fleet was gone.
  EXPECT_TRUE(s.robots()[3]->repairs_done() > 0);
  for (const auto& rec : s.failure_log().records()) {
    EXPECT_TRUE(rec.repaired()) << "slot " << rec.node_id << " never repaired";
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, ChaosRecovery,
                         ::testing::Values(Algorithm::kCentralized,
                                           Algorithm::kFixedDistributed,
                                           Algorithm::kDynamicDistributed),
                         [](const ::testing::TestParamInfo<Algorithm>& param_info) {
                           return std::string(to_string(param_info.param));
                         });

// --- Chaos with resurrection: robots die AND come back mid-run -------------------

class ChaosResurrection : public ::testing::TestWithParam<Algorithm> {};

TEST_P(ChaosResurrection, EveryFailureRepairedWithDeathsAndRebirths) {
  // Same staggered-death storm as ChaosRecovery, but each dead robot is
  // repaired a few thousand seconds later and must rejoin service through its
  // algorithm's return path (re-admission / ownership return / reflood). A
  // lossy radio stresses the retry logic in every exchange.
  auto cfg = base_config(GetParam(), 11, 16000.0);
  cfg.field.spontaneous_failures = false;  // injected failures only
  cfg.radio.loss_probability = 0.1;        // rejoin traffic must survive loss
  cfg.robot_faults.crashes = {{0, 1200.0}, {1, 2400.0}, {2, 3600.0}};
  cfg.robot_faults.repairs = {{0, 5200.0}, {1, 6400.0}, {2, 7600.0}};
  Simulation s(cfg);

  std::vector<net::NodeId> victims;
  for (net::NodeId id = 0; id < s.field().size() && victims.size() < 12; ++id) {
    const auto p = s.field().node(id).position();
    bool spread = true;
    for (const auto v : victims) {
      spread = spread && geometry::distance(p, s.field().node(v).position()) >
                             cfg.field.sensor_tx_range;
    }
    if (spread) victims.push_back(id);
  }
  ASSERT_GE(victims.size(), 8u);

  // Wave one lands on the full fleet, wave two while three robots are dead,
  // wave three after everyone is back.
  s.run_until(600.0);
  for (std::size_t i = 0; i < victims.size() / 3; ++i) s.field().fail_slot(victims[i]);
  s.run_until(4000.0);
  for (std::size_t i = victims.size() / 3; i < 2 * victims.size() / 3; ++i) {
    s.field().fail_slot(victims[i]);
  }
  s.run_until(9000.0);
  for (std::size_t i = 2 * victims.size() / 3; i < victims.size(); ++i) {
    s.field().fail_slot(victims[i]);
  }
  s.run();

  const auto r = s.result();
  EXPECT_EQ(r.robot_failures, 3u);
  EXPECT_EQ(r.robot_repairs, 3u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(s.robots()[i]->failed()) << "robot " << i << " still down at the end";
  }
  ASSERT_EQ(r.failures, victims.size());
  EXPECT_EQ(r.detected, r.failures);
  EXPECT_EQ(r.repaired, r.failures)
      << "unrepaired failures survived the death+rebirth storm";
  for (const auto& rec : s.failure_log().records()) {
    EXPECT_TRUE(rec.repaired()) << "slot " << rec.node_id << " never repaired";
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, ChaosResurrection,
                         ::testing::Values(Algorithm::kCentralized,
                                           Algorithm::kFixedDistributed,
                                           Algorithm::kDynamicDistributed),
                         [](const ::testing::TestParamInfo<Algorithm>& param_info) {
                           return std::string(to_string(param_info.param));
                         });

TEST(ChaosAvailability, SpontaneousMtbfMttrCyclesRobotsBackIntoService) {
  // With finite MTBF and a short MTTR the fleet cycles dead -> repaired:
  // every death inside the horizon whose repair draw also lands inside it
  // comes back (repairs can only trail failures).
  auto cfg = base_config(Algorithm::kDynamicDistributed, 19, 16000.0);
  cfg.robot_faults.mtbf = 4000.0;
  cfg.robot_faults.mttr = 800.0;
  Simulation s(cfg);
  s.run();
  const auto r = s.result();
  EXPECT_GE(r.robot_failures, 1u);
  EXPECT_GE(r.robot_repairs, 1u);
  EXPECT_LE(r.robot_repairs, r.robot_failures);
  EXPECT_NE(r.summary().find("repairs"), std::string::npos);
}

// --- Centralized: lease-expiry redispatch and manager failover -------------------

TEST(CentralizedRecovery, LeaseExpiryRedispatchesInFlightTasks) {
  auto cfg = base_config(Algorithm::kCentralized, 3, 10000.0);
  cfg.field.spontaneous_failures = false;
  // All but robot 3 die just after dispatch, with tasks still in flight.
  cfg.robot_faults.crashes = {{0, 560.0}, {1, 560.0}, {2, 560.0}};
  Simulation s(cfg);
  s.run_until(500.0);
  for (net::NodeId id = 0; id < 10; ++id) {
    s.field().fail_slot(static_cast<net::NodeId>(id * 19));
  }
  s.run();
  const auto r = s.result();
  EXPECT_GE(r.redispatches, 1u);  // leases expired with work outstanding
  EXPECT_EQ(r.repaired, r.failures);
  const auto* algo = dynamic_cast<const CentralizedAlgorithm*>(&s.algorithm());
  ASSERT_NE(algo, nullptr);
  EXPECT_EQ(algo->in_flight_count(), 0u);  // table drains once work completes
}

TEST(CentralizedRecovery, ManagerFailoverPromotesLowestLiveRobot) {
  auto cfg = base_config(Algorithm::kCentralized, 7, 8000.0);
  cfg.robot_faults.manager_crash_at = 2000.0;
  Simulation s(cfg);
  s.run();
  const auto r = s.result();
  EXPECT_EQ(r.failover_events, 1u);
  EXPECT_EQ(r.elections, 1u);  // one real kElection round, not an analytic charge
  const auto* algo = dynamic_cast<const CentralizedAlgorithm*>(&s.algorithm());
  ASSERT_NE(algo, nullptr);
  ASSERT_TRUE(algo->acting_manager().has_value());
  EXPECT_EQ(*algo->acting_manager(), 0u);  // lowest-id live robot wins
  // The pipeline keeps flowing after the failover: failures born well after
  // the crash still get reported (to the acting manager) and repaired.
  std::size_t late_repaired = 0;
  for (const auto& rec : s.failure_log().records()) {
    if (rec.failed_at > 3000.0 && rec.repaired()) ++late_repaired;
  }
  EXPECT_GT(late_repaired, 0u);
  EXPECT_GE(r.delivery_ratio, 0.8);
}

TEST(CentralizedRecovery, FailoverSkipsDeadRobots) {
  auto cfg = base_config(Algorithm::kCentralized, 7, 8000.0);
  cfg.robot_faults.crashes = {{0, 1000.0}};   // robot 0 is long dead...
  cfg.robot_faults.manager_crash_at = 3000.0;  // ...when the manager goes
  Simulation s(cfg);
  s.run();
  const auto* algo = dynamic_cast<const CentralizedAlgorithm*>(&s.algorithm());
  ASSERT_NE(algo, nullptr);
  ASSERT_TRUE(algo->acting_manager().has_value());
  EXPECT_EQ(*algo->acting_manager(), 1u);  // 0 is dead; next index promotes
}

TEST(CentralizedRecovery, AllDeadFleetRunsNoElectionAndPaysForNone) {
  // The satellite bugfix: failover used to charge robot_count() election
  // messages before checking whether any live robot existed. With the whole
  // fleet (and the manager) dead, the fault-tolerance message counter must
  // freeze and no election may be recorded.
  auto cfg = base_config(Algorithm::kCentralized, 3, 6000.0);
  cfg.robots = 3;
  cfg.field.spontaneous_failures = false;
  cfg.robot_faults.crashes = {{0, 500.0}, {1, 500.0}, {2, 500.0}};
  cfg.robot_faults.manager_crash_at = 1500.0;
  Simulation s(cfg);
  // By 2500 s every node is dead and every lease (robot and manager) has
  // expired; the failed failover attempt has already happened at least once.
  s.run_until(2500.0);
  const auto mid = s.result();
  const auto frozen = mid.tx(metrics::MessageCategory::kFaultTolerance);
  s.run();
  const auto r = s.result();
  EXPECT_EQ(r.failover_events, 0u);
  EXPECT_EQ(r.elections, 0u);
  EXPECT_EQ(r.tx(metrics::MessageCategory::kFaultTolerance), frozen)
      << "a dead fleet kept paying fault-tolerance messages";
}

TEST(CentralizedRecovery, RepairedManagerGetsTheRoleBackWithoutLosingTasks) {
  // Manager dies at 2000 s, a robot is promoted, the manager is repaired at
  // 4000 s. The acting manager must hand the role back via a real
  // kOwnershipTransfer exchange — and in-flight tasks dispatched under the
  // acting manager must survive the handback and complete.
  auto cfg = base_config(Algorithm::kCentralized, 7, 12000.0);
  cfg.field.spontaneous_failures = false;
  cfg.robot_faults.manager_crash_at = 2000.0;
  cfg.robot_faults.manager_repair_at = 4000.0;
  Simulation s(cfg);
  // Failures injected while the acting manager holds the role: their tasks
  // are in flight (or queued) across the handback boundary.
  s.run_until(3800.0);
  for (net::NodeId id = 0; id < 8; ++id) {
    s.field().fail_slot(static_cast<net::NodeId>(id * 23));
  }
  s.run();
  const auto r = s.result();
  EXPECT_EQ(r.failover_events, 1u);
  EXPECT_EQ(r.elections, 1u);
  EXPECT_EQ(r.handbacks, 1u);
  EXPECT_GE(r.ownership_transfers, 1u);
  const auto* algo = dynamic_cast<const CentralizedAlgorithm*>(&s.algorithm());
  ASSERT_NE(algo, nullptr);
  EXPECT_FALSE(algo->acting_manager().has_value())
      << "the repaired manager never got the role back";
  EXPECT_EQ(r.repaired, r.failures) << "tasks were lost across the handback";
  EXPECT_EQ(algo->in_flight_count(), 0u);
}

TEST(CentralizedRecovery, HandbackSurvivesALossyRadio) {
  // The handback offer is re-sent every supervision sweep until it is
  // delivered, so even a heavily lossy radio only delays the role return.
  auto cfg = base_config(Algorithm::kCentralized, 21, 12000.0);
  cfg.radio.loss_probability = 0.2;
  cfg.robot_faults.manager_crash_at = 2000.0;
  cfg.robot_faults.manager_repair_at = 4000.0;
  Simulation s(cfg);
  s.run();
  const auto r = s.result();
  EXPECT_EQ(r.handbacks, 1u);
  const auto* algo = dynamic_cast<const CentralizedAlgorithm*>(&s.algorithm());
  ASSERT_NE(algo, nullptr);
  EXPECT_FALSE(algo->acting_manager().has_value());
}

TEST(CentralizedRecovery, RepairedRobotIsReadmittedToTheDispatchPool) {
  // Robot dies, its lease expires (presumed dead, out of the candidate set),
  // then it is repaired and must re-enter the pool via its re-admission
  // announce: failures injected after the rebirth can be served by it again.
  auto cfg = base_config(Algorithm::kCentralized, 23, 12000.0);
  cfg.field.spontaneous_failures = false;
  cfg.robot_faults.crashes = {{0, 1000.0}, {1, 1000.0}, {2, 1000.0}};
  cfg.robot_faults.repairs = {{0, 4000.0}, {1, 4000.0}, {2, 4000.0}};
  Simulation s(cfg);
  s.run_until(5000.0);
  for (net::NodeId id = 0; id < 10; ++id) {
    s.field().fail_slot(static_cast<net::NodeId>(id * 19));
  }
  s.run();
  const auto r = s.result();
  EXPECT_EQ(r.robot_repairs, 3u);
  EXPECT_EQ(r.repaired, r.failures);
  // The reborn robots share the load: the never-failed robot 3 cannot have
  // served all ten post-rebirth failures alone.
  std::size_t reborn_repairs = 0;
  for (std::size_t i = 0; i < 3; ++i) reborn_repairs += s.robots()[i]->repairs_done();
  EXPECT_GT(reborn_repairs, 0u) << "re-admitted robots never dispatched again";
}

// --- Fixed distributed: subarea adoption ----------------------------------------

TEST(FixedRecovery, OrphanedSubareaIsAdoptedAndServed) {
  auto cfg = base_config(Algorithm::kFixedDistributed, 13, 8000.0);
  cfg.robot_faults.crashes = {{1, 1500.0}};
  Simulation s(cfg);
  s.run();
  const auto r = s.result();
  EXPECT_GE(r.adoptions, 1u);
  const auto* algo = dynamic_cast<const FixedDistributedAlgorithm*>(&s.algorithm());
  ASSERT_NE(algo, nullptr);
  for (std::size_t cell = 0; cell < algo->owners().size(); ++cell) {
    EXPECT_NE(algo->owners()[cell], 1u) << "cell " << cell << " still owned by the dead robot";
  }
  // Failures in the orphaned subarea born after the adoption are repaired by
  // the adopter (detected via the dead robot's repair log being frozen).
  std::size_t late_repaired = 0;
  for (const auto& rec : s.failure_log().records()) {
    if (rec.failed_at > 2500.0 && rec.repaired()) ++late_repaired;
  }
  EXPECT_GT(late_repaired, 0u);
  EXPECT_GE(r.repaired, r.failures * 3 / 4);
}

TEST(FixedRecovery, RepairedOwnerTakesItsSubareaBack) {
  // Robot 1 dies, its subarea is adopted; at 3000 s it is repaired and must
  // reclaim the cell via a real kOwnershipTransfer exchange (offer from the
  // adopter, applied at the reborn owner on delivery, confirmation ack back).
  auto cfg = base_config(Algorithm::kFixedDistributed, 13, 8000.0);
  cfg.robot_faults.crashes = {{1, 1500.0}};
  cfg.robot_faults.repairs = {{1, 3000.0}};
  Simulation s(cfg);
  s.run();
  const auto r = s.result();
  EXPECT_GE(r.adoptions, 1u);
  EXPECT_EQ(r.robot_repairs, 1u);
  EXPECT_GE(r.ownership_transfers, 1u);
  const auto* algo = dynamic_cast<const FixedDistributedAlgorithm*>(&s.algorithm());
  ASSERT_NE(algo, nullptr);
  // Ownership is back to the identity mapping: every cell with its own robot.
  for (std::size_t cell = 0; cell < algo->owners().size(); ++cell) {
    EXPECT_EQ(algo->owners()[cell], cell)
        << "cell " << cell << " not returned to its original owner";
  }
}

TEST(FixedRecovery, OwnershipReturnSurvivesALossyRadio) {
  // The return offer is retried end-to-end on the heartbeat period (up to 5
  // attempts); with per-hop ARQ plus those retries a 20% lossy radio must
  // still converge back to the identity mapping.
  auto cfg = base_config(Algorithm::kFixedDistributed, 29, 10000.0);
  cfg.radio.loss_probability = 0.2;
  cfg.robot_faults.crashes = {{1, 1500.0}};
  cfg.robot_faults.repairs = {{1, 3000.0}};
  Simulation s(cfg);
  s.run();
  const auto r = s.result();
  EXPECT_GE(r.ownership_transfers, 1u);
  const auto* algo = dynamic_cast<const FixedDistributedAlgorithm*>(&s.algorithm());
  ASSERT_NE(algo, nullptr);
  for (std::size_t cell = 0; cell < algo->owners().size(); ++cell) {
    EXPECT_EQ(algo->owners()[cell], cell) << "cell " << cell;
  }
}

// --- Lease auto-tuning -----------------------------------------------------------

TEST(LeaseAutoTune, ObservedCadenceTightensTheWindowWithinBounds) {
  auto cfg = base_config(Algorithm::kDynamicDistributed, 31, 8000.0);
  cfg.robot_faults.lease_auto_tune = true;
  cfg.robot_faults.crashes = {{3, 7500.0}};  // arms the fault machinery
  Simulation s(cfg);
  s.run_until(7000.0);  // before the crash: all four robots still refreshing
  const auto& algo = s.algorithm();
  const double configured = cfg.robot_faults.lease_window();
  const double floor = 2.0 * cfg.robot_faults.heartbeat_period;
  double tightest = configured;
  for (std::size_t i = 0; i < cfg.robots; ++i) {
    const double w = algo.effective_lease_window(i);
    EXPECT_GE(w, floor) << "robot " << i << " window under the lost-heartbeat floor";
    EXPECT_LE(w, configured) << "robot " << i << " window above the configured cap";
    tightest = std::min(tightest, w);
  }
  // Robots moving between repairs update every leg (~20 s), far faster than
  // the 60 s heartbeat, so at least one window tightened below the default.
  EXPECT_LT(tightest, configured);
}

TEST(LeaseAutoTune, DisabledMeansTheConfiguredWindowExactly) {
  auto cfg = base_config(Algorithm::kDynamicDistributed, 31, 4000.0);
  cfg.robot_faults.crashes = {{3, 3500.0}};
  Simulation s(cfg);
  s.run_until(3000.0);
  for (std::size_t i = 0; i < cfg.robots; ++i) {
    EXPECT_DOUBLE_EQ(s.algorithm().effective_lease_window(i),
                     cfg.robot_faults.lease_window());
  }
}

// --- Satellite: the silent task drop is now counted ------------------------------

TEST(OrphanedTasks, NoSparesNoDepotIsCountedNotSilent) {
  auto cfg = base_config(Algorithm::kDynamicDistributed, 17, 4000.0);
  cfg.robot_spares = 0;  // fleet that cannot repair at all (E11 baseline)
  Simulation s(cfg);
  s.run();
  const auto r = s.result();
  EXPECT_EQ(r.repaired, 0u);
  EXPECT_GT(r.orphaned_tasks, 0u);  // previously dropped without a trace
  EXPECT_NE(r.summary().find("orphaned"), std::string::npos);
}

}  // namespace
}  // namespace sensrep::core
