// Robot fault tolerance: failure injection, lease-based dead-robot
// detection, task reassignment, and manager failover.
//
// The chaos suite is the tentpole check: with staggered robot crashes and a
// surviving robot holding spares, every injected sensor failure must still
// be repaired eventually, for all three coordination algorithms.

#include <gtest/gtest.h>

#include <cmath>

#include "core/centralized.hpp"
#include "core/fixed_distributed.hpp"
#include "core/simulation.hpp"
#include "robot/fault.hpp"

namespace sensrep::core {
namespace {

SimulationConfig base_config(Algorithm algo, std::uint64_t seed, double duration) {
  SimulationConfig cfg;
  cfg.algorithm = algo;
  cfg.robots = 4;
  cfg.seed = seed;
  cfg.sim_duration = duration;
  return cfg;
}

// --- FaultConfig unit tests ------------------------------------------------------

TEST(FaultConfig, DisabledByDefault) {
  robot::FaultConfig f;
  EXPECT_FALSE(f.spontaneous());
  EXPECT_FALSE(f.enabled());
  EXPECT_NO_THROW(f.validate());
}

TEST(FaultConfig, AnyFaultSourceEnablesTheSubsystem) {
  robot::FaultConfig f;
  f.mtbf = 16000.0;
  EXPECT_TRUE(f.spontaneous());
  EXPECT_TRUE(f.enabled());

  robot::FaultConfig crashes;
  crashes.crashes.push_back({0, 100.0});
  EXPECT_FALSE(crashes.spontaneous());
  EXPECT_TRUE(crashes.enabled());

  robot::FaultConfig mgr;
  mgr.manager_crash_at = 100.0;
  EXPECT_TRUE(mgr.enabled());
}

TEST(FaultConfig, LeaseWindowIsMultiplierTimesHeartbeat) {
  robot::FaultConfig f;
  EXPECT_DOUBLE_EQ(f.lease_window(), 180.0);  // 3 x 60 s defaults
  f.heartbeat_period = 30.0;
  f.lease_multiplier = 4.0;
  EXPECT_DOUBLE_EQ(f.lease_window(), 120.0);
}

TEST(FaultConfig, ValidateRejectsBadParameters) {
  robot::FaultConfig f;
  f.mtbf = 0.0;
  EXPECT_THROW(f.validate(), std::invalid_argument);
  f.mtbf = std::nan("");
  EXPECT_THROW(f.validate(), std::invalid_argument);
  f.mtbf = 16000.0;
  f.weibull_shape = -1.0;
  f.distribution = robot::FaultDistribution::kWeibull;
  EXPECT_THROW(f.validate(), std::invalid_argument);
  f.weibull_shape = 3.0;
  EXPECT_NO_THROW(f.validate());
  f.lease_multiplier = 0.5;
  EXPECT_THROW(f.validate(), std::invalid_argument);
}

TEST(FaultConfig, DrawMeansMatchMtbfForBothDistributions) {
  for (const auto dist :
       {robot::FaultDistribution::kExponential, robot::FaultDistribution::kWeibull}) {
    robot::FaultConfig f;
    f.distribution = dist;
    f.mtbf = 16000.0;
    sim::Rng rng(99);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += f.draw(rng);
    EXPECT_NEAR(sum / n, f.mtbf, f.mtbf * 0.05) << to_string(dist);
  }
}

TEST(FaultConfig, SimulationConfigCrossValidation) {
  auto cfg = base_config(Algorithm::kDynamicDistributed, 1, 1000.0);
  cfg.robot_faults.crashes.push_back({cfg.robots, 100.0});  // index out of range
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.robot_faults.crashes.clear();
  cfg.robot_faults.manager_crash_at = 100.0;  // needs the centralized algorithm
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.algorithm = Algorithm::kCentralized;
  EXPECT_NO_THROW(cfg.validate());
}

// --- Opt-in gating ---------------------------------------------------------------

TEST(FaultGating, DefaultConfigRunsWithZeroFaultActivity) {
  // The regression suite pins the golden traces byte-for-byte; this asserts
  // the observable invariant behind it: no fault model, no fault traffic.
  Simulation s(base_config(Algorithm::kCentralized, 1, 4000.0));
  s.run();
  const auto r = s.result();
  EXPECT_EQ(r.robot_failures, 0u);
  EXPECT_EQ(r.tasks_lost, 0u);
  EXPECT_EQ(r.orphaned_tasks, 0u);
  EXPECT_EQ(r.redispatches, 0u);
  EXPECT_EQ(r.failover_events, 0u);
  EXPECT_EQ(r.adoptions, 0u);
  EXPECT_EQ(r.tx(metrics::MessageCategory::kFaultTolerance), 0u);
  EXPECT_EQ(r.summary().find("faults"), std::string::npos);
}

TEST(FaultGating, ScheduledCrashKillsExactlyThatRobot) {
  auto cfg = base_config(Algorithm::kDynamicDistributed, 1, 4000.0);
  cfg.robot_faults.crashes.push_back({2, 1000.0});
  Simulation s(cfg);
  s.run_until(999.0);
  EXPECT_FALSE(s.robots()[2]->failed());
  s.run_until(1001.0);
  EXPECT_TRUE(s.robots()[2]->failed());
  const double odo_at_death = s.robots()[2]->odometer();
  s.run();
  EXPECT_DOUBLE_EQ(s.robots()[2]->odometer(), odo_at_death);  // dead robots park
  const auto r = s.result();
  EXPECT_EQ(r.robot_failures, 1u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(s.robots()[i]->failed(), i == 2) << "robot " << i;
  }
}

TEST(FaultGating, SpontaneousMtbfKillsRobotsOverTime) {
  auto cfg = base_config(Algorithm::kDynamicDistributed, 5, 8000.0);
  cfg.robot_faults.mtbf = 4000.0;  // E[deaths by 8000 s] = 4 * (1 - e^-2) ~ 3.5
  Simulation s(cfg);
  s.run();
  const auto r = s.result();
  EXPECT_GE(r.robot_failures, 1u);
  EXPECT_LE(r.robot_failures, 4u);
  EXPECT_NE(r.summary().find("faults"), std::string::npos);
}

// --- Chaos: every failure repaired while one robot with spares survives ----------

class ChaosRecovery : public ::testing::TestWithParam<Algorithm> {};

TEST_P(ChaosRecovery, EveryFailureRepairedDespiteRobotDeaths) {
  // Three of four robots die in a staggered sequence while sensor failures
  // are injected; the fleet's remaining robot holds unlimited spares. The
  // recovery machinery (leases + re-reports + per-algorithm reassignment)
  // must eventually repair every single failure.
  auto cfg = base_config(GetParam(), 11, 16000.0);
  cfg.field.spontaneous_failures = false;  // injected failures only
  cfg.robot_faults.crashes = {{0, 1200.0}, {1, 2400.0}, {2, 3600.0}};
  Simulation s(cfg);

  // Victims spaced farther apart than the sensor radio range, so no victim
  // can be another victim's guardian — detection never races the injection.
  std::vector<net::NodeId> victims;
  for (net::NodeId id = 0; id < s.field().size() && victims.size() < 12; ++id) {
    const auto p = s.field().node(id).position();
    bool spread = true;
    for (const auto v : victims) {
      spread = spread && geometry::distance(p, s.field().node(v).position()) >
                             cfg.field.sensor_tx_range;
    }
    if (spread) victims.push_back(id);
  }
  ASSERT_GE(victims.size(), 8u);

  // Two injection waves bracketing the robot deaths: wave one lands while
  // the full fleet is up (tasks die with their robots), wave two lands when
  // sensors still hold stale knowledge of dead robots.
  s.run_until(600.0);
  for (std::size_t i = 0; i < victims.size() / 2; ++i) s.field().fail_slot(victims[i]);
  s.run_until(2600.0);
  for (std::size_t i = victims.size() / 2; i < victims.size(); ++i) {
    s.field().fail_slot(victims[i]);
  }
  s.run();

  const auto r = s.result();
  EXPECT_EQ(r.robot_failures, 3u);
  ASSERT_EQ(r.failures, victims.size());
  EXPECT_EQ(r.detected, r.failures);
  EXPECT_EQ(r.repaired, r.failures)
      << "unrepaired failures survived the recovery machinery";
  // The last robot standing did work after the rest of the fleet was gone.
  EXPECT_TRUE(s.robots()[3]->repairs_done() > 0);
  for (const auto& rec : s.failure_log().records()) {
    EXPECT_TRUE(rec.repaired()) << "slot " << rec.node_id << " never repaired";
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, ChaosRecovery,
                         ::testing::Values(Algorithm::kCentralized,
                                           Algorithm::kFixedDistributed,
                                           Algorithm::kDynamicDistributed),
                         [](const ::testing::TestParamInfo<Algorithm>& param_info) {
                           return std::string(to_string(param_info.param));
                         });

// --- Centralized: lease-expiry redispatch and manager failover -------------------

TEST(CentralizedRecovery, LeaseExpiryRedispatchesInFlightTasks) {
  auto cfg = base_config(Algorithm::kCentralized, 3, 10000.0);
  cfg.field.spontaneous_failures = false;
  // All but robot 3 die just after dispatch, with tasks still in flight.
  cfg.robot_faults.crashes = {{0, 560.0}, {1, 560.0}, {2, 560.0}};
  Simulation s(cfg);
  s.run_until(500.0);
  for (net::NodeId id = 0; id < 10; ++id) {
    s.field().fail_slot(static_cast<net::NodeId>(id * 19));
  }
  s.run();
  const auto r = s.result();
  EXPECT_GE(r.redispatches, 1u);  // leases expired with work outstanding
  EXPECT_EQ(r.repaired, r.failures);
  const auto* algo = dynamic_cast<const CentralizedAlgorithm*>(&s.algorithm());
  ASSERT_NE(algo, nullptr);
  EXPECT_EQ(algo->in_flight_count(), 0u);  // table drains once work completes
}

TEST(CentralizedRecovery, ManagerFailoverPromotesLowestLiveRobot) {
  auto cfg = base_config(Algorithm::kCentralized, 7, 8000.0);
  cfg.robot_faults.manager_crash_at = 2000.0;
  Simulation s(cfg);
  s.run();
  const auto r = s.result();
  EXPECT_EQ(r.failover_events, 1u);
  const auto* algo = dynamic_cast<const CentralizedAlgorithm*>(&s.algorithm());
  ASSERT_NE(algo, nullptr);
  ASSERT_TRUE(algo->acting_manager().has_value());
  EXPECT_EQ(*algo->acting_manager(), 0u);  // lowest-id live robot wins
  // The pipeline keeps flowing after the failover: failures born well after
  // the crash still get reported (to the acting manager) and repaired.
  std::size_t late_repaired = 0;
  for (const auto& rec : s.failure_log().records()) {
    if (rec.failed_at > 3000.0 && rec.repaired()) ++late_repaired;
  }
  EXPECT_GT(late_repaired, 0u);
  EXPECT_GE(r.delivery_ratio, 0.8);
}

TEST(CentralizedRecovery, FailoverSkipsDeadRobots) {
  auto cfg = base_config(Algorithm::kCentralized, 7, 8000.0);
  cfg.robot_faults.crashes = {{0, 1000.0}};   // robot 0 is long dead...
  cfg.robot_faults.manager_crash_at = 3000.0;  // ...when the manager goes
  Simulation s(cfg);
  s.run();
  const auto* algo = dynamic_cast<const CentralizedAlgorithm*>(&s.algorithm());
  ASSERT_NE(algo, nullptr);
  ASSERT_TRUE(algo->acting_manager().has_value());
  EXPECT_EQ(*algo->acting_manager(), 1u);  // 0 is dead; next index promotes
}

// --- Fixed distributed: subarea adoption ----------------------------------------

TEST(FixedRecovery, OrphanedSubareaIsAdoptedAndServed) {
  auto cfg = base_config(Algorithm::kFixedDistributed, 13, 8000.0);
  cfg.robot_faults.crashes = {{1, 1500.0}};
  Simulation s(cfg);
  s.run();
  const auto r = s.result();
  EXPECT_GE(r.adoptions, 1u);
  const auto* algo = dynamic_cast<const FixedDistributedAlgorithm*>(&s.algorithm());
  ASSERT_NE(algo, nullptr);
  for (std::size_t cell = 0; cell < algo->owners().size(); ++cell) {
    EXPECT_NE(algo->owners()[cell], 1u) << "cell " << cell << " still owned by the dead robot";
  }
  // Failures in the orphaned subarea born after the adoption are repaired by
  // the adopter (detected via the dead robot's repair log being frozen).
  std::size_t late_repaired = 0;
  for (const auto& rec : s.failure_log().records()) {
    if (rec.failed_at > 2500.0 && rec.repaired()) ++late_repaired;
  }
  EXPECT_GT(late_repaired, 0u);
  EXPECT_GE(r.repaired, r.failures * 3 / 4);
}

// --- Satellite: the silent task drop is now counted ------------------------------

TEST(OrphanedTasks, NoSparesNoDepotIsCountedNotSilent) {
  auto cfg = base_config(Algorithm::kDynamicDistributed, 17, 4000.0);
  cfg.robot_spares = 0;  // fleet that cannot repair at all (E11 baseline)
  Simulation s(cfg);
  s.run();
  const auto r = s.result();
  EXPECT_EQ(r.repaired, 0u);
  EXPECT_GT(r.orphaned_tasks, 0u);  // previously dropped without a trace
  EXPECT_NE(r.summary().find("orphaned"), std::string::npos);
}

}  // namespace
}  // namespace sensrep::core
